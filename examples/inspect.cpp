/**
 * @file
 * Deep-dive inspection: run one workload on one preset and dump every
 * major counter in the system — post-LLC traffic mix, cache and RDC
 * hit rates, per-link utilization, DRAM pressure, coherence traffic,
 * NUMA-runtime actions and the sharing profile.
 *
 * Usage: inspect [workload] [preset]
 *   presets: 1gpu numa mig repl carve-noc carve-swc carve-hwc ideal
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "common/logging.hh"
#include "core/multi_gpu_system.hh"
#include "core/report.hh"
#include "core/system_preset.hh"
#include "workloads/suite.hh"

namespace {

carve::Preset
parsePreset(const std::string &s)
{
    using carve::Preset;
    if (s == "1gpu") return Preset::SingleGpu;
    if (s == "numa") return Preset::NumaGpu;
    if (s == "mig") return Preset::NumaGpuMigration;
    if (s == "repl") return Preset::NumaGpuReplRO;
    if (s == "carve-noc") return Preset::CarveNoCoherence;
    if (s == "carve-swc") return Preset::CarveSwc;
    if (s == "carve-hwc") return Preset::CarveHwc;
    if (s == "ideal") return Preset::Ideal;
    carve::fatal("unknown preset '%s'", s.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace carve;

    const std::string name = argc > 1 ? argv[1] : "Lulesh";
    const Preset preset =
        parsePreset(argc > 2 ? argv[2] : "carve-hwc");

    SuiteOptions opt;
    const WorkloadParams params = suiteWorkload(name, opt);
    SystemConfig base;
    base = base.scaled(opt.memory_scale);
    const SystemConfig cfg = makePreset(preset, base);

    SyntheticWorkload wl(params, cfg.line_size, 1);
    MultiGpuSystem sys(cfg, wl, true);
    const Cycle cycles = sys.run();
    const SimResult r = collectResult(sys, name, presetName(preset));

    std::printf("== %s on %s ==\n", name.c_str(), presetName(preset));
    std::printf("cycles %llu, warp insts %llu, ipc %.2f\n",
                (unsigned long long)cycles,
                (unsigned long long)r.warp_insts, r.ipc());

    const GpuTraffic &t = r.traffic;
    std::printf("\npost-LLC traffic (total %llu):\n",
                (unsigned long long)t.total());
    auto pct = [&](std::uint64_t v) {
        return t.total() ? 100.0 * static_cast<double>(v) /
                   static_cast<double>(t.total()) : 0.0;
    };
    std::printf("  local reads   %9llu (%5.1f%%)\n",
                (unsigned long long)t.local_reads,
                pct(t.local_reads));
    std::printf("  rdc-hit reads %9llu (%5.1f%%)\n",
                (unsigned long long)t.rdc_hit_reads,
                pct(t.rdc_hit_reads));
    std::printf("  remote reads  %9llu (%5.1f%%)\n",
                (unsigned long long)t.remote_reads,
                pct(t.remote_reads));
    std::printf("  cpu reads     %9llu (%5.1f%%)\n",
                (unsigned long long)t.cpu_reads, pct(t.cpu_reads));
    std::printf("  local writes  %9llu (%5.1f%%)\n",
                (unsigned long long)t.local_writes,
                pct(t.local_writes));
    std::printf("  remote writes %9llu (%5.1f%%)\n",
                (unsigned long long)t.remote_writes,
                pct(t.remote_writes));
    std::printf("  cpu writes    %9llu (%5.1f%%)\n",
                (unsigned long long)t.cpu_writes, pct(t.cpu_writes));

    std::printf("\ncaches: L2 hit %.1f%%", 100.0 * r.l2_hit_rate);
    if (r.rdc_hits + r.rdc_misses) {
        std::printf(", RDC hit %.1f%% (%llu hits, %llu misses)",
                    100.0 * static_cast<double>(r.rdc_hits) /
                        static_cast<double>(r.rdc_hits + r.rdc_misses),
                    (unsigned long long)r.rdc_hits,
                    (unsigned long long)r.rdc_misses);
    }
    std::printf("\n");

    // Per-GPU structures.
    for (unsigned g = 0; g < sys.numGpus(); ++g) {
        GpuNode &gpu = sys.gpu(g);
        std::printf("gpu%u: L1[0] hit %.1f%%, L2 hit %.1f%%, DRAM "
                    "row-hit %.1f%%, mem bytes %llu\n",
                    g, 100.0 * gpu.sm(0).l1().hitRate(),
                    100.0 * gpu.l2().hitRate(),
                    100.0 * gpu.mem().rowHitRate(),
                    (unsigned long long)gpu.mem().bytesTransferred());
    }

    // Link utilization.
    if (sys.numGpus() > 1) {
        std::printf("\nlinks (util over %llu cycles):\n",
                    (unsigned long long)cycles);
        for (unsigned s = 0; s < sys.numGpus(); ++s) {
            for (unsigned d = 0; d < sys.numGpus(); ++d) {
                if (s == d)
                    continue;
                const Link &l = sys.network().link(s, d);
                std::printf("  %s: %8llu B, util %5.1f%%, qdelay "
                            "%.0f\n", l.name().c_str(),
                            (unsigned long long)l.bytesSent(),
                            100.0 * l.utilization(cycles),
                            l.meanQueueDelay());
            }
        }
    }

    std::printf("\ncoherence: hw invalidates %llu\n",
                (unsigned long long)r.hw_invalidates);
    std::printf("numa: migrations %llu, replications %llu, collapses "
                "%llu, um-migrations %llu, capacity pressure %.2fx\n",
                (unsigned long long)r.migrations,
                (unsigned long long)r.replications,
                (unsigned long long)r.collapses,
                (unsigned long long)r.um_migrations,
                r.capacity_pressure);

    std::printf("\nsharing profile (page): private %.1f%%, ro-shared "
                "%.1f%%, rw-shared %.1f%%\n",
                100.0 * r.page_sharing.fracPrivate(),
                100.0 * r.page_sharing.fracReadOnlyShared(),
                100.0 * r.page_sharing.fracReadWriteShared());
    std::printf("sharing profile (line): private %.1f%%, ro-shared "
                "%.1f%%, rw-shared %.1f%%\n",
                100.0 * r.line_sharing.fracPrivate(),
                100.0 * r.line_sharing.fracReadOnlyShared(),
                100.0 * r.line_sharing.fracReadWriteShared());
    std::printf("shared footprint: %.1f MiB of pages, %.1f MiB of "
                "lines (total touched %.1f MiB)\n",
                r.shared_page_footprint / (1024.0 * 1024.0),
                r.shared_line_footprint / (1024.0 * 1024.0),
                r.total_page_footprint / (1024.0 * 1024.0));
    return 0;
}
