/**
 * @file
 * Bringing your own workload: implements the Workload interface
 * directly (no SyntheticWorkload) for a blocked sparse-matrix /
 * vector kernel — each CTA owns a block row (private, streamed),
 * gathers from a shared input vector (read-only), and accumulates
 * into a private output. Then compares the NUMA presets on it.
 *
 * This is the integration surface a downstream user would target to
 * drive carve-sim from a real application trace.
 */

#include <cstdio>
#include <string>

#include "core/multi_gpu_system.hh"
#include "core/report.hh"
#include "core/simulator.hh"
#include "gpu/coalescer.hh"

namespace {

using namespace carve;

/** Hand-written SpMV-like trace source. */
class SpmvWorkload : public Workload
{
  public:
    const std::string &name() const override { return name_; }
    unsigned numKernels() const override { return 4; }
    std::uint64_t numCtas(KernelId) const override { return 2048; }
    unsigned warpsPerCta() const override { return 8; }
    std::uint64_t instsPerWarp(KernelId) const override { return 12; }

    void
    instruction(KernelId, CtaId cta, WarpId w, std::uint64_t idx,
                WarpInstruction &out) const override
    {
        // Three logical arrays in disjoint VA slots.
        constexpr Addr matrix = 1ull << 36;  // CSR values, private
        constexpr Addr vector = 2ull << 36;  // input x, shared RO
        constexpr Addr result = 3ull << 36;  // output y, private

        out.compute_cycles = 6;
        const std::uint64_t row = cta * warpsPerCta() + w;

        switch (idx % 3) {
          case 0: {
            // Stream the row's nonzeros: private, perfectly coalesced.
            out.type = AccessType::Read;
            out.num_lines = 1;
            out.lines[0] =
                matrix + (row * 64 + idx) % (1 << 20) * 128;
            break;
          }
          case 1: {
            // Gather x[col] for scattered columns: model with the
            // coalescer, exactly as an LSU would.
            out.type = AccessType::Read;
            std::array<Addr, 8> lanes;
            std::uint64_t h = row * 2654435761u + idx * 40503u;
            for (auto &lane : lanes) {
                h ^= h >> 13;
                h *= 0x9e3779b97f4a7c15ull;
                lane = vector + (h % (64 * MiB));
            }
            coalesce(lanes, 128, out);
            break;
          }
          default: {
            // Accumulate into y[row]: private write.
            out.type = AccessType::Write;
            out.num_lines = 1;
            out.lines[0] = result + row % (1 << 18) * 128;
            break;
          }
        }
    }

  private:
    std::string name_ = "spmv-custom";
};

} // namespace

int
main()
{
    using namespace carve;

    SystemConfig base;
    base = base.scaled(8);

    SpmvWorkload wl;
    std::printf("custom workload '%s': %llu warp instructions\n\n",
                wl.name().c_str(),
                (unsigned long long)wl.totalInstructions());

    SimResult one, results[3];
    const Preset presets[] = {Preset::NumaGpu, Preset::CarveHwc,
                              Preset::Ideal};
    {
        MultiGpuSystem sys(makePreset(Preset::SingleGpu, base), wl);
        sys.run();
        one = collectResult(sys, wl.name(), "1-GPU");
    }
    for (int i = 0; i < 3; ++i) {
        MultiGpuSystem sys(makePreset(presets[i], base), wl);
        sys.run();
        results[i] =
            collectResult(sys, wl.name(), presetName(presets[i]));
    }

    std::printf("%-20s %9s %9s %9s\n", "preset", "speedup", "remote",
                "l2-hit");
    for (int i = 0; i < 3; ++i) {
        std::printf("%-20s %8.2fx %8.1f%% %8.1f%%\n",
                    results[i].preset.c_str(),
                    speedupOver(one, results[i]),
                    100.0 * results[i].frac_remote,
                    100.0 * results[i].l2_hit_rate);
    }
    return 0;
}
