/**
 * @file
 * Quickstart: simulate one workload on the 4-GPU Table III system
 * under the NUMA-GPU baseline and under CARVE-HWC, and print what
 * changed.
 *
 * Usage: quickstart [workload-abbreviation]   (default: Lulesh)
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "core/simulator.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace carve;

    const std::string name = argc > 1 ? argv[1] : "Lulesh";

    // Hardware and workloads scaled together by 8 so all capacity
    // ratios match the paper at a fraction of the simulation cost.
    SuiteOptions suite_opt;
    suite_opt.memory_scale = 8;
    const WorkloadParams params = suiteWorkload(name, suite_opt);

    SystemConfig base;                       // Table III defaults
    base = base.scaled(suite_opt.memory_scale);

    std::cout << "workload " << name << ": footprint "
              << params.footprint() / (1024.0 * 1024.0)
              << " MiB (scaled), " << params.kernels << " kernels, "
              << params.ctas << " CTAs x " << params.warps_per_cta
              << " warps\n\n";

    // A SimJob fully describes one run; makePresetJob() fills it from
    // a named preset and run(job) executes it.
    const SimResult numa =
        run(makePresetJob(Preset::NumaGpu, base, params));
    const SimResult carve =
        run(makePresetJob(Preset::CarveHwc, base, params));
    const SimResult ideal =
        run(makePresetJob(Preset::Ideal, base, params));

    printSummary(std::cout, numa);
    printSummary(std::cout, carve);
    printSummary(std::cout, ideal);

    std::printf("\nCARVE-HWC speedup over NUMA-GPU: %.2fx\n",
                speedupOver(numa, carve));
    std::printf("CARVE-HWC vs ideal NUMA-GPU:     %.1f%%\n",
                100.0 * static_cast<double>(ideal.cycles) /
                    static_cast<double>(carve.cycles));
    std::printf("remote traffic: %.1f%% -> %.1f%% of post-LLC "
                "accesses\n", 100.0 * numa.frac_remote,
                100.0 * carve.frac_remote);
    return 0;
}
