/**
 * @file
 * Carve-out sizing study: how big should the Remote Data Cache be for
 * one workload? Sweeps the RDC size and reports speedup, RDC hit
 * rate, remote-traffic fraction and the GPU-memory capacity given up
 * — the trade-off Section V-B/V-C of the paper discusses.
 *
 * Usage: rdc_sizing [workload-abbreviation]   (default: XSBench)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace carve;

    const std::string name = argc > 1 ? argv[1] : "XSBench";

    SuiteOptions suite_opt;
    const WorkloadParams params = suiteWorkload(name, suite_opt);
    SystemConfig base;
    base = base.scaled(suite_opt.memory_scale);

    std::printf("RDC sizing study for %s (footprint %.0f MiB "
                "scaled)\n\n", name.c_str(),
                params.footprint() / (1024.0 * 1024.0));

    const SimResult one =
        run(makePresetJob(Preset::SingleGpu, base, params));
    const SimResult numa =
        run(makePresetJob(Preset::NumaGpu, base, params));
    std::printf("%-12s speedup %5.2fx (no remote data cache)\n\n",
                "NUMA-GPU", speedupOver(one, numa));

    std::printf("%-10s %8s %9s %9s %12s\n", "RDC size", "speedup",
                "rdc-hit", "remote", "mem given up");
    for (const std::uint64_t mib : {16, 32, 64, 128, 256, 512}) {
        // Ad-hoc (non-preset) runs build the SimJob by hand: start
        // from a preset job, then edit the config before run().
        SimJob job = makePresetJob(Preset::CarveHwc, base, params);
        job.config.rdc.size = mib * MiB;
        job.preset_label = "carve";
        const SimResult r = run(job);
        const SystemConfig &cfg = job.config;
        const double hit = r.rdc_hits + r.rdc_misses
            ? 100.0 * static_cast<double>(r.rdc_hits) /
                static_cast<double>(r.rdc_hits + r.rdc_misses)
            : 0.0;
        std::printf("%7llu MiB %7.2fx %8.1f%% %8.1f%% %11.2f%%\n",
                    (unsigned long long)mib,
                    speedupOver(one, r), hit,
                    100.0 * r.frac_remote,
                    100.0 * static_cast<double>(cfg.rdc.size) /
                        static_cast<double>(cfg.dram.capacity));
    }
    std::printf("\n(the paper's default: 2 GB of 32 GB per GPU == "
                "6.25%%, scaled here to 256 MiB of 4 GiB)\n");
    return 0;
}
