#include "tlb/tlb.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace carve {

namespace {

/**
 * Model TLBs as TagArrays with one "line" per page. Small TLBs are
 * fully associative; larger ones are capped at 16 ways (matching real
 * STLB designs and keeping probes cheap).
 */
TagArray
makeTlbArray(unsigned entries, std::uint64_t page_size)
{
    const unsigned ways = entries <= 32 ? entries : 16;
    return TagArray(static_cast<std::uint64_t>(entries) * page_size,
                    ways, page_size);
}

} // namespace

TlbHierarchy::TlbHierarchy(const TlbConfig &cfg, unsigned num_sms,
                           std::uint64_t page_size)
    : cfg_(cfg), page_size_(page_size),
      l2_(makeTlbArray(cfg.l2_entries, page_size))
{
    if (num_sms == 0)
        fatal("TlbHierarchy: need at least one SM");
    l1_.reserve(num_sms);
    for (unsigned i = 0; i < num_sms; ++i)
        l1_.push_back(makeTlbArray(cfg.l1_entries, page_size));
}

TlbResult
TlbHierarchy::translate(SmId sm, Addr vaddr)
{
    carve_assert(sm < l1_.size());
    const Addr vpage = alignDown(vaddr, page_size_);

    TlbResult res{cfg_.l1_latency, true, false};
    if (l1_[sm].lookup(vpage) != TagArray::no_line) {
        ++l1_hits_;
        return res;
    }

    res.l1_hit = false;
    res.latency += cfg_.l2_latency;
    if (l2_.lookup(vpage) != TagArray::no_line) {
        ++l2_hits_;
        res.l2_hit = true;
    } else {
        ++walks_;
        res.latency += cfg_.walk_latency;
        l2_.insert(vpage, false);
    }
    l1_[sm].insert(vpage, false);
    return res;
}

std::uint64_t
TlbHierarchy::shootdown(Addr vaddr)
{
    const Addr vpage = alignDown(vaddr, page_size_);
    std::uint64_t dropped = 0;
    for (auto &tlb : l1_) {
        if (tlb.invalidate(vpage))
            ++dropped;
    }
    if (l2_.invalidate(vpage))
        ++dropped;
    return dropped;
}

} // namespace carve
