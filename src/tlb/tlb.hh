/**
 * @file
 * Two-level GPU TLB hierarchy: a small per-SM L1 TLB backed by a
 * GPU-shared L2 TLB, with a fixed-latency page-walk penalty on a full
 * miss. 2 MB pages (Table III) keep reach high; the paper's
 * false-sharing analysis hinges on this page size.
 */

#ifndef CARVE_TLB_TLB_HH
#define CARVE_TLB_TLB_HH

#include <cstdint>
#include <vector>

#include "cache/tag_array.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace carve {

/** Result of a TLB translation attempt. */
struct TlbResult
{
    Cycle latency;     ///< cycles spent translating
    bool l1_hit;
    bool l2_hit;       ///< meaningful only when !l1_hit
};

/**
 * TLB hierarchy for one GPU: cfg.l1_entries fully tracked per SM,
 * one shared L2. Entries are virtual page numbers; carve-sim keeps
 * translation results in the page table, so the TLB only models
 * latency and reach.
 */
class TlbHierarchy
{
  public:
    /**
     * @param cfg TLB geometry and latencies
     * @param num_sms SMs on this GPU (one L1 TLB each)
     * @param page_size bytes per page
     */
    TlbHierarchy(const TlbConfig &cfg, unsigned num_sms,
                 std::uint64_t page_size);

    /**
     * Translate @p vaddr on behalf of @p sm. Fills TLB entries along
     * the way and returns the latency to add to the access.
     */
    TlbResult translate(SmId sm, Addr vaddr);

    /**
     * Drop the translation for @p vpage everywhere (page migration or
     * replication collapse shootdown).
     * @return number of TLB entries dropped
     */
    std::uint64_t shootdown(Addr vaddr);

    std::uint64_t l1Hits() const { return l1_hits_.value(); }
    std::uint64_t l2Hits() const { return l2_hits_.value(); }
    std::uint64_t walks() const { return walks_.value(); }

    /** Register this hierarchy's counters into @p g. */
    void
    registerStats(stats::StatGroup &g)
    {
        g.addScalar("l1_hits", &l1_hits_, "per-SM L1 TLB hits");
        g.addScalar("l2_hits", &l2_hits_, "shared L2 TLB hits");
        g.addScalar("walks", &walks_, "full misses (page walks)");
    }

  private:
    const TlbConfig &cfg_;
    std::uint64_t page_size_;
    std::vector<TagArray> l1_;   ///< one per SM, fully associative
    TagArray l2_;                ///< shared, fully associative

    stats::Scalar l1_hits_;
    stats::Scalar l2_hits_;
    stats::Scalar walks_;
};

} // namespace carve

#endif // CARVE_TLB_TLB_HH
