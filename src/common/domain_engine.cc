#include "common/domain_engine.hh"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.hh"

namespace carve {

namespace engine_ctx {

thread_local unsigned current_shard = barrier_shard;

} // namespace engine_ctx

namespace {

/** Events between wall-clock checks (matches the serial engine's
 * historical amortization). */
constexpr std::uint64_t clock_check_interval = 8192;

#if defined(__x86_64__) || defined(__i386__)
inline void cpuRelax() { __builtin_ia32_pause(); }
#elif defined(__aarch64__)
inline void cpuRelax() { asm volatile("yield" ::: "memory"); }
#else
inline void cpuRelax() {}
#endif

} // namespace

void
DomainEngine::SpinBarrier::arriveAndWait()
{
    const std::uint32_t phase = phase_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        parties_) {
        arrived_.store(0, std::memory_order_relaxed);
        phase_.store(phase + 1, std::memory_order_release);
        return;
    }
    unsigned spins = 0;
    while (phase_.load(std::memory_order_acquire) == phase) {
        if (++spins < 1024)
            cpuRelax();
        else
            std::this_thread::yield();
    }
}

DomainEngine::DomainEngine(unsigned num_gpus, Cycle lookahead,
                           SimEngine mode, unsigned threads)
    : lookahead_(lookahead), mode_(mode),
      threads_(std::max(1u, threads))
{
    if (lookahead_ == 0)
        fatal("DomainEngine: lookahead window must be >= 1 cycle");
    const unsigned domains = num_gpus + 1;  // + system/CPU domain
    if (domains > engine_ctx::barrier_shard) {
        fatal("DomainEngine: %u domains exceed the %u shard slots",
              domains, engine_ctx::barrier_shard);
    }
    queues_.reserve(domains);
    for (unsigned d = 0; d < domains; ++d)
        queues_.push_back(std::make_unique<EventQueue>());
    outboxes_ = std::vector<Outbox>(domains);
}

void
DomainEngine::post(unsigned dst, Cycle when, EventFn fn)
{
    carve_assert(dst < queues_.size());
    if (!fn)
        return;
    const unsigned src = engine_ctx::current_shard;
    if (in_barrier_ || src >= queues_.size()) {
        // Single-threaded context (barrier phase, or an engine-less
        // caller): deliver directly; barrier-phase posts land at or
        // past the next window start by construction.
        queues_[dst]->schedule(when, std::move(fn));
        return;
    }
    Outbox &ob = outboxes_[src];
    ob.msgs.push_back(Msg{when, ob.next_seq++,
                          static_cast<std::uint32_t>(src),
                          static_cast<std::uint32_t>(dst),
                          std::move(fn)});
}

void
DomainEngine::atNextBarrier(std::function<void()> fn)
{
    // Only the system domain (kernel sequencing) and barrier-phase
    // code register actions, so the vector needs no locking.
    carve_assert(engine_ctx::current_shard == systemDomain() ||
                 engine_ctx::current_shard >= queues_.size());
    barrier_actions_.push_back(std::move(fn));
}

std::uint64_t
DomainEngine::eventsExecuted() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues_)
        n += q->executed();
    return n;
}

bool
DomainEngine::quiescent() const
{
    for (const auto &q : queues_)
        if (!q->empty())
            return false;
    for (const Outbox &ob : outboxes_)
        if (!ob.msgs.empty())
            return false;
    return barrier_actions_.empty();
}

void
DomainEngine::runAssigned(unsigned worker, unsigned num_workers,
                          Cycle wend,
                          const std::function<bool()> *per_event)
{
    for (unsigned d = worker; d < queues_.size(); d += num_workers) {
        engine_ctx::current_shard = d;
        queues_[d]->runWindow(wend, per_event);
    }
    engine_ctx::current_shard = engine_ctx::barrier_shard;
}

void
DomainEngine::windowBarrier(Cycle wend, const Hooks &hooks)
{
    in_barrier_ = true;
    engine_ctx::current_shard = engine_ctx::barrier_shard;

    // Self-profiling: sample per-domain occupancy and the outbox
    // depths before the exchange clears them. Everything here is a
    // pure function of the simulated schedule (the same windows and
    // outbox contents arise at any thread count), so these histograms
    // are engine- and thread-count invariant.
    if (profile_) {
        ++profile_->windows;
        if (prev_executed_.size() != queues_.size())
            prev_executed_.assign(queues_.size(), 0);
        std::uint64_t total_msgs = 0;
        for (const Outbox &ob : outboxes_) {
            profile_->outbox_depth.sample(ob.msgs.size());
            total_msgs += ob.msgs.size();
        }
        profile_->exchange_msgs.sample(total_msgs);
        for (std::size_t d = 0; d < queues_.size(); ++d) {
            const std::uint64_t ex = queues_[d]->executed();
            profile_->window_occupancy.sample(ex - prev_executed_[d]);
            prev_executed_[d] = ex;
        }
    }

    // Cross-domain exchange: merge every outbox and inject in
    // (tick, source-domain, sequence) order. Each destination queue
    // assigns its own sequence numbers in this deterministic order,
    // so intra-tick ordering downstream is thread-count independent.
    exchange_scratch_.clear();
    for (Outbox &ob : outboxes_) {
        for (Msg &m : ob.msgs)
            exchange_scratch_.push_back(std::move(m));
        ob.msgs.clear();
        ob.next_seq = 0;
    }
    std::sort(exchange_scratch_.begin(), exchange_scratch_.end(),
              [](const Msg &a, const Msg &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.src != b.src)
                      return a.src < b.src;
                  return a.seq < b.seq;
              });
    for (Msg &m : exchange_scratch_) {
        // The conservative contract: nothing may land inside the
        // window that just executed.
        carve_assert(m.when >= wend);
        queues_[m.dst]->schedule(m.when, std::move(m.fn));
    }
    exchange_scratch_.clear();

    barrier_tick_ = wend;
    if (hooks.on_barrier)
        hooks.on_barrier(wend);

    // Barrier actions (kernel boundaries) may schedule events but not
    // register further actions for this same barrier.
    std::vector<std::function<void()>> actions;
    actions.swap(barrier_actions_);
    for (auto &fn : actions)
        fn();
}

void
DomainEngine::runSerial(const Hooks &hooks)
{
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::duration<double>(hooks.max_wall_seconds);
    std::uint64_t until_check = clock_check_interval;
    const std::function<bool()> wall_pred = [&] {
        if (--until_check > 0)
            return true;
        until_check = clock_check_interval;
        if (std::chrono::steady_clock::now() < deadline)
            return true;
        requestStop();
        return false;
    };
    const std::function<bool()> *per_event =
        hooks.max_wall_seconds > 0.0 ? &wall_pred : nullptr;

    for (;;) {
        const Cycle wend = barrier_tick_ + lookahead_;
        in_barrier_ = false;
        runAssigned(0, 1, wend, per_event);
        windowBarrier(wend, hooks);
        if (stopRequested())
            break;
        if (hooks.keep_going && !hooks.keep_going(barrier_tick_))
            break;
        if (quiescent())
            break;
    }
}

void
DomainEngine::runParallel(const Hooks &hooks, unsigned num_workers)
{
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::duration<double>(hooks.max_wall_seconds);

    SpinBarrier start(num_workers);
    SpinBarrier done(num_workers);
    std::atomic<bool> shutdown{false};
    Cycle window_end = 0;
    std::vector<std::exception_ptr> errors(num_workers);

    // Barrier-wait telemetry: each worker times its own waits into a
    // private padded shard; the shards are merged into the profile in
    // worker-id order only after the workers have been joined, so no
    // shard is ever read while its owner might still write it.
    const bool time_waits = profile_ && profile_->host_timing;
    struct alignas(64) WaitShard
    {
        telemetry::Histogram h;
    };
    std::vector<WaitShard> waits(time_waits ? num_workers : 0);
    const auto timedWait = [&](SpinBarrier &b, unsigned id) {
        if (!time_waits) {
            b.arriveAndWait();
            return;
        }
        const auto t0 = std::chrono::steady_clock::now();
        b.arriveAndWait();
        waits[id].h.sample(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
    };

    // Per-worker window body. The wall-clock predicate is created in
    // the worker's own frame so its amortization counter is private.
    const auto workerWindow = [&](unsigned id) {
        std::uint64_t until_check = clock_check_interval;
        const std::function<bool()> wall_pred = [&] {
            if (--until_check > 0)
                return true;
            until_check = clock_check_interval;
            if (std::chrono::steady_clock::now() < deadline)
                return true;
            requestStop();
            return false;
        };
        const std::function<bool()> *per_event =
            hooks.max_wall_seconds > 0.0 ? &wall_pred : nullptr;
        try {
            runAssigned(id, num_workers, window_end, per_event);
        } catch (...) {
            errors[id] = std::current_exception();
            engine_ctx::current_shard = engine_ctx::barrier_shard;
            requestStop();
        }
    };

    std::vector<std::thread> workers;
    workers.reserve(num_workers - 1);
    for (unsigned id = 1; id < num_workers; ++id) {
        workers.emplace_back([&, id] {
            // fatal()/panic() on a worker must not kill the process
            // before the coordinator can report it from the main
            // thread with the caller's own capture semantics.
            ScopedErrorCapture capture;
            for (;;) {
                timedWait(start, id);
                if (shutdown.load(std::memory_order_acquire))
                    return;
                workerWindow(id);
                timedWait(done, id);
            }
        });
    }

    const auto stopWorkers = [&] {
        shutdown.store(true, std::memory_order_release);
        start.arriveAndWait();
        for (std::thread &t : workers)
            t.join();
        workers.clear();
    };

    try {
        for (;;) {
            window_end = barrier_tick_ + lookahead_;
            in_barrier_ = false;
            start.arriveAndWait();
            workerWindow(0);
            timedWait(done, 0);
            for (const std::exception_ptr &e : errors)
                if (e)
                    throw SimAbortError(LogLevel::Panic, "");
            windowBarrier(window_end, hooks);
            if (stopRequested())
                break;
            if (hooks.keep_going && !hooks.keep_going(barrier_tick_))
                break;
            if (quiescent())
                break;
        }
    } catch (...) {
        stopWorkers();
        throw;
    }
    stopWorkers();

    if (time_waits)
        for (const WaitShard &w : waits)
            profile_->barrier_wait_ns.merge(w.h);

    // Surface the first worker failure (lowest worker id) from the
    // main thread, preserving the caller's capture semantics: rethrow
    // under an active ScopedErrorCapture, re-issue as fatal()/panic()
    // otherwise (the capture on the worker diverted the message).
    for (const std::exception_ptr &e : errors) {
        if (!e)
            continue;
        try {
            std::rethrow_exception(e);
        } catch (const SimAbortError &abort) {
            if (errorCaptureActive())
                throw;
            if (abort.level() == LogLevel::Fatal)
                fatal("%s", abort.what());
            panic("%s", abort.what());
        }
    }
}

void
DomainEngine::run(const Hooks &hooks)
{
    stop_requested_.store(false, std::memory_order_relaxed);
    const unsigned workers =
        mode_ == SimEngine::Parallel
            ? std::min(threads_, numDomains())
            : 1u;
    if (workers > 1)
        runParallel(hooks, workers);
    else
        runSerial(hooks);
    in_barrier_ = false;
    engine_ctx::current_shard = engine_ctx::barrier_shard;
}

} // namespace carve
