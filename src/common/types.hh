/**
 * @file
 * Fundamental scalar types used throughout carve-sim.
 */

#ifndef CARVE_COMMON_TYPES_HH
#define CARVE_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace carve {

/** Virtual or physical byte address. */
using Addr = std::uint64_t;

/** Simulation time in GPU cycles (1 GHz => 1 cycle == 1 ns). */
using Cycle = std::uint64_t;

/** Identifier of a GPU node in the multi-GPU system. */
using NodeId = std::uint32_t;

/** Identifier of an SM within one GPU. */
using SmId = std::uint32_t;

/** Identifier of a Cooperative Thread Array (thread block). */
using CtaId = std::uint64_t;

/** Identifier of a warp within an SM. */
using WarpId = std::uint32_t;

/** Kernel invocation index within a workload. */
using KernelId = std::uint32_t;

/** Sentinel for "no node" (e.g., unmapped page, CPU-resident page). */
inline constexpr NodeId invalid_node =
    std::numeric_limits<NodeId>::max();

/** Sentinel node id used for pages living in CPU system memory. */
inline constexpr NodeId cpu_node = invalid_node - 1;

/** Sentinel address. */
inline constexpr Addr invalid_addr = std::numeric_limits<Addr>::max();

/** Sentinel cycle used for "never" / "not scheduled". */
inline constexpr Cycle never = std::numeric_limits<Cycle>::max();

/** Kind of memory access carried by a request. */
enum class AccessType : std::uint8_t {
    Read,
    Write,
};

/** True when the access type is a write. */
inline bool
isWrite(AccessType t)
{
    return t == AccessType::Write;
}

} // namespace carve

#endif // CARVE_COMMON_TYPES_HH
