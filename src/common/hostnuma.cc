#include "common/hostnuma.hh"

#if CARVE_NUMA_ENABLED
#include <dlfcn.h>
#include <sched.h>

#include <mutex>
#endif

namespace carve {
namespace hostnuma {

#if CARVE_NUMA_ENABLED

namespace {

/** Resolved libnuma entry points; fn pointers stay null when the
 * library (or kernel support) is absent. */
struct LibNuma
{
    int (*numa_available)() = nullptr;
    int (*num_configured_nodes)() = nullptr;
    int (*node_of_cpu)(int) = nullptr;
    int (*run_on_node)(int) = nullptr;
    void (*set_preferred)(int) = nullptr;
    void *(*alloc_onnode)(std::size_t, int) = nullptr;
    void (*numa_free)(void *, std::size_t) = nullptr;

    bool ok = false;
    const char *status = "unavailable (not initialized)";
};

const LibNuma &
lib()
{
    static LibNuma l;
    static std::once_flag once;
    std::call_once(once, [] {
        void *h = dlopen("libnuma.so.1", RTLD_NOW | RTLD_LOCAL);
        if (!h) {
            l.status = "unavailable (libnuma.so.1 not found)";
            return;
        }
        const auto sym = [h](const char *n) {
            return dlsym(h, n);
        };
        l.numa_available = reinterpret_cast<int (*)()>(
            sym("numa_available"));
        l.num_configured_nodes = reinterpret_cast<int (*)()>(
            sym("numa_num_configured_nodes"));
        l.node_of_cpu = reinterpret_cast<int (*)(int)>(
            sym("numa_node_of_cpu"));
        l.run_on_node = reinterpret_cast<int (*)(int)>(
            sym("numa_run_on_node"));
        l.set_preferred = reinterpret_cast<void (*)(int)>(
            sym("numa_set_preferred"));
        l.alloc_onnode =
            reinterpret_cast<void *(*)(std::size_t, int)>(
                sym("numa_alloc_onnode"));
        l.numa_free = reinterpret_cast<void (*)(void *, std::size_t)>(
            sym("numa_free"));
        if (!l.numa_available || !l.num_configured_nodes ||
            !l.alloc_onnode || !l.numa_free) {
            l.status = "unavailable (libnuma symbols missing)";
            return;
        }
        if (l.numa_available() < 0) {
            l.status = "unavailable (kernel reports no NUMA)";
            return;
        }
        l.ok = true;
        l.status = "libnuma loaded";
    });
    return l;
}

} // namespace

bool
available()
{
    return lib().ok;
}

int
nodeCount()
{
    const LibNuma &l = lib();
    if (!l.ok)
        return 1;
    const int n = l.num_configured_nodes();
    return n > 0 ? n : 1;
}

int
currentNode()
{
    const LibNuma &l = lib();
    if (!l.ok || !l.node_of_cpu)
        return 0;
    const int cpu = sched_getcpu();
    if (cpu < 0)
        return 0;
    const int node = l.node_of_cpu(cpu);
    return node >= 0 ? node : 0;
}

bool
bindThreadToNode(int node)
{
    const LibNuma &l = lib();
    if (!l.ok || !l.run_on_node || node < 0 || node >= nodeCount())
        return false;
    if (l.run_on_node(node) != 0)
        return false;
    if (l.set_preferred)
        l.set_preferred(node);
    return true;
}

void *
allocOnNode(std::size_t bytes, int node)
{
    const LibNuma &l = lib();
    if (!l.ok || node < 0 || node >= nodeCount())
        return nullptr;
    return l.alloc_onnode(bytes, node);
}

void
freeOnNode(void *p, std::size_t bytes)
{
    const LibNuma &l = lib();
    if (l.ok && p)
        l.numa_free(p, bytes);
}

const char *
statusString()
{
    return lib().status;
}

#else // !CARVE_NUMA_ENABLED

bool
available()
{
    return false;
}

int
nodeCount()
{
    return 1;
}

int
currentNode()
{
    return 0;
}

bool
bindThreadToNode(int)
{
    return false;
}

void *
allocOnNode(std::size_t, int)
{
    return nullptr;
}

void
freeOnNode(void *, std::size_t)
{
}

const char *
statusString()
{
    return "unavailable (compiled out)";
}

#endif // CARVE_NUMA_ENABLED

} // namespace hostnuma
} // namespace carve
