/**
 * @file
 * Completion: a 32-byte trivially-copyable "done" delegate for the
 * request hot path (SM -> L2 -> RDC -> DRAM).
 *
 * std::function<void()> costs a heap allocation whenever a capture
 * exceeds its tiny SBO and an indirect wrapper call always; on the
 * request path those captures are invariably (object, line-address,
 * small-int) triples. Completion stores exactly that shape — a free
 * thunk pointer, an object pointer and two 64-bit payload words — so
 * it is POD, copies by memcpy, nests inside bindEvent tuples (a
 * bound (Addr, Completion) event fills the EventFn SBO exactly) and
 * parks in Pool<> records without ownership questions.
 *
 * Typical use:
 *     mem_.access(line, Read,
 *                 Completion::bind<&GpuNode::finishFill>(this, line,
 *                                                        remote));
 * The bound member may take zero, one or two trailing integral /
 * enum / bool parameters; payload words are static_cast back to the
 * declared parameter types at invoke time. The raw (fn, ctx, a, b)
 * constructor exists for tests and C-style call sites.
 */

#ifndef CARVE_COMMON_COMPLETION_HH
#define CARVE_COMMON_COMPLETION_HH

#include <cstdint>
#include <type_traits>

namespace carve {

namespace detail {

template <class M> struct MemFn0;
template <class C, class R> struct MemFn0<R (C::*)()>
{
    using Class = C;
};

template <class M> struct MemFn1;
template <class C, class R, class A> struct MemFn1<R (C::*)(A)>
{
    using Class = C;
    using A1 = A;
};

template <class M> struct MemFn2;
template <class C, class R, class A, class B>
struct MemFn2<R (C::*)(A, B)>
{
    using Class = C;
    using A1 = A;
    using A2 = B;
};

template <class M>
concept NullaryMember = requires { typename MemFn0<M>::Class; };
template <class M>
concept UnaryMember = requires { typename MemFn1<M>::Class; };
template <class M>
concept BinaryMember = requires { typename MemFn2<M>::Class; };

} // namespace detail

class Completion
{
  public:
    /** Raw thunk shape: (context, payload a, payload b). */
    using Fn = void (*)(void *, std::uint64_t, std::uint64_t);

    constexpr Completion() = default;

    /** Raw form for tests and non-member call sites. */
    constexpr Completion(Fn fn, void *ctx, std::uint64_t a = 0,
                         std::uint64_t b = 0)
        : fn_(fn), ctx_(ctx), a_(a), b_(b)
    {
    }

    /** Bind a member function; trailing payload words are cast back
     * to the member's declared parameter types on invoke. */
    template <auto Method, class C>
    static Completion
    bind(C *obj, std::uint64_t a = 0, std::uint64_t b = 0)
    {
        using M = decltype(Method);
        if constexpr (detail::NullaryMember<M>) {
            static_assert(
                std::is_base_of_v<typename detail::MemFn0<M>::Class,
                                  C>);
            return Completion(
                [](void *ctx, std::uint64_t, std::uint64_t) {
                    (static_cast<C *>(ctx)->*Method)();
                },
                obj, a, b);
        } else if constexpr (detail::UnaryMember<M>) {
            using A1 = typename detail::MemFn1<M>::A1;
            return Completion(
                [](void *ctx, std::uint64_t x, std::uint64_t) {
                    (static_cast<C *>(ctx)->*Method)(
                        static_cast<A1>(x));
                },
                obj, a, b);
        } else {
            static_assert(detail::BinaryMember<M>,
                          "bind supports 0-2 integral parameters");
            using A1 = typename detail::MemFn2<M>::A1;
            using A2 = typename detail::MemFn2<M>::A2;
            return Completion(
                [](void *ctx, std::uint64_t x, std::uint64_t y) {
                    (static_cast<C *>(ctx)->*Method)(
                        static_cast<A1>(x), static_cast<A2>(y));
                },
                obj, a, b);
        }
    }

    void
    operator()() const
    {
        fn_(ctx_, a_, b_);
    }

    explicit
    operator bool() const
    {
        return fn_ != nullptr;
    }

  private:
    Fn fn_ = nullptr;
    void *ctx_ = nullptr;
    std::uint64_t a_ = 0;
    std::uint64_t b_ = 0;
};

static_assert(sizeof(Completion) == 32);
static_assert(std::is_trivially_copyable_v<Completion>);
static_assert(std::is_trivially_destructible_v<Completion>);

} // namespace carve

#endif // CARVE_COMMON_COMPLETION_HH
