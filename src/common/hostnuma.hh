/**
 * @file
 * Host NUMA placement shim. "hostnuma" (not "numa") because
 * src/numa/ models the *simulated* machine's NUMA behaviour; this
 * namespace is about where the *simulator's own* memory and threads
 * land on the host running it.
 *
 * Built with -DCARVE_NUMA=ON the implementation dlopens
 * libnuma.so.1 at first use — no numa.h, no link-time dependency —
 * and resolves the handful of entry points it needs. If the library
 * is missing, or numa_available() reports no support, or the build
 * has CARVE_NUMA=OFF, every call degrades to a portable no-op
 * answer: available()==false, one node, ordinary heap allocation.
 * Callers therefore never branch on platform, only on policy.
 */

#ifndef CARVE_COMMON_HOSTNUMA_HH
#define CARVE_COMMON_HOSTNUMA_HH

#include <cstddef>

namespace carve {
namespace hostnuma {

/** True iff libnuma loaded and the kernel reports NUMA support. */
bool available();

/** Configured node count; 1 when unavailable. */
int nodeCount();

/** Node the calling thread is executing on; 0 when unavailable. */
int currentNode();

/** Bind the calling thread's CPU + memory preference to @p node.
 * Returns false (no-op) when unavailable or @p node is out of
 * range. */
bool bindThreadToNode(int node);

/** Allocate @p bytes on @p node. Returns nullptr when unavailable —
 * caller falls back to the ordinary heap. Pair with freeOnNode. */
void *allocOnNode(std::size_t bytes, int node);

/** Free memory obtained from allocOnNode (size must match). */
void freeOnNode(void *p, std::size_t bytes);

/** One-line status for logs: "libnuma: 2 nodes" / "unavailable
 * (compiled out)" / "unavailable (libnuma.so.1 not found)". */
const char *statusString();

} // namespace hostnuma
} // namespace carve

#endif // CARVE_COMMON_HOSTNUMA_HH
