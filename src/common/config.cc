#include "common/config.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <iterator>

#include "common/logging.hh"

namespace carve {

namespace {

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

std::uint64_t
parseU64(const std::string &key, const std::string &value)
{
    try {
        std::size_t pos = 0;
        std::uint64_t v = std::stoull(value, &pos, 0);
        if (pos != value.size())
            fatal("config: trailing garbage in %s=%s",
                  key.c_str(), value.c_str());
        return v;
    } catch (...) {
        fatal("config: cannot parse %s=%s as integer",
              key.c_str(), value.c_str());
    }
}

double
parseDouble(const std::string &key, const std::string &value)
{
    try {
        std::size_t pos = 0;
        double v = std::stod(value, &pos);
        if (pos != value.size())
            fatal("config: trailing garbage in %s=%s",
                  key.c_str(), value.c_str());
        return v;
    } catch (...) {
        fatal("config: cannot parse %s=%s as double",
              key.c_str(), value.c_str());
    }
}

bool
parseBool(const std::string &key, const std::string &value)
{
    const std::string v = lower(value);
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("config: cannot parse %s=%s as bool",
          key.c_str(), value.c_str());
}

} // namespace

SimEngine
parseSimEngine(const std::string &s)
{
    const std::string v = lower(s);
    if (v == "serial")
        return SimEngine::Serial;
    if (v == "parallel" || v == "par")
        return SimEngine::Parallel;
    fatal("unknown sim engine '%s' (valid: serial, parallel)",
          s.c_str());
}

PlacementPolicy
parsePlacementPolicy(const std::string &s)
{
    const std::string v = lower(s);
    if (v == "firsttouch" || v == "first-touch" || v == "ft")
        return PlacementPolicy::FirstTouch;
    if (v == "roundrobin" || v == "round-robin" || v == "rr")
        return PlacementPolicy::RoundRobin;
    if (v == "local" || v == "localonly")
        return PlacementPolicy::LocalOnly;
    fatal("unknown placement policy '%s'", s.c_str());
}

ReplicationPolicy
parseReplicationPolicy(const std::string &s)
{
    const std::string v = lower(s);
    if (v == "none")
        return ReplicationPolicy::None;
    if (v == "readonly" || v == "read-only" || v == "ro")
        return ReplicationPolicy::ReadOnly;
    if (v == "all" || v == "ideal")
        return ReplicationPolicy::All;
    fatal("unknown replication policy '%s'", s.c_str());
}

RdcCoherence
parseRdcCoherence(const std::string &s)
{
    const std::string v = lower(s);
    if (v == "none")
        return RdcCoherence::None;
    if (v == "software" || v == "swc" || v == "sw")
        return RdcCoherence::Software;
    if (v == "hwvi" || v == "hardware" || v == "hwc" || v == "vi")
        return RdcCoherence::HardwareVI;
    fatal("unknown RDC coherence mode '%s'", s.c_str());
}

RdcWritePolicy
parseRdcWritePolicy(const std::string &s)
{
    const std::string v = lower(s);
    if (v == "writethrough" || v == "write-through" || v == "wt")
        return RdcWritePolicy::WriteThrough;
    if (v == "writeback" || v == "write-back" || v == "wb")
        return RdcWritePolicy::WriteBack;
    fatal("unknown RDC write policy '%s'", s.c_str());
}

const char *
simEngineName(SimEngine e)
{
    switch (e) {
    case SimEngine::Serial: return "serial";
    case SimEngine::Parallel: return "parallel";
    }
    fatal("simEngineName: bad enum value %d", static_cast<int>(e));
}

const char *
placementPolicyName(PlacementPolicy p)
{
    switch (p) {
    case PlacementPolicy::FirstTouch: return "firsttouch";
    case PlacementPolicy::RoundRobin: return "roundrobin";
    case PlacementPolicy::LocalOnly: return "local";
    }
    fatal("placementPolicyName: bad enum value %d",
          static_cast<int>(p));
}

const char *
replicationPolicyName(ReplicationPolicy p)
{
    switch (p) {
    case ReplicationPolicy::None: return "none";
    case ReplicationPolicy::ReadOnly: return "readonly";
    case ReplicationPolicy::All: return "all";
    }
    fatal("replicationPolicyName: bad enum value %d",
          static_cast<int>(p));
}

const char *
rdcCoherenceName(RdcCoherence c)
{
    switch (c) {
    case RdcCoherence::None: return "none";
    case RdcCoherence::Software: return "software";
    case RdcCoherence::HardwareVI: return "hwvi";
    }
    fatal("rdcCoherenceName: bad enum value %d",
          static_cast<int>(c));
}

const char *
rdcWritePolicyName(RdcWritePolicy p)
{
    switch (p) {
    case RdcWritePolicy::WriteThrough: return "writethrough";
    case RdcWritePolicy::WriteBack: return "writeback";
    }
    fatal("rdcWritePolicyName: bad enum value %d",
          static_cast<int>(p));
}

SystemConfig
SystemConfig::scaled(unsigned k) const
{
    if (!isPowerOf2(k))
        fatal("SystemConfig::scaled: factor %u is not a power of two", k);
    SystemConfig c = *this;
    c.l1.size /= k;
    c.l2.size /= k;
    c.rdc.size /= k;
    c.dram.capacity /= k;
    return c;
}

namespace {

std::string
formatU64(std::uint64_t v)
{
    return std::to_string(v);
}

/** Enough digits to parse back bit-identical (IEEE double). */
std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
formatBool(bool v)
{
    return v ? "true" : "false";
}

/**
 * One overridable field: its dotted key plus a setter that parses a
 * textual value into the field and a getter that serializes the field
 * back out. applyOverride(), listOverrideKeys() and toOverrides()
 * all walk this one table.
 */
struct KeyEntry
{
    const char *key;
    void (*set)(SystemConfig &, const std::string &);
    std::string (*get)(const SystemConfig &);
};

// The decltype cast lets one macro serve unsigned, Cycle and
// std::uint64_t fields alike.
#define KEY_U64(name, field)                                          \
    {name,                                                            \
     [](SystemConfig &c, const std::string &v) {                      \
         c.field =                                                    \
             static_cast<decltype(c.field)>(parseU64(name, v));       \
     },                                                               \
     [](const SystemConfig &c) {                                      \
         return formatU64(static_cast<std::uint64_t>(c.field));       \
     }}
#define KEY_DBL(name, field)                                          \
    {name,                                                            \
     [](SystemConfig &c, const std::string &v) {                      \
         c.field = parseDouble(name, v);                              \
     },                                                               \
     [](const SystemConfig &c) { return formatDouble(c.field); }}
#define KEY_BOOL(name, field)                                         \
    {name,                                                            \
     [](SystemConfig &c, const std::string &v) {                      \
         c.field = parseBool(name, v);                                \
     },                                                               \
     [](const SystemConfig &c) { return formatBool(c.field); }}
#define KEY_ENUM(name, field, parse_fn, name_fn)                      \
    {name,                                                            \
     [](SystemConfig &c, const std::string &v) {                      \
         c.field = parse_fn(v);                                       \
     },                                                               \
     [](const SystemConfig &c) {                                      \
         return std::string(name_fn(c.field));                        \
     }}

const KeyEntry key_table[] = {
    KEY_U64("num_gpus", num_gpus),
    KEY_U64("page_size", page_size),
    KEY_U64("line_size", line_size),
    KEY_U64("seed", seed),
    KEY_ENUM("engine", engine, parseSimEngine, simEngineName),
    KEY_U64("sim_threads", sim_threads),

    KEY_U64("core.sms_per_gpu", core.sms_per_gpu),
    KEY_U64("core.max_warps_per_sm", core.max_warps_per_sm),
    KEY_U64("core.lsu_issue_per_cycle", core.lsu_issue_per_cycle),
    KEY_U64("core.l1_to_l2_latency", core.l1_to_l2_latency),
    KEY_U64("core.kernel_launch_latency",
            core.kernel_launch_latency),

    KEY_U64("l1.size", l1.size),
    KEY_U64("l1.ways", l1.ways),
    KEY_U64("l1.hit_latency", l1.hit_latency),
    KEY_U64("l1.mshrs", l1.mshrs),

    KEY_U64("l2.size", l2.size),
    KEY_U64("l2.ways", l2.ways),
    KEY_U64("l2.hit_latency", l2.hit_latency),
    KEY_U64("l2.mshrs", l2.mshrs),

    KEY_U64("tlb.l1_entries", tlb.l1_entries),
    KEY_U64("tlb.l2_entries", tlb.l2_entries),
    KEY_U64("tlb.l1_latency", tlb.l1_latency),
    KEY_U64("tlb.l2_latency", tlb.l2_latency),
    KEY_U64("tlb.walk_latency", tlb.walk_latency),

    KEY_U64("dram.capacity", dram.capacity),
    KEY_U64("dram.channels", dram.channels),
    KEY_DBL("dram.channel_bw", dram.channel_bw),
    KEY_U64("dram.banks_per_channel", dram.banks_per_channel),
    KEY_U64("dram.row_size", dram.row_size),
    KEY_U64("dram.row_hit_latency", dram.row_hit_latency),
    KEY_U64("dram.row_miss_latency", dram.row_miss_latency),
    KEY_U64("dram.read_queue", dram.read_queue),
    KEY_U64("dram.write_queue", dram.write_queue),
    KEY_DBL("dram.write_drain_high", dram.write_drain_high),
    KEY_DBL("dram.write_drain_low", dram.write_drain_low),

    KEY_DBL("link.gpu_gpu_bw", link.gpu_gpu_bw),
    KEY_DBL("link.cpu_gpu_bw", link.cpu_gpu_bw),
    KEY_U64("link.latency", link.latency),
    KEY_U64("link.ctrl_packet_size", link.ctrl_packet_size),
    KEY_U64("link.cpu_mem_latency", link.cpu_mem_latency),

    KEY_BOOL("rdc.enabled", rdc.enabled),
    KEY_U64("rdc.size", rdc.size),
    KEY_ENUM("rdc.write_policy", rdc.write_policy,
             parseRdcWritePolicy, rdcWritePolicyName),
    KEY_ENUM("rdc.coherence", rdc.coherence, parseRdcCoherence,
             rdcCoherenceName),
    KEY_BOOL("rdc.hit_predictor", rdc.hit_predictor),
    KEY_U64("rdc.epoch_bits", rdc.epoch_bits),
    KEY_U64("rdc.controller_latency", rdc.controller_latency),
    KEY_U64("rdc.mshr_entries", rdc.mshr_entries),

    KEY_ENUM("numa.placement", numa.placement,
             parsePlacementPolicy, placementPolicyName),
    KEY_ENUM("numa.replication", numa.replication,
             parseReplicationPolicy, replicationPolicyName),
    KEY_BOOL("numa.migration", numa.migration),
    KEY_U64("numa.migration_threshold", numa.migration_threshold),
    KEY_U64("numa.migration_stall", numa.migration_stall),
    KEY_DBL("numa.spill_fraction", numa.spill_fraction),
    KEY_U64("numa.um_migration_threshold",
            numa.um_migration_threshold),
    KEY_BOOL("numa.llc_caches_remote", numa.llc_caches_remote),
    KEY_BOOL("numa.charge_bulk_transfers",
             numa.charge_bulk_transfers),
};

#undef KEY_U64
#undef KEY_DBL
#undef KEY_BOOL
#undef KEY_ENUM

} // namespace

void
SystemConfig::applyOverride(const std::string &key,
                            const std::string &value)
{
    const std::string k = lower(key);
    for (const KeyEntry &e : key_table) {
        if (k == e.key) {
            e.set(*this, value);
            return;
        }
    }
    fatal("config: unknown override key '%s'", key.c_str());
}

std::vector<std::string>
SystemConfig::listOverrideKeys()
{
    std::vector<std::string> keys;
    keys.reserve(std::size(key_table));
    for (const KeyEntry &e : key_table)
        keys.emplace_back(e.key);
    return keys;
}

std::vector<ConfigOverride>
SystemConfig::toOverrides() const
{
    std::vector<ConfigOverride> out;
    out.reserve(std::size(key_table));
    for (const KeyEntry &e : key_table)
        out.push_back(ConfigOverride{e.key, e.get(*this)});
    return out;
}

std::vector<ConfigOverride>
SystemConfig::canonicalOverrides() const
{
    std::vector<ConfigOverride> out = toOverrides();
    std::sort(out.begin(), out.end(),
              [](const ConfigOverride &a, const ConfigOverride &b) {
                  return a.key < b.key;
              });
    return out;
}

void
SystemConfig::validate() const
{
    if (num_gpus == 0)
        fatal("config: num_gpus must be >= 1");
    if (sim_threads == 0)
        fatal("config: sim_threads must be >= 1");
    if (!isPowerOf2(line_size))
        fatal("config: line_size must be a power of two");
    if (!isPowerOf2(page_size) || page_size < line_size)
        fatal("config: page_size must be a power of two >= line_size");
    if (l1.size == 0 || l2.size == 0)
        fatal("config: cache sizes must be nonzero");
    if (l1.mshrs == 0)
        fatal("config: l1.mshrs must be >= 1 "
              "(override key \"l1.mshrs\")");
    if (l2.mshrs == 0)
        fatal("config: l2.mshrs must be >= 1 "
              "(override key \"l2.mshrs\")");
    if (l1.size % (line_size * l1.ways) != 0)
        fatal("config: L1 geometry (size/ways/line) is not integral");
    if (l2.size % (line_size * l2.ways) != 0)
        fatal("config: L2 geometry (size/ways/line) is not integral");
    if (dram.channels == 0 || dram.channel_bw <= 0.0)
        fatal("config: DRAM channel configuration invalid");
    if (rdc.enabled) {
        if (rdc.size == 0 || rdc.size % line_size != 0)
            fatal("config: RDC size must be a nonzero line multiple");
        if (rdc.size >= dram.capacity)
            fatal("config: RDC carve-out exceeds GPU memory capacity");
        if (rdc.mshr_entries == 0)
            fatal("config: rdc.mshr_entries must be >= 1 "
                  "(override key \"rdc.mshr_entries\")");
    }
    if (numa.spill_fraction < 0.0 || numa.spill_fraction >= 1.0)
        fatal("config: spill_fraction must lie in [0, 1)");
    if (num_gpus == 1 && numa.placement != PlacementPolicy::LocalOnly &&
        numa.placement != PlacementPolicy::FirstTouch) {
        warn("config: single-GPU run with non-local placement");
    }
}

} // namespace carve
