#include "common/config.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"

namespace carve {

namespace {

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

std::uint64_t
parseU64(const std::string &key, const std::string &value)
{
    try {
        std::size_t pos = 0;
        std::uint64_t v = std::stoull(value, &pos, 0);
        if (pos != value.size())
            fatal("config: trailing garbage in %s=%s",
                  key.c_str(), value.c_str());
        return v;
    } catch (...) {
        fatal("config: cannot parse %s=%s as integer",
              key.c_str(), value.c_str());
    }
}

double
parseDouble(const std::string &key, const std::string &value)
{
    try {
        std::size_t pos = 0;
        double v = std::stod(value, &pos);
        if (pos != value.size())
            fatal("config: trailing garbage in %s=%s",
                  key.c_str(), value.c_str());
        return v;
    } catch (...) {
        fatal("config: cannot parse %s=%s as double",
              key.c_str(), value.c_str());
    }
}

bool
parseBool(const std::string &key, const std::string &value)
{
    const std::string v = lower(value);
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("config: cannot parse %s=%s as bool",
          key.c_str(), value.c_str());
}

} // namespace

PlacementPolicy
parsePlacementPolicy(const std::string &s)
{
    const std::string v = lower(s);
    if (v == "firsttouch" || v == "first-touch" || v == "ft")
        return PlacementPolicy::FirstTouch;
    if (v == "roundrobin" || v == "round-robin" || v == "rr")
        return PlacementPolicy::RoundRobin;
    if (v == "local" || v == "localonly")
        return PlacementPolicy::LocalOnly;
    fatal("unknown placement policy '%s'", s.c_str());
}

ReplicationPolicy
parseReplicationPolicy(const std::string &s)
{
    const std::string v = lower(s);
    if (v == "none")
        return ReplicationPolicy::None;
    if (v == "readonly" || v == "read-only" || v == "ro")
        return ReplicationPolicy::ReadOnly;
    if (v == "all" || v == "ideal")
        return ReplicationPolicy::All;
    fatal("unknown replication policy '%s'", s.c_str());
}

RdcCoherence
parseRdcCoherence(const std::string &s)
{
    const std::string v = lower(s);
    if (v == "none")
        return RdcCoherence::None;
    if (v == "software" || v == "swc" || v == "sw")
        return RdcCoherence::Software;
    if (v == "hwvi" || v == "hardware" || v == "hwc" || v == "vi")
        return RdcCoherence::HardwareVI;
    fatal("unknown RDC coherence mode '%s'", s.c_str());
}

SystemConfig
SystemConfig::scaled(unsigned k) const
{
    if (!isPowerOf2(k))
        fatal("SystemConfig::scaled: factor %u is not a power of two", k);
    SystemConfig c = *this;
    c.l1.size /= k;
    c.l2.size /= k;
    c.rdc.size /= k;
    c.dram.capacity /= k;
    return c;
}

void
SystemConfig::applyOverride(const std::string &key,
                            const std::string &value)
{
    const std::string k = lower(key);
    if (k == "num_gpus") {
        num_gpus = static_cast<unsigned>(parseU64(k, value));
    } else if (k == "seed") {
        seed = parseU64(k, value);
    } else if (k == "page_size") {
        page_size = parseU64(k, value);
    } else if (k == "line_size") {
        line_size = parseU64(k, value);
    } else if (k == "core.sms_per_gpu") {
        core.sms_per_gpu = static_cast<unsigned>(parseU64(k, value));
    } else if (k == "core.max_warps_per_sm") {
        core.max_warps_per_sm =
            static_cast<unsigned>(parseU64(k, value));
    } else if (k == "l1.size") {
        l1.size = parseU64(k, value);
    } else if (k == "l2.size") {
        l2.size = parseU64(k, value);
    } else if (k == "l2.ways") {
        l2.ways = static_cast<unsigned>(parseU64(k, value));
    } else if (k == "dram.capacity") {
        dram.capacity = parseU64(k, value);
    } else if (k == "dram.channels") {
        dram.channels = static_cast<unsigned>(parseU64(k, value));
    } else if (k == "dram.channel_bw") {
        dram.channel_bw = parseDouble(k, value);
    } else if (k == "link.gpu_gpu_bw") {
        link.gpu_gpu_bw = parseDouble(k, value);
    } else if (k == "link.cpu_gpu_bw") {
        link.cpu_gpu_bw = parseDouble(k, value);
    } else if (k == "link.latency") {
        link.latency = parseU64(k, value);
    } else if (k == "rdc.enabled") {
        rdc.enabled = parseBool(k, value);
    } else if (k == "rdc.size") {
        rdc.size = parseU64(k, value);
    } else if (k == "rdc.coherence") {
        rdc.coherence = parseRdcCoherence(value);
    } else if (k == "rdc.write_policy") {
        rdc.write_policy = lower(value) == "writeback"
            ? RdcWritePolicy::WriteBack : RdcWritePolicy::WriteThrough;
    } else if (k == "rdc.hit_predictor") {
        rdc.hit_predictor = parseBool(k, value);
    } else if (k == "numa.placement") {
        numa.placement = parsePlacementPolicy(value);
    } else if (k == "numa.replication") {
        numa.replication = parseReplicationPolicy(value);
    } else if (k == "numa.migration") {
        numa.migration = parseBool(k, value);
    } else if (k == "numa.migration_threshold") {
        numa.migration_threshold =
            static_cast<unsigned>(parseU64(k, value));
    } else if (k == "numa.spill_fraction") {
        numa.spill_fraction = parseDouble(k, value);
    } else if (k == "numa.llc_caches_remote") {
        numa.llc_caches_remote = parseBool(k, value);
    } else if (k == "numa.charge_bulk_transfers") {
        numa.charge_bulk_transfers = parseBool(k, value);
    } else {
        fatal("config: unknown override key '%s'", key.c_str());
    }
}

void
SystemConfig::validate() const
{
    if (num_gpus == 0)
        fatal("config: num_gpus must be >= 1");
    if (!isPowerOf2(line_size))
        fatal("config: line_size must be a power of two");
    if (!isPowerOf2(page_size) || page_size < line_size)
        fatal("config: page_size must be a power of two >= line_size");
    if (l1.size == 0 || l2.size == 0)
        fatal("config: cache sizes must be nonzero");
    if (l1.size % (line_size * l1.ways) != 0)
        fatal("config: L1 geometry (size/ways/line) is not integral");
    if (l2.size % (line_size * l2.ways) != 0)
        fatal("config: L2 geometry (size/ways/line) is not integral");
    if (dram.channels == 0 || dram.channel_bw <= 0.0)
        fatal("config: DRAM channel configuration invalid");
    if (rdc.enabled) {
        if (rdc.size == 0 || rdc.size % line_size != 0)
            fatal("config: RDC size must be a nonzero line multiple");
        if (rdc.size >= dram.capacity)
            fatal("config: RDC carve-out exceeds GPU memory capacity");
    }
    if (numa.spill_fraction < 0.0 || numa.spill_fraction >= 1.0)
        fatal("config: spill_fraction must lie in [0, 1)");
    if (num_gpus == 1 && numa.placement != PlacementPolicy::LocalOnly &&
        numa.placement != PlacementPolicy::FirstTouch) {
        warn("config: single-GPU run with non-local placement");
    }
}

} // namespace carve
