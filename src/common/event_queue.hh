/**
 * @file
 * Discrete-event simulation engine.
 *
 * Every timed component in carve-sim (DRAM channels, links, SMs, the
 * RDC controller) schedules callbacks on a shared EventQueue. Events at
 * equal ticks fire in scheduling order (a monotonic sequence number
 * breaks ties) so simulations are fully deterministic.
 */

#ifndef CARVE_COMMON_EVENT_QUEUE_HH
#define CARVE_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace carve {

/**
 * Min-heap event queue keyed by (tick, sequence).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulation time in cycles. */
    Cycle now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * Scheduling in the past is a simulator bug.
     */
    void schedule(Cycle when, Callback cb);

    /** Schedule @p cb @p delay cycles from now. */
    void
    scheduleAfter(Cycle delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /**
     * Run events until the queue drains or @p limit events have fired.
     * @return number of events executed.
     */
    std::uint64_t run(std::uint64_t limit = UINT64_MAX);

    /**
     * Run events while @p keep_going returns true (checked before each
     * event). @return number of events executed.
     */
    std::uint64_t runWhile(const std::function<bool()> &keep_going);

    /** Execute exactly one event if available. @return true if fired. */
    bool step();

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    void fireNext();

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    Cycle now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace carve

#endif // CARVE_COMMON_EVENT_QUEUE_HH
