/**
 * @file
 * Discrete-event simulation engine.
 *
 * Every timed component in carve-sim (DRAM channels, links, SMs, the
 * RDC controller) schedules callbacks on a shared EventQueue. Events at
 * equal ticks fire in scheduling order (a monotonic sequence number
 * breaks ties) so simulations are fully deterministic.
 *
 * The engine is built for throughput:
 *
 *  - EventFn is an allocation-free callback type: any callable up to
 *    EventFn::inline_size bytes is stored inline (no heap, unlike
 *    std::function); larger callables fall back to the heap but never
 *    occur on hot paths.
 *  - Event nodes come from a chunked free list, so steady-state
 *    scheduling performs no allocation at all.
 *  - The default engine is a two-level calendar queue: a near-horizon
 *    ring of per-cycle buckets gives O(1) schedule/fire for the dense
 *    short-delay traffic the simulator generates, and a far-horizon
 *    binary heap absorbs the rare long-delay events (kernel launches,
 *    watchdogs). Events migrate heap -> ring as simulated time
 *    advances, preserving exact (tick, seq) order.
 *
 * The legacy single-heap engine is kept behind the CARVE_EVENTQ=heap
 * environment switch (or EventEngine::Heap) purely so tests can assert
 * the two engines replay byte-identically; it will be removed once the
 * calendar engine has soaked.
 */

#ifndef CARVE_COMMON_EVENT_QUEUE_HH
#define CARVE_COMMON_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace carve {

/**
 * Move-only callable with small-buffer optimization, tailored to the
 * event queue's hot path: callables up to inline_size bytes (a
 * this-pointer plus several words of bound arguments, or a moved-in
 * std::function) are stored inline with no heap allocation.
 */
class EventFn
{
  public:
    /** Inline storage: fits every hot-path closure in the simulator
     * (a Completion, a moved-in std::function, or a bindEvent closure
     * of a this-pointer plus a few words), sized so a pooled EventNode
     * is exactly one 64-byte cache line. */
    static constexpr std::size_t inline_size = 32;

    EventFn() noexcept = default;
    EventFn(std::nullptr_t) noexcept {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventFn(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= inline_size &&
                      alignof(Fn) <= alignof(void *) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &inline_ops<Fn>;
        } else {
            // Cold fallback for oversized captures: box on the heap.
            ::new (static_cast<void *>(buf_))
                Fn *(new Fn(std::forward<F>(f)));
            ops_ = &boxed_ops<Fn>;
        }
    }

    EventFn(EventFn &&other) noexcept : ops_(other.ops_)
    {
        if (ops_) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    EventFn &
    operator=(EventFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_) {
                ops_->relocate(buf_, other.buf_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    /** Destroy the held callable (if any); leaves *this empty. */
    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    void operator()() { ops_->invoke(buf_); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct into @p dst from @p src, destroying src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr Ops inline_ops = {
        [](void *p) { (*static_cast<Fn *>(p))(); },
        [](void *dst, void *src) {
            ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
            static_cast<Fn *>(src)->~Fn();
        },
        [](void *p) { static_cast<Fn *>(p)->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops boxed_ops = {
        [](void *p) { (**static_cast<Fn **>(p))(); },
        [](void *dst, void *src) {
            ::new (dst) Fn *(*static_cast<Fn **>(src));
        },
        [](void *p) { delete *static_cast<Fn **>(p); },
    };

    alignas(void *) unsigned char buf_[inline_size];
    const Ops *ops_ = nullptr;
};

namespace detail {

/** Callable binding a member function to an object plus fixed
 * arguments; trivially movable, so scheduling one is a small memcpy. */
template <auto MemFn, typename T, typename... Bound>
struct BoundEvent
{
    T *obj;
    std::tuple<Bound...> args;

    void
    operator()()
    {
        std::apply([this](auto &...a) { (obj->*MemFn)(a...); }, args);
    }
};

} // namespace detail

/**
 * Pre-bind a member function call as an event callback:
 *
 *     eq.schedule(when, bindEvent<&Sm::issueWarp>(this, slot));
 *
 * Unlike a capturing lambda this names the handler at the call site,
 * and the resulting callable is a POD-like struct (object pointer +
 * bound arguments) that always fits EventFn's inline storage.
 */
template <auto MemFn, typename T, typename... Bound>
EventFn
bindEvent(T *obj, Bound... bound)
{
    static_assert(sizeof(detail::BoundEvent<MemFn, T, Bound...>) <=
                      EventFn::inline_size,
                  "bound event exceeds EventFn inline storage");
    return EventFn(detail::BoundEvent<MemFn, T, Bound...>{
        obj, std::tuple<Bound...>(bound...)});
}

/** Selectable event-engine implementation (see file comment). */
enum class EventEngine : std::uint8_t {
    Calendar,  ///< two-level bucketed calendar queue (default)
    Heap,      ///< legacy single binary heap (A/B testing only)
};

/**
 * The event queue, keyed by (tick, sequence). schedule()/fire are
 * allocation-free in steady state; see file comment for the engine
 * design.
 */
class EventQueue
{
  public:
    /** Compatibility alias: component interfaces still traffic in
     * std::function callbacks; EventFn absorbs them on schedule. */
    using Callback = std::function<void()>;

    /** Engine chosen by the CARVE_EVENTQ environment variable
     * ("calendar" default, "heap" for the legacy engine). */
    EventQueue();
    explicit EventQueue(EventEngine engine);
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulation time in cycles. */
    Cycle now() const { return now_; }

    /** Engine this queue was constructed with. */
    EventEngine engine() const { return engine_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * Scheduling in the past is fatal().
     */
    void schedule(Cycle when, EventFn fn);

    /** Schedule @p fn @p delay cycles from now. */
    void
    scheduleAfter(Cycle delay, EventFn fn)
    {
        schedule(now_ + delay, std::move(fn));
    }

    /**
     * Re-arm the currently firing event @p delay cycles from now,
     * reusing its node and callback in place: no allocation, no
     * callback reconstruction. Only valid while a callback is running
     * (fatal otherwise). The sequence number is claimed immediately,
     * so ordering is byte-identical to calling scheduleAfter() with an
     * equivalent callback at the same point. The poster child is a
     * fixed-cadence retry poll that re-parks itself while a resource
     * stays full.
     */
    void
    repeatAfter(Cycle delay)
    {
        if (!firing_)
            fatal("EventQueue: repeatAfter outside a callback");
        firing_->when = now_ + delay;
        firing_->seq = next_seq_++;
        repeat_ = true;
    }

    /** Number of pending events. */
    std::size_t
    pending() const
    {
        return ring_count_ + far_.size();
    }

    /** True when no events remain. */
    bool empty() const { return pending() == 0; }

    /**
     * Run events until the queue drains or @p limit events have fired.
     * @return number of events executed.
     */
    std::uint64_t run(std::uint64_t limit = UINT64_MAX);

    /**
     * Run events while @p keep_going returns true (checked before each
     * event). @return number of events executed.
     */
    std::uint64_t runWhile(const std::function<bool()> &keep_going);

    /** Execute exactly one event if available. @return true if fired. */
    bool step();

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

    /** nextTick() result when no events are pending. */
    static constexpr Cycle no_event = ~Cycle{0};

    /** Tick of the earliest pending event (no_event when empty). */
    Cycle nextTick() const;

    /**
     * Fire every event with tick < @p end in (tick, seq) order; used
     * by the domain engine to execute one lookahead window. now() is
     * left at the last fired tick — never advanced to @p end. When
     * @p per_event is non-null it runs after each event; returning
     * false stops the window early.
     * @return number of events executed.
     */
    std::uint64_t runWindow(Cycle end,
                            const std::function<bool()> *per_event =
                                nullptr);

  private:
    /** One pending event. Nodes are pooled and recycled through a
     * free list; fn is the only non-POD member. Sized to one cache
     * line: in MSHR-saturated phases the pending-event working set is
     * thousands of nodes, and halving the node footprint keeps the
     * fire/re-arm loop in L2. */
    struct EventNode
    {
        Cycle when = 0;
        std::uint64_t seq = 0;
        EventNode *next = nullptr;
        EventFn fn;
    };
    static_assert(sizeof(EventNode) == 64,
                  "EventNode must stay a single cache line");

    /** Far-horizon order: min-heap by (when, seq). */
    struct FarLater
    {
        bool
        operator()(const EventNode *a, const EventNode *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            return a->seq > b->seq;
        }
    };

    /** FIFO of events for one tick of the near window. */
    struct Bucket
    {
        EventNode *head = nullptr;
        EventNode *tail = nullptr;
    };

    /** Near-window width in cycles (power of two). Delays beyond this
     * go to the far heap; in practice component delays are tens of
     * cycles, so >99% of traffic stays in the ring. */
    static constexpr std::size_t horizon = 1024;
    static constexpr std::size_t occ_words = horizon / 64;

    EventNode *allocNode();
    void freeNode(EventNode *n);
    void pushRing(EventNode *n);
    /** Advance time to @p t and pull far events entering the window. */
    void advanceTo(Cycle t);
    /** Detach the next event in (when, seq) order (queue non-empty). */
    EventNode *popNext();
    /** Cold path of popNext: bit-scan for the next occupied bucket
     * when the current tick's bucket is empty. */
    EventNode *popScan(std::size_t start);
    void fireNext();

    EventEngine engine_ = EventEngine::Calendar;
    Cycle now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;

    // In-place re-arm support (repeatAfter): the node whose callback
    // is currently executing, and whether it asked to fire again.
    EventNode *firing_ = nullptr;
    bool repeat_ = false;

    // Near-horizon ring: bucket (t % horizon) holds exactly the
    // pending events at tick t for t in [now_, now_ + horizon), in
    // scheduling order. occ_ tracks non-empty buckets so the scan for
    // the next event tick is a handful of word operations.
    std::vector<Bucket> ring_;
    std::uint64_t occ_[occ_words] = {};
    std::size_t ring_count_ = 0;
    Cycle window_end_ = horizon;

    // Far horizon (and the entire queue in Heap mode).
    std::priority_queue<EventNode *, std::vector<EventNode *>,
                        FarLater>
        far_;

    // Node pool: chunk-allocated, recycled through free_.
    std::vector<std::unique_ptr<EventNode[]>> pools_;
    EventNode *free_ = nullptr;
};

} // namespace carve

#endif // CARVE_COMMON_EVENT_QUEUE_HH
