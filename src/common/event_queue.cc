#include "common/event_queue.hh"

#include <bit>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/logging.hh"

namespace carve {

namespace {

/** Nodes per pool chunk: amortizes allocation without hoarding. */
constexpr std::size_t pool_chunk = 512;

EventEngine
engineFromEnv()
{
    const char *v = std::getenv("CARVE_EVENTQ");
    if (!v || !*v || std::strcmp(v, "calendar") == 0)
        return EventEngine::Calendar;
    if (std::strcmp(v, "heap") == 0)
        return EventEngine::Heap;
    // "serial"/"parallel" select the *simulation* engine (the unified
    // SimEngine enum, resolved in run()); the queue keeps its default
    // implementation under either.
    if (std::strcmp(v, "serial") == 0 ||
        std::strcmp(v, "parallel") == 0) {
        return EventEngine::Calendar;
    }
    fatal("CARVE_EVENTQ: unknown engine '%s' "
          "(valid: calendar, heap, serial, parallel)", v);
}

} // namespace

EventQueue::EventQueue() : EventQueue(engineFromEnv()) {}

EventQueue::EventQueue(EventEngine engine) : engine_(engine)
{
    if (engine_ == EventEngine::Calendar)
        ring_.resize(horizon);
}

EventQueue::~EventQueue() = default;

EventQueue::EventNode *
EventQueue::allocNode()
{
    if (!free_) {
        pools_.push_back(std::make_unique<EventNode[]>(pool_chunk));
        EventNode *chunk = pools_.back().get();
        for (std::size_t i = 0; i < pool_chunk; ++i) {
            chunk[i].next = free_;
            free_ = &chunk[i];
        }
    }
    EventNode *n = free_;
    free_ = n->next;
    n->next = nullptr;
    return n;
}

void
EventQueue::freeNode(EventNode *n)
{
    n->fn.reset();
    n->next = free_;
    free_ = n;
}

void
EventQueue::pushRing(EventNode *n)
{
    const std::size_t idx =
        static_cast<std::size_t>(n->when) & (horizon - 1);
    Bucket &b = ring_[idx];
    if (b.tail) {
        b.tail->next = n;
        b.tail = n;
    } else {
        b.head = b.tail = n;
        occ_[idx / 64] |= std::uint64_t{1} << (idx % 64);
    }
    ++ring_count_;
}

void
EventQueue::schedule(Cycle when, EventFn fn)
{
    if (when < now_) {
        fatal("EventQueue: schedule into the past "
              "(when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    }
    EventNode *n = allocNode();
    n->when = when;
    n->seq = next_seq_++;
    n->fn = std::move(fn);
    if (engine_ == EventEngine::Calendar && when < window_end_)
        pushRing(n);
    else
        far_.push(n);
}

void
EventQueue::advanceTo(Cycle t)
{
    if (t == now_)
        return;  // same-tick cascade: window already correct
    now_ = t;
    if (engine_ != EventEngine::Calendar)
        return;
    window_end_ = t + horizon;
    // Restore the invariant that every far event lies beyond the
    // window: anything entering it migrates to the ring now, before
    // user code can schedule at those ticks. The heap pops in
    // (when, seq) order, so per-bucket FIFO order stays correct.
    while (!far_.empty() && far_.top()->when < window_end_) {
        EventNode *n = far_.top();
        far_.pop();
        pushRing(n);
    }
}

EventQueue::EventNode *
EventQueue::popNext()
{
    if (engine_ != EventEngine::Calendar) {
        EventNode *n = far_.top();
        far_.pop();
        return n;
    }
    if (ring_count_ == 0 && !far_.empty()) {
        // Ring drained: jump straight to the earliest far event,
        // migrating its whole window in.
        advanceTo(far_.top()->when);
    }

    const std::size_t start =
        static_cast<std::size_t>(now_) & (horizon - 1);

    // Fast path: the bucket for the current tick can only hold events
    // at exactly now_ (now_ + horizon is past window_end_), and
    // same-tick cascades dominate the workload — pop its head without
    // touching the occupancy bitmap scan.
    if (EventNode *n = ring_[start].head) {
        Bucket &b = ring_[start];
        b.head = n->next;
        if (!b.head) {
            b.tail = nullptr;
            occ_[start / 64] &= ~(std::uint64_t{1} << (start % 64));
        }
        n->next = nullptr;
        --ring_count_;
        return n;
    }
    return popScan(start);
}

EventQueue::EventNode *
EventQueue::popScan(std::size_t start)
{
    // Find the first non-empty bucket at or after now_. Bucket
    // indices wrap mod horizon, so circular bit-scan order from
    // (now_ % horizon) is exactly ascending-tick order.
    std::size_t w = start / 64;
    std::uint64_t word = occ_[w] & (~std::uint64_t{0} << (start % 64));
    for (std::size_t i = 0; i <= occ_words; ++i) {
        if (word) {
            const std::size_t idx =
                w * 64 +
                static_cast<std::size_t>(std::countr_zero(word));
            Bucket &b = ring_[idx];
            EventNode *n = b.head;
            b.head = n->next;
            if (!b.head) {
                b.tail = nullptr;
                occ_[idx / 64] &=
                    ~(std::uint64_t{1} << (idx % 64));
            }
            n->next = nullptr;
            --ring_count_;
            return n;
        }
        w = (w + 1) % occ_words;
        word = occ_[w];
    }
    panic("EventQueue: occupancy bitmap inconsistent "
          "(ring_count=%zu)", ring_count_);
}

void
EventQueue::fireNext()
{
    EventNode *n = popNext();
    advanceTo(n->when);
    ++executed_;
    // Invoke in place: the node is off every list, so the callback may
    // freely schedule further events (the pool just can't recycle this
    // one node until it returns). Saves a relocate per event.
    firing_ = n;
    repeat_ = false;
    n->fn();
    firing_ = nullptr;
    if (repeat_) {
        // repeatAfter() already stamped when/seq; requeue as-is.
        if (engine_ == EventEngine::Calendar && n->when < window_end_)
            pushRing(n);
        else
            far_.push(n);
    } else {
        freeNode(n);
    }
}

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    std::uint64_t n = 0;
    while (n < limit && !empty()) {
        fireNext();
        ++n;
    }
    return n;
}

std::uint64_t
EventQueue::runWhile(const std::function<bool()> &keep_going)
{
    std::uint64_t n = 0;
    while (!empty() && keep_going()) {
        fireNext();
        ++n;
    }
    return n;
}

bool
EventQueue::step()
{
    if (empty())
        return false;
    fireNext();
    return true;
}

Cycle
EventQueue::nextTick() const
{
    if (engine_ != EventEngine::Calendar || ring_count_ == 0)
        return far_.empty() ? no_event : far_.top()->when;

    // Ring events always precede far events (the far heap only holds
    // ticks past window_end_), so scan the ring from now_. The bucket
    // for the current tick is the overwhelmingly common case.
    const std::size_t start =
        static_cast<std::size_t>(now_) & (horizon - 1);
    if (ring_[start].head)
        return now_;
    std::size_t w = start / 64;
    std::uint64_t word = occ_[w] & (~std::uint64_t{0} << (start % 64));
    for (std::size_t i = 0; i <= occ_words; ++i) {
        if (word) {
            const std::size_t idx =
                w * 64 +
                static_cast<std::size_t>(std::countr_zero(word));
            // Circular index distance == tick distance from now_.
            const std::size_t delta =
                (idx - start + horizon) & (horizon - 1);
            return now_ + static_cast<Cycle>(delta);
        }
        w = (w + 1) % occ_words;
        word = occ_[w];
    }
    panic("EventQueue: occupancy bitmap inconsistent "
          "(ring_count=%zu)", ring_count_);
}

std::uint64_t
EventQueue::runWindow(Cycle end,
                      const std::function<bool()> *per_event)
{
    std::uint64_t n = 0;
    while (nextTick() < end) {
        fireNext();
        ++n;
        if (per_event && !(*per_event)())
            break;
    }
    return n;
}

} // namespace carve
