#include "common/event_queue.hh"

#include <utility>

#include "common/logging.hh"

namespace carve {

void
EventQueue::schedule(Cycle when, Callback cb)
{
    if (when < now_) {
        panic("event scheduled in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    }
    heap_.push(Event{when, next_seq_++, std::move(cb)});
}

void
EventQueue::fireNext()
{
    // priority_queue::top() returns const&; the callback must be moved
    // out before pop() so it can safely schedule further events.
    Callback cb = std::move(const_cast<Event &>(heap_.top()).cb);
    now_ = heap_.top().when;
    heap_.pop();
    ++executed_;
    cb();
}

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    std::uint64_t n = 0;
    while (n < limit && !heap_.empty()) {
        fireNext();
        ++n;
    }
    return n;
}

std::uint64_t
EventQueue::runWhile(const std::function<bool()> &keep_going)
{
    std::uint64_t n = 0;
    while (!heap_.empty() && keep_going()) {
        fireNext();
        ++n;
    }
    return n;
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    fireNext();
    return true;
}

} // namespace carve
