/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * carve-sim must be bit-reproducible across runs, so every stochastic
 * component (workload generators, probabilistic IMST demotion, random
 * replacement) draws from an explicitly seeded Rng instance instead of
 * any global generator.
 */

#ifndef CARVE_COMMON_RNG_HH
#define CARVE_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

namespace carve {

/**
 * xoshiro256**-based deterministic generator. Small, fast, and good
 * enough statistical quality for workload synthesis.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (SplitMix64-expanded to 256b). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_)
            word = splitMix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiplicative range reduction (Lemire); bias is negligible
        // for simulation purposes and avoids modulo cost.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Approximate Zipf-distributed index in [0, n) with exponent
     * @p s via inverse-CDF on the continuous approximation. s == 0
     * degenerates to uniform.
     */
    std::uint64_t
    zipf(std::uint64_t n, double s)
    {
        if (n <= 1)
            return 0;
        if (s <= 0.0)
            return below(n);
        const double u = uniform();
        double x;
        if (s == 1.0) {
            // CDF ~ ln(x+1)/ln(n+1)
            x = std::exp2(u * std::log2(
                    static_cast<double>(n) + 1.0)) - 1.0;
        } else {
            const double one_m_s = 1.0 - s;
            const double nn = static_cast<double>(n) + 1.0;
            const double top = std::pow(nn, one_m_s) - 1.0;
            x = std::pow(u * top + 1.0, 1.0 / one_m_s) - 1.0;
        }
        auto idx = static_cast<std::uint64_t>(x);
        return idx >= n ? n - 1 : idx;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitMix64(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t state_[4];
};

} // namespace carve

#endif // CARVE_COMMON_RNG_HH
