/**
 * @file
 * Chunked arena + typed pool allocator family for the simulation hot
 * path. The event queue's chunked EventNode pool is the template:
 * allocate big slabs rarely, hand out small objects for free, never
 * return memory mid-run.
 *
 * Arena — a bump allocator over a list of chunks. Allocations are
 * aligned, never individually freed, and survive until reset() or
 * destruction. reset() rewinds every chunk for reuse without
 * returning memory to the OS, so a component can be torn down and
 * rebuilt (kernel boundaries, repeated sweep runs) with zero
 * steady-state allocation. When built with -DCARVE_NUMA=ON and the
 * arena is given a host NUMA node, chunks are allocated on that node
 * via the hostnuma shim (dlopen'd libnuma); otherwise plain
 * operator new — behaviour is identical either way.
 *
 * Pool<T> — a typed chunked pool with stable 32-bit handles and a
 * LIFO in-slot free list. Growth adds chunks; existing elements
 * never move, so handles (and pointers) stay valid across growth.
 * T must be trivially copyable: freed slots store the free-list link
 * in their own bytes, and under ASan freed slots are poisoned so
 * use-after-free of a recycled handle traps in the sanitizer CI job.
 *
 * Ownership convention (see DESIGN.md "Memory layout & ownership"):
 * MultiGpuSystem owns the arenas; components hold Pool<>s backed by
 * them; everything dies together, which is why handles — not owning
 * pointers — cross component boundaries.
 */

#ifndef CARVE_COMMON_ARENA_HH
#define CARVE_COMMON_ARENA_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define CARVE_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CARVE_ASAN 1
#endif
#endif
#ifndef CARVE_ASAN
#define CARVE_ASAN 0
#endif

#if CARVE_ASAN
#include <sanitizer/asan_interface.h>
#define CARVE_POISON(p, n) ASAN_POISON_MEMORY_REGION((p), (n))
#define CARVE_UNPOISON(p, n) ASAN_UNPOISON_MEMORY_REGION((p), (n))
#else
#define CARVE_POISON(p, n) ((void)0)
#define CARVE_UNPOISON(p, n) ((void)0)
#endif

namespace carve {

/**
 * Bump allocator over chunks of @p chunk_bytes (oversized requests
 * get a dedicated chunk). Not thread-safe: one arena per component /
 * per worker, never shared.
 */
class Arena
{
  public:
    /** Default slab size: large enough that steady-state simulation
     * touches a handful of slabs, small enough to not bloat tests. */
    static constexpr std::size_t default_chunk_bytes =
        std::size_t{1} << 20;

    /** @param chunk_bytes slab size.
     *  @param numa_node host NUMA node to place slabs on; -1 (or a
     *         build without CARVE_NUMA / a machine without libnuma)
     *         means ordinary heap memory. */
    explicit Arena(std::size_t chunk_bytes = default_chunk_bytes,
                   int numa_node = -1);
    ~Arena();

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;
    Arena(Arena &&other) noexcept;
    Arena &operator=(Arena &&) = delete;

    /** Aligned raw allocation; never fails softly (fatal on OOM). */
    void *allocate(std::size_t bytes, std::size_t align);

    /** Typed array allocation (uninitialized storage). */
    template <class T>
    T *
    allocate(std::size_t n = 1)
    {
        return static_cast<T *>(allocate(sizeof(T) * n, alignof(T)));
    }

    /** Rewind every chunk for reuse; no memory returned to the OS.
     * Everything previously allocated becomes invalid (and poisoned
     * under ASan). */
    void reset();

    /** Bytes handed out since construction/reset (aligned sizes). */
    std::size_t usedBytes() const { return used_bytes_; }

    /** Bytes held in slabs (>= usedBytes()). */
    std::size_t reservedBytes() const { return reserved_bytes_; }

    /** Host NUMA node slabs are bound to, or -1. */
    int numaNode() const { return numa_node_; }

  private:
    struct Chunk
    {
        std::byte *base = nullptr;
        std::size_t size = 0;
        std::size_t used = 0;
        bool numa_backed = false;
    };

    Chunk makeChunk(std::size_t size);
    void releaseChunk(Chunk &c);

    std::vector<Chunk> chunks_;
    std::size_t active_ = 0;  ///< chunk currently bumped
    std::size_t chunk_bytes_;
    std::size_t used_bytes_ = 0;
    std::size_t reserved_bytes_ = 0;
    int numa_node_;
};

/**
 * Typed chunked pool: alloc() returns a stable uint32 handle, free()
 * recycles it LIFO. Backed by an Arena when one is supplied (chunks
 * then live until the arena dies), by operator new otherwise.
 */
template <class T>
class Pool
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "Pool slots are recycled bytewise");
    static_assert(sizeof(T) >= sizeof(std::uint32_t),
                  "freed slots store the free-list link in place");

  public:
    using Handle = std::uint32_t;
    static constexpr Handle npos = 0xffffffffu;

    /** @param arena optional backing arena; @p chunk_elems must be a
     * power of two. */
    explicit Pool(Arena *arena = nullptr,
                  std::uint32_t chunk_elems = 256)
        : arena_(arena), chunk_elems_(chunk_elems),
          shift_(std::countr_zero(chunk_elems))
    {
    }

    ~Pool()
    {
        if (!arena_) {
            for (T *c : chunks_)
                ::operator delete(c, std::align_val_t{alignof(T)});
        }
    }

    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

    /** Movable so pools can live in containers (vector growth only;
     * a pool must not be moved while handles are outstanding). */
    Pool(Pool &&other) noexcept
        : arena_(other.arena_), chunks_(std::move(other.chunks_)),
          chunk_elems_(other.chunk_elems_), shift_(other.shift_),
          high_water_(other.high_water_), live_(other.live_),
          free_head_(other.free_head_)
    {
        other.chunks_.clear();
        other.free_head_ = npos;
        other.high_water_ = 0;
        other.live_ = 0;
    }
    Pool &operator=(Pool &&) = delete;

    Handle
    alloc(const T &value)
    {
        Handle h;
        if (free_head_ != npos) {
            h = free_head_;
            T *slot = slotPtr(h);
            CARVE_UNPOISON(slot, sizeof(T));
            std::memcpy(&free_head_, slot, sizeof(Handle));
        } else {
            if ((high_water_ >> shift_) ==
                static_cast<std::uint32_t>(chunks_.size()))
                grow();
            h = high_water_++;
        }
        T *slot = slotPtr(h);
        // void* casts: T is trivially copyable but may have default
        // member initializers, which -Wclass-memaccess flags.
        std::memcpy(static_cast<void *>(slot), &value, sizeof(T));
        ++live_;
        return h;
    }

    void
    free(Handle h)
    {
        T *slot = slotPtr(h);
        std::memcpy(static_cast<void *>(slot), &free_head_,
                    sizeof(Handle));
        CARVE_POISON(slot, sizeof(T));
        free_head_ = h;
        --live_;
    }

    T &
    operator[](Handle h)
    {
        return *slotPtr(h);
    }

    const T &
    operator[](Handle h) const
    {
        return *const_cast<Pool *>(this)->slotPtr(h);
    }

    std::uint32_t live() const { return live_; }
    std::uint32_t capacity() const { return high_water_; }

    /**
     * Pre-size the chunk-pointer table. A pool whose records are read
     * from another event domain (the fabric's in-flight op pools) must
     * never reallocate the table while a reader indexes it; reserving
     * up front keeps grow() to a data()-stable push_back. Elements
     * themselves never move regardless.
     */
    void
    reserveChunks(std::size_t n)
    {
        chunks_.reserve(n);
    }

  private:
    T *
    slotPtr(Handle h)
    {
        return chunks_[h >> shift_] + (h & (chunk_elems_ - 1));
    }

    void
    grow()
    {
        const std::size_t bytes = sizeof(T) * chunk_elems_;
        T *chunk = arena_
            ? arena_->allocate<T>(chunk_elems_)
            : static_cast<T *>(::operator new(
                  bytes, std::align_val_t{alignof(T)}));
        chunks_.push_back(chunk);
    }

    Arena *arena_;
    std::vector<T *> chunks_;
    std::uint32_t chunk_elems_;
    std::uint32_t shift_;
    std::uint32_t high_water_ = 0;
    std::uint32_t live_ = 0;
    Handle free_head_ = npos;
};

} // namespace carve

#endif // CARVE_COMMON_ARENA_HH
