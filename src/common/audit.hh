/**
 * @file
 * carve-audit: opt-in conservation and invariant auditing.
 *
 * Two mechanisms, both off unless SimJob.options.audit (or the
 * MultiGpuSystem audit flag) is set:
 *
 *  1. In-flight token accounting (InflightTracker): every hand-off
 *     boundary in the machine (SM->L2, L2 miss->fill, RDC fetch, DRAM
 *     access, link delivery, bulk transfer) increments an issue
 *     counter when work is handed over and a retire counter when the
 *     continuation fires. After the event queue drains, issued !=
 *     retired proves a stranded MSHR entry, a lost callback, or a
 *     dropped delivery — the failure class that otherwise shows up as
 *     a silently wrong traffic fraction.
 *
 *  2. Cross-stat invariant checks over the StatGroup tree: per-cache
 *     probe conservation (hits + misses [+ stale_hits] == probes) and
 *     system-wide byte/message conservation (link bytes equal the
 *     classified traffic they carry; every remote access is serviced
 *     at its home). Checks are pure functions of the tree so tests
 *     can feed doctored trees that reproduce a reverted bugfix.
 *
 * Violations are reported as human-readable strings carrying the
 * offending dotted stat names and values; the caller escalates
 * through the ordinary panic()/fatal() path.
 */

#ifndef CARVE_COMMON_AUDIT_HH
#define CARVE_COMMON_AUDIT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/domain_engine.hh"
#include "common/stats.hh"

namespace carve {
namespace audit {

/** Hand-off boundaries tracked by the in-flight token counters. */
enum class Boundary : unsigned {
    SmL2 = 0,     ///< SM access handed to the L2 path
    L2Fill,       ///< L2 MSHR NewEntry -> fill completion
    RdcFetch,     ///< RDC miss fetch -> data arrival
    DramAccess,   ///< memory-controller access -> completion
    LinkDelivery, ///< link packet accepted -> delivered
    BulkTransfer, ///< charged bulk page copy -> delivered
};

/** Number of Boundary values. */
constexpr std::size_t num_boundaries = 6;

/** Stat-name-safe label of @p b ("sm_l2", "link_delivery", ...). */
const char *boundaryName(Boundary b);

/**
 * Issue/retire token counters per boundary. Counters are Scalars so
 * an audit-enabled run exposes them in the stat tree ("audit.
 * inflight.sm_l2_issued" etc.) for post-mortem inspection.
 */
class InflightTracker
{
  public:
    void
    issue(Boundary b)
    {
        issued_[static_cast<unsigned>(b)].inc();
    }

    void
    retire(Boundary b)
    {
        retired_[static_cast<unsigned>(b)].inc();
    }

    std::uint64_t
    issued(Boundary b) const
    {
        return issued_[static_cast<unsigned>(b)].scalar().value();
    }

    std::uint64_t
    retired(Boundary b) const
    {
        return retired_[static_cast<unsigned>(b)].scalar().value();
    }

    /** Fold the per-domain token counts into the registered scalars;
     * call only at a window barrier. */
    void
    foldShards()
    {
        for (unsigned b = 0; b < num_boundaries; ++b) {
            issued_[b].fold();
            retired_[b].fold();
        }
    }

    /** Tokens currently in flight at @p b. */
    std::uint64_t
    inflight(Boundary b) const
    {
        return issued(b) - retired(b);
    }

    /** Register every counter into @p g ("<name>_issued"/"_retired"). */
    void registerStats(stats::StatGroup &g);

    /** Append one failure string per imbalanced boundary to @p out.
     * Only meaningful once the event queue has drained. */
    void check(std::vector<std::string> &out) const;

  private:
    /** Tokens cross boundaries inside every event domain, so the
     * counters are sharded per executing domain and folded at
     * barriers; issued()/retired() read the folded scalars. */
    ShardedScalar issued_[num_boundaries];
    ShardedScalar retired_[num_boundaries];
};

/**
 * Probe conservation: for every scalar named "<cache>.probes" in the
 * tree, hits + misses (+ stale_hits when registered) must equal it.
 * Appends one failure string per violation to @p out.
 */
void checkCacheProbes(const stats::StatGroup &root,
                      std::vector<std::string> &out);

/** Machine parameters the conservation equations need. */
struct ConservationParams
{
    std::uint64_t line_size = 0;
    unsigned ctrl_packet_size = 0;
    /** True for the end-of-sim pass (event queue drained): posted
     * traffic has landed, so home-side service counts and in-flight
     * balances are also checked. At kernel boundaries only the
     * invariants whose two sides advance in the same event hold. */
    bool final_pass = false;
};

/**
 * System-wide conservation over the stat tree:
 *  - per GPU: traffic.remote_reads == rdc.read_misses and
 *    traffic.rdc_hit_reads == rdc.read_hits (RDC classification);
 *  - per GPU: rdc.alloy.dirty_evictions == rdc.writeback_victims
 *    (no dirty victim vanishes without a write-back);
 *  - sum(gpu*.rdc.flush_bytes) == fabric.flush_bytes (kernel-boundary
 *    flushes really cross the fabric);
 *  - fabric.remote_write_msgs == sum(gpu*.traffic.remote_writes)
 *    + sum(gpu*.rdc.writeback_victims);
 *  - GPU<->GPU link bytes == read msgs x (ctrl + line) + write msgs x
 *    line + flush bytes + coherence ctrl bytes + charged bulk bytes;
 *    CPU links likewise;
 *  - final pass: every remote read/write message was serviced at its
 *    home (fabric msgs == sum of gpu*.remote_serviced_*).
 * Appends one failure string per violation to @p out.
 */
void checkConservation(const stats::StatGroup &root,
                       const ConservationParams &p,
                       std::vector<std::string> &out);

} // namespace audit
} // namespace carve

#endif // CARVE_COMMON_AUDIT_HH
