#include "common/arena.hh"

#include "common/hostnuma.hh"
#include "common/logging.hh"

namespace carve {

Arena::Arena(std::size_t chunk_bytes, int numa_node)
    : chunk_bytes_(chunk_bytes ? chunk_bytes : std::size_t{1} << 20),
      numa_node_(numa_node)
{
}

Arena::Arena(Arena &&other) noexcept
    : chunks_(std::move(other.chunks_)), active_(other.active_),
      chunk_bytes_(other.chunk_bytes_),
      used_bytes_(other.used_bytes_),
      reserved_bytes_(other.reserved_bytes_),
      numa_node_(other.numa_node_)
{
    other.chunks_.clear();
    other.active_ = 0;
    other.used_bytes_ = 0;
    other.reserved_bytes_ = 0;
}

Arena::~Arena()
{
    for (Chunk &c : chunks_)
        releaseChunk(c);
}

Arena::Chunk
Arena::makeChunk(std::size_t size)
{
    Chunk c;
    c.size = size;
    if (numa_node_ >= 0) {
        c.base = static_cast<std::byte *>(
            hostnuma::allocOnNode(size, numa_node_));
        c.numa_backed = c.base != nullptr;
    }
    if (!c.base) {
        // Slabs are aligned to max_align_t at minimum; allocate()
        // bumps within them to the caller's alignment.
        c.base = static_cast<std::byte *>(::operator new(
            size, std::align_val_t{alignof(std::max_align_t)}));
    }
    reserved_bytes_ += size;
    CARVE_POISON(c.base, c.size);
    return c;
}

void
Arena::releaseChunk(Chunk &c)
{
    if (!c.base)
        return;
    CARVE_UNPOISON(c.base, c.size);
    if (c.numa_backed)
        hostnuma::freeOnNode(c.base, c.size);
    else
        ::operator delete(c.base,
                          std::align_val_t{alignof(std::max_align_t)});
    c.base = nullptr;
}

void *
Arena::allocate(std::size_t bytes, std::size_t align)
{
    if (bytes == 0)
        bytes = 1;
    if (align == 0 || (align & (align - 1)) != 0)
        fatal("Arena::allocate: bad alignment %zu", align);

    // Oversized request: dedicated chunk, inserted *behind* the
    // active one so the bump chunk stays on top.
    if (bytes + align > chunk_bytes_) {
        Chunk c = makeChunk(bytes + align);
        const std::size_t base =
            reinterpret_cast<std::uintptr_t>(c.base);
        const std::size_t off = (align - base % align) % align;
        c.used = off + bytes;
        used_bytes_ += bytes;
        CARVE_UNPOISON(c.base + off, bytes);
        if (chunks_.empty()) {
            // No bump chunk yet: the dedicated chunk becomes the
            // (nearly full) active one; the next small request rolls
            // over to a fresh slab via the usual overflow path.
            chunks_.push_back(c);
        } else {
            chunks_.insert(chunks_.begin(), c);
            ++active_;
        }
        return c.base + off;
    }

    if (chunks_.empty()) {
        chunks_.push_back(makeChunk(chunk_bytes_));
        active_ = 0;
    }
    Chunk *c = &chunks_[active_];
    std::size_t off =
        (reinterpret_cast<std::uintptr_t>(c->base) + c->used);
    std::size_t pad = (align - off % align) % align;
    if (c->used + pad + bytes > c->size) {
        if (active_ + 1 < chunks_.size()) {
            ++active_;  // reset() kept a rewound chunk around
        } else {
            chunks_.push_back(makeChunk(chunk_bytes_));
            active_ = chunks_.size() - 1;
        }
        c = &chunks_[active_];
        off = (reinterpret_cast<std::uintptr_t>(c->base) + c->used);
        pad = (align - off % align) % align;
    }
    std::byte *p = c->base + c->used + pad;
    c->used += pad + bytes;
    used_bytes_ += bytes;
    CARVE_UNPOISON(p, bytes);
    return p;
}

void
Arena::reset()
{
    for (Chunk &c : chunks_) {
        c.used = 0;
        CARVE_POISON(c.base, c.size);
    }
    active_ = 0;
    used_bytes_ = 0;
}

} // namespace carve
