#include "common/logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace carve {

namespace {

// Read from every simulation thread once the harness runs sweeps in
// parallel, hence atomic (relaxed: it is a pure on/off switch).
std::atomic<bool> quiet_flag{false};

// Capture state is per thread: one worker's panic must not divert
// another worker's (or the main thread's) error handling.
thread_local unsigned capture_depth = 0;
thread_local std::string captured_message;

// Per-thread sink observer (the tracer): sees every message exactly
// as capture would, before any filtering.
thread_local LogObserver *sink_observer = nullptr;

const char *
levelPrefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

/**
 * Printed-output threshold from CARVE_LOG_LEVEL, parsed once per
 * process. Encoded as int so "silent" can sit above Panic; messages
 * with static_cast<int>(level) < threshold are not printed (but still
 * observed/captured — filtering is a display concern only).
 */
int
printThreshold()
{
    static const int threshold = [] {
        const char *env = std::getenv("CARVE_LOG_LEVEL");
        if (!env || !*env)
            return static_cast<int>(LogLevel::Inform);
        const std::string v(env);
        if (v == "inform" || v == "info")
            return static_cast<int>(LogLevel::Inform);
        if (v == "warn")
            return static_cast<int>(LogLevel::Warn);
        if (v == "fatal")
            return static_cast<int>(LogLevel::Fatal);
        if (v == "panic")
            return static_cast<int>(LogLevel::Panic);
        if (v == "silent" || v == "none")
            return static_cast<int>(LogLevel::Panic) + 1;
        std::fprintf(stderr,
                     "warn: CARVE_LOG_LEVEL='%s' not recognised "
                     "(inform|warn|fatal|panic|silent); using "
                     "inform\n", env);
        return static_cast<int>(LogLevel::Inform);
    }();
    return threshold;
}

/**
 * THE sink: every panic/fatal/warn/inform message lands here exactly
 * once, fully formatted. Order matters —
 *  1. observers see everything (the tracer records even messages that
 *     will be captured or filtered),
 *  2. capture diverts errors into the upcoming SimAbortError,
 *  3. CARVE_LOG_LEVEL and the quiet flag filter what gets printed.
 */
void
sinkMessage(LogLevel level, const std::string &msg)
{
    if (sink_observer && *sink_observer)
        (*sink_observer)(level, msg);

    const bool error = (level == LogLevel::Fatal ||
                        level == LogLevel::Panic);
    if (error && capture_depth > 0) {
        // Divert into the upcoming SimAbortError instead of printing:
        // failed runs report through their RunResult.
        captured_message = msg;
        return;
    }

    if (static_cast<int>(level) < printThreshold())
        return;
    if (!error && logQuiet())
        return;

    // Assemble the full line first so concurrent threads cannot
    // interleave fragments of each other's messages.
    std::string line = levelPrefix(level);
    line += ": ";
    line += msg;
    line += '\n';
    std::FILE *out = (level == LogLevel::Inform) ? stdout : stderr;
    std::fwrite(line.data(), 1, line.size(), out);
    std::fflush(out);
}

std::string
formatMessage(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n <= 0)
        return {};
    std::string out(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

} // namespace

ScopedErrorCapture::ScopedErrorCapture()
{
    ++capture_depth;
}

ScopedErrorCapture::~ScopedErrorCapture()
{
    --capture_depth;
    if (capture_depth == 0)
        captured_message.clear();
}

bool
errorCaptureActive()
{
    return capture_depth > 0;
}

ScopedLogObserver::ScopedLogObserver(LogObserver obs)
    : own_(std::move(obs)), prev_(sink_observer)
{
    sink_observer = &own_;
}

ScopedLogObserver::~ScopedLogObserver()
{
    sink_observer = prev_;
}

void
setLogQuiet(bool quiet)
{
    quiet_flag.store(quiet, std::memory_order_relaxed);
}

bool
logQuiet()
{
    return quiet_flag.load(std::memory_order_relaxed);
}

namespace detail {

void
logMessage(LogLevel level, const char *fmt, ...)
{
    const bool error = (level == LogLevel::Fatal ||
                        level == LogLevel::Panic);
    // Fast path: nothing would consume the message, skip formatting.
    if (!error && logQuiet() && sink_observer == nullptr)
        return;

    std::va_list ap;
    va_start(ap, fmt);
    const std::string msg = formatMessage(fmt, ap);
    va_end(ap);

    sinkMessage(level, msg);
}

void
terminate(LogLevel level)
{
    if (capture_depth > 0)
        throw SimAbortError(level, captured_message);
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail

} // namespace carve
