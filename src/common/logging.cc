#include "common/logging.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace carve {

namespace {

bool quiet_flag = false;

const char *
levelPrefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

void
setLogQuiet(bool quiet)
{
    quiet_flag = quiet;
}

bool
logQuiet()
{
    return quiet_flag;
}

namespace detail {

void
logMessage(LogLevel level, const char *fmt, ...)
{
    if (quiet_flag &&
        (level == LogLevel::Inform || level == LogLevel::Warn)) {
        return;
    }
    std::FILE *out =
        (level == LogLevel::Inform) ? stdout : stderr;
    std::fprintf(out, "%s: ", levelPrefix(level));
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(out, fmt, ap);
    va_end(ap);
    std::fprintf(out, "\n");
    std::fflush(out);
}

void
terminate(LogLevel level)
{
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail

} // namespace carve
