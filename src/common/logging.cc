#include "common/logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace carve {

namespace {

// Read from every simulation thread once the harness runs sweeps in
// parallel, hence atomic (relaxed: it is a pure on/off switch).
std::atomic<bool> quiet_flag{false};

// Capture state is per thread: one worker's panic must not divert
// another worker's (or the main thread's) error handling.
thread_local unsigned capture_depth = 0;
thread_local std::string captured_message;

const char *
levelPrefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

std::string
formatMessage(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n <= 0)
        return {};
    std::string out(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

} // namespace

ScopedErrorCapture::ScopedErrorCapture()
{
    ++capture_depth;
}

ScopedErrorCapture::~ScopedErrorCapture()
{
    --capture_depth;
    if (capture_depth == 0)
        captured_message.clear();
}

bool
errorCaptureActive()
{
    return capture_depth > 0;
}

void
setLogQuiet(bool quiet)
{
    quiet_flag.store(quiet, std::memory_order_relaxed);
}

bool
logQuiet()
{
    return quiet_flag.load(std::memory_order_relaxed);
}

namespace detail {

void
logMessage(LogLevel level, const char *fmt, ...)
{
    const bool error = (level == LogLevel::Fatal ||
                        level == LogLevel::Panic);
    if (!error && logQuiet())
        return;

    std::va_list ap;
    va_start(ap, fmt);
    const std::string msg = formatMessage(fmt, ap);
    va_end(ap);

    if (error && capture_depth > 0) {
        // Divert into the upcoming SimAbortError instead of printing:
        // failed runs report through their RunResult.
        captured_message = msg;
        return;
    }

    // Assemble the full line first so concurrent threads cannot
    // interleave fragments of each other's messages.
    std::string line = levelPrefix(level);
    line += ": ";
    line += msg;
    line += '\n';
    std::FILE *out = (level == LogLevel::Inform) ? stdout : stderr;
    std::fwrite(line.data(), 1, line.size(), out);
    std::fflush(out);
}

void
terminate(LogLevel level)
{
    if (capture_depth > 0)
        throw SimAbortError(level, captured_message);
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail

} // namespace carve
