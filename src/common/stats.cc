#include "common/stats.hh"

#include <algorithm>
#include <iomanip>

#include "common/logging.hh"

namespace carve {
namespace stats {

namespace {

/** Split "a.b.c" into its leading segment and the rest. */
std::pair<std::string_view, std::string_view>
splitHead(std::string_view dotted)
{
    const std::size_t dot = dotted.find('.');
    if (dot == std::string_view::npos)
        return {dotted, std::string_view{}};
    return {dotted.substr(0, dot), dotted.substr(dot + 1)};
}

template <typename T>
void
sortByName(std::vector<T> &v)
{
    std::sort(v.begin(), v.end(), [](const T &a, const T &b) {
        return a.name < b.name;
    });
}

} // namespace

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->children_.push_back(this);
}

void
StatGroup::checkName(const std::string &name) const
{
    if (name.empty() || name.find('.') != std::string::npos)
        fatal("stat name '%s' in group '%s' must be a non-empty "
              "single segment (no '.')",
              name.c_str(), fullName().c_str());
    const auto clash = [&](const auto &v) {
        for (const auto &e : v)
            if (e.name == name)
                return true;
        return false;
    };
    if (clash(scalars_) || clash(averages_) || clash(distributions_) ||
        clash(histograms_) || clash(derived_))
        fatal("duplicate stat name '%s' in group '%s'", name.c_str(),
              fullName().c_str());
}

void
StatGroup::addScalar(const std::string &name, Scalar *s,
                     const std::string &desc)
{
    checkName(name);
    scalars_.push_back({name, desc, s});
}

void
StatGroup::addAverage(const std::string &name, Average *a,
                      const std::string &desc)
{
    checkName(name);
    averages_.push_back({name, desc, a});
}

void
StatGroup::addDistribution(const std::string &name, Distribution *d,
                           const std::string &desc)
{
    checkName(name);
    distributions_.push_back({name, desc, d});
}

void
StatGroup::addHistogram(const std::string &name,
                        telemetry::Histogram *h,
                        const std::string &desc)
{
    checkName(name);
    histograms_.push_back({name, desc, h});
}

void
StatGroup::addDerived(const std::string &name,
                      std::function<double()> fn,
                      const std::string &desc)
{
    checkName(name);
    derived_.push_back({name, desc, std::move(fn), false});
}

void
StatGroup::addDerivedInt(const std::string &name,
                         std::function<std::uint64_t()> fn,
                         const std::string &desc)
{
    checkName(name);
    derived_.push_back(
        {name, desc,
         [f = std::move(fn)]() {
             return static_cast<double>(f());
         },
         true});
}

std::string
StatGroup::fullName() const
{
    if (!parent_)
        return name_;
    std::string prefix = parent_->fullName();
    if (prefix.empty())
        return name_;
    return prefix + "." + name_;
}

std::vector<const StatGroup *>
StatGroup::sortedChildren() const
{
    std::vector<const StatGroup *> out(children_.begin(),
                                       children_.end());
    std::sort(out.begin(), out.end(),
              [](const StatGroup *a, const StatGroup *b) {
                  return a->name_ < b->name_;
              });
    return out;
}

void
StatGroup::visit(const Visitor &v) const
{
    const std::string prefix =
        fullName().empty() ? "" : fullName() + ".";

    auto sorted = [](const auto &src) {
        auto copy = src;
        sortByName(copy);
        return copy;
    };

    if (v.scalar)
        for (const auto &s : sorted(scalars_))
            v.scalar(prefix + s.name, *s.stat, s.desc);
    if (v.average)
        for (const auto &a : sorted(averages_))
            v.average(prefix + a.name, *a.stat, a.desc);
    if (v.distribution)
        for (const auto &d : sorted(distributions_))
            v.distribution(prefix + d.name, *d.stat, d.desc);
    if (v.histogram)
        for (const auto &h : sorted(histograms_))
            v.histogram(prefix + h.name, *h.stat, h.desc);
    if (v.derived)
        for (const auto &d : sorted(derived_))
            v.derived(prefix + d.name, d.fn(), d.integral, d.desc);

    for (const auto *child : sortedChildren())
        child->visit(v);
}

const Scalar *
StatGroup::findScalar(std::string_view dotted) const
{
    const auto [head, rest] = splitHead(dotted);
    if (rest.empty()) {
        for (const auto &s : scalars_)
            if (s.name == head)
                return s.stat;
        return nullptr;
    }
    for (const auto *child : children_)
        if (child->name_ == head)
            return child->findScalar(rest);
    return nullptr;
}

const Average *
StatGroup::findAverage(std::string_view dotted) const
{
    const auto [head, rest] = splitHead(dotted);
    if (rest.empty()) {
        for (const auto &a : averages_)
            if (a.name == head)
                return a.stat;
        return nullptr;
    }
    for (const auto *child : children_)
        if (child->name_ == head)
            return child->findAverage(rest);
    return nullptr;
}

const Distribution *
StatGroup::findDistribution(std::string_view dotted) const
{
    const auto [head, rest] = splitHead(dotted);
    if (rest.empty()) {
        for (const auto &d : distributions_)
            if (d.name == head)
                return d.stat;
        return nullptr;
    }
    for (const auto *child : children_)
        if (child->name_ == head)
            return child->findDistribution(rest);
    return nullptr;
}

const telemetry::Histogram *
StatGroup::findHistogram(std::string_view dotted) const
{
    const auto [head, rest] = splitHead(dotted);
    if (rest.empty()) {
        for (const auto &h : histograms_)
            if (h.name == head)
                return h.stat;
        return nullptr;
    }
    for (const auto *child : children_)
        if (child->name_ == head)
            return child->findHistogram(rest);
    return nullptr;
}

const StatGroup *
StatGroup::findGroup(std::string_view dotted) const
{
    const auto [head, rest] = splitHead(dotted);
    for (const auto *child : children_) {
        if (child->name_ != head)
            continue;
        return rest.empty() ? child : child->findGroup(rest);
    }
    return nullptr;
}

std::optional<double>
StatGroup::findValue(std::string_view dotted) const
{
    const auto [head, rest] = splitHead(dotted);
    if (rest.empty()) {
        for (const auto &s : scalars_)
            if (s.name == head)
                return static_cast<double>(s.stat->value());
        for (const auto &d : derived_)
            if (d.name == head)
                return d.fn();
        return std::nullopt;
    }
    for (const auto *child : children_)
        if (child->name_ == head)
            return child->findValue(rest);
    return std::nullopt;
}

void
StatGroup::dump(std::ostream &os) const
{
    const std::string prefix =
        fullName().empty() ? "" : fullName() + ".";

    auto sorted = [](const auto &src) {
        auto copy = src;
        sortByName(copy);
        return copy;
    };

    for (const auto &s : sorted(scalars_)) {
        os << prefix << s.name << " = " << s.stat->value();
        if (!s.desc.empty())
            os << "  # " << s.desc;
        os << "\n";
    }
    for (const auto &a : sorted(averages_)) {
        os << prefix << a.name << " = " << std::setprecision(6)
           << a.stat->mean() << " (n=" << a.stat->count() << ")";
        if (!a.desc.empty())
            os << "  # " << a.desc;
        os << "\n";
    }
    for (const auto &d : sorted(distributions_)) {
        os << prefix << d.name << " = mean " << std::setprecision(6)
           << d.stat->mean() << ", max " << d.stat->max()
           << ", n " << d.stat->count();
        if (!d.desc.empty())
            os << "  # " << d.desc;
        os << "\n";
    }
    for (const auto &h : sorted(histograms_)) {
        os << prefix << h.name << " = p50 " << h.stat->percentile(50)
           << ", p99 " << h.stat->percentile(99) << ", max "
           << h.stat->max() << ", n " << h.stat->count();
        if (!h.desc.empty())
            os << "  # " << h.desc;
        os << "\n";
    }
    for (const auto &d : sorted(derived_)) {
        const double v = d.fn();
        os << prefix << d.name << " = ";
        if (d.integral)
            os << static_cast<std::uint64_t>(v);
        else
            os << std::setprecision(6) << v;
        if (!d.desc.empty())
            os << "  # " << d.desc;
        os << "\n";
    }
    for (const auto *child : sortedChildren())
        child->dump(os);
}

void
StatGroup::resetAll()
{
    for (auto &s : scalars_)
        s.stat->reset();
    for (auto &a : averages_)
        a.stat->reset();
    for (auto &d : distributions_)
        d.stat->reset();
    for (auto &h : histograms_)
        h.stat->reset();
    for (auto *child : children_)
        child->resetAll();
}

std::vector<FlatStat>
flattenStats(const StatGroup &root)
{
    std::vector<FlatStat> out;
    StatGroup::Visitor v;
    v.scalar = [&](const std::string &name, const Scalar &s,
                   const std::string &) {
        out.push_back({name, true, s.value(), 0.0});
    };
    v.average = [&](const std::string &name, const Average &a,
                    const std::string &) {
        out.push_back({name + ".count", true, a.count(), 0.0});
        out.push_back({name + ".sum", false, 0, a.sum()});
    };
    v.distribution = [&](const std::string &name,
                         const Distribution &d, const std::string &) {
        out.push_back({name + ".count", true, d.count(), 0.0});
        out.push_back({name + ".max", true, d.max(), 0.0});
        out.push_back({name + ".sum", true, d.sum(), 0.0});
    };
    v.histogram = [&](const std::string &name,
                      const telemetry::Histogram &h,
                      const std::string &) {
        out.push_back({name + ".count", true, h.count(), 0.0});
        out.push_back({name + ".max", true, h.max(), 0.0});
        out.push_back({name + ".p50", true, h.percentile(50), 0.0});
        out.push_back({name + ".p95", true, h.percentile(95), 0.0});
        out.push_back({name + ".p99", true, h.percentile(99), 0.0});
        out.push_back({name + ".sum", true, h.sum(), 0.0});
    };
    v.derived = [&](const std::string &name, double value,
                    bool integral, const std::string &) {
        if (integral)
            out.push_back(
                {name, true, static_cast<std::uint64_t>(value), 0.0});
        else
            out.push_back({name, false, 0, value});
    };
    root.visit(v);
    std::sort(out.begin(), out.end(),
              [](const FlatStat &a, const FlatStat &b) {
                  return a.name < b.name;
              });
    return out;
}

ScalarSnapshot
snapshotScalars(const StatGroup &root)
{
    ScalarSnapshot out;
    StatGroup::Visitor v;
    v.scalar = [&](const std::string &name, const Scalar &s,
                   const std::string &) {
        out.emplace_back(name, s.value());
    };
    root.visit(v);
    std::sort(out.begin(), out.end());
    return out;
}

ScalarSnapshot
snapshotDelta(const ScalarSnapshot &before,
              const ScalarSnapshot &after)
{
    ScalarSnapshot out;
    out.reserve(after.size());
    std::size_t bi = 0;
    for (const auto &[name, value] : after) {
        while (bi < before.size() && before[bi].first < name)
            ++bi;
        std::uint64_t base = 0;
        if (bi < before.size() && before[bi].first == name)
            base = before[bi].second;
        out.emplace_back(name, value >= base ? value - base : 0);
    }
    return out;
}

bool
nameMatches(std::string_view pattern, std::string_view name)
{
    const auto segMatches = [](std::string_view p,
                               std::string_view s) {
        if (!p.empty() && p.back() == '*') {
            // Trailing '*' prefix-matches within the segment
            // ("gpu*" matches "gpu0"; bare "*" matches anything).
            p.remove_suffix(1);
            return s.substr(0, p.size()) == p;
        }
        return p == s;
    };
    while (true) {
        const auto [phead, prest] = splitHead(pattern);
        const auto [nhead, nrest] = splitHead(name);
        if (!segMatches(phead, nhead))
            return false;
        if (prest.empty() || nrest.empty())
            return prest.empty() && nrest.empty();
        pattern = prest;
        name = nrest;
    }
}

} // namespace stats
} // namespace carve
