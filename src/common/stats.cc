#include "common/stats.hh"

#include <iomanip>

namespace carve {
namespace stats {

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->children_.push_back(this);
}

void
StatGroup::addScalar(const std::string &name, Scalar *s,
                     const std::string &desc)
{
    scalars_.push_back({name, desc, s});
}

void
StatGroup::addAverage(const std::string &name, Average *a,
                      const std::string &desc)
{
    averages_.push_back({name, desc, a});
}

void
StatGroup::addDistribution(const std::string &name, Distribution *d,
                           const std::string &desc)
{
    distributions_.push_back({name, desc, d});
}

std::string
StatGroup::fullName() const
{
    if (!parent_)
        return name_;
    std::string prefix = parent_->fullName();
    if (prefix.empty())
        return name_;
    return prefix + "." + name_;
}

void
StatGroup::dump(std::ostream &os) const
{
    const std::string prefix =
        fullName().empty() ? "" : fullName() + ".";
    for (const auto &s : scalars_) {
        os << prefix << s.name << " = " << s.stat->value();
        if (!s.desc.empty())
            os << "  # " << s.desc;
        os << "\n";
    }
    for (const auto &a : averages_) {
        os << prefix << a.name << " = " << std::setprecision(6)
           << a.stat->mean() << " (n=" << a.stat->count() << ")";
        if (!a.desc.empty())
            os << "  # " << a.desc;
        os << "\n";
    }
    for (const auto &d : distributions_) {
        os << prefix << d.name << " = mean " << std::setprecision(6)
           << d.stat->mean() << ", max " << d.stat->max()
           << ", n " << d.stat->count();
        if (!d.desc.empty())
            os << "  # " << d.desc;
        os << "\n";
    }
    for (const auto *child : children_)
        child->dump(os);
}

void
StatGroup::resetAll()
{
    for (auto &s : scalars_)
        s.stat->reset();
    for (auto &a : averages_)
        a.stat->reset();
    for (auto &d : distributions_)
        d.stat->reset();
    for (auto *child : children_)
        child->resetAll();
}

} // namespace stats
} // namespace carve
