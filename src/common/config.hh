/**
 * @file
 * System configuration: Table III of the paper plus every policy knob
 * this reproduction exposes.
 *
 * All capacities are in bytes, all bandwidths in bytes/cycle (1 GHz
 * clock: 64 GB/s == 64 B/cyc), all latencies in cycles.
 *
 * SystemConfig::scaled(k) divides every capacity (caches, RDC, DRAM)
 * by k while leaving bandwidths, latencies and counts untouched; the
 * workload suite applies the same factor to footprints so that every
 * size *ratio* matches the paper at a fraction of the simulation cost.
 */

#ifndef CARVE_COMMON_CONFIG_HH
#define CARVE_COMMON_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "common/units.hh"

namespace carve {

/** One textual "key=value" configuration override. */
struct ConfigOverride
{
    std::string key;
    std::string value;
};

/** Simulation engine driving a run's event domains. */
enum class SimEngine : std::uint8_t {
    Serial,        ///< windowed algorithm on the calling thread
    Parallel,      ///< domains fanned out over sim_threads workers
};

/** Page placement policy for first mapping of a virtual page. */
enum class PlacementPolicy : std::uint8_t {
    FirstTouch,    ///< map to the first-accessing GPU (NUMA-GPU default)
    RoundRobin,    ///< stripe pages across GPUs
    LocalOnly,     ///< single-GPU runs: everything local
};

/** Software page replication policy. */
enum class ReplicationPolicy : std::uint8_t {
    None,          ///< no replication
    ReadOnly,      ///< replicate read-only shared pages; collapse on write
    All,           ///< ideal: replicate every shared page at zero cost
};

/** Coherence regime applied to the Remote Data Cache. */
enum class RdcCoherence : std::uint8_t {
    None,          ///< upper bound: RDC kept coherent at zero cost
    Software,      ///< epoch-invalidate whole RDC at kernel boundaries
    HardwareVI,    ///< GPU-VI write-invalidate + IMST filtering
};

/** Write policy of the Remote Data Cache. */
enum class RdcWritePolicy : std::uint8_t {
    WriteThrough,  ///< paper default: dirty data propagates immediately
    WriteBack,     ///< dirty-map tracked writeback
};

/** Per-GPU cache parameters. */
struct CacheConfig
{
    std::uint64_t size = 0;        ///< total bytes
    unsigned ways = 1;             ///< associativity
    Cycle hit_latency = 1;         ///< lookup-to-data latency
    unsigned mshrs = 64;           ///< outstanding distinct-line misses
};

/** TLB hierarchy parameters. */
struct TlbConfig
{
    unsigned l1_entries = 32;      ///< per-SM TLB entries
    unsigned l2_entries = 1024;    ///< GPU-shared TLB entries
    Cycle l1_latency = 1;
    Cycle l2_latency = 20;
    Cycle walk_latency = 200;      ///< page-table walk penalty
};

/** Per-GPU DRAM (HBM) parameters. */
struct DramConfig
{
    std::uint64_t capacity = 32 * GiB;  ///< per-GPU capacity
    unsigned channels = 16;             ///< channels per GPU
    double channel_bw = 64.0;           ///< bytes/cycle per channel
    unsigned banks_per_channel = 16;
    std::uint64_t row_size = 2 * KiB;   ///< open-page row buffer
    Cycle row_hit_latency = 18;         ///< CAS-only access
    Cycle row_miss_latency = 40;        ///< precharge + activate + CAS
    unsigned read_queue = 128;          ///< entries per channel
    unsigned write_queue = 128;         ///< entries per channel
    /** Start draining writes at this occupancy fraction... */
    double write_drain_high = 0.75;
    /** ...and stop once occupancy falls back to this fraction. */
    double write_drain_low = 0.25;
};

/** Inter-GPU / CPU-GPU interconnect parameters. */
struct LinkConfig
{
    double gpu_gpu_bw = 64.0;      ///< bytes/cycle, per direction, per pair
    double cpu_gpu_bw = 32.0;      ///< bytes/cycle, per direction
    Cycle latency = 120;           ///< one-way hop latency
    unsigned ctrl_packet_size = 16;///< bytes for invalidate/ack packets
    Cycle cpu_mem_latency = 200;   ///< CPU-side DRAM access latency
};

/** CARVE Remote Data Cache parameters. */
struct RdcConfig
{
    bool enabled = false;
    std::uint64_t size = 2 * GiB;  ///< carve-out per GPU
    RdcWritePolicy write_policy = RdcWritePolicy::WriteThrough;
    RdcCoherence coherence = RdcCoherence::HardwareVI;
    bool hit_predictor = false;    ///< MAP-I style miss bypass
    unsigned epoch_bits = 20;      ///< EPCTR width
    /** Extra local-DRAM accesses per lookup are implicit; this adds a
     * fixed controller pipeline latency on top of the DRAM access. */
    Cycle controller_latency = 10;
    /** Max distinct remote lines with an in-flight fetch; further
     * misses park on the MSHR wake-list until a fetch completes. */
    unsigned mshr_entries = 1024;
};

/** NUMA software-runtime parameters. */
struct NumaConfig
{
    PlacementPolicy placement = PlacementPolicy::FirstTouch;
    ReplicationPolicy replication = ReplicationPolicy::None;
    bool migration = false;        ///< migrate hot remote private pages
    unsigned migration_threshold = 64;  ///< remote accesses before move
    Cycle migration_stall = 2000;  ///< TLB shootdown + remap stall
    /** Fraction of the workload footprint forced into CPU system
     * memory (models CARVE capacity loss under Unified Memory). */
    double spill_fraction = 0.0;
    /** Remote accesses to a CPU-resident page before UM migrates it
     * into GPU memory. */
    unsigned um_migration_threshold = 8;
    /** True when the GPU LLC may cache remote-home lines
     * (the NUMA-GPU baseline behaviour). */
    bool llc_caches_remote = true;
    /** Charge page-copy bulk transfers (migration / replication / UM
     * moves) to the physical links. Off by default: at the scaled
     * trace lengths this reproduction simulates, a 2 MB copy would be
     * weighted ~1000x heavier relative to demand traffic than in the
     * paper's 4-billion-instruction runs. The copies are always
     * *counted* (see SimResult) either way. */
    bool charge_bulk_transfers = false;
};

/** GPU core (SM) parameters. */
struct CoreConfig
{
    unsigned sms_per_gpu = 64;
    unsigned max_warps_per_sm = 64;
    unsigned lsu_issue_per_cycle = 1;  ///< warp mem-insts issued/cycle
    Cycle l1_to_l2_latency = 30;       ///< on-chip crossbar hop
    Cycle kernel_launch_latency = 1000;///< fixed per-kernel launch cost
};

/**
 * Complete multi-GPU system configuration. Defaults reproduce
 * Table III of the paper.
 */
struct SystemConfig
{
    unsigned num_gpus = 4;
    std::uint64_t page_size = 2 * MiB;
    std::uint64_t line_size = 128;
    std::uint64_t seed = 1;

    /** Event-domain execution mode. Serial and Parallel run the same
     * windowed algorithm and produce byte-identical stat trees. */
    SimEngine engine = SimEngine::Serial;
    /** Worker threads for SimEngine::Parallel (clamped to the domain
     * count: num_gpus + 1). Ignored under Serial. */
    unsigned sim_threads = 1;

    CoreConfig core;
    CacheConfig l1{128 * KiB, 4, 28, 64};       ///< per SM
    CacheConfig l2{8 * MiB, 16, 120, 512};      ///< per GPU (32MB total)
    TlbConfig tlb;
    DramConfig dram;
    LinkConfig link;
    RdcConfig rdc;
    NumaConfig numa;

    /**
     * Return a copy with all capacities divided by @p k (cache sizes,
     * RDC size, DRAM capacity, page size held fixed). @p k must be a
     * power of two so set counts stay integral.
     */
    SystemConfig scaled(unsigned k) const;

    /**
     * Apply a textual "key=value" override (e.g. "rdc.size=1073741824",
     * "numa.replication=readonly"). Unknown keys are fatal(). The
     * accepted keys come from one registry shared with
     * listOverrideKeys() and toOverrides(), so the three can never
     * drift apart.
     */
    void applyOverride(const std::string &key, const std::string &value);

    /** Every key applyOverride() accepts, in registry order. */
    static std::vector<std::string> listOverrideKeys();

    /**
     * Serialize this configuration as one override per registry key.
     * Round-trips: applying the result to any SystemConfig
     * reproduces *this exactly (doubles included — values print with
     * enough digits to parse back bit-identical).
     */
    std::vector<ConfigOverride> toOverrides() const;

    /**
     * toOverrides() sorted by key: the canonical serialization order.
     * Two SystemConfigs describing the same machine — no matter how
     * or in what order their overrides were applied — produce
     * identical canonical sequences, which is what content-addressed
     * consumers (the carve-served job key) hash.
     */
    std::vector<ConfigOverride> canonicalOverrides() const;

    /** fatal() on any inconsistent combination of parameters. */
    void validate() const;

    /** Lines per page with current geometry. */
    std::uint64_t
    linesPerPage() const
    {
        return page_size / line_size;
    }

    /** Aggregate local DRAM bandwidth of one GPU in bytes/cycle. */
    double
    localDramBw() const
    {
        return dram.channels * dram.channel_bw;
    }
};

/** Parse a SimEngine name ("serial", "parallel"). */
SimEngine parseSimEngine(const std::string &s);
/** Parse a PlacementPolicy name ("firsttouch", "roundrobin", "local"). */
PlacementPolicy parsePlacementPolicy(const std::string &s);
/** Parse a ReplicationPolicy name ("none", "readonly", "all"). */
ReplicationPolicy parseReplicationPolicy(const std::string &s);
/** Parse an RdcCoherence name ("none", "software", "hwvi"). */
RdcCoherence parseRdcCoherence(const std::string &s);
/** Parse an RdcWritePolicy name ("writethrough", "writeback"). */
RdcWritePolicy parseRdcWritePolicy(const std::string &s);

/** Canonical names; each parses back via the matching parse*(). */
const char *simEngineName(SimEngine e);
const char *placementPolicyName(PlacementPolicy p);
const char *replicationPolicyName(ReplicationPolicy p);
const char *rdcCoherenceName(RdcCoherence c);
const char *rdcWritePolicyName(RdcWritePolicy p);

} // namespace carve

#endif // CARVE_COMMON_CONFIG_HH
