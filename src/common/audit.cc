#include "common/audit.hh"

#include <algorithm>
#include <string_view>

namespace carve {
namespace audit {

namespace {

/** Flat view of the tree with exact-name and glob-sum helpers. */
class FlatView
{
  public:
    explicit FlatView(const stats::StatGroup &root)
        : flat_(stats::flattenStats(root))
    {
    }

    const stats::FlatStat *
    find(std::string_view name) const
    {
        const auto it = std::lower_bound(
            flat_.begin(), flat_.end(), name,
            [](const stats::FlatStat &f, std::string_view n) {
                return f.name < n;
            });
        return it != flat_.end() && it->name == name ? &*it : nullptr;
    }

    bool has(std::string_view name) const { return find(name); }

    std::uint64_t
    value(std::string_view name) const
    {
        const stats::FlatStat *f = find(name);
        return f ? f->u64 : 0;
    }

    std::uint64_t
    sum(std::string_view pattern) const
    {
        std::uint64_t total = 0;
        for (const auto &f : flat_)
            if (stats::nameMatches(pattern, f.name))
                total += f.u64;
        return total;
    }

    const std::vector<stats::FlatStat> &all() const { return flat_; }

  private:
    std::vector<stats::FlatStat> flat_;
};

std::string
eqFail(const std::string &lhs_name, std::uint64_t lhs,
       const std::string &rhs_name, std::uint64_t rhs)
{
    return lhs_name + " (" + std::to_string(lhs) + ") != " + rhs_name +
        " (" + std::to_string(rhs) + ")";
}

} // namespace

const char *
boundaryName(Boundary b)
{
    switch (b) {
      case Boundary::SmL2:
        return "sm_l2";
      case Boundary::L2Fill:
        return "l2_fill";
      case Boundary::RdcFetch:
        return "rdc_fetch";
      case Boundary::DramAccess:
        return "dram_access";
      case Boundary::LinkDelivery:
        return "link_delivery";
      case Boundary::BulkTransfer:
        return "bulk_transfer";
    }
    return "unknown";
}

void
InflightTracker::registerStats(stats::StatGroup &g)
{
    for (unsigned b = 0; b < num_boundaries; ++b) {
        const std::string name =
            boundaryName(static_cast<Boundary>(b));
        g.addScalar(name + "_issued", &issued_[b].scalar(),
                    "tokens issued at the " + name + " boundary");
        g.addScalar(name + "_retired", &retired_[b].scalar(),
                    "tokens retired at the " + name + " boundary");
    }
}

void
InflightTracker::check(std::vector<std::string> &out) const
{
    for (unsigned b = 0; b < num_boundaries; ++b) {
        const Boundary bd = static_cast<Boundary>(b);
        if (issued(bd) != retired(bd)) {
            out.push_back(eqFail(
                std::string("audit.inflight.") + boundaryName(bd) +
                    "_issued",
                issued(bd),
                std::string("audit.inflight.") + boundaryName(bd) +
                    "_retired",
                retired(bd)));
        }
    }
}

void
checkCacheProbes(const stats::StatGroup &root,
                 std::vector<std::string> &out)
{
    const FlatView flat(root);
    constexpr std::string_view suffix = ".probes";
    for (const auto &f : flat.all()) {
        if (f.name.size() <= suffix.size() ||
            f.name.compare(f.name.size() - suffix.size(),
                           suffix.size(), suffix) != 0) {
            continue;
        }
        const std::string base =
            f.name.substr(0, f.name.size() - suffix.size());
        std::uint64_t accounted = flat.value(base + ".hits") +
            flat.value(base + ".misses");
        std::string rhs = base + ".hits + " + base + ".misses";
        if (flat.has(base + ".stale_hits")) {
            accounted += flat.value(base + ".stale_hits");
            rhs += " + " + base + ".stale_hits";
        }
        if (accounted != f.u64)
            out.push_back(eqFail(f.name, f.u64, rhs, accounted));
    }
}

void
checkConservation(const stats::StatGroup &root,
                  const ConservationParams &p,
                  std::vector<std::string> &out)
{
    const FlatView flat(root);

    // ---- per-GPU classification and write-back conservation --------
    std::vector<std::string> gpu_prefixes;
    for (const auto &f : flat.all()) {
        if (stats::nameMatches("gpu*.traffic.remote_reads", f.name)) {
            gpu_prefixes.push_back(
                f.name.substr(0, f.name.find('.')));
        }
    }

    const bool has_rdc = !gpu_prefixes.empty() &&
        flat.has(gpu_prefixes.front() + ".rdc.read_misses");

    for (const auto &g : gpu_prefixes) {
        if (!flat.has(g + ".rdc.read_misses"))
            continue;
        // The GPU classifies a post-LLC read as remote exactly when
        // the RDC missed it, and as an RDC hit exactly when it hit.
        if (flat.value(g + ".traffic.remote_reads") !=
            flat.value(g + ".rdc.read_misses")) {
            out.push_back(eqFail(
                g + ".traffic.remote_reads",
                flat.value(g + ".traffic.remote_reads"),
                g + ".rdc.read_misses",
                flat.value(g + ".rdc.read_misses")));
        }
        if (flat.value(g + ".traffic.rdc_hit_reads") !=
            flat.value(g + ".rdc.read_hits")) {
            out.push_back(eqFail(
                g + ".traffic.rdc_hit_reads",
                flat.value(g + ".traffic.rdc_hit_reads"),
                g + ".rdc.read_hits",
                flat.value(g + ".rdc.read_hits")));
        }
        // Every dirty line displaced from the carve-out must have
        // been written back to its home.
        if (flat.has(g + ".rdc.writeback_victims") &&
            flat.value(g + ".rdc.alloy.dirty_evictions") !=
                flat.value(g + ".rdc.writeback_victims")) {
            out.push_back(eqFail(
                g + ".rdc.alloy.dirty_evictions",
                flat.value(g + ".rdc.alloy.dirty_evictions"),
                g + ".rdc.writeback_victims",
                flat.value(g + ".rdc.writeback_victims")));
        }
    }

    // ---- kernel-boundary flushes reach the fabric ------------------
    if (flat.has("fabric.flush_bytes")) {
        const std::uint64_t controller_flush =
            flat.sum("gpu*.rdc.flush_bytes");
        if (controller_flush != flat.value("fabric.flush_bytes")) {
            out.push_back(eqFail("sum(gpu*.rdc.flush_bytes)",
                                 controller_flush, "fabric.flush_bytes",
                                 flat.value("fabric.flush_bytes")));
        }
    }

    if (!flat.has("fabric.remote_read_msgs"))
        return; // doctored partial tree: nothing further to check

    // ---- message conservation --------------------------------------
    // Writes classified remote (plus write-back victim evictions) are
    // exactly the posted write messages the fabric accepted.
    const std::uint64_t classified_writes =
        flat.sum("gpu*.traffic.remote_writes") +
        flat.sum("gpu*.rdc.writeback_victims");
    if (classified_writes != flat.value("fabric.remote_write_msgs")) {
        out.push_back(eqFail(
            "sum(gpu*.traffic.remote_writes + "
            "gpu*.rdc.writeback_victims)",
            classified_writes, "fabric.remote_write_msgs",
            flat.value("fabric.remote_write_msgs")));
    }

    // Read messages: every RDC read miss launches one fetch unless it
    // merged behind an in-flight one; without an RDC the classifier
    // itself issues the message.
    const std::uint64_t expected_reads = has_rdc
        ? flat.sum("gpu*.rdc.read_misses") -
            flat.sum("gpu*.rdc.mshrs.merges")
        : flat.sum("gpu*.traffic.remote_reads");
    if (expected_reads != flat.value("fabric.remote_read_msgs")) {
        out.push_back(eqFail(
            has_rdc ? "sum(gpu*.rdc.read_misses - gpu*.rdc.mshrs"
                      ".merges)"
                    : "sum(gpu*.traffic.remote_reads)",
            expected_reads, "fabric.remote_read_msgs",
            flat.value("fabric.remote_read_msgs")));
    }

    // Reads block warps, so every read message has been serviced at
    // its home by the time a kernel boundary is reached.
    const std::uint64_t serviced_reads =
        flat.sum("gpu*.remote_serviced_reads");
    if (serviced_reads != flat.value("fabric.remote_read_msgs")) {
        out.push_back(eqFail(
            "sum(gpu*.remote_serviced_reads)", serviced_reads,
            "fabric.remote_read_msgs",
            flat.value("fabric.remote_read_msgs")));
    }

    // Writes are posted: only after the queue drains must every
    // message have landed in the home's DRAM.
    if (p.final_pass) {
        const std::uint64_t serviced_writes =
            flat.sum("gpu*.remote_serviced_writes");
        if (serviced_writes !=
            flat.value("fabric.remote_write_msgs")) {
            out.push_back(eqFail(
                "sum(gpu*.remote_serviced_writes)", serviced_writes,
                "fabric.remote_write_msgs",
                flat.value("fabric.remote_write_msgs")));
        }
    }

    // ---- link byte conservation ------------------------------------
    std::uint64_t gpu_link_bytes = 0;
    std::uint64_t cpu_link_bytes = 0;
    for (const auto &f : flat.all()) {
        if (!stats::nameMatches("link.*.*.bytes", f.name))
            continue;
        if (f.name.find(".cpu.") != std::string::npos)
            cpu_link_bytes += f.u64;
        else
            gpu_link_bytes += f.u64;
    }

    const std::uint64_t per_read =
        p.ctrl_packet_size + p.line_size;
    const std::uint64_t expected_gpu_bytes =
        flat.value("fabric.remote_read_msgs") * per_read +
        flat.value("fabric.remote_write_msgs") * p.line_size +
        flat.value("fabric.flush_bytes") +
        flat.value("fabric.coh_ctrl_bytes") +
        flat.value("fabric.bulk_gpu_bytes");
    if (gpu_link_bytes != expected_gpu_bytes) {
        out.push_back(eqFail(
            "sum(gpu-gpu link.*.*.bytes)", gpu_link_bytes,
            "read msgs x (ctrl + line) + write msgs x line + "
            "flush + coherence ctrl + charged bulk bytes",
            expected_gpu_bytes));
    }

    const std::uint64_t expected_cpu_bytes =
        flat.value("fabric.cpu_read_msgs") * per_read +
        flat.value("fabric.cpu_write_msgs") * p.line_size +
        flat.value("fabric.bulk_cpu_bytes");
    if (cpu_link_bytes != expected_cpu_bytes) {
        out.push_back(eqFail(
            "sum(cpu link.*.*.bytes)", cpu_link_bytes,
            "cpu read msgs x (ctrl + line) + cpu write msgs x "
            "line + charged bulk bytes",
            expected_cpu_bytes));
    }
}

} // namespace audit
} // namespace carve
