/**
 * @file
 * gem5-style status/error reporting.
 *
 * panic()  -- internal simulator invariant violated; aborts.
 * fatal()  -- user error (bad configuration etc.); exits with code 1.
 * warn()   -- questionable but survivable condition.
 * inform() -- plain status output.
 */

#ifndef CARVE_COMMON_LOGGING_HH
#define CARVE_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdlib>
#include <string>

namespace carve {

/** Severity of a log message. */
enum class LogLevel {
    Inform,
    Warn,
    Fatal,
    Panic,
};

namespace detail {

/** Emit one formatted message at the given level (printf semantics). */
[[gnu::format(printf, 2, 3)]]
void logMessage(LogLevel level, const char *fmt, ...);

[[noreturn]] void terminate(LogLevel level);

} // namespace detail

/** Globally silence inform()/warn() output (used by tests). */
void setLogQuiet(bool quiet);

/** @return whether inform()/warn() output is currently suppressed. */
bool logQuiet();

/** Report an unrecoverable internal error and abort. */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    detail::logMessage(LogLevel::Panic, fmt, args...);
    detail::terminate(LogLevel::Panic);
}

/** Report an unrecoverable user/configuration error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    detail::logMessage(LogLevel::Fatal, fmt, args...);
    detail::terminate(LogLevel::Fatal);
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    detail::logMessage(LogLevel::Warn, fmt, args...);
}

/** Report routine status. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    detail::logMessage(LogLevel::Inform, fmt, args...);
}

/** panic() unless @p cond holds. */
#define carve_assert(cond)                                              \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::carve::panic("assertion '%s' failed at %s:%d",            \
                           #cond, __FILE__, __LINE__);                  \
        }                                                               \
    } while (0)

} // namespace carve

#endif // CARVE_COMMON_LOGGING_HH
