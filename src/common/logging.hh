/**
 * @file
 * gem5-style status/error reporting.
 *
 * panic()  -- internal simulator invariant violated; aborts.
 * fatal()  -- user error (bad configuration etc.); exits with code 1.
 * warn()   -- questionable but survivable condition.
 * inform() -- plain status output.
 *
 * The experiment harness (src/harness/) runs many simulations inside
 * one process, so a single bad run must not take the whole sweep
 * down. ScopedErrorCapture converts panic()/fatal() on the *current
 * thread* into a SimAbortError exception instead of terminating the
 * process; the harness catches it and reports the run as failed.
 *
 * Every message funnels through ONE sink: observers (ScopedLogObserver,
 * used by the tracer for instant events) and capture both receive the
 * identical formatted text, and the CARVE_LOG_LEVEL environment
 * variable ("inform"/"info", "warn", "fatal", "panic", "silent"/"none";
 * default inform) filters what the sink prints — never what it
 * captures, observes, or how it terminates.
 */

#ifndef CARVE_COMMON_LOGGING_HH
#define CARVE_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <string>

namespace carve {

/** Severity of a log message. */
enum class LogLevel {
    Inform,
    Warn,
    Fatal,
    Panic,
};

/**
 * Thrown in place of process termination when the calling thread has
 * an active ScopedErrorCapture. Carries the formatted panic()/fatal()
 * message and its severity.
 */
class SimAbortError : public std::runtime_error
{
  public:
    SimAbortError(LogLevel level, const std::string &message)
        : std::runtime_error(message), level_(level)
    {
    }

    /** LogLevel::Panic or LogLevel::Fatal. */
    LogLevel level() const { return level_; }

  private:
    LogLevel level_;
};

namespace detail {

/** Emit one formatted message at the given level (printf semantics). */
[[gnu::format(printf, 2, 3)]]
void logMessage(LogLevel level, const char *fmt, ...);

[[noreturn]] void terminate(LogLevel level);

} // namespace detail

/**
 * While alive, panic()/fatal() on the constructing thread throw
 * SimAbortError instead of aborting/exiting, and their message is
 * diverted into the exception rather than printed. Nests safely.
 */
class ScopedErrorCapture
{
  public:
    ScopedErrorCapture();
    ~ScopedErrorCapture();

    ScopedErrorCapture(const ScopedErrorCapture &) = delete;
    ScopedErrorCapture &operator=(const ScopedErrorCapture &) = delete;
};

/** True when the current thread has an active ScopedErrorCapture. */
bool errorCaptureActive();

/**
 * Observer of the single log sink: sees (level, message) for every
 * message on the installing thread, before capture diversion and
 * before CARVE_LOG_LEVEL/quiet filtering — so an observer (the
 * tracer's instant events) and ScopedErrorCapture receive the exact
 * same text. The message carries no "panic:" prefix.
 */
using LogObserver = std::function<void(LogLevel, const std::string &)>;

/**
 * While alive, routes every log message on the constructing thread
 * through @p obs (in addition to the normal sink). Nests: the previous
 * observer is restored on destruction and is NOT chained.
 */
class ScopedLogObserver
{
  public:
    explicit ScopedLogObserver(LogObserver obs);
    ~ScopedLogObserver();

    ScopedLogObserver(const ScopedLogObserver &) = delete;
    ScopedLogObserver &operator=(const ScopedLogObserver &) = delete;

  private:
    LogObserver own_;
    LogObserver *prev_;
};

/** Globally silence inform()/warn() output (used by tests). */
void setLogQuiet(bool quiet);

/** @return whether inform()/warn() output is currently suppressed. */
bool logQuiet();

/** Report an unrecoverable internal error and abort. */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    detail::logMessage(LogLevel::Panic, fmt, args...);
    detail::terminate(LogLevel::Panic);
}

/** Report an unrecoverable user/configuration error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    detail::logMessage(LogLevel::Fatal, fmt, args...);
    detail::terminate(LogLevel::Fatal);
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    detail::logMessage(LogLevel::Warn, fmt, args...);
}

/** Report routine status. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    detail::logMessage(LogLevel::Inform, fmt, args...);
}

/** panic() unless @p cond holds. */
#define carve_assert(cond)                                              \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::carve::panic("assertion '%s' failed at %s:%d",            \
                           #cond, __FILE__, __LINE__);                  \
        }                                                               \
    } while (0)

} // namespace carve

#endif // CARVE_COMMON_LOGGING_HH
