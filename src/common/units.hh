/**
 * @file
 * Size and bandwidth unit helpers.
 *
 * Bandwidths in carve-sim are expressed in bytes per cycle. With the
 * 1 GHz GPU clock used by the paper (Table III), 1 GB/s == ~1.074 B/cyc;
 * we adopt the conventional simplification 1 GB/s == 1 B/cyc (i.e.,
 * "GB" == 2^30 but cycles at 10^9/s treated as binary giga), which keeps
 * every bandwidth *ratio* exact — and only ratios matter for the paper's
 * relative results.
 */

#ifndef CARVE_COMMON_UNITS_HH
#define CARVE_COMMON_UNITS_HH

#include <cstdint>

#include "common/types.hh"

namespace carve {

inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;

/** Convert a GB/s link/memory bandwidth into bytes per GPU cycle. */
inline constexpr double
gbpsToBytesPerCycle(double gbps)
{
    return gbps;
}

/** Integer ceiling division. */
template <typename T>
inline constexpr T
divCeil(T a, T b)
{
    return (a + b - 1) / b;
}

/** True when @p v is a power of two (v > 0). */
inline constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power-of-two value. */
inline constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** Align @p a down to a multiple of power-of-two @p align. */
inline constexpr Addr
alignDown(Addr a, std::uint64_t align)
{
    return a & ~(align - 1);
}

/** Align @p a up to a multiple of power-of-two @p align. */
inline constexpr Addr
alignUp(Addr a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

} // namespace carve

#endif // CARVE_COMMON_UNITS_HH
