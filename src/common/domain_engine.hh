/**
 * @file
 * Conservative parallel discrete-event engine: one EventQueue per
 * simulation domain (one per GPU plus one for the system/CPU side),
 * synchronized by a fixed lookahead window derived from the minimum
 * inter-domain link latency. Within a window every domain executes its
 * own events independently; events targeting another domain are
 * buffered in per-source outboxes and exchanged at the window barrier
 * in (tick, source-domain, sequence) order, so the schedule each
 * destination queue observes — and therefore every stat the simulation
 * produces — is byte-identical whether the domains run on one thread
 * or many.
 *
 * SimEngine::Serial runs the same windowed algorithm single-threaded;
 * SimEngine::Parallel fans the domains out over sim_threads persistent
 * workers joined by a spin-then-yield sense-reversing barrier (the
 * window cadence is a few thousand barriers per million cycles, far
 * too hot for a mutex/condvar barrier). Identity between the two modes
 * holds by construction: thread assignment never influences event
 * order, only which core fires it.
 */

#ifndef CARVE_COMMON_DOMAIN_ENGINE_HH
#define CARVE_COMMON_DOMAIN_ENGINE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/config.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "telemetry/histogram.hh"

namespace carve {

namespace engine_ctx {

/** Shard slots: max_nodes GPU domains + the system domain + one
 * barrier/external slot. */
inline constexpr unsigned max_shards = 18;
/** Shard index for single-threaded contexts: window barriers, unit
 * tests driving components without an engine, tool main threads. */
inline constexpr unsigned barrier_shard = max_shards - 1;

/** Domain the calling thread is currently executing (barrier_shard
 * outside a domain window). Set by DomainEngine only. */
extern thread_local unsigned current_shard;

inline unsigned currentShard() { return current_shard; }

} // namespace engine_ctx

/**
 * A Scalar whose increments land in a per-domain shard mid-window and
 * fold into the registered total at each barrier. Increments from the
 * barrier shard (single-threaded contexts) update the total directly,
 * so engine-less unit tests observe counts immediately.
 */
class ShardedScalar
{
  public:
    void
    inc(std::uint64_t v = 1)
    {
        const unsigned s = engine_ctx::current_shard;
        if (s == engine_ctx::barrier_shard)
            total_ += v;
        else
            shards_[s].v += v;
    }

    /** Fold every shard into the total (window barriers only). */
    void
    fold()
    {
        for (Slot &s : shards_) {
            total_ += s.v;
            s.v = 0;
        }
    }

    /** The registered stat; only coherent at window barriers. */
    stats::Scalar &scalar() { return total_; }
    const stats::Scalar &scalar() const { return total_; }

  private:
    /** Padded to a cache line: shards of one counter are written by
     * different worker threads in the same window. */
    struct alignas(64) Slot
    {
        std::uint64_t v = 0;
    };

    stats::Scalar total_;
    std::array<Slot, engine_ctx::barrier_shard> shards_{};
};

/**
 * Per-GPU event domains under a conservative lookahead window.
 * Domains 0..num_gpus-1 belong to the GPUs; domain num_gpus is the
 * system/CPU domain (kernel sequencing, CPU memory, spill traffic).
 */
class DomainEngine
{
  public:
    /** Sentinel "no more events" tick. */
    static constexpr Cycle no_event = EventQueue::no_event;

    struct Hooks
    {
        /** Runs single-threaded at every window barrier, after the
         * cross-domain exchange and before the barrier actions. */
        std::function<void(Cycle barrier_tick)> on_barrier;
        /** Continue into the window starting at @p next_window_start?
         * Checked after each barrier. */
        std::function<bool(Cycle next_window_start)> keep_going;
        /** Wall-clock budget; 0 disables the check. Tripping it stops
         * the run at the next barrier (stopRequested() reports it). */
        double max_wall_seconds = 0.0;
    };

    /**
     * @param num_gpus GPU domain count (the system domain is added)
     * @param lookahead window width in cycles (>= 1); every
     *        cross-domain post must land at least this far ahead
     * @param mode Serial or Parallel execution of the same algorithm
     * @param threads worker count for Parallel (clamped to domains)
     */
    DomainEngine(unsigned num_gpus, Cycle lookahead, SimEngine mode,
                 unsigned threads);

    DomainEngine(const DomainEngine &) = delete;
    DomainEngine &operator=(const DomainEngine &) = delete;

    unsigned numDomains() const
    {
        return static_cast<unsigned>(queues_.size());
    }
    unsigned systemDomain() const { return numDomains() - 1; }
    EventQueue &queue(unsigned d) { return *queues_[d]; }
    const EventQueue &queue(unsigned d) const { return *queues_[d]; }

    Cycle lookahead() const { return lookahead_; }
    SimEngine mode() const { return mode_; }
    unsigned threads() const { return threads_; }

    /** Start tick of the current window (== last completed barrier). */
    Cycle barrierTick() const { return barrier_tick_; }

    /**
     * The executing context's current time: the running domain's queue
     * time mid-window, the barrier tick in barrier phases and outside
     * run().
     */
    Cycle
    now() const
    {
        const unsigned s = engine_ctx::current_shard;
        if (in_barrier_ || s >= queues_.size())
            return barrier_tick_;
        return queues_[s]->now();
    }

    /**
     * Deliver @p fn into domain @p dst at absolute tick @p when.
     * Mid-window the event is buffered in the executing domain's
     * outbox and injected at the barrier; @p when must therefore be at
     * least one full lookahead ahead of the window start. From barrier
     * phases (single-threaded) it is scheduled directly.
     */
    void post(unsigned dst, Cycle when, EventFn fn);

    /** Run @p fn single-threaded at the next window barrier, after the
     * exchange and on_barrier hook, in registration order. */
    void atNextBarrier(std::function<void()> fn);

    /** Total events executed across all domain queues. */
    std::uint64_t eventsExecuted() const;

    /** True when every queue, outbox and barrier action is empty. */
    bool quiescent() const;

    /** Ask the run loop to stop at the next barrier (thread-safe). */
    void
    requestStop()
    {
        stop_requested_.store(true, std::memory_order_relaxed);
    }
    bool
    stopRequested() const
    {
        return stop_requested_.load(std::memory_order_relaxed);
    }

    /** Execute windows until keep_going declines, stop is requested,
     * or the whole system quiesces. */
    void run(const Hooks &hooks);

    /**
     * Attach the self-profiling record: every window barrier samples
     * per-domain occupancy, outbox depth and exchange volume into
     * @p p (single-threaded, so plain histograms suffice), and — when
     * p->host_timing is set — parallel workers time their barrier
     * waits into private shards merged into p->barrier_wait_ns in
     * worker-id order after the run. Null detaches; when detached the
     * barrier path does no extra work at all.
     */
    void attachProfile(telemetry::EngineProfile *p) { profile_ = p; }

    /**
     * Conservative lookahead for @p cfg: the earliest a cross-domain
     * message sent at tick t can act on its destination is
     * t + 1 (min link occupancy) + link latency, so a window of
     * link.latency + 1 cycles is safe.
     */
    static Cycle
    lookaheadWindow(const SystemConfig &cfg)
    {
        return static_cast<Cycle>(cfg.link.latency) + 1;
    }

  private:
    /** One buffered cross-domain event. */
    struct Msg
    {
        Cycle when;
        std::uint64_t seq;  ///< per-source append order
        std::uint32_t src;
        std::uint32_t dst;
        EventFn fn;
    };

    /** Outboxes are written by one domain each; pad them apart. */
    struct alignas(64) Outbox
    {
        std::vector<Msg> msgs;
        std::uint64_t next_seq = 0;
    };

    /** Sense-reversing spin barrier (see file comment). */
    class SpinBarrier
    {
      public:
        explicit SpinBarrier(unsigned parties) : parties_(parties) {}
        void arriveAndWait();

      private:
        const unsigned parties_;
        std::atomic<std::uint32_t> arrived_{0};
        std::atomic<std::uint32_t> phase_{0};
    };

    /** Run every domain assigned to @p worker for this window. */
    void runAssigned(unsigned worker, unsigned num_workers, Cycle wend,
                     const std::function<bool()> *per_event);
    /** Exchange outboxes into destination queues in (tick, src, seq)
     * order, then run the barrier hook and actions. */
    void windowBarrier(Cycle wend, const Hooks &hooks);
    void runSerial(const Hooks &hooks);
    void runParallel(const Hooks &hooks, unsigned num_workers);

    const Cycle lookahead_;
    const SimEngine mode_;
    const unsigned threads_;

    std::vector<std::unique_ptr<EventQueue>> queues_;
    std::vector<Outbox> outboxes_;
    std::vector<Msg> exchange_scratch_;
    std::vector<std::function<void()>> barrier_actions_;

    Cycle barrier_tick_ = 0;
    bool in_barrier_ = false;
    std::atomic<bool> stop_requested_{false};

    telemetry::EngineProfile *profile_ = nullptr;
    /** executed() at the previous barrier, per domain (profiling). */
    std::vector<std::uint64_t> prev_executed_;
};

} // namespace carve

#endif // CARVE_COMMON_DOMAIN_ENGINE_HH
