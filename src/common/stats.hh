/**
 * @file
 * Lightweight named-statistics package.
 *
 * Components own Scalar / Average / Distribution objects registered in a
 * StatGroup tree; StatGroup::dump() renders a flat name=value report.
 * This is a deliberately small subset of the gem5 stats package: enough
 * to expose every counter the paper's figures need.
 */

#ifndef CARVE_COMMON_STATS_HH
#define CARVE_COMMON_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace carve {
namespace stats {

/** Monotonic 64-bit event counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(std::uint64_t v) { value_ += v; return *this; }

    /** Current count. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero (used between measurement phases). */
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean of observed samples. */
class Average
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Sum of samples. */
    double sum() const { return sum_; }

    /** Mean of samples; 0 when empty. */
    double
    mean() const
    {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

    void reset() { sum_ = 0.0; count_ = 0; }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram over [0, bucket_width * num_buckets). */
class Distribution
{
  public:
    /**
     * @param num_buckets number of equal-width buckets
     * @param bucket_width width of each bucket
     */
    Distribution(unsigned num_buckets = 16,
                 std::uint64_t bucket_width = 64)
        : width_(bucket_width ? bucket_width : 1),
          buckets_(num_buckets ? num_buckets : 1, 0)
    {
    }

    /** Record one sample (overflow clamps into the last bucket). */
    void
    sample(std::uint64_t v)
    {
        std::uint64_t b = v / width_;
        if (b >= buckets_.size())
            b = buckets_.size() - 1;
        ++buckets_[b];
        ++count_;
        sum_ += v;
        if (v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t max() const { return max_; }

    double
    mean() const
    {
        return count_ == 0
            ? 0.0
            : static_cast<double>(sum_) / static_cast<double>(count_);
    }

    /** Raw bucket counts. */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    void
    reset()
    {
        for (auto &b : buckets_)
            b = 0;
        count_ = 0;
        sum_ = 0;
        max_ = 0;
    }

  private:
    std::uint64_t width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * Named collection of statistics. Groups nest to form dotted names
 * (e.g., "gpu0.l2.hits").
 */
class StatGroup
{
  public:
    /**
     * @param name leaf name of this group
     * @param parent enclosing group, or nullptr for a root
     */
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a scalar under @p name. Pointers must outlive dump(). */
    void addScalar(const std::string &name, Scalar *s,
                   const std::string &desc = "");
    /** Register an average under @p name. */
    void addAverage(const std::string &name, Average *a,
                    const std::string &desc = "");
    /** Register a distribution under @p name. */
    void addDistribution(const std::string &name, Distribution *d,
                         const std::string &desc = "");

    /** Fully qualified dotted name of this group. */
    std::string fullName() const;

    /** Render this group and all children as name=value lines. */
    void dump(std::ostream &os) const;

    /** Reset every registered stat in this group and children. */
    void resetAll();

  private:
    struct NamedScalar
    {
        std::string name;
        std::string desc;
        Scalar *stat;
    };
    struct NamedAverage
    {
        std::string name;
        std::string desc;
        Average *stat;
    };
    struct NamedDistribution
    {
        std::string name;
        std::string desc;
        Distribution *stat;
    };

    std::string name_;
    StatGroup *parent_;
    std::vector<StatGroup *> children_;
    std::vector<NamedScalar> scalars_;
    std::vector<NamedAverage> averages_;
    std::vector<NamedDistribution> distributions_;
};

} // namespace stats
} // namespace carve

#endif // CARVE_COMMON_STATS_HH
