/**
 * @file
 * Named-statistics package and the unified metrics registry.
 *
 * Components own Scalar / Average / Distribution objects and register
 * them into a StatGroup tree rooted at the owning system; groups nest
 * to form dotted names ("gpu0.l2.hits", "link.0.3.bytes"). The tree is
 * the single source of truth for every statistic in the simulator:
 * reporting (collectResult), the sweep JSON writer and the text dump
 * all derive their values from a registry walk instead of poking
 * component getters. This is a deliberately small subset of the gem5
 * stats package: enough to expose every counter the paper's figures
 * need and to make adding a metric a one-line registration.
 */

#ifndef CARVE_COMMON_STATS_HH
#define CARVE_COMMON_STATS_HH

#include <cmath>
#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "telemetry/histogram.hh"

namespace carve {
namespace stats {

/** Monotonic 64-bit event counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(std::uint64_t v) { value_ += v; return *this; }
    /** Overwrite the count (result snapshots, JSON parsing). */
    Scalar &operator=(std::uint64_t v) { value_ = v; return *this; }

    /** Current count. */
    std::uint64_t value() const { return value_; }
    /** Scalars read as plain counters in arithmetic and comparisons. */
    operator std::uint64_t() const { return value_; }

    /** Reset to zero (used between measurement phases). */
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean of observed samples. */
class Average
{
  public:
    /** Record one sample. Non-finite or negative samples are dropped:
     * every Average in the simulator measures a nonnegative quantity
     * (delays, sizes), so such a sample is always an upstream bug and
     * must not poison the mean. */
    void
    sample(double v)
    {
        if (!std::isfinite(v) || v < 0.0)
            return;
        sum_ += v;
        ++count_;
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Sum of samples. */
    double sum() const { return sum_; }

    /** Mean of samples; 0 when empty. */
    double
    mean() const
    {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

    void reset() { sum_ = 0.0; count_ = 0; }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram over [0, bucket_width * num_buckets). */
class Distribution
{
  public:
    /**
     * @param num_buckets number of equal-width buckets
     * @param bucket_width width of each bucket
     */
    Distribution(unsigned num_buckets = 16,
                 std::uint64_t bucket_width = 64)
        : width_(bucket_width ? bucket_width : 1),
          buckets_(num_buckets ? num_buckets : 1, 0)
    {
    }

    /** Record one sample (overflow clamps into the last bucket). */
    void
    sample(std::uint64_t v)
    {
        std::uint64_t b = v / width_;
        if (b >= buckets_.size())
            b = buckets_.size() - 1;
        ++buckets_[b];
        ++count_;
        sum_ += v;
        if (v > max_)
            max_ = v;
    }

    /** Record one floating-point sample; NaN/infinite/negative
     * samples are dropped (see Average::sample). Constrained so
     * integer arguments still resolve to the uint64_t overload. */
    template <typename T,
              typename = std::enable_if_t<std::is_floating_point_v<T>>>
    void
    sample(T v)
    {
        if (!std::isfinite(v) || v < 0.0)
            return;
        sample(static_cast<std::uint64_t>(v));
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t max() const { return max_; }
    std::uint64_t sum() const { return sum_; }

    double
    mean() const
    {
        return count_ == 0
            ? 0.0
            : static_cast<double>(sum_) / static_cast<double>(count_);
    }

    /** Raw bucket counts. */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    void
    reset()
    {
        for (auto &b : buckets_)
            b = 0;
        count_ = 0;
        sum_ = 0;
        max_ = 0;
    }

  private:
    std::uint64_t width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * One value of the registry rendered flat: the fully qualified dotted
 * name plus either an exact integer or a double. Averages flatten to
 * two entries ("<name>.count", "<name>.sum"); distributions to three
 * ("<name>.count", "<name>.sum", "<name>.max"); telemetry histograms
 * to six ("<name>.count", ".max", ".p50", ".p95", ".p99", ".sum"),
 * all exact integers.
 */
struct FlatStat
{
    std::string name;
    /** True when the value is exact and lives in @ref u64. */
    bool integral = true;
    std::uint64_t u64 = 0;
    double dbl = 0.0;

    double
    asDouble() const
    {
        return integral ? static_cast<double>(u64) : dbl;
    }
};

/** Scalar values by full name, sorted by name. */
using ScalarSnapshot =
    std::vector<std::pair<std::string, std::uint64_t>>;

/**
 * Per-kernel measurement phase: the increase of every scalar counter
 * between two kernel boundaries, so benches can separate warmup
 * kernels from steady state without resetting live counters.
 */
struct EpochPhase
{
    std::uint32_t index = 0;        ///< kernel id of this phase
    std::uint64_t start_cycle = 0;
    std::uint64_t end_cycle = 0;
    /** Counter increase during the phase, sorted by name. */
    ScalarSnapshot deltas;
};

/**
 * Named collection of statistics. Groups nest to form dotted names
 * (e.g., "gpu0.l2.hits"). Registered names must not contain '.'
 * (that is the hierarchy separator) and must be unique within their
 * group; violations are fatal at registration time.
 */
class StatGroup
{
  public:
    /**
     * @param name leaf name of this group
     * @param parent enclosing group, or nullptr for a root
     */
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a scalar under @p name. Pointers must outlive dump(). */
    void addScalar(const std::string &name, Scalar *s,
                   const std::string &desc = "");
    /** Register an average under @p name. */
    void addAverage(const std::string &name, Average *a,
                    const std::string &desc = "");
    /** Register a distribution under @p name. */
    void addDistribution(const std::string &name, Distribution *d,
                         const std::string &desc = "");
    /** Register a telemetry log2 histogram under @p name. Rendered
     * with deterministic p50/p95/p99 (see telemetry::Histogram). */
    void addHistogram(const std::string &name,
                      telemetry::Histogram *h,
                      const std::string &desc = "");
    /** Register a derived statistic computed on demand from @p fn
     * (ratios, gauges over component state). Never reset. */
    void addDerived(const std::string &name,
                    std::function<double()> fn,
                    const std::string &desc = "");
    /** Derived statistic whose value is an exact integer. */
    void addDerivedInt(const std::string &name,
                       std::function<std::uint64_t()> fn,
                       const std::string &desc = "");

    /** Fully qualified dotted name of this group. */
    std::string fullName() const;

    /** Leaf name of this group. */
    const std::string &name() const { return name_; }

    /**
     * Registry walk callbacks. Any member may be empty. Within a
     * group the walk visits scalars, averages, distributions,
     * histograms, then derived stats — each kind sorted by name —
     * and then recurses
     * into children sorted by name, so the visit order is a pure
     * function of the registered names, never of construction order.
     */
    struct Visitor
    {
        std::function<void(const std::string &full_name,
                           const Scalar &, const std::string &desc)>
            scalar;
        std::function<void(const std::string &full_name,
                           const Average &, const std::string &desc)>
            average;
        std::function<void(const std::string &full_name,
                           const Distribution &,
                           const std::string &desc)>
            distribution;
        std::function<void(const std::string &full_name,
                           const telemetry::Histogram &,
                           const std::string &desc)>
            histogram;
        /** @p integral mirrors addDerivedInt vs addDerived. */
        std::function<void(const std::string &full_name, double value,
                           bool integral, const std::string &desc)>
            derived;
    };

    /** Walk this group and all children in deterministic order. */
    void visit(const Visitor &v) const;

    /** Look up a stat by dotted name relative to this group
     * ("gpu0.l2.hits" on the root). nullptr when absent. */
    const Scalar *findScalar(std::string_view dotted) const;
    const Average *findAverage(std::string_view dotted) const;
    const Distribution *findDistribution(std::string_view dotted) const;
    const telemetry::Histogram *
    findHistogram(std::string_view dotted) const;
    /** Child group by dotted name; nullptr when absent. */
    const StatGroup *findGroup(std::string_view dotted) const;
    /** Value of a scalar or derived stat by dotted name. */
    std::optional<double> findValue(std::string_view dotted) const;

    /** Render this group and all children as name=value lines, every
     * level sorted by name (byte-stable regardless of construction
     * order). */
    void dump(std::ostream &os) const;

    /** Reset every registered stat in this group and children
     * (derived stats have no state and are unaffected). */
    void resetAll();

  private:
    template <typename T>
    struct Named
    {
        std::string name;
        std::string desc;
        T *stat;
    };
    struct NamedDerived
    {
        std::string name;
        std::string desc;
        std::function<double()> fn;
        bool integral;
    };

    void checkName(const std::string &name) const;
    /** Children sorted by name (children_ keeps insertion order). */
    std::vector<const StatGroup *> sortedChildren() const;

    std::string name_;
    StatGroup *parent_;
    std::vector<StatGroup *> children_;
    std::vector<Named<Scalar>> scalars_;
    std::vector<Named<Average>> averages_;
    std::vector<Named<Distribution>> distributions_;
    std::vector<Named<telemetry::Histogram>> histograms_;
    std::vector<NamedDerived> derived_;
};

/**
 * Render the whole registry flat: every stat as (full name, value),
 * sorted by name. This is the representation embedded in sweep
 * results (schema v2) and consumed by collectResult().
 */
std::vector<FlatStat> flattenStats(const StatGroup &root);

/** Capture every scalar counter's current value, sorted by name. */
ScalarSnapshot snapshotScalars(const StatGroup &root);

/**
 * Per-name difference @p after - @p before (both sorted by name).
 * Names present only in @p after are reported at full value; names
 * that disappeared are dropped (stats never unregister mid-run).
 */
ScalarSnapshot snapshotDelta(const ScalarSnapshot &before,
                             const ScalarSnapshot &after);

/**
 * Match a dotted stat name against a pattern matched segment by
 * segment: a bare '*' segment matches any one name segment, and a
 * segment ending in '*' prefix-matches within that segment
 * ("gpu*.l2.hits" matches "gpu0.l2.hits" but not
 * "gpu0.l2.mshrs.hits"; patterns never span dots).
 */
bool nameMatches(std::string_view pattern, std::string_view name);

} // namespace stats
} // namespace carve

#endif // CARVE_COMMON_STATS_HH
