/**
 * @file
 * Dirty-region map for a write-back Remote Data Cache (Sim et al.,
 * MICRO '12 "mostly-clean" dirty tracking, cited as [45]).
 *
 * Tracks exactly which RDC sets hold dirty lines (keyed by the set's
 * storage offset, with the dirty line's home node) and reports flush
 * work at coarse region granularity: a kernel-boundary flush reads
 * back whole regions, so dirtyBytes() is the number of regions with
 * at least one dirty set times the region size. Exact per-set entries
 * (rather than a lossy per-region bit) let a displacement or
 * invalidation clear its set without forgetting other dirty sets in
 * the same region. The paper ultimately adopts a write-through RDC;
 * the write-back + dirty-map design is kept for the ablation bench.
 */

#ifndef CARVE_DRAMCACHE_DIRTY_MAP_HH
#define CARVE_DRAMCACHE_DIRTY_MAP_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace carve {

/** Region-granularity dirty tracker over the RDC carve-out. */
class DirtyMap
{
  public:
    /**
     * @param region_size bytes per tracked region (power of two)
     */
    explicit DirtyMap(std::uint64_t region_size = 4096);

    /** Record a write to the RDC storage offset @p rdc_offset of a
     * line homed at @p home (the flush destination). */
    void markDirty(Addr rdc_offset, NodeId home);

    /** Forget the dirty set at @p rdc_offset (its line was displaced
     * or invalidated; the data left the carve-out). */
    void clearDirty(Addr rdc_offset);

    /** True when the region containing @p rdc_offset has at least one
     * dirty set. */
    bool isDirty(Addr rdc_offset) const;

    /** True when the set at exactly @p rdc_offset is dirty. */
    bool
    isDirtyLine(Addr rdc_offset) const
    {
        return sets_.contains(rdc_offset);
    }

    /** Number of dirty sets tracked. */
    std::size_t dirtyLines() const { return sets_.size(); }

    /** Number of regions with at least one dirty set. */
    std::size_t dirtyRegions() const;

    /** Bytes that a flush must read back and transmit. */
    std::uint64_t
    dirtyBytes() const
    {
        return dirtyRegions() * region_size_;
    }

    /**
     * Flush plan: (home node, bytes) per destination, sorted by home
     * id for determinism. Each dirty region is attributed to the home
     * of its lowest dirty set offset (regions cover contiguous sets,
     * which map to address-adjacent lines, so mixed-home regions are
     * rare); bytes sum to dirtyBytes().
     */
    std::vector<std::pair<NodeId, std::uint64_t>> flushTargets() const;

    /** Clear after a flush. */
    void clear() { sets_.clear(); }

    std::uint64_t regionSize() const { return region_size_; }

    /** Lifetime count of set markings (including re-marks). */
    std::uint64_t markings() const { return markings_.value(); }

    /** Dirty sets keyed by storage offset, with the line's home
     * (audit cross-checks this against the alloy tag state). */
    const std::unordered_map<std::uint64_t, NodeId> &
    dirtySets() const
    {
        return sets_;
    }

    /** Register this map's counters into @p g. */
    void
    registerStats(stats::StatGroup &g)
    {
        g.addScalar("markings", &markings_,
                    "set markings (including re-marks)");
    }

  private:
    std::uint64_t region_size_;
    /** Dirty set storage offset -> home of the resident dirty line. */
    std::unordered_map<std::uint64_t, NodeId> sets_;
    stats::Scalar markings_;
};

} // namespace carve

#endif // CARVE_DRAMCACHE_DIRTY_MAP_HH
