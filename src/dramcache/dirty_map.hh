/**
 * @file
 * Dirty-region map for a write-back Remote Data Cache (Sim et al.,
 * MICRO '12 "mostly-clean" dirty tracking, cited as [45]).
 *
 * Tracks which coarse RDC regions have been written so a kernel-
 * boundary flush only reads back the dirty fraction instead of the
 * whole carve-out. The paper ultimately adopts a write-through RDC;
 * the write-back + dirty-map design is kept for the ablation bench.
 */

#ifndef CARVE_DRAMCACHE_DIRTY_MAP_HH
#define CARVE_DRAMCACHE_DIRTY_MAP_HH

#include <cstdint>
#include <unordered_set>

#include "common/stats.hh"
#include "common/types.hh"

namespace carve {

/** Region-granularity dirty tracker over the RDC carve-out. */
class DirtyMap
{
  public:
    /**
     * @param region_size bytes per tracked region (power of two)
     */
    explicit DirtyMap(std::uint64_t region_size = 4096);

    /** Record a write to the RDC storage offset @p rdc_offset. */
    void markDirty(Addr rdc_offset);

    /** True when the region containing @p rdc_offset is dirty. */
    bool isDirty(Addr rdc_offset) const;

    /** Number of dirty regions. */
    std::size_t dirtyRegions() const { return regions_.size(); }

    /** Bytes that a flush must read back and transmit. */
    std::uint64_t
    dirtyBytes() const
    {
        return regions_.size() * region_size_;
    }

    /** Clear after a flush. */
    void clear() { regions_.clear(); }

    std::uint64_t regionSize() const { return region_size_; }

    /** Lifetime count of region markings (including re-marks). */
    std::uint64_t markings() const { return markings_.value(); }

    /** Register this map's counters into @p g. */
    void
    registerStats(stats::StatGroup &g)
    {
        g.addScalar("markings", &markings_,
                    "region markings (including re-marks)");
    }

  private:
    std::uint64_t region_size_;
    std::unordered_set<std::uint64_t> regions_;
    stats::Scalar markings_;
};

} // namespace carve

#endif // CARVE_DRAMCACHE_DIRTY_MAP_HH
