/**
 * @file
 * MAP-I style DRAM-cache hit predictor (Qureshi & Loh, MICRO '12).
 *
 * The Alloy RDC serializes a local tags-with-data probe before a
 * remote fetch on a miss; for miss-heavy, latency-sensitive workloads
 * (the paper's RandAccess outlier, Section IV-A) that extra local
 * access costs ~10%. The predictor keeps per-region saturating
 * counters; on a confident miss prediction the controller launches the
 * remote fetch in parallel with the probe, trading a little local
 * bandwidth for latency.
 */

#ifndef CARVE_DRAMCACHE_HIT_PREDICTOR_HH
#define CARVE_DRAMCACHE_HIT_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace carve {

/** Table of 3-bit saturating hit/miss counters indexed by region. */
class HitPredictor
{
  public:
    /**
     * @param table_entries number of counters (power of two)
     * @param region_bits log2 of the address-region granularity that
     *        shares a counter
     */
    explicit HitPredictor(unsigned table_entries = 1024,
                          unsigned region_bits = 12);

    /** @return true when the line is predicted to hit in the RDC. */
    bool predictHit(Addr line_addr) const;

    /** Train with the actual outcome of a probe. */
    void update(Addr line_addr, bool was_hit);

    /** Prediction accuracy so far (1.0 when untrained). */
    double accuracy() const;

    std::uint64_t predictions() const
    {
        return correct_.value() + wrong_.value();
    }

    /** Register this predictor's counters into @p g. */
    void
    registerStats(stats::StatGroup &g)
    {
        g.addScalar("correct", &correct_, "correct predictions");
        g.addScalar("wrong", &wrong_, "mispredictions");
        g.addDerived("accuracy", [this] { return accuracy(); },
                     "prediction accuracy (1.0 when untrained)");
    }

  private:
    std::size_t indexOf(Addr line_addr) const;

    unsigned region_bits_;
    std::vector<std::uint8_t> table_;  ///< 0..7, >=4 predicts hit

    stats::Scalar correct_;
    stats::Scalar wrong_;
};

} // namespace carve

#endif // CARVE_DRAMCACHE_HIT_PREDICTOR_HH
