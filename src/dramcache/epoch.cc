#include "dramcache/epoch.hh"

#include "common/logging.hh"

namespace carve {

EpochCounter::EpochCounter(unsigned bits)
{
    if (bits == 0 || bits > 31)
        fatal("EpochCounter: width must be 1..31 bits");
    max_ = (1u << bits) - 1;
}

bool
EpochCounter::increment()
{
    ++increments_;
    if (value_ == max_) {
        value_ = 0;
        ++rollovers_;
        return true;
    }
    ++value_;
    return false;
}

} // namespace carve
