#include "dramcache/alloy_cache.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace carve {

AlloyCache::AlloyCache(std::uint64_t size, std::uint64_t line_size)
    : line_size_(line_size)
{
    if (line_size == 0 || size == 0 || size % line_size != 0)
        fatal("AlloyCache: size must be a nonzero multiple of the "
              "line size");
    sets_ = size / line_size;
}

RdcLookup
AlloyCache::lookup(Addr line_addr, std::uint32_t epoch)
{
    ++probes_;
    const auto it = sets_map_.find(setIndex(line_addr));
    if (it == sets_map_.end() || !it->second.valid ||
        it->second.tag != line_addr) {
        ++misses_;
        return RdcLookup::Miss;
    }
    if (it->second.epoch != epoch) {
        ++stale_;
        return RdcLookup::StaleEpoch;
    }
    ++hits_;
    return RdcLookup::Hit;
}

std::optional<RdcVictim>
AlloyCache::insert(Addr line_addr, std::uint32_t epoch, bool dirty,
                   NodeId home)
{
    SetEntry &entry = sets_map_[setIndex(line_addr)];
    std::optional<RdcVictim> victim;
    if (entry.valid && entry.tag != line_addr) {
        ++conflicts_;
        if (entry.dirty)
            ++dirty_evictions_;
        victim = RdcVictim{entry.tag, entry.home, entry.dirty};
    }
    entry.tag = line_addr;
    entry.epoch = epoch;
    entry.home = home;
    entry.valid = true;
    entry.dirty = dirty;
    return victim;
}

bool
AlloyCache::markDirty(Addr line_addr, std::uint32_t epoch)
{
    const auto it = sets_map_.find(setIndex(line_addr));
    if (it == sets_map_.end() || !it->second.valid ||
        it->second.tag != line_addr || it->second.epoch != epoch) {
        return false;
    }
    it->second.dirty = true;
    return true;
}

bool
AlloyCache::lineDirty(Addr line_addr) const
{
    const auto it = sets_map_.find(setIndex(line_addr));
    return it != sets_map_.end() && it->second.valid &&
        it->second.tag == line_addr && it->second.dirty;
}

void
AlloyCache::cleanAll()
{
    for (auto &kv : sets_map_)
        kv.second.dirty = false;
}

bool
AlloyCache::peek(Addr line_addr, std::uint32_t epoch) const
{
    const auto it = sets_map_.find(setIndex(line_addr));
    return it != sets_map_.end() && it->second.valid &&
        it->second.tag == line_addr && it->second.epoch == epoch;
}

bool
AlloyCache::invalidateLine(Addr line_addr)
{
    const auto it = sets_map_.find(setIndex(line_addr));
    if (it == sets_map_.end() || !it->second.valid ||
        it->second.tag != line_addr) {
        return false;
    }
    it->second.valid = false;
    return true;
}

void
AlloyCache::resetAll()
{
    sets_map_.clear();
}

} // namespace carve
