#include "dramcache/hit_predictor.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace carve {

HitPredictor::HitPredictor(unsigned table_entries, unsigned region_bits)
    : region_bits_(region_bits),
      table_(table_entries, 4)  // weakly predict hit initially
{
    if (!isPowerOf2(table_entries))
        fatal("HitPredictor: table size must be a power of two");
}

std::size_t
HitPredictor::indexOf(Addr line_addr) const
{
    const std::uint64_t region = line_addr >> region_bits_;
    // Mix the region id so nearby regions don't collide trivially.
    const std::uint64_t h = region * 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>(h >> 32) & (table_.size() - 1);
}

bool
HitPredictor::predictHit(Addr line_addr) const
{
    return table_[indexOf(line_addr)] >= 4;
}

void
HitPredictor::update(Addr line_addr, bool was_hit)
{
    const bool predicted_hit = predictHit(line_addr);
    if (predicted_hit == was_hit)
        ++correct_;
    else
        ++wrong_;

    std::uint8_t &ctr = table_[indexOf(line_addr)];
    if (was_hit) {
        if (ctr < 7)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

double
HitPredictor::accuracy() const
{
    const std::uint64_t total = correct_.value() + wrong_.value();
    return total == 0
        ? 1.0
        : static_cast<double>(correct_.value()) /
              static_cast<double>(total);
}

} // namespace carve
