/**
 * @file
 * Alloy-style direct-mapped DRAM cache structure (Qureshi & Loh,
 * MICRO '12), used as the Remote Data Cache carve-out (Figure 7).
 *
 * Tags are stored with data (in spare HBM ECC bits), so one DRAM
 * access returns both; the structure here tracks tag/epoch/valid/dirty
 * state while the owning RdcController charges the DRAM timing.
 *
 * The tag store is sparse (hash map keyed by set) so multi-GB
 * carve-outs cost memory proportional to the *touched* footprint, not
 * the configured capacity.
 */

#ifndef CARVE_DRAMCACHE_ALLOY_CACHE_HH
#define CARVE_DRAMCACHE_ALLOY_CACHE_HH

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/stats.hh"
#include "common/types.hh"

namespace carve {

/** Outcome of an RDC lookup. */
enum class RdcLookup : std::uint8_t {
    Hit,        ///< tag and epoch match
    Miss,       ///< set empty or tag mismatch
    StaleEpoch, ///< tag matches but the line is from an old epoch
};

/** A valid line displaced by an insert. The owning controller must
 * write a dirty victim back to its home or its data is lost. */
struct RdcVictim
{
    Addr tag = 0;      ///< displaced line address
    NodeId home = 0;   ///< the line's home node
    bool dirty = false;
};

/**
 * Direct-mapped tags-with-data cache keyed by line address.
 * Set index = line number mod number of sets.
 */
class AlloyCache
{
  public:
    /**
     * @param size carve-out capacity in bytes
     * @param line_size line size in bytes
     */
    AlloyCache(std::uint64_t size, std::uint64_t line_size);

    /**
     * Probe the set holding @p line_addr.
     * @param epoch current EPCTR value of the accessing kernel
     */
    RdcLookup lookup(Addr line_addr, std::uint32_t epoch);

    /**
     * Install @p line_addr, displacing whatever occupied its set.
     * @param epoch EPCTR value stored with the line
     * @param dirty install in dirty state (write-back mode)
     * @param home the line's home node (kept so a later displacement
     *        knows where a dirty victim must be written back)
     * @return the displaced valid line, when a different one was
     *         resident
     */
    std::optional<RdcVictim> insert(Addr line_addr,
                                    std::uint32_t epoch,
                                    bool dirty = false,
                                    NodeId home = 0);

    /**
     * Mark a resident, epoch-current line dirty (write-back mode).
     * @return true when the line was resident and marked
     */
    bool markDirty(Addr line_addr, std::uint32_t epoch);

    /** True when @p line_addr is resident (any epoch) and dirty. */
    bool lineDirty(Addr line_addr) const;

    /** Clear every resident line's dirty bit (post-flush: the copies
     * are clean again, matching the emptied dirty map). */
    void cleanAll();

    /**
     * Stat-free structural probe (coherence logic and tests).
     * @return true when an epoch-current copy is resident
     */
    bool peek(Addr line_addr, std::uint32_t epoch) const;

    /** Drop @p line_addr if resident (hardware write-invalidate).
     * @return true when a valid line was dropped */
    bool invalidateLine(Addr line_addr);

    /** Physically clear every set (EPCTR rollover). */
    void resetAll();

    /** Set index of @p line_addr (channel interleave uses this). */
    std::uint64_t
    setIndex(Addr line_addr) const
    {
        return (line_addr / line_size_) % sets_;
    }

    /**
     * Local physical address of a set's storage inside the carve-out
     * (relative to the carve-out base); interleaves across channels
     * exactly like ordinary memory.
     */
    Addr
    setStorageOffset(Addr line_addr) const
    {
        return setIndex(line_addr) * line_size_;
    }

    std::uint64_t numSets() const { return sets_; }
    std::uint64_t capacity() const { return sets_ * line_size_; }

    /** Number of sets currently tracked (== touched). */
    std::size_t touchedSets() const { return sets_map_.size(); }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t staleHits() const { return stale_.value(); }
    std::uint64_t conflictEvictions() const { return conflicts_.value(); }
    /** Displaced victims that were dirty (each owes a write-back). */
    std::uint64_t dirtyEvictions() const { return dirty_evictions_.value(); }
    /** Total lookup() probes (== hits + misses + stale hits). */
    std::uint64_t probes() const { return probes_.value(); }

    /** Hit rate counting stale-epoch probes as misses. */
    double
    hitRate() const
    {
        const std::uint64_t total =
            hits_.value() + misses_.value() + stale_.value();
        return total == 0
            ? 0.0
            : static_cast<double>(hits_.value()) /
                  static_cast<double>(total);
    }

    /** Register this cache's counters into @p g. */
    void
    registerStats(stats::StatGroup &g)
    {
        g.addScalar("probes", &probes_, "lookup probes");
        g.addScalar("hits", &hits_, "tag+epoch matches");
        g.addScalar("misses", &misses_, "empty set or tag mismatch");
        g.addScalar("stale_hits", &stale_,
                    "tag matches from an old epoch");
        g.addScalar("conflict_evictions", &conflicts_,
                    "valid lines displaced by inserts");
        g.addScalar("dirty_evictions", &dirty_evictions_,
                    "displaced victims that were dirty");
        g.addDerived("hit_rate", [this] { return hitRate(); },
                     "hits / probes (stale probes count as misses)");
    }

    /** One direct-mapped set's tag state. */
    struct SetEntry
    {
        Addr tag;             ///< full line address
        std::uint32_t epoch;
        NodeId home;          ///< the line's home node
        bool valid;
        bool dirty;
    };

    /** Sparse tag store keyed by set index (audit walks this). */
    const std::unordered_map<std::uint64_t, SetEntry> &
    setsMap() const
    {
        return sets_map_;
    }

  private:
    std::uint64_t line_size_;
    std::uint64_t sets_;
    std::unordered_map<std::uint64_t, SetEntry> sets_map_;

    stats::Scalar probes_;
    stats::Scalar hits_;
    stats::Scalar misses_;
    stats::Scalar stale_;
    stats::Scalar conflicts_;
    stats::Scalar dirty_evictions_;
};

} // namespace carve

#endif // CARVE_DRAMCACHE_ALLOY_CACHE_HH
