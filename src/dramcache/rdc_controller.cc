#include "dramcache/rdc_controller.hh"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace carve {

RdcController::RdcController(EventQueue &eq, const SystemConfig &cfg,
                             NodeId self, MemoryController &local_mem,
                             RdcRemoteOps ops, Arena *arena)
    : eq_(eq), cfg_(cfg), self_(self), local_mem_(local_mem),
      ops_(std::move(ops)),
      alloy_(cfg.rdc.size, cfg.line_size),
      epoch_(cfg.rdc.epoch_bits),
      mshrs_(cfg.rdc.mshr_entries, arena, &eq),
      pending_misses_(arena),
      carve_base_(cfg.dram.capacity - cfg.rdc.size)
{
    carve_assert(cfg.rdc.enabled);
    carve_assert(ops_.fetch_remote && ops_.write_remote &&
                 ops_.flush_remote);
}

Addr
RdcController::storageAddr(Addr line_addr) const
{
    return carve_base_ + alloy_.setStorageOffset(line_addr);
}

void
RdcController::read(NodeId home, Addr line_addr, Callback done)
{
    carve_assert(home != self_);

    const RdcLookup outcome = alloy_.lookup(line_addr, epoch_.current());
    const bool hit = outcome == RdcLookup::Hit;
    const bool use_predictor = cfg_.rdc.hit_predictor;
    const bool predicted_hit =
        use_predictor ? predictor_.predictHit(line_addr) : true;
    if (use_predictor)
        predictor_.update(line_addr, hit);

    if (hit) {
        ++read_hits_;
        // Tags-with-data: the single probe access returns the line.
        // Park the payload; the bound handle keeps the event inline.
        const std::uint32_t pending = pending_misses_.alloc(
            PendingMiss{line_addr, done, home});
        eq_.scheduleAfter(cfg_.rdc.controller_latency,
                          bindEvent<&RdcController::probeHitParked>(
                              this, pending));
        return;
    }

    ++read_misses_;
    if (use_predictor && !predicted_hit) {
        // Predicted miss: overlap the verification probe with the
        // remote fetch. The probe still consumes local bandwidth.
        ++bypasses_;
        local_mem_.access(storageAddr(line_addr), AccessType::Read,
                          Callback());
        handleMiss(home, line_addr, /* serialized */ false, done);
    } else {
        // Serialized probe-then-fetch: the RandAccess pathology. The
        // in-flight state (home, line, done) lives in the pool, so
        // each stage hop is a two-word bound event.
        const std::uint32_t pending = pending_misses_.alloc(
            PendingMiss{line_addr, done, home});
        eq_.scheduleAfter(cfg_.rdc.controller_latency,
                          bindEvent<&RdcController::probeMiss>(
                              this, pending));
    }
}

void
RdcController::probeHit(Addr line_addr, Callback done)
{
    local_mem_.access(storageAddr(line_addr), AccessType::Read, done);
}

void
RdcController::probeHitParked(std::uint32_t pending)
{
    const PendingMiss miss = pending_misses_[pending];
    pending_misses_.free(pending);
    probeHit(miss.line_addr, miss.done);
}

void
RdcController::probeMiss(std::uint32_t pending)
{
    local_mem_.access(storageAddr(pending_misses_[pending].line_addr),
                      AccessType::Read,
                      Completion::bind<&RdcController::probeMissDone>(
                          this, pending));
}

void
RdcController::probeMissDone(std::uint32_t pending)
{
    const PendingMiss miss = pending_misses_[pending];
    pending_misses_.free(pending);
    handleMiss(miss.home, miss.line_addr, /* serialized */ true,
               miss.done);
}

void
RdcController::handleMiss(NodeId home, Addr line_addr, bool serialized,
                          Callback done)
{
    (void)serialized;
    // A full file cannot merge a new line: park on the wake-list and
    // re-enter when a fetch completes. Small rdc.mshr_entries configs
    // hit this legally; it is backpressure, not a simulator bug.
    if (mshrs_.full() && !mshrs_.outstanding(line_addr)) {
        ++mshr_stalls_;
        const std::uint32_t pending = pending_misses_.alloc(
            PendingMiss{line_addr, done, home});
        mshrs_.park(
            Completion::bind<&RdcController::wakeMiss>(this, pending));
        return;
    }

    const MshrOutcome out = mshrs_.allocate(line_addr, done);
    carve_assert(out != MshrOutcome::Full);
    if (out != MshrOutcome::NewEntry)
        return;

    if (audit_)
        audit_->issue(audit::Boundary::RdcFetch);
    ops_.fetch_remote(home, line_addr,
                      Completion::bind<&RdcController::fetchArrived>(
                          this, line_addr, home));
}

void
RdcController::wakeMiss(std::uint32_t pending)
{
    const PendingMiss miss = pending_misses_[pending];
    if (mshrs_.full() && !mshrs_.outstanding(miss.line_addr)) {
        // Earlier waiters took every freed register: keep the record
        // and our wake-list position.
        mshrs_.park(
            Completion::bind<&RdcController::wakeMiss>(this, pending));
        return;
    }
    pending_misses_.free(pending);
    handleMiss(miss.home, miss.line_addr, /* serialized */ false,
               miss.done);
}

void
RdcController::fetchArrived(Addr line_addr, NodeId home)
{
    if (audit_)
        audit_->retire(audit::Boundary::RdcFetch);
    handleVictim(alloy_.insert(line_addr, epoch_.current(),
                               /* dirty */ false, home));
    // Fill write into the carve-out is posted.
    local_mem_.access(storageAddr(line_addr), AccessType::Write,
                      Callback());
    mshrs_.complete(line_addr);
}

void
RdcController::handleVictim(const std::optional<RdcVictim> &victim)
{
    if (!victim || !victim->dirty)
        return;
    // The carve-out held the only up-to-date copy of the displaced
    // line; its home must absorb it before the data is lost.
    ++writeback_victims_;
    dirty_map_.clearDirty(alloy_.setStorageOffset(victim->tag));
    ops_.write_remote(victim->home, victim->tag);
}

void
RdcController::write(NodeId home, Addr line_addr)
{
    carve_assert(home != self_);

    if (cfg_.rdc.write_policy == RdcWritePolicy::WriteThrough) {
        // Update in place when resident so later reads stay hits.
        if (alloy_.lookup(line_addr, epoch_.current()) ==
                RdcLookup::Hit) {
            ++write_updates_;
            local_mem_.access(storageAddr(line_addr),
                              AccessType::Write, Callback());
        }
        ++write_throughs_;
        ops_.write_remote(home, line_addr);
        return;
    }

    // Write-back: allocate on write, defer propagation to the flush.
    if (alloy_.lookup(line_addr, epoch_.current()) != RdcLookup::Hit)
        handleVictim(alloy_.insert(line_addr, epoch_.current(),
                                   /* dirty */ true, home));
    else
        alloy_.markDirty(line_addr, epoch_.current());
    local_mem_.access(storageAddr(line_addr), AccessType::Write,
                      Callback());
    dirty_map_.markDirty(alloy_.setStorageOffset(line_addr), home);
    ++write_updates_;
}

Cycle
RdcController::kernelBoundarySwc()
{
    Cycle stall = 0;
    if (cfg_.rdc.write_policy == RdcWritePolicy::WriteBack) {
        // Dirty regions must reach their homes before the next kernel
        // may consume them. Worst-case serialization over one link.
        const std::uint64_t bytes = dirty_map_.dirtyBytes();
        stall = static_cast<Cycle>(
            static_cast<double>(bytes) / cfg_.link.gpu_gpu_bw);
        // The stall charges the latency; the flush data itself still
        // has to cross the fabric and land in the home memories.
        for (const auto &[flush_home, flush_bytes] :
                 dirty_map_.flushTargets()) {
            flush_bytes_ += flush_bytes;
            flush_regions_ += flush_bytes / dirty_map_.regionSize();
            ops_.flush_remote(flush_home, flush_bytes);
        }
        dirty_map_.clear();
        alloy_.cleanAll();
        if (trace::active(trace_, trace::Category::Rdc)) {
            trace_->instant(trace::Category::Rdc, trace_track_,
                            "swc_flush", eq_.now(), bytes);
        }
    }
    if (epoch_.increment()) {
        // Rollover: the controller physically clears every line.
        alloy_.resetAll();
        if (trace::active(trace_, trace::Category::Rdc)) {
            trace_->instant(trace::Category::Rdc, trace_track_,
                            "epoch_rollover", eq_.now());
        }
    }
    return stall;
}

bool
RdcController::invalidateLine(Addr line_addr)
{
    ++hw_invalidates_;
    if (alloy_.lineDirty(line_addr))
        dirty_map_.clearDirty(alloy_.setStorageOffset(line_addr));
    return alloy_.invalidateLine(line_addr);
}

bool
RdcController::contains(Addr line_addr)
{
    return alloy_.peek(line_addr, epoch_.current());
}

void
RdcController::registerStats(stats::StatGroup &g)
{
    g.addScalar("read_hits", &read_hits_,
                "reads serviced from the carve-out");
    g.addScalar("read_misses", &read_misses_,
                "reads forwarded to the home node");
    g.addScalar("mshr_stalls", &mshr_stalls_,
                "stall episodes on a full RDC MSHR file");
    g.addScalar("write_updates", &write_updates_,
                "writes updating a resident carve-out line");
    g.addScalar("write_throughs", &write_throughs_,
                "writes forwarded home (write-through mode)");
    g.addScalar("bypasses", &bypasses_,
                "misses overlapped with the probe by the predictor");
    g.addScalar("hw_invalidates", &hw_invalidates_,
                "inbound hardware write-invalidates");
    g.addScalar("writeback_victims", &writeback_victims_,
                "dirty victims written back to their homes");
    g.addScalar("flush_bytes", &flush_bytes_,
                "kernel-boundary flush bytes sent over the fabric");
    g.addScalar("flush_regions", &flush_regions_,
                "dirty regions drained at kernel boundaries");

    const auto child = [&](const char *name) {
        stat_groups_.push_back(
            std::make_unique<stats::StatGroup>(name, &g));
        return stat_groups_.back().get();
    };
    alloy_.registerStats(*child("alloy"));
    epoch_.registerStats(*child("epoch"));
    predictor_.registerStats(*child("predictor"));
    dirty_map_.registerStats(*child("dirty_map"));
    stats::StatGroup *mshrsg = child("mshrs");
    mshrs_.registerStats(*mshrsg);
    if (telem_) {
        mshrsg->addHistogram("park_duration", &mshr_park_dur_,
                             "cycles misses waited parked on the "
                             "full MSHR file");
        mshrsg->addHistogram("miss_lifetime", &miss_life_,
                             "cycles from MSHR allocate to fill");
    }
}

void
RdcController::auditDirtyState(const std::string &prefix,
                               std::vector<std::string> &out) const
{
    std::vector<std::string> fails;
    const std::uint64_t line = cfg_.line_size;

    for (const auto &[set, entry] : alloy_.setsMap()) {
        if (!entry.valid || !entry.dirty)
            continue;
        const Addr offset = set * line;
        if (!dirty_map_.isDirtyLine(offset)) {
            fails.push_back(prefix + ": dirty alloy set " +
                            std::to_string(set) +
                            " missing from the dirty map");
        } else if (dirty_map_.dirtySets().at(offset) != entry.home) {
            fails.push_back(prefix + ": dirty alloy set " +
                            std::to_string(set) +
                            " home disagrees with the dirty map");
        }
    }

    for (const auto &[offset, home] : dirty_map_.dirtySets()) {
        (void)home;
        const auto it = alloy_.setsMap().find(offset / line);
        if (it == alloy_.setsMap().end() || !it->second.valid ||
            !it->second.dirty) {
            fails.push_back(prefix + ": dirty map set at offset " +
                            std::to_string(offset) +
                            " has no dirty alloy line");
        }
    }

    // Hash-map walks above are unordered; sort for stable reports.
    std::sort(fails.begin(), fails.end());
    out.insert(out.end(), fails.begin(), fails.end());
}

} // namespace carve
