#include "dramcache/rdc_controller.hh"

#include <utility>

#include "common/logging.hh"

namespace carve {

RdcController::RdcController(EventQueue &eq, const SystemConfig &cfg,
                             NodeId self, MemoryController &local_mem,
                             RdcRemoteOps ops)
    : eq_(eq), cfg_(cfg), self_(self), local_mem_(local_mem),
      ops_(std::move(ops)),
      alloy_(cfg.rdc.size, cfg.line_size),
      epoch_(cfg.rdc.epoch_bits),
      mshrs_(1024),
      carve_base_(cfg.dram.capacity - cfg.rdc.size)
{
    carve_assert(cfg.rdc.enabled);
    carve_assert(ops_.fetch_remote && ops_.write_remote);
}

Addr
RdcController::storageAddr(Addr line_addr) const
{
    return carve_base_ + alloy_.setStorageOffset(line_addr);
}

void
RdcController::read(NodeId home, Addr line_addr, Callback done)
{
    carve_assert(home != self_);

    const RdcLookup outcome = alloy_.lookup(line_addr, epoch_.current());
    const bool hit = outcome == RdcLookup::Hit;
    const bool use_predictor = cfg_.rdc.hit_predictor;
    const bool predicted_hit =
        use_predictor ? predictor_.predictHit(line_addr) : true;
    if (use_predictor)
        predictor_.update(line_addr, hit);

    if (hit) {
        ++read_hits_;
        // Tags-with-data: the single probe access returns the line.
        eq_.scheduleAfter(cfg_.rdc.controller_latency,
                          bindEvent<&RdcController::probeHit>(
                              this, line_addr, std::move(done)));
        return;
    }

    ++read_misses_;
    // The serialized miss continuation below carries (home, line,
    // done) — one word past EventFn's inline storage — so it stays a
    // lambda and takes the boxed path, same as std::function did.
    if (use_predictor && !predicted_hit) {
        // Predicted miss: overlap the verification probe with the
        // remote fetch. The probe still consumes local bandwidth.
        ++bypasses_;
        local_mem_.access(storageAddr(line_addr), AccessType::Read,
                          Callback());
        handleMiss(home, line_addr, /* serialized */ false,
                   std::move(done));
    } else {
        // Serialized probe-then-fetch: the RandAccess pathology.
        eq_.scheduleAfter(cfg_.rdc.controller_latency,
            [this, home, line_addr,
             done = std::move(done)]() mutable {
                local_mem_.access(storageAddr(line_addr),
                                  AccessType::Read,
                    [this, home, line_addr,
                     done = std::move(done)]() mutable {
                        handleMiss(home, line_addr, true,
                                   std::move(done));
                    });
            });
    }
}

void
RdcController::probeHit(Addr line_addr, Callback &done)
{
    local_mem_.access(storageAddr(line_addr), AccessType::Read,
                      std::move(done));
}

void
RdcController::handleMiss(NodeId home, Addr line_addr, bool serialized,
                          Callback done)
{
    (void)serialized;
    const MshrOutcome out = mshrs_.allocate(line_addr, std::move(done));
    if (out == MshrOutcome::Full) {
        // The RDC MSHR file is generously sized; overflowing it means
        // a pathological configuration rather than expected load.
        panic("RdcController: MSHR overflow at node %u",
              static_cast<unsigned>(self_));
    }
    if (out != MshrOutcome::NewEntry)
        return;

    ops_.fetch_remote(home, line_addr, [this, line_addr] {
        alloy_.insert(line_addr, epoch_.current(), false);
        // Fill write into the carve-out is posted.
        local_mem_.access(storageAddr(line_addr), AccessType::Write,
                          Callback());
        mshrs_.complete(line_addr);
    });
}

void
RdcController::write(NodeId home, Addr line_addr)
{
    carve_assert(home != self_);

    if (cfg_.rdc.write_policy == RdcWritePolicy::WriteThrough) {
        // Update in place when resident so later reads stay hits.
        if (alloy_.lookup(line_addr, epoch_.current()) ==
                RdcLookup::Hit) {
            ++write_updates_;
            local_mem_.access(storageAddr(line_addr),
                              AccessType::Write, Callback());
        }
        ++write_throughs_;
        ops_.write_remote(home, line_addr);
        return;
    }

    // Write-back: allocate on write, defer propagation to the flush.
    if (alloy_.lookup(line_addr, epoch_.current()) != RdcLookup::Hit)
        alloy_.insert(line_addr, epoch_.current(), true);
    else
        alloy_.markDirty(line_addr, epoch_.current());
    local_mem_.access(storageAddr(line_addr), AccessType::Write,
                      Callback());
    dirty_map_.markDirty(alloy_.setStorageOffset(line_addr));
    ++write_updates_;
}

Cycle
RdcController::kernelBoundarySwc()
{
    Cycle stall = 0;
    if (cfg_.rdc.write_policy == RdcWritePolicy::WriteBack) {
        // Dirty regions must reach their homes before the next kernel
        // may consume them. Worst-case serialization over one link.
        const std::uint64_t bytes = dirty_map_.dirtyBytes();
        stall = static_cast<Cycle>(
            static_cast<double>(bytes) / cfg_.link.gpu_gpu_bw);
        dirty_map_.clear();
    }
    if (epoch_.increment()) {
        // Rollover: the controller physically clears every line.
        alloy_.resetAll();
    }
    return stall;
}

bool
RdcController::invalidateLine(Addr line_addr)
{
    ++hw_invalidates_;
    return alloy_.invalidateLine(line_addr);
}

bool
RdcController::contains(Addr line_addr)
{
    return alloy_.peek(line_addr, epoch_.current());
}

void
RdcController::registerStats(stats::StatGroup &g)
{
    g.addScalar("read_hits", &read_hits_,
                "reads serviced from the carve-out");
    g.addScalar("read_misses", &read_misses_,
                "reads forwarded to the home node");
    g.addScalar("write_updates", &write_updates_,
                "writes updating a resident carve-out line");
    g.addScalar("write_throughs", &write_throughs_,
                "writes forwarded home (write-through mode)");
    g.addScalar("bypasses", &bypasses_,
                "misses overlapped with the probe by the predictor");
    g.addScalar("hw_invalidates", &hw_invalidates_,
                "inbound hardware write-invalidates");

    const auto child = [&](const char *name) {
        stat_groups_.push_back(
            std::make_unique<stats::StatGroup>(name, &g));
        return stat_groups_.back().get();
    };
    alloy_.registerStats(*child("alloy"));
    epoch_.registerStats(*child("epoch"));
    predictor_.registerStats(*child("predictor"));
    dirty_map_.registerStats(*child("dirty_map"));
    mshrs_.registerStats(*child("mshrs"));
}

} // namespace carve
