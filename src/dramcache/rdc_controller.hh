/**
 * @file
 * CARVE Remote Data Cache controller.
 *
 * Sits between the GPU LLC and the local memory controller. LLC misses
 * to *remote-homed* lines probe the RDC carve-out (one local DRAM
 * access, tags-with-data); hits are serviced at local bandwidth, misses
 * fetch from the home GPU over the NUMA link and install into the
 * carve-out. Local-homed lines never touch the RDC (no benefit,
 * Section IV-A of the paper).
 */

#ifndef CARVE_DRAMCACHE_RDC_CONTROLLER_HH
#define CARVE_DRAMCACHE_RDC_CONTROLLER_HH

#include <functional>
#include <memory>
#include <vector>

#include "cache/mshr.hh"
#include "common/arena.hh"
#include "common/audit.hh"
#include "common/completion.hh"
#include "common/config.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dramcache/alloy_cache.hh"
#include "dramcache/dirty_map.hh"
#include "dramcache/epoch.hh"
#include "dramcache/hit_predictor.hh"
#include "mem/memory_controller.hh"

namespace carve {

/**
 * Callbacks into the rest of the system, wired by MultiGpuSystem.
 * Keeping them as std::function decouples the dramcache module from
 * the GPU/network modules and makes the controller unit-testable.
 */
struct RdcRemoteOps
{
    /** Fetch @p line from @p home; callback fires when the data has
     * arrived at this GPU. */
    std::function<void(NodeId home, Addr line, Completion done)>
        fetch_remote;
    /** Posted write-through of @p line to @p home. */
    std::function<void(NodeId home, Addr line)> write_remote;
    /** Posted bulk flush of @p bytes of dirty data to @p home
     * (kernel-boundary write-back drain). */
    std::function<void(NodeId home, std::uint64_t bytes)> flush_remote;
};

/**
 * Per-GPU CARVE controller: Alloy RDC + EPCTR + optional dirty map and
 * hit predictor, with all DRAM timing charged through the owning GPU's
 * MemoryController (RDC sets share the channels with ordinary memory
 * traffic, exactly like a carve-out of real HBM would).
 */
class RdcController
{
  public:
    /** POD completion delegate (no allocation per hand-off). */
    using Callback = Completion;

    /**
     * @param eq shared event queue
     * @param cfg full system configuration
     * @param self this GPU's node id
     * @param local_mem this GPU's memory controller
     * @param ops remote fetch / write-through plumbing
     * @param arena backing store for the miss pools (optional)
     */
    RdcController(EventQueue &eq, const SystemConfig &cfg, NodeId self,
                  MemoryController &local_mem, RdcRemoteOps ops,
                  Arena *arena = nullptr);

    /**
     * Service an LLC read miss to a remote-homed line.
     * @param home the line's home node
     * @param line_addr global line address
     * @param done fires when the data is available at this GPU's LLC
     */
    void read(NodeId home, Addr line_addr, Callback done);

    /**
     * Service a write to a remote-homed line (posted).
     * Write-through: update-in-place if resident and forward home.
     * Write-back: write-allocate into the carve-out and mark dirty.
     */
    void write(NodeId home, Addr line_addr);

    /**
     * Kernel boundary under *software* coherence: bump the EPCTR
     * (instant invalidation) and, in write-back mode, flush dirty
     * regions to their homes.
     * @return stall cycles the kernel launch must absorb
     */
    Cycle kernelBoundarySwc();

    /** Inbound hardware write-invalidate for @p line_addr.
     * @return true when a valid copy was dropped */
    bool invalidateLine(Addr line_addr);

    /** True when a current-epoch copy of the line is resident. */
    bool contains(Addr line_addr);

    /** True in write-back mode: writes are absorbed locally instead of
     * being forwarded home immediately. */
    bool
    absorbsWrites() const
    {
        return cfg_.rdc.write_policy == RdcWritePolicy::WriteBack;
    }

    const AlloyCache &alloy() const { return alloy_; }
    const EpochCounter &epoch() const { return epoch_; }
    const DirtyMap &dirtyMap() const { return dirty_map_; }
    const HitPredictor &predictor() const { return predictor_; }
    const MshrFile &mshrs() const { return mshrs_; }
    MshrFile &mshrs() { return mshrs_; }

    /** Attach the in-flight token tracker (audit mode only). */
    void setAudit(audit::InflightTracker *tracker) { audit_ = tracker; }

    /** Enable MSHR park-duration / miss-lifetime histograms; call
     * before registerStats() so they join the stat tree. */
    void
    enableTelemetry()
    {
        telem_ = true;
        mshrs_.attachTelemetry(&eq_, &mshr_park_dur_, &miss_life_);
    }

    /** Attach the tracer: miss lifetimes become spans on row @p track,
     * boundary flushes and epoch rollovers become instant markers. */
    void
    setTrace(trace::Session *session, std::uint32_t track)
    {
        trace_ = session;
        trace_track_ = track;
        mshrs_.attachTrace(session, &eq_, trace::Category::Rdc, track,
                           "rdc miss");
    }

    /** Cross-check alloy dirty bits against the dirty map; failures
     * are appended to @p out prefixed with @p prefix. */
    void auditDirtyState(const std::string &prefix,
                         std::vector<std::string> &out) const;

    /** Reads serviced from the carve-out (NUMA traffic avoided). */
    std::uint64_t readHits() const { return read_hits_.value(); }
    /** Reads forwarded to the home node. */
    std::uint64_t readMisses() const { return read_misses_.value(); }
    /** Misses that overlapped the probe with the remote fetch thanks
     * to the hit predictor. */
    std::uint64_t predictedBypasses() const { return bypasses_.value(); }

    /** Register controller counters plus alloy/epoch/predictor/
     * dirty_map/mshrs child groups into @p g (children owned here). */
    void registerStats(stats::StatGroup &g);

  private:
    /** A serialized miss in flight: probe, then fetch from home. */
    struct PendingMiss
    {
        Addr line_addr;
        Completion done;
        NodeId home;
    };

    void handleMiss(NodeId home, Addr line_addr, bool serialized,
                    Callback done);
    /** Wake-list retry of a miss parked on the full MSHR file;
     * re-parks while the file is still full. */
    void wakeMiss(std::uint32_t pending);
    /** Write a displaced dirty victim back to its home (its carve-out
     * copy was the only up-to-date one) and drop its dirty-map set. */
    void handleVictim(const std::optional<RdcVictim> &victim);
    /** Hit-path probe, scheduled as a pre-bound event after the
     * controller pipeline latency. */
    void probeHit(Addr line_addr, Callback done);
    /** Unparks a hit-probe payload staged in the pending pool. */
    void probeHitParked(std::uint32_t pending);
    /** Serialized-miss pipeline stages, keyed by pool handle. */
    void probeMiss(std::uint32_t pending);
    void probeMissDone(std::uint32_t pending);
    /** Remote fetch landed: install into the carve-out and complete. */
    void fetchArrived(Addr line_addr, NodeId home);
    Addr storageAddr(Addr line_addr) const;

    EventQueue &eq_;
    const SystemConfig &cfg_;
    NodeId self_;
    MemoryController &local_mem_;
    RdcRemoteOps ops_;

    AlloyCache alloy_;
    EpochCounter epoch_;
    DirtyMap dirty_map_;
    HitPredictor predictor_;
    MshrFile mshrs_;
    Pool<PendingMiss> pending_misses_;

    /** Carve-out base inside local physical memory (top of DRAM). */
    Addr carve_base_;

    audit::InflightTracker *audit_ = nullptr;
    trace::Session *trace_ = nullptr;
    std::uint32_t trace_track_ = 0;

    bool telem_ = false;
    telemetry::Histogram mshr_park_dur_;  ///< park->wake cycles
    telemetry::Histogram miss_life_;      ///< allocate->fill cycles

    stats::Scalar read_hits_;
    stats::Scalar read_misses_;
    stats::Scalar mshr_stalls_;
    stats::Scalar write_updates_;
    stats::Scalar write_throughs_;
    stats::Scalar bypasses_;
    stats::Scalar hw_invalidates_;
    stats::Scalar writeback_victims_;
    stats::Scalar flush_bytes_;
    stats::Scalar flush_regions_;
    std::vector<std::unique_ptr<stats::StatGroup>> stat_groups_;
};

} // namespace carve

#endif // CARVE_DRAMCACHE_RDC_CONTROLLER_HH
