/**
 * @file
 * Epoch counter (EPCTR) for instant software-coherence invalidation of
 * the Remote Data Cache (Figure 10 of the paper).
 *
 * Each RDC line stores the epoch it was installed in (in spare ECC
 * bits alongside the tag). A lookup only hits when the stored epoch
 * matches the current one, so bumping the counter at a kernel boundary
 * invalidates the whole multi-GB carve-out in zero time. On the rare
 * rollover of the 20-bit counter the controller physically clears all
 * lines.
 */

#ifndef CARVE_DRAMCACHE_EPOCH_HH
#define CARVE_DRAMCACHE_EPOCH_HH

#include <cstdint>

#include "common/stats.hh"

namespace carve {

/** One kernel/stream's epoch counter. */
class EpochCounter
{
  public:
    /** @param bits counter width; wraps to zero after 2^bits - 1 */
    explicit EpochCounter(unsigned bits = 20);

    /** Current epoch value. */
    std::uint32_t current() const { return value_; }

    /**
     * Advance to the next epoch (kernel boundary).
     * @return true when the counter rolled over and the owner must
     *         physically reset all cached lines
     */
    bool increment();

    /** Number of increments performed. */
    std::uint64_t increments() const { return increments_.value(); }
    /** Number of rollovers observed. */
    std::uint64_t rollovers() const { return rollovers_.value(); }

    /** Register this counter's stats into @p g. */
    void
    registerStats(stats::StatGroup &g)
    {
        g.addScalar("increments", &increments_,
                    "epoch bumps at kernel boundaries");
        g.addScalar("rollovers", &rollovers_,
                    "counter wraps forcing a physical clear");
    }

  private:
    std::uint32_t value_ = 0;
    std::uint32_t max_;
    stats::Scalar increments_;
    stats::Scalar rollovers_;
};

} // namespace carve

#endif // CARVE_DRAMCACHE_EPOCH_HH
