#include "dramcache/dirty_map.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "common/units.hh"

namespace carve {

DirtyMap::DirtyMap(std::uint64_t region_size)
    : region_size_(region_size)
{
    if (!isPowerOf2(region_size))
        fatal("DirtyMap: region size must be a power of two");
}

void
DirtyMap::markDirty(Addr rdc_offset, NodeId home)
{
    sets_[rdc_offset] = home;
    ++markings_;
}

void
DirtyMap::clearDirty(Addr rdc_offset)
{
    sets_.erase(rdc_offset);
}

bool
DirtyMap::isDirty(Addr rdc_offset) const
{
    const std::uint64_t region = rdc_offset / region_size_;
    for (const auto &kv : sets_)
        if (kv.first / region_size_ == region)
            return true;
    return false;
}

std::size_t
DirtyMap::dirtyRegions() const
{
    std::unordered_set<std::uint64_t> regions;
    for (const auto &kv : sets_)
        regions.insert(kv.first / region_size_);
    return regions.size();
}

std::vector<std::pair<NodeId, std::uint64_t>>
DirtyMap::flushTargets() const
{
    // Region -> (lowest dirty offset, its home). Ordered map keeps
    // the whole computation independent of hash iteration order.
    std::map<std::uint64_t, std::pair<std::uint64_t, NodeId>> regions;
    for (const auto &kv : sets_) {
        const std::uint64_t region = kv.first / region_size_;
        const auto it = regions.find(region);
        if (it == regions.end() || kv.first < it->second.first)
            regions[region] = {kv.first, kv.second};
    }

    std::map<NodeId, std::uint64_t> per_home;
    for (const auto &kv : regions)
        per_home[kv.second.second] += region_size_;

    return {per_home.begin(), per_home.end()};
}

} // namespace carve
