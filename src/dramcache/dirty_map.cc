#include "dramcache/dirty_map.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace carve {

DirtyMap::DirtyMap(std::uint64_t region_size)
    : region_size_(region_size)
{
    if (!isPowerOf2(region_size))
        fatal("DirtyMap: region size must be a power of two");
}

void
DirtyMap::markDirty(Addr rdc_offset)
{
    regions_.insert(rdc_offset / region_size_);
    ++markings_;
}

bool
DirtyMap::isDirty(Addr rdc_offset) const
{
    return regions_.contains(rdc_offset / region_size_);
}

} // namespace carve
