/**
 * @file
 * Set-associative tag array shared by the L1, L2 and TLB models.
 *
 * Purely structural: lookup / insert / invalidate and recency state.
 * All timing and request routing lives in the owning controller.
 *
 * Layout is structure-of-arrays: one contiguous Addr array of line
 * tags, one byte array of state flags, one recency-stamp array. The
 * hit probe scans only the 8-byte tag lane of a set — invalid slots
 * hold an impossible sentinel tag, so the scan needs no flag load —
 * and callers address lines by a stable 32-bit LineIdx instead of a
 * pointer that the next insert could conceptually invalidate.
 */

#ifndef CARVE_CACHE_TAG_ARRAY_HH
#define CARVE_CACHE_TAG_ARRAY_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/replacement.hh"
#include "common/types.hh"

namespace carve {

/** Outcome of an eviction: metadata of the displaced line. */
struct Evicted
{
    Addr line_addr;
    bool dirty;
    bool remote;
};

/**
 * Tag array with per-way recency stamps. Addresses are full byte
 * addresses; the array derives the line/set internally. Resident
 * lines are addressed by LineIdx (set * ways + way), which stays
 * valid until the line is evicted or invalidated.
 */
class TagArray
{
  public:
    /** Stable handle to a resident line (set * ways + way). */
    using LineIdx = std::uint32_t;
    /** lookup()/peek() miss result. */
    static constexpr LineIdx no_line = 0xffffffffu;

    /**
     * @param size total capacity in bytes
     * @param ways associativity
     * @param line_size line size in bytes
     * @param policy replacement policy
     * @param seed RNG seed for random replacement
     */
    TagArray(std::uint64_t size, unsigned ways, std::uint64_t line_size,
             ReplPolicy policy = ReplPolicy::LRU, std::uint64_t seed = 7);

    /**
     * Probe for the line containing @p addr.
     * @param touch update recency on hit
     * @return index of the resident line, or no_line on miss
     */
    LineIdx lookup(Addr addr, bool touch = true);

    /** Const probe without recency update. */
    LineIdx peek(Addr addr) const;

    /**
     * Insert the line containing @p addr (must not already be
     * resident), evicting a victim when the set is full.
     * @param remote mark the line as remote-homed
     * @return metadata of the evicted valid line, if any
     */
    std::optional<Evicted> insert(Addr addr, bool remote);

    /** Invalidate the line containing @p addr if resident.
     * @return true when a valid line was dropped. */
    bool invalidate(Addr addr);

    /** Invalidate every line. @return number dropped. */
    std::uint64_t invalidateAll();

    /** Invalidate every remote-homed line. @return number dropped. */
    std::uint64_t invalidateRemote();

    /**
     * Visit every valid dirty line (e.g., to flush at a kernel
     * boundary); the visitor receives its LineIdx and may clear the
     * dirty bit through it.
     */
    template <class Visitor>
    void
    forEachDirty(Visitor &&visitor)
    {
        const std::uint64_t n = sets_ * ways_;
        for (std::uint64_t i = 0; i < n; ++i) {
            if ((flags_[i] & (kValid | kDirty)) == (kValid | kDirty))
                visitor(static_cast<LineIdx>(i));
        }
    }

    /** Full line address of a resident line. */
    Addr lineAddr(LineIdx i) const { return tags_[i]; }
    bool isDirty(LineIdx i) const { return flags_[i] & kDirty; }
    bool isRemote(LineIdx i) const { return flags_[i] & kRemote; }

    void
    setDirty(LineIdx i, bool dirty)
    {
        if (dirty)
            flags_[i] |= kDirty;
        else
            flags_[i] &= static_cast<std::uint8_t>(~kDirty);
    }

    std::uint64_t numSets() const { return sets_; }
    unsigned numWays() const { return ways_; }
    std::uint64_t lineSize() const { return line_size_; }

    /** Count of currently valid lines (O(capacity); tests only). */
    std::uint64_t validCount() const;

  private:
    static constexpr std::uint8_t kValid = 1;
    static constexpr std::uint8_t kDirty = 2;
    static constexpr std::uint8_t kRemote = 4;
    /** Tag stored in invalid slots; line addresses are aligned, so
     * all-ones never matches a probe. */
    static constexpr Addr kFreeTag = ~Addr{0};

    std::uint64_t setIndex(Addr addr) const;
    std::size_t wayBase(std::uint64_t set) const { return set * ways_; }
    void dropLine(std::uint64_t i);

    std::uint64_t sets_;
    unsigned ways_;
    std::uint64_t line_size_;
    Replacer replacer_;

    std::vector<Addr> tags_;           ///< kFreeTag == invalid slot
    std::vector<std::uint8_t> flags_;  ///< kValid | kDirty | kRemote
    std::vector<std::uint64_t> last_use_;
    std::uint64_t tick_ = 0;

    // Scratch buffers for the replacer (avoid per-insert allocation).
    std::vector<std::uint8_t> valid_scratch_;
    std::vector<std::uint64_t> use_scratch_;
};

} // namespace carve

#endif // CARVE_CACHE_TAG_ARRAY_HH
