/**
 * @file
 * Set-associative tag array shared by the L1, L2 and TLB models.
 *
 * Purely structural: lookup / insert / invalidate and recency state.
 * All timing and request routing lives in the owning controller.
 */

#ifndef CARVE_CACHE_TAG_ARRAY_HH
#define CARVE_CACHE_TAG_ARRAY_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cache/replacement.hh"
#include "common/types.hh"

namespace carve {

/** One resident line's metadata. */
struct CacheLine
{
    Addr tag = 0;        ///< full line address (not just the tag bits)
    bool valid = false;
    bool dirty = false;
    bool remote = false; ///< line's home is another GPU's memory
};

/** Outcome of an eviction: metadata of the displaced line. */
struct Evicted
{
    Addr line_addr;
    bool dirty;
    bool remote;
};

/**
 * Tag array with per-way recency stamps. Addresses are full byte
 * addresses; the array derives the line/set internally.
 */
class TagArray
{
  public:
    /**
     * @param size total capacity in bytes
     * @param ways associativity
     * @param line_size line size in bytes
     * @param policy replacement policy
     * @param seed RNG seed for random replacement
     */
    TagArray(std::uint64_t size, unsigned ways, std::uint64_t line_size,
             ReplPolicy policy = ReplPolicy::LRU, std::uint64_t seed = 7);

    /**
     * Probe for the line containing @p addr.
     * @param touch update recency on hit
     * @return pointer to resident line metadata, or nullptr on miss.
     *         The pointer is invalidated by the next insert().
     */
    CacheLine *lookup(Addr addr, bool touch = true);

    /** Const probe without recency update. */
    const CacheLine *peek(Addr addr) const;

    /**
     * Insert the line containing @p addr (must not already be
     * resident), evicting a victim when the set is full.
     * @param remote mark the line as remote-homed
     * @return metadata of the evicted valid line, if any
     */
    std::optional<Evicted> insert(Addr addr, bool remote);

    /** Invalidate the line containing @p addr if resident.
     * @return true when a valid line was dropped. */
    bool invalidate(Addr addr);

    /** Invalidate every line. @return number dropped. */
    std::uint64_t invalidateAll();

    /** Invalidate every remote-homed line. @return number dropped. */
    std::uint64_t invalidateRemote();

    /**
     * Visit every valid dirty line (e.g., to flush at a kernel
     * boundary). The visitor may clear the dirty bit via the
     * reference it receives.
     */
    void forEachDirty(const std::function<void(CacheLine &)> &visitor);

    std::uint64_t numSets() const { return sets_; }
    unsigned numWays() const { return ways_; }
    std::uint64_t lineSize() const { return line_size_; }

    /** Count of currently valid lines (O(capacity); tests only). */
    std::uint64_t validCount() const;

  private:
    std::uint64_t setIndex(Addr addr) const;
    std::size_t wayBase(std::uint64_t set) const { return set * ways_; }

    std::uint64_t sets_;
    unsigned ways_;
    std::uint64_t line_size_;
    Replacer replacer_;

    std::vector<CacheLine> lines_;
    std::vector<std::uint64_t> last_use_;
    std::uint64_t tick_ = 0;

    // Scratch buffers for the replacer (avoid per-insert allocation).
    std::vector<std::uint8_t> valid_scratch_;
    std::vector<std::uint64_t> use_scratch_;
};

} // namespace carve

#endif // CARVE_CACHE_TAG_ARRAY_HH
