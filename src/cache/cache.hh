/**
 * @file
 * Cache component: tag array + hit/miss statistics with GPU-style
 * access semantics (write-through, no write-allocate). Timing and
 * routing live in the owning controller (SM or GPU node).
 */

#ifndef CARVE_CACHE_CACHE_HH
#define CARVE_CACHE_CACHE_HH

#include <optional>
#include <string>

#include "cache/tag_array.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace carve {

/**
 * One cache level. GPU semantics:
 *  - reads allocate on fill;
 *  - writes update a resident line (optionally marking it dirty) and
 *    otherwise do not allocate;
 *  - remote-homed lines are tagged so software coherence can drop them
 *    at kernel boundaries without touching local lines.
 */
class Cache
{
  public:
    /**
     * @param name stat-reporting name
     * @param cfg size/ways/latency
     * @param line_size line size in bytes
     */
    Cache(std::string name, const CacheConfig &cfg,
          std::uint64_t line_size);

    /**
     * Probe for a read. Counts a hit or miss.
     * @return true on hit
     */
    bool readProbe(Addr addr);

    /**
     * Probe for a write: updates the resident line if present.
     * @param mark_dirty when true a hit leaves the line dirty
     *        (write-back behaviour); when false the line stays clean
     *        (write-through)
     * @return true on hit
     */
    bool writeProbe(Addr addr, bool mark_dirty);

    /**
     * Install a line after a fill returns.
     * @param remote the line's home is another node
     * @return evicted line metadata, if a valid line was displaced
     */
    std::optional<Evicted> fill(Addr addr, bool remote);

    /** True when the line is resident (no stats, no recency update). */
    bool
    contains(Addr addr) const
    {
        return tags_.peek(addr) != TagArray::no_line;
    }

    /** Drop one line (hardware-coherence invalidation).
     * @return true when a valid line was dropped */
    bool invalidateLine(Addr addr);

    /** Drop everything (software coherence, L1 at kernel boundary). */
    std::uint64_t invalidateAll();

    /** Drop remote-homed lines only (LLC at kernel boundary). */
    std::uint64_t invalidateRemote();

    /** Lookup latency from config. */
    Cycle hitLatency() const { return hit_latency_; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t evictions() const { return evictions_.value(); }
    /** Total read+write probes (== hits + misses). */
    std::uint64_t probes() const { return probes_.value(); }

    /** Hits / (hits + misses); 0 when idle. */
    double
    hitRate() const
    {
        const std::uint64_t total = hits() + misses();
        return total == 0
            ? 0.0
            : static_cast<double>(hits()) / static_cast<double>(total);
    }

    const std::string &name() const { return name_; }
    TagArray &tags() { return tags_; }
    const TagArray &tags() const { return tags_; }

    /** Register this cache's counters into @p g (owned by caller). */
    void
    registerStats(stats::StatGroup &g)
    {
        g.addScalar("probes", &probes_, "read + write probes");
        g.addScalar("hits", &hits_, "read/write probe hits");
        g.addScalar("misses", &misses_, "read probe misses");
        g.addScalar("evictions", &evictions_,
                    "valid lines displaced by fills");
        g.addDerived("hit_rate", [this] { return hitRate(); },
                     "hits / (hits + misses)");
    }

  private:
    std::string name_;
    Cycle hit_latency_;
    TagArray tags_;
    stats::Scalar probes_;
    stats::Scalar hits_;
    stats::Scalar misses_;
    stats::Scalar evictions_;
};

} // namespace carve

#endif // CARVE_CACHE_CACHE_HH
