#include "cache/cache.hh"

#include <utility>

namespace carve {

Cache::Cache(std::string name, const CacheConfig &cfg,
             std::uint64_t line_size)
    : name_(std::move(name)), hit_latency_(cfg.hit_latency),
      tags_(cfg.size, cfg.ways, line_size)
{
}

bool
Cache::readProbe(Addr addr)
{
    ++probes_;
    if (tags_.lookup(addr) != TagArray::no_line) {
        ++hits_;
        return true;
    }
    ++misses_;
    return false;
}

bool
Cache::writeProbe(Addr addr, bool mark_dirty)
{
    ++probes_;
    const TagArray::LineIdx line = tags_.lookup(addr);
    if (line != TagArray::no_line) {
        if (mark_dirty)
            tags_.setDirty(line, true);
        ++hits_;
        return true;
    }
    ++misses_;
    return false;
}

std::optional<Evicted>
Cache::fill(Addr addr, bool remote)
{
    // A racing fill may have already installed the line (MSHR-merged
    // requesters all call fill on completion); treat that as a no-op.
    if (tags_.peek(addr) != TagArray::no_line)
        return std::nullopt;
    auto evicted = tags_.insert(addr, remote);
    if (evicted)
        ++evictions_;
    return evicted;
}

bool
Cache::invalidateLine(Addr addr)
{
    return tags_.invalidate(addr);
}

std::uint64_t
Cache::invalidateAll()
{
    return tags_.invalidateAll();
}

std::uint64_t
Cache::invalidateRemote()
{
    return tags_.invalidateRemote();
}

} // namespace carve
