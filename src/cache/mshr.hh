/**
 * @file
 * Miss Status Holding Registers: merge concurrent misses to the same
 * line and bound the number of distinct outstanding lines.
 *
 * Layout is structure-of-arrays: an open-addressed, linear-probe
 * table of line addresses with parallel head/tail/born arrays, plus
 * a Pool of index-linked waiter records. The table is sized to <=50%
 * load at the configured capacity so probes stay short, and deletion
 * uses backward shifting, so there are no tombstones and no
 * rehashing — outstanding() and allocate() touch one or two cache
 * lines. Waiters fire in registration order, exactly as the previous
 * node-based implementation did.
 *
 * Requests that find the file full do not poll: they park() once on
 * an intrusive FIFO wake-list, and complete() drains the list through
 * the owning domain's event queue (one drain event per completion
 * batch, scheduled at the current tick so it claims a deterministic
 * (tick, seq) slot). Parked requests are retried in arrival order,
 * but a drain only wakes as many waiters as the file has free
 * registers — each retry runs with a register in hand, so wake work
 * per completion is O(1) and nobody is woken just to re-park.
 * Leftover waiters keep their FIFO position, so no waiter starves
 * behind later arrivals.
 */

#ifndef CARVE_CACHE_MSHR_HH
#define CARVE_CACHE_MSHR_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/arena.hh"
#include "common/completion.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "trace/trace.hh"

namespace carve {

/** Result of trying to track a miss in the MSHR file. */
enum class MshrOutcome : std::uint8_t {
    NewEntry,   ///< first miss to this line: caller must fetch
    Merged,     ///< outstanding fetch exists: callback queued behind it
    Full,       ///< no free registers: caller must stall and retry
};

/**
 * MSHR file keyed by line address. Callbacks registered against a line
 * all fire (in registration order) when the fill completes.
 */
class MshrFile
{
  public:
    using Callback = Completion;

    /** @param num_entries max distinct outstanding lines
     *  @param arena optional backing store for waiter records
     *  @param eq owning domain's event queue; required before park()
     *         may be used (wake-ups drain through it) */
    explicit MshrFile(unsigned num_entries, Arena *arena = nullptr,
                      EventQueue *eq = nullptr);

    /**
     * Track a miss to @p line_addr.
     * @param cb fired on fill completion (not on MshrOutcome::Full)
     */
    MshrOutcome allocate(Addr line_addr, Callback cb);

    /**
     * Complete the fill of @p line_addr: fires and removes all queued
     * callbacks. Calling for an untracked line is a simulator bug.
     * @return number of callbacks fired
     */
    std::size_t complete(Addr line_addr);

    /**
     * Park @p retry on the FIFO wake-list after allocate() returned
     * Full. The next complete() schedules one drain event at the
     * current tick on the owning queue; the drain pops retries in
     * park order while a register is free, so each one runs with
     * room to make progress. Requires an event queue (ctor @p eq).
     */
    void park(Completion retry);

    /** Requests currently parked on the wake-list. */
    std::size_t parked() const { return parked_count_; }

    /** True when a fetch for @p line_addr is in flight. */
    bool
    outstanding(Addr line_addr) const
    {
        return findSlot(line_addr) != npos;
    }

    /** Distinct lines currently in flight. */
    std::size_t size() const { return live_; }
    /** True when no further distinct line can be tracked. */
    bool full() const { return live_ >= capacity_; }
    unsigned capacity() const { return capacity_; }

    /** Total misses merged behind an existing entry. */
    std::uint64_t merges() const { return merges_.value(); }
    /** Total allocations rejected because the file was full. */
    std::uint64_t rejections() const { return rejections_.value(); }
    /** Total park() calls (initial parks plus re-parks). */
    std::uint64_t parks() const { return parks_.value(); }

    /** Register this file's counters into @p g (owned by caller). */
    void
    registerStats(stats::StatGroup &g)
    {
        g.addScalar("merges", &merges_,
                    "misses merged behind an in-flight line");
        g.addScalar("rejections", &rejections_,
                    "allocations rejected because the file was full");
        g.addScalar("parks", &parks_,
                    "requests parked on the wake-list (incl. re-parks)");
    }

    /**
     * Attach the tracer: each entry's allocate->fill lifetime becomes
     * a span named @p span_name (a static literal) on row @p track,
     * with the line address as payload. @p eq timestamps both ends.
     */
    void
    attachTrace(trace::Session *session, const EventQueue *eq,
                trace::Category cat, std::uint32_t track,
                const char *span_name)
    {
        trace_ = session;
        trace_eq_ = eq;
        trace_cat_ = cat;
        trace_track_ = track;
        trace_name_ = span_name;
    }

    /**
     * Attach telemetry histograms (SimJob.options.telemetry). Each
     * park() stamps @p clock and the matching wake samples the wait
     * into @p park_duration; each allocate()->complete() lifetime is
     * sampled into @p miss_lifetime. Either pointer may be null to
     * skip that measurement. Samples are simulated cycles from the
     * owning domain's clock, so they are deterministic and identical
     * across engines and thread counts.
     */
    void
    attachTelemetry(const EventQueue *clock,
                    telemetry::Histogram *park_duration,
                    telemetry::Histogram *miss_lifetime)
    {
        telem_clock_ = clock;
        park_dur_ = park_duration;
        miss_life_ = miss_lifetime;
    }

  private:
    /** Sentinel for an empty table slot; line addresses are aligned
     * so all-ones can never be a tracked line. */
    static constexpr Addr kEmpty = ~Addr{0};
    static constexpr std::uint32_t npos = 0xffffffffu;

    struct Waiter
    {
        Completion fn;
        std::uint32_t next;
    };

    std::uint32_t
    homeSlot(Addr a) const
    {
        return static_cast<std::uint32_t>(
                   (a * 0x9e3779b97f4a7c15ULL) >> 32) &
            mask_;
    }

    /** Linear probe; inline because the miss path calls it tens of
     * millions of times per run. */
    std::uint32_t
    findSlot(Addr a) const
    {
        for (std::uint32_t i = homeSlot(a);; i = (i + 1) & mask_) {
            if (slot_addr_[i] == a)
                return i;
            if (slot_addr_[i] == kEmpty)
                return npos;
        }
    }

    std::uint32_t insertSlot(Addr a);
    void eraseSlot(std::uint32_t i);
    /** Fire parked retries in FIFO order while a register is free
     *  (event context). */
    void drainWaiters();
    /** Arm one drain event at the current tick if waiters are parked
     * and none is pending. */
    void maybeScheduleDrain();

    unsigned capacity_;
    std::uint32_t mask_;
    std::size_t live_ = 0;
    std::vector<Addr> slot_addr_;        ///< kEmpty == free
    std::vector<std::uint32_t> head_;    ///< first waiter, or npos
    std::vector<std::uint32_t> tail_;    ///< last waiter, or npos
    std::vector<Cycle> born_;            ///< allocate stamp (tracing)
    Pool<Waiter> waiters_;

    EventQueue *eq_;                     ///< drains wake-ups; may be null
    std::uint32_t wake_head_ = npos;     ///< first parked retry
    std::uint32_t wake_tail_ = npos;     ///< last parked retry
    std::size_t parked_count_ = 0;
    bool drain_scheduled_ = false;

    stats::Scalar merges_;
    stats::Scalar rejections_;
    stats::Scalar parks_;

    const EventQueue *telem_clock_ = nullptr;
    telemetry::Histogram *park_dur_ = nullptr;   ///< park->wake cycles
    telemetry::Histogram *miss_life_ = nullptr;  ///< allocate->fill
    /** Park stamps, FIFO-parallel to the wake-list (telemetry only). */
    std::deque<Cycle> park_stamps_;

    trace::Session *trace_ = nullptr;
    const EventQueue *trace_eq_ = nullptr;
    trace::Category trace_cat_ = trace::Category::Cache;
    std::uint32_t trace_track_ = 0;
    const char *trace_name_ = "miss";
};

} // namespace carve

#endif // CARVE_CACHE_MSHR_HH
