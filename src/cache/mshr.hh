/**
 * @file
 * Miss Status Holding Registers: merge concurrent misses to the same
 * line and bound the number of distinct outstanding lines.
 */

#ifndef CARVE_CACHE_MSHR_HH
#define CARVE_CACHE_MSHR_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "trace/trace.hh"

namespace carve {

/** Result of trying to track a miss in the MSHR file. */
enum class MshrOutcome : std::uint8_t {
    NewEntry,   ///< first miss to this line: caller must fetch
    Merged,     ///< outstanding fetch exists: callback queued behind it
    Full,       ///< no free registers: caller must stall and retry
};

/**
 * MSHR file keyed by line address. Callbacks registered against a line
 * all fire (in registration order) when the fill completes.
 */
class MshrFile
{
  public:
    using Callback = std::function<void()>;

    /** @param num_entries max distinct outstanding lines */
    explicit MshrFile(unsigned num_entries);

    /**
     * Track a miss to @p line_addr.
     * @param cb fired on fill completion (not on MshrOutcome::Full)
     */
    MshrOutcome allocate(Addr line_addr, Callback cb);

    /**
     * Complete the fill of @p line_addr: fires and removes all queued
     * callbacks. Calling for an untracked line is a simulator bug.
     * @return number of callbacks fired
     */
    std::size_t complete(Addr line_addr);

    /** True when a fetch for @p line_addr is in flight. */
    bool
    outstanding(Addr line_addr) const
    {
        return entries_.contains(line_addr);
    }

    /** Distinct lines currently in flight. */
    std::size_t size() const { return entries_.size(); }
    /** True when no further distinct line can be tracked. */
    bool full() const { return entries_.size() >= capacity_; }
    unsigned capacity() const { return capacity_; }

    /** Total misses merged behind an existing entry. */
    std::uint64_t merges() const { return merges_.value(); }
    /** Total allocations rejected because the file was full. */
    std::uint64_t rejections() const { return rejections_.value(); }

    /** Register this file's counters into @p g (owned by caller). */
    void
    registerStats(stats::StatGroup &g)
    {
        g.addScalar("merges", &merges_,
                    "misses merged behind an in-flight line");
        g.addScalar("rejections", &rejections_,
                    "allocations rejected because the file was full");
    }

    /**
     * Attach the tracer: each entry's allocate->fill lifetime becomes
     * a span named @p span_name (a static literal) on row @p track,
     * with the line address as payload. @p eq timestamps both ends.
     */
    void
    attachTrace(trace::Session *session, const EventQueue *eq,
                trace::Category cat, std::uint32_t track,
                const char *span_name)
    {
        trace_ = session;
        trace_eq_ = eq;
        trace_cat_ = cat;
        trace_track_ = track;
        trace_name_ = span_name;
    }

  private:
    /** Waiters plus the miss-lifetime birth stamp for the tracer. */
    struct Entry
    {
        std::vector<Callback> waiters;
        Cycle born = 0;
    };

    unsigned capacity_;
    std::unordered_map<Addr, Entry> entries_;
    stats::Scalar merges_;
    stats::Scalar rejections_;

    trace::Session *trace_ = nullptr;
    const EventQueue *trace_eq_ = nullptr;
    trace::Category trace_cat_ = trace::Category::Cache;
    std::uint32_t trace_track_ = 0;
    const char *trace_name_ = "miss";
};

} // namespace carve

#endif // CARVE_CACHE_MSHR_HH
