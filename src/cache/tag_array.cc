#include "cache/tag_array.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace carve {

TagArray::TagArray(std::uint64_t size, unsigned ways,
                   std::uint64_t line_size, ReplPolicy policy,
                   std::uint64_t seed)
    : ways_(ways), line_size_(line_size), replacer_(policy, seed)
{
    if (ways == 0 || line_size == 0 || size == 0)
        fatal("TagArray: degenerate geometry");
    if (size % (static_cast<std::uint64_t>(ways) * line_size) != 0)
        fatal("TagArray: size not divisible by ways*line_size");
    sets_ = size / (static_cast<std::uint64_t>(ways) * line_size);
    tags_.assign(sets_ * ways_, kFreeTag);
    flags_.assign(sets_ * ways_, 0);
    last_use_.assign(sets_ * ways_, 0);
    valid_scratch_.resize(ways_);
    use_scratch_.resize(ways_);
}

std::uint64_t
TagArray::setIndex(Addr addr) const
{
    return (addr / line_size_) % sets_;
}

TagArray::LineIdx
TagArray::lookup(Addr addr, bool touch)
{
    const Addr line_addr = alignDown(addr, line_size_);
    const std::size_t base = wayBase(setIndex(addr));
    for (unsigned w = 0; w < ways_; ++w) {
        if (tags_[base + w] == line_addr) {
            if (touch)
                last_use_[base + w] = ++tick_;
            return static_cast<LineIdx>(base + w);
        }
    }
    return no_line;
}

TagArray::LineIdx
TagArray::peek(Addr addr) const
{
    const Addr line_addr = alignDown(addr, line_size_);
    const std::size_t base = wayBase(setIndex(addr));
    for (unsigned w = 0; w < ways_; ++w) {
        if (tags_[base + w] == line_addr)
            return static_cast<LineIdx>(base + w);
    }
    return no_line;
}

std::optional<Evicted>
TagArray::insert(Addr addr, bool remote)
{
    const Addr line_addr = alignDown(addr, line_size_);
    carve_assert(peek(addr) == no_line);

    const std::size_t base = wayBase(setIndex(addr));
    for (unsigned w = 0; w < ways_; ++w) {
        valid_scratch_[w] = flags_[base + w] & kValid;
        use_scratch_[w] = last_use_[base + w];
    }
    const unsigned way = replacer_.victim(valid_scratch_, use_scratch_);

    const std::size_t i = base + way;
    std::optional<Evicted> evicted;
    if (flags_[i] & kValid)
        evicted = Evicted{tags_[i], (flags_[i] & kDirty) != 0,
                          (flags_[i] & kRemote) != 0};

    tags_[i] = line_addr;
    flags_[i] = static_cast<std::uint8_t>(
        kValid | (remote ? kRemote : 0));
    last_use_[i] = ++tick_;
    return evicted;
}

void
TagArray::dropLine(std::uint64_t i)
{
    tags_[i] = kFreeTag;
    flags_[i] = 0;
}

bool
TagArray::invalidate(Addr addr)
{
    const LineIdx i = peek(addr);
    if (i == no_line)
        return false;
    dropLine(i);
    return true;
}

std::uint64_t
TagArray::invalidateAll()
{
    std::uint64_t dropped = 0;
    const std::uint64_t n = sets_ * ways_;
    for (std::uint64_t i = 0; i < n; ++i) {
        if (flags_[i] & kValid) {
            dropLine(i);
            ++dropped;
        }
    }
    return dropped;
}

std::uint64_t
TagArray::invalidateRemote()
{
    std::uint64_t dropped = 0;
    const std::uint64_t n = sets_ * ways_;
    for (std::uint64_t i = 0; i < n; ++i) {
        if ((flags_[i] & (kValid | kRemote)) == (kValid | kRemote)) {
            dropLine(i);
            ++dropped;
        }
    }
    return dropped;
}

std::uint64_t
TagArray::validCount() const
{
    std::uint64_t n = 0;
    for (const std::uint8_t f : flags_) {
        if (f & kValid)
            ++n;
    }
    return n;
}

} // namespace carve
