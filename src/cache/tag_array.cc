#include "cache/tag_array.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace carve {

TagArray::TagArray(std::uint64_t size, unsigned ways,
                   std::uint64_t line_size, ReplPolicy policy,
                   std::uint64_t seed)
    : ways_(ways), line_size_(line_size), replacer_(policy, seed)
{
    if (ways == 0 || line_size == 0 || size == 0)
        fatal("TagArray: degenerate geometry");
    if (size % (static_cast<std::uint64_t>(ways) * line_size) != 0)
        fatal("TagArray: size not divisible by ways*line_size");
    sets_ = size / (static_cast<std::uint64_t>(ways) * line_size);
    lines_.resize(sets_ * ways_);
    last_use_.resize(sets_ * ways_, 0);
    valid_scratch_.resize(ways_);
    use_scratch_.resize(ways_);
}

std::uint64_t
TagArray::setIndex(Addr addr) const
{
    return (addr / line_size_) % sets_;
}

CacheLine *
TagArray::lookup(Addr addr, bool touch)
{
    const Addr line_addr = alignDown(addr, line_size_);
    const std::size_t base = wayBase(setIndex(addr));
    for (unsigned w = 0; w < ways_; ++w) {
        CacheLine &line = lines_[base + w];
        if (line.valid && line.tag == line_addr) {
            if (touch)
                last_use_[base + w] = ++tick_;
            return &line;
        }
    }
    return nullptr;
}

const CacheLine *
TagArray::peek(Addr addr) const
{
    const Addr line_addr = alignDown(addr, line_size_);
    const std::size_t base = wayBase(setIndex(addr));
    for (unsigned w = 0; w < ways_; ++w) {
        const CacheLine &line = lines_[base + w];
        if (line.valid && line.tag == line_addr)
            return &line;
    }
    return nullptr;
}

std::optional<Evicted>
TagArray::insert(Addr addr, bool remote)
{
    const Addr line_addr = alignDown(addr, line_size_);
    carve_assert(peek(addr) == nullptr);

    const std::size_t base = wayBase(setIndex(addr));
    for (unsigned w = 0; w < ways_; ++w) {
        valid_scratch_[w] = lines_[base + w].valid ? 1 : 0;
        use_scratch_[w] = last_use_[base + w];
    }
    const unsigned way = replacer_.victim(valid_scratch_, use_scratch_);

    CacheLine &line = lines_[base + way];
    std::optional<Evicted> evicted;
    if (line.valid)
        evicted = Evicted{line.tag, line.dirty, line.remote};

    line.tag = line_addr;
    line.valid = true;
    line.dirty = false;
    line.remote = remote;
    last_use_[base + way] = ++tick_;
    return evicted;
}

bool
TagArray::invalidate(Addr addr)
{
    if (CacheLine *line = lookup(addr, false)) {
        line->valid = false;
        return true;
    }
    return false;
}

std::uint64_t
TagArray::invalidateAll()
{
    std::uint64_t dropped = 0;
    for (auto &line : lines_) {
        if (line.valid) {
            line.valid = false;
            ++dropped;
        }
    }
    return dropped;
}

std::uint64_t
TagArray::invalidateRemote()
{
    std::uint64_t dropped = 0;
    for (auto &line : lines_) {
        if (line.valid && line.remote) {
            line.valid = false;
            ++dropped;
        }
    }
    return dropped;
}

void
TagArray::forEachDirty(const std::function<void(CacheLine &)> &visitor)
{
    for (auto &line : lines_) {
        if (line.valid && line.dirty)
            visitor(line);
    }
}

std::uint64_t
TagArray::validCount() const
{
    std::uint64_t n = 0;
    for (const auto &line : lines_) {
        if (line.valid)
            ++n;
    }
    return n;
}

} // namespace carve
