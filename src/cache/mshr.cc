#include "cache/mshr.hh"

#include <bit>

#include "common/logging.hh"

namespace carve {

MshrFile::MshrFile(unsigned num_entries, Arena *arena)
    : capacity_(num_entries), waiters_(arena)
{
    if (num_entries == 0)
        fatal("MshrFile: need at least one entry");
    const std::uint32_t table = std::bit_ceil(
        std::max<std::uint32_t>(16, num_entries * 2));
    mask_ = table - 1;
    slot_addr_.assign(table, kEmpty);
    head_.assign(table, npos);
    tail_.assign(table, npos);
    born_.assign(table, 0);
}

std::uint32_t
MshrFile::insertSlot(Addr a)
{
    std::uint32_t i = homeSlot(a);
    while (slot_addr_[i] != kEmpty)
        i = (i + 1) & mask_;
    slot_addr_[i] = a;
    return i;
}

void
MshrFile::eraseSlot(std::uint32_t i)
{
    // Backward-shift deletion: walk the probe chain after the hole
    // and pull back any entry whose home slot does not lie strictly
    // between the hole and its current position.
    std::uint32_t j = i;
    for (;;) {
        slot_addr_[i] = kEmpty;
        for (;;) {
            j = (j + 1) & mask_;
            if (slot_addr_[j] == kEmpty)
                return;
            const std::uint32_t k = homeSlot(slot_addr_[j]);
            const bool stays = i <= j ? (i < k && k <= j)
                                      : (i < k || k <= j);
            if (!stays)
                break;
        }
        slot_addr_[i] = slot_addr_[j];
        head_[i] = head_[j];
        tail_[i] = tail_[j];
        born_[i] = born_[j];
        i = j;
    }
}

MshrOutcome
MshrFile::allocate(Addr line_addr, Callback cb)
{
    const std::uint32_t found = findSlot(line_addr);
    if (found != npos) {
        const std::uint32_t w = waiters_.alloc({cb, npos});
        waiters_[tail_[found]].next = w;
        tail_[found] = w;
        ++merges_;
        return MshrOutcome::Merged;
    }
    if (live_ >= capacity_) {
        ++rejections_;
        return MshrOutcome::Full;
    }
    const std::uint32_t i = insertSlot(line_addr);
    const std::uint32_t w = waiters_.alloc({cb, npos});
    head_[i] = tail_[i] = w;
    if (trace::active(trace_, trace_cat_))
        born_[i] = trace_eq_->now();
    ++live_;
    return MshrOutcome::NewEntry;
}

std::size_t
MshrFile::complete(Addr line_addr)
{
    const std::uint32_t i = findSlot(line_addr);
    if (i == npos)
        panic("MshrFile: completing untracked line %llx",
              static_cast<unsigned long long>(line_addr));

    if (trace::active(trace_, trace_cat_)) {
        trace_->span(trace_cat_, trace_track_, trace_name_, born_[i],
                     trace_eq_->now(), line_addr);
    }

    // Detach the entry before firing: callbacks may allocate new
    // entries (even for this same line).
    std::uint32_t w = head_[i];
    head_[i] = tail_[i] = npos;
    eraseSlot(i);
    --live_;

    std::size_t fired = 0;
    while (w != npos) {
        const Waiter wt = waiters_[w];
        waiters_.free(w);
        w = wt.next;
        ++fired;
        if (wt.fn)
            wt.fn();
    }
    return fired;
}

} // namespace carve
