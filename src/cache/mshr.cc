#include "cache/mshr.hh"

#include <bit>

#include "common/logging.hh"

namespace carve {

MshrFile::MshrFile(unsigned num_entries, Arena *arena, EventQueue *eq)
    : capacity_(num_entries), waiters_(arena), eq_(eq)
{
    if (num_entries == 0)
        fatal("MshrFile: need at least one entry");
    const std::uint32_t table = std::bit_ceil(
        std::max<std::uint32_t>(16, num_entries * 2));
    mask_ = table - 1;
    slot_addr_.assign(table, kEmpty);
    head_.assign(table, npos);
    tail_.assign(table, npos);
    born_.assign(table, 0);
}

std::uint32_t
MshrFile::insertSlot(Addr a)
{
    std::uint32_t i = homeSlot(a);
    while (slot_addr_[i] != kEmpty)
        i = (i + 1) & mask_;
    slot_addr_[i] = a;
    return i;
}

void
MshrFile::eraseSlot(std::uint32_t i)
{
    // Backward-shift deletion: walk the probe chain after the hole
    // and pull back any entry whose home slot does not lie strictly
    // between the hole and its current position.
    std::uint32_t j = i;
    for (;;) {
        slot_addr_[i] = kEmpty;
        for (;;) {
            j = (j + 1) & mask_;
            if (slot_addr_[j] == kEmpty)
                return;
            const std::uint32_t k = homeSlot(slot_addr_[j]);
            const bool stays = i <= j ? (i < k && k <= j)
                                      : (i < k || k <= j);
            if (!stays)
                break;
        }
        slot_addr_[i] = slot_addr_[j];
        head_[i] = head_[j];
        tail_[i] = tail_[j];
        born_[i] = born_[j];
        i = j;
    }
}

MshrOutcome
MshrFile::allocate(Addr line_addr, Callback cb)
{
    const std::uint32_t found = findSlot(line_addr);
    if (found != npos) {
        const std::uint32_t w = waiters_.alloc({cb, npos});
        waiters_[tail_[found]].next = w;
        tail_[found] = w;
        ++merges_;
        return MshrOutcome::Merged;
    }
    if (live_ >= capacity_) {
        ++rejections_;
        return MshrOutcome::Full;
    }
    const std::uint32_t i = insertSlot(line_addr);
    const std::uint32_t w = waiters_.alloc({cb, npos});
    head_[i] = tail_[i] = w;
    if (miss_life_)
        born_[i] = telem_clock_->now();
    else if (trace::active(trace_, trace_cat_))
        born_[i] = trace_eq_->now();
    ++live_;
    return MshrOutcome::NewEntry;
}

std::size_t
MshrFile::complete(Addr line_addr)
{
    const std::uint32_t i = findSlot(line_addr);
    if (i == npos)
        panic("MshrFile: completing untracked line %llx",
              static_cast<unsigned long long>(line_addr));

    if (trace::active(trace_, trace_cat_)) {
        trace_->span(trace_cat_, trace_track_, trace_name_, born_[i],
                     trace_eq_->now(), line_addr);
    }
    if (miss_life_)
        miss_life_->sample(telem_clock_->now() - born_[i]);

    // Detach the entry before firing: callbacks may allocate new
    // entries (even for this same line).
    std::uint32_t w = head_[i];
    head_[i] = tail_[i] = npos;
    eraseSlot(i);
    --live_;

    std::size_t fired = 0;
    while (w != npos) {
        const Waiter wt = waiters_[w];
        waiters_.free(w);
        w = wt.next;
        ++fired;
        if (wt.fn)
            wt.fn();
    }

    // A register is free now: wake parked requests. The drain runs as
    // its own event at the current tick so it claims a (tick, seq)
    // slot on the owning domain's queue — wake order is deterministic
    // and identical under the serial and parallel engines.
    maybeScheduleDrain();
    return fired;
}

void
MshrFile::park(Completion retry)
{
    if (!eq_)
        fatal("MshrFile: park() needs an event queue "
              "(none was passed at construction)");
    ++parks_;
    if (park_dur_)
        park_stamps_.push_back(telem_clock_->now());
    const std::uint32_t w = waiters_.alloc({retry, npos});
    if (wake_tail_ == npos) {
        wake_head_ = wake_tail_ = w;
    } else {
        waiters_[wake_tail_].next = w;
        wake_tail_ = w;
    }
    ++parked_count_;
}

void
MshrFile::maybeScheduleDrain()
{
    if (wake_head_ == npos || drain_scheduled_)
        return;
    drain_scheduled_ = true;
    eq_->schedule(eq_->now(),
                  bindEvent<&MshrFile::drainWaiters>(this));
}

void
MshrFile::drainWaiters()
{
    drain_scheduled_ = false;
    // Wake only as many waiters as the file can absorb: each one runs
    // with a free register in hand, so the head waiter always makes
    // progress (it merges or takes the register) and nobody behind it
    // is woken just to re-park — waking the whole list per fill is
    // O(parked) work per completion and measurably tanks saturated
    // runs. Leftover waiters keep their FIFO order; the next
    // complete() schedules another drain.
    while (wake_head_ != npos && live_ < capacity_) {
        const std::uint32_t w = wake_head_;
        const Waiter wt = waiters_[w];
        waiters_.free(w);
        wake_head_ = wt.next;
        if (wake_head_ == npos)
            wake_tail_ = npos;
        --parked_count_;
        if (park_dur_) {
            park_dur_->sample(telem_clock_->now() -
                              park_stamps_.front());
            park_stamps_.pop_front();
        }
        wt.fn();
    }
}

} // namespace carve
