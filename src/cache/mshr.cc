#include "cache/mshr.hh"

#include <utility>

#include "common/logging.hh"

namespace carve {

MshrFile::MshrFile(unsigned num_entries)
    : capacity_(num_entries)
{
    if (num_entries == 0)
        fatal("MshrFile: need at least one entry");
}

MshrOutcome
MshrFile::allocate(Addr line_addr, Callback cb)
{
    auto it = entries_.find(line_addr);
    if (it != entries_.end()) {
        it->second.waiters.push_back(std::move(cb));
        ++merges_;
        return MshrOutcome::Merged;
    }
    if (entries_.size() >= capacity_) {
        ++rejections_;
        return MshrOutcome::Full;
    }
    Entry &e = entries_[line_addr];
    e.waiters.push_back(std::move(cb));
    if (trace::active(trace_, trace_cat_))
        e.born = trace_eq_->now();
    return MshrOutcome::NewEntry;
}

std::size_t
MshrFile::complete(Addr line_addr)
{
    auto it = entries_.find(line_addr);
    if (it == entries_.end())
        panic("MshrFile: completing untracked line %llx",
              static_cast<unsigned long long>(line_addr));

    if (trace::active(trace_, trace_cat_)) {
        trace_->span(trace_cat_, trace_track_, trace_name_,
                     it->second.born, trace_eq_->now(), line_addr);
    }

    // Move out before erasing: callbacks may allocate new entries.
    std::vector<Callback> waiters = std::move(it->second.waiters);
    entries_.erase(it);
    for (auto &cb : waiters) {
        if (cb)
            cb();
    }
    return waiters.size();
}

} // namespace carve
