#include "cache/mshr.hh"

#include <utility>

#include "common/logging.hh"

namespace carve {

MshrFile::MshrFile(unsigned num_entries)
    : capacity_(num_entries)
{
    if (num_entries == 0)
        fatal("MshrFile: need at least one entry");
}

MshrOutcome
MshrFile::allocate(Addr line_addr, Callback cb)
{
    auto it = entries_.find(line_addr);
    if (it != entries_.end()) {
        it->second.push_back(std::move(cb));
        ++merges_;
        return MshrOutcome::Merged;
    }
    if (entries_.size() >= capacity_) {
        ++rejections_;
        return MshrOutcome::Full;
    }
    entries_[line_addr].push_back(std::move(cb));
    return MshrOutcome::NewEntry;
}

std::size_t
MshrFile::complete(Addr line_addr)
{
    auto it = entries_.find(line_addr);
    if (it == entries_.end())
        panic("MshrFile: completing untracked line %llx",
              static_cast<unsigned long long>(line_addr));

    // Move out before erasing: callbacks may allocate new entries.
    std::vector<Callback> waiters = std::move(it->second);
    entries_.erase(it);
    for (auto &cb : waiters) {
        if (cb)
            cb();
    }
    return waiters.size();
}

} // namespace carve
