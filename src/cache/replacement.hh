/**
 * @file
 * Replacement policies for set-associative tag arrays.
 */

#ifndef CARVE_CACHE_REPLACEMENT_HH
#define CARVE_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace carve {

/** Supported replacement policies. */
enum class ReplPolicy : std::uint8_t {
    LRU,
    Random,
};

/**
 * Picks a victim way given per-way recency stamps. Invalid ways are
 * always preferred; ties fall back to the configured policy.
 */
class Replacer
{
  public:
    /**
     * @param policy which policy to apply among valid ways
     * @param seed RNG seed for ReplPolicy::Random
     */
    explicit Replacer(ReplPolicy policy = ReplPolicy::LRU,
                      std::uint64_t seed = 7);

    /**
     * Choose a victim.
     * @param valid per-way validity
     * @param last_use per-way recency stamps (larger == more recent)
     * @return victim way index
     */
    unsigned victim(const std::vector<std::uint8_t> &valid,
                    const std::vector<std::uint64_t> &last_use);

    ReplPolicy policy() const { return policy_; }

  private:
    ReplPolicy policy_;
    Rng rng_;
};

} // namespace carve

#endif // CARVE_CACHE_REPLACEMENT_HH
