#include "cache/replacement.hh"

#include "common/logging.hh"

namespace carve {

Replacer::Replacer(ReplPolicy policy, std::uint64_t seed)
    : policy_(policy), rng_(seed)
{
}

unsigned
Replacer::victim(const std::vector<std::uint8_t> &valid,
                 const std::vector<std::uint64_t> &last_use)
{
    carve_assert(!valid.empty() && valid.size() == last_use.size());

    for (unsigned w = 0; w < valid.size(); ++w) {
        if (!valid[w])
            return w;
    }

    if (policy_ == ReplPolicy::Random)
        return static_cast<unsigned>(rng_.below(valid.size()));

    unsigned victim_way = 0;
    for (unsigned w = 1; w < valid.size(); ++w) {
        if (last_use[w] < last_use[victim_way])
            victim_way = w;
    }
    return victim_way;
}

} // namespace carve
