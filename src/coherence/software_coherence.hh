/**
 * @file
 * Software (kernel-boundary) coherence: the conventional GPU scheme
 * and its cost model (Table IV of the paper).
 *
 * Conventional GPUs keep caches coherent by (a) invalidating the
 * write-through L1s and the LLC's remote lines at every kernel
 * boundary and (b) flushing dirty data. Extending the same scheme to
 * a multi-GB RDC naively costs milliseconds per boundary; the paper's
 * epoch counter (invalidate) and write-through policy (flush) reduce
 * both to zero. This module provides the analytic worst-case costs
 * for all four cells of Table IV plus the epoch/write-through variants.
 */

#ifndef CARVE_COHERENCE_SOFTWARE_COHERENCE_HH
#define CARVE_COHERENCE_SOFTWARE_COHERENCE_HH

#include <cstdint>

#include "common/config.hh"
#include "common/types.hh"

namespace carve {

/** Worst-case kernel-boundary delays under software coherence. */
struct SwCoherenceCost
{
    Cycle l2_invalidate;    ///< explicit LLC invalidate
    Cycle l2_flush;         ///< LLC dirty writeback over the link
    Cycle rdc_invalidate;   ///< explicit RDC invalidate (read+write all)
    Cycle rdc_flush;        ///< RDC dirty writeback over the link
    Cycle rdc_invalidate_epoch;  ///< with EPCTR: instant
    Cycle rdc_flush_writethrough;///< with write-through RDC: instant
};

/**
 * Compute the Table IV cost model from a system configuration.
 *
 * - LLC invalidate: sets/banks cleared one per cycle per bank.
 * - LLC flush: worst case the whole LLC is dirty and drains over the
 *   inter-GPU link.
 * - RDC invalidate: every line's metadata must be read and written in
 *   local DRAM (2 bytes transferred per line each way is optimistic;
 *   we charge full line reads, matching the paper's ~2 ms).
 * - RDC flush: worst case the whole carve-out drains over the link.
 */
SwCoherenceCost computeSwCoherenceCost(const SystemConfig &cfg);

} // namespace carve

#endif // CARVE_COHERENCE_SOFTWARE_COHERENCE_HH
