#include "coherence/gpu_vi.hh"

#include <utility>

#include "common/logging.hh"

namespace carve {

GpuVi::GpuVi(const SystemConfig &cfg, unsigned num_gpus,
             CoherenceOps ops, bool use_imst)
    : cfg_(cfg), num_gpus_(num_gpus), ops_(std::move(ops)),
      use_imst_(use_imst)
{
    carve_assert(ops_.invalidate_at && ops_.send_ctrl);
    imsts_.reserve(num_gpus);
    for (unsigned g = 0; g < num_gpus; ++g)
        imsts_.emplace_back(g, 0.01, cfg.seed + 101);
}

void
GpuVi::onRead(NodeId home, NodeId requester, Addr line_addr)
{
    carve_assert(home < num_gpus_);
    bool unused = false;
    imsts_[home].onAccess(line_addr, requester, AccessType::Read,
                          unused);
}

unsigned
GpuVi::onWrite(NodeId home, NodeId requester, Addr line_addr)
{
    carve_assert(home < num_gpus_);
    bool needs_invalidate = false;
    imsts_[home].onAccess(line_addr, requester, AccessType::Write,
                          needs_invalidate);
    if (!use_imst_) {
        // Unfiltered GPU-VI: every store broadcasts.
        needs_invalidate = true;
    }
    if (!needs_invalidate)
        return 0;

    unsigned sent = 0;
    for (NodeId node = 0; node < num_gpus_; ++node) {
        if (node == requester)
            continue;
        // The home node drops its own copies without a network hop.
        if (node != home)
            ops_.send_ctrl(home, node, cfg_.link.ctrl_packet_size);
        ops_.invalidate_at(node, line_addr);
        ++sent;
        invalidates_sent_.inc();
    }
    return sent;
}

std::uint64_t
GpuVi::writesFiltered() const
{
    std::uint64_t total = 0;
    for (const auto &imst : imsts_)
        total += imst.filteredWrites();
    return total;
}

void
GpuVi::registerStats(stats::StatGroup &g)
{
    g.addScalar("invalidates_sent", &invalidates_sent_.scalar(),
                "write-invalidate packets broadcast");
    g.addDerivedInt("writes_filtered",
                    [this] { return writesFiltered(); },
                    "broadcasts suppressed by the IMST");
    for (std::size_t h = 0; h < imsts_.size(); ++h) {
        auto child = std::make_unique<stats::StatGroup>(
            "imst" + std::to_string(h), &g);
        imsts_[h].registerStats(*child);
        imst_groups_.push_back(std::move(child));
    }
}

} // namespace carve
