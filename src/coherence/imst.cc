#include "coherence/imst.hh"

namespace carve {

const char *
sharingStateName(SharingState s)
{
    switch (s) {
      case SharingState::Uncached: return "uncached";
      case SharingState::Private: return "private";
      case SharingState::ReadShared: return "read-shared";
      case SharingState::ReadWriteShared: return "read-write-shared";
    }
    return "?";
}

Imst::Imst(NodeId home, double demote_probability, std::uint64_t seed)
    : home_(home), demote_probability_(demote_probability),
      rng_(seed + home)
{
}

SharingState
Imst::state(Addr line_addr) const
{
    const auto it = states_.find(line_addr);
    return it == states_.end() ? SharingState::Uncached
                               : it->second.state;
}

NodeId
Imst::owner(Addr line_addr) const
{
    const auto it = states_.find(line_addr);
    if (it == states_.end() ||
        it->second.state != SharingState::Private) {
        return invalid_node;
    }
    return it->second.owner;
}

SharingState
Imst::onAccess(Addr line_addr, NodeId requester, AccessType type,
               bool &needs_invalidate)
{
    needs_invalidate = false;
    const bool write = isWrite(type);
    LineState &ls = states_[line_addr];

    switch (ls.state) {
      case SharingState::Uncached:
        ls.state = SharingState::Private;
        ls.owner = requester;
        break;

      case SharingState::Private:
        if (requester != ls.owner) {
            if (write) {
                // The old owner may cache a stale copy: invalidate.
                needs_invalidate = true;
                ls.state = SharingState::ReadWriteShared;
            } else {
                ls.state = SharingState::ReadShared;
            }
            ls.owner = invalid_node;
        }
        break;

      case SharingState::ReadShared:
        if (write) {
            needs_invalidate = true;
            ls.state = SharingState::ReadWriteShared;
        }
        break;

      case SharingState::ReadWriteShared:
        if (write)
            needs_invalidate = true;
        break;
    }

    // Sticky-state escape: a write to a shared line occasionally
    // resets it to Private for the writer (after the invalidate
    // broadcast) so lines whose sharing phase ended stop paying
    // broadcast costs.
    if (write && needs_invalidate && rng_.chance(demote_probability_)) {
        ls.state = SharingState::Private;
        ls.owner = requester;
        ++demotions_;
    }

    if (write) {
        if (needs_invalidate)
            ++shared_writes_;
        else
            ++filtered_writes_;
    }

    return ls.state;
}

} // namespace carve
