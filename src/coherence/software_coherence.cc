#include "coherence/software_coherence.hh"

#include "common/units.hh"

namespace carve {

SwCoherenceCost
computeSwCoherenceCost(const SystemConfig &cfg)
{
    SwCoherenceCost cost{};

    // LLC invalidate: one line per bank per cycle; model the LLC with
    // one bank per way group == l2.ways banks (Table IV uses 16).
    const std::uint64_t l2_lines = cfg.l2.size / cfg.line_size;
    const unsigned l2_banks = cfg.l2.ways;
    cost.l2_invalidate = divCeil<std::uint64_t>(l2_lines, l2_banks);

    // LLC flush: worst case the whole LLC is dirty remote data that
    // must drain over one inter-GPU link.
    cost.l2_flush = static_cast<Cycle>(
        static_cast<double>(cfg.l2.size) / cfg.link.gpu_gpu_bw);

    // RDC invalidate without the epoch counter: every line's tag/valid
    // metadata lives in DRAM, so the whole carve-out is read and
    // written back at local bandwidth.
    const double local_bw = cfg.localDramBw();
    cost.rdc_invalidate = static_cast<Cycle>(
        2.0 * static_cast<double>(cfg.rdc.size) / local_bw);

    // RDC flush without write-through: worst case the whole carve-out
    // is dirty and drains over the inter-GPU link.
    cost.rdc_flush = static_cast<Cycle>(
        static_cast<double>(cfg.rdc.size) / cfg.link.gpu_gpu_bw);

    // The paper's mechanisms reduce both RDC costs to zero.
    cost.rdc_invalidate_epoch = 0;
    cost.rdc_flush_writethrough = 0;

    return cost;
}

} // namespace carve
