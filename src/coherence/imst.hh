/**
 * @file
 * In-Memory Sharing Tracker (IMST), Figure 12 of the paper.
 *
 * A 2-bit state per cacheline, stored in the spare ECC bits at the
 * line's *home* node, tracking the line's global sharing behaviour
 * beyond cache residency: Uncached, Private (one accessor node),
 * Read-Shared, or Read-Write-Shared. GPU-VI consults it to suppress
 * write-invalidate broadcasts for private lines. A small owner field
 * accompanies the Private state (the spare ECC space holds 56 bits,
 * of which the tag uses 6 — Section IV-A footnote 3) so a write by
 * the single owner never broadcasts even when the owner is a remote
 * node; this is what makes fine-grain (line) tracking effective where
 * page-granularity sharing is false. Lines can stick in shared states
 * forever, so writes probabilistically demote to Private (after
 * broadcasting invalidates) to re-learn the sharing pattern.
 */

#ifndef CARVE_COHERENCE_IMST_HH
#define CARVE_COHERENCE_IMST_HH

#include <cstdint>
#include <unordered_map>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace carve {

/** Global sharing state of one cacheline. */
enum class SharingState : std::uint8_t {
    Uncached,
    Private,
    ReadShared,
    ReadWriteShared,
};

/** Printable name of a sharing state. */
const char *sharingStateName(SharingState s);

/**
 * Sharing tracker for lines homed at one node. Storage is sparse:
 * untouched lines are implicitly Uncached (their ECC metadata would be
 * zero-initialized).
 */
class Imst
{
  public:
    /**
     * @param home node id whose memory this tracker covers
     * @param demote_probability chance that a local write to a shared
     *        line demotes it to Private after invalidating sharers
     * @param seed RNG seed for the probabilistic demotion
     */
    Imst(NodeId home, double demote_probability = 0.01,
         std::uint64_t seed = 11);

    /**
     * Record an access observed at the home memory controller and
     * apply the Figure 12 transitions.
     *
     * @param line_addr line address (must be homed at this node)
     * @param requester accessing node
     * @param type read or write
     * @param[out] needs_invalidate set true when GPU-VI must broadcast
     *        a write-invalidate (write to a shared line)
     * @return the state *after* the transition
     */
    SharingState onAccess(Addr line_addr, NodeId requester,
                          AccessType type, bool &needs_invalidate);

    /** Current state of @p line_addr (Uncached when never touched). */
    SharingState state(Addr line_addr) const;

    /** Owner of a Private line (invalid_node otherwise). */
    NodeId owner(Addr line_addr) const;

    /** Lines currently tracked in a non-Uncached state. */
    std::size_t trackedLines() const { return states_.size(); }

    /** Writes that required a broadcast. */
    std::uint64_t sharedWrites() const { return shared_writes_.value(); }
    /** Writes filtered because the line was private/uncached. */
    std::uint64_t
    filteredWrites() const
    {
        return filtered_writes_.value();
    }
    /** Probabilistic demotions performed. */
    std::uint64_t demotions() const { return demotions_.value(); }

    NodeId home() const { return home_; }

    /** Register this tracker's counters into @p g. */
    void
    registerStats(stats::StatGroup &g)
    {
        g.addScalar("shared_writes", &shared_writes_,
                    "writes that required a broadcast");
        g.addScalar("filtered_writes", &filtered_writes_,
                    "writes filtered as private/uncached");
        g.addScalar("demotions", &demotions_,
                    "probabilistic demotions to Private");
    }

  private:
    struct LineState
    {
        SharingState state = SharingState::Uncached;
        NodeId owner = invalid_node;  ///< valid only when Private
    };

    NodeId home_;
    double demote_probability_;
    Rng rng_;
    std::unordered_map<Addr, LineState> states_;

    stats::Scalar shared_writes_;
    stats::Scalar filtered_writes_;
    stats::Scalar demotions_;
};

} // namespace carve

#endif // CARVE_COHERENCE_IMST_HH
