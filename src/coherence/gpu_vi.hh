/**
 * @file
 * GPU-VI hardware coherence engine (Singh et al., HPCA '13) extended
 * with IMST broadcast filtering — the paper's CARVE-HWC design.
 *
 * Directory-less write-invalidate protocol: caches are write-through;
 * a write observed at a line's home node broadcasts invalidates to
 * every other GPU *unless* the IMST proves the line is private. The
 * engine owns one IMST per home node and calls back into the system
 * to invalidate remote copies and charge control-packet traffic.
 */

#ifndef CARVE_COHERENCE_GPU_VI_HH
#define CARVE_COHERENCE_GPU_VI_HH

#include <functional>
#include <memory>
#include <vector>

#include "coherence/imst.hh"
#include "common/config.hh"
#include "common/domain_engine.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace carve {

/** Plumbing into the rest of the system, wired by MultiGpuSystem. */
struct CoherenceOps
{
    /** Drop every cached copy of @p line at @p node (RDC + LLC). */
    std::function<void(NodeId node, Addr line)> invalidate_at;
    /** Transmit a control packet of @p bytes from @p src to @p dst. */
    std::function<void(NodeId src, NodeId dst, unsigned bytes)>
        send_ctrl;
};

/**
 * System-wide GPU-VI + IMST coherence.
 */
class GpuVi
{
  public:
    /**
     * @param cfg system configuration (control-packet size, demotion)
     * @param num_gpus node count
     * @param ops invalidation/traffic callbacks
     * @param use_imst when false every write to remote-visible memory
     *        broadcasts (the unfiltered GPU-VI baseline, used by the
     *        IMST ablation bench)
     */
    GpuVi(const SystemConfig &cfg, unsigned num_gpus, CoherenceOps ops,
          bool use_imst = true);

    /**
     * Record a read observed at @p home's memory controller.
     */
    void onRead(NodeId home, NodeId requester, Addr line_addr);

    /**
     * Record a write observed at @p home's memory controller;
     * broadcasts write-invalidates when required.
     * @return number of invalidate packets sent
     */
    unsigned onWrite(NodeId home, NodeId requester, Addr line_addr);

    /** IMST of one home node. */
    const Imst &imst(NodeId home) const { return imsts_[home]; }

    /** Total invalidate packets broadcast (barrier-synced read). */
    std::uint64_t
    invalidatesSent() const
    {
        return invalidates_sent_.scalar().value();
    }

    /** Fold the per-domain invalidate counts into the registered
     * scalar; call only at a window barrier. */
    void
    foldShards()
    {
        invalidates_sent_.fold();
    }

    /** Writes whose broadcast the IMST filtered away. */
    std::uint64_t writesFiltered() const;

    bool usesImst() const { return use_imst_; }

    /** Register engine counters plus one "imst<h>" child group per
     * home node into @p g (child groups owned here). */
    void registerStats(stats::StatGroup &g);

  private:
    const SystemConfig &cfg_;
    unsigned num_gpus_;
    CoherenceOps ops_;
    bool use_imst_;
    std::vector<Imst> imsts_;
    std::vector<std::unique_ptr<stats::StatGroup>> imst_groups_;

    /** Incremented from whichever home domain observes the write, so
     * sharded per executing domain and folded at barriers. */
    ShardedScalar invalidates_sent_;
};

} // namespace carve

#endif // CARVE_COHERENCE_GPU_VI_HH
