#include "mem/address_mapping.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace carve {

AddressMapping::AddressMapping(std::uint64_t line_size, unsigned channels,
                               unsigned banks_per_channel,
                               std::uint64_t row_size)
    : line_size_(line_size), channels_(channels),
      banks_(banks_per_channel),
      lines_per_row_(row_size / line_size)
{
    if (!isPowerOf2(line_size))
        fatal("AddressMapping: line size must be a power of two");
    if (channels == 0 || banks_per_channel == 0)
        fatal("AddressMapping: need at least one channel and bank");
    if (row_size < line_size)
        fatal("AddressMapping: row smaller than a line");
}

DramCoord
AddressMapping::decode(Addr addr) const
{
    const std::uint64_t line = addr / line_size_;
    DramCoord c;
    c.channel = static_cast<unsigned>(line % channels_);
    const std::uint64_t in_channel = line / channels_;
    const std::uint64_t row_run = in_channel / lines_per_row_;
    c.bank = static_cast<unsigned>(row_run % banks_);
    c.row = row_run / banks_;
    return c;
}

} // namespace carve
