/**
 * @file
 * Single DRAM bank: open-row state plus row hit/miss accounting.
 */

#ifndef CARVE_MEM_DRAM_BANK_HH
#define CARVE_MEM_DRAM_BANK_HH

#include "common/stats.hh"
#include "common/types.hh"

namespace carve {

/**
 * Open-page bank model. The channel consults the bank for row-buffer
 * status when ranking requests (FR-FCFS) and when computing access
 * latency, and updates the open row after issuing.
 */
class DramBank
{
  public:
    DramBank() = default;

    /** True when @p row is currently latched in the row buffer. */
    bool
    isOpenRow(std::uint64_t row) const
    {
        return has_open_row_ && open_row_ == row;
    }

    /**
     * Latch @p row (an access under open-page policy leaves the row
     * open afterwards). Records a row hit or miss stat.
     * @return true when the access was a row hit.
     */
    bool
    access(std::uint64_t row)
    {
        const bool hit = isOpenRow(row);
        if (hit) {
            ++row_hits_;
        } else {
            ++row_misses_;
            open_row_ = row;
            has_open_row_ = true;
        }
        return hit;
    }

    /** Close the row buffer (e.g., refresh; unused by default). */
    void
    precharge()
    {
        has_open_row_ = false;
    }

    std::uint64_t rowHits() const { return row_hits_.value(); }
    std::uint64_t rowMisses() const { return row_misses_.value(); }

  private:
    bool has_open_row_ = false;
    std::uint64_t open_row_ = 0;
    stats::Scalar row_hits_;
    stats::Scalar row_misses_;
};

} // namespace carve

#endif // CARVE_MEM_DRAM_BANK_HH
