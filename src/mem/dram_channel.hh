/**
 * @file
 * One DRAM channel: bounded read/write queues, FR-FCFS scheduling with
 * read priority and batched write draining, open-page banks, and a
 * bandwidth-accurate burst occupancy model.
 */

#ifndef CARVE_MEM_DRAM_CHANNEL_HH
#define CARVE_MEM_DRAM_CHANNEL_HH

#include <deque>
#include <functional>
#include <vector>

#include "common/completion.hh"
#include "common/config.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/dram_bank.hh"
#include "trace/trace.hh"

namespace carve {

/** One queued channel request. Plain data: queue churn (staging,
 * FR-FCFS erasure) moves flat 56-byte records, never a heap box. */
struct DramRequest
{
    unsigned bank = 0;
    std::uint64_t row = 0;
    AccessType type = AccessType::Read;
    Cycle enqueued_at = 0;
    /** Completion callback; may be empty for posted writes. */
    Completion on_done;
};

/**
 * Event-driven DRAM channel.
 *
 * The channel serializes bursts: each access occupies the data bus for
 * line_size / channel_bw cycles, which is what enforces the configured
 * per-channel bandwidth. Access latency (row hit vs row miss) is paid
 * on top of queueing delay. Writes are posted: their callbacks (if any)
 * fire when the write is issued to the bank.
 */
class DramChannel
{
  public:
    /**
     * @param eq shared event queue
     * @param cfg DRAM parameters (latencies, queue depths, bandwidth)
     * @param line_size burst size in bytes
     */
    DramChannel(EventQueue &eq, const DramConfig &cfg,
                std::uint64_t line_size);

    /**
     * Try to enqueue a request.
     * @return false when the corresponding queue is full; the caller
     *         must retry after retry-notification (see setRetryCallback).
     */
    bool enqueue(DramRequest req);

    /**
     * Register a callback invoked whenever queue space frees up after
     * a rejected enqueue.
     */
    void
    setRetryCallback(std::function<void()> cb)
    {
        retry_cb_ = std::move(cb);
    }

    /** Outstanding reads (queued, not yet issued). */
    std::size_t readQueueSize() const { return read_q_.size(); }
    /** Outstanding writes (queued, not yet issued). */
    std::size_t writeQueueSize() const { return write_q_.size(); }

    /** Total reads issued to banks. */
    std::uint64_t readsIssued() const { return reads_issued_.value(); }
    /** Total writes issued to banks. */
    std::uint64_t writesIssued() const { return writes_issued_.value(); }
    /** Cycles the data bus was occupied. */
    std::uint64_t busyCycles() const { return busy_cycles_.value(); }
    /** Row-buffer hit rate across all banks. */
    double rowHitRate() const;
    /** Mean queueing delay of completed reads, in cycles. */
    double meanReadQueueDelay() const { return read_q_delay_.mean(); }

    /** Per-bank accessor (tests). */
    const DramBank &bank(unsigned i) const { return banks_[i]; }

    /** Attach the tracer: every issued burst becomes a data-bus busy
     * span on this channel's timeline row @p track. */
    void
    setTrace(trace::Session *session, std::uint32_t track)
    {
        trace_ = session;
        trace_track_ = track;
    }

    /** Register this channel's counters into @p g. */
    void
    registerStats(stats::StatGroup &g)
    {
        g.addScalar("reads_issued", &reads_issued_,
                    "reads issued to banks");
        g.addScalar("writes_issued", &writes_issued_,
                    "writes issued to banks");
        g.addScalar("busy_cycles", &busy_cycles_,
                    "cycles the data bus was occupied");
        g.addAverage("read_q_delay", &read_q_delay_,
                     "queueing delay of completed reads (cycles)");
    }

  private:
    void trySchedule();
    /** One scheduler beat: drain-mode hysteresis, FR-FCFS pick, issue.
     * Scheduled as a pre-bound event, so the channel's steady-state
     * drain loop allocates nothing. */
    void issueTick();
    void issue(std::deque<DramRequest> &q, std::size_t idx);
    /** Index of the best FR-FCFS candidate in @p q, or npos. */
    std::size_t pickFrFcfs(const std::deque<DramRequest> &q) const;

    EventQueue &eq_;
    const DramConfig &cfg_;
    std::uint64_t line_size_;
    Cycle burst_cycles_;

    std::vector<DramBank> banks_;
    std::deque<DramRequest> read_q_;
    std::deque<DramRequest> write_q_;
    bool draining_writes_ = false;
    bool issue_pending_ = false;
    Cycle bus_free_at_ = 0;
    bool reject_seen_ = false;
    std::function<void()> retry_cb_;
    trace::Session *trace_ = nullptr;
    std::uint32_t trace_track_ = 0;

    stats::Scalar reads_issued_;
    stats::Scalar writes_issued_;
    stats::Scalar busy_cycles_;
    stats::Average read_q_delay_;
};

} // namespace carve

#endif // CARVE_MEM_DRAM_CHANNEL_HH
