#include "mem/dram_channel.hh"

#include <cmath>
#include <utility>

#include "common/logging.hh"
#include "common/units.hh"

namespace carve {

DramChannel::DramChannel(EventQueue &eq, const DramConfig &cfg,
                         std::uint64_t line_size)
    : eq_(eq), cfg_(cfg), line_size_(line_size),
      burst_cycles_(static_cast<Cycle>(std::ceil(
          static_cast<double>(line_size) / cfg.channel_bw))),
      banks_(cfg.banks_per_channel)
{
    if (burst_cycles_ == 0)
        burst_cycles_ = 1;
}

bool
DramChannel::enqueue(DramRequest req)
{
    auto &q = isWrite(req.type) ? write_q_ : read_q_;
    const std::size_t limit =
        isWrite(req.type) ? cfg_.write_queue : cfg_.read_queue;
    if (q.size() >= limit) {
        reject_seen_ = true;
        return false;
    }
    req.enqueued_at = eq_.now();
    q.push_back(std::move(req));
    trySchedule();
    return true;
}

double
DramChannel::rowHitRate() const
{
    std::uint64_t hits = 0, misses = 0;
    for (const auto &b : banks_) {
        hits += b.rowHits();
        misses += b.rowMisses();
    }
    const std::uint64_t total = hits + misses;
    return total == 0
        ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
}

std::size_t
DramChannel::pickFrFcfs(const std::deque<DramRequest> &q) const
{
    // First-ready: oldest row-buffer hit wins; otherwise oldest
    // overall. Real schedulers only examine a window of the queue;
    // capping the scan also bounds simulation cost.
    constexpr std::size_t scan_window = 16;
    const std::size_t limit = std::min(q.size(), scan_window);
    for (std::size_t i = 0; i < limit; ++i) {
        if (banks_[q[i].bank].isOpenRow(q[i].row))
            return i;
    }
    return 0;
}

void
DramChannel::trySchedule()
{
    if (issue_pending_)
        return;
    if (read_q_.empty() && write_q_.empty())
        return;
    issue_pending_ = true;
    const Cycle start = std::max(eq_.now(), bus_free_at_);
    eq_.schedule(start, bindEvent<&DramChannel::issueTick>(this));
}

void
DramChannel::issueTick()
{
    issue_pending_ = false;

    // Hysteresis on the write queue: start draining at the high
    // mark, keep going until the low mark (writes batched, reads
    // prioritized otherwise -- Section III of the paper).
    const auto high = static_cast<std::size_t>(
        cfg_.write_drain_high * cfg_.write_queue);
    const auto low = static_cast<std::size_t>(
        cfg_.write_drain_low * cfg_.write_queue);
    if (write_q_.size() >= high)
        draining_writes_ = true;
    if (write_q_.size() <= low)
        draining_writes_ = false;

    if ((draining_writes_ || read_q_.empty()) && !write_q_.empty())
        issue(write_q_, pickFrFcfs(write_q_));
    else if (!read_q_.empty())
        issue(read_q_, pickFrFcfs(read_q_));
    else
        return;

    if (reject_seen_) {
        reject_seen_ = false;
        if (retry_cb_)
            retry_cb_();
    }
    trySchedule();
}

void
DramChannel::issue(std::deque<DramRequest> &q, std::size_t idx)
{
    carve_assert(idx < q.size());
    DramRequest req = std::move(q[idx]);
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));

    const bool row_hit = banks_[req.bank].access(req.row);
    const Cycle access_lat =
        row_hit ? cfg_.row_hit_latency : cfg_.row_miss_latency;

    const Cycle start = eq_.now();
    bus_free_at_ = start + burst_cycles_;
    busy_cycles_ += burst_cycles_;

    if (trace::active(trace_, trace::Category::Dram)) {
        trace_->span(trace::Category::Dram, trace_track_,
                     isWrite(req.type) ? "write burst" : "read burst",
                     start, start + burst_cycles_, req.row);
    }

    if (isWrite(req.type)) {
        ++writes_issued_;
        // Posted write: signal completion at issue time.
        if (req.on_done)
            eq_.schedule(start, std::move(req.on_done));
    } else {
        ++reads_issued_;
        read_q_delay_.sample(
            static_cast<double>(start - req.enqueued_at));
        if (req.on_done) {
            eq_.schedule(start + access_lat + burst_cycles_,
                         std::move(req.on_done));
        }
    }
}

} // namespace carve
