/**
 * @file
 * Per-GPU memory controller: address decode, per-channel dispatch with
 * backpressure-tolerant staging, aggregate bandwidth statistics.
 */

#ifndef CARVE_MEM_MEMORY_CONTROLLER_HH
#define CARVE_MEM_MEMORY_CONTROLLER_HH

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/arena.hh"
#include "common/audit.hh"
#include "common/completion.hh"
#include "common/config.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/address_mapping.hh"
#include "mem/dram_channel.hh"

namespace carve {

/**
 * Front end of one GPU's local HBM. Accepts line-granularity accesses
 * addressed by local physical address, decodes them with the
 * minimalist mapping and forwards to the owning channel. Requests
 * rejected by a full channel queue wait in an unbounded staging FIFO
 * and are replayed when the channel frees space, so callers never have
 * to handle retries themselves.
 */
class MemoryController
{
  public:
    /** POD completion delegate (no allocation per hand-off). */
    using Callback = Completion;

    /**
     * @param eq shared event queue
     * @param cfg full system configuration (DRAM + line size)
     * @param arena backing store for audit-wrap pool (optional)
     */
    MemoryController(EventQueue &eq, const SystemConfig &cfg,
                     Arena *arena = nullptr);

    MemoryController(const MemoryController &) = delete;
    MemoryController &operator=(const MemoryController &) = delete;

    /**
     * Issue a line access to local DRAM.
     * @param addr local physical byte address
     * @param type read or write
     * @param done completion callback (reads: data returned; writes:
     *        posted). May be empty.
     */
    void access(Addr addr, AccessType type, Callback done);

    /** Total read accesses accepted. */
    std::uint64_t reads() const { return reads_.value(); }
    /** Total write accesses accepted. */
    std::uint64_t writes() const { return writes_.value(); }
    /** Bytes moved (reads + writes). */
    std::uint64_t
    bytesTransferred() const
    {
        return (reads_.value() + writes_.value()) * line_size_;
    }

    /** Aggregate row-buffer hit rate. */
    double rowHitRate() const;

    /** Number of channels (tests). */
    unsigned numChannels() const
    {
        return static_cast<unsigned>(channels_.size());
    }

    /** Per-channel accessor (tests). */
    const DramChannel &channel(unsigned i) const { return *channels_[i]; }

    /** Register controller counters plus one "ch<i>" child group per
     * channel into @p g (child groups are owned here). */
    void registerStats(stats::StatGroup &g);

    /** Attach the in-flight token tracker (audit mode only): every
     * accepted access carries a token until its channel issues it. */
    void setAudit(audit::InflightTracker *tracker) { audit_ = tracker; }

    /** Attach the tracer under process @p pid: one "dram.ch<i>" row
     * per channel (tids 200+i, matching the exporter's row layout). */
    void
    setTrace(trace::Session *session, std::uint32_t pid)
    {
        for (unsigned c = 0; c < numChannels(); ++c) {
            session->defineThread(pid, 200 + c,
                                  "dram.ch" + std::to_string(c));
            channels_[c]->setTrace(session,
                                   trace::makeTrack(pid, 200 + c));
        }
    }

  private:
    void drainStaged(unsigned ch);
    /** Audit-mode completion shim: retire the DRAM token, then fire
     * the wrapped caller completion parked at @p handle. */
    void auditRetire(std::uint32_t handle);

    EventQueue &eq_;
    AddressMapping mapping_;
    std::uint64_t line_size_;
    std::vector<std::unique_ptr<DramChannel>> channels_;
    std::vector<std::deque<DramRequest>> staged_;
    std::vector<std::unique_ptr<stats::StatGroup>> channel_groups_;
    audit::InflightTracker *audit_ = nullptr;
    Pool<Completion> audit_done_;

    stats::Scalar reads_;
    stats::Scalar writes_;
};

} // namespace carve

#endif // CARVE_MEM_MEMORY_CONTROLLER_HH
