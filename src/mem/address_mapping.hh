/**
 * @file
 * Minimalist open-page DRAM address mapping (Kaseridis et al.,
 * MICRO '11), as used by the paper's baseline memory controller.
 *
 * Consecutive cache lines interleave across channels first so that
 * streaming accesses exercise all channels concurrently; within a
 * channel a small run of lines shares a row before switching banks,
 * balancing row locality against bank-level parallelism.
 */

#ifndef CARVE_MEM_ADDRESS_MAPPING_HH
#define CARVE_MEM_ADDRESS_MAPPING_HH

#include "common/types.hh"

namespace carve {

/** Decoded DRAM coordinates of one line-sized access. */
struct DramCoord
{
    unsigned channel;
    unsigned bank;
    std::uint64_t row;

    bool
    operator==(const DramCoord &o) const
    {
        return channel == o.channel && bank == o.bank && row == o.row;
    }
};

/**
 * Stateless translator from local physical addresses to DRAM
 * coordinates.
 */
class AddressMapping
{
  public:
    /**
     * @param line_size cache line size in bytes (power of two)
     * @param channels number of channels per GPU
     * @param banks_per_channel banks in each channel
     * @param row_size row-buffer size in bytes
     */
    AddressMapping(std::uint64_t line_size, unsigned channels,
                   unsigned banks_per_channel, std::uint64_t row_size);

    /** Decode the coordinates of the line containing @p addr. */
    DramCoord decode(Addr addr) const;

    unsigned channels() const { return channels_; }
    unsigned banksPerChannel() const { return banks_; }

    /** Lines that share one row buffer. */
    std::uint64_t linesPerRow() const { return lines_per_row_; }

  private:
    std::uint64_t line_size_;
    unsigned channels_;
    unsigned banks_;
    std::uint64_t lines_per_row_;
};

} // namespace carve

#endif // CARVE_MEM_ADDRESS_MAPPING_HH
