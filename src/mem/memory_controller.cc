#include "mem/memory_controller.hh"

#include <utility>

#include "common/logging.hh"

namespace carve {

MemoryController::MemoryController(EventQueue &eq,
                                   const SystemConfig &cfg,
                                   Arena *arena)
    : eq_(eq),
      mapping_(cfg.line_size, cfg.dram.channels,
               cfg.dram.banks_per_channel, cfg.dram.row_size),
      line_size_(cfg.line_size),
      staged_(cfg.dram.channels),
      audit_done_(arena)
{
    channels_.reserve(cfg.dram.channels);
    for (unsigned i = 0; i < cfg.dram.channels; ++i) {
        channels_.push_back(
            std::make_unique<DramChannel>(eq, cfg.dram, cfg.line_size));
        channels_.back()->setRetryCallback(
            [this, i] { drainStaged(i); });
    }
}

void
MemoryController::access(Addr addr, AccessType type, Callback done)
{
    const DramCoord coord = mapping_.decode(addr);
    if (isWrite(type))
        ++writes_;
    else
        ++reads_;

    DramRequest req;
    req.bank = coord.bank;
    req.row = coord.row;
    req.type = type;
    req.on_done = done;

    if (audit_) {
        // Wrap (and, for posted writes, materialize) the completion so
        // the token is provably retired when the channel issues it.
        // The wrapped completion is parked in a pool keyed by handle.
        audit_->issue(audit::Boundary::DramAccess);
        const std::uint32_t handle = audit_done_.alloc(req.on_done);
        req.on_done = Completion::bind<&MemoryController::auditRetire>(
            this, handle);
    }

    auto &stage = staged_[coord.channel];
    if (!stage.empty() || !channels_[coord.channel]->enqueue(req)) {
        // Preserve arrival order behind already-staged requests.
        stage.push_back(req);
    }
}

void
MemoryController::auditRetire(std::uint32_t handle)
{
    audit_->retire(audit::Boundary::DramAccess);
    const Completion done = audit_done_[handle];
    audit_done_.free(handle);
    if (done)
        done();
}

void
MemoryController::drainStaged(unsigned ch)
{
    auto &stage = staged_[ch];
    while (!stage.empty()) {
        if (!channels_[ch]->enqueue(stage.front()))
            break;
        stage.pop_front();
    }
}

void
MemoryController::registerStats(stats::StatGroup &g)
{
    g.addScalar("reads", &reads_, "read accesses accepted");
    g.addScalar("writes", &writes_, "write accesses accepted");
    g.addDerived("row_hit_rate", [this] { return rowHitRate(); },
                 "aggregate row-buffer hit rate");
    for (std::size_t i = 0; i < channels_.size(); ++i) {
        auto child = std::make_unique<stats::StatGroup>(
            "ch" + std::to_string(i), &g);
        channels_[i]->registerStats(*child);
        channel_groups_.push_back(std::move(child));
    }
}

double
MemoryController::rowHitRate() const
{
    double weighted = 0.0;
    std::uint64_t total = 0;
    for (const auto &ch : channels_) {
        const std::uint64_t n = ch->readsIssued() + ch->writesIssued();
        weighted += ch->rowHitRate() * static_cast<double>(n);
        total += n;
    }
    return total == 0 ? 0.0 : weighted / static_cast<double>(total);
}

} // namespace carve
