#include "harness/bench_io.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace carve {
namespace harness {

namespace {

std::uint64_t
u64At(const json::Value &v, const char *key)
{
    return static_cast<std::uint64_t>(v.at(key).asInt());
}

json::Value
microToJson(const MicroResult &m)
{
    json::Value o{json::Members{}};
    o.set("name", m.name);
    o.set("events", m.events);
    o.set("seconds", m.seconds);
    o.set("events_per_sec", m.events_per_sec);
    return o;
}

MicroResult
microFromJson(const json::Value &v)
{
    MicroResult m;
    m.name = v.at("name").asString();
    m.events = u64At(v, "events");
    m.seconds = v.at("seconds").asDouble();
    m.events_per_sec = v.at("events_per_sec").asDouble();
    return m;
}

json::Value
cellToJson(const CellResult &c)
{
    json::Value o{json::Members{}};
    o.set("preset", c.preset);
    o.set("workload", c.workload);
    o.set("cycles", c.cycles);
    o.set("events", c.events);
    o.set("warp_insts", c.warp_insts);
    o.set("allocations", c.allocations);
    o.set("peak_rss_bytes", c.peak_rss_bytes);
    o.set("host_seconds", c.host_seconds);
    o.set("events_per_sec", c.events_per_sec);
    o.set("warp_insts_per_sec", c.warp_insts_per_sec);
    return o;
}

CellResult
cellFromJson(const json::Value &v)
{
    CellResult c;
    c.preset = v.at("preset").asString();
    c.workload = v.at("workload").asString();
    c.cycles = u64At(v, "cycles");
    c.events = u64At(v, "events");
    c.warp_insts = u64At(v, "warp_insts");
    // Optional: bench files written before the memory columns existed
    // read back with zeros (compareBench never gates on them).
    if (v.has("allocations"))
        c.allocations = u64At(v, "allocations");
    if (v.has("peak_rss_bytes"))
        c.peak_rss_bytes = u64At(v, "peak_rss_bytes");
    c.host_seconds = v.at("host_seconds").asDouble();
    c.events_per_sec = v.at("events_per_sec").asDouble();
    c.warp_insts_per_sec = v.at("warp_insts_per_sec").asDouble();
    return c;
}

} // namespace

json::Value
benchToJson(const BenchReport &r)
{
    json::Value doc{json::Members{}};
    doc.set("schema", kBenchSchema);
    doc.set("date", r.date);
    doc.set("git_version", r.git_version);
    doc.set("engine", r.engine);
    doc.set("memory_scale", r.memory_scale);
    doc.set("duration", r.duration);

    json::Value micro{json::Array{}};
    for (const auto &m : r.micro)
        micro.push(microToJson(m));
    doc.set("micro", std::move(micro));

    json::Value cells{json::Array{}};
    for (const auto &c : r.cells)
        cells.push(cellToJson(c));
    doc.set("cells", std::move(cells));
    return doc;
}

BenchReport
benchFromJson(const json::Value &doc)
{
    BenchReport r;
    r.date = doc.at("date").asString();
    r.git_version = doc.at("git_version").asString();
    r.engine = doc.at("engine").asString();
    r.memory_scale =
        static_cast<unsigned>(doc.at("memory_scale").asInt());
    r.duration = doc.at("duration").asDouble();
    for (const auto &m : doc.at("micro").asArray())
        r.micro.push_back(microFromJson(m));
    for (const auto &c : doc.at("cells").asArray())
        r.cells.push_back(cellFromJson(c));
    return r;
}

BenchReport
readBenchFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open bench file '%s'", path.c_str());
    std::ostringstream ss;
    ss << is.rdbuf();
    const json::Value doc = json::parse(ss.str(), path);
    const std::string schema =
        doc.isObject() && doc.has("schema")
            ? doc.at("schema").asString()
            : std::string();
    if (schema != kBenchSchema)
        fatal("'%s' is not a %s file", path.c_str(), kBenchSchema);
    return benchFromJson(doc);
}

std::vector<BenchDelta>
compareBench(const BenchReport &baseline,
             const BenchReport &candidate, double fail_factor)
{
    std::vector<BenchDelta> out;

    // Higher is better: gate on baseline/candidate.
    const auto rate = [&](const std::string &key, double base,
                          double cand) {
        BenchDelta d;
        d.key = key;
        d.metric = "events_per_sec";
        d.baseline = base;
        d.candidate = cand;
        d.factor = cand > 0.0 ? base / cand : 0.0;
        d.regression = cand > 0.0 && d.factor > fail_factor;
        out.push_back(std::move(d));
    };
    // Lower is better: gate on candidate/baseline.
    const auto lower = [&](const std::string &key,
                           const char *metric, double base,
                           double cand) {
        BenchDelta d;
        d.key = key;
        d.metric = metric;
        d.baseline = base;
        d.candidate = cand;
        d.factor = base > 0.0 ? cand / base : 0.0;
        d.regression = base > 0.0 && d.factor > fail_factor;
        out.push_back(std::move(d));
    };
    const auto missing = [&](const std::string &key,
                             const char *metric) {
        BenchDelta d;
        d.key = key;
        d.metric = metric;
        out.push_back(std::move(d));
    };

    for (const auto &bm : baseline.micro) {
        const MicroResult *cm = nullptr;
        for (const auto &m : candidate.micro)
            if (m.name == bm.name)
                cm = &m;
        if (cm)
            rate(bm.name, bm.events_per_sec, cm->events_per_sec);
        else
            missing(bm.name, "missing micro");
    }
    for (const auto &bc : baseline.cells) {
        const CellResult *cc = nullptr;
        for (const auto &c : candidate.cells)
            if (c.key() == bc.key())
                cc = &c;
        if (cc) {
            lower(bc.key(), "host_seconds", bc.host_seconds,
                  cc->host_seconds);
            // Event counts are deterministic, so this gate is exact:
            // a return to MSHR retry polling inflates events by
            // orders of magnitude long before wall time notices.
            lower(bc.key(), "events",
                  static_cast<double>(bc.events),
                  static_cast<double>(cc->events));
        } else {
            missing(bc.key(), "missing cell");
        }
    }
    return out;
}

bool
benchHasRegression(const std::vector<BenchDelta> &deltas)
{
    for (const auto &d : deltas)
        if (d.regression)
            return true;
    return false;
}

std::string
formatBenchCompare(const std::vector<BenchDelta> &deltas,
                   double fail_factor)
{
    std::string out = "bench comparison (gate: >" +
        json::formatDouble(fail_factor) + "x slowdown):\n";
    char line[256];
    for (const auto &d : deltas) {
        if (d.factor == 0.0) {
            std::snprintf(line, sizeof line, "  MISS  %-28s %s\n",
                          d.key.c_str(), d.metric.c_str());
        } else {
            std::snprintf(
                line, sizeof line,
                "  %s %-28s %s %.3g -> %.3g (%.2fx %s)\n",
                d.regression ? "FAIL " : "ok   ", d.key.c_str(),
                d.metric.c_str(), d.baseline, d.candidate, d.factor,
                d.factor > 1.0 ? "slower" : "of baseline");
        }
        out += line;
    }
    if (deltas.empty())
        out += "  (nothing to compare)\n";
    return out;
}

} // namespace harness
} // namespace carve
