/**
 * @file
 * JSON renderer for the unified metrics registry: the flat
 * (dotted name -> value) representation embedded in schema-v2 sweep
 * results, and its inverse for baseline comparison. Kept in the
 * harness so the simulator core stays free of serialization concerns.
 */

#ifndef CARVE_HARNESS_STATS_JSON_HH
#define CARVE_HARNESS_STATS_JSON_HH

#include <vector>

#include "common/stats.hh"
#include "harness/json.hh"

namespace carve {
namespace harness {

/**
 * Render a flattened stat tree as one JSON object whose keys are the
 * dotted stat names in sorted order (byte-stable). Integral stats
 * serialize as JSON integers, derived ratios as doubles.
 */
json::Value statTreeToJson(const std::vector<stats::FlatStat> &flat);

/** Render a whole registry (flatten + statTreeToJson). */
json::Value statGroupToJson(const stats::StatGroup &root);

/** Inverse of statTreeToJson. */
std::vector<stats::FlatStat> statTreeFromJson(const json::Value &v);

} // namespace harness
} // namespace carve

#endif // CARVE_HARNESS_STATS_JSON_HH
