/**
 * @file
 * Results-file serialisation and the regression gate.
 *
 * A results file ("carve-sweep-results/v2") holds sweep metadata plus
 * one record per run with the v1 summary statistics top-level and the
 * full flattened stat tree ("stat_tree") alongside. v1 files (no stat
 * tree) still parse. The file is a pure function of (specs, simulator
 * version): no timestamps, wall times, or thread counts — so the same
 * sweep produces byte-identical bytes at any parallelism, and two
 * files diff meaningfully.
 *
 * compareResults() is the regression gate: it matches runs of two
 * files by preset/workload/seed key and flags metric movements beyond
 * a relative tolerance (cycles up == regression, ipc down ==
 * regression), status downgrades, and runs missing from the
 * candidate. When a stat tree is present on both sides it also
 * reports *which* individual stats moved — informational, never
 * gating — so a cycles regression comes annotated with the underlying
 * counters that shifted.
 */

#ifndef CARVE_HARNESS_RESULTS_IO_HH
#define CARVE_HARNESS_RESULTS_IO_HH

#include <string>
#include <vector>

#include "harness/json.hh"
#include "harness/run_spec.hh"

namespace carve {
namespace harness {

/** Schema identifier written into every results file. */
inline constexpr const char *kResultsSchema =
    "carve-sweep-results/v2";

/** Previous schema, still accepted on read (no stat trees). */
inline constexpr const char *kResultsSchemaV1 =
    "carve-sweep-results/v1";

/** Sweep-wide metadata recorded alongside the runs. */
struct SweepMeta
{
    /** Capacity divisor applied to hardware + workloads. */
    unsigned memory_scale = 8;
    /** Trace-length multiplier. */
    double duration = 1.0;
    /** `git describe --always --dirty` of the producing tree. */
    std::string git_version;
    /** Free-form "key=value" config overrides applied to the base. */
    std::vector<std::string> overrides;
    /** Harness telemetry (per-worker load, job wall-time histogram)
     * rendered as a flat object of dotted keys; written as a
     * top-level "harness" member when non-null. Host facts — leave
     * null for byte-reproducible results (see RunSpec::host_stats). */
    json::Value harness;
};

/** Best-effort `git describe --always --dirty`; "unknown" offline. */
std::string gitDescribe();

/** Serialise one run (no wall time — see file comment). */
json::Value resultToJson(const RunResult &r);
/** Inverse of resultToJson (stats subset needed for comparison). */
RunResult resultFromJson(const json::Value &v);

/** Whole-file document for a finished sweep. */
json::Value sweepToJson(const SweepMeta &meta,
                        const std::vector<RunResult> &results);

/** Write @p doc to @p path (fatal on I/O failure). */
void writeResultsFile(const std::string &path,
                      const json::Value &doc);

/** Parse a results file; fatal on I/O, parse or schema mismatch. */
json::Value readResultsFile(const std::string &path);

/** Extract the run records of a parsed results file. */
std::vector<RunResult> resultsFromJson(const json::Value &doc);

/** One metric movement found by compareResults(). */
struct MetricDelta
{
    std::string key;      ///< run key ("preset/workload/seed")
    /** "cycles", "ipc", "status", "missing", or "stat:<dotted name>"
     * for an informational stat-tree movement. */
    std::string metric;
    double baseline = 0.0;
    double candidate = 0.0;
    /** Relative change. For gating metrics, signed so that positive
     * == worse; for "stat:" deltas, signed so that positive ==
     * increased (no direction judgement). */
    double relative = 0.0;
    bool regression = false;  ///< beyond tolerance in the bad direction
    /** True for stat-tree movements: reported for diagnosis, never
     * gating. */
    bool informational = false;
};

/** Outcome of a baseline comparison. */
struct CompareReport
{
    std::vector<MetricDelta> deltas;  ///< regressions first
    unsigned compared_runs = 0;
    /** Stat-tree movements beyond tolerance that were dropped by the
     * per-run cap (largest movements are kept). */
    unsigned suppressed_stats = 0;

    bool
    hasRegression() const
    {
        for (const auto &d : deltas) {
            if (d.regression)
                return true;
        }
        return false;
    }
};

/**
 * Diff @p candidate against @p baseline with relative @p tolerance
 * (0.05 == 5%). Improvements beyond tolerance are reported with
 * regression=false so they are visible but do not gate.
 */
CompareReport compareResults(const std::vector<RunResult> &baseline,
                             const std::vector<RunResult> &candidate,
                             double tolerance);

/** Render a human-readable comparison summary. */
std::string formatCompareReport(const CompareReport &report,
                                double tolerance);

} // namespace harness
} // namespace carve

#endif // CARVE_HARNESS_RESULTS_IO_HH
