#include "harness/run_spec.hh"

#include <cctype>

#include "common/logging.hh"

namespace carve {
namespace harness {

namespace {

std::string
makeKey(const std::string &preset, const std::string &workload,
        std::uint64_t seed)
{
    return preset + "/" + workload + "/s" + std::to_string(seed);
}

/** Lowercase with all non-alphanumerics stripped ("CARVE-HWC" ->
 * "carvehwc") so preset aliases are punctuation-insensitive. */
std::string
canonical(const std::string &s)
{
    std::string out;
    for (const char c : s) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
}

} // namespace

std::string
RunSpec::key() const
{
    return makeKey(presetName(preset), workload.name, opts.seed);
}

std::string
RunResult::key() const
{
    return makeKey(preset, workload, seed);
}

const char *
runStatusName(RunStatus s)
{
    switch (s) {
      case RunStatus::Ok: return "ok";
      case RunStatus::Watchdog: return "watchdog";
      case RunStatus::Failed: return "failed";
    }
    return "?";
}

RunStatus
parseRunStatus(const std::string &s)
{
    if (s == "ok")
        return RunStatus::Ok;
    if (s == "watchdog")
        return RunStatus::Watchdog;
    if (s == "failed")
        return RunStatus::Failed;
    fatal("unknown run status '%s'", s.c_str());
}

std::vector<Preset>
allPresets()
{
    return {Preset::SingleGpu, Preset::NumaGpu,
            Preset::NumaGpuMigration, Preset::NumaGpuReplRO,
            Preset::CarveNoCoherence, Preset::CarveSwc,
            Preset::CarveHwc, Preset::Ideal};
}

Preset
parsePresetName(const std::string &name)
{
    const std::string want = canonical(name);
    for (const Preset p : allPresets()) {
        if (want == canonical(presetName(p)))
            return p;
    }
    // Short aliases for the common command lines.
    if (want == "single" || want == "1gpu")
        return Preset::SingleGpu;
    if (want == "numa")
        return Preset::NumaGpu;
    if (want == "carve")
        return Preset::CarveHwc;

    std::string valid;
    for (const Preset p : allPresets()) {
        if (!valid.empty())
            valid += ", ";
        valid += presetName(p);
    }
    fatal("unknown preset '%s' (valid: %s)", name.c_str(),
          valid.c_str());
}

std::vector<RunSpec>
expandGrid(const std::vector<Preset> &presets,
           const std::vector<WorkloadParams> &workloads,
           const std::vector<std::uint64_t> &seeds,
           const SystemConfig &base, const RunOptions &opts)
{
    std::vector<RunSpec> specs;
    specs.reserve(presets.size() * workloads.size() * seeds.size());
    for (const Preset p : presets) {
        for (const auto &wl : workloads) {
            for (const std::uint64_t seed : seeds) {
                RunSpec s;
                s.preset = p;
                s.workload = wl;
                s.base = base;
                s.opts = opts;
                s.opts.seed = seed;
                specs.push_back(std::move(s));
            }
        }
    }
    return specs;
}

} // namespace harness
} // namespace carve
