#include "harness/results_io.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>
#include <unordered_map>

#include "common/logging.hh"
#include "harness/stats_json.hh"

namespace carve {
namespace harness {

namespace {

std::uint64_t
u64At(const json::Value &v, const char *key)
{
    if (v.at(key).kind() != json::Value::Kind::Int)
        fatal("results: run record member '%s' is missing or not an "
              "integer", key);
    return static_cast<std::uint64_t>(v.at(key).asInt());
}

double
dblAt(const json::Value &v, const char *key)
{
    if (!v.at(key).isNumber())
        fatal("results: run record member '%s' is missing or not a "
              "number", key);
    return v.at(key).asDouble();
}

const std::string &
strAt(const json::Value &v, const char *key)
{
    if (!v.at(key).isString())
        fatal("results: run record member '%s' is missing or not a "
              "string", key);
    return v.at(key).asString();
}

json::Value
trafficToJson(const GpuTraffic &t)
{
    json::Value o{json::Members{}};
    o.set("local_reads", t.local_reads.value());
    o.set("remote_reads", t.remote_reads.value());
    o.set("rdc_hit_reads", t.rdc_hit_reads.value());
    o.set("cpu_reads", t.cpu_reads.value());
    o.set("local_writes", t.local_writes.value());
    o.set("remote_writes", t.remote_writes.value());
    o.set("rdc_hit_writes", t.rdc_hit_writes.value());
    o.set("cpu_writes", t.cpu_writes.value());
    return o;
}

GpuTraffic
trafficFromJson(const json::Value &v)
{
    GpuTraffic t;
    t.local_reads = u64At(v, "local_reads");
    t.remote_reads = u64At(v, "remote_reads");
    t.rdc_hit_reads = u64At(v, "rdc_hit_reads");
    t.cpu_reads = u64At(v, "cpu_reads");
    t.local_writes = u64At(v, "local_writes");
    t.remote_writes = u64At(v, "remote_writes");
    // Absent in results files written before write-back RDC writes
    // were classified separately.
    if (v.has("rdc_hit_writes"))
        t.rdc_hit_writes = u64At(v, "rdc_hit_writes");
    t.cpu_writes = u64At(v, "cpu_writes");
    return t;
}

json::Value
sharingToJson(const SharingBreakdown &s)
{
    json::Value o{json::Members{}};
    o.set("private", s.private_accesses);
    o.set("read_only_shared", s.read_only_shared);
    o.set("read_write_shared", s.read_write_shared);
    return o;
}

SharingBreakdown
sharingFromJson(const json::Value &v)
{
    SharingBreakdown s;
    s.private_accesses = u64At(v, "private");
    s.read_only_shared = u64At(v, "read_only_shared");
    s.read_write_shared = u64At(v, "read_write_shared");
    return s;
}

} // namespace

std::string
gitDescribe()
{
    // Not part of the determinism contract (same tree -> same
    // string); purely provenance for humans reading result files.
    std::FILE *p = popen(
        "git describe --always --dirty 2>/dev/null", "r");
    if (!p)
        return "unknown";
    char buf[128];
    std::string out;
    while (std::fgets(buf, sizeof(buf), p))
        out += buf;
    pclose(p);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    return out.empty() ? "unknown" : out;
}

json::Value
resultToJson(const RunResult &r)
{
    json::Value o{json::Members{}};
    o.set("preset", r.preset);
    o.set("workload", r.workload);
    o.set("seed", r.seed);
    o.set("status", runStatusName(r.status));
    if (!r.error.empty())
        o.set("error", r.error);
    if (r.status == RunStatus::Failed)
        return o;  // no meaningful stats to record

    json::Value stats{json::Members{}};
    const SimResult &s = r.sim;
    stats.set("cycles", s.cycles);
    stats.set("warp_insts", s.warp_insts);
    stats.set("ipc", s.ipc());
    stats.set("frac_remote", s.frac_remote);
    stats.set("traffic", trafficToJson(s.traffic));
    stats.set("gpu_gpu_bytes", s.gpu_gpu_bytes);
    stats.set("cpu_gpu_bytes", s.cpu_gpu_bytes);
    stats.set("rdc_hits", s.rdc_hits);
    stats.set("rdc_misses", s.rdc_misses);
    stats.set("hw_invalidates", s.hw_invalidates);
    stats.set("migrations", s.migrations);
    stats.set("replications", s.replications);
    stats.set("collapses", s.collapses);
    stats.set("um_migrations", s.um_migrations);
    stats.set("capacity_pressure", s.capacity_pressure);
    stats.set("l2_hit_rate", s.l2_hit_rate);
    stats.set("page_sharing", sharingToJson(s.page_sharing));
    stats.set("line_sharing", sharingToJson(s.line_sharing));
    stats.set("shared_page_footprint", s.shared_page_footprint);
    stats.set("shared_line_footprint", s.shared_line_footprint);
    stats.set("total_page_footprint", s.total_page_footprint);
    o.set("stats", std::move(stats));
    // v2: the whole flattened registry, after the v1 summary block so
    // v1-era readers that index fields positionally keep working.
    if (!s.stat_tree.empty())
        o.set("stat_tree", statTreeToJson(s.stat_tree));
    return o;
}

RunResult
resultFromJson(const json::Value &v)
{
    if (!v.isObject())
        fatal("results: run record is not a JSON object");
    RunResult r;
    r.preset = strAt(v, "preset");
    r.workload = strAt(v, "workload");
    r.seed = u64At(v, "seed");
    r.status = parseRunStatus(strAt(v, "status"));
    if (v.has("error"))
        r.error = strAt(v, "error");
    if (!v.has("stats"))
        return r;

    const json::Value &s = v.at("stats");
    if (!s.isObject())
        fatal("results: run record member 'stats' is not an object");
    r.sim.workload = r.workload;
    r.sim.preset = r.preset;
    r.sim.cycles = u64At(s, "cycles");
    r.sim.warp_insts = u64At(s, "warp_insts");
    r.sim.frac_remote = dblAt(s, "frac_remote");
    if (!s.at("traffic").isObject())
        fatal("results: run record member 'traffic' is not an object");
    r.sim.traffic = trafficFromJson(s.at("traffic"));
    r.sim.gpu_gpu_bytes = u64At(s, "gpu_gpu_bytes");
    r.sim.cpu_gpu_bytes = u64At(s, "cpu_gpu_bytes");
    r.sim.rdc_hits = u64At(s, "rdc_hits");
    r.sim.rdc_misses = u64At(s, "rdc_misses");
    r.sim.hw_invalidates = u64At(s, "hw_invalidates");
    r.sim.migrations = u64At(s, "migrations");
    r.sim.replications = u64At(s, "replications");
    r.sim.collapses = u64At(s, "collapses");
    r.sim.um_migrations = u64At(s, "um_migrations");
    r.sim.capacity_pressure = dblAt(s, "capacity_pressure");
    r.sim.l2_hit_rate = dblAt(s, "l2_hit_rate");
    r.sim.page_sharing = sharingFromJson(s.at("page_sharing"));
    r.sim.line_sharing = sharingFromJson(s.at("line_sharing"));
    r.sim.shared_page_footprint = u64At(s, "shared_page_footprint");
    r.sim.shared_line_footprint = u64At(s, "shared_line_footprint");
    r.sim.total_page_footprint = u64At(s, "total_page_footprint");
    r.sim.watchdog_tripped = r.status == RunStatus::Watchdog;
    if (v.has("stat_tree"))
        r.sim.stat_tree = statTreeFromJson(v.at("stat_tree"));
    return r;
}

json::Value
sweepToJson(const SweepMeta &meta,
            const std::vector<RunResult> &results)
{
    json::Value cfg{json::Members{}};
    cfg.set("memory_scale", meta.memory_scale);
    cfg.set("duration", meta.duration);
    if (!meta.overrides.empty()) {
        json::Value ov{json::Array{}};
        for (const auto &o : meta.overrides)
            ov.push(o);
        cfg.set("overrides", std::move(ov));
    }

    json::Value runs{json::Array{}};
    for (const auto &r : results)
        runs.push(resultToJson(r));

    json::Value doc{json::Members{}};
    doc.set("schema", kResultsSchema);
    doc.set("generator", "carve-sweep");
    doc.set("git", meta.git_version.empty() ? gitDescribe()
                                            : meta.git_version);
    doc.set("config", std::move(cfg));
    if (!meta.harness.isNull())
        doc.set("harness", meta.harness);
    doc.set("runs", std::move(runs));
    return doc;
}

void
writeResultsFile(const std::string &path, const json::Value &doc)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    os << doc.dump();
    if (!os.good())
        fatal("write to '%s' failed", path.c_str());
}

json::Value
readResultsFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open results file '%s'", path.c_str());
    std::ostringstream ss;
    ss << is.rdbuf();
    json::Value doc = json::parse(ss.str(), path);
    const std::string schema =
        doc.isObject() && doc.has("schema")
            ? doc.at("schema").asString()
            : std::string();
    // v1 files (no stat trees) remain readable; comparison simply
    // has no per-stat annotations for them.
    if (schema != kResultsSchema && schema != kResultsSchemaV1) {
        fatal("'%s' is not a %s file", path.c_str(),
              kResultsSchema);
    }
    return doc;
}

std::vector<RunResult>
resultsFromJson(const json::Value &doc)
{
    if (!doc.at("runs").isArray())
        fatal("results: document has no 'runs' array");
    std::vector<RunResult> out;
    for (const auto &r : doc.at("runs").asArray())
        out.push_back(resultFromJson(r));
    return out;
}

CompareReport
compareResults(const std::vector<RunResult> &baseline,
               const std::vector<RunResult> &candidate,
               double tolerance)
{
    std::unordered_map<std::string, const RunResult *> cand;
    for (const auto &r : candidate)
        cand.emplace(r.key(), &r);

    CompareReport rep;
    const auto add = [&](MetricDelta d) {
        rep.deltas.push_back(std::move(d));
    };

    for (const auto &base : baseline) {
        const auto it = cand.find(base.key());
        if (it == cand.end()) {
            MetricDelta d;
            d.key = base.key();
            d.metric = "missing";
            d.regression = true;
            add(std::move(d));
            continue;
        }
        const RunResult &c = *it->second;
        ++rep.compared_runs;

        if (c.status != base.status) {
            MetricDelta d;
            d.key = base.key();
            d.metric = "status";
            // Any change away from a clean baseline gates; a
            // previously-broken run turning Ok is an improvement.
            d.regression = base.status == RunStatus::Ok;
            add(std::move(d));
            if (base.status != RunStatus::Ok || !c.ok())
                continue;
        }
        if (base.status != RunStatus::Ok)
            continue;  // no trustworthy numbers to compare

        // (metric, baseline, candidate, higher_is_worse)
        const struct
        {
            const char *name;
            double b, c;
            bool higher_is_worse;
        } metrics[] = {
            {"cycles", static_cast<double>(base.sim.cycles),
             static_cast<double>(c.sim.cycles), true},
            {"ipc", base.sim.ipc(), c.sim.ipc(), false},
        };
        for (const auto &m : metrics) {
            if (m.b == 0.0)
                continue;
            const double rel = (m.c - m.b) / m.b;
            const double worse = m.higher_is_worse ? rel : -rel;
            if (std::abs(rel) <= tolerance)
                continue;
            MetricDelta d;
            d.key = base.key();
            d.metric = m.name;
            d.baseline = m.b;
            d.candidate = m.c;
            d.relative = worse;
            d.regression = worse > 0.0;
            add(std::move(d));
        }

        // Name the individual stats that moved (v2 files only).
        // Informational: the gate stays on cycles/ipc/status, but a
        // failure now says *which* counters shifted underneath.
        if (base.sim.stat_tree.empty() || c.sim.stat_tree.empty())
            continue;
        std::vector<MetricDelta> stat_deltas;
        const auto &bt = base.sim.stat_tree;
        const auto &ct = c.sim.stat_tree;
        std::size_t bi = 0, ci = 0;
        // Both trees are sorted by name; merge-walk them. A stat
        // present on only one side is only notable when nonzero.
        while (bi < bt.size() || ci < ct.size()) {
            double bv = 0.0, cv = 0.0;
            std::string_view name;
            if (ci >= ct.size() ||
                (bi < bt.size() && bt[bi].name < ct[ci].name)) {
                name = bt[bi].name;
                bv = bt[bi].asDouble();
                ++bi;
            } else if (bi >= bt.size() ||
                       ct[ci].name < bt[bi].name) {
                name = ct[ci].name;
                cv = ct[ci].asDouble();
                ++ci;
            } else {
                name = bt[bi].name;
                bv = bt[bi].asDouble();
                cv = ct[ci].asDouble();
                ++bi;
                ++ci;
            }
            if (bv == 0.0) {
                if (cv == 0.0)
                    continue;
                // Appeared from zero: report with relative pinned to
                // the candidate sign so sorting by magnitude works.
                MetricDelta d;
                d.key = base.key();
                d.metric = "stat:" + std::string(name);
                d.candidate = cv;
                d.relative = cv > 0.0 ? 1.0 : -1.0;
                d.informational = true;
                stat_deltas.push_back(std::move(d));
                continue;
            }
            const double rel = (cv - bv) / bv;
            if (std::abs(rel) <= tolerance)
                continue;
            MetricDelta d;
            d.key = base.key();
            d.metric = "stat:" + std::string(name);
            d.baseline = bv;
            d.candidate = cv;
            d.relative = rel;
            d.informational = true;
            stat_deltas.push_back(std::move(d));
        }
        // Keep only the largest movements per run; count the rest so
        // the report can say they exist.
        constexpr std::size_t kMaxStatDeltasPerRun = 8;
        std::stable_sort(
            stat_deltas.begin(), stat_deltas.end(),
            [](const MetricDelta &a, const MetricDelta &b) {
                return std::abs(a.relative) > std::abs(b.relative);
            });
        if (stat_deltas.size() > kMaxStatDeltasPerRun) {
            rep.suppressed_stats += static_cast<unsigned>(
                stat_deltas.size() - kMaxStatDeltasPerRun);
            stat_deltas.resize(kMaxStatDeltasPerRun);
        }
        for (auto &d : stat_deltas)
            add(std::move(d));
    }

    std::stable_sort(rep.deltas.begin(), rep.deltas.end(),
                     [](const MetricDelta &a, const MetricDelta &b) {
                         return a.regression > b.regression;
                     });
    return rep;
}

std::string
formatCompareReport(const CompareReport &report, double tolerance)
{
    const auto pct = [](double v) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", v * 100.0);
        return std::string(buf);
    };
    std::ostringstream os;
    unsigned regressions = 0;
    for (const auto &d : report.deltas)
        regressions += d.regression;

    os << "baseline comparison: " << report.compared_runs
       << " runs compared, tolerance " << pct(tolerance) << "%\n";
    for (const auto &d : report.deltas) {
        if (d.informational) {
            // Stat-tree movement: no worse/better judgement, just
            // name the counter and show baseline vs observed.
            os << "    stat " << d.key << " "
               << d.metric.substr(5) << ": "
               << json::formatDouble(d.baseline) << " -> "
               << json::formatDouble(d.candidate) << " ("
               << (d.relative > 0.0 ? "+" : "-")
               << pct(std::abs(d.relative)) << "%)\n";
            continue;
        }
        os << (d.regression ? "  REGRESSION " : "  improvement ")
           << d.key << " " << d.metric;
        if (d.metric == "missing") {
            os << " (run absent from candidate)\n";
            continue;
        }
        if (d.metric == "status") {
            os << " (status changed)\n";
            continue;
        }
        os << ": " << json::formatDouble(d.baseline) << " -> "
           << json::formatDouble(d.candidate) << " (";
        if (d.relative > 0.0)
            os << "+" << pct(d.relative) << "% worse)\n";
        else
            os << pct(-d.relative) << "% better)\n";
    }
    if (report.suppressed_stats > 0) {
        os << "    (" << report.suppressed_stats
           << " smaller stat movement(s) not shown)\n";
    }
    os << (regressions
               ? "FAIL: " + std::to_string(regressions) +
                     " regression(s) beyond tolerance\n"
               : std::string("PASS: no regressions beyond "
                             "tolerance\n"));
    return os.str();
}

} // namespace harness
} // namespace carve
