#include "harness/fuzz.hh"

#include <cstddef>
#include <numeric>

#include "common/rng.hh"
#include "workloads/suite.hh"

namespace carve {
namespace harness {

namespace {

/**
 * One fuzzable knob: a registry key and the values worth mixing.
 * Keys that makePreset() resets (rdc.enabled, rdc.coherence, the
 * numa policies) are excluded — overriding them on the base config
 * would be silently ineffective. rdc.size values are for the default
 * memory_scale of 8 (paper's 2 GiB carve-out scales to 256 MiB).
 */
struct Knob
{
    const char *key;
    std::vector<const char *> values;
};

const std::vector<Knob> &
knobTable()
{
    static const std::vector<Knob> knobs = {
        {"rdc.write_policy", {"writethrough", "writeback"}},
        {"rdc.hit_predictor", {"false", "true"}},
        {"rdc.size", {"67108864", "134217728", "268435456"}},
        {"link.gpu_gpu_bw", {"16", "32", "64"}},
        {"dram.channels", {"2", "4"}},
        {"numa.charge_bulk_transfers", {"false", "true"}},
    };
    return knobs;
}

} // namespace

std::string
FuzzSpec::describe() const
{
    std::string s = spec.key();
    for (const std::string &o : overrides)
        s += " " + o;
    return s;
}

std::vector<FuzzSpec>
makeFuzzSpecs(const FuzzOptions &opt)
{
    Rng rng(opt.seed);
    const std::vector<Preset> presets = allPresets();
    const std::vector<std::string> names = suiteNames();
    SuiteOptions suite_opt;
    suite_opt.memory_scale = opt.memory_scale;
    suite_opt.duration = opt.duration;
    const SystemConfig scaled_base =
        SystemConfig{}.scaled(opt.memory_scale);
    const std::vector<Knob> &knobs = knobTable();

    std::vector<FuzzSpec> out;
    out.reserve(opt.count);
    for (unsigned i = 0; i < opt.count; ++i) {
        FuzzSpec f;
        f.spec.preset = presets[rng.below(presets.size())];
        f.spec.workload =
            suiteWorkload(names[rng.below(names.size())], suite_opt);
        f.spec.base = scaled_base;
        f.spec.opts.audit = true;
        f.spec.opts.profile_lines = false;
        f.spec.opts.max_cycles = opt.max_cycles;
        f.spec.opts.max_wall_seconds = opt.max_wall_seconds;
        f.spec.opts.seed = rng.below(1u << 16) + 1;

        // 0..3 distinct knobs via a partial Fisher-Yates draw.
        std::vector<std::size_t> order(knobs.size());
        std::iota(order.begin(), order.end(), std::size_t{0});
        const std::size_t n_over = rng.below(4);
        for (std::size_t k = 0; k < n_over; ++k) {
            const std::size_t j =
                k + rng.below(order.size() - k);
            std::swap(order[k], order[j]);
            const Knob &knob = knobs[order[k]];
            const char *value =
                knob.values[rng.below(knob.values.size())];
            f.spec.base.applyOverride(knob.key, value);
            f.overrides.push_back(std::string(knob.key) + "=" +
                                  value);
        }
        out.push_back(std::move(f));
    }
    return out;
}

} // namespace harness
} // namespace carve
