#include "harness/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace carve {
namespace json {

namespace {

const Value null_value{};

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

std::string
formatDouble(double v)
{
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; null is the conventional stand-in.
        return "null";
    }
    // Shortest representation that round-trips exactly: deterministic
    // across runs and thread counts, unlike printf("%g").
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    std::string s(buf, res.ptr);
    // Ensure the token stays a double on re-parse ("1" -> "1.0").
    if (s.find_first_of(".eE") == std::string::npos)
        s += ".0";
    return s;
}

bool
Value::asBool() const
{
    carve_assert(kind_ == Kind::Bool);
    return bool_;
}

std::int64_t
Value::asInt() const
{
    carve_assert(kind_ == Kind::Int);
    return int_;
}

double
Value::asDouble() const
{
    carve_assert(isNumber());
    return kind_ == Kind::Int ? static_cast<double>(int_) : dbl_;
}

const std::string &
Value::asString() const
{
    carve_assert(kind_ == Kind::String);
    return str_;
}

const Array &
Value::asArray() const
{
    carve_assert(kind_ == Kind::Array);
    return arr_;
}

const Members &
Value::asObject() const
{
    carve_assert(kind_ == Kind::Object);
    return obj_;
}

const Value &
Value::at(const std::string &key) const
{
    if (kind_ == Kind::Object) {
        for (const auto &[k, v] : obj_) {
            if (k == key)
                return v;
        }
    }
    return null_value;
}

bool
Value::has(const std::string &key) const
{
    return kind_ == Kind::Object && !at(key).isNull();
}

void
Value::set(std::string key, Value v)
{
    carve_assert(kind_ == Kind::Object || kind_ == Kind::Null);
    kind_ = Kind::Object;
    obj_.emplace_back(std::move(key), std::move(v));
}

void
Value::push(Value v)
{
    carve_assert(kind_ == Kind::Array || kind_ == Kind::Null);
    kind_ = Kind::Array;
    arr_.push_back(std::move(v));
}

void
Value::dumpTo(std::string &out, unsigned indent, unsigned depth) const
{
    const auto newline = [&](unsigned d) {
        if (indent == 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * d, ' ');
    };

    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Int: {
        char buf[24];
        const auto res =
            std::to_chars(buf, buf + sizeof(buf), int_);
        out.append(buf, res.ptr);
        break;
      }
      case Kind::Double:
        out += formatDouble(dbl_);
        break;
      case Kind::String:
        appendEscaped(out, str_);
        break;
      case Kind::Array:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      case Kind::Object:
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            appendEscaped(out, obj_[i].first);
            out += indent ? ": " : ":";
            obj_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
Value::dump(unsigned indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent)
        out += '\n';
    return out;
}

namespace {

/** Recursive-descent parser over the whole input string. */
class Parser
{
  public:
    Parser(const std::string &text, const std::string &what)
        : text_(text), what_(what)
    {
    }

    Value
    document()
    {
        Value v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *why)
    {
        fatal("%s: JSON parse error at offset %zu: %s",
              what_.c_str(), pos_, why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = 0;
        while (lit[n])
            ++n;
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Value
    value()
    {
        skipWs();
        const char c = peek();
        switch (c) {
          case '{': return object();
          case '[': return array();
          case '"': return Value(string());
          case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            return Value(true);
          case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            return Value(false);
          case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            return Value(nullptr);
          default:
            return number();
        }
    }

    Value
    object()
    {
        expect('{');
        Members members;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return Value(std::move(members));
        }
        while (true) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            members.emplace_back(std::move(key), value());
            skipWs();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                return Value(std::move(members));
            }
            fail("expected ',' or '}'");
        }
    }

    Value
    array()
    {
        expect('[');
        Array elems;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return Value(std::move(elems));
        }
        while (true) {
            elems.push_back(value());
            skipWs();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                return Value(std::move(elems));
            }
            fail("expected ',' or ']'");
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            c = text_[pos_++];
            switch (c) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("bad \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // Results files only ever contain ASCII; encode the
                // BMP code point as UTF-8 for robustness anyway.
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(
                        0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                fail("bad escape character");
            }
        }
    }

    Value
    number()
    {
        const std::size_t start = pos_;
        bool is_double = false;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                is_double = true;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            fail("expected a value");
        const char *first = text_.data() + start;
        const char *last = text_.data() + pos_;
        if (!is_double) {
            std::int64_t iv = 0;
            const auto res = std::from_chars(first, last, iv);
            if (res.ec == std::errc() && res.ptr == last)
                return Value(iv);
        }
        double dv = 0.0;
        const auto res = std::from_chars(first, last, dv);
        if (res.ec != std::errc() || res.ptr != last)
            fail("malformed number");
        return Value(dv);
    }

    const std::string &text_;
    const std::string &what_;
    std::size_t pos_ = 0;
};

} // namespace

Value
parse(const std::string &text, const std::string &what)
{
    Parser p(text, what);
    return p.document();
}

} // namespace json
} // namespace carve
