/**
 * @file
 * The unit of work of the experiment harness: one RunSpec describes
 * one independent simulation (preset x workload x config override x
 * seed); one RunResult records its outcome. A sweep is a vector of
 * RunSpecs; results keep spec order regardless of execution order so
 * parallel sweeps serialise byte-identically to serial ones.
 */

#ifndef CARVE_HARNESS_RUN_SPEC_HH
#define CARVE_HARNESS_RUN_SPEC_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "core/report.hh"
#include "core/simulator.hh"
#include "core/system_preset.hh"
#include "workloads/synthetic.hh"

namespace carve {
namespace harness {

/** Full description of one independent simulation run. */
struct RunSpec
{
    Preset preset = Preset::NumaGpu;
    WorkloadParams workload;
    /** Base configuration the preset is derived from (already scaled;
     * carries any sweep-point override such as a link bandwidth). */
    SystemConfig base;
    RunOptions opts;
    /** Append host-cost stats (sim.wall_seconds, sim.peak_rss_bytes)
     * to the run's stat tree. They are the one sanctioned exception
     * to results being a pure function of the specs; byte-compare
     * workflows (CI determinism checks) turn this off. */
    bool host_stats = true;

    /** "preset/workload/seed" — unique within a well-formed sweep. */
    std::string key() const;
};

/** Outcome class of one run. */
enum class RunStatus : std::uint8_t {
    Ok,        ///< completed normally; result is full
    Watchdog,  ///< cycle/wall watchdog tripped; result is partial
    Failed,    ///< panic()/fatal()/exception; result is empty
};

/** Display name of a RunStatus ("ok", "watchdog", "failed"). */
const char *runStatusName(RunStatus s);
/** Inverse of runStatusName() (fatal on unknown name). */
RunStatus parseRunStatus(const std::string &s);

/** Outcome of one executed RunSpec. */
struct RunResult
{
    /** Identity (copied from the spec so results are self-contained). */
    std::string preset;
    std::string workload;
    std::uint64_t seed = 1;

    RunStatus status = RunStatus::Ok;
    /** Diagnostic for Failed/Watchdog runs. */
    std::string error;
    /** Collected statistics (partial for Watchdog, empty for Failed). */
    SimResult sim;
    /** Host execution time. Deliberately NOT serialised into results
     * files — those must be a pure function of the specs and the
     * simulator version (see results_io.hh). */
    double wall_seconds = 0.0;

    bool ok() const { return status == RunStatus::Ok; }
    std::string key() const;
};

/**
 * Parse a preset name: either the exact figure-legend form from
 * presetName() or a forgiving lowercase alias with punctuation
 * ignored ("carvehwc", "carve-hwc", "numa-gpu"...). fatal() listing
 * the valid names when @p name matches nothing.
 */
Preset parsePresetName(const std::string &name);

/** All presets, in declaration order (including SingleGpu). */
std::vector<Preset> allPresets();

/**
 * Expand the cross product presets x workloads x seeds into specs in
 * deterministic order (preset-major, then workload, then seed), all
 * sharing @p base and @p opts with per-spec seed applied.
 */
std::vector<RunSpec> expandGrid(const std::vector<Preset> &presets,
                                const std::vector<WorkloadParams> &workloads,
                                const std::vector<std::uint64_t> &seeds,
                                const SystemConfig &base,
                                const RunOptions &opts);

} // namespace harness
} // namespace carve

#endif // CARVE_HARNESS_RUN_SPEC_HH
