/**
 * @file
 * Minimal JSON document model for the experiment harness: enough to
 * write sweep results deterministically and read them back for
 * baseline comparison. Not a general-purpose library — no comments,
 * no \u escapes beyond pass-through, objects keep insertion order so
 * serialisation is byte-stable.
 */

#ifndef CARVE_HARNESS_JSON_HH
#define CARVE_HARNESS_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace carve {
namespace json {

class Value;

/** Insertion-ordered key/value list (JSON objects). */
using Members = std::vector<std::pair<std::string, Value>>;
using Array = std::vector<Value>;

/** One JSON value of any type. */
class Value
{
  public:
    enum class Kind : std::uint8_t {
        Null,
        Bool,
        Int,      ///< exact 64-bit integers (counters)
        Double,   ///< everything else numeric
        String,
        Array,
        Object,
    };

    Value() : kind_(Kind::Null) {}
    Value(std::nullptr_t) : kind_(Kind::Null) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(std::int64_t v) : kind_(Kind::Int), int_(v) {}
    Value(std::uint64_t v)
        : kind_(Kind::Int), int_(static_cast<std::int64_t>(v))
    {
    }
    Value(int v) : kind_(Kind::Int), int_(v) {}
    Value(unsigned v) : kind_(Kind::Int), int_(v) {}
    Value(double v) : kind_(Kind::Double), dbl_(v) {}
    Value(const char *s) : kind_(Kind::String), str_(s) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Value(Array a) : kind_(Kind::Array), arr_(std::move(a)) {}
    Value(Members m) : kind_(Kind::Object), obj_(std::move(m)) {}

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }
    bool isString() const { return kind_ == Kind::String; }

    /** Typed accessors; wrong-kind access is a caller bug (asserted). */
    bool asBool() const;
    std::int64_t asInt() const;
    double asDouble() const;   ///< Int converts implicitly
    const std::string &asString() const;
    const Array &asArray() const;
    const Members &asObject() const;

    /** Object member by key, or null Value when absent/non-object. */
    const Value &at(const std::string &key) const;
    /** True when this is an object containing @p key. */
    bool has(const std::string &key) const;

    /** Append a member (object) — keeps insertion order. */
    void set(std::string key, Value v);
    /** Append an element (array). */
    void push(Value v);

    /**
     * Serialise. @p indent > 0 pretty-prints with that many spaces;
     * 0 emits compact one-line output. Output is deterministic:
     * identical documents always produce identical bytes.
     */
    std::string dump(unsigned indent = 2) const;

  private:
    void dumpTo(std::string &out, unsigned indent,
                unsigned depth) const;

    Kind kind_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double dbl_ = 0.0;
    std::string str_;
    Array arr_;
    Members obj_;
};

/**
 * Parse a JSON document. fatal() on malformed input, with @p what
 * naming the source (file name) in the message.
 */
Value parse(const std::string &text, const std::string &what = "json");

/** Render a double exactly as dump() does (shortest round-trip form). */
std::string formatDouble(double v);

} // namespace json
} // namespace carve

#endif // CARVE_HARNESS_JSON_HH
