/**
 * @file
 * Parallel sweep executor: runs a vector of independent RunSpecs on a
 * fixed-size thread pool with per-run failure isolation.
 *
 * Guarantees:
 *  - results[i] always corresponds to specs[i] (deterministic
 *    ordering independent of thread count or scheduling), so a sweep
 *    serialises byte-identically whether run on 1 or N threads;
 *  - a run that panic()s, fatal()s, throws, or trips its watchdog is
 *    reported as Failed/Watchdog in its own RunResult while sibling
 *    runs complete normally;
 *  - each simulation is a self-contained MultiGpuSystem instance —
 *    nothing in src/common (logging aside, which is thread-safe) is
 *    shared mutable state across runs.
 */

#ifndef CARVE_HARNESS_SWEEP_HH
#define CARVE_HARNESS_SWEEP_HH

#include <functional>
#include <vector>

#include "harness/run_spec.hh"
#include "telemetry/histogram.hh"

namespace carve {
namespace harness {

/**
 * Harness-side telemetry captured by runSweep: per-worker load (the
 * ThreadPool WorkerState fields) and the per-job wall-time
 * distribution. Workers and wall times are host facts, so this rides
 * results files only under host_stats (CI byte-compare workflows
 * exclude it exactly like sim.wall_seconds).
 */
struct SweepTelemetry
{
    struct Worker
    {
        std::uint64_t jobs_run = 0;  ///< runs executed by this worker
        int numa_node = -1;          ///< host node bound to, or -1
    };
    std::vector<Worker> workers;
    /** Wall time per run, in microseconds. */
    telemetry::Histogram job_wall_us;
};

/** Sweep execution knobs. */
struct SweepOptions
{
    /** Worker threads; 0 == all hardware threads, 1 == serial. */
    unsigned threads = 1;
    /** Called after each run completes (from the finishing worker
     * thread; must be thread-safe). (done, total, result). */
    std::function<void(std::size_t, std::size_t, const RunResult &)>
        on_progress;
    /** When set, runSweep fills in worker load and the job wall-time
     * histogram after the sweep completes. */
    SweepTelemetry *telemetry = nullptr;
};

/** Execute one spec in-process with failure isolation. */
RunResult executeRun(const RunSpec &spec);

/**
 * Execute all @p specs and return their results in spec order.
 * Never throws for per-run failures; see RunResult::status.
 */
std::vector<RunResult> runSweep(const std::vector<RunSpec> &specs,
                                const SweepOptions &opt = {});

} // namespace harness
} // namespace carve

#endif // CARVE_HARNESS_SWEEP_HH
