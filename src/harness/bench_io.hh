/**
 * @file
 * carve-bench report model and serialisation ("carve-bench/v1").
 *
 * A bench file records engine-throughput microbenchmarks (events/sec
 * per event-queue engine) and end-to-end preset x workload cells
 * (host seconds, events/sec, warp-insts/sec). It uses the same JSON
 * document model as the sweep results files, so any consumer of the
 * harness reader can parse it; unlike sweep results it deliberately
 * contains wall-clock measurements, so two bench files from different
 * hosts are comparable only by ratio — which is exactly how
 * compareBench() gates (relative slowdown factor, not absolute
 * seconds).
 */

#ifndef CARVE_HARNESS_BENCH_IO_HH
#define CARVE_HARNESS_BENCH_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/json.hh"

namespace carve {
namespace harness {

/** Schema identifier written into every bench file. */
inline constexpr const char *kBenchSchema = "carve-bench/v1";

/** One event-queue microbenchmark measurement. */
struct MicroResult
{
    std::string name;          ///< "eventq/calendar", "eventq/heap"
    std::uint64_t events = 0;  ///< events fired
    double seconds = 0.0;      ///< host wall time
    double events_per_sec = 0.0;
};

/** One end-to-end preset x workload bench cell. */
struct CellResult
{
    std::string preset;
    std::string workload;
    std::uint64_t cycles = 0;      ///< simulated cycles
    std::uint64_t events = 0;      ///< engine events executed
    std::uint64_t warp_insts = 0;  ///< warp instructions issued
    /** Heap allocations during the cell (carve-bench counts them via
     * a replacement global operator new in its own TU; 0 elsewhere). */
    std::uint64_t allocations = 0;
    std::uint64_t peak_rss_bytes = 0;  ///< process peak RSS after run
    double host_seconds = 0.0;
    double events_per_sec = 0.0;
    double warp_insts_per_sec = 0.0;

    std::string
    key() const
    {
        return preset + "/" + workload;
    }
};

/** Whole carve-bench report. */
struct BenchReport
{
    std::string date;         ///< ISO "YYYY-MM-DD" of the run
    std::string git_version;  ///< `git describe` of the tree
    std::string engine;       ///< engine the e2e cells ran under
    unsigned memory_scale = 8;
    double duration = 0.2;
    std::vector<MicroResult> micro;
    std::vector<CellResult> cells;
};

/** Serialise a report (deterministic member order). */
json::Value benchToJson(const BenchReport &r);

/** Inverse of benchToJson(); fatal on missing required members. */
BenchReport benchFromJson(const json::Value &doc);

/** Read + parse + schema-check a bench file (fatal on mismatch). */
BenchReport readBenchFile(const std::string &path);

/** One slowdown found by compareBench(). */
struct BenchDelta
{
    std::string key;     ///< "eventq/calendar" or "preset/workload"
    std::string metric;  ///< "events_per_sec", "host_seconds", ...
    double baseline = 0.0;
    double candidate = 0.0;
    /** Slowdown factor, >1 == candidate is slower. */
    double factor = 1.0;
    bool regression = false;  ///< factor exceeded the gate
};

/**
 * Diff @p candidate against @p baseline: a micro entry is gated on
 * its events/sec ratio, a cell on its host-seconds ratio. Only a
 * slowdown beyond @p fail_factor (e.g. 2.0 == half the speed) is a
 * regression — the gate is deliberately loose because absolute host
 * speed varies by machine and load. Entries present on only one side
 * are reported with factor 0 and never gate.
 */
std::vector<BenchDelta> compareBench(const BenchReport &baseline,
                                     const BenchReport &candidate,
                                     double fail_factor);

/** True when any delta gates. */
bool benchHasRegression(const std::vector<BenchDelta> &deltas);

/** Render a human-readable comparison summary. */
std::string formatBenchCompare(const std::vector<BenchDelta> &deltas,
                               double fail_factor);

} // namespace harness
} // namespace carve

#endif // CARVE_HARNESS_BENCH_IO_HH
