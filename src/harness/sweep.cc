#include "harness/sweep.hh"

#include <atomic>
#include <chrono>
#include <exception>

#include "common/logging.hh"
#include "harness/thread_pool.hh"

namespace carve {
namespace harness {

RunResult
executeRun(const RunSpec &spec)
{
    RunResult res;
    res.preset = presetName(spec.preset);
    res.workload = spec.workload.name;
    res.seed = spec.opts.seed;

    const auto start = std::chrono::steady_clock::now();

    // Capture panic()/fatal() on this thread for the duration of the
    // run: a bad configuration or a simulator invariant violation
    // becomes a Failed result instead of taking the process down.
    SimJob job =
        makePresetJob(spec.preset, spec.base, spec.workload,
                      spec.opts);
    job.options.tolerate_watchdog = true;
    try {
        ScopedErrorCapture capture;
        res.sim = run(job);
        res.status = res.sim.watchdog_tripped ? RunStatus::Watchdog
                                              : RunStatus::Ok;
        if (res.status == RunStatus::Watchdog)
            res.error = "watchdog tripped (max_cycles/max_wall)";
    } catch (const SimAbortError &e) {
        res.status = RunStatus::Failed;
        res.error = e.what();
    } catch (const std::exception &e) {
        res.status = RunStatus::Failed;
        res.error = std::string("exception: ") + e.what();
    }

    res.wall_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    return res;
}

std::vector<RunResult>
runSweep(const std::vector<RunSpec> &specs, const SweepOptions &opt)
{
    std::vector<RunResult> results(specs.size());
    if (specs.empty())
        return results;

    std::atomic<std::size_t> done{0};
    const auto run_one = [&](std::size_t i) {
        // Index-addressed writes keep result order equal to spec
        // order no matter which worker finishes when.
        results[i] = executeRun(specs[i]);
        const std::size_t d =
            done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (opt.on_progress)
            opt.on_progress(d, specs.size(), results[i]);
    };

    parallelFor(specs.size(), opt.threads == 0
                    ? ThreadPool::hardwareThreads()
                    : opt.threads,
                run_one);
    return results;
}

} // namespace harness
} // namespace carve
