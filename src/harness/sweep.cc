#include "harness/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include <sys/resource.h>

#include "common/logging.hh"
#include "harness/thread_pool.hh"

namespace carve {
namespace harness {

namespace {

/** Peak resident set size of this process, in bytes. */
std::uint64_t
peakRssBytes()
{
    struct rusage ru = {};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // Linux reports ru_maxrss in kilobytes.
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

/** Insert @p st into @p tree keeping it sorted by dotted name. */
void
insertSorted(std::vector<stats::FlatStat> &tree, stats::FlatStat st)
{
    const auto pos = std::lower_bound(
        tree.begin(), tree.end(), st,
        [](const stats::FlatStat &a, const stats::FlatStat &b) {
            return a.name < b.name;
        });
    tree.insert(pos, std::move(st));
}

} // namespace

RunResult
executeRun(const RunSpec &spec)
{
    RunResult res;
    res.preset = presetName(spec.preset);
    res.workload = spec.workload.name;
    res.seed = spec.opts.seed;

    const auto start = std::chrono::steady_clock::now();

    // Capture panic()/fatal() on this thread for the duration of the
    // run: a bad configuration or a simulator invariant violation
    // becomes a Failed result instead of taking the process down.
    SimJob job =
        makePresetJob(spec.preset, spec.base, spec.workload,
                      spec.opts);
    job.options.tolerate_watchdog = true;
    if (job.options.trace.enabled &&
        job.options.trace.out_path.empty() &&
        !job.options.trace.out_dir.empty()) {
        // Per-run file in the trace directory, named by the run key
        // with path separators flattened.
        std::string name = spec.key();
        std::replace(name.begin(), name.end(), '/', '_');
        job.options.trace.out_path =
            job.options.trace.out_dir + "/" + name + ".trace.json";
    }
    try {
        ScopedErrorCapture capture;
        res.sim = run(job);
        res.status = res.sim.watchdog_tripped ? RunStatus::Watchdog
                                              : RunStatus::Ok;
        if (res.status == RunStatus::Watchdog)
            res.error = "watchdog tripped (max_cycles/max_wall)";
    } catch (const SimAbortError &e) {
        res.status = RunStatus::Failed;
        res.error = e.what();
    } catch (const std::exception &e) {
        res.status = RunStatus::Failed;
        res.error = std::string("exception: ") + e.what();
    }

    res.wall_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    // Host-cost stats ride the stat tree (and thus schema v2 results)
    // so regressions in simulator speed and footprint are visible in
    // the same reports as simulated metrics. Skipped for Failed runs
    // (their trees are empty) and when the spec opts out for
    // byte-reproducible results.
    if (spec.host_stats && !res.sim.stat_tree.empty()) {
        stats::FlatStat wall;
        wall.name = "sim.wall_seconds";
        wall.integral = false;
        wall.dbl = res.wall_seconds;
        insertSorted(res.sim.stat_tree, std::move(wall));

        stats::FlatStat rss;
        rss.name = "sim.peak_rss_bytes";
        rss.u64 = peakRssBytes();
        insertSorted(res.sim.stat_tree, std::move(rss));
    }
    return res;
}

std::vector<RunResult>
runSweep(const std::vector<RunSpec> &specs, const SweepOptions &opt)
{
    std::vector<RunResult> results(specs.size());
    if (specs.empty())
        return results;

    std::atomic<std::size_t> done{0};
    const auto run_one = [&](std::size_t i) {
        // Index-addressed writes keep result order equal to spec
        // order no matter which worker finishes when.
        results[i] = executeRun(specs[i]);
        const std::size_t d =
            done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (opt.on_progress)
            opt.on_progress(d, specs.size(), results[i]);
    };

    unsigned threads = opt.threads == 0
        ? ThreadPool::hardwareThreads()
        : opt.threads;
    if (threads > specs.size())
        threads = static_cast<unsigned>(specs.size());

    if (threads <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            run_one(i);
        if (opt.telemetry) {
            // Inline execution: one synthetic "worker" (the calling
            // thread, which never NUMA-binds itself).
            opt.telemetry->workers.assign(
                1, SweepTelemetry::Worker{specs.size(), -1});
        }
    } else {
        // The pool is owned here (not hidden inside parallelFor) so
        // the per-worker WorkerState survives until it can be read
        // into the telemetry record. One pool job per run keeps the
        // dynamic load balancing of the old index loop and makes
        // jobs_run count simulations, not drain loops.
        ThreadPool pool(threads);
        for (std::size_t i = 0; i < specs.size(); ++i)
            pool.submit([&run_one, i] { run_one(i); });
        pool.wait();
        if (opt.telemetry) {
            opt.telemetry->workers.resize(pool.size());
            for (unsigned w = 0; w < pool.size(); ++w) {
                opt.telemetry->workers[w] = SweepTelemetry::Worker{
                    pool.jobsRun(w), pool.workerNode(w)};
            }
        }
    }

    if (opt.telemetry) {
        // Filled post-hoc in spec order, single-threaded, so the
        // bucket contents do not depend on completion order.
        for (const RunResult &r : results) {
            opt.telemetry->job_wall_us.sample(
                static_cast<std::uint64_t>(r.wall_seconds * 1e6));
        }
    }
    return results;
}

} // namespace harness
} // namespace carve
