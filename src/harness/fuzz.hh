/**
 * @file
 * Seeded configuration fuzzer for the carve-audit subsystem: draws
 * valid (preset, workload, override) combinations from the config
 * override registry and runs them short and audited, so conservation
 * violations surface across the whole configuration space rather than
 * only on the hand-picked smoke grid.
 */

#ifndef CARVE_HARNESS_FUZZ_HH
#define CARVE_HARNESS_FUZZ_HH

#include <string>
#include <vector>

#include "harness/run_spec.hh"

namespace carve {
namespace harness {

/** Knobs of one fuzz campaign. */
struct FuzzOptions
{
    /** Number of specs to draw. */
    unsigned count = 8;
    /** Campaign seed: same seed, same specs. */
    std::uint64_t seed = 1;
    /** Memory scale shared by the suite workloads and the hardware
     * (see SuiteOptions::memory_scale). */
    unsigned memory_scale = 8;
    /** Suite trace-length multiplier; short by default so a campaign
     * stays a smoke test. */
    double duration = 0.05;
    /** Per-run cycle watchdog. */
    Cycle max_cycles = 500000000;
    /** Per-run wall-clock watchdog in seconds. */
    double max_wall_seconds = 120.0;
};

/** One drawn run: a ready-to-execute spec plus the overrides that
 * were applied to its base config (for reproduction). */
struct FuzzSpec
{
    RunSpec spec;
    /** "key=value" overrides already applied to spec.base. */
    std::vector<std::string> overrides;

    /** "preset/workload/seed key=value..." reproduction line. */
    std::string describe() const;
};

/** Draw @p opt.count specs; deterministic in opt. Every spec runs
 * with RunOptions::audit set. */
std::vector<FuzzSpec> makeFuzzSpecs(const FuzzOptions &opt);

} // namespace harness
} // namespace carve

#endif // CARVE_HARNESS_FUZZ_HH
