#include "harness/stats_json.hh"

namespace carve {
namespace harness {

json::Value
statTreeToJson(const std::vector<stats::FlatStat> &flat)
{
    json::Value o{json::Members{}};
    for (const auto &f : flat) {
        if (f.integral)
            o.set(f.name, f.u64);
        else
            o.set(f.name, f.dbl);
    }
    return o;
}

json::Value
statGroupToJson(const stats::StatGroup &root)
{
    return statTreeToJson(stats::flattenStats(root));
}

std::vector<stats::FlatStat>
statTreeFromJson(const json::Value &v)
{
    std::vector<stats::FlatStat> out;
    for (const auto &[name, value] : v.asObject()) {
        stats::FlatStat f;
        f.name = name;
        if (value.kind() == json::Value::Kind::Int) {
            f.integral = true;
            f.u64 = static_cast<std::uint64_t>(value.asInt());
        } else {
            f.integral = false;
            f.dbl = value.asDouble();
        }
        out.push_back(std::move(f));
    }
    return out;
}

} // namespace harness
} // namespace carve
