#include "harness/thread_pool.hh"

#include <atomic>
#include <string>

#ifdef __linux__
#include <pthread.h>
#endif

#include "common/hostnuma.hh"

namespace carve {
namespace harness {

unsigned
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = hardwareThreads();
    state_ = std::make_unique<WorkerState[]>(threads);
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        workers_.emplace_back(
            [this, i](std::stop_token st) { workerLoop(st, i); });
#ifdef __linux__
        // Name the workers so traces, gdb and `top -H` attribute
        // simulation work to the pool (comm limit is 15 chars).
        std::string name = "carve-wkr-" + std::to_string(i);
        if (name.size() > 15)
            name.resize(15);
        pthread_setname_np(workers_.back().native_handle(),
                           name.c_str());
#endif
    }
}

ThreadPool::~ThreadPool()
{
    for (auto &w : workers_)
        w.request_stop();
    work_cv_.notify_all();
    // jthread joins in its destructor.
}

void
ThreadPool::submit(Job job)
{
    {
        std::lock_guard lock(mutex_);
        queue_.push_back(std::move(job));
    }
    work_cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock lock(mutex_);
    idle_cv_.wait(lock, [this] {
        return queue_.empty() && in_flight_ == 0;
    });
}

void
ThreadPool::workerLoop(std::stop_token st, unsigned index)
{
    WorkerState &me = state_[index];
    // Spread workers round-robin over host NUMA nodes so each one's
    // simulation allocates from (and runs near) its own node. A
    // CARVE_NUMA=OFF build or a non-NUMA host leaves numa_node at -1.
    if (hostnuma::available()) {
        const int node =
            static_cast<int>(index) % hostnuma::nodeCount();
        if (hostnuma::bindThreadToNode(node))
            me.numa_node = node;
    }

    while (true) {
        Job job;
        {
            std::unique_lock lock(mutex_);
            work_cv_.wait(lock, st,
                          [this] { return !queue_.empty(); });
            if (queue_.empty())
                return;  // stop requested and nothing left to do
            job = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
        }
        job();
        ++me.jobs_run;  // own padded line: no cross-worker sharing
        {
            std::lock_guard lock(mutex_);
            --in_flight_;
        }
        idle_cv_.notify_all();
    }
}

void
parallelFor(std::size_t count, unsigned threads,
            const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (threads > count)
        threads = static_cast<unsigned>(count);
    if (threads <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    // Dynamic index distribution: simulation run times vary by an
    // order of magnitude across the suite, so static slicing would
    // leave workers idle behind one long run.
    std::atomic<std::size_t> next{0};
    ThreadPool pool(threads);
    for (unsigned w = 0; w < threads; ++w) {
        pool.submit([&] {
            while (true) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= count)
                    return;
                fn(i);
            }
        });
    }
    pool.wait();
}

} // namespace harness
} // namespace carve
