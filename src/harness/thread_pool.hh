/**
 * @file
 * Fixed-size worker pool for the experiment harness. Simulations are
 * embarrassingly parallel CPU-bound jobs, so the pool is deliberately
 * simple: a locked queue of std::function jobs drained by N
 * std::jthread workers, plus a parallelFor convenience that the sweep
 * executor uses for index-addressed work.
 */

#ifndef CARVE_HARNESS_THREAD_POOL_HH
#define CARVE_HARNESS_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

namespace carve {
namespace harness {

// GCC warns that hardware_destructive_interference_size is an ABI
// hazard in public headers; here it only pads an internal array, so
// any value consistent within one build is correct.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winterference-size"
#endif

/**
 * Mutable per-worker state, one cache line per worker. Workers update
 * their own slot on every job; without the padding those writes would
 * false-share one line across the pool and turn the job accounting
 * into a cross-core ping-pong.
 */
struct alignas(std::hardware_destructive_interference_size) WorkerState
{
    std::uint64_t jobs_run = 0;    ///< jobs completed by this worker
    int numa_node = -1;            ///< host node bound to, or -1
};

static_assert(sizeof(WorkerState) ==
                  std::hardware_destructive_interference_size,
              "WorkerState must own exactly one destructive-"
              "interference span");
static_assert(alignof(WorkerState) >=
                  std::hardware_destructive_interference_size,
              "WorkerState slots must not straddle interference spans");

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

/**
 * N worker threads draining a FIFO job queue. Destruction requests
 * stop, drains any still-queued jobs, and joins. Jobs must not
 * throw — wrap fallible work in its own try/catch. Workers are named
 * "carve-wkr-N" (Linux) so traces, gdb and `top -H` attribute
 * simulation work to the pool.
 */
class ThreadPool
{
  public:
    using Job = std::function<void()>;

    /** @param threads worker count; 0 means hardwareThreads(). */
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job. */
    void submit(Job job);

    /** Block until the queue is empty and every worker is idle. */
    void wait();

    /** Number of worker threads. */
    unsigned size() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** std::thread::hardware_concurrency with a floor of 1. */
    static unsigned hardwareThreads();

    /** Jobs completed by worker @p i (tests / reporting). */
    std::uint64_t
    jobsRun(unsigned i) const
    {
        return state_[i].jobs_run;
    }

    /** Host NUMA node worker @p i bound itself to, or -1. */
    int
    workerNode(unsigned i) const
    {
        return state_[i].numa_node;
    }

  private:
    void workerLoop(std::stop_token st, unsigned index);

    std::mutex mutex_;
    std::condition_variable_any work_cv_;  ///< queue became non-empty
    std::condition_variable idle_cv_;      ///< a job finished
    std::deque<Job> queue_;
    std::size_t in_flight_ = 0;
    /** One padded slot per worker; sized before the jthreads start and
     * never resized, so workers index it lock-free. */
    std::unique_ptr<WorkerState[]> state_;
    std::vector<std::jthread> workers_;
};

/**
 * Run fn(i) for every i in [0, count) on up to @p threads workers
 * (clamped to count; <= 1 executes inline on the caller). Blocks
 * until all iterations finish. @p fn must not throw.
 */
void parallelFor(std::size_t count, unsigned threads,
                 const std::function<void(std::size_t)> &fn);

} // namespace harness
} // namespace carve

#endif // CARVE_HARNESS_THREAD_POOL_HH
