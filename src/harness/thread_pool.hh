/**
 * @file
 * Fixed-size worker pool for the experiment harness. Simulations are
 * embarrassingly parallel CPU-bound jobs, so the pool is deliberately
 * simple: a locked queue of std::function jobs drained by N
 * std::jthread workers, plus a parallelFor convenience that the sweep
 * executor uses for index-addressed work.
 */

#ifndef CARVE_HARNESS_THREAD_POOL_HH
#define CARVE_HARNESS_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace carve {
namespace harness {

/**
 * N worker threads draining a FIFO job queue. Destruction requests
 * stop, drains any still-queued jobs, and joins. Jobs must not
 * throw — wrap fallible work in its own try/catch. Workers are named
 * "carve-wkr-N" (Linux) so traces, gdb and `top -H` attribute
 * simulation work to the pool.
 */
class ThreadPool
{
  public:
    using Job = std::function<void()>;

    /** @param threads worker count; 0 means hardwareThreads(). */
    explicit ThreadPool(unsigned threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job. */
    void submit(Job job);

    /** Block until the queue is empty and every worker is idle. */
    void wait();

    /** Number of worker threads. */
    unsigned size() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** std::thread::hardware_concurrency with a floor of 1. */
    static unsigned hardwareThreads();

  private:
    void workerLoop(std::stop_token st);

    std::mutex mutex_;
    std::condition_variable_any work_cv_;  ///< queue became non-empty
    std::condition_variable idle_cv_;      ///< a job finished
    std::deque<Job> queue_;
    std::size_t in_flight_ = 0;
    std::vector<std::jthread> workers_;
};

/**
 * Run fn(i) for every i in [0, count) on up to @p threads workers
 * (clamped to count; <= 1 executes inline on the caller). Blocks
 * until all iterations finish. @p fn must not throw.
 */
void parallelFor(std::size_t count, unsigned threads,
                 const std::function<void(std::size_t)> &fn);

} // namespace harness
} // namespace carve

#endif // CARVE_HARNESS_THREAD_POOL_HH
