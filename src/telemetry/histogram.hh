/**
 * @file
 * Telemetry foundation: the fixed-bucket log2 histogram every
 * latency/occupancy distribution in the simulator is recorded with,
 * plus the run-level telemetry options and the engine self-profiling
 * record.
 *
 * Buckets are powers of two — sample v lands in bucket bit_width(v)
 * (bucket 0 holds exactly 0) — so recording is one bit-scan and one
 * increment, merging is element-wise addition (commutative, hence
 * order-independent across domains), and the bucket layout is a fixed
 * part of the results schema, like the stat name set pinned by
 * statnames.golden. Percentiles are rendered deterministically as the
 * inclusive upper bound of the bucket holding the target rank, using
 * integer arithmetic only, so p50/p95/p99 are byte-identical across
 * engines, thread counts and hosts.
 *
 * This header is dependency-free on purpose: the stats registry, the
 * domain engine and the service all include it without cycles.
 */

#ifndef CARVE_TELEMETRY_HISTOGRAM_HH
#define CARVE_TELEMETRY_HISTOGRAM_HH

#include <array>
#include <bit>
#include <cstdint>

namespace carve {
namespace telemetry {

/** Run-level telemetry switches (SimJob.options.telemetry). */
struct Options
{
    /** Master switch. Off (default) is provably free: no telemetry
     * stat is registered and no sampling site executes, so the stat
     * tree is byte-identical to a build without this subsystem. */
    bool enabled = false;
    /** Sample host wall-clock quantities (engine barrier wait). These
     * are the one nondeterministic telemetry source — like the
     * harness's host_stats — so they default off; every other
     * telemetry stat is a pure function of the simulated schedule. */
    bool host_timing = false;
};

/**
 * Fixed 64-bucket log2 histogram of nonnegative integer samples.
 * Bucket b >= 1 covers [2^(b-1), 2^b - 1]; bucket 0 holds exactly 0;
 * the last bucket absorbs everything above 2^62.
 */
class Histogram
{
  public:
    static constexpr unsigned num_buckets = 64;

    static unsigned
    bucketIndex(std::uint64_t v)
    {
        const unsigned w = static_cast<unsigned>(std::bit_width(v));
        return w < num_buckets ? w : num_buckets - 1;
    }

    /**
     * Inclusive upper bound of bucket @p b. The last bucket's bound is
     * clamped to 2^63 - 1 so every rendered value fits a JSON int.
     */
    static std::uint64_t
    bucketUpperBound(unsigned b)
    {
        if (b == 0)
            return 0;
        if (b >= num_buckets - 1)
            return (std::uint64_t{1} << 63) - 1;
        return (std::uint64_t{1} << b) - 1;
    }

    void
    sample(std::uint64_t v)
    {
        ++buckets_[bucketIndex(v)];
        ++count_;
        sum_ += v;
        if (v > max_)
            max_ = v;
    }

    /** Element-wise add @p other into this histogram. Addition
     * commutes, so any merge order yields identical contents. */
    void
    merge(const Histogram &other)
    {
        for (unsigned b = 0; b < num_buckets; ++b)
            buckets_[b] += other.buckets_[b];
        count_ += other.count_;
        sum_ += other.sum_;
        if (other.max_ > max_)
            max_ = other.max_;
    }

    /**
     * Deterministic percentile: the inclusive upper bound of the first
     * bucket whose cumulative count reaches ceil(count * pct / 100).
     * Integer arithmetic only; 0 when empty. @p pct in [0, 100].
     */
    std::uint64_t
    percentile(unsigned pct) const
    {
        if (count_ == 0)
            return 0;
        std::uint64_t target = (count_ * pct + 99) / 100;
        if (target == 0)
            target = 1;
        std::uint64_t cum = 0;
        for (unsigned b = 0; b < num_buckets; ++b) {
            cum += buckets_[b];
            if (cum >= target)
                return bucketUpperBound(b);
        }
        return bucketUpperBound(num_buckets - 1);
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t max() const { return max_; }
    const std::array<std::uint64_t, num_buckets> &
    buckets() const
    {
        return buckets_;
    }

    void
    reset()
    {
        buckets_.fill(0);
        count_ = 0;
        sum_ = 0;
        max_ = 0;
    }

  private:
    std::array<std::uint64_t, num_buckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * Engine self-profiling record (DomainEngine::attachProfile). Filled
 * at window barriers and, for barrier_wait_ns, from per-worker shards
 * merged in worker-id order when the run ends. All members except
 * barrier_wait_ns are pure functions of the simulated schedule, so
 * they are identical across engines and thread counts; barrier_wait_ns
 * is host wall time and only sampled when Options::host_timing is set.
 */
struct EngineProfile
{
    /** Lookahead windows executed (== barrier count). */
    std::uint64_t windows = 0;
    /** Events executed per domain per window. */
    Histogram window_occupancy;
    /** Cross-domain messages buffered per outbox at each exchange. */
    Histogram outbox_depth;
    /** Cross-domain messages exchanged per window (all outboxes). */
    Histogram exchange_msgs;
    /** Nanoseconds a worker spent blocked at window barriers, one
     * sample per wait (parallel engine + host_timing only). */
    Histogram barrier_wait_ns;
    /** Sample wall-clock waits into barrier_wait_ns. */
    bool host_timing = false;
};

} // namespace telemetry
} // namespace carve

#endif // CARVE_TELEMETRY_HISTOGRAM_HH
