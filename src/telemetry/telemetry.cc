#include "telemetry/telemetry.hh"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace carve {
namespace telemetry {

namespace {

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (n > 0)
        out.append(buf, static_cast<std::size_t>(n));
}

/** Render a double the way Prometheus clients expect: integral values
 * without a fraction, everything else with enough digits to round-trip. */
void
appendNumber(std::string &out, double v)
{
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        v >= -1e15 && v <= 1e15) {
        appendf(out, "%lld", static_cast<long long>(v));
    } else {
        appendf(out, "%.17g", v);
    }
}

} // namespace

void
appendPrometheusValue(std::string &out, const std::string &family,
                      const std::string &help, const std::string &type,
                      double value)
{
    out += "# HELP " + family + " " + help + "\n";
    out += "# TYPE " + family + " " + type + "\n";
    out += family + " ";
    appendNumber(out, value);
    out += "\n";
}

void
appendPrometheusHistogram(std::string &out, const std::string &family,
                          const std::string &help, const Histogram &h,
                          double scale)
{
    out += "# HELP " + family + " " + help + "\n";
    out += "# TYPE " + family + " histogram\n";

    // Find the last occupied bucket so the dump stays readable; the
    // cumulative counts below make the elided tail redundant anyway.
    unsigned last = 0;
    for (unsigned b = 0; b < Histogram::num_buckets; ++b) {
        if (h.buckets()[b] != 0)
            last = b;
    }

    std::uint64_t cum = 0;
    for (unsigned b = 0; b <= last; ++b) {
        cum += h.buckets()[b];
        const double le =
            static_cast<double>(Histogram::bucketUpperBound(b)) * scale;
        out += family + "_bucket{le=\"";
        appendNumber(out, le);
        appendf(out, "\"} %" PRIu64 "\n", cum);
    }
    appendf(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", family.c_str(),
            h.count());
    out += family + "_sum ";
    appendNumber(out, static_cast<double>(h.sum()) * scale);
    out += "\n";
    appendf(out, "%s_count %" PRIu64 "\n", family.c_str(), h.count());
}

} // namespace telemetry
} // namespace carve
