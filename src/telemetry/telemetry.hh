/**
 * @file
 * Runtime observability layer on top of telemetry/histogram.hh: the
 * domain-sharded histogram (the ShardedScalar of distributions) and
 * the Prometheus text-exposition renderer the carve-served metrics
 * plane uses.
 */

#ifndef CARVE_TELEMETRY_TELEMETRY_HH
#define CARVE_TELEMETRY_TELEMETRY_HH

#include <array>
#include <string>

#include "common/domain_engine.hh"
#include "telemetry/histogram.hh"

namespace carve {
namespace telemetry {

/**
 * A Histogram whose samples land in a per-domain shard mid-window and
 * fold into the registered total at each barrier, exactly like
 * ShardedScalar: samples from the barrier shard (single-threaded
 * contexts) go to the total directly, and fold() merges every shard
 * at window barriers. Histogram merge is element-wise addition, so
 * the folded contents are independent of fold order and thread count.
 */
class ShardedHistogram
{
  public:
    void
    sample(std::uint64_t v)
    {
        const unsigned s = engine_ctx::current_shard;
        if (s == engine_ctx::barrier_shard)
            total_.sample(v);
        else
            shards_[s].h.sample(v);
    }

    /** Merge every shard into the total (window barriers only). */
    void
    fold()
    {
        for (Slot &s : shards_) {
            if (s.h.count() == 0)
                continue;
            total_.merge(s.h);
            s.h.reset();
        }
    }

    /** The registered histogram; only coherent at window barriers. */
    Histogram &histogram() { return total_; }
    const Histogram &histogram() const { return total_; }

  private:
    /** Shards of one histogram are written by different worker
     * threads in the same window; keep them on separate lines. */
    struct alignas(64) Slot
    {
        Histogram h;
    };

    Histogram total_;
    std::array<Slot, engine_ctx::barrier_shard> shards_{};
};

/**
 * Append one Prometheus histogram family to @p out: cumulative
 * le-buckets (microsecond samples scaled by @p scale into the unit
 * the family name advertises), then _sum and _count. Empty trailing
 * buckets are elided; the +Inf bucket is always emitted.
 */
void appendPrometheusHistogram(std::string &out,
                               const std::string &family,
                               const std::string &help,
                               const Histogram &h, double scale);

/** Append a gauge/counter family ("# TYPE" + one sample line). */
void appendPrometheusValue(std::string &out, const std::string &family,
                           const std::string &help,
                           const std::string &type, double value);

} // namespace telemetry
} // namespace carve

#endif // CARVE_TELEMETRY_TELEMETRY_HH
