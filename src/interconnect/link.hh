/**
 * @file
 * Uni-directional point-to-point link with a serialization-accurate
 * bandwidth model (NVLink-style, Table III: 64 GB/s per direction
 * between GPUs, 32 GB/s to the CPU).
 */

#ifndef CARVE_INTERCONNECT_LINK_HH
#define CARVE_INTERCONNECT_LINK_HH

#include <cmath>
#include <string>

#include "common/audit.hh"
#include "common/domain_engine.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "trace/trace.hh"

namespace carve {

/**
 * One direction of one link. Transfers serialize on the wire: a packet
 * occupies the link for size/bandwidth cycles and is delivered one hop
 * latency after its last byte leaves. This makes the link the precise
 * bandwidth bottleneck the paper's NUMA analysis revolves around.
 *
 * Each link is driven exclusively by its source domain (only code
 * executing there calls send()), so wire state and counters are
 * single-writer; delivery rides DomainEngine::post() into the
 * destination domain, which the lookahead window guarantees is always
 * at least one window boundary away.
 */
class Link
{
  public:
    /** Delivery continuations ride the engine's allocation-free
     * callable directly — no std::function round-trip per packet. */
    using Callback = EventFn;

    /**
     * @param engine domain engine delivering packets
     * @param dst_domain event domain of the receiving node
     * @param name stat-reporting name
     * @param bytes_per_cycle peak bandwidth
     * @param latency one-way hop latency in cycles
     */
    Link(DomainEngine &engine, unsigned dst_domain, std::string name,
         double bytes_per_cycle, Cycle latency);

    /**
     * Transmit @p bytes; @p delivered fires at the receiver.
     * @p delivered may be empty (posted control traffic).
     */
    void send(std::uint64_t bytes, Callback delivered);

    /** Total payload bytes accepted. */
    std::uint64_t bytesSent() const { return bytes_sent_.value(); }
    /** Total packets accepted. */
    std::uint64_t packets() const { return packets_.value(); }
    /** Cycles the wire was occupied. */
    std::uint64_t busyCycles() const { return busy_cycles_.value(); }
    /** Mean cycles a packet waited for the wire. */
    double meanQueueDelay() const { return queue_delay_.mean(); }

    /** Utilization over @p elapsed cycles (0..1). */
    double
    utilization(Cycle elapsed) const
    {
        return elapsed == 0
            ? 0.0
            : static_cast<double>(busyCycles()) /
                  static_cast<double>(elapsed);
    }

    const std::string &name() const { return name_; }
    double bandwidth() const { return bytes_per_cycle_; }

    /** Attach the in-flight token tracker (audit mode only): every
     * accepted packet carries a token until delivery. */
    void setAudit(audit::InflightTracker *tracker) { audit_ = tracker; }

    /** Attach the tracer: every accepted packet becomes a wire-
     * occupancy span on this link's timeline row @p track. */
    void
    setTrace(trace::Session *session, std::uint32_t track)
    {
        trace_ = session;
        trace_track_ = track;
    }

    /** Record the full queueing-delay distribution (not just the
     * mean) into a telemetry histogram. Call before registerStats()
     * so the histogram joins the stat tree. */
    void enableTelemetry() { telem_ = true; }

    /** Register this link's counters into @p g. */
    void
    registerStats(stats::StatGroup &g)
    {
        g.addScalar("bytes", &bytes_sent_, "payload bytes accepted");
        g.addScalar("packets", &packets_, "packets accepted");
        g.addScalar("busy_cycles", &busy_cycles_,
                    "cycles the wire was occupied");
        g.addAverage("queue_delay", &queue_delay_,
                     "cycles packets waited for the wire");
        if (telem_)
            g.addHistogram("queue_delay_cycles", &queue_delay_hist_,
                           "distribution of cycles packets waited "
                           "for the wire");
    }

  private:
    DomainEngine &engine_;
    unsigned dst_domain_;
    std::string name_;
    double bytes_per_cycle_;
    Cycle latency_;
    Cycle wire_free_at_ = 0;
    audit::InflightTracker *audit_ = nullptr;
    trace::Session *trace_ = nullptr;
    std::uint32_t trace_track_ = 0;

    stats::Scalar bytes_sent_;
    stats::Scalar packets_;
    stats::Scalar busy_cycles_;
    stats::Average queue_delay_;
    bool telem_ = false;
    telemetry::Histogram queue_delay_hist_;
};

} // namespace carve

#endif // CARVE_INTERCONNECT_LINK_HH
