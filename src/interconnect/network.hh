/**
 * @file
 * Multi-GPU interconnect fabric: a fully-connected mesh of
 * uni-directional GPU<->GPU links plus one bi-directional CPU link per
 * GPU, mirroring a DGX-style 4-GPU box (Figure 1 of the paper).
 */

#ifndef CARVE_INTERCONNECT_NETWORK_HH
#define CARVE_INTERCONNECT_NETWORK_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/domain_engine.hh"
#include "common/stats.hh"
#include "interconnect/link.hh"

namespace carve {

/**
 * Owns every link in the system and routes by (src, dst) node pair.
 * GPU ids are 0..num_gpus-1; the CPU is addressed via the dedicated
 * cpu-link helpers.
 */
class Network
{
  public:
    using Callback = Link::Callback;

    /**
     * @param engine domain engine (GPU g = domain g, CPU = system
     *        domain) delivering every packet
     * @param cfg link bandwidths/latency
     * @param num_gpus GPU node count
     */
    Network(DomainEngine &engine, const LinkConfig &cfg,
            unsigned num_gpus);

    /**
     * Send @p bytes from GPU @p src to GPU @p dst (src != dst);
     * @p delivered fires at the destination.
     */
    void send(NodeId src, NodeId dst, std::uint64_t bytes,
              Callback delivered);

    /** Send from GPU @p gpu up to the CPU. */
    void sendToCpu(NodeId gpu, std::uint64_t bytes, Callback delivered);

    /** Send from the CPU down to GPU @p gpu. */
    void sendFromCpu(NodeId gpu, std::uint64_t bytes,
                     Callback delivered);

    /** The link carrying src->dst traffic (tests and reporting). */
    const Link &link(NodeId src, NodeId dst) const;

    /** Aggregate GPU<->GPU payload bytes moved. */
    std::uint64_t totalGpuGpuBytes() const;

    /** Aggregate CPU<->GPU payload bytes moved. */
    std::uint64_t totalCpuGpuBytes() const;

    /** Size in bytes of a coherence control packet. */
    unsigned ctrlPacketSize() const { return cfg_.ctrl_packet_size; }

    unsigned numGpus() const { return num_gpus_; }

    /** Register every link into @p g as nested "<src>.<dst>" groups
     * ("0.3", "0.cpu", "cpu.0"); nested groups are owned here. */
    void registerStats(stats::StatGroup &g);

    /** Attach the in-flight token tracker to every link. */
    void
    setAudit(audit::InflightTracker *tracker)
    {
        for (auto &l : gpu_links_)
            if (l)
                l->setAudit(tracker);
        for (auto &l : to_cpu_)
            l->setAudit(tracker);
        for (auto &l : from_cpu_)
            l->setAudit(tracker);
    }

    /** Attach the tracer as process @p pid ("interconnect"): one
     * thread row + one windowed utilization counter per link. */
    void setTrace(trace::Session *session, std::uint32_t pid);

    /** Enable queue-delay histograms on every link; call before
     * registerStats(). */
    void
    enableTelemetry()
    {
        for (auto &l : gpu_links_)
            if (l)
                l->enableTelemetry();
        for (auto &l : to_cpu_)
            l->enableTelemetry();
        for (auto &l : from_cpu_)
            l->enableTelemetry();
    }

  private:
    std::size_t index(NodeId src, NodeId dst) const;

    const LinkConfig &cfg_;
    unsigned num_gpus_;
    /** gpu_links_[src * num_gpus + dst], diagonal unused. */
    std::vector<std::unique_ptr<Link>> gpu_links_;
    std::vector<std::unique_ptr<Link>> to_cpu_;
    std::vector<std::unique_ptr<Link>> from_cpu_;
    std::vector<std::unique_ptr<stats::StatGroup>> link_groups_;
};

} // namespace carve

#endif // CARVE_INTERCONNECT_NETWORK_HH
