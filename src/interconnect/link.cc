#include "interconnect/link.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace carve {

Link::Link(DomainEngine &engine, unsigned dst_domain,
           std::string name, double bytes_per_cycle, Cycle latency)
    : engine_(engine), dst_domain_(dst_domain),
      name_(std::move(name)),
      bytes_per_cycle_(bytes_per_cycle), latency_(latency)
{
    if (bytes_per_cycle <= 0.0)
        fatal("Link %s: non-positive bandwidth", name_.c_str());
}

void
Link::send(std::uint64_t bytes, Callback delivered)
{
    carve_assert(bytes > 0);
    const auto occupancy = static_cast<Cycle>(std::ceil(
        static_cast<double>(bytes) / bytes_per_cycle_));

    const Cycle now = engine_.now();
    const Cycle start = std::max(now, wire_free_at_);
    wire_free_at_ = start + occupancy;

    bytes_sent_ += bytes;
    ++packets_;
    busy_cycles_ += occupancy;
    queue_delay_.sample(static_cast<double>(start - now));
    if (telem_)
        queue_delay_hist_.sample(start - now);

    if (trace::active(trace_, trace::Category::Link)) {
        trace_->span(trace::Category::Link, trace_track_, "pkt",
                     start, start + occupancy, bytes);
    }

    if (audit_) {
        // Wrap (and, for posted packets, materialize) the delivery so
        // the token is provably retired at the receiver.
        audit_->issue(audit::Boundary::LinkDelivery);
        delivered = [tracker = audit_,
                     inner = std::move(delivered)]() mutable {
            tracker->retire(audit::Boundary::LinkDelivery);
            if (inner)
                inner();
        };
    }

    if (delivered) {
        engine_.post(dst_domain_, wire_free_at_ + latency_,
                     std::move(delivered));
    }
}

} // namespace carve
