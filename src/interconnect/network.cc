#include "interconnect/network.hh"

#include <string>
#include <utility>

#include "common/logging.hh"

namespace carve {

Network::Network(DomainEngine &engine, const LinkConfig &cfg,
                 unsigned num_gpus)
    : cfg_(cfg), num_gpus_(num_gpus)
{
    if (num_gpus == 0)
        fatal("Network: need at least one GPU");

    const unsigned cpu_domain = engine.systemDomain();
    gpu_links_.resize(static_cast<std::size_t>(num_gpus) * num_gpus);
    for (unsigned s = 0; s < num_gpus; ++s) {
        for (unsigned d = 0; d < num_gpus; ++d) {
            if (s == d)
                continue;
            gpu_links_[index(s, d)] = std::make_unique<Link>(
                engine, d,
                "gpu" + std::to_string(s) + "->gpu" +
                    std::to_string(d),
                cfg.gpu_gpu_bw, cfg.latency);
        }
    }
    for (unsigned g = 0; g < num_gpus; ++g) {
        to_cpu_.push_back(std::make_unique<Link>(
            engine, cpu_domain, "gpu" + std::to_string(g) + "->cpu",
            cfg.cpu_gpu_bw, cfg.latency));
        from_cpu_.push_back(std::make_unique<Link>(
            engine, g, "cpu->gpu" + std::to_string(g), cfg.cpu_gpu_bw,
            cfg.latency));
    }
}

std::size_t
Network::index(NodeId src, NodeId dst) const
{
    carve_assert(src < num_gpus_ && dst < num_gpus_ && src != dst);
    return static_cast<std::size_t>(src) * num_gpus_ + dst;
}

void
Network::send(NodeId src, NodeId dst, std::uint64_t bytes,
              Callback delivered)
{
    gpu_links_[index(src, dst)]->send(bytes, std::move(delivered));
}

void
Network::sendToCpu(NodeId gpu, std::uint64_t bytes, Callback delivered)
{
    carve_assert(gpu < num_gpus_);
    to_cpu_[gpu]->send(bytes, std::move(delivered));
}

void
Network::sendFromCpu(NodeId gpu, std::uint64_t bytes,
                     Callback delivered)
{
    carve_assert(gpu < num_gpus_);
    from_cpu_[gpu]->send(bytes, std::move(delivered));
}

const Link &
Network::link(NodeId src, NodeId dst) const
{
    return *gpu_links_[index(src, dst)];
}

std::uint64_t
Network::totalGpuGpuBytes() const
{
    std::uint64_t total = 0;
    for (const auto &l : gpu_links_) {
        if (l)
            total += l->bytesSent();
    }
    return total;
}

std::uint64_t
Network::totalCpuGpuBytes() const
{
    std::uint64_t total = 0;
    for (const auto &l : to_cpu_)
        total += l->bytesSent();
    for (const auto &l : from_cpu_)
        total += l->bytesSent();
    return total;
}

void
Network::registerStats(stats::StatGroup &g)
{
    // Source-level groups are shared across destinations; StatGroup
    // names are single segments, so "0.3" is group "0" > group "3".
    std::vector<stats::StatGroup *> src_groups(num_gpus_ + 1, nullptr);
    const auto srcGroup = [&](std::size_t s,
                              const std::string &name) {
        if (!src_groups[s]) {
            auto owned = std::make_unique<stats::StatGroup>(name, &g);
            src_groups[s] = owned.get();
            link_groups_.push_back(std::move(owned));
        }
        return src_groups[s];
    };
    const auto addLink = [&](stats::StatGroup *src,
                             const std::string &dst, Link &link) {
        auto owned = std::make_unique<stats::StatGroup>(dst, src);
        link.registerStats(*owned);
        link_groups_.push_back(std::move(owned));
    };

    for (unsigned s = 0; s < num_gpus_; ++s) {
        stats::StatGroup *src = srcGroup(s, std::to_string(s));
        for (unsigned d = 0; d < num_gpus_; ++d) {
            if (s == d)
                continue;
            addLink(src, std::to_string(d), *gpu_links_[index(s, d)]);
        }
        addLink(src, "cpu", *to_cpu_[s]);
    }
    stats::StatGroup *cpu = srcGroup(num_gpus_, "cpu");
    for (unsigned d = 0; d < num_gpus_; ++d)
        addLink(cpu, std::to_string(d), *from_cpu_[d]);
}

void
Network::setTrace(trace::Session *session, std::uint32_t pid)
{
    session->defineProcess(pid, "interconnect");

    std::uint32_t tid = 0;
    const auto attach = [&](Link &l) {
        session->defineThread(pid, tid, l.name());
        l.setTrace(session, trace::makeTrack(pid, tid));
        // Windowed utilization: busy-cycle delta over one sample
        // interval, so the counter shows instantaneous saturation
        // rather than the end-to-end average.
        const Cycle interval = session->sampleInterval();
        session->addCounter(
            pid, "util " + l.name(),
            [lp = &l, interval,
             prev = std::uint64_t{0}]() mutable {
                const std::uint64_t busy = lp->busyCycles();
                const double u = interval > 0
                    ? static_cast<double>(busy - prev) /
                          static_cast<double>(interval)
                    : 0.0;
                prev = busy;
                return u;
            });
        ++tid;
    };

    // Deterministic row order: gpu->gpu src-major, then gpu->cpu,
    // then cpu->gpu (matches registerStats naming).
    for (auto &l : gpu_links_)
        if (l)
            attach(*l);
    for (auto &l : to_cpu_)
        attach(*l);
    for (auto &l : from_cpu_)
        attach(*l);
}

} // namespace carve
