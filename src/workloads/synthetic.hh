/**
 * @file
 * SyntheticWorkload: a deterministic Workload generated from a
 * WorkloadParams description (region mix + trace shape).
 */

#ifndef CARVE_WORKLOADS_SYNTHETIC_HH
#define CARVE_WORKLOADS_SYNTHETIC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "workloads/region.hh"
#include "workloads/workload.hh"

namespace carve {

/** Full description of a synthetic workload. */
struct WorkloadParams
{
    std::string name;
    unsigned kernels = 4;
    std::uint64_t ctas = 1024;
    unsigned warps_per_cta = 8;
    std::uint64_t insts_per_warp = 24;
    std::uint16_t compute_min = 4;   ///< min compute gap (cycles)
    std::uint16_t compute_max = 20;  ///< max compute gap (cycles)
    /** Iterative workloads re-touch the same addresses every kernel
     * (solvers); non-iterative ones shift their access pattern. */
    bool iterative = true;
    std::vector<RegionSpec> regions;

    /** Sum of region footprints. */
    std::uint64_t footprint() const;

    /** Multiply trace length (insts_per_warp) by @p f, min 2. */
    WorkloadParams withDurationScale(double f) const;
};

/**
 * Deterministic pure-function trace source over a WorkloadParams.
 */
class SyntheticWorkload : public Workload
{
  public:
    /**
     * @param params workload description
     * @param line_size cache line size in bytes
     * @param seed base RNG seed (same seed == identical trace)
     */
    SyntheticWorkload(WorkloadParams params, std::uint64_t line_size,
                      std::uint64_t seed = 1);

    const std::string &name() const override { return params_.name; }
    unsigned numKernels() const override { return params_.kernels; }
    std::uint64_t
    numCtas(KernelId) const override
    {
        return params_.ctas;
    }
    unsigned
    warpsPerCta() const override
    {
        return params_.warps_per_cta;
    }
    std::uint64_t
    instsPerWarp(KernelId) const override
    {
        return params_.insts_per_warp;
    }

    void instruction(KernelId k, CtaId cta, WarpId w,
                     std::uint64_t idx,
                     WarpInstruction &out) const override;

    const WorkloadParams &params() const { return params_; }

  private:
    Addr streamLine(const RegionSpec &r, std::size_t ri, CtaId cta,
                    WarpId w, std::uint64_t idx,
                    std::uint64_t &line_index) const;

    WorkloadParams params_;
    std::uint64_t line_size_;
    std::uint64_t seed_;
    std::vector<Addr> base_;            ///< per-region base address
    std::vector<std::uint64_t> lines_;  ///< per-region line count
    std::vector<double> cum_frac_;      ///< cumulative access_frac
};

} // namespace carve

#endif // CARVE_WORKLOADS_SYNTHETIC_HH
