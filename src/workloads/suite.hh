/**
 * @file
 * The 20-workload suite of Table II, expressed as synthetic-workload
 * parameter sets whose memory-behaviour classes reproduce the paper's
 * figures: footprints, page- vs line-granularity sharing, read/write
 * bias, arithmetic intensity and kernel structure.
 *
 * Memory sizes are stored at paper scale and divided by
 * SuiteOptions::memory_scale (with a floor so small workloads keep a
 * meaningful page count); the same factor must be applied to the
 * hardware via SystemConfig::scaled() so all capacity *ratios* match
 * the paper.
 */

#ifndef CARVE_WORKLOADS_SUITE_HH
#define CARVE_WORKLOADS_SUITE_HH

#include <string>
#include <vector>

#include "workloads/synthetic.hh"

namespace carve {

/** Scaling knobs applied to the whole suite. */
struct SuiteOptions
{
    /** Divide all region footprints (and the matching hardware) by
     * this power of two. 1 == paper-exact sizes. */
    unsigned memory_scale = 8;
    /** Multiply trace length; <1 for quick runs, >1 for long ones. */
    double duration = 1.0;
};

/** All 20 Table II workloads in paper order. */
std::vector<WorkloadParams> standardSuite(const SuiteOptions &opt = {});

/** One workload by its Table II abbreviation (fatal if unknown). */
WorkloadParams suiteWorkload(const std::string &abbr,
                             const SuiteOptions &opt = {});

/** Abbreviations of all suite workloads, in paper order. */
std::vector<std::string> suiteNames();

} // namespace carve

#endif // CARVE_WORKLOADS_SUITE_HH
