/**
 * @file
 * Access-region model for synthetic workload generation.
 *
 * Each workload is a weighted mix of regions, each with a sharing/
 * access archetype chosen to reproduce the paper's workload classes:
 *
 *  - PrivateStream:     contiguous per-CTA slices, streamed. With
 *                       NUMA-GPU's contiguous CTA batches and
 *                       first-touch placement these stay local
 *                       (stream-triad and friends).
 *  - InterleavedStream: per-CTA data interleaved line-by-line across
 *                       CTAs (unstructured meshes, AMR, graph data).
 *                       Lines are private to one CTA but every 2 MB
 *                       page is touched by many CTAs on many GPUs:
 *                       the paper's *false page sharing* generator.
 *  - SharedStream:      identical read-only stream for all CTAs
 *                       (DNN weights, broadcast operands).
 *  - Lookup:            read-mostly random/Zipf gathers over a large
 *                       table (XSBench grids, MC cross sections).
 *  - Halo:              private slices plus reads of neighbouring
 *                       CTAs' edges (stencils): true sharing at the
 *                       slice boundaries.
 *  - Atomic:            small hot region with read-write sharing at
 *                       line granularity (reductions, work queues).
 *  - RandomGlobal:      uniform random over the whole region with
 *                       divergent (multi-line) accesses: RandAccess.
 */

#ifndef CARVE_WORKLOADS_REGION_HH
#define CARVE_WORKLOADS_REGION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace carve {

/** Archetype of one address region. */
enum class RegionKind : std::uint8_t {
    PrivateStream,
    InterleavedStream,
    SharedStream,
    Lookup,
    Halo,
    Atomic,
    RandomGlobal,
};

/** Printable region-kind name. */
const char *regionKindName(RegionKind k);

/** One region of a synthetic workload's address space. */
struct RegionSpec
{
    RegionKind kind = RegionKind::PrivateStream;
    std::uint64_t bytes = 0;     ///< region footprint
    double access_frac = 1.0;    ///< share of dynamic accesses
    double write_frac = 0.0;     ///< store probability per access
    double zipf = 0.0;           ///< Lookup skew (0 == uniform)
    std::uint8_t lanes = 1;      ///< distinct lines per warp inst
    double neighbor_frac = 0.25; ///< Halo: chance to read a neighbour
};

} // namespace carve

#endif // CARVE_WORKLOADS_REGION_HH
