#include "workloads/suite.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"

namespace carve {

namespace {

/**
 * Scale a paper-sized region footprint. Regions of 32 MiB or less
 * keep their original size: they are already cheap to simulate, and
 * dividing them further would leave too few 2 MB pages for page
 * placement, sharing classification and false-sharing behaviour to
 * be meaningful.
 */
std::uint64_t
scaleBytes(std::uint64_t bytes, unsigned scale)
{
    const std::uint64_t floor_bytes =
        std::min<std::uint64_t>(bytes, 32 * MiB);
    return std::max<std::uint64_t>(bytes / scale, floor_bytes);
}

RegionSpec
region(RegionKind kind, std::uint64_t bytes, double access_frac,
       double write_frac = 0.0, double zipf = 0.0,
       std::uint8_t lanes = 1, double neighbor_frac = 0.25)
{
    RegionSpec r;
    r.kind = kind;
    r.bytes = bytes;
    r.access_frac = access_frac;
    r.write_frac = write_frac;
    r.zipf = zipf;
    r.lanes = lanes;
    r.neighbor_frac = neighbor_frac;
    return r;
}

/** Common trace shape: enough warps to fill 4 GPUs several times. */
WorkloadParams
shape(std::string name, unsigned kernels, std::uint64_t insts_per_warp,
      std::uint16_t cmin, std::uint16_t cmax, bool iterative,
      std::vector<RegionSpec> regions)
{
    WorkloadParams p;
    p.name = std::move(name);
    p.kernels = kernels;
    p.ctas = 2048;
    p.warps_per_cta = 8;
    p.insts_per_warp = insts_per_warp;
    p.compute_min = cmin;
    p.compute_max = cmax;
    p.iterative = iterative;
    p.regions = std::move(regions);
    return p;
}

std::vector<WorkloadParams>
buildSuite()
{
    using RK = RegionKind;
    std::vector<WorkloadParams> suite;

    // ---- HPC ------------------------------------------------------
    // AMG: large read-only interpolation/structure tables, private
    // vectors. Fixed by read-only page replication.
    suite.push_back(shape("AMG", 4, 10, 4, 12, true, {
        region(RK::Lookup, 1536 * MiB, 0.50, 0.0, 0.7, 2),
        region(RK::PrivateStream, 1700 * MiB, 0.50, 0.30),
    }));

    // HPGMG: iterative multigrid over an unstructured (interleaved)
    // hierarchy -- page-level false sharing, needs CARVE-HWC.
    suite.push_back(shape("HPGMG", 8, 6, 4, 12, true, {
        region(RK::InterleavedStream, 1600 * MiB, 0.55, 0.03),
        region(RK::SharedStream, 100 * MiB, 0.10),
        region(RK::PrivateStream, 300 * MiB, 0.35, 0.45),
    }));

    // HPGMG-amry: the large proxy variant; shared set stresses even
    // big RDCs (Table V).
    suite.push_back(shape("HPGMG-amry", 8, 6, 4, 12, true, {
        region(RK::InterleavedStream, 6000 * MiB, 0.60, 0.03),
        region(RK::PrivateStream, 1700 * MiB, 0.40, 0.40),
    }));

    // Lulesh: small unstructured mesh, many short kernels; the
    // paper's poster child for CARVE over replication.
    suite.push_back(shape("Lulesh", 8, 6, 3, 10, true, {
        region(RK::InterleavedStream, 16 * MiB, 0.70, 0.03),
        region(RK::Atomic, 1 * MiB, 0.03, 0.50),
        region(RK::PrivateStream, 8 * MiB, 0.27, 0.45),
    }));

    // Lulesh-s190: the large-problem variant.
    suite.push_back(shape("Lulesh-s190", 8, 6, 3, 10, true, {
        region(RK::InterleavedStream, 2800 * MiB, 0.70, 0.03),
        region(RK::Atomic, 4 * MiB, 0.05, 0.50),
        region(RK::PrivateStream, 900 * MiB, 0.25, 0.50),
    }));

    // CoMD: molecular dynamics; contiguous cells plus halo exchange.
    suite.push_back(shape("CoMD", 4, 10, 8, 24, true, {
        region(RK::PrivateStream, 700 * MiB, 0.60, 0.25),
        region(RK::Halo, 200 * MiB, 0.35, 0.15, 0.0, 1, 0.30),
        region(RK::Atomic, 2 * MiB, 0.05, 0.40),
    }));

    // MCB: Monte Carlo burnup; big low-skew cross-section lookups
    // with occasional tally writes (false RW pages, real RO lines).
    suite.push_back(shape("MCB", 4, 10, 6, 16, true, {
        region(RK::Lookup, 200 * MiB, 0.70, 0.02, 0.3, 2),
        region(RK::PrivateStream, 54 * MiB, 0.30, 0.30),
    }));

    // MiniAMR: block-structured AMR; mostly private blocks.
    suite.push_back(shape("MiniAMR", 4, 10, 6, 16, true, {
        region(RK::PrivateStream, 3600 * MiB, 0.85, 0.30),
        region(RK::InterleavedStream, 800 * MiB, 0.15, 0.10),
    }));

    // Nekbone: spectral-element solve; private-dominated.
    suite.push_back(shape("Nekbone", 4, 10, 8, 20, true, {
        region(RK::PrivateStream, 800 * MiB, 0.80, 0.30),
        region(RK::SharedStream, 200 * MiB, 0.20),
    }));

    // XSBench: huge unionized-energy-grid gathers; shared set larger
    // than any LLC and stressing the RDC itself; rare flux writes
    // make its pages read-write so replication cannot help.
    suite.push_back(shape("XSBench", 2, 20, 4, 10, true, {
        region(RK::Lookup, 4000 * MiB, 0.85, 0.01, 0.45, 2),
        region(RK::PrivateStream, 400 * MiB, 0.15, 0.20),
    }));

    // Euler3D: unstructured CFD mesh, iterative.
    suite.push_back(shape("Euler", 8, 6, 3, 10, true, {
        region(RK::InterleavedStream, 14 * MiB, 0.65, 0.03),
        region(RK::Halo, 4 * MiB, 0.15, 0.10, 0.0, 1, 0.30),
        region(RK::PrivateStream, 8 * MiB, 0.20, 0.45),
    }));

    // SSSP: graph relaxation; interleaved edges, skewed distance
    // lookups, atomic relax updates.
    suite.push_back(shape("SSSP", 8, 6, 3, 10, true, {
        region(RK::InterleavedStream, 32 * MiB, 0.52, 0.04, 0.0, 2),
        region(RK::Lookup, 8 * MiB, 0.34, 0.10, 0.8),
        region(RK::Atomic, 2 * MiB, 0.06, 0.60),
        region(RK::PrivateStream, 8 * MiB, 0.08, 0.45),
    }));

    // bfs-road: road-network BFS; read-only adjacency dominates, so
    // read-only replication recovers it.
    suite.push_back(shape("bfs-road", 4, 10, 4, 12, true, {
        region(RK::Lookup, 500 * MiB, 0.70, 0.0, 0.9, 2),
        region(RK::PrivateStream, 90 * MiB, 0.30, 0.30),
    }));

    // ---- ML -------------------------------------------------------
    // AlexNet: small broadcast weights + private activations,
    // compute-bound.
    suite.push_back(shape("AlexNet", 4, 10, 48, 112, false, {
        region(RK::SharedStream, 48 * MiB, 0.40),
        region(RK::PrivateStream, 48 * MiB, 0.60, 0.30),
    }));

    // GoogLeNet: weights exceed the LLC; read-only replication or
    // CARVE both recover it.
    suite.push_back(shape("GoogLeNet", 4, 10, 24, 56, false, {
        region(RK::SharedStream, 800 * MiB, 0.50),
        region(RK::PrivateStream, 400 * MiB, 0.50, 0.30),
    }));

    // OverFeat: like AlexNet.
    suite.push_back(shape("OverFeat", 4, 10, 48, 112, false, {
        region(RK::SharedStream, 44 * MiB, 0.40),
        region(RK::PrivateStream, 44 * MiB, 0.60, 0.30),
    }));

    // ---- Other ----------------------------------------------------
    // Bitcoin: hashing, almost pure compute over private state.
    suite.push_back(shape("Bitcoin", 4, 10, 96, 192, false, {
        region(RK::PrivateStream, 5500 * MiB, 0.95, 0.10),
        region(RK::Lookup, 100 * MiB, 0.05, 0.0, 0.8),
    }));

    // Raytracing: BVH gathers with high reuse (cache-friendly).
    suite.push_back(shape("Raytracing", 4, 10, 32, 80, false, {
        region(RK::Lookup, 120 * MiB, 0.60, 0.0, 1.3, 2),
        region(RK::PrivateStream, 30 * MiB, 0.40, 0.30),
    }));

    // stream-triad: the canonical private streaming kernel.
    suite.push_back(shape("stream-triad", 4, 10, 2, 6, false, {
        region(RK::PrivateStream, 3000 * MiB, 1.0, 0.33),
    }));

    // RandAccess: GUPS-style scattered updates over a huge table;
    // the RDC miss-serialization outlier (Section IV-A).
    {
        WorkloadParams p = shape("RandAccess", 4, 10, 10, 30, false, {
            region(RK::RandomGlobal, 12288 * MiB, 0.90, 0.25, 0.0, 2),
            region(RK::PrivateStream, 3000 * MiB, 0.10, 0.30),
        });
        // Fewer resident warps: latency- rather than bandwidth-bound.
        p.ctas = 1280;
        suite.push_back(std::move(p));
    }

    return suite;
}

} // namespace

std::vector<WorkloadParams>
standardSuite(const SuiteOptions &opt)
{
    if (!isPowerOf2(opt.memory_scale))
        fatal("standardSuite: memory_scale must be a power of two");
    std::vector<WorkloadParams> suite = buildSuite();
    for (auto &wl : suite) {
        for (auto &r : wl.regions) {
            // MCB's cross-section tables sit right at the RDC-size
            // crossover the paper's Table V(a) reports; keep them at
            // paper size so the sweep stays meaningful.
            if (wl.name == "MCB" && r.kind == RegionKind::Lookup)
                continue;
            r.bytes = scaleBytes(r.bytes, opt.memory_scale);
        }
        if (opt.duration != 1.0)
            wl = wl.withDurationScale(opt.duration);
    }
    return suite;
}

WorkloadParams
suiteWorkload(const std::string &abbr, const SuiteOptions &opt)
{
    for (auto &wl : standardSuite(opt)) {
        if (wl.name == abbr)
            return wl;
    }
    fatal("suiteWorkload: unknown workload '%s'", abbr.c_str());
}

std::vector<std::string>
suiteNames()
{
    std::vector<std::string> names;
    for (const auto &wl : buildSuite())
        names.push_back(wl.name);
    return names;
}

} // namespace carve
