/**
 * @file
 * Trace-source interface consumed by the GPU model.
 *
 * The paper drives its simulator with proprietary CUDA traces; this
 * reproduction generates equivalent traces on the fly. A Workload is
 * a *pure function* from (kernel, cta, warp, instruction-index) to a
 * warp memory instruction, so traces need no storage, are perfectly
 * reproducible, and are identical regardless of the GPU count or
 * schedule — the property that makes cross-configuration speedup
 * comparisons meaningful.
 */

#ifndef CARVE_WORKLOADS_WORKLOAD_HH
#define CARVE_WORKLOADS_WORKLOAD_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace carve {

/** Maximum distinct cache lines one warp instruction may touch. */
inline constexpr unsigned max_lines_per_inst = 8;

/**
 * One warp-wide memory instruction after coalescing: up to
 * max_lines_per_inst distinct line addresses plus the compute gap the
 * warp spends before issuing its *next* memory instruction.
 */
struct WarpInstruction
{
    AccessType type = AccessType::Read;
    std::uint16_t compute_cycles = 0;
    std::uint8_t num_lines = 0;
    std::array<Addr, max_lines_per_inst> lines{};
};

/**
 * Abstract trace source. Implementations must be deterministic and
 * stateless with respect to call order.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Workload display name. */
    virtual const std::string &name() const = 0;

    /** Number of kernel launches in the trace. */
    virtual unsigned numKernels() const = 0;

    /** CTA count of kernel @p k. */
    virtual std::uint64_t numCtas(KernelId k) const = 0;

    /** Warps per CTA (constant across kernels). */
    virtual unsigned warpsPerCta() const = 0;

    /** Memory instructions each warp executes in kernel @p k. */
    virtual std::uint64_t instsPerWarp(KernelId k) const = 0;

    /**
     * Produce instruction @p idx of warp @p w of CTA @p cta in
     * kernel @p k. Must be a pure function of its arguments.
     */
    virtual void instruction(KernelId k, CtaId cta, WarpId w,
                             std::uint64_t idx,
                             WarpInstruction &out) const = 0;

    /** Total dynamic warp instructions across the whole trace. */
    std::uint64_t
    totalInstructions() const
    {
        std::uint64_t total = 0;
        for (KernelId k = 0; k < numKernels(); ++k)
            total += numCtas(k) * warpsPerCta() * instsPerWarp(k);
        return total;
    }
};

} // namespace carve

#endif // CARVE_WORKLOADS_WORKLOAD_HH
