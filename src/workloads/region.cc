#include "workloads/region.hh"

namespace carve {

const char *
regionKindName(RegionKind k)
{
    switch (k) {
      case RegionKind::PrivateStream: return "private-stream";
      case RegionKind::InterleavedStream: return "interleaved-stream";
      case RegionKind::SharedStream: return "shared-stream";
      case RegionKind::Lookup: return "lookup";
      case RegionKind::Halo: return "halo";
      case RegionKind::Atomic: return "atomic";
      case RegionKind::RandomGlobal: return "random-global";
    }
    return "?";
}

} // namespace carve
