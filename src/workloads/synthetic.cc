#include "workloads/synthetic.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/units.hh"

namespace carve {

namespace {

/** SplitMix-style 64-bit mixer. */
std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

std::uint64_t
hashIds(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
        std::uint64_t c, std::uint64_t d)
{
    std::uint64_t h = seed;
    h = mix(h ^ a);
    h = mix(h ^ b);
    h = mix(h ^ c);
    h = mix(h ^ d);
    return h;
}

} // namespace

std::uint64_t
WorkloadParams::footprint() const
{
    std::uint64_t total = 0;
    for (const auto &r : regions)
        total += r.bytes;
    return total;
}

WorkloadParams
WorkloadParams::withDurationScale(double f) const
{
    WorkloadParams p = *this;
    const auto scaled = static_cast<std::uint64_t>(
        static_cast<double>(insts_per_warp) * f);
    p.insts_per_warp = std::max<std::uint64_t>(2, scaled);
    return p;
}

SyntheticWorkload::SyntheticWorkload(WorkloadParams params,
                                     std::uint64_t line_size,
                                     std::uint64_t seed)
    : params_(std::move(params)), line_size_(line_size), seed_(seed)
{
    if (params_.regions.empty())
        fatal("SyntheticWorkload %s: no regions",
              params_.name.c_str());
    if (params_.warps_per_cta == 0 || params_.ctas == 0)
        fatal("SyntheticWorkload %s: degenerate trace shape",
              params_.name.c_str());

    // Mix the workload name into the seed so two same-seed workloads
    // still draw distinct streams.
    for (const char ch : params_.name)
        seed_ = mix(seed_ ^ static_cast<std::uint64_t>(ch));

    // Regions live in disjoint 64 GiB-aligned VA slots.
    double cum = 0.0;
    for (std::size_t i = 0; i < params_.regions.size(); ++i) {
        const RegionSpec &r = params_.regions[i];
        if (r.bytes < line_size)
            fatal("SyntheticWorkload %s: region %zu smaller than a "
                  "line", params_.name.c_str(), i);
        base_.push_back((static_cast<Addr>(i) + 1) << 36);
        lines_.push_back(r.bytes / line_size);
        cum += r.access_frac;
        cum_frac_.push_back(cum);
    }
    if (cum <= 0.0)
        fatal("SyntheticWorkload %s: zero total access fraction",
              params_.name.c_str());
    // Normalize.
    for (auto &c : cum_frac_)
        c /= cum;
}

Addr
SyntheticWorkload::streamLine(const RegionSpec &r, std::size_t ri,
                              CtaId cta, WarpId w, std::uint64_t idx,
                              std::uint64_t &line_index) const
{
    const std::uint64_t region_lines = lines_[ri];
    const std::uint64_t pos =
        w + static_cast<std::uint64_t>(params_.warps_per_cta) * idx;

    switch (r.kind) {
      case RegionKind::PrivateStream:
      case RegionKind::Halo: {
        const std::uint64_t slice =
            std::max<std::uint64_t>(1, region_lines / params_.ctas);
        line_index = (cta % params_.ctas) * slice + pos % slice;
        break;
      }
      case RegionKind::InterleavedStream:
        // Line i belongs to CTA (i % ctas): consecutive lines fan out
        // across CTAs, so pages interleave ownership (false sharing).
        line_index = (pos * params_.ctas + cta) % region_lines;
        break;
      case RegionKind::SharedStream:
        line_index = pos % region_lines;
        break;
      default:
        line_index = 0;
        break;
    }
    if (line_index >= region_lines)
        line_index %= region_lines;
    return base_[ri] + line_index * line_size_;
}

void
SyntheticWorkload::instruction(KernelId k, CtaId cta, WarpId w,
                               std::uint64_t idx,
                               WarpInstruction &out) const
{
    const std::uint64_t k_eff = params_.iterative ? 0 : k;
    Rng rng(hashIds(seed_, k_eff, cta, w, idx));

    // Pick the region this instruction targets.
    const double u = rng.uniform();
    std::size_t ri = 0;
    while (ri + 1 < cum_frac_.size() && u > cum_frac_[ri])
        ++ri;
    const RegionSpec &r = params_.regions[ri];
    const std::uint64_t region_lines = lines_[ri];

    out.type = rng.chance(r.write_frac) ? AccessType::Write
                                        : AccessType::Read;
    const unsigned span =
        static_cast<unsigned>(params_.compute_max) -
        static_cast<unsigned>(params_.compute_min) + 1;
    out.compute_cycles = static_cast<std::uint16_t>(
        params_.compute_min + rng.below(span));

    const std::uint8_t lanes = std::min<std::uint8_t>(
        std::max<std::uint8_t>(r.lanes, 1), max_lines_per_inst);

    switch (r.kind) {
      case RegionKind::PrivateStream:
      case RegionKind::InterleavedStream:
      case RegionKind::SharedStream: {
        std::uint64_t li = 0;
        out.lines[0] = streamLine(r, ri, cta, w, idx, li);
        out.num_lines = 1;
        break;
      }

      case RegionKind::Halo: {
        std::uint64_t li = 0;
        if (!isWrite(out.type) && rng.chance(r.neighbor_frac)) {
            // Read an edge line of a neighbouring CTA's slice.
            const std::uint64_t slice = std::max<std::uint64_t>(
                1, region_lines / params_.ctas);
            const CtaId neighbor = rng.chance(0.5)
                ? (cta + 1) % params_.ctas
                : (cta + params_.ctas - 1) % params_.ctas;
            const std::uint64_t edge_span =
                std::min<std::uint64_t>(slice, 16);
            const std::uint64_t edge = rng.chance(0.5)
                ? rng.below(edge_span)               // leading edge
                : slice - 1 - rng.below(edge_span);  // trailing edge
            li = (neighbor * slice + edge) % region_lines;
            out.lines[0] = base_[ri] + li * line_size_;
        } else {
            out.lines[0] = streamLine(r, ri, cta, w, idx, li);
        }
        out.num_lines = 1;
        break;
      }

      case RegionKind::Atomic: {
        out.lines[0] =
            base_[ri] + rng.below(region_lines) * line_size_;
        out.num_lines = 1;
        break;
      }

      case RegionKind::Lookup:
      case RegionKind::RandomGlobal: {
        out.num_lines = 0;
        for (unsigned j = 0; j < lanes; ++j) {
            const std::uint64_t li = r.zipf > 0.0
                ? rng.zipf(region_lines, r.zipf)
                : rng.below(region_lines);
            const Addr line = base_[ri] + li * line_size_;
            bool dup = false;
            for (unsigned q = 0; q < out.num_lines; ++q) {
                if (out.lines[q] == line) {
                    dup = true;
                    break;
                }
            }
            if (!dup)
                out.lines[out.num_lines++] = line;
        }
        break;
      }
    }

    carve_assert(out.num_lines >= 1);
}

} // namespace carve
