#include "core/multi_gpu_system.hh"

#include <algorithm>
#include <functional>
#include <optional>
#include <utility>

#include "common/hostnuma.hh"
#include "common/logging.hh"

namespace carve {

namespace {

/** Chunk-table headroom for the cross-domain op pools: readers in
 * other domains must never observe the table reallocate (16k in-flight
 * ops per source, far above any configuration's MSHR budget). */
constexpr std::size_t kOpPoolChunkReserve = 64;

/** NUMA node the constructing thread runs on (-1 == unbound). The
 * harness binds workers before building systems, so arenas land on
 * the worker's local node when CARVE_NUMA is enabled. */
int
homeNumaNode()
{
    return hostnuma::available() ? hostnuma::currentNode() : -1;
}

} // namespace

MultiGpuSystem::MultiGpuSystem(const SystemConfig &cfg,
                               const Workload &wl, bool profile_lines,
                               bool audit,
                               telemetry::Options telemetry)
    : cfg_(cfg),
      engine_(cfg_.num_gpus, DomainEngine::lookaheadWindow(cfg_),
              cfg_.engine, cfg_.sim_threads),
      wl_(wl),
      pages_(cfg_, true, profile_lines),
      net_(engine_, cfg_.link, cfg_.num_gpus),
      sys_arena_(Arena::default_chunk_bytes, homeNumaNode()),
      sched_(cfg_.num_gpus),
      telem_(telemetry),
      stat_root_("")
{
    cfg_.validate();
    if (audit)
        audit_.emplace();

    if (cfg_.rdc.enabled &&
        cfg_.rdc.coherence == RdcCoherence::HardwareVI) {
        CoherenceOps ops;
        // Invalidates fan out from the write's home domain: the home
        // drops its own copies in place, every other node gets the
        // invalidate one lookahead window later (covering the control
        // packet's wire latency).
        ops.invalidate_at = [this](NodeId node, Addr line) {
            if (node == engine_ctx::currentShard()) {
                gpus_[node]->invalidateLine(line);
                return;
            }
            engine_.post(node, engine_.now() + engine_.lookahead(),
                         bindEvent<&MultiGpuSystem::invalidateAt>(
                             this, node, line));
        };
        ops.send_ctrl = [this](NodeId src, NodeId dst,
                               unsigned bytes) {
            fabric_coh_ctrl_bytes_.inc(bytes);
            net_.send(src, dst, bytes, Network::Callback());
        };
        vi_.emplace(cfg_, cfg_.num_gpus, std::move(ops));
    }

    gpu_arenas_.reserve(cfg_.num_gpus);
    for (unsigned g = 0; g < cfg_.num_gpus; ++g) {
        gpu_arenas_.emplace_back(Arena::default_chunk_bytes,
                                 homeNumaNode());
    }

    remote_read_ops_.reserve(cfg_.num_gpus);
    cpu_read_ops_.reserve(cfg_.num_gpus);
    for (unsigned g = 0; g < cfg_.num_gpus; ++g) {
        remote_read_ops_.emplace_back(&gpu_arenas_[g]);
        remote_read_ops_.back().reserveChunks(kOpPoolChunkReserve);
        cpu_read_ops_.emplace_back(&gpu_arenas_[g]);
        cpu_read_ops_.back().reserveChunks(kOpPoolChunkReserve);
    }

    gpus_.reserve(cfg_.num_gpus);
    for (unsigned g = 0; g < cfg_.num_gpus; ++g) {
        gpus_.push_back(std::make_unique<GpuNode>(
            engine_.queue(g), cfg_, g, pages_, *this,
            &gpu_arenas_[g]));
        gpus_.back()->setWorkload(&wl_);
        gpus_.back()->setKernelDoneCallback([this](NodeId id) {
            // Completion is observed in the GPU's domain; the system
            // domain learns about it a window later.
            engine_.post(engine_.systemDomain(),
                         engine_.now() + engine_.lookahead(),
                         bindEvent<&MultiGpuSystem::onGpuKernelDone>(
                             this, id));
        });
    }

    if (audit_) {
        net_.setAudit(&*audit_);
        for (auto &gpu : gpus_)
            gpu->setAudit(&*audit_);
    }

    if (telem_.enabled) {
        engine_profile_.host_timing = telem_.host_timing;
        engine_.attachProfile(&engine_profile_);
        net_.enableTelemetry();
        for (auto &gpu : gpus_)
            gpu->enableTelemetry();
    }

    registerStats();
    phase_base_ = stats::snapshotScalars(stat_root_);
}

void
MultiGpuSystem::registerStats()
{
    const auto child = [&](const std::string &name) {
        stat_groups_.push_back(
            std::make_unique<stats::StatGroup>(name, &stat_root_));
        return stat_groups_.back().get();
    };

    // Registered even when no session is attached (reads 0): the stat
    // name set must not depend on tracing, or traced-off and untraced
    // results files would differ.
    stats::StatGroup *tracing = child("trace");
    tracing->addDerivedInt("dropped_events",
                           [this] {
                               return trace_ ? trace_->droppedEvents()
                                             : 0;
                           },
                           "trace events overwritten oldest-first by "
                           "a full ring buffer");

    stats::StatGroup *sim = child("sim");
    sim->addScalar("bulk_bytes", &bulk_bytes_,
                   "page-copy bytes moved by the NUMA runtime");
    sim->addDerivedInt("cycles",
                       [this] {
                           return finished_ ? finish_time_
                                            : engine_.now();
                       },
                       "end-to-end runtime in cycles");
    sim->addDerivedInt("insts_issued",
                       [this] { return totalInstsIssued(); },
                       "warp instructions issued system-wide");
    sim->addDerivedInt("events",
                       [this] { return engine_.eventsExecuted(); },
                       "discrete events executed across all domains");

    stats::StatGroup *fabric = child("fabric");
    fabric->addScalar("remote_read_msgs",
                      &fabric_remote_read_msgs_.scalar(),
                      "remote read requests entering the fabric");
    fabric->addScalar("remote_write_msgs",
                      &fabric_remote_write_msgs_.scalar(),
                      "remote write messages entering the fabric");
    fabric->addScalar("cpu_read_msgs", &fabric_cpu_read_msgs_.scalar(),
                      "CPU read requests entering the fabric");
    fabric->addScalar("cpu_write_msgs",
                      &fabric_cpu_write_msgs_.scalar(),
                      "CPU write messages entering the fabric");
    fabric->addScalar("flush_bytes", &fabric_flush_bytes_.scalar(),
                      "RDC boundary-flush bytes entering the fabric");
    fabric->addScalar("coh_ctrl_bytes",
                      &fabric_coh_ctrl_bytes_.scalar(),
                      "coherence control bytes entering the fabric");
    fabric->addScalar("bulk_gpu_bytes",
                      &fabric_bulk_gpu_bytes_.scalar(),
                      "bulk-transfer bytes charged to GPU-GPU links");
    fabric->addScalar("bulk_cpu_bytes",
                      &fabric_bulk_cpu_bytes_.scalar(),
                      "bulk-transfer bytes charged to CPU links");
    if (telem_.enabled) {
        fabric->addHistogram(
            "remote_read_latency", &remote_read_latency_.histogram(),
            "cycles from remote-read issue to data back at the "
            "source GPU");
    }

    // Engine self-profiling. Like every telemetry stat, the whole
    // group is registered whenever telemetry is on — regardless of
    // the engine mode or thread count — so the stat name set is a
    // function of the options alone (barrier_wait_ns simply reads
    // empty for serial runs or when host_timing is off).
    if (telem_.enabled) {
        stats::StatGroup *eng = child("engine");
        eng->addDerivedInt("windows",
                           [this] { return engine_profile_.windows; },
                           "lookahead windows executed");
        eng->addHistogram("window_occupancy",
                          &engine_profile_.window_occupancy,
                          "events executed per domain per lookahead "
                          "window");
        eng->addHistogram("outbox_depth",
                          &engine_profile_.outbox_depth,
                          "cross-domain messages buffered per outbox "
                          "at each exchange");
        eng->addHistogram("exchange_msgs",
                          &engine_profile_.exchange_msgs,
                          "cross-domain messages exchanged per window");
        eng->addHistogram("barrier_wait_ns",
                          &engine_profile_.barrier_wait_ns,
                          "host nanoseconds workers spent blocked at "
                          "window barriers (host_timing only)");
        for (unsigned d = 0; d < engine_.numDomains(); ++d) {
            stat_groups_.push_back(std::make_unique<stats::StatGroup>(
                "domain" + std::to_string(d), eng));
            stat_groups_.back()->addDerivedInt(
                "events",
                [this, d] { return engine_.queue(d).executed(); },
                "events executed in this domain");
        }
    }

    if (audit_) {
        stats::StatGroup *audit_grp = child("audit");
        stat_groups_.push_back(std::make_unique<stats::StatGroup>(
            "inflight", audit_grp));
        audit_->registerStats(*stat_groups_.back());
    }

    net_.registerStats(*child("link"));
    pages_.registerStats(*child("numa"));
    if (vi_)
        vi_->registerStats(*child("coherence"));
    for (unsigned g = 0; g < cfg_.num_gpus; ++g)
        gpus_[g]->registerStats(*child("gpu" + std::to_string(g)));
}

void
MultiGpuSystem::setTrace(trace::Session *session)
{
    trace_ = session;
    session->defineProcess(0, "system");
    session->defineThread(0, 0, "kernels");
    session->defineThread(0, 1, "log");
    for (unsigned g = 0; g < numGpus(); ++g)
        gpus_[g]->setTrace(session, 1 + g);
    net_.setTrace(session, 1 + numGpus());
}

void
MultiGpuSystem::foldShardedStats()
{
    fabric_remote_read_msgs_.fold();
    fabric_remote_write_msgs_.fold();
    fabric_cpu_read_msgs_.fold();
    fabric_cpu_write_msgs_.fold();
    fabric_flush_bytes_.fold();
    fabric_coh_ctrl_bytes_.fold();
    fabric_bulk_gpu_bytes_.fold();
    fabric_bulk_cpu_bytes_.fold();
    if (telem_.enabled)
        remote_read_latency_.fold();
    if (audit_)
        audit_->foldShards();
    if (vi_)
        vi_->foldShards();
}

Cycle
MultiGpuSystem::run(Cycle max_cycles, double max_wall_seconds)
{
    carve_assert(!finished_);

    // Mirror fatal/panic/warn text onto the timeline so the trace and
    // the harness's error capture tell one story.
    std::optional<ScopedLogObserver> log_obs;
    if (trace::active(trace_, trace::Category::Audit)) {
        log_obs.emplace([this](LogLevel, const std::string &msg) {
            trace_->instantText(trace::Category::Audit,
                                trace::makeTrack(0, 1), msg,
                                engine_.now());
        });
    }

    // Kernel sequencing lives in the system domain; kick it off there.
    engine_.queue(engine_.systemDomain())
        .schedule(0, bindEvent<&MultiGpuSystem::launchKernel>(
                         this, KernelId{0}));

    DomainEngine::Hooks hooks;
    hooks.max_wall_seconds = max_wall_seconds;
    hooks.on_barrier = [this](Cycle t) {
        // Commit the window's NUMA policy decisions (single-threaded,
        // deterministic order), then make every sharded counter
        // coherent for barrier actions and snapshots.
        pages_.commitWindow(t, [this](NodeId src, NodeId dst) {
            bulkTransfer(src, dst, pages_.table().pageSize());
        });
        foldShardedStats();
        // Counter sampling happens at barriers, never from scheduled
        // events, so a traced run executes the exact event sequence
        // of an untraced one.
        if (trace_ != nullptr && trace_->hasCounters() &&
            trace_->sampleInterval() > 0 && t >= trace_next_sample_) {
            trace_->sampleCounters(t);
            trace_next_sample_ = t + trace_->sampleInterval();
        }
    };
    hooks.keep_going = [this, max_cycles](Cycle next_window_start) {
        if (max_cycles != 0 && next_window_start > max_cycles)
            return false;
        if (!finished_)
            return true;
        // Audit mode drains the posted tail (stores, DRAM callbacks,
        // link deliveries) so every issued token can retire.
        return audit_.has_value() && !engine_.quiescent();
    };

    engine_.run(hooks);

    watchdog_tripped_ = !finished_;
    if (watchdog_tripped_ &&
        trace::active(trace_, trace::Category::Audit)) {
        trace_->instant(trace::Category::Audit, trace::makeTrack(0, 1),
                        "watchdog_tripped", engine_.now());
    }
    pages_.finalizeProfile();
    if (audit_ && finished_)
        auditCheck(/* final_pass */ true);
    return finished_ ? finish_time_ : engine_.now();
}

void
MultiGpuSystem::launchKernel(KernelId k)
{
    // Runs in the system domain. The CTA batches written here are
    // read by the GPU domains only after the next barrier, which is
    // also when the startKernel events below can earliest fire.
    cur_kernel_ = k;
    kernel_started_at_ = engine_.now();
    gpus_done_ = 0;
    sched_.launchKernel(wl_.numCtas(k));
    const Cycle when = engine_.now() + engine_.lookahead();
    for (unsigned g = 0; g < gpus_.size(); ++g) {
        engine_.post(g, when,
                     bindEvent<&MultiGpuSystem::startGpuKernel>(
                         this, g, k));
    }
}

void
MultiGpuSystem::startGpuKernel(NodeId g, KernelId k)
{
    gpus_[g]->startKernel(k, sched_);
}

void
MultiGpuSystem::onGpuKernelDone(NodeId)
{
    // Runs in the system domain (posted from the finishing GPU).
    ++gpus_done_;
    if (gpus_done_ < gpus_.size())
        return;
    // Kernel-boundary work mutates every GPU's caches: defer it to
    // the window barrier, where all domains are stopped.
    engine_.atNextBarrier([this] { finishKernelBarrier(); });
}

void
MultiGpuSystem::finishKernelBarrier()
{
    carve_assert(sched_.kernelDone());

    // Global barrier reached: apply kernel-boundary coherence on
    // every GPU; the slowest flush gates the next launch.
    Cycle stall = 0;
    for (auto &gpu : gpus_)
        stall = std::max(stall, gpu->kernelBoundary());

    if (trace::active(trace_, trace::Category::Kernel)) {
        const std::uint32_t track = trace::makeTrack(0, 0);
        trace_->span(trace::Category::Kernel, track,
                     trace_->intern("kernel " +
                                    std::to_string(cur_kernel_)),
                     kernel_started_at_, engine_.now(), cur_kernel_);
        trace_->instant(trace::Category::Kernel, track,
                        "kernel_boundary", engine_.now(), stall);
    }

    // Epoch snapshot: the counter increase attributable to this
    // kernel, boundary actions included. Sharded counters were folded
    // by the on_barrier hook (which runs before barrier actions), so
    // the snapshot sees complete totals. Live counters are never
    // reset, so the running totals in the tree stay end-to-end.
    stats::EpochPhase phase;
    phase.index = cur_kernel_;
    phase.start_cycle = phase_start_;
    phase.end_cycle = engine_.now();
    const stats::ScalarSnapshot snap =
        stats::snapshotScalars(stat_root_);
    phase.deltas = stats::snapshotDelta(phase_base_, snap);
    phases_.push_back(std::move(phase));
    phase_base_ = snap;
    phase_start_ = engine_.now();

    auditCheck(/* final_pass */ false);

    if (cur_kernel_ + 1 < wl_.numKernels()) {
        const KernelId next = cur_kernel_ + 1;
        engine_.post(engine_.systemDomain(),
                     engine_.now() + cfg_.core.kernel_launch_latency +
                         stall,
                     bindEvent<&MultiGpuSystem::launchKernel>(this,
                                                              next));
    } else {
        finished_ = true;
        finish_time_ = engine_.now() + stall;
    }
}

void
MultiGpuSystem::remoteRead(NodeId src, NodeId home, Addr line,
                           Callback done)
{
    carve_assert(src != home && home < gpus_.size());
    fabric_remote_read_msgs_.inc();
    // The op's state lives in the source domain's pool so each hop of
    // the request/service/data chain is a small bound event; only the
    // source domain allocates and frees.
    const std::uint32_t op = remote_read_ops_[src].alloc(
        RemoteReadOp{line, done, src, home, engine_.now()});
    // Request packet to the home node...
    net_.send(src, home, cfg_.link.ctrl_packet_size,
              bindEvent<&MultiGpuSystem::remoteReadAtHome>(this, src,
                                                           op));
}

void
MultiGpuSystem::remoteReadAtHome(NodeId src, std::uint32_t op)
{
    // Runs in the home domain; the record was published before the
    // request crossed the window barrier.
    const RemoteReadOp &r = remote_read_ops_[src][op];
    if (vi_)
        vi_->onRead(r.home, r.src, r.line);
    // ...home DRAM access...
    gpus_[r.home]->serviceRemoteRead(
        r.line,
        Completion::bind<&MultiGpuSystem::remoteReadServiced>(
            this, src, op));
}

void
MultiGpuSystem::remoteReadServiced(NodeId src, std::uint32_t op)
{
    const RemoteReadOp &r = remote_read_ops_[src][op];
    // ...data line back to the requester. Sent even for an empty
    // completion: the source-side delivery frees the op record.
    net_.send(r.home, r.src, cfg_.line_size,
              bindEvent<&MultiGpuSystem::deliverRemoteReadData>(
                  this, src, op));
}

void
MultiGpuSystem::deliverRemoteReadData(NodeId src, std::uint32_t op)
{
    // Back in the source domain: recycle the op and unblock the miss.
    const RemoteReadOp r = remote_read_ops_[src][op];
    remote_read_ops_[src].free(op);
    if (telem_.enabled)
        remote_read_latency_.sample(engine_.now() - r.issued);
    if (r.done)
        r.done();
}

void
MultiGpuSystem::remoteWrite(NodeId src, NodeId home, Addr line)
{
    carve_assert(src != home && home < gpus_.size());
    fabric_remote_write_msgs_.inc();
    net_.send(src, home, cfg_.line_size,
              bindEvent<&MultiGpuSystem::deliverRemoteWrite>(
                  this, src, home, line));
}

void
MultiGpuSystem::deliverRemoteWrite(NodeId src, NodeId home, Addr line)
{
    gpus_[home]->serviceRemoteWrite(line);
    if (vi_)
        vi_->onWrite(home, src, line);
}

void
MultiGpuSystem::cpuRead(NodeId src, Addr line, Callback done)
{
    (void)line;
    fabric_cpu_read_msgs_.inc();
    const std::uint32_t op =
        cpu_read_ops_[src].alloc(CpuReadOp{done, src});
    net_.sendToCpu(src, cfg_.link.ctrl_packet_size,
                   bindEvent<&MultiGpuSystem::cpuReadAtCpu>(this, src,
                                                            op));
}

void
MultiGpuSystem::cpuReadAtCpu(NodeId src, std::uint32_t op)
{
    // Runs in the system domain: CPU memory belongs to it.
    engine_.queue(engine_.systemDomain())
        .scheduleAfter(cfg_.link.cpu_mem_latency,
                       bindEvent<&MultiGpuSystem::cpuReadData>(
                           this, src, op));
}

void
MultiGpuSystem::cpuReadData(NodeId src, std::uint32_t op)
{
    const CpuReadOp &r = cpu_read_ops_[src][op];
    net_.sendFromCpu(r.src, cfg_.line_size,
                     bindEvent<&MultiGpuSystem::deliverCpuReadData>(
                         this, src, op));
}

void
MultiGpuSystem::deliverCpuReadData(NodeId src, std::uint32_t op)
{
    const CpuReadOp r = cpu_read_ops_[src][op];
    cpu_read_ops_[src].free(op);
    if (r.done)
        r.done();
}

void
MultiGpuSystem::cpuWrite(NodeId src, Addr line)
{
    (void)line;
    fabric_cpu_write_msgs_.inc();
    net_.sendToCpu(src, cfg_.line_size, Network::Callback());
}

void
MultiGpuSystem::bulkTransfer(NodeId src, NodeId dst,
                             std::uint64_t bytes)
{
    // Charged from barrier context (NUMA commit, tests): the links'
    // source-domain state is safe to touch while domains are stopped.
    if (src == dst)
        return;
    bulk_bytes_ += bytes;
    if (!cfg_.numa.charge_bulk_transfers)
        return;

    Network::Callback done;
    if (audit_) {
        audit_->issue(audit::Boundary::BulkTransfer);
        done = [tracker = &*audit_] {
            tracker->retire(audit::Boundary::BulkTransfer);
        };
    }

    if (src == cpu_node) {
        fabric_bulk_cpu_bytes_.inc(bytes);
        net_.sendFromCpu(dst, bytes, std::move(done));
    } else if (dst == cpu_node) {
        fabric_bulk_cpu_bytes_.inc(bytes);
        net_.sendToCpu(src, bytes, std::move(done));
    } else {
        fabric_bulk_gpu_bytes_.inc(bytes);
        net_.send(src, dst, bytes, std::move(done));
    }
}

void
MultiGpuSystem::rdcFlush(NodeId src, NodeId home, std::uint64_t bytes)
{
    carve_assert(src != home && home < gpus_.size());
    fabric_flush_bytes_.inc(bytes);
    // Posted: the boundary stall already charged the drain latency on
    // the source side; the data still occupies the wire.
    net_.send(src, home, bytes, Network::Callback());
}

void
MultiGpuSystem::coherenceLocalAccess(NodeId home, Addr line,
                                     AccessType type)
{
    if (!vi_)
        return;
    if (isWrite(type))
        vi_->onWrite(home, home, line);
    else
        vi_->onRead(home, home, line);
}

void
MultiGpuSystem::invalidateAt(NodeId node, Addr line)
{
    gpus_[node]->invalidateLine(line);
}

std::uint64_t
MultiGpuSystem::totalInstsIssued() const
{
    std::uint64_t total = 0;
    for (const auto &gpu : gpus_)
        total += gpu->instsIssued();
    return total;
}

void
MultiGpuSystem::auditCheck(bool final_pass)
{
    if (!audit_)
        return;

    if (trace::active(trace_, trace::Category::Audit)) {
        trace_->instant(trace::Category::Audit, trace::makeTrack(0, 1),
                        final_pass ? "audit_final_pass" : "audit_pass",
                        engine_.now());
    }

    std::vector<std::string> fails;
    audit::checkCacheProbes(stat_root_, fails);

    audit::ConservationParams params;
    params.line_size = cfg_.line_size;
    params.ctrl_packet_size = cfg_.link.ctrl_packet_size;
    params.final_pass = final_pass;
    audit::checkConservation(stat_root_, params, fails);

    for (unsigned g = 0; g < numGpus(); ++g) {
        if (const RdcController *rdc = gpus_[g]->rdc())
            rdc->auditDirtyState("gpu" + std::to_string(g) + ".rdc",
                                 fails);
    }

    if (final_pass) {
        // The queues have drained: every token must be retired, every
        // MSHR entry completed, every warp finished.
        audit_->check(fails);
        for (unsigned g = 0; g < numGpus(); ++g) {
            const GpuNode &gpu = *gpus_[g];
            const std::string prefix = "gpu" + std::to_string(g);
            if (gpu.l2Mshrs().size() != 0) {
                fails.push_back(prefix + ": " +
                    std::to_string(gpu.l2Mshrs().size()) +
                    " L2 MSHR entr(ies) stranded at end of sim");
            }
            if (gpu.rdc() && gpu.rdc()->mshrs().size() != 0) {
                fails.push_back(prefix + ": " +
                    std::to_string(gpu.rdc()->mshrs().size()) +
                    " RDC MSHR entr(ies) stranded at end of sim");
            }
            for (unsigned s = 0; s < gpu.numSms(); ++s) {
                const Sm &sm = gpu.sm(s);
                if (sm.l1Mshrs().size() != 0) {
                    fails.push_back(prefix + ".sm" +
                        std::to_string(s) + ": " +
                        std::to_string(sm.l1Mshrs().size()) +
                        " L1 MSHR entr(ies) stranded at end of sim");
                }
                if (!sm.idle()) {
                    fails.push_back(prefix + ".sm" +
                        std::to_string(s) +
                        ": warps still resident at end of sim");
                }
            }
        }
    }

    if (fails.empty())
        return;
    std::string msg = "carve-audit: " +
        std::to_string(fails.size()) + " invariant violation(s) " +
        (final_pass ? "at end of simulation"
                    : "at kernel boundary") +
        " (kernel " + std::to_string(cur_kernel_) + ")";
    for (const std::string &f : fails)
        msg += "\n  " + f;
    panic("%s", msg.c_str());
}

} // namespace carve
