#include "core/multi_gpu_system.hh"

#include <algorithm>
#include <chrono>
#include <functional>
#include <optional>
#include <utility>

#include "common/hostnuma.hh"
#include "common/logging.hh"

namespace carve {

namespace {

/** Events between wall-clock watchdog polls. */
constexpr std::uint64_t kClockCheckInterval = 8192;

/** NUMA node the constructing thread runs on (-1 == unbound). The
 * harness binds workers before building systems, so arenas land on
 * the worker's local node when CARVE_NUMA is enabled. */
int
homeNumaNode()
{
    return hostnuma::available() ? hostnuma::currentNode() : -1;
}

} // namespace

MultiGpuSystem::MultiGpuSystem(const SystemConfig &cfg,
                               const Workload &wl, bool profile_lines,
                               bool audit)
    : cfg_(cfg), wl_(wl),
      pages_(cfg_, true, profile_lines),
      net_(eq_, cfg_.link, cfg_.num_gpus),
      sys_arena_(Arena::default_chunk_bytes, homeNumaNode()),
      remote_read_ops_(&sys_arena_),
      cpu_read_ops_(&sys_arena_),
      sched_(cfg_.num_gpus),
      stat_root_("")
{
    cfg_.validate();
    if (audit)
        audit_.emplace();

    if (cfg_.rdc.enabled &&
        cfg_.rdc.coherence == RdcCoherence::HardwareVI) {
        CoherenceOps ops;
        ops.invalidate_at = [this](NodeId node, Addr line) {
            gpus_[node]->invalidateLine(line);
        };
        ops.send_ctrl = [this](NodeId src, NodeId dst,
                               unsigned bytes) {
            fabric_coh_ctrl_bytes_ += bytes;
            net_.send(src, dst, bytes, Network::Callback());
        };
        vi_.emplace(cfg_, cfg_.num_gpus, std::move(ops));
    }

    gpu_arenas_.reserve(cfg_.num_gpus);
    gpus_.reserve(cfg_.num_gpus);
    for (unsigned g = 0; g < cfg_.num_gpus; ++g) {
        gpu_arenas_.emplace_back(Arena::default_chunk_bytes,
                                 homeNumaNode());
        gpus_.push_back(std::make_unique<GpuNode>(
            eq_, cfg_, g, pages_, *this, &gpu_arenas_.back()));
        gpus_.back()->setWorkload(&wl_);
        gpus_.back()->setKernelDoneCallback(
            [this](NodeId id) { onGpuKernelDone(id); });
    }

    if (audit_) {
        net_.setAudit(&*audit_);
        for (auto &gpu : gpus_)
            gpu->setAudit(&*audit_);
    }

    registerStats();
    phase_base_ = stats::snapshotScalars(stat_root_);
}

void
MultiGpuSystem::registerStats()
{
    const auto child = [&](const std::string &name) {
        stat_groups_.push_back(
            std::make_unique<stats::StatGroup>(name, &stat_root_));
        return stat_groups_.back().get();
    };

    // Registered even when no session is attached (reads 0): the stat
    // name set must not depend on tracing, or traced-off and untraced
    // results files would differ.
    stats::StatGroup *tracing = child("trace");
    tracing->addDerivedInt("dropped_events",
                           [this] {
                               return trace_ ? trace_->droppedEvents()
                                             : 0;
                           },
                           "trace events overwritten oldest-first by "
                           "a full ring buffer");

    stats::StatGroup *sim = child("sim");
    sim->addScalar("bulk_bytes", &bulk_bytes_,
                   "page-copy bytes moved by the NUMA runtime");
    sim->addDerivedInt("cycles",
                       [this] {
                           return finished_ ? finish_time_ : eq_.now();
                       },
                       "end-to-end runtime in cycles");
    sim->addDerivedInt("insts_issued",
                       [this] { return totalInstsIssued(); },
                       "warp instructions issued system-wide");
    sim->addDerivedInt("events", [this] { return eq_.executed(); },
                       "discrete events executed by the engine");

    stats::StatGroup *fabric = child("fabric");
    fabric->addScalar("remote_read_msgs", &fabric_remote_read_msgs_,
                      "remote read requests entering the fabric");
    fabric->addScalar("remote_write_msgs", &fabric_remote_write_msgs_,
                      "remote write messages entering the fabric");
    fabric->addScalar("cpu_read_msgs", &fabric_cpu_read_msgs_,
                      "CPU read requests entering the fabric");
    fabric->addScalar("cpu_write_msgs", &fabric_cpu_write_msgs_,
                      "CPU write messages entering the fabric");
    fabric->addScalar("flush_bytes", &fabric_flush_bytes_,
                      "RDC boundary-flush bytes entering the fabric");
    fabric->addScalar("coh_ctrl_bytes", &fabric_coh_ctrl_bytes_,
                      "coherence control bytes entering the fabric");
    fabric->addScalar("bulk_gpu_bytes", &fabric_bulk_gpu_bytes_,
                      "bulk-transfer bytes charged to GPU-GPU links");
    fabric->addScalar("bulk_cpu_bytes", &fabric_bulk_cpu_bytes_,
                      "bulk-transfer bytes charged to CPU links");

    if (audit_) {
        stats::StatGroup *audit_grp = child("audit");
        stat_groups_.push_back(std::make_unique<stats::StatGroup>(
            "inflight", audit_grp));
        audit_->registerStats(*stat_groups_.back());
    }

    net_.registerStats(*child("link"));
    pages_.registerStats(*child("numa"));
    if (vi_)
        vi_->registerStats(*child("coherence"));
    for (unsigned g = 0; g < cfg_.num_gpus; ++g)
        gpus_[g]->registerStats(*child("gpu" + std::to_string(g)));
}

void
MultiGpuSystem::setTrace(trace::Session *session)
{
    trace_ = session;
    session->defineProcess(0, "system");
    session->defineThread(0, 0, "kernels");
    session->defineThread(0, 1, "log");
    for (unsigned g = 0; g < numGpus(); ++g)
        gpus_[g]->setTrace(session, 1 + g);
    net_.setTrace(session, 1 + numGpus());
}

Cycle
MultiGpuSystem::run(Cycle max_cycles, double max_wall_seconds)
{
    carve_assert(!finished_);

    // Mirror fatal/panic/warn text onto the timeline so the trace and
    // the harness's error capture tell one story.
    std::optional<ScopedLogObserver> log_obs;
    if (trace::active(trace_, trace::Category::Audit)) {
        log_obs.emplace([this](LogLevel, const std::string &msg) {
            trace_->instantText(trace::Category::Audit,
                                trace::makeTrack(0, 1), msg,
                                eq_.now());
        });
    }

    launchKernel(0);

    // The wall-clock guard catches livelocks that make simulated time
    // advance arbitrarily slowly; polling the clock on every event
    // would dominate the hot loop, so amortize it.
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::duration<double>(
            max_wall_seconds > 0.0 ? max_wall_seconds : 0.0);
    std::uint64_t until_clock_check = kClockCheckInterval;
    const auto wall_ok = [&]() -> bool {
        if (max_wall_seconds <= 0.0)
            return true;
        if (--until_clock_check > 0)
            return true;
        until_clock_check = kClockCheckInterval;
        return std::chrono::steady_clock::now() < deadline;
    };

    std::function<bool()> keep_going;
    if (max_cycles == 0) {
        keep_going = [this, &wall_ok] {
            return !finished_ && wall_ok();
        };
    } else {
        keep_going = [this, max_cycles, &wall_ok] {
            return !finished_ && eq_.now() <= max_cycles && wall_ok();
        };
    }

    // Counter sampling rides the run predicate instead of scheduling
    // its own events: the queue pops the exact sequence an untraced
    // run would, which is what keeps traced runs byte-identical.
    if (trace_ != nullptr && trace_->hasCounters() &&
        trace_->sampleInterval() > 0) {
        keep_going = [this, inner = std::move(keep_going),
                      next = Cycle{0}]() mutable {
            if (eq_.now() >= next) {
                trace_->sampleCounters(eq_.now());
                next = eq_.now() + trace_->sampleInterval();
            }
            return inner();
        };
    }
    eq_.runWhile(keep_going);

    watchdog_tripped_ = !finished_;
    if (watchdog_tripped_ &&
        trace::active(trace_, trace::Category::Audit)) {
        trace_->instant(trace::Category::Audit, trace::makeTrack(0, 1),
                        "watchdog_tripped", eq_.now());
    }
    if (audit_ && finished_) {
        // Drain the posted tail (stores, DRAM callbacks, link
        // deliveries) so every issued token can retire, then prove
        // nothing was stranded.
        eq_.run();
        auditCheck(/* final_pass */ true);
    }
    return finished_ ? finish_time_ : eq_.now();
}

void
MultiGpuSystem::launchKernel(KernelId k)
{
    cur_kernel_ = k;
    kernel_started_at_ = eq_.now();
    gpus_done_ = 0;
    sched_.launchKernel(wl_.numCtas(k));
    for (auto &gpu : gpus_)
        gpu->startKernel(k, sched_);
}

void
MultiGpuSystem::onGpuKernelDone(NodeId)
{
    ++gpus_done_;
    if (gpus_done_ < gpus_.size())
        return;

    carve_assert(sched_.kernelDone());

    // Global barrier reached: apply kernel-boundary coherence on
    // every GPU; the slowest flush gates the next launch.
    Cycle stall = 0;
    for (auto &gpu : gpus_)
        stall = std::max(stall, gpu->kernelBoundary());

    if (trace::active(trace_, trace::Category::Kernel)) {
        const std::uint32_t track = trace::makeTrack(0, 0);
        trace_->span(trace::Category::Kernel, track,
                     trace_->intern("kernel " +
                                    std::to_string(cur_kernel_)),
                     kernel_started_at_, eq_.now(), cur_kernel_);
        trace_->instant(trace::Category::Kernel, track,
                        "kernel_boundary", eq_.now(), stall);
    }

    // Epoch snapshot: the counter increase attributable to this
    // kernel, boundary actions included. Live counters are never
    // reset, so the running totals in the tree stay end-to-end.
    stats::EpochPhase phase;
    phase.index = cur_kernel_;
    phase.start_cycle = phase_start_;
    phase.end_cycle = eq_.now();
    const stats::ScalarSnapshot snap =
        stats::snapshotScalars(stat_root_);
    phase.deltas = stats::snapshotDelta(phase_base_, snap);
    phases_.push_back(std::move(phase));
    phase_base_ = snap;
    phase_start_ = eq_.now();

    auditCheck(/* final_pass */ false);

    if (cur_kernel_ + 1 < wl_.numKernels()) {
        const KernelId next = cur_kernel_ + 1;
        eq_.scheduleAfter(cfg_.core.kernel_launch_latency + stall,
                          [this, next] { launchKernel(next); });
    } else {
        finished_ = true;
        finish_time_ = eq_.now() + stall;
    }
}

void
MultiGpuSystem::remoteRead(NodeId src, NodeId home, Addr line,
                           Callback done)
{
    carve_assert(src != home && home < gpus_.size());
    ++fabric_remote_read_msgs_;
    // The op's state lives in a pooled record so each hop of the
    // request/service/data chain is a two-word bound event.
    const std::uint32_t op =
        remote_read_ops_.alloc(RemoteReadOp{line, done, src, home});
    // Request packet to the home node...
    net_.send(src, home, cfg_.link.ctrl_packet_size,
              bindEvent<&MultiGpuSystem::remoteReadAtHome>(this, op));
}

void
MultiGpuSystem::remoteReadAtHome(std::uint32_t op)
{
    const RemoteReadOp &r = remote_read_ops_[op];
    if (vi_)
        vi_->onRead(r.home, r.src, r.line);
    // ...home DRAM access...
    gpus_[r.home]->serviceRemoteRead(
        r.line,
        Completion::bind<&MultiGpuSystem::remoteReadServiced>(this,
                                                              op));
}

void
MultiGpuSystem::remoteReadServiced(std::uint32_t op)
{
    const RemoteReadOp r = remote_read_ops_[op];
    remote_read_ops_.free(op);
    // ...data line back to the requester.
    net_.send(r.home, r.src, cfg_.line_size,
              r.done ? Network::Callback(r.done) : Network::Callback());
}

void
MultiGpuSystem::remoteWrite(NodeId src, NodeId home, Addr line)
{
    carve_assert(src != home && home < gpus_.size());
    ++fabric_remote_write_msgs_;
    net_.send(src, home, cfg_.line_size,
              bindEvent<&MultiGpuSystem::deliverRemoteWrite>(
                  this, src, home, line));
}

void
MultiGpuSystem::deliverRemoteWrite(NodeId src, NodeId home, Addr line)
{
    gpus_[home]->serviceRemoteWrite(line);
    if (vi_)
        vi_->onWrite(home, src, line);
}

void
MultiGpuSystem::cpuRead(NodeId src, Addr line, Callback done)
{
    (void)line;
    ++fabric_cpu_read_msgs_;
    const std::uint32_t op = cpu_read_ops_.alloc(CpuReadOp{done, src});
    net_.sendToCpu(src, cfg_.link.ctrl_packet_size,
                   bindEvent<&MultiGpuSystem::cpuReadAtCpu>(this, op));
}

void
MultiGpuSystem::cpuReadAtCpu(std::uint32_t op)
{
    eq_.scheduleAfter(cfg_.link.cpu_mem_latency,
                      bindEvent<&MultiGpuSystem::cpuReadData>(this,
                                                              op));
}

void
MultiGpuSystem::cpuReadData(std::uint32_t op)
{
    const CpuReadOp r = cpu_read_ops_[op];
    cpu_read_ops_.free(op);
    net_.sendFromCpu(r.src, cfg_.line_size,
                     r.done ? Network::Callback(r.done)
                            : Network::Callback());
}

void
MultiGpuSystem::cpuWrite(NodeId src, Addr line)
{
    (void)line;
    ++fabric_cpu_write_msgs_;
    net_.sendToCpu(src, cfg_.line_size, Network::Callback());
}

void
MultiGpuSystem::bulkTransfer(NodeId src, NodeId dst,
                             std::uint64_t bytes)
{
    if (src == dst)
        return;
    bulk_bytes_ += bytes;
    if (!cfg_.numa.charge_bulk_transfers)
        return;

    Network::Callback done;
    if (audit_) {
        audit_->issue(audit::Boundary::BulkTransfer);
        done = [tracker = &*audit_] {
            tracker->retire(audit::Boundary::BulkTransfer);
        };
    }

    if (src == cpu_node) {
        fabric_bulk_cpu_bytes_ += bytes;
        net_.sendFromCpu(dst, bytes, std::move(done));
    } else if (dst == cpu_node) {
        fabric_bulk_cpu_bytes_ += bytes;
        net_.sendToCpu(src, bytes, std::move(done));
    } else {
        fabric_bulk_gpu_bytes_ += bytes;
        net_.send(src, dst, bytes, std::move(done));
    }
}

void
MultiGpuSystem::rdcFlush(NodeId src, NodeId home, std::uint64_t bytes)
{
    carve_assert(src != home && home < gpus_.size());
    fabric_flush_bytes_ += bytes;
    // Posted: the boundary stall already charged the drain latency on
    // the source side; the data still occupies the wire.
    net_.send(src, home, bytes, Network::Callback());
}

void
MultiGpuSystem::coherenceLocalAccess(NodeId home, Addr line,
                                     AccessType type)
{
    if (!vi_)
        return;
    if (isWrite(type))
        vi_->onWrite(home, home, line);
    else
        vi_->onRead(home, home, line);
}

std::uint64_t
MultiGpuSystem::totalInstsIssued() const
{
    std::uint64_t total = 0;
    for (const auto &gpu : gpus_)
        total += gpu->instsIssued();
    return total;
}

void
MultiGpuSystem::auditCheck(bool final_pass)
{
    if (!audit_)
        return;

    if (trace::active(trace_, trace::Category::Audit)) {
        trace_->instant(trace::Category::Audit, trace::makeTrack(0, 1),
                        final_pass ? "audit_final_pass" : "audit_pass",
                        eq_.now());
    }

    std::vector<std::string> fails;
    audit::checkCacheProbes(stat_root_, fails);

    audit::ConservationParams params;
    params.line_size = cfg_.line_size;
    params.ctrl_packet_size = cfg_.link.ctrl_packet_size;
    params.final_pass = final_pass;
    audit::checkConservation(stat_root_, params, fails);

    for (unsigned g = 0; g < numGpus(); ++g) {
        if (const RdcController *rdc = gpus_[g]->rdc())
            rdc->auditDirtyState("gpu" + std::to_string(g) + ".rdc",
                                 fails);
    }

    if (final_pass) {
        // The queue has drained: every token must be retired, every
        // MSHR entry completed, every warp finished.
        audit_->check(fails);
        for (unsigned g = 0; g < numGpus(); ++g) {
            const GpuNode &gpu = *gpus_[g];
            const std::string prefix = "gpu" + std::to_string(g);
            if (gpu.l2Mshrs().size() != 0) {
                fails.push_back(prefix + ": " +
                    std::to_string(gpu.l2Mshrs().size()) +
                    " L2 MSHR entr(ies) stranded at end of sim");
            }
            if (gpu.rdc() && gpu.rdc()->mshrs().size() != 0) {
                fails.push_back(prefix + ": " +
                    std::to_string(gpu.rdc()->mshrs().size()) +
                    " RDC MSHR entr(ies) stranded at end of sim");
            }
            for (unsigned s = 0; s < gpu.numSms(); ++s) {
                const Sm &sm = gpu.sm(s);
                if (sm.l1Mshrs().size() != 0) {
                    fails.push_back(prefix + ".sm" +
                        std::to_string(s) + ": " +
                        std::to_string(sm.l1Mshrs().size()) +
                        " L1 MSHR entr(ies) stranded at end of sim");
                }
                if (!sm.idle()) {
                    fails.push_back(prefix + ".sm" +
                        std::to_string(s) +
                        ": warps still resident at end of sim");
                }
            }
        }
    }

    if (fails.empty())
        return;
    std::string msg = "carve-audit: " +
        std::to_string(fails.size()) + " invariant violation(s) " +
        (final_pass ? "at end of simulation"
                    : "at kernel boundary") +
        " (kernel " + std::to_string(cur_kernel_) + ")";
    for (const std::string &f : fails)
        msg += "\n  " + f;
    panic("%s", msg.c_str());
}

} // namespace carve
