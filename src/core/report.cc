#include "core/report.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <string_view>

#include "common/logging.hh"
#include "core/multi_gpu_system.hh"

namespace carve {

SimResult
collectResult(const MultiGpuSystem &sys, const std::string &workload,
              const std::string &preset)
{
    SimResult r;
    r.workload = workload;
    r.preset = preset;

    // Flatten the registry once; every summary field below resolves
    // against this single sorted view of the stat tree, never against
    // component getters.
    const std::vector<stats::FlatStat> flat =
        stats::flattenStats(sys.stats());

    const auto lookup =
        [&](std::string_view name) -> const stats::FlatStat * {
        const auto it = std::lower_bound(
            flat.begin(), flat.end(), name,
            [](const stats::FlatStat &f, std::string_view n) {
                return f.name < n;
            });
        return it != flat.end() && it->name == name ? &*it : nullptr;
    };
    const auto valueU64 = [&](std::string_view name) {
        const stats::FlatStat *f = lookup(name);
        return f ? f->u64 : std::uint64_t{0};
    };
    const auto valueDbl = [&](std::string_view name, double dflt) {
        const stats::FlatStat *f = lookup(name);
        return f ? f->asDouble() : dflt;
    };
    const auto sumMatching = [&](std::string_view pattern) {
        std::uint64_t total = 0;
        for (const auto &f : flat)
            if (stats::nameMatches(pattern, f.name))
                total += f.u64;
        return total;
    };

    r.cycles = valueU64("sim.cycles");
    r.warp_insts = valueU64("sim.insts_issued");
    r.events = valueU64("sim.events");

    r.traffic.local_reads = sumMatching("gpu*.traffic.local_reads");
    r.traffic.remote_reads = sumMatching("gpu*.traffic.remote_reads");
    r.traffic.rdc_hit_reads =
        sumMatching("gpu*.traffic.rdc_hit_reads");
    r.traffic.cpu_reads = sumMatching("gpu*.traffic.cpu_reads");
    r.traffic.local_writes = sumMatching("gpu*.traffic.local_writes");
    r.traffic.remote_writes =
        sumMatching("gpu*.traffic.remote_writes");
    r.traffic.rdc_hit_writes =
        sumMatching("gpu*.traffic.rdc_hit_writes");
    r.traffic.cpu_writes = sumMatching("gpu*.traffic.cpu_writes");
    r.frac_remote = r.traffic.fracRemote();

    const std::uint64_t l2_hits = sumMatching("gpu*.l2.hits");
    const std::uint64_t l2_misses = sumMatching("gpu*.l2.misses");
    r.l2_hit_rate = (l2_hits + l2_misses) == 0
        ? 0.0
        : static_cast<double>(l2_hits) /
              static_cast<double>(l2_hits + l2_misses);

    // Every link's byte counter lives at "link.<src>.<dst>.bytes";
    // a "cpu" endpoint segment marks the CPU links.
    for (const auto &f : flat) {
        if (!stats::nameMatches("link.*.*.bytes", f.name))
            continue;
        if (f.name.find(".cpu.") != std::string::npos)
            r.cpu_gpu_bytes += f.u64;
        else
            r.gpu_gpu_bytes += f.u64;
    }

    r.rdc_hits = sumMatching("gpu*.rdc.read_hits");
    r.rdc_misses = sumMatching("gpu*.rdc.read_misses");
    r.hw_invalidates = valueU64("coherence.invalidates_sent");

    r.migrations = valueU64("numa.migrations");
    r.replications = valueU64("numa.replications");
    r.collapses = valueU64("numa.collapses");
    r.um_migrations = valueU64("numa.um_migrations");
    r.capacity_pressure = valueDbl("numa.capacity_pressure", 1.0);

    r.page_sharing.private_accesses =
        valueU64("numa.sharing.page_private");
    r.page_sharing.read_only_shared =
        valueU64("numa.sharing.page_read_only");
    r.page_sharing.read_write_shared =
        valueU64("numa.sharing.page_read_write");
    r.line_sharing.private_accesses =
        valueU64("numa.sharing.line_private");
    r.line_sharing.read_only_shared =
        valueU64("numa.sharing.line_read_only");
    r.line_sharing.read_write_shared =
        valueU64("numa.sharing.line_read_write");
    r.shared_page_footprint =
        valueU64("numa.sharing.shared_page_bytes");
    r.shared_line_footprint =
        valueU64("numa.sharing.shared_line_bytes");
    r.total_page_footprint =
        valueU64("numa.sharing.total_page_bytes");

    r.stat_tree = flat;
    r.phases = sys.kernelPhases();
    return r;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (const double v : values) {
        if (v <= 0.0)
            fatal("geomean: non-positive value %f", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
speedupOver(const SimResult &baseline, const SimResult &result)
{
    if (result.cycles == 0)
        fatal("speedupOver: zero-cycle result");
    return static_cast<double>(baseline.cycles) /
        static_cast<double>(result.cycles);
}

void
printSummary(std::ostream &os, const SimResult &r)
{
    os << std::left << std::setw(14) << r.workload << " "
       << std::setw(20) << r.preset
       << " cycles=" << std::setw(10) << r.cycles
       << " ipc=" << std::fixed << std::setprecision(2)
       << std::setw(6) << r.ipc()
       << " remote=" << std::setprecision(1)
       << r.frac_remote * 100.0 << "%"
       << " l2hit=" << r.l2_hit_rate * 100.0 << "%";
    if (r.rdc_hits + r.rdc_misses > 0) {
        os << " rdchit="
           << 100.0 * static_cast<double>(r.rdc_hits) /
                  static_cast<double>(r.rdc_hits + r.rdc_misses)
           << "%";
    }
    os << "\n";
}

} // namespace carve
