#include "core/report.hh"

#include <cmath>
#include <iomanip>

#include "common/logging.hh"
#include "core/multi_gpu_system.hh"

namespace carve {

SimResult
collectResult(const MultiGpuSystem &sys, const std::string &workload,
              const std::string &preset)
{
    SimResult r;
    r.workload = workload;
    r.preset = preset;
    r.cycles = sys.finished() ? sys.finishTime() : sys.now();
    r.warp_insts = sys.totalInstsIssued();

    std::uint64_t l2_hits = 0, l2_misses = 0;
    for (unsigned g = 0; g < sys.numGpus(); ++g) {
        const GpuNode &gpu = sys.gpu(g);
        const GpuTraffic &t = gpu.traffic();
        r.traffic.local_reads += t.local_reads;
        r.traffic.remote_reads += t.remote_reads;
        r.traffic.rdc_hit_reads += t.rdc_hit_reads;
        r.traffic.cpu_reads += t.cpu_reads;
        r.traffic.local_writes += t.local_writes;
        r.traffic.remote_writes += t.remote_writes;
        r.traffic.cpu_writes += t.cpu_writes;
        l2_hits += gpu.l2().hits();
        l2_misses += gpu.l2().misses();
        if (const RdcController *rdc = gpu.rdc()) {
            r.rdc_hits += rdc->readHits();
            r.rdc_misses += rdc->readMisses();
        }
    }
    r.frac_remote = r.traffic.fracRemote();
    r.l2_hit_rate = (l2_hits + l2_misses) == 0
        ? 0.0
        : static_cast<double>(l2_hits) /
              static_cast<double>(l2_hits + l2_misses);

    r.gpu_gpu_bytes = sys.network().totalGpuGpuBytes();
    r.cpu_gpu_bytes = sys.network().totalCpuGpuBytes();
    if (const GpuVi *vi = sys.gpuVi())
        r.hw_invalidates = vi->invalidatesSent();

    const PageManager &pages = sys.pages();
    r.migrations = pages.migration().migrations();
    r.replications = pages.replication().replications();
    r.collapses = pages.replication().collapses();
    r.um_migrations = pages.unifiedMemory().migrationsIn();
    r.capacity_pressure = pages.table().capacityPressure();

    const SharingProfiler &prof = pages.profiler();
    r.page_sharing = prof.pageBreakdown();
    r.line_sharing = prof.lineBreakdown();
    r.shared_page_footprint = prof.sharedPageFootprint();
    r.shared_line_footprint = prof.sharedLineFootprint();
    r.total_page_footprint = prof.totalPageFootprint();
    return r;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (const double v : values) {
        if (v <= 0.0)
            fatal("geomean: non-positive value %f", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
speedupOver(const SimResult &baseline, const SimResult &result)
{
    if (result.cycles == 0)
        fatal("speedupOver: zero-cycle result");
    return static_cast<double>(baseline.cycles) /
        static_cast<double>(result.cycles);
}

void
printSummary(std::ostream &os, const SimResult &r)
{
    os << std::left << std::setw(14) << r.workload << " "
       << std::setw(20) << r.preset
       << " cycles=" << std::setw(10) << r.cycles
       << " ipc=" << std::fixed << std::setprecision(2)
       << std::setw(6) << r.ipc()
       << " remote=" << std::setprecision(1)
       << r.frac_remote * 100.0 << "%"
       << " l2hit=" << r.l2_hit_rate * 100.0 << "%";
    if (r.rdc_hits + r.rdc_misses > 0) {
        os << " rdchit="
           << 100.0 * static_cast<double>(r.rdc_hits) /
                  static_cast<double>(r.rdc_hits + r.rdc_misses)
           << "%";
    }
    os << "\n";
}

} // namespace carve
