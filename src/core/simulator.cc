#include "core/simulator.hh"

#include "common/logging.hh"
#include "core/multi_gpu_system.hh"

namespace carve {

SimResult
runSimulation(const SystemConfig &cfg, const WorkloadParams &params,
              const std::string &preset_label, const RunOptions &opt)
{
    SyntheticWorkload wl(params, cfg.line_size, opt.seed);
    MultiGpuSystem sys(cfg, wl, opt.profile_lines);
    sys.run(opt.max_cycles, opt.max_wall_seconds);
    if (sys.watchdogTripped() && !opt.tolerate_watchdog) {
        fatal("MultiGpuSystem: simulation did not converge "
              "(deadlock or watchdog: max_cycles=%llu, "
              "max_wall_seconds=%.1f, stopped at cycle %llu)",
              static_cast<unsigned long long>(opt.max_cycles),
              opt.max_wall_seconds,
              static_cast<unsigned long long>(sys.now()));
    }
    SimResult r = collectResult(sys, params.name, preset_label);
    r.watchdog_tripped = sys.watchdogTripped();
    return r;
}

SimResult
runPreset(Preset preset, const SystemConfig &base,
          const WorkloadParams &params, const RunOptions &opt)
{
    return runSimulation(makePreset(preset, base), params,
                         presetName(preset), opt);
}

} // namespace carve
