#include "core/simulator.hh"

#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>

#include "common/logging.hh"
#include "core/multi_gpu_system.hh"
#include "trace/chrome_export.hh"

namespace carve {

namespace {

/**
 * Resolve the engine selection for one run: config fields, then the
 * SimJob option overrides, then the environment. Returns the config
 * the machine is actually built with.
 */
SystemConfig
resolveEngine(const SimJob &job)
{
    SystemConfig cfg = job.config;
    if (job.options.engine)
        cfg.engine = *job.options.engine;
    if (job.options.sim_threads)
        cfg.sim_threads = *job.options.sim_threads;

    if (const char *env = std::getenv("CARVE_EVENTQ")) {
        // Back-compat: CARVE_EVENTQ grew "serial"/"parallel" values
        // before the engine moved into SimJob. "calendar"/"heap"
        // still select the queue implementation (see event_queue.cc)
        // and say nothing about the simulation engine.
        if (std::strcmp(env, "serial") == 0 ||
            std::strcmp(env, "parallel") == 0) {
            static bool warned = false;
            if (!warned) {
                warned = true;
                warn("CARVE_EVENTQ=%s is deprecated: select the "
                     "engine via SimJob.options.engine or the "
                     "'engine' config override", env);
            }
            cfg.engine = parseSimEngine(env);
        }
    }
    if (const char *env = std::getenv("CARVE_SIM_THREADS")) {
        static bool warned = false;
        if (!warned) {
            warned = true;
            warn("CARVE_SIM_THREADS=%s overrides the job's "
                 "sim_threads", env);
        }
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (!*env || *end)
            fatal("CARVE_SIM_THREADS: cannot parse '%s'", env);
        cfg.sim_threads = static_cast<unsigned>(v);
    }

    // Tracing samples counters at window barriers and interleaves
    // with the executing domains; it is only supported serially.
    if (cfg.engine == SimEngine::Parallel &&
        job.options.trace.enabled) {
        warn("tracing requires the serial engine; forcing "
             "engine=serial for this run");
        cfg.engine = SimEngine::Serial;
    }

    // Validate here, not in SystemConfig::validate(): the hardware
    // bound is a property of the host running the job, not of the
    // machine description (the same job may be serialized on one
    // machine and run on another).
    const unsigned hw = std::thread::hardware_concurrency();
    if (cfg.sim_threads == 0)
        fatal("config: sim_threads must be >= 1");
    if (hw != 0 && cfg.sim_threads > hw) {
        fatal("config: sim_threads=%u exceeds this host's %u "
              "hardware threads", cfg.sim_threads, hw);
    }
    return cfg;
}

} // namespace

SimResult
run(const SimJob &job)
{
    const RunOptions &opt = job.options;
    const SystemConfig cfg = resolveEngine(job);
    SyntheticWorkload wl(job.workload, cfg.line_size, opt.seed);
    MultiGpuSystem sys(cfg, wl, opt.profile_lines, opt.audit,
                       opt.telemetry);

    std::unique_ptr<trace::Session> session;
    if (opt.trace.enabled) {
        if (!trace::compiled_in) {
            warn("tracing requested but this build has "
                 "CARVE_TRACE=OFF; no trace will be produced");
        } else {
            session = std::make_unique<trace::Session>(opt.trace);
            sys.setTrace(session.get());
        }
    }

    sys.run(opt.max_cycles, opt.max_wall_seconds);
    if (sys.watchdogTripped() && !opt.tolerate_watchdog) {
        fatal("MultiGpuSystem: simulation did not converge "
              "(deadlock or watchdog: max_cycles=%llu, "
              "max_wall_seconds=%.1f, stopped at cycle %llu)",
              static_cast<unsigned long long>(opt.max_cycles),
              opt.max_wall_seconds,
              static_cast<unsigned long long>(sys.now()));
    }
    SimResult r =
        collectResult(sys, job.workload.name, job.preset_label);
    r.watchdog_tripped = sys.watchdogTripped();
    if (session && !opt.trace.out_path.empty()) {
        trace::writeChromeTrace(*session, opt.trace.out_path,
                                {job.workload.name, job.preset_label});
    }
    return r;
}

SimJob
makePresetJob(Preset preset, const SystemConfig &base,
              const WorkloadParams &params, const RunOptions &opt)
{
    SimJob job;
    job.config = makePreset(preset, base);
    job.workload = params;
    job.preset_label = presetName(preset);
    job.options = opt;
    return job;
}

} // namespace carve
