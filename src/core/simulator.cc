#include "core/simulator.hh"

#include "core/multi_gpu_system.hh"

namespace carve {

SimResult
runSimulation(const SystemConfig &cfg, const WorkloadParams &params,
              const std::string &preset_label, const RunOptions &opt)
{
    SyntheticWorkload wl(params, cfg.line_size, opt.seed);
    MultiGpuSystem sys(cfg, wl, opt.profile_lines);
    sys.run(opt.max_cycles);
    return collectResult(sys, params.name, preset_label);
}

SimResult
runPreset(Preset preset, const SystemConfig &base,
          const WorkloadParams &params, const RunOptions &opt)
{
    return runSimulation(makePreset(preset, base), params,
                         presetName(preset), opt);
}

} // namespace carve
