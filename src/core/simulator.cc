#include "core/simulator.hh"

#include <memory>

#include "common/logging.hh"
#include "core/multi_gpu_system.hh"
#include "trace/chrome_export.hh"

namespace carve {

SimResult
run(const SimJob &job)
{
    const RunOptions &opt = job.options;
    SyntheticWorkload wl(job.workload, job.config.line_size,
                         opt.seed);
    MultiGpuSystem sys(job.config, wl, opt.profile_lines, opt.audit);

    std::unique_ptr<trace::Session> session;
    if (opt.trace.enabled) {
        if (!trace::compiled_in) {
            warn("tracing requested but this build has "
                 "CARVE_TRACE=OFF; no trace will be produced");
        } else {
            session = std::make_unique<trace::Session>(opt.trace);
            sys.setTrace(session.get());
        }
    }

    sys.run(opt.max_cycles, opt.max_wall_seconds);
    if (sys.watchdogTripped() && !opt.tolerate_watchdog) {
        fatal("MultiGpuSystem: simulation did not converge "
              "(deadlock or watchdog: max_cycles=%llu, "
              "max_wall_seconds=%.1f, stopped at cycle %llu)",
              static_cast<unsigned long long>(opt.max_cycles),
              opt.max_wall_seconds,
              static_cast<unsigned long long>(sys.now()));
    }
    SimResult r =
        collectResult(sys, job.workload.name, job.preset_label);
    r.watchdog_tripped = sys.watchdogTripped();
    if (session && !opt.trace.out_path.empty()) {
        trace::writeChromeTrace(*session, opt.trace.out_path,
                                {job.workload.name, job.preset_label});
    }
    return r;
}

SimJob
makePresetJob(Preset preset, const SystemConfig &base,
              const WorkloadParams &params, const RunOptions &opt)
{
    SimJob job;
    job.config = makePreset(preset, base);
    job.workload = params;
    job.preset_label = presetName(preset);
    job.options = opt;
    return job;
}

SimResult
runSimulation(const SystemConfig &cfg, const WorkloadParams &params,
              const std::string &preset_label, const RunOptions &opt)
{
    return run(SimJob{cfg, params, preset_label, opt});
}

SimResult
runPreset(Preset preset, const SystemConfig &base,
          const WorkloadParams &params, const RunOptions &opt)
{
    return run(makePresetJob(preset, base, params, opt));
}

} // namespace carve
