/**
 * @file
 * Named system configurations matching the lines of the paper's
 * figures, all derived from one base (Table III) configuration.
 */

#ifndef CARVE_CORE_SYSTEM_PRESET_HH
#define CARVE_CORE_SYSTEM_PRESET_HH

#include <string>
#include <vector>

#include "common/config.hh"

namespace carve {

/** The evaluated system variants. */
enum class Preset : std::uint8_t {
    SingleGpu,        ///< 1-GPU baseline for speedup normalization
    NumaGpu,          ///< NUMA-GPU [16]: FT placement + LLC remote
                      ///< caching with software coherence
    NumaGpuMigration, ///< NUMA-GPU + page migration
    NumaGpuReplRO,    ///< NUMA-GPU + read-only page replication
    CarveNoCoherence, ///< CARVE upper bound: zero-cost coherence
    CarveSwc,         ///< CARVE + software (epoch) coherence
    CarveHwc,         ///< CARVE + GPU-VI/IMST hardware coherence
    Ideal,            ///< replicate ALL shared pages at zero cost
};

/** Display name (matches figure legends). */
const char *presetName(Preset p);

/**
 * Build the configuration of @p preset from @p base (typically
 * Table III scaled). Only policy fields change; geometry is shared
 * so comparisons are apples-to-apples.
 */
SystemConfig makePreset(Preset preset, const SystemConfig &base);

/** Presets in figure order (excluding SingleGpu). */
std::vector<Preset> comparisonPresets();

} // namespace carve

#endif // CARVE_CORE_SYSTEM_PRESET_HH
