/**
 * @file
 * One-call simulation driver: workload description + configuration in,
 * SimResult out. This is the primary public entry point of the
 * library (see examples/quickstart.cpp).
 */

#ifndef CARVE_CORE_SIMULATOR_HH
#define CARVE_CORE_SIMULATOR_HH

#include <string>

#include "common/config.hh"
#include "core/report.hh"
#include "core/system_preset.hh"
#include "workloads/synthetic.hh"

namespace carve {

/** Options for a single simulation run. */
struct RunOptions
{
    /** Safety abort in simulated cycles; 0 == unlimited. */
    Cycle max_cycles = 0;
    /** Safety abort in host wall-clock seconds; 0 == unlimited.
     * Catches livelocks where simulated time barely advances. */
    double max_wall_seconds = 0.0;
    /** Line-granularity sharing profiling (memory-hungry). */
    bool profile_lines = true;
    /** Trace RNG seed. */
    std::uint64_t seed = 1;
    /** When a watchdog trips: false (default) keeps the historical
     * fatal() behaviour; true returns the partial result with
     * SimResult::watchdog_tripped set so batch drivers can mark the
     * run failed without killing sibling runs. */
    bool tolerate_watchdog = false;
};

/**
 * Build a system from @p cfg, run @p params through it, and collect
 * the result. @p preset_label is recorded in the result for
 * reporting.
 */
SimResult runSimulation(const SystemConfig &cfg,
                        const WorkloadParams &params,
                        const std::string &preset_label,
                        const RunOptions &opt = {});

/**
 * Convenience: run @p params on a named preset derived from @p base.
 */
SimResult runPreset(Preset preset, const SystemConfig &base,
                    const WorkloadParams &params,
                    const RunOptions &opt = {});

} // namespace carve

#endif // CARVE_CORE_SIMULATOR_HH
