/**
 * @file
 * One-call simulation driver: workload description + configuration in,
 * SimResult out. This is the primary public entry point of the
 * library (see examples/quickstart.cpp).
 */

#ifndef CARVE_CORE_SIMULATOR_HH
#define CARVE_CORE_SIMULATOR_HH

#include <optional>
#include <string>

#include "common/config.hh"
#include "core/report.hh"
#include "core/system_preset.hh"
#include "telemetry/histogram.hh"
#include "trace/trace.hh"
#include "workloads/synthetic.hh"

namespace carve {

/** Options for a single simulation run. */
struct RunOptions
{
    /** Safety abort in simulated cycles; 0 == unlimited. */
    Cycle max_cycles = 0;
    /** Safety abort in host wall-clock seconds; 0 == unlimited.
     * Catches livelocks where simulated time barely advances. */
    double max_wall_seconds = 0.0;
    /** Line-granularity sharing profiling (memory-hungry). */
    bool profile_lines = true;
    /** Trace RNG seed. */
    std::uint64_t seed = 1;
    /** When a watchdog trips: false (default) keeps the historical
     * fatal() behaviour; true returns the partial result with
     * SimResult::watchdog_tripped set so batch drivers can mark the
     * run failed without killing sibling runs. */
    bool tolerate_watchdog = false;
    /** carve-audit: in-flight token tracking plus conservation/
     * invariant passes at kernel boundaries and end of sim. A
     * violation panics with the offending dotted stat names. */
    bool audit = false;
    /** Cycle-level timeline tracing (see trace/trace.hh). Disabled by
     * default; enabling never changes simulation results, only emits
     * a Chrome trace-event JSON file alongside them. Tracing samples
     * at window barriers and requires the serial engine; run() warns
     * and forces SimEngine::Serial when both are requested. */
    trace::Options trace;
    /** Runtime telemetry (see telemetry/histogram.hh): latency/
     * occupancy histograms in the stat tree plus engine self-
     * profiling. Off by default and provably free when off — no
     * telemetry stat is registered and no sampling site executes.
     * Everything it records (except barrier_wait_ns, which needs
     * telemetry.host_timing) is a pure function of the simulated
     * schedule, so enabling it never changes simulation results and
     * its histograms are identical across engines and thread
     * counts. */
    telemetry::Options telemetry;
    /** Simulation engine override: when set, wins over config.engine.
     * Serial and Parallel run the same windowed algorithm and produce
     * byte-identical stat trees. The deprecated CARVE_EVENTQ
     * environment variable ("serial"/"parallel") overrides both. */
    std::optional<SimEngine> engine;
    /** Worker-thread override for SimEngine::Parallel: when set, wins
     * over config.sim_threads. Must be >= 1 and no larger than the
     * host's hardware threads (run() fatals otherwise). The
     * CARVE_SIM_THREADS environment variable overrides both. */
    std::optional<unsigned> sim_threads;
};

/**
 * One fully-described simulation: everything run() needs, in one
 * value. A SimJob is cheap to copy, trivially serializable by the
 * harness, and the single currency every driver (carve-sweep, the
 * bench binaries, carve-bench, the examples) trades in.
 */
struct SimJob
{
    /** Complete machine description (validated by run()). */
    SystemConfig config;
    /** Trace generator parameters. */
    WorkloadParams workload;
    /** Label recorded in SimResult::preset for reporting; presets
     * fill it with presetName(), ad-hoc configs pick any tag. */
    std::string preset_label;
    /** Watchdogs, profiling granularity, seed. */
    RunOptions options;
};

/**
 * THE simulation entry point: build the machine described by
 * @p job.config, run @p job.workload through it, and collect the
 * result. Every other runner in the tree is a thin wrapper over
 * this call.
 *
 * Engine selection is resolved here, in increasing precedence:
 * config.engine/config.sim_threads, then the RunOptions overrides,
 * then the CARVE_EVENTQ ("serial"/"parallel"; deprecated) and
 * CARVE_SIM_THREADS environment variables. The resolved values are
 * what the machine is built with and what SimResult reports.
 */
SimResult run(const SimJob &job);

/**
 * Describe a run of @p params on the named @p preset derived from
 * @p base. Pairs with run(): the job is inspectable/editable before
 * launch, which is what the sweep and bench drivers exploit.
 */
SimJob makePresetJob(Preset preset, const SystemConfig &base,
                     const WorkloadParams &params,
                     const RunOptions &opt = {});

} // namespace carve

#endif // CARVE_CORE_SIMULATOR_HH
