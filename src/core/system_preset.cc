#include "core/system_preset.hh"

namespace carve {

const char *
presetName(Preset p)
{
    switch (p) {
      case Preset::SingleGpu: return "1-GPU";
      case Preset::NumaGpu: return "NUMA-GPU";
      case Preset::NumaGpuMigration: return "NUMA-GPU+Migration";
      case Preset::NumaGpuReplRO: return "NUMA-GPU+Repl-RO";
      case Preset::CarveNoCoherence: return "CARVE-No-Coherence";
      case Preset::CarveSwc: return "CARVE-SWC";
      case Preset::CarveHwc: return "CARVE-HWC";
      case Preset::Ideal: return "Ideal-NUMA-GPU";
    }
    return "?";
}

SystemConfig
makePreset(Preset preset, const SystemConfig &base)
{
    SystemConfig cfg = base;
    // Policy-neutral starting point.
    cfg.numa.placement = PlacementPolicy::FirstTouch;
    cfg.numa.replication = ReplicationPolicy::None;
    cfg.numa.migration = false;
    cfg.numa.llc_caches_remote = true;
    cfg.rdc.enabled = false;

    switch (preset) {
      case Preset::SingleGpu:
        cfg.num_gpus = 1;
        cfg.numa.placement = PlacementPolicy::LocalOnly;
        break;
      case Preset::NumaGpu:
        break;
      case Preset::NumaGpuMigration:
        cfg.numa.migration = true;
        break;
      case Preset::NumaGpuReplRO:
        cfg.numa.replication = ReplicationPolicy::ReadOnly;
        break;
      case Preset::CarveNoCoherence:
        cfg.rdc.enabled = true;
        cfg.rdc.coherence = RdcCoherence::None;
        break;
      case Preset::CarveSwc:
        cfg.rdc.enabled = true;
        cfg.rdc.coherence = RdcCoherence::Software;
        break;
      case Preset::CarveHwc:
        cfg.rdc.enabled = true;
        cfg.rdc.coherence = RdcCoherence::HardwareVI;
        break;
      case Preset::Ideal:
        cfg.numa.replication = ReplicationPolicy::All;
        break;
    }
    return cfg;
}

std::vector<Preset>
comparisonPresets()
{
    return {Preset::NumaGpu, Preset::NumaGpuMigration,
            Preset::NumaGpuReplRO, Preset::CarveNoCoherence,
            Preset::CarveSwc, Preset::CarveHwc, Preset::Ideal};
}

} // namespace carve
