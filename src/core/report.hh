/**
 * @file
 * Simulation result record and reporting helpers shared by the
 * examples, tests and every bench harness.
 */

#ifndef CARVE_CORE_REPORT_HH
#define CARVE_CORE_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "gpu/gpu.hh"
#include "numa/sharing_profiler.hh"

namespace carve {

class MultiGpuSystem;

/** Everything a bench needs from one simulation. */
struct SimResult
{
    std::string workload;
    std::string preset;
    Cycle cycles = 0;
    std::uint64_t warp_insts = 0;
    /** Discrete events the engine executed (host-cost proxy). */
    std::uint64_t events = 0;
    /** True when the run was cut short by a cycle or wall-clock
     * watchdog (see RunOptions); stats below are then partial. */
    bool watchdog_tripped = false;

    /** Post-LLC traffic summed over all GPUs. */
    GpuTraffic traffic;
    /** Fraction of post-LLC accesses serviced by remote GPU memory
     * (RDC hits count as local, as in Figure 8). */
    double frac_remote = 0.0;

    std::uint64_t gpu_gpu_bytes = 0;
    std::uint64_t cpu_gpu_bytes = 0;

    std::uint64_t rdc_hits = 0;
    std::uint64_t rdc_misses = 0;
    std::uint64_t hw_invalidates = 0;

    std::uint64_t migrations = 0;
    std::uint64_t replications = 0;
    std::uint64_t collapses = 0;
    std::uint64_t um_migrations = 0;
    double capacity_pressure = 1.0;

    double l2_hit_rate = 0.0;

    SharingBreakdown page_sharing;
    SharingBreakdown line_sharing;
    std::uint64_t shared_page_footprint = 0;
    std::uint64_t shared_line_footprint = 0;
    std::uint64_t total_page_footprint = 0;

    /** The full stat registry flattened to (dotted name, value),
     * sorted by name — the summary fields above are all derived from
     * this view, and schema v2 embeds it per run. */
    std::vector<stats::FlatStat> stat_tree;

    /** Per-kernel epoch snapshots (not serialized; see
     * MultiGpuSystem::kernelPhases()). */
    std::vector<stats::EpochPhase> phases;

    /** Warp instructions per cycle (throughput metric). */
    double
    ipc() const
    {
        return cycles == 0
            ? 0.0
            : static_cast<double>(warp_insts) /
                  static_cast<double>(cycles);
    }
};

/** Harvest a finished system into a SimResult. */
SimResult collectResult(const MultiGpuSystem &sys,
                        const std::string &workload,
                        const std::string &preset);

/** Geometric mean (empty input == 1.0; non-positive values fatal). */
double geomean(const std::vector<double> &values);

/** Speedup of @p result over @p baseline (cycles ratio). */
double speedupOver(const SimResult &baseline, const SimResult &result);

/** Human-readable one-line summary. */
void printSummary(std::ostream &os, const SimResult &r);

} // namespace carve

#endif // CARVE_CORE_REPORT_HH
