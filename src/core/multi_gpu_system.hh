/**
 * @file
 * MultiGpuSystem: the complete simulated machine. Owns the domain
 * engine (one event domain per GPU plus the system/CPU domain), the
 * NUMA runtime, the interconnect, the coherence engine and every GPU
 * node; implements SystemFabric to route off-chip traffic; and
 * sequences kernel launches with global barriers and software-
 * coherence actions at every boundary.
 *
 * Domain discipline: every component's mutable state belongs to
 * exactly one event domain (a GPU's caches/SMs/memory to that GPU's
 * domain, link state to the link's source domain, kernel sequencing
 * and CPU memory to the system domain). Cross-domain hand-offs go
 * through DomainEngine::post(), counters that increment from several
 * domains are ShardedScalars folded at window barriers, and the NUMA
 * runtime commits policy actions at barriers — which is what makes
 * the parallel engine byte-identical to the serial one.
 */

#ifndef CARVE_CORE_MULTI_GPU_SYSTEM_HH
#define CARVE_CORE_MULTI_GPU_SYSTEM_HH

#include <memory>
#include <optional>
#include <vector>

#include "coherence/gpu_vi.hh"
#include "common/arena.hh"
#include "common/audit.hh"
#include "common/completion.hh"
#include "common/config.hh"
#include "common/domain_engine.hh"
#include "common/stats.hh"
#include "gpu/cta_scheduler.hh"
#include "gpu/fabric.hh"
#include "gpu/gpu.hh"
#include "interconnect/network.hh"
#include "numa/page_manager.hh"
#include "telemetry/telemetry.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace carve {

/**
 * The paper's 4-GPU machine (any GPU count works). Construct with a
 * validated SystemConfig and a Workload, then call run(). The
 * SystemConfig's engine/sim_threads fields select serial or parallel
 * window execution; results are identical either way.
 */
class MultiGpuSystem : public SystemFabric
{
  public:
    /**
     * @param cfg system configuration (copied; validated here)
     * @param wl trace source (must outlive the system)
     * @param profile_lines line-granularity sharing profiling (costs
     *        memory proportional to touched lines; disable for pure
     *        timing runs)
     * @param audit enable the carve-audit conservation checker:
     *        in-flight tokens at every hand-off boundary plus
     *        cross-stat invariant passes at kernel boundaries and at
     *        end of simulation (panics on the first violation)
     * @param telemetry histogram/self-profiling switches; when
     *        disabled (default) no telemetry stat is registered and
     *        no sampling site runs, so the stat tree is byte-
     *        identical to a build without the subsystem
     */
    MultiGpuSystem(const SystemConfig &cfg, const Workload &wl,
                   bool profile_lines = true, bool audit = false,
                   telemetry::Options telemetry = {});

    /**
     * Execute the whole trace.
     *
     * Stops early when a watchdog fires: after @p max_cycles of
     * simulated time (0 == unlimited; checked at window granularity)
     * or @p max_wall_seconds of host wall-clock time (0 == unlimited;
     * polled a few thousand events apart inside every worker, so
     * livelocked simulations are caught too). A tripped watchdog
     * leaves finished() false and watchdogTripped() true — callers
     * decide whether that is fatal (see Simulator::run()).
     *
     * @return total cycles from first launch to last kernel's end,
     *         or the abort time when a watchdog tripped
     */
    Cycle run(Cycle max_cycles = 0, double max_wall_seconds = 0.0);

    /** True once every kernel has completed. */
    bool finished() const { return finished_; }

    /** True when the last run() stopped on a watchdog. */
    bool watchdogTripped() const { return watchdog_tripped_; }

    /** End-to-end runtime (valid after run()). */
    Cycle finishTime() const { return finish_time_; }

    /** Current simulation time (the executing domain's clock). */
    Cycle now() const { return engine_.now(); }

    // ---- SystemFabric ----------------------------------------------
    void remoteRead(NodeId src, NodeId home, Addr line,
                    Callback done) override;
    void remoteWrite(NodeId src, NodeId home, Addr line) override;
    void cpuRead(NodeId src, Addr line, Callback done) override;
    void cpuWrite(NodeId src, Addr line) override;
    void bulkTransfer(NodeId src, NodeId dst,
                      std::uint64_t bytes) override;
    void rdcFlush(NodeId src, NodeId home,
                  std::uint64_t bytes) override;
    void coherenceLocalAccess(NodeId home, Addr line,
                              AccessType type) override;

    // ---- introspection ---------------------------------------------
    const SystemConfig &config() const { return cfg_; }
    DomainEngine &engine() { return engine_; }
    const DomainEngine &engine() const { return engine_; }
    PageManager &pages() { return pages_; }
    const PageManager &pages() const { return pages_; }
    Network &network() { return net_; }
    const Network &network() const { return net_; }
    GpuNode &gpu(unsigned i) { return *gpus_[i]; }
    const GpuNode &gpu(unsigned i) const { return *gpus_[i]; }
    unsigned numGpus() const
    {
        return static_cast<unsigned>(gpus_.size());
    }
    const GpuVi *gpuVi() const
    {
        return vi_ ? &*vi_ : nullptr;
    }
    const CtaScheduler &scheduler() const { return sched_; }
    const Workload &workload() const { return wl_; }

    /** True when the carve-audit checker is attached. */
    bool auditEnabled() const { return audit_.has_value(); }

    /** Attach the tracer and fan it out to every component: system
     * rows (kernel markers, log/audit instants), one process per GPU,
     * and the interconnect process. Counter tracks are sampled at
     * window barriers, never from scheduled events, so a traced run
     * executes the exact event sequence of an untraced one. Tracing
     * requires the serial engine (Simulator::run() enforces this). */
    void setTrace(trace::Session *session);

    /** Total warp instructions issued so far. */
    std::uint64_t totalInstsIssued() const;

    /** Page-copy bytes moved by the NUMA runtime (charged to links
     * only when numa.charge_bulk_transfers is set). */
    std::uint64_t bulkBytes() const { return bulk_bytes_; }

    /**
     * Root of the unified metrics registry. Every component counter
     * in the machine is registered here under a dotted name
     * ("gpu0.l2.hits", "link.0.3.bytes", "numa.migrations"); this
     * tree is the single source of truth reporting derives from.
     * Sharded counters are only coherent at window barriers — i.e.
     * after run() returns or inside barrier actions.
     */
    const stats::StatGroup &stats() const { return stat_root_; }

    /** Per-kernel counter deltas captured at every kernel boundary
     * (epoch snapshots; valid after run()). */
    const std::vector<stats::EpochPhase> &
    kernelPhases() const
    {
        return phases_;
    }

  private:
    /** A remote read crossing the fabric; pooled per source domain so
     * the three-hop request/service/data chain schedules only bound
     * events and every alloc/free happens in the source domain. */
    struct RemoteReadOp
    {
        Addr line;
        Completion done;
        NodeId src;
        NodeId home;
        Cycle issued;   ///< source-domain issue tick (telemetry)
    };

    /** A CPU (Unified Memory) read in flight. */
    struct CpuReadOp
    {
        Completion done;
        NodeId src;
    };

    void launchKernel(KernelId k);
    /** Window-delayed delivery of launchKernel() into GPU @p g. */
    void startGpuKernel(NodeId g, KernelId k);
    void onGpuKernelDone(NodeId gpu);
    /** Kernel-boundary work that must run while every domain is
     * stopped: coherence flushes, epoch snapshot, audit pass, next
     * launch (or finish). Runs as a window-barrier action. */
    void finishKernelBarrier();
    /** Remote-read pipeline stages, keyed by (source, pool handle). */
    void remoteReadAtHome(NodeId src, std::uint32_t op);
    void remoteReadServiced(NodeId src, std::uint32_t op);
    void deliverRemoteReadData(NodeId src, std::uint32_t op);
    /** Remote write landed at its home node. */
    void deliverRemoteWrite(NodeId src, NodeId home, Addr line);
    /** CPU-read pipeline stages, keyed by (source, pool handle). */
    void cpuReadAtCpu(NodeId src, std::uint32_t op);
    void cpuReadData(NodeId src, std::uint32_t op);
    void deliverCpuReadData(NodeId src, std::uint32_t op);
    /** Coherence invalidate arriving at @p node's domain. */
    void invalidateAt(NodeId node, Addr line);
    /** Fold every sharded counter into its registered scalar; runs in
     * the on_barrier hook so snapshots and checks see totals. */
    void foldShardedStats();
    void registerStats();
    /** Run every applicable invariant; panics listing all failures.
     * @param final_pass the event queues have drained, so checks over
     *        posted traffic (writes, tokens, MSHR occupancy) apply */
    void auditCheck(bool final_pass);

    SystemConfig cfg_;
    DomainEngine engine_;
    const Workload &wl_;
    PageManager pages_;
    Network net_;
    std::optional<GpuVi> vi_;

    /**
     * Host placement: one arena backing the system-domain op pools
     * plus one arena per GPU node for its request pools (and its
     * fabric op pools), all bound to the constructing thread's NUMA
     * node when CARVE_NUMA is enabled. Declared before gpus_ so every
     * pool they back drains before the memory goes away.
     */
    Arena sys_arena_;
    std::vector<Arena> gpu_arenas_;
    /** Per-source-GPU in-flight op pools: allocated and freed only in
     * the source domain; the home/system side reads records that were
     * published a window barrier earlier. */
    std::vector<Pool<RemoteReadOp>> remote_read_ops_;
    std::vector<Pool<CpuReadOp>> cpu_read_ops_;

    std::vector<std::unique_ptr<GpuNode>> gpus_;
    CtaScheduler sched_;

    trace::Session *trace_ = nullptr;
    Cycle kernel_started_at_ = 0;
    Cycle trace_next_sample_ = 0;

    KernelId cur_kernel_ = 0;
    unsigned gpus_done_ = 0;
    bool finished_ = false;
    bool watchdog_tripped_ = false;
    Cycle finish_time_ = 0;
    stats::Scalar bulk_bytes_;

    /**
     * Fabric-side conservation ledger: message and byte counts at the
     * point traffic enters the interconnect, which the audit balances
     * against the requester- and home-side counters. Always counted
     * (they are cheap and useful in reports); only audit mode checks
     * them. Sharded: fabric entry points execute in the caller's
     * domain.
     */
    ShardedScalar fabric_remote_read_msgs_;
    ShardedScalar fabric_remote_write_msgs_;
    ShardedScalar fabric_cpu_read_msgs_;
    ShardedScalar fabric_cpu_write_msgs_;
    ShardedScalar fabric_flush_bytes_;
    ShardedScalar fabric_coh_ctrl_bytes_;
    ShardedScalar fabric_bulk_gpu_bytes_;
    ShardedScalar fabric_bulk_cpu_bytes_;

    std::optional<audit::InflightTracker> audit_;

    telemetry::Options telem_;
    /** Engine self-profiling record, registered under "engine". */
    telemetry::EngineProfile engine_profile_;
    /** End-to-end remote-read latency (issue to data back at the
     * source). Sampled in each source GPU's domain, hence sharded. */
    telemetry::ShardedHistogram remote_read_latency_;

    stats::StatGroup stat_root_;
    std::vector<std::unique_ptr<stats::StatGroup>> stat_groups_;
    std::vector<stats::EpochPhase> phases_;
    stats::ScalarSnapshot phase_base_;
    Cycle phase_start_ = 0;
};

} // namespace carve

#endif // CARVE_CORE_MULTI_GPU_SYSTEM_HH
