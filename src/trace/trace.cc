#include "trace/trace.hh"

#include <array>

#include "common/logging.hh"

namespace carve {
namespace trace {

namespace {

struct CategoryEntry
{
    Category cat;
    const char *name;
};

constexpr std::array<CategoryEntry, 8> category_table{{
    {Category::Sm, "sm"},
    {Category::Cache, "cache"},
    {Category::Rdc, "rdc"},
    {Category::Dram, "dram"},
    {Category::Link, "link"},
    {Category::Coherence, "coherence"},
    {Category::Kernel, "kernel"},
    {Category::Audit, "audit"},
}};

} // namespace

const char *
categoryName(Category c)
{
    for (const CategoryEntry &e : category_table) {
        if (e.cat == c)
            return e.name;
    }
    return "?";
}

std::uint32_t
parseCategoryList(const std::string &list)
{
    std::uint32_t mask = 0;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string tok = list.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        start = comma == std::string::npos ? list.size() + 1
                                           : comma + 1;
        if (tok.empty())
            continue;
        if (tok == "all") {
            mask |= all_categories;
            continue;
        }
        bool found = false;
        for (const CategoryEntry &e : category_table) {
            if (tok == e.name) {
                mask |= static_cast<std::uint32_t>(e.cat);
                found = true;
                break;
            }
        }
        if (!found) {
            std::string valid = "all";
            for (const CategoryEntry &e : category_table)
                valid += std::string(", ") + e.name;
            fatal("trace: unknown category '%s' (valid: %s)",
                  tok.c_str(), valid.c_str());
        }
    }
    return mask;
}

Session::Session(const Options &opt)
    : opt_(opt)
{
    if (opt_.buffer_capacity == 0)
        fatal("trace: buffer_capacity must be positive");
    ring_.reserve(opt_.buffer_capacity);
}

void
Session::record(const Event &e)
{
    ++recorded_;
    if (ring_.size() < opt_.buffer_capacity) {
        ring_.push_back(e);
        return;
    }
    // Full: overwrite the oldest slot so the tail of the run survives
    // (the interesting part of a long trace is usually its end).
    ring_[head_] = e;
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
}

void
Session::span(Category c, std::uint32_t track, const char *name,
              Cycle start, Cycle end, std::uint64_t arg)
{
    Event e;
    e.ts = start;
    e.dur = end > start ? end - start : 0;
    e.arg = arg;
    e.name = name;
    e.track = track;
    e.cat = c;
    e.kind = EventKind::Span;
    record(e);
}

void
Session::instant(Category c, std::uint32_t track, const char *name,
                 Cycle ts, std::uint64_t arg)
{
    Event e;
    e.ts = ts;
    e.arg = arg;
    e.name = name;
    e.track = track;
    e.cat = c;
    e.kind = EventKind::Instant;
    record(e);
}

void
Session::instantText(Category c, std::uint32_t track,
                     const std::string &text, Cycle ts)
{
    instant(c, track, intern(text), ts);
}

void
Session::defineProcess(std::uint32_t pid, std::string name)
{
    processes_.push_back({pid, std::move(name)});
}

void
Session::defineThread(std::uint32_t pid, std::uint32_t tid,
                      std::string name)
{
    threads_.push_back({pid, tid, std::move(name)});
}

void
Session::addCounter(std::uint32_t pid, const std::string &name,
                    std::function<double()> probe)
{
    counters_.push_back({pid, intern(name), std::move(probe)});
}

void
Session::sampleCounters(Cycle now)
{
    for (const CounterDef &c : counters_) {
        Event e;
        e.ts = now;
        e.value = c.probe();
        e.name = c.name;
        e.track = makeTrack(c.pid, 0);
        e.cat = Category::Kernel;  // counters bypass category masking
        e.kind = EventKind::Counter;
        record(e);
    }
}

void
Session::forEach(const std::function<void(const Event &)> &fn) const
{
    const std::size_t n = ring_.size();
    for (std::size_t i = 0; i < n; ++i)
        fn(ring_[(head_ + i) % n]);
}

const char *
Session::intern(const std::string &text)
{
    interned_.push_back(text);
    return interned_.back().c_str();
}

} // namespace trace
} // namespace carve
