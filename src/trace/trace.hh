/**
 * @file
 * Cycle-level event tracing: a fixed-capacity ring-buffer sink for
 * timeline spans, instant events and sampled counter tracks, exported
 * as Chrome trace-event JSON (see trace/chrome_export.hh) and loadable
 * in Perfetto / chrome://tracing.
 *
 * Design constraints, in priority order:
 *
 *  1. Provably free when off. Building with -DCARVE_TRACE=OFF defines
 *     CARVE_TRACE_ENABLED=0 and every instrumentation site — all
 *     guarded by active() — folds to a constant-false branch. At
 *     runtime, a null Session pointer (the default everywhere) keeps
 *     the hooks to one pointer test.
 *  2. Deterministic simulation. The tracer only *observes*: it never
 *     schedules events, so an instrumented run executes the exact
 *     event sequence of an uninstrumented one and results files stay
 *     byte-identical (pinned by tests/test_determinism.cc).
 *  3. Bounded memory. Events land in a fixed-capacity ring; overflow
 *     overwrites oldest-first and is reported through the
 *     trace.dropped_events stat.
 */

#ifndef CARVE_TRACE_TRACE_HH
#define CARVE_TRACE_TRACE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

/** Compile-time kill switch, normally set by CMake (CARVE_TRACE). */
#ifndef CARVE_TRACE_ENABLED
#define CARVE_TRACE_ENABLED 1
#endif

namespace carve {
namespace trace {

/** Event categories; each is one bit of the runtime enable mask. */
enum class Category : std::uint32_t {
    Sm        = 1u << 0,  ///< warp memory-latency spans, MSHR stalls
    Cache     = 1u << 1,  ///< L1/L2 miss lifetimes (MSHR alloc->fill)
    Rdc       = 1u << 2,  ///< RDC miss lifetimes, boundary flushes
    Dram      = 1u << 3,  ///< channel data-bus busy spans
    Link      = 1u << 4,  ///< per-link packet occupancy spans
    Coherence = 1u << 5,  ///< invalidations (hardware + boundary)
    Kernel    = 1u << 6,  ///< kernel phase spans + boundary markers
    Audit     = 1u << 7,  ///< audit passes, watchdog, log messages
};

/** Every category bit set. */
constexpr std::uint32_t all_categories = 0xffu;

/** Lower-case name of one category ("sm", "cache", ...). */
const char *categoryName(Category c);

/**
 * Parse a comma-separated category list ("sm,dram,link"; "all" for
 * every category) into an enable mask. fatal() on an unknown name,
 * listing the valid ones.
 */
std::uint32_t parseCategoryList(const std::string &list);

/** How one recorded event is rendered on the timeline. */
enum class EventKind : std::uint8_t {
    Span,     ///< duration slice [ts, ts+dur) on a thread row
    Instant,  ///< zero-width marker at ts
    Counter,  ///< sampled value of a counter track at ts
};

/** Encode a Chrome (pid, tid) pair into one track id. */
constexpr std::uint32_t
makeTrack(std::uint32_t pid, std::uint32_t tid)
{
    return (pid << 16) | (tid & 0xffffu);
}

/** Process half of a track id. */
constexpr std::uint32_t trackPid(std::uint32_t t) { return t >> 16; }
/** Thread half of a track id. */
constexpr std::uint32_t trackTid(std::uint32_t t) { return t & 0xffffu; }

/**
 * One recorded trace event. Fixed-size POD so the ring buffer is one
 * flat allocation; @ref name points at a string-literal (or a string
 * interned by the owning Session) and is never freed per-event.
 */
struct Event
{
    Cycle ts = 0;             ///< start cycle
    Cycle dur = 0;            ///< span length (0 for instant/counter)
    std::uint64_t arg = 0;    ///< payload (line addr, bytes, index...)
    double value = 0.0;       ///< counter sample value
    const char *name = "";    ///< static or Session-interned label
    std::uint32_t track = 0;  ///< makeTrack(pid, tid)
    Category cat = Category::Sm;
    EventKind kind = EventKind::Instant;
};

/** Tracing configuration, carried by RunOptions::trace. */
struct Options
{
    /** Master switch; false leaves the whole subsystem untouched. */
    bool enabled = false;
    /** Runtime per-category enable mask (see parseCategoryList). */
    std::uint32_t categories = all_categories;
    /** Ring capacity in events; overflow drops oldest-first. */
    std::size_t buffer_capacity = 1u << 20;
    /** Cycles between counter-track samples; 0 disables sampling. */
    Cycle sample_interval = 1000;
    /** Chrome trace-event JSON output file; empty == keep in memory
     * (callers may still export by hand). */
    std::string out_path;
    /** Harness use: directory for per-run trace files, composed into
     * out_path from the run key when out_path is empty. */
    std::string out_dir;
};

/** True when the tracing hooks were compiled in (CARVE_TRACE=ON). */
constexpr bool compiled_in = CARVE_TRACE_ENABLED != 0;

/**
 * One tracing session: the ring-buffer sink plus the track registry
 * (process/thread rows for the exporter) and the registered counter
 * probes. Components hold a Session* (null when untraced) and a
 * pre-encoded track id; every hook goes through active() first.
 */
class Session
{
  public:
    /** Display-row registration, consumed by the exporter. */
    struct ProcessDef
    {
        std::uint32_t pid;
        std::string name;
    };
    struct ThreadDef
    {
        std::uint32_t pid;
        std::uint32_t tid;
        std::string name;
    };
    /** One sampled counter track (per-process, named). */
    struct CounterDef
    {
        std::uint32_t pid;
        const char *name;  ///< interned by the session
        std::function<double()> probe;
    };

    explicit Session(const Options &opt);

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    const Options &options() const { return opt_; }

    /** True when @p c is enabled in the runtime mask. */
    bool
    wants(Category c) const
    {
        return (opt_.categories & static_cast<std::uint32_t>(c)) != 0;
    }

    // ---- recording -------------------------------------------------
    /** Record a duration slice [start, end) (end < start is clamped). */
    void span(Category c, std::uint32_t track, const char *name,
              Cycle start, Cycle end, std::uint64_t arg = 0);

    /** Record a zero-width marker. */
    void instant(Category c, std::uint32_t track, const char *name,
                 Cycle ts, std::uint64_t arg = 0);

    /** Record an instant whose label is dynamic text (log messages);
     * the string is interned for the session's lifetime. */
    void instantText(Category c, std::uint32_t track,
                     const std::string &text, Cycle ts);

    // ---- track registry --------------------------------------------
    void defineProcess(std::uint32_t pid, std::string name);
    void defineThread(std::uint32_t pid, std::uint32_t tid,
                      std::string name);

    // ---- counter tracks --------------------------------------------
    /** Register a per-process counter probe, sampled every
     * options().sample_interval cycles by the owning system. */
    void addCounter(std::uint32_t pid, const std::string &name,
                    std::function<double()> probe);

    bool hasCounters() const { return !counters_.empty(); }
    Cycle sampleInterval() const { return opt_.sample_interval; }

    /** Sample every registered counter at cycle @p now. */
    void sampleCounters(Cycle now);

    // ---- introspection / export ------------------------------------
    /** Events overwritten because the ring was full (oldest-first). */
    std::uint64_t droppedEvents() const { return dropped_; }
    /** Events recorded over the session (including dropped ones). */
    std::uint64_t recordedEvents() const { return recorded_; }
    /** Events currently held in the ring. */
    std::size_t size() const { return ring_.size(); }

    /** Visit retained events oldest-first. */
    void forEach(const std::function<void(const Event &)> &fn) const;

    const std::vector<ProcessDef> &processes() const
    {
        return processes_;
    }
    const std::vector<ThreadDef> &threads() const { return threads_; }
    const std::vector<CounterDef> &counters() const
    {
        return counters_;
    }

    /** Copy @p text into session-lifetime storage (stable address). */
    const char *intern(const std::string &text);

  private:
    void record(const Event &e);

    Options opt_;
    std::vector<Event> ring_;
    std::size_t head_ = 0;  ///< oldest element once the ring is full
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;

    std::vector<ProcessDef> processes_;
    std::vector<ThreadDef> threads_;
    std::vector<CounterDef> counters_;
    /** Interned dynamic labels; deque keeps addresses stable. */
    std::deque<std::string> interned_;
};

/**
 * THE hook guard: every instrumentation site reads
 *
 *     if (trace::active(trace_, trace::Category::Dram))
 *         trace_->span(...);
 *
 * With CARVE_TRACE=OFF this is constant-false and the whole site is
 * dead code; with tracing compiled in but no session attached it costs
 * one pointer test.
 */
inline bool
active(const Session *s, Category c)
{
    if constexpr (!compiled_in)
        return false;
    return s != nullptr && s->wants(c);
}

} // namespace trace
} // namespace carve

#endif // CARVE_TRACE_TRACE_HH
