/**
 * @file
 * Chrome trace-event JSON exporter for trace::Session. The output is
 * the "JSON object format" both Perfetto and chrome://tracing accept:
 *
 *   { "displayTimeUnit": "ns",
 *     "otherData": { ...run metadata, drop accounting... },
 *     "traceEvents": [ metadata rows..., X/i/C events... ] }
 *
 * Timestamps map one simulated cycle to one microsecond tick, so the
 * timeline reads directly in cycles. One process row per GPU (plus
 * "system" and "interconnect"), one thread row per component, counter
 * tracks alongside their process.
 */

#ifndef CARVE_TRACE_CHROME_EXPORT_HH
#define CARVE_TRACE_CHROME_EXPORT_HH

#include <string>

#include "trace/trace.hh"

namespace carve {
namespace trace {

/** Run identity recorded into the trace's otherData block. */
struct ExportMeta
{
    std::string workload;
    std::string preset;
};

/** Serialise @p s as a Chrome trace-event JSON document. */
std::string chromeTraceJson(const Session &s,
                            const ExportMeta &meta = {});

/** chromeTraceJson() to @p path; fatal() when the file cannot be
 * written. */
void writeChromeTrace(const Session &s, const std::string &path,
                      const ExportMeta &meta = {});

} // namespace trace
} // namespace carve

#endif // CARVE_TRACE_CHROME_EXPORT_HH
