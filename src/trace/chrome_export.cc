#include "trace/chrome_export.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "common/logging.hh"

namespace carve {
namespace trace {

namespace {

/** JSON string escaping (quotes, backslashes, control chars). */
void
appendEscaped(std::string &out, const char *s)
{
    for (; *s; ++s) {
        const char c = *s;
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    out += buf;
}

void
appendDouble(std::string &out, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    out += buf;
}

/** One "M" metadata event naming a process or thread row. */
void
appendMetaRow(std::string &out, const char *what, std::uint32_t pid,
              std::uint32_t tid, const std::string &name,
              bool with_tid)
{
    out += "{\"ph\":\"M\",\"name\":\"";
    out += what;
    out += "\",\"pid\":";
    appendU64(out, pid);
    if (with_tid) {
        out += ",\"tid\":";
        appendU64(out, tid);
    }
    out += ",\"args\":{\"name\":\"";
    appendEscaped(out, name.c_str());
    out += "\"}},\n";
}

void
appendEvent(std::string &out, const Event &e)
{
    const std::uint32_t pid = trackPid(e.track);
    const std::uint32_t tid = trackTid(e.track);
    switch (e.kind) {
      case EventKind::Span:
        out += "{\"ph\":\"X\",\"name\":\"";
        appendEscaped(out, e.name);
        out += "\",\"cat\":\"";
        out += categoryName(e.cat);
        out += "\",\"pid\":";
        appendU64(out, pid);
        out += ",\"tid\":";
        appendU64(out, tid);
        out += ",\"ts\":";
        appendU64(out, e.ts);
        out += ",\"dur\":";
        appendU64(out, e.dur);
        out += ",\"args\":{\"v\":";
        appendU64(out, e.arg);
        out += "}},\n";
        break;
      case EventKind::Instant:
        out += "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"";
        appendEscaped(out, e.name);
        out += "\",\"cat\":\"";
        out += categoryName(e.cat);
        out += "\",\"pid\":";
        appendU64(out, pid);
        out += ",\"tid\":";
        appendU64(out, tid);
        out += ",\"ts\":";
        appendU64(out, e.ts);
        out += ",\"args\":{\"v\":";
        appendU64(out, e.arg);
        out += "}},\n";
        break;
      case EventKind::Counter:
        out += "{\"ph\":\"C\",\"name\":\"";
        appendEscaped(out, e.name);
        out += "\",\"pid\":";
        appendU64(out, pid);
        out += ",\"ts\":";
        appendU64(out, e.ts);
        out += ",\"args\":{\"value\":";
        appendDouble(out, e.value);
        out += "}},\n";
        break;
    }
}

} // namespace

std::string
chromeTraceJson(const Session &s, const ExportMeta &meta)
{
    std::string out;
    out.reserve(256 + s.size() * 96);
    out += "{\n\"displayTimeUnit\": \"ns\",\n\"otherData\": {";
    out += "\"workload\": \"";
    appendEscaped(out, meta.workload.c_str());
    out += "\", \"preset\": \"";
    appendEscaped(out, meta.preset.c_str());
    out += "\", \"recorded_events\": ";
    appendU64(out, s.recordedEvents());
    out += ", \"dropped_events\": ";
    appendU64(out, s.droppedEvents());
    out += ", \"sample_interval\": ";
    appendU64(out, s.options().sample_interval);
    out += "},\n\"traceEvents\": [\n";

    for (const Session::ProcessDef &p : s.processes())
        appendMetaRow(out, "process_name", p.pid, 0, p.name, false);
    for (const Session::ThreadDef &t : s.threads())
        appendMetaRow(out, "thread_name", t.pid, t.tid, t.name, true);

    s.forEach([&out](const Event &e) { appendEvent(out, e); });

    // Trailing comma from the last event/metadata row: JSON forbids
    // it, so close the array with a harmless terminator event.
    out += "{\"ph\":\"M\",\"name\":\"trace_end\",\"pid\":0,"
           "\"args\":{}}\n]\n}\n";
    return out;
}

void
writeChromeTrace(const Session &s, const std::string &path,
                 const ExportMeta &meta)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        fatal("trace: cannot open '%s' for writing", path.c_str());
    const std::string doc = chromeTraceJson(s, meta);
    f.write(doc.data(),
            static_cast<std::streamsize>(doc.size()));
    f.flush();
    if (!f)
        fatal("trace: write to '%s' failed", path.c_str());
}

} // namespace trace
} // namespace carve
