#include "service/client.hh"

#include <cerrno>
#include <cstring>

#include "common/logging.hh"
#include "harness/results_io.hh"

namespace carve {
namespace service {

namespace {

/** Defensive bool member read: absent or ill-typed reads as false. */
bool
boolAt(const json::Value &v, const char *key)
{
    return v.at(key).kind() == json::Value::Kind::Bool &&
           v.at(key).asBool();
}

} // namespace

std::optional<Client>
Client::connect(const std::string &socket_path)
{
    LineChannel chan = connectUnix(socket_path);
    if (!chan.valid()) {
        warn("carve-served client: cannot connect to '%s': %s",
             socket_path.c_str(), std::strerror(errno));
        return std::nullopt;
    }
    Client client(std::move(chan));
    json::Value ping{json::Members{}};
    ping.set("op", "ping");
    const json::Value pong = client.request(ping);
    if (!boolAt(pong, "ok")) {
        warn("carve-served client: '%s' did not answer ping",
             socket_path.c_str());
        return std::nullopt;
    }
    const std::string schema = pong.at("schema").isString()
                                   ? pong.at("schema").asString()
                                   : std::string();
    if (schema != kProtocolSchema) {
        warn("carve-served client: '%s' speaks '%s', this client "
             "speaks '%s'",
             socket_path.c_str(), schema.c_str(), kProtocolSchema);
        return std::nullopt;
    }
    if (pong.at("threads").kind() == json::Value::Kind::Int) {
        client.server_threads_ =
            static_cast<unsigned>(pong.at("threads").asInt());
    }
    return client;
}

json::Value
Client::request(const json::Value &req, EventFn on_event)
{
    if (!chan_.writeLine(req.dump(0)))
        return json::Value();
    std::string line;
    while (chan_.readLine(line)) {
        json::Value v;
        try {
            ScopedErrorCapture capture;
            v = json::parse(line, "server response");
        } catch (const std::exception &e) {
            warn("carve-served client: bad response line: %s",
                 e.what());
            return json::Value();
        }
        if (v.has("event")) {
            if (on_event) {
                on_event(v.at("event").asString(),
                         v.at("id").isString()
                             ? v.at("id").asString()
                             : std::string(),
                         v.at("state").isString()
                             ? v.at("state").asString()
                             : std::string());
            }
            continue;  // progress line; the response follows
        }
        return v;
    }
    return json::Value();  // connection lost
}

SubmitReply
Client::submit(const JobSpec &spec)
{
    json::Value req{json::Members{}};
    req.set("op", "submit");
    req.set("job", jobSpecToJson(spec));
    const json::Value resp = request(req);

    SubmitReply out;
    if (resp.isNull()) {
        out.error = "connection lost";
        return out;
    }
    if (!boolAt(resp, "ok")) {
        out.error = resp.at("error").isString()
                        ? resp.at("error").asString()
                        : "server error";
        out.retriable = boolAt(resp, "retriable");
        return out;
    }
    out.ok = true;
    if (resp.at("id").isString())
        out.id = resp.at("id").asString();
    if (resp.at("state").isString())
        out.state = resp.at("state").asString();
    out.cached = boolAt(resp, "cached");
    return out;
}

ResultReply
Client::result(const std::string &id, EventFn on_event)
{
    json::Value req{json::Members{}};
    req.set("op", "result");
    req.set("id", id);
    req.set("wait", true);
    req.set("events", static_cast<bool>(on_event));
    const json::Value resp = request(req, std::move(on_event));

    ResultReply out;
    if (resp.isNull()) {
        out.error = "connection lost";
        return out;
    }
    out.state = resp.at("state").isString()
                    ? resp.at("state").asString()
                    : std::string();
    if (!boolAt(resp, "ok")) {
        out.error = resp.at("error").isString()
                        ? resp.at("error").asString()
                        : "server error";
        return out;
    }
    if (!resp.has("run")) {
        out.error = "job not finished";
        return out;
    }
    out.ok = true;
    out.cached = boolAt(resp, "cached");
    out.wall_seconds = resp.at("wall_seconds").isNumber()
                           ? resp.at("wall_seconds").asDouble()
                           : 0.0;
    out.record_json = resp.at("run").dump(0);
    try {
        ScopedErrorCapture capture;
        out.run = harness::resultFromJson(resp.at("run"));
    } catch (const std::exception &e) {
        out.ok = false;
        out.error = std::string("bad run record: ") + e.what();
    }
    return out;
}

bool
Client::cancel(const std::string &id)
{
    json::Value req{json::Members{}};
    req.set("op", "cancel");
    req.set("id", id);
    const json::Value resp = request(req);
    return boolAt(resp, "ok") && boolAt(resp, "cancelled");
}

json::Value
Client::stats()
{
    json::Value req{json::Members{}};
    req.set("op", "stats");
    return request(req);
}

std::string
Client::metrics()
{
    json::Value req{json::Members{}};
    req.set("op", "metrics");
    const json::Value resp = request(req);
    if (!boolAt(resp, "ok") || !resp.at("text").isString())
        return std::string();
    return resp.at("text").asString();
}

JobSpec
jobFromRunSpec(const harness::RunSpec &spec)
{
    JobSpec job;
    job.preset = presetName(spec.preset);
    job.workload = spec.workload;
    job.config = spec.base;
    job.seed = spec.opts.seed;
    job.max_cycles = spec.opts.max_cycles;
    job.max_wall_seconds = spec.opts.max_wall_seconds;
    job.profile_lines = spec.opts.profile_lines;
    job.audit = spec.opts.audit;
    job.host_stats = spec.host_stats;
    return job;
}

} // namespace service
} // namespace carve
