/**
 * @file
 * Content-addressed job identity. A job's key is the FNV-1a 64-bit
 * hash of its canonical serialization (jobSpecToJson().dump(0), which
 * fixes member order and sorts configuration keys), rendered as 16
 * lowercase hex digits. Two JobSpecs describing the same simulation
 * hash identically no matter how (or in what order) their configs
 * were assembled; any semantic difference — one override value, a
 * different seed, host-stats on vs off, a bumped kJobSchema — yields
 * a different key. The key doubles as the result-cache file name.
 */

#ifndef CARVE_SERVICE_JOB_KEY_HH
#define CARVE_SERVICE_JOB_KEY_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "service/protocol.hh"

namespace carve {
namespace service {

/** FNV-1a 64-bit over @p bytes. */
std::uint64_t fnv1a64(std::string_view bytes);

/** 16-hex-digit content key of @p spec (see file comment). */
std::string jobKey(const JobSpec &spec);

/** True when @p key looks like a jobKey() product (16 hex digits). */
bool isJobKey(const std::string &key);

} // namespace service
} // namespace carve

#endif // CARVE_SERVICE_JOB_KEY_HH
