#include "service/protocol.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"

namespace carve {
namespace service {

namespace {

/** parseRegionKind: inverse of regionKindName(). */
RegionKind
parseRegionKind(const std::string &s)
{
    static constexpr RegionKind kinds[] = {
        RegionKind::PrivateStream,    RegionKind::InterleavedStream,
        RegionKind::SharedStream,     RegionKind::Lookup,
        RegionKind::Halo,             RegionKind::Atomic,
        RegionKind::RandomGlobal,
    };
    for (const RegionKind k : kinds) {
        if (s == regionKindName(k))
            return k;
    }
    fatal("job: unknown region kind '%s'", s.c_str());
}

/** Member lookup that fails loudly instead of returning null. */
const json::Value &
require(const json::Value &v, const char *key, const char *what)
{
    if (!v.has(key))
        fatal("job: %s is missing member '%s'", what, key);
    return v.at(key);
}

std::uint64_t
requireU64(const json::Value &v, const char *key, const char *what)
{
    const json::Value &m = require(v, key, what);
    if (m.kind() != json::Value::Kind::Int)
        fatal("job: %s member '%s' must be an integer", what, key);
    return static_cast<std::uint64_t>(m.asInt());
}

double
requireDouble(const json::Value &v, const char *key, const char *what)
{
    const json::Value &m = require(v, key, what);
    if (!m.isNumber())
        fatal("job: %s member '%s' must be a number", what, key);
    return m.asDouble();
}

bool
requireBool(const json::Value &v, const char *key, const char *what)
{
    const json::Value &m = require(v, key, what);
    if (m.kind() != json::Value::Kind::Bool)
        fatal("job: %s member '%s' must be a bool", what, key);
    return m.asBool();
}

std::string
requireString(const json::Value &v, const char *key, const char *what)
{
    const json::Value &m = require(v, key, what);
    if (!m.isString())
        fatal("job: %s member '%s' must be a string", what, key);
    return m.asString();
}

json::Value
regionToJson(const RegionSpec &r)
{
    json::Value o{json::Members{}};
    o.set("kind", regionKindName(r.kind));
    o.set("bytes", r.bytes);
    o.set("access_frac", r.access_frac);
    o.set("write_frac", r.write_frac);
    o.set("zipf", r.zipf);
    o.set("lanes", static_cast<unsigned>(r.lanes));
    o.set("neighbor_frac", r.neighbor_frac);
    return o;
}

RegionSpec
regionFromJson(const json::Value &v)
{
    RegionSpec r;
    r.kind = parseRegionKind(requireString(v, "kind", "region"));
    r.bytes = requireU64(v, "bytes", "region");
    r.access_frac = requireDouble(v, "access_frac", "region");
    r.write_frac = requireDouble(v, "write_frac", "region");
    r.zipf = requireDouble(v, "zipf", "region");
    r.lanes =
        static_cast<std::uint8_t>(requireU64(v, "lanes", "region"));
    r.neighbor_frac = requireDouble(v, "neighbor_frac", "region");
    return r;
}

json::Value
workloadToJson(const WorkloadParams &w)
{
    json::Value o{json::Members{}};
    o.set("name", w.name);
    o.set("kernels", w.kernels);
    o.set("ctas", w.ctas);
    o.set("warps_per_cta", w.warps_per_cta);
    o.set("insts_per_warp", w.insts_per_warp);
    o.set("compute_min", static_cast<unsigned>(w.compute_min));
    o.set("compute_max", static_cast<unsigned>(w.compute_max));
    o.set("iterative", w.iterative);
    json::Value regions{json::Array{}};
    for (const RegionSpec &r : w.regions)
        regions.push(regionToJson(r));
    o.set("regions", std::move(regions));
    return o;
}

WorkloadParams
workloadFromJson(const json::Value &v)
{
    WorkloadParams w;
    w.name = requireString(v, "name", "workload");
    w.kernels = static_cast<unsigned>(
        requireU64(v, "kernels", "workload"));
    w.ctas = requireU64(v, "ctas", "workload");
    w.warps_per_cta = static_cast<unsigned>(
        requireU64(v, "warps_per_cta", "workload"));
    w.insts_per_warp = requireU64(v, "insts_per_warp", "workload");
    w.compute_min = static_cast<std::uint16_t>(
        requireU64(v, "compute_min", "workload"));
    w.compute_max = static_cast<std::uint16_t>(
        requireU64(v, "compute_max", "workload"));
    w.iterative = requireBool(v, "iterative", "workload");
    const json::Value &regions = require(v, "regions", "workload");
    if (!regions.isArray())
        fatal("job: workload member 'regions' must be an array");
    for (const json::Value &r : regions.asArray())
        w.regions.push_back(regionFromJson(r));
    return w;
}

} // namespace

json::Value
jobSpecToJson(const JobSpec &spec)
{
    json::Value o{json::Members{}};
    o.set("schema", kJobSchema);
    o.set("preset", spec.preset);
    o.set("workload", workloadToJson(spec.workload));
    // Sorted override keys: the canonical configuration form, so the
    // dump is independent of how the config was assembled.
    json::Value cfg{json::Members{}};
    for (const ConfigOverride &ov : spec.config.canonicalOverrides())
        cfg.set(ov.key, ov.value);
    o.set("config", std::move(cfg));
    json::Value opts{json::Members{}};
    opts.set("seed", spec.seed);
    opts.set("max_cycles", spec.max_cycles);
    opts.set("max_wall_seconds", spec.max_wall_seconds);
    opts.set("profile_lines", spec.profile_lines);
    opts.set("audit", spec.audit);
    opts.set("host_stats", spec.host_stats);
    o.set("options", std::move(opts));
    return o;
}

JobSpec
jobSpecFromJson(const json::Value &v)
{
    const std::string schema = requireString(v, "schema", "job");
    if (schema != kJobSchema) {
        fatal("job: schema mismatch: got '%s', this server speaks "
              "'%s'", schema.c_str(), kJobSchema);
    }
    JobSpec spec;
    spec.preset = requireString(v, "preset", "job");
    spec.workload = workloadFromJson(require(v, "workload", "job"));
    const json::Value &cfg = require(v, "config", "job");
    if (!cfg.isObject())
        fatal("job: member 'config' must be an object");
    for (const auto &[key, value] : cfg.asObject()) {
        if (!value.isString())
            fatal("job: config value for '%s' must be a string",
                  key.c_str());
        spec.config.applyOverride(key, value.asString());
    }
    const json::Value &opts = require(v, "options", "job");
    spec.seed = requireU64(opts, "seed", "options");
    spec.max_cycles = requireU64(opts, "max_cycles", "options");
    spec.max_wall_seconds =
        requireDouble(opts, "max_wall_seconds", "options");
    spec.profile_lines = requireBool(opts, "profile_lines", "options");
    spec.audit = requireBool(opts, "audit", "options");
    spec.host_stats = requireBool(opts, "host_stats", "options");
    return spec;
}

json::Value
errorResponse(const std::string &op, const std::string &error,
              bool retriable)
{
    json::Value o{json::Members{}};
    o.set("ok", false);
    o.set("op", op);
    o.set("error", error);
    if (retriable)
        o.set("retriable", true);
    return o;
}

LineChannel::~LineChannel()
{
    close();
}

LineChannel::LineChannel(LineChannel &&other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_))
{
    other.fd_ = -1;
}

LineChannel &
LineChannel::operator=(LineChannel &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        buf_ = std::move(other.buf_);
        other.fd_ = -1;
    }
    return *this;
}

bool
LineChannel::readLine(std::string &out)
{
    while (true) {
        const std::size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            out.assign(buf_, 0, nl);
            buf_.erase(0, nl + 1);
            return true;
        }
        if (fd_ < 0)
            return false;
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;  // EOF; any partial line is dropped
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

bool
LineChannel::writeLine(const std::string &line)
{
    if (fd_ < 0)
        return false;
    std::string framed = line;
    framed += '\n';
    std::size_t off = 0;
    while (off < framed.size()) {
        // MSG_NOSIGNAL: a dead peer must be an error return, not a
        // process-killing SIGPIPE in the middle of serving.
        const ssize_t n = ::send(fd_, framed.data() + off,
                                 framed.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

void
LineChannel::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

void
LineChannel::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

LineChannel
connectUnix(const std::string &path)
{
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        errno = ENAMETOOLONG;
        return LineChannel();
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return LineChannel();
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        return LineChannel();
    }
    return LineChannel(fd);
}

int
listenUnix(const std::string &path, int backlog)
{
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        errno = ENAMETOOLONG;
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return -1;
    // A stale socket file from a crashed daemon would make bind()
    // fail forever; connecting clients get ECONNREFUSED from it, so
    // replacing it is always safe.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, backlog) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        return -1;
    }
    return fd;
}

} // namespace service
} // namespace carve
