#include "service/job_key.hh"

#include <cstdio>

namespace carve {
namespace service {

std::uint64_t
fnv1a64(std::string_view bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;  // FNV prime
    }
    return h;
}

std::string
jobKey(const JobSpec &spec)
{
    // The canonical dump already embeds kJobSchema, so a schema bump
    // re-keys every job.
    const std::string canon = jobSpecToJson(spec).dump(0);
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(canon)));
    return buf;
}

bool
isJobKey(const std::string &key)
{
    if (key.size() != 16)
        return false;
    for (const char c : key) {
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    }
    return true;
}

} // namespace service
} // namespace carve
