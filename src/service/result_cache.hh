/**
 * @file
 * On-disk memoization cache for completed simulation runs.
 *
 * Layout: one file per entry, `<dir>/<job-key>.json`, holding the
 * run-record JSON exactly as the server will return it — a cache hit
 * is therefore byte-identical to the run that populated it. Writes
 * go through a temp file + rename so a crashed daemon never leaves a
 * truncated entry behind; unparsable or foreign files in the
 * directory are simply ignored.
 *
 * Eviction is LRU by a byte budget over the stored record sizes. The
 * recency order is kept in memory (a monotonic use counter) and
 * seeded from file mtimes when an existing directory is adopted, so
 * the order survives daemon restarts approximately and exactly while
 * one daemon owns the directory. All methods are thread-safe.
 */

#ifndef CARVE_SERVICE_RESULT_CACHE_HH
#define CARVE_SERVICE_RESULT_CACHE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace carve {
namespace service {

class ResultCache
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t stores = 0;
        std::uint64_t evictions = 0;
        std::uint64_t bytes = 0;    ///< current resident bytes
        std::uint64_t entries = 0;  ///< current entry count
    };

    /**
     * Adopt (creating if needed) @p dir as the cache directory.
     * @p byte_budget bounds the sum of stored record sizes; 0 means
     * unlimited. An empty @p dir disables the cache entirely (get
     * always misses, put is a no-op).
     */
    ResultCache(std::string dir, std::uint64_t byte_budget);

    /** Stored record bytes for @p key, or nullopt. Bumps recency. */
    std::optional<std::string> get(const std::string &key);

    /**
     * Store @p record_json under @p key (most-recently-used), then
     * evict least-recently-used entries until the budget holds. The
     * entry being stored is never evicted by its own put, even when
     * it exceeds the whole budget on its own.
     */
    void put(const std::string &key, const std::string &record_json);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    Stats stats() const;

  private:
    struct Entry
    {
        std::uint64_t bytes = 0;
        std::uint64_t last_use = 0;
    };

    std::string path(const std::string &key) const;
    void evictLocked(const std::string &keep);

    const std::string dir_;
    const std::uint64_t budget_;

    mutable std::mutex mu_;
    std::map<std::string, Entry> entries_;
    std::uint64_t clock_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace service
} // namespace carve

#endif // CARVE_SERVICE_RESULT_CACHE_HH
