#include "service/server.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "harness/results_io.hh"
#include "harness/sweep.hh"
#include "service/job_key.hh"
#include "telemetry/telemetry.hh"

namespace carve {
namespace service {

namespace {

bool
terminal(JobState s)
{
    return s == JobState::Done || s == JobState::Cancelled;
}

/** Best-effort thread naming (Linux; 15-char limit). */
void
nameCurrentThread(const char *name)
{
#ifdef __linux__
    pthread_setname_np(pthread_self(), name);
#else
    (void)name;
#endif
}

std::string
requestId(const json::Value &req)
{
    return req.at("id").isString() ? req.at("id").asString()
                                   : std::string();
}

} // namespace

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Done: return "done";
      case JobState::Cancelled: return "cancelled";
    }
    return "?";
}

Server::Server(const Options &opt)
    : opt_(opt), cache_(opt.cache_dir, opt.cache_budget)
{
    if (::pipe(drain_pipe_) != 0)
        fatal("carve-served: pipe: %s", std::strerror(errno));
    pool_ = std::make_unique<harness::ThreadPool>(opt_.threads);
}

Server::~Server()
{
    // serve() normally cleans these up; cover construction failures
    // and never-served instances.
    if (listen_fd_ >= 0)
        ::close(listen_fd_);
    for (const int fd : drain_pipe_) {
        if (fd >= 0)
            ::close(fd);
    }
    // pool_ destruction drains outstanding jobs; they only touch
    // members declared before it plus jobs_ entries held alive by
    // shared_ptr, so joining here is safe.
    pool_.reset();
}

void
Server::requestDrain()
{
    // Only async-signal-safe calls: this runs inside SIGTERM/SIGINT
    // handlers.
    const char byte = 'd';
    [[maybe_unused]] ssize_t n = ::write(drain_pipe_[1], &byte, 1);
}

void
Server::serve()
{
    listen_fd_ = listenUnix(opt_.socket_path, 64);
    if (listen_fd_ < 0) {
        fatal("carve-served: cannot listen on '%s': %s",
              opt_.socket_path.c_str(), std::strerror(errno));
    }
    if (!opt_.quiet) {
        inform("carve-served: listening on %s (%u worker thread(s), "
               "cache %s)",
               opt_.socket_path.c_str(), pool_->size(),
               cache_.enabled() ? cache_.dir().c_str() : "disabled");
    }

    while (true) {
        pollfd fds[2] = {
            {listen_fd_, POLLIN, 0},
            {drain_pipe_[0], POLLIN, 0},
        };
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            fatal("carve-served: poll: %s", std::strerror(errno));
        }
        if (fds[1].revents & POLLIN)
            break;  // drain requested
        if (!(fds[0].revents & POLLIN))
            continue;
        const int cfd = ::accept(listen_fd_, nullptr, nullptr);
        if (cfd < 0)
            continue;
        pruneConnections();
        conns_.emplace_back();
        Conn &c = conns_.back();
        c.chan = LineChannel(cfd);
        c.th = std::jthread([this, &c] { connectionLoop(&c); });
        ++connections_;
    }

    // ---- graceful drain -------------------------------------------
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(opt_.socket_path.c_str());
    {
        std::lock_guard lock(mu_);
        draining_ = true;
    }
    if (!opt_.quiet)
        inform("carve-served: draining (%zu job(s) outstanding)",
               [this] {
                   std::lock_guard lock(mu_);
                   return queued_ + running_;
               }());

    // Every queued job runs to completion; waiting clients get their
    // responses as the transitions fire.
    pool_->wait();

    // Unblock connection readers and join them.
    for (Conn &c : conns_)
        c.chan.shutdownBoth();
    conns_.clear();  // jthread destructors join

    if (!opt_.quiet)
        inform("carve-served: drained, exiting");
}

void
Server::pruneConnections()
{
    for (auto it = conns_.begin(); it != conns_.end();) {
        if (it->done.load(std::memory_order_acquire))
            it = conns_.erase(it);  // jthread dtor joins (finished)
        else
            ++it;
    }
}

void
Server::connectionLoop(Conn *conn)
{
    nameCurrentThread("carve-conn");
    std::string line;
    while (conn->chan.readLine(line)) {
        json::Value req;
        try {
            ScopedErrorCapture capture;
            req = json::parse(line, "request");
        } catch (const std::exception &e) {
            if (!conn->chan.writeLine(
                    errorResponse("", e.what()).dump(0)))
                break;
            continue;
        }
        const std::string op = req.at("op").isString()
                                   ? req.at("op").asString()
                                   : std::string();
        json::Value resp;
        if (op == "ping") {
            resp = handlePing();
        } else if (op == "submit") {
            resp = handleSubmit(req);
        } else if (op == "status") {
            resp = handleStatus(req);
        } else if (op == "result") {
            resp = handleResult(req, conn);
        } else if (op == "cancel") {
            resp = handleCancel(req);
        } else if (op == "stats") {
            resp = statsJson();
        } else if (op == "metrics") {
            resp = json::Value{json::Members{}};
            resp.set("ok", true);
            resp.set("op", "metrics");
            resp.set("content_type",
                     "text/plain; version=0.0.4");
            resp.set("text", metricsPrometheus());
        } else {
            resp = errorResponse(
                op, "unknown op '" + op +
                        "' (expected ping/submit/status/result/"
                        "cancel/stats/metrics)");
        }
        if (!conn->chan.writeLine(resp.dump(0)))
            break;
    }
    conn->done.store(true, std::memory_order_release);
}

json::Value
Server::handlePing() const
{
    json::Value o{json::Members{}};
    o.set("ok", true);
    o.set("op", "ping");
    o.set("schema", kProtocolSchema);
    o.set("job_schema", kJobSchema);
    o.set("threads", pool_->size());
    return o;
}

json::Value
Server::handleSubmit(const json::Value &req)
{
    if (!req.has("job"))
        return errorResponse("submit", "missing member 'job'");
    JobSpec spec;
    try {
        ScopedErrorCapture capture;
        spec = jobSpecFromJson(req.at("job"));
    } catch (const std::exception &e) {
        return errorResponse("submit", e.what());
    }
    const std::string id = jobKey(spec);

    std::shared_ptr<Job> job;
    bool fresh = false;
    {
        std::lock_guard lock(mu_);
        const auto it = jobs_.find(id);
        if (it != jobs_.end() &&
            it->second->state != JobState::Cancelled) {
            job = it->second;
            if (job->state == JobState::Done)
                ++memo_hits_;
        } else {
            if (draining_) {
                return errorResponse("submit",
                                     "server is draining");
            }
            // Disk lookup before admission control: a cache hit
            // consumes no queue slot and no worker.
            if (auto bytes = cache_.get(id)) {
                job = std::make_shared<Job>();
                job->id = id;
                job->spec = std::move(spec);
                job->state = JobState::Done;
                job->cached = true;
                job->run_ok = true;
                job->record = std::move(*bytes);
                jobs_[id] = job;
            } else {
                if (queued_ >= opt_.queue_depth) {
                    return errorResponse(
                        "submit",
                        "queue full (depth " +
                            std::to_string(opt_.queue_depth) +
                            "); drain a result and retry",
                        /*retriable=*/true);
                }
                job = std::make_shared<Job>();
                job->id = id;
                job->spec = std::move(spec);
                jobs_[id] = job;
                ++queued_;
                ++submitted_;
                fresh = true;
            }
        }
    }
    if (fresh) {
        pool_->submit([this, job] { executeJob(job); });
        cv_.notify_all();
    }

    std::lock_guard lock(mu_);
    json::Value o{json::Members{}};
    o.set("ok", true);
    o.set("op", "submit");
    o.set("id", id);
    o.set("state", jobStateName(job->state));
    o.set("cached", job->state == JobState::Done);
    return o;
}

void
Server::executeJob(const std::shared_ptr<Job> &job)
{
    {
        std::lock_guard lock(mu_);
        if (job->state != JobState::Queued)
            return;  // cancelled while waiting
        job->state = JobState::Running;
        --queued_;
        ++running_;
    }
    cv_.notify_all();
    if (!opt_.quiet) {
        inform("carve-served: run %s (%s/%s/%llu)",
               job->id.c_str(), job->spec.preset.c_str(),
               job->spec.workload.name.c_str(),
               static_cast<unsigned long long>(job->spec.seed));
    }

    const harness::RunResult res = runIsolated(job->spec);
    const std::string record = harness::resultToJson(res).dump(0);
    {
        std::lock_guard lock(mu_);
        job->record = record;
        job->wall_seconds = res.wall_seconds;
        job->run_ok = res.ok();
        job->state = JobState::Done;
        --running_;
        ++completed_;
        if (!res.ok())
            ++failed_runs_;
        job_latency_us_.sample(
            static_cast<std::uint64_t>(res.wall_seconds * 1e6));
    }
    cv_.notify_all();
    // Only clean completions persist: a watchdog or failure record
    // depends on limits/bugs, not just the spec, so re-running it
    // later (longer watchdog, fixed simulator) must stay possible.
    if (res.ok())
        cache_.put(job->id, record);
}

harness::RunResult
Server::runIsolated(const JobSpec &spec)
{
    try {
        // executeRun() captures panics during simulation; this outer
        // capture additionally covers spec realization (unknown
        // preset name, inconsistent config).
        ScopedErrorCapture capture;
        harness::RunSpec rs;
        rs.preset = harness::parsePresetName(spec.preset);
        rs.workload = spec.workload;
        rs.base = spec.config;
        rs.opts.seed = spec.seed;
        rs.opts.max_cycles = spec.max_cycles;
        rs.opts.max_wall_seconds = spec.max_wall_seconds;
        rs.opts.profile_lines = spec.profile_lines;
        rs.opts.audit = spec.audit;
        rs.host_stats = spec.host_stats;
        return harness::executeRun(rs);
    } catch (const std::exception &e) {
        harness::RunResult r;
        r.preset = spec.preset;
        r.workload = spec.workload.name;
        r.seed = spec.seed;
        r.status = harness::RunStatus::Failed;
        r.error = e.what();
        return r;
    }
}

json::Value
Server::handleStatus(const json::Value &req)
{
    const std::string id = requestId(req);
    std::lock_guard lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return errorResponse("status", "unknown job '" + id + "'");
    json::Value o{json::Members{}};
    o.set("ok", true);
    o.set("op", "status");
    o.set("id", id);
    o.set("state", jobStateName(it->second->state));
    o.set("queued", static_cast<std::uint64_t>(queued_));
    o.set("running", static_cast<std::uint64_t>(running_));
    return o;
}

json::Value
Server::handleResult(const json::Value &req, Conn *conn)
{
    const std::string id = requestId(req);
    const bool wait =
        req.at("wait").kind() == json::Value::Kind::Bool &&
        req.at("wait").asBool();
    const bool events =
        req.at("events").kind() == json::Value::Kind::Bool &&
        req.at("events").asBool();

    std::shared_ptr<Job> job;
    {
        std::unique_lock lock(mu_);
        const auto it = jobs_.find(id);
        if (it == jobs_.end()) {
            return errorResponse("result",
                                 "unknown job '" + id + "'");
        }
        job = it->second;

        JobState reported = job->state;
        bool report_initial = events;
        while (true) {
            if (report_initial || job->state != reported) {
                reported = job->state;
                report_initial = false;
                if (events) {
                    // Streamed progress: one event line per state,
                    // written without the registry lock so a slow
                    // client cannot stall the whole server.
                    json::Value ev{json::Members{}};
                    ev.set("event", "state");
                    ev.set("id", id);
                    ev.set("state", jobStateName(reported));
                    lock.unlock();
                    const bool alive =
                        conn->chan.writeLine(ev.dump(0));
                    lock.lock();
                    if (!alive) {
                        return errorResponse("result",
                                             "client went away");
                    }
                    // State may have moved while unlocked; loop
                    // re-reads it before deciding to sleep.
                    continue;
                }
            }
            if (terminal(job->state) || !wait)
                break;
            cv_.wait(lock);
        }
    }

    std::lock_guard lock(mu_);
    if (job->state == JobState::Cancelled) {
        json::Value o = errorResponse("result", "job was cancelled");
        o.set("id", id);
        o.set("state", jobStateName(job->state));
        return o;
    }
    json::Value o{json::Members{}};
    o.set("ok", true);
    o.set("op", "result");
    o.set("id", id);
    o.set("state", jobStateName(job->state));
    if (job->state == JobState::Done) {
        o.set("cached", job->cached);
        o.set("wall_seconds", job->wall_seconds);
        // Embed the stored record verbatim (parse of our own dump is
        // lossless, so the client sees byte-identical record dumps
        // for cached and fresh results). A corrupted on-disk cache
        // entry must fail this one request, not the daemon.
        try {
            ScopedErrorCapture capture;
            o.set("run", json::parse(job->record, "stored record"));
        } catch (const std::exception &e) {
            json::Value err = errorResponse(
                "result",
                std::string("stored record unreadable: ") + e.what());
            err.set("id", id);
            return err;
        }
    }
    return o;
}

json::Value
Server::handleCancel(const json::Value &req)
{
    const std::string id = requestId(req);
    std::lock_guard lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return errorResponse("cancel", "unknown job '" + id + "'");
    Job &job = *it->second;
    bool cancelled = false;
    if (job.state == JobState::Queued) {
        job.state = JobState::Cancelled;
        --queued_;
        ++cancelled_;
        cancelled = true;
        cv_.notify_all();
    }
    json::Value o{json::Members{}};
    o.set("ok", true);
    o.set("op", "cancel");
    o.set("id", id);
    o.set("state", jobStateName(job.state));
    o.set("cancelled", cancelled);
    return o;
}

Server::MetricsSnapshot
Server::snapshotMetrics() const
{
    MetricsSnapshot s;
    s.cache = cache_.stats();
    s.cache_enabled = cache_.enabled();
    s.uptime_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start_time_)
            .count();
    std::lock_guard lock(mu_);
    s.threads = pool_->size();
    s.queue_depth = opt_.queue_depth;
    s.connections = connections_;
    s.queued = queued_;
    s.running = running_;
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed_runs = failed_runs_;
    s.cancelled = cancelled_;
    s.memo_hits = memo_hits_;
    s.draining = draining_;
    s.job_latency_us = job_latency_us_;
    return s;
}

json::Value
Server::statsJson() const
{
    const MetricsSnapshot s = snapshotMetrics();
    json::Value o{json::Members{}};
    o.set("ok", true);
    o.set("op", "stats");
    o.set("schema", kProtocolSchema);
    o.set("threads", s.threads);
    o.set("uptime_seconds", s.uptime_seconds);
    o.set("draining", s.draining);
    o.set("queue_depth", s.queue_depth);
    o.set("connections", s.connections);
    o.set("queued", s.queued);
    o.set("running", s.running);
    o.set("submitted", s.submitted);
    o.set("completed", s.completed);
    o.set("failed_runs", s.failed_runs);
    o.set("cancelled", s.cancelled);
    o.set("memo_hits", s.memo_hits);
    json::Value c{json::Members{}};
    c.set("enabled", s.cache_enabled);
    c.set("hits", s.cache.hits);
    c.set("misses", s.cache.misses);
    c.set("stores", s.cache.stores);
    c.set("evictions", s.cache.evictions);
    c.set("bytes", s.cache.bytes);
    c.set("entries", s.cache.entries);
    o.set("cache", std::move(c));
    json::Value lat{json::Members{}};
    lat.set("count", s.job_latency_us.count());
    lat.set("max_us", s.job_latency_us.max());
    lat.set("p50_us", s.job_latency_us.percentile(50));
    lat.set("p95_us", s.job_latency_us.percentile(95));
    lat.set("p99_us", s.job_latency_us.percentile(99));
    lat.set("sum_us", s.job_latency_us.sum());
    o.set("job_latency", std::move(lat));
    return o;
}

std::string
Server::metricsPrometheus() const
{
    using telemetry::appendPrometheusHistogram;
    using telemetry::appendPrometheusValue;
    const MetricsSnapshot s = snapshotMetrics();

    std::string out;
    out.reserve(4096);
    appendPrometheusValue(out, "carve_uptime_seconds",
                          "Seconds since the daemon started.",
                          "gauge", s.uptime_seconds);
    appendPrometheusValue(out, "carve_worker_threads",
                          "Simulation worker threads.", "gauge",
                          static_cast<double>(s.threads));
    appendPrometheusValue(out, "carve_queue_depth_limit",
                          "Queued jobs admitted before submits "
                          "bounce.",
                          "gauge",
                          static_cast<double>(s.queue_depth));
    appendPrometheusValue(out, "carve_draining",
                          "1 while a graceful drain is in "
                          "progress.",
                          "gauge", s.draining ? 1.0 : 0.0);
    appendPrometheusValue(out, "carve_jobs_queued",
                          "Jobs waiting for a worker.", "gauge",
                          static_cast<double>(s.queued));
    appendPrometheusValue(out, "carve_jobs_in_flight",
                          "Jobs executing right now.", "gauge",
                          static_cast<double>(s.running));
    appendPrometheusValue(out, "carve_connections_total",
                          "Client connections accepted.", "counter",
                          static_cast<double>(s.connections));
    appendPrometheusValue(out, "carve_jobs_submitted_total",
                          "Jobs admitted to the queue.", "counter",
                          static_cast<double>(s.submitted));
    appendPrometheusValue(out, "carve_jobs_completed_total",
                          "Jobs that ran to a record.", "counter",
                          static_cast<double>(s.completed));
    appendPrometheusValue(out, "carve_jobs_failed_total",
                          "Completed jobs whose run did not finish "
                          "ok.",
                          "counter",
                          static_cast<double>(s.failed_runs));
    appendPrometheusValue(out, "carve_jobs_cancelled_total",
                          "Jobs cancelled while queued.", "counter",
                          static_cast<double>(s.cancelled));
    appendPrometheusValue(out, "carve_memo_hits_total",
                          "Submits answered by the in-memory job "
                          "registry.",
                          "counter",
                          static_cast<double>(s.memo_hits));
    appendPrometheusValue(out, "carve_cache_enabled",
                          "1 when the on-disk result cache is "
                          "active.",
                          "gauge", s.cache_enabled ? 1.0 : 0.0);
    appendPrometheusValue(out, "carve_cache_hits_total",
                          "Disk-cache lookups that found a record.",
                          "counter",
                          static_cast<double>(s.cache.hits));
    appendPrometheusValue(out, "carve_cache_misses_total",
                          "Disk-cache lookups that found nothing.",
                          "counter",
                          static_cast<double>(s.cache.misses));
    appendPrometheusValue(out, "carve_cache_stores_total",
                          "Records persisted to the disk cache.",
                          "counter",
                          static_cast<double>(s.cache.stores));
    appendPrometheusValue(out, "carve_cache_evictions_total",
                          "Records evicted to stay within the byte "
                          "budget.",
                          "counter",
                          static_cast<double>(s.cache.evictions));
    appendPrometheusValue(out, "carve_cache_bytes",
                          "Bytes resident in the disk cache.",
                          "gauge",
                          static_cast<double>(s.cache.bytes));
    appendPrometheusValue(out, "carve_cache_entries",
                          "Records resident in the disk cache.",
                          "gauge",
                          static_cast<double>(s.cache.entries));
    appendPrometheusHistogram(out, "carve_job_latency_seconds",
                              "Wall time of completed simulation "
                              "runs.",
                              s.job_latency_us, 1e-6);
    return out;
}

} // namespace service
} // namespace carve
