#include "service/result_cache.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "service/job_key.hh"

namespace fs = std::filesystem;

namespace carve {
namespace service {

ResultCache::ResultCache(std::string dir, std::uint64_t byte_budget)
    : dir_(std::move(dir)), budget_(byte_budget)
{
    if (dir_.empty())
        return;
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        fatal("result cache: cannot create directory '%s': %s",
              dir_.c_str(), ec.message().c_str());
    }

    // Adopt existing entries, oldest mtime == least recently used.
    struct Found
    {
        std::string key;
        std::uint64_t bytes;
        fs::file_time_type mtime;
    };
    std::vector<Found> found;
    for (const auto &de : fs::directory_iterator(dir_, ec)) {
        if (ec)
            break;
        if (!de.is_regular_file(ec))
            continue;
        const fs::path &p = de.path();
        if (p.extension() != ".json")
            continue;
        const std::string key = p.stem().string();
        if (!isJobKey(key))
            continue;  // foreign file; leave it alone
        std::error_code fec;
        const std::uint64_t sz = de.file_size(fec);
        const auto mt = fs::last_write_time(p, fec);
        if (fec)
            continue;
        found.push_back({key, sz, mt});
    }
    std::sort(found.begin(), found.end(),
              [](const Found &a, const Found &b) {
                  return a.mtime < b.mtime;
              });
    for (const Found &f : found) {
        entries_[f.key] = Entry{f.bytes, ++clock_};
        bytes_ += f.bytes;
    }
    // An adopted directory may exceed a newly shrunk budget.
    std::lock_guard lock(mu_);
    evictLocked(std::string());
}

std::string
ResultCache::path(const std::string &key) const
{
    return dir_ + "/" + key + ".json";
}

std::optional<std::string>
ResultCache::get(const std::string &key)
{
    if (!enabled())
        return std::nullopt;
    std::lock_guard lock(mu_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        return std::nullopt;
    }
    std::ifstream is(path(key), std::ios::binary);
    if (!is) {
        // Entry vanished underneath us (manual delete); forget it.
        bytes_ -= it->second.bytes;
        entries_.erase(it);
        ++misses_;
        return std::nullopt;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    it->second.last_use = ++clock_;
    ++hits_;
    return ss.str();
}

void
ResultCache::put(const std::string &key,
                 const std::string &record_json)
{
    if (!enabled())
        return;
    std::lock_guard lock(mu_);

    // Temp-write + rename: readers (and crash recovery) only ever
    // see complete records.
    const std::string tmp = path(key) + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os || !(os << record_json).good()) {
            warn("result cache: write to '%s' failed; entry dropped",
                 tmp.c_str());
            std::error_code ec;
            fs::remove(tmp, ec);
            return;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path(key), ec);
    if (ec) {
        warn("result cache: rename into '%s' failed: %s",
             path(key).c_str(), ec.message().c_str());
        fs::remove(tmp, ec);
        return;
    }

    const auto it = entries_.find(key);
    if (it != entries_.end())
        bytes_ -= it->second.bytes;
    entries_[key] = Entry{record_json.size(), ++clock_};
    bytes_ += record_json.size();
    ++stores_;
    evictLocked(key);
}

void
ResultCache::evictLocked(const std::string &keep)
{
    if (budget_ == 0)
        return;
    while (bytes_ > budget_ && entries_.size() > (keep.empty() ? 0 : 1)) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->first == keep)
                continue;
            if (victim == entries_.end() ||
                it->second.last_use < victim->second.last_use) {
                victim = it;
            }
        }
        if (victim == entries_.end())
            return;
        std::error_code ec;
        fs::remove(path(victim->first), ec);
        bytes_ -= victim->second.bytes;
        entries_.erase(victim);
        ++evictions_;
    }
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard lock(mu_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.stores = stores_;
    s.evictions = evictions_;
    s.bytes = bytes_;
    s.entries = entries_.size();
    return s;
}

} // namespace service
} // namespace carve
