/**
 * @file
 * Thin client for the carve-served protocol: one connection, blocking
 * request/response calls, optional consumption of streamed progress
 * events. Used by carve-sweep --server and the service tests; the
 * protocol itself is documented in protocol.hh.
 */

#ifndef CARVE_SERVICE_CLIENT_HH
#define CARVE_SERVICE_CLIENT_HH

#include <functional>
#include <optional>
#include <string>

#include "harness/run_spec.hh"
#include "service/protocol.hh"

namespace carve {
namespace service {

/** Outcome of a submit call. */
struct SubmitReply
{
    bool ok = false;
    /** Rejected with "retriable" (queue full): drain and resubmit. */
    bool retriable = false;
    std::string error;
    std::string id;        ///< content-addressed job key
    std::string state;     ///< job state at submission time
    bool cached = false;   ///< record already available, no new run
};

/** Outcome of a result call. */
struct ResultReply
{
    bool ok = false;
    std::string error;
    std::string state;
    bool cached = false;
    /** Server-side execution time (0 for cache hits). */
    double wall_seconds = 0.0;
    /** Present when state == "done": the run record, dump(0) bytes
     * (byte-identical for cached and fresh results). */
    std::string record_json;
    /** Parsed form of record_json. */
    harness::RunResult run;
};

class Client
{
  public:
    /** (event name, job id, job state) for each streamed event. */
    using EventFn = std::function<void(const std::string &,
                                       const std::string &,
                                       const std::string &)>;

    /**
     * Connect to @p socket_path and validate the protocol schema via
     * ping. nullopt (with a warn()) when the server is unreachable
     * or speaks a different protocol version.
     */
    static std::optional<Client> connect(const std::string &socket_path);

    /** Submit one job. */
    SubmitReply submit(const JobSpec &spec);

    /**
     * Fetch the record of @p id, blocking until it is terminal.
     * Progress events stream into @p on_event (may be empty).
     */
    ResultReply result(const std::string &id, EventFn on_event = {});

    /** Cancel @p id; true when the job was still queued. */
    bool cancel(const std::string &id);

    /** The server's "stats" payload. */
    json::Value stats();

    /** The server's "metrics" payload: a Prometheus text-exposition
     * dump of every live counter. Empty string on failure. */
    std::string metrics();

    /** Raw request/response (events skipped); null Value on I/O loss. */
    json::Value request(const json::Value &req, EventFn on_event = {});

    unsigned serverThreads() const { return server_threads_; }

  private:
    explicit Client(LineChannel chan) : chan_(std::move(chan)) {}

    LineChannel chan_;
    unsigned server_threads_ = 0;
};

/** Build the JobSpec equivalent of a harness RunSpec. */
JobSpec jobFromRunSpec(const harness::RunSpec &spec);

} // namespace service
} // namespace carve

#endif // CARVE_SERVICE_CLIENT_HH
