/**
 * @file
 * carve-served server loop: a persistent simulation service over a
 * unix-domain socket.
 *
 * One Server owns:
 *  - a listening socket accepting NDJSON protocol connections (one
 *    handler thread per connection, see protocol.hh);
 *  - a job registry keyed by content-addressed job key: submitting a
 *    job that is already queued, running, or done attaches to the
 *    existing entry instead of simulating again (in-memory
 *    memoization for the daemon's lifetime);
 *  - the harness ThreadPool executing jobs through executeRun(), so
 *    server runs get the same per-run panic/fatal/watchdog isolation
 *    as carve-sweep;
 *  - a ResultCache persisting completed Ok records on disk, so a
 *    restarted daemon still answers repeats without re-simulating.
 *
 * Backpressure: submissions beyond Options::queue_depth queued jobs
 * are rejected with a retriable "queue full" error — the client is
 * expected to drain a result and resubmit.
 *
 * Shutdown: requestDrain() (async-signal-safe, call it from a
 * SIGTERM/SIGINT handler) stops accepting work, lets every queued
 * and running job finish, answers all waiting clients, then returns
 * from serve().
 */

#ifndef CARVE_SERVICE_SERVER_HH
#define CARVE_SERVICE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "harness/run_spec.hh"
#include "harness/thread_pool.hh"
#include "service/protocol.hh"
#include "service/result_cache.hh"
#include "telemetry/histogram.hh"

namespace carve {
namespace service {

/** Lifecycle of one registered job. */
enum class JobState : std::uint8_t {
    Queued,     ///< accepted, waiting for a worker
    Running,    ///< executing on the pool
    Done,       ///< record available (any RunStatus, incl. failed)
    Cancelled,  ///< cancelled while queued; never ran
};

/** Display name ("queued", "running", "done", "cancelled"). */
const char *jobStateName(JobState s);

class Server
{
  public:
    struct Options
    {
        std::string socket_path = "carve-served.sock";
        /** Worker threads; 0 == all hardware threads. */
        unsigned threads = 0;
        /** Result-cache directory; empty disables the disk cache
         * (in-memory memoization still applies). */
        std::string cache_dir = "carve-cache";
        /** Cache byte budget (LRU eviction); 0 == unlimited. */
        std::uint64_t cache_budget = 512ull * 1024 * 1024;
        /** Max jobs waiting for a worker before submits bounce. */
        std::size_t queue_depth = 1024;
        /** Suppress per-job inform() lines. */
        bool quiet = false;
    };

    explicit Server(const Options &opt);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the socket (fatal on failure) and serve until drained.
     * Returns once every accepted job has finished and every
     * connection is closed; the socket file is removed.
     */
    void serve();

    /** Request a graceful drain. Async-signal-safe. */
    void requestDrain();

    /** Aggregate counters (the "stats" endpoint's payload). */
    json::Value statsJson() const;

    /**
     * The "metrics" endpoint's payload: every live counter and gauge
     * of the daemon rendered in Prometheus text exposition format
     * (carve_* families), including the job-latency histogram.
     * Reads the same snapshot as statsJson().
     */
    std::string metricsPrometheus() const;

  private:
    struct Job
    {
        std::string id;
        JobSpec spec;
        JobState state = JobState::Queued;
        /** Served without simulating (registry or disk). */
        bool cached = false;
        /** resultToJson().dump(0) of the finished run. */
        std::string record;
        double wall_seconds = 0.0;
        bool run_ok = false;
    };

    struct Conn
    {
        LineChannel chan;
        std::jthread th;
        std::atomic<bool> done{false};
    };

    /** One consistent read of every counter the two reporting
     * endpoints ("stats" JSON, "metrics" Prometheus text) expose;
     * taken under the registry lock so queue/running/latency figures
     * are mutually consistent. */
    struct MetricsSnapshot
    {
        double uptime_seconds = 0.0;
        unsigned threads = 0;
        std::uint64_t queue_depth = 0;
        std::uint64_t connections = 0;
        std::uint64_t queued = 0;
        std::uint64_t running = 0;
        std::uint64_t submitted = 0;
        std::uint64_t completed = 0;
        std::uint64_t failed_runs = 0;
        std::uint64_t cancelled = 0;
        std::uint64_t memo_hits = 0;
        bool draining = false;
        bool cache_enabled = false;
        ResultCache::Stats cache;
        telemetry::Histogram job_latency_us;
    };
    MetricsSnapshot snapshotMetrics() const;

    void connectionLoop(Conn *conn);
    void executeJob(const std::shared_ptr<Job> &job);
    harness::RunResult runIsolated(const JobSpec &spec);
    void pruneConnections();

    json::Value handlePing() const;
    json::Value handleSubmit(const json::Value &req);
    json::Value handleStatus(const json::Value &req);
    json::Value handleResult(const json::Value &req, Conn *conn);
    json::Value handleCancel(const json::Value &req);

    const Options opt_;
    ResultCache cache_;
    std::unique_ptr<harness::ThreadPool> pool_;
    /** Daemon start, for the uptime gauge. */
    const std::chrono::steady_clock::time_point start_time_ =
        std::chrono::steady_clock::now();

    int listen_fd_ = -1;
    int drain_pipe_[2] = {-1, -1};  ///< [read, write]

    mutable std::mutex mu_;
    std::condition_variable cv_;  ///< job state transitions
    bool draining_ = false;
    std::unordered_map<std::string, std::shared_ptr<Job>> jobs_;
    std::size_t queued_ = 0;
    std::size_t running_ = 0;
    std::uint64_t submitted_ = 0;   ///< jobs that entered the queue
    std::uint64_t completed_ = 0;   ///< jobs that ran to a record
    std::uint64_t failed_runs_ = 0; ///< completed with status != ok
    std::uint64_t cancelled_ = 0;
    std::uint64_t memo_hits_ = 0;   ///< submits served by the registry
    std::uint64_t connections_ = 0;
    /** Wall time of completed runs, in microseconds (cache and memo
     * hits excluded: they cost no simulation). */
    telemetry::Histogram job_latency_us_;

    std::list<Conn> conns_;
};

} // namespace service
} // namespace carve

#endif // CARVE_SERVICE_SERVER_HH
