/**
 * @file
 * Wire protocol of the carve-served sweep service.
 *
 * Transport: a SOCK_STREAM AF_UNIX socket carrying newline-delimited
 * JSON — every request, response, and streamed event is exactly one
 * '\n'-terminated line holding one JSON object. Requests carry an
 * "op" member ("ping", "submit", "status", "result", "cancel",
 * "stats"); responses answer with "ok" plus op-specific members;
 * server-pushed progress lines carry an "event" member instead of
 * "ok" and may precede the response to a blocking "result" request.
 *
 * A JobSpec is the protocol's unit of work: one fully-described
 * simulation (preset, complete workload description, complete system
 * configuration as override key/values, run options, seed). Its
 * canonical JSON form — fixed member order, configuration keys sorted
 * — is also the preimage of the content-addressed job key
 * (see job_key.hh), so two JobSpecs that describe the same simulation
 * always serialize to identical bytes.
 */

#ifndef CARVE_SERVICE_PROTOCOL_HH
#define CARVE_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "common/config.hh"
#include "harness/json.hh"
#include "workloads/synthetic.hh"

namespace carve {
namespace service {

/** Protocol identifier exchanged in ping; bump on breaking change. */
inline constexpr const char *kProtocolSchema = "carve-served/1";

/**
 * Job-description schema version. Part of the cache-key preimage:
 * bump it whenever simulation semantics change in a way that makes
 * previously cached results stale (stat additions are fine — they
 * change the result bytes, which invalidates byte-compare workflows,
 * not the mapping from spec to behaviour). /2: the per-GPU
 * event-domain engine re-timed every simulation, and the config dump
 * grew the engine/sim_threads keys (identical results either way, so
 * both serialize into one cache entry per simulation).
 */
inline constexpr const char *kJobSchema = "carve-job/2";

/** One fully-described simulation request. */
struct JobSpec
{
    /** Preset label (exact presetName() form, e.g. "CARVE-HWC"). */
    std::string preset;
    /** Complete workload description (regions included) — the server
     * never consults the suite tables, so client and server need not
     * agree on them. */
    WorkloadParams workload;
    /** Base configuration the preset derives from, transmitted as the
     * full override-registry dump (56 keys, engine/sim_threads
     * included), so the spec is self-contained. */
    SystemConfig config;

    /** Run options (the subset that affects results or result bytes). */
    std::uint64_t seed = 1;
    std::uint64_t max_cycles = 0;
    double max_wall_seconds = 0.0;
    bool profile_lines = false;
    bool audit = false;
    /** Append host wall/RSS stats to the stat tree (nondeterministic;
     * off for byte-reproducible results). Part of the cache key since
     * it changes the result bytes. */
    bool host_stats = true;
};

/**
 * Canonical JSON form of a JobSpec: fixed member order, configuration
 * serialized via SystemConfig::canonicalOverrides() (sorted by key).
 * Deterministic: equal specs produce identical dump(0) bytes
 * regardless of how their configs were built.
 */
json::Value jobSpecToJson(const JobSpec &spec);

/**
 * Inverse of jobSpecToJson(). fatal() (capturable) on missing or
 * ill-typed members and on unknown config/region keys.
 */
JobSpec jobSpecFromJson(const json::Value &v);

/** Build the uniform failure response {"ok":false,"error":...}. */
json::Value errorResponse(const std::string &op,
                          const std::string &error,
                          bool retriable = false);

/**
 * Newline-delimited message framing over a connected socket fd (owns
 * and closes the fd). Reads are buffered; writes are atomic per line
 * and suppress SIGPIPE so a vanished peer surfaces as an error
 * return, never a signal.
 */
class LineChannel
{
  public:
    /** Takes ownership of @p fd (-1 == empty channel). */
    explicit LineChannel(int fd = -1) : fd_(fd) {}
    ~LineChannel();

    LineChannel(LineChannel &&other) noexcept;
    LineChannel &operator=(LineChannel &&other) noexcept;
    LineChannel(const LineChannel &) = delete;
    LineChannel &operator=(const LineChannel &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /**
     * Read one '\n'-terminated line into @p out (terminator
     * stripped). Returns false on orderly EOF or error; a partial
     * line at EOF is discarded.
     */
    bool readLine(std::string &out);

    /** Write @p line plus '\n'. Returns false when the peer is gone. */
    bool writeLine(const std::string &line);

    /** shutdown(2) both directions to unblock a reader; keeps fd. */
    void shutdownBoth();

    /** Close the fd now (also done by the destructor). */
    void close();

  private:
    int fd_ = -1;
    std::string buf_;  ///< bytes received beyond the last line
};

/** Connect to the unix socket at @p path; empty channel on failure
 * (errno preserved for the caller's diagnostic). */
LineChannel connectUnix(const std::string &path);

/** Create, bind and listen on @p path (unlinking any stale socket
 * file first). Returns the listening fd, or -1 with errno set. */
int listenUnix(const std::string &path, int backlog);

} // namespace service
} // namespace carve

#endif // CARVE_SERVICE_PROTOCOL_HH
