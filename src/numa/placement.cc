#include "numa/placement.hh"

namespace carve {

Placement::Placement(const NumaConfig &cfg, unsigned num_gpus,
                     std::uint64_t seed)
    : cfg_(cfg), num_gpus_(num_gpus), seed_(seed)
{
}

double
Placement::pageHash(Addr vpage) const
{
    std::uint64_t z = vpage ^ seed_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
}

NodeId
Placement::firstTouch(Addr vpage, NodeId toucher)
{
    // Capacity-loss model: a deterministic pseudo-random subset of
    // pages lives in CPU system memory under Unified Memory.
    if (cfg_.spill_fraction > 0.0 &&
        pageHash(vpage) < cfg_.spill_fraction) {
        return cpu_node;
    }

    switch (cfg_.placement) {
      case PlacementPolicy::FirstTouch:
        return toucher;
      case PlacementPolicy::RoundRobin: {
        const NodeId home = next_rr_;
        next_rr_ = (next_rr_ + 1) % num_gpus_;
        return home;
      }
      case PlacementPolicy::LocalOnly:
        return toucher;
    }
    return toucher;
}

} // namespace carve
