/**
 * @file
 * First-touch / round-robin page placement, plus the deterministic
 * "spill" assignment that models CARVE's GPU-memory capacity loss by
 * pushing a configured fraction of pages into CPU system memory
 * (Section V-C / Table V(b) of the paper).
 */

#ifndef CARVE_NUMA_PLACEMENT_HH
#define CARVE_NUMA_PLACEMENT_HH

#include "common/config.hh"
#include "common/types.hh"

namespace carve {

/** Decides the home node of a page on its first access. */
class Placement
{
  public:
    /**
     * @param cfg placement policy and spill fraction
     * @param num_gpus GPU node count
     * @param seed spill-hash seed
     */
    Placement(const NumaConfig &cfg, unsigned num_gpus,
              std::uint64_t seed);

    /**
     * Home node for page @p vpage first touched by @p toucher.
     * May return cpu_node when the page spills to system memory.
     */
    NodeId firstTouch(Addr vpage, NodeId toucher);

    /**
     * Pure preview of firstTouch(): the home this page would get if
     * @p toucher commits its first touch. Exact for every policy
     * except RoundRobin (whose cursor only advances at the real
     * firstTouch()), where the toucher stands in until commit.
     */
    NodeId
    tentativeHome(Addr vpage, NodeId toucher) const
    {
        if (cfg_.spill_fraction > 0.0 &&
            pageHash(vpage) < cfg_.spill_fraction) {
            return cpu_node;
        }
        return toucher;
    }

  private:
    /** Deterministic uniform hash of a page address into [0,1). */
    double pageHash(Addr vpage) const;

    const NumaConfig &cfg_;
    unsigned num_gpus_;
    std::uint64_t seed_;
    NodeId next_rr_ = 0;
};

} // namespace carve

#endif // CARVE_NUMA_PLACEMENT_HH
