#include "numa/unified_memory.hh"

#include "common/logging.hh"

namespace carve {

UnifiedMemory::UnifiedMemory(const NumaConfig &cfg, PageTable &table)
    : cfg_(cfg), table_(table)
{
}

bool
UnifiedMemory::onAccess(PageEntry &page, NodeId node)
{
    carve_assert(page.home == cpu_node);
    ++page.cpu_accesses;
    if (page.cpu_accesses < cfg_.um_migration_threshold)
        return false;
    if (!table_.hasFreeFrame(node))
        return false;  // GPU memory full: the page stays spilled

    page.home = node;
    page.cpu_accesses = 0;
    table_.addHomedPage(node);
    ++migrations_;
    return true;
}

} // namespace carve
