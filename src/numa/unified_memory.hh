/**
 * @file
 * Unified-Memory engine: pages resident in CPU system memory are
 * serviced over the 32 GB/s CPU link; pages that prove hot are
 * migrated into the accessing GPU's memory, NVIDIA UM style. Models
 * the paper's Section V-C claim that a small carve-out's capacity
 * loss is tolerable because only the cold end of the footprint spills.
 */

#ifndef CARVE_NUMA_UNIFIED_MEMORY_HH
#define CARVE_NUMA_UNIFIED_MEMORY_HH

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "numa/page_table.hh"

namespace carve {

/** Demand-migration policy for CPU-resident (spilled) pages. */
class UnifiedMemory
{
  public:
    /**
     * @param cfg UM migration threshold
     * @param table page table to operate on
     */
    UnifiedMemory(const NumaConfig &cfg, PageTable &table);

    /**
     * Record a post-LLC access by @p node to a CPU-resident page.
     * @return true when the access crossed the migration threshold
     *         and the page moved into @p node's memory (caller
     *         charges the CPU->GPU page transfer)
     */
    bool onAccess(PageEntry &page, NodeId node);

    /** Pages migrated from system memory into GPU memory. */
    std::uint64_t migrationsIn() const { return migrations_.value(); }

    /** Register this engine's counters into @p g. */
    void
    registerStats(stats::StatGroup &g)
    {
        g.addScalar("um_migrations", &migrations_,
                    "pages pulled from system memory into a GPU");
    }

  private:
    const NumaConfig &cfg_;
    PageTable &table_;
    stats::Scalar migrations_;
};

} // namespace carve

#endif // CARVE_NUMA_UNIFIED_MEMORY_HH
