/**
 * @file
 * Page migration engine (Carrefour-style): moves a page's home to a
 * remote node that dominates its access stream. Works for private
 * pages; fails for concurrently shared pages — which is exactly the
 * limitation the paper's Figure 2/13 "page migration" configuration
 * exhibits.
 */

#ifndef CARVE_NUMA_MIGRATION_HH
#define CARVE_NUMA_MIGRATION_HH

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "numa/page_table.hh"

namespace carve {

/** Decides and performs page-home changes. */
class MigrationEngine
{
  public:
    /**
     * @param cfg thresholds and stall costs
     * @param table page table to operate on
     */
    MigrationEngine(const NumaConfig &cfg, PageTable &table);

    /**
     * Consider migrating the page after a post-LLC access by @p node.
     * Policy: migrate when @p node has issued at least
     * migration_threshold accesses since the last action *and*
     * dominates all other nodes' recent accesses 4:1 (a page that is
     * genuinely shared never meets this and stays put).
     *
     * @return true when the page was migrated to @p node (the caller
     *         must charge the page transfer and TLB shootdown)
     */
    bool maybeMigrate(PageEntry &page, NodeId node);

    /** Pages migrated so far. */
    std::uint64_t migrations() const { return migrations_.value(); }

    /** Register this engine's counters into @p g. */
    void
    registerStats(stats::StatGroup &g)
    {
        g.addScalar("migrations", &migrations_,
                    "page-home changes performed");
    }

  private:
    const NumaConfig &cfg_;
    PageTable &table_;
    stats::Scalar migrations_;
};

} // namespace carve

#endif // CARVE_NUMA_MIGRATION_HH
