/**
 * @file
 * NUMA runtime facade: first-touch placement, sharing profiling,
 * page migration, read-only replication, ideal replicate-all, and
 * Unified-Memory spill handling behind two calls:
 *
 *  - recordAccess(): invoked for every post-coalescing access (the
 *    page-fault / profiling path);
 *  - route(): invoked for every post-LLC access, returns which node's
 *    memory services it plus any policy side effects the caller must
 *    charge (bulk page transfers, TLB-shootdown stalls).
 */

#ifndef CARVE_NUMA_PAGE_MANAGER_HH
#define CARVE_NUMA_PAGE_MANAGER_HH

#include <memory>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "numa/migration.hh"
#include "numa/page_table.hh"
#include "numa/placement.hh"
#include "numa/replication.hh"
#include "numa/sharing_profiler.hh"
#include "numa/unified_memory.hh"

namespace carve {

/** Routing decision plus policy side effects for one post-LLC access. */
struct Route
{
    /** Node whose memory services the access (may be cpu_node). */
    NodeId service = invalid_node;
    /** Synchronous stall the requester must absorb (shootdowns). */
    Cycle stall = 0;
    /** A page-sized bulk transfer from @ref transfer_src to the
     * requester must be charged (migration / replication / UM). */
    bool bulk_transfer = false;
    NodeId transfer_src = invalid_node;
};

/**
 * The software half of the paper's HW/SW combination.
 */
class PageManager
{
  public:
    /**
     * @param cfg system configuration (NUMA policies, geometry)
     * @param track_pages profile sharing at page granularity
     * @param track_lines profile sharing at line granularity
     */
    explicit PageManager(const SystemConfig &cfg,
                         bool track_pages = true,
                         bool track_lines = true);

    /**
     * First-touch mapping + sharing profiling for one access.
     * Must precede route() for the same address.
     */
    void recordAccess(Addr addr, NodeId node, AccessType type);

    /** Routing + policy actions for one post-LLC access. */
    Route route(Addr addr, NodeId node, AccessType type);

    /** True when @p node holds the page containing @p addr (home or
     * replica) — i.e. the access would be serviced locally. */
    bool isLocal(Addr addr, NodeId node) const;

    /** Home node of the page containing @p addr (invalid_node when
     * unmapped). */
    NodeId homeOf(Addr addr) const;

    PageTable &table() { return table_; }
    const PageTable &table() const { return table_; }
    SharingProfiler &profiler() { return profiler_; }
    const SharingProfiler &profiler() const { return profiler_; }
    const MigrationEngine &migration() const { return migration_; }
    const ReplicationManager &replication() const
    {
        return replication_;
    }
    const UnifiedMemory &unifiedMemory() const { return um_; }

    /** First-touch placements performed. */
    std::uint64_t firstTouches() const { return first_touches_.value(); }

    /** Register NUMA runtime counters (first touches, migration,
     * replication, UM, capacity pressure) plus an owned "sharing"
     * child group for the profiler into @p g. */
    void registerStats(stats::StatGroup &g);

  private:
    const SystemConfig &cfg_;
    PageTable table_;
    Placement placement_;
    SharingProfiler profiler_;
    MigrationEngine migration_;
    ReplicationManager replication_;
    UnifiedMemory um_;
    std::unique_ptr<stats::StatGroup> sharing_group_;

    stats::Scalar first_touches_;
};

} // namespace carve

#endif // CARVE_NUMA_PAGE_MANAGER_HH
