/**
 * @file
 * NUMA runtime facade: first-touch placement, sharing profiling,
 * page migration, read-only replication, ideal replicate-all, and
 * Unified-Memory spill handling, restructured around the windowed
 * domain engine:
 *
 *  - recordAccess() / route() run mid-window inside the accessing
 *    GPU's event domain and touch only per-domain state (overlay maps,
 *    profiler shards, route logs) plus the *committed* page table,
 *    which is immutable between barriers — so domains never race;
 *  - commitWindow() runs single-threaded at every window barrier: it
 *    applies first touches in deterministic (tick, domain, page)
 *    order, then replays the window's route log domain-major through
 *    the policy engines (migration, replication, Unified Memory),
 *    whose state transitions take effect for the next window.
 *
 * Mid-window routing is therefore a pure function of (committed
 * table, own domain's overlay) — identical no matter how many threads
 * execute the domains, which is what makes parallel runs
 * byte-identical to serial ones.
 */

#ifndef CARVE_NUMA_PAGE_MANAGER_HH
#define CARVE_NUMA_PAGE_MANAGER_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "numa/migration.hh"
#include "numa/page_table.hh"
#include "numa/placement.hh"
#include "numa/replication.hh"
#include "numa/sharing_profiler.hh"
#include "numa/unified_memory.hh"

namespace carve {

/**
 * The software half of the paper's HW/SW combination.
 */
class PageManager
{
  public:
    /** Charge one page-sized bulk copy from @p src to @p dst (called
     * from commitWindow(), i.e. in barrier context). */
    using BulkChargeFn = std::function<void(NodeId src, NodeId dst)>;

    /**
     * @param cfg system configuration (NUMA policies, geometry)
     * @param track_pages profile sharing at page granularity
     * @param track_lines profile sharing at line granularity
     */
    explicit PageManager(const SystemConfig &cfg,
                         bool track_pages = true,
                         bool track_lines = true);

    /**
     * First-touch candidacy + sharing profiling for one access at
     * @p tick. Must precede route() for the same address from the
     * same domain. Touches only the calling domain's shard.
     */
    void recordAccess(Addr addr, NodeId node, AccessType type,
                      Cycle tick);

    /**
     * Node whose memory services a post-LLC access at @p now: the
     * committed home (or a replica / the migration-stall previous
     * home), or the calling domain's tentative first-touch home for
     * pages not yet committed. Pure w.r.t. shared state; the access
     * is appended to the calling domain's route log for policy replay
     * at the next commitWindow().
     */
    NodeId route(Addr addr, NodeId node, AccessType type, Cycle now);

    /**
     * Window barrier (single-threaded): commit first touches in
     * (first tick, domain, page) order, merge touch masks, then
     * replay the route logs through the policy engines. Policy page
     * moves set PageEntry::ready_at = @p now + migration_stall and
     * charge their bulk copies through @p charge (when non-null).
     */
    void commitWindow(Cycle now, const BulkChargeFn &charge = nullptr);

    /** Merge the per-domain profiler shards into the main profiler.
     * Call once the run quiesces, before reading sharing stats. */
    void finalizeProfile();

    /** True when @p node holds the committed page containing @p addr
     * (home or replica) — i.e. the access would be serviced locally. */
    bool isLocal(Addr addr, NodeId node) const;

    /** Committed home node of the page containing @p addr
     * (invalid_node when unmapped or uncommitted). */
    NodeId homeOf(Addr addr) const;

    PageTable &table() { return table_; }
    const PageTable &table() const { return table_; }
    SharingProfiler &profiler() { return profiler_; }
    const SharingProfiler &profiler() const { return profiler_; }
    const MigrationEngine &migration() const { return migration_; }
    const ReplicationManager &replication() const
    {
        return replication_;
    }
    const UnifiedMemory &unifiedMemory() const { return um_; }

    /** First-touch placements performed. */
    std::uint64_t firstTouches() const { return first_touches_.value(); }

    /** Register NUMA runtime counters (first touches, migration,
     * replication, UM, capacity pressure) plus an owned "sharing"
     * child group for the profiler into @p g. */
    void registerStats(stats::StatGroup &g);

  private:
    /** Per-domain view of a page first seen this window. */
    struct PendingPage
    {
        Cycle first_tick = 0;       ///< this domain's earliest access
        NodeId first_node = invalid_node;  ///< who touched it first
        NodeId tentative_home = invalid_node;
        std::uint16_t touch_mask = 0;
        bool written = false;
    };

    /** One post-LLC access awaiting policy replay. */
    struct RouteOp
    {
        Addr vpage;
        NodeId node;
        bool write;
    };

    /** Per-domain mid-window state; padded apart because adjacent
     * shards are written by different worker threads. */
    struct alignas(64) DomainShard
    {
        std::unordered_map<Addr, PendingPage> pending;
        std::vector<RouteOp> route_log;
        std::unique_ptr<SharingProfiler> profiler;
    };

    /** The calling context's shard (GPU domains 0..G-1; barrier and
     * engine-less callers share the last slot). */
    DomainShard &shard();
    const PendingPage *pendingOf(const DomainShard &s, Addr vpage) const;

    const SystemConfig &cfg_;
    PageTable table_;
    Placement placement_;
    SharingProfiler profiler_;
    MigrationEngine migration_;
    ReplicationManager replication_;
    UnifiedMemory um_;
    std::vector<DomainShard> shards_;
    std::unique_ptr<stats::StatGroup> sharing_group_;

    stats::Scalar first_touches_;
};

} // namespace carve

#endif // CARVE_NUMA_PAGE_MANAGER_HH
