/**
 * @file
 * Software page replication: the runtime copies read-only shared
 * pages into each consuming GPU's memory so future reads are local.
 * Any store to a replicated page collapses the replicas (expensive
 * TLB shootdown) and the page is never replicated again — the paper's
 * model of why read-write pages cannot be handled in software.
 *
 * The ReplicationPolicy::All mode is the paper's *ideal* upper bound:
 * every shared page is replicated at zero cost and never collapses.
 */

#ifndef CARVE_NUMA_REPLICATION_HH
#define CARVE_NUMA_REPLICATION_HH

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "numa/page_table.hh"

namespace carve {

/** Manages page replicas under the configured policy. */
class ReplicationManager
{
  public:
    /**
     * @param cfg replication policy
     * @param table page table to operate on
     */
    ReplicationManager(const NumaConfig &cfg, PageTable &table);

    /**
     * Consider replicating the page for reader @p node after a
     * post-LLC remote read.
     * @return true when a replica was created at @p node (caller
     *         charges the page transfer)
     */
    bool maybeReplicate(PageEntry &page, NodeId node);

    /**
     * Handle a store to the page by @p node: under the ReadOnly
     * policy any existing replicas collapse.
     * @return true when replicas were dropped (caller charges the
     *         shootdown stall)
     */
    bool onWrite(PageEntry &page, NodeId node);

    /** Replicas created. */
    std::uint64_t replications() const { return replications_.value(); }
    /** Collapse events. */
    std::uint64_t collapses() const { return collapses_.value(); }
    /** Replications skipped due to exhausted GPU memory capacity. */
    std::uint64_t
    capacitySkips() const
    {
        return capacity_skips_.value();
    }

    /** Register this manager's counters into @p g. */
    void
    registerStats(stats::StatGroup &g)
    {
        g.addScalar("replications", &replications_,
                    "read-only replicas created");
        g.addScalar("collapses", &collapses_,
                    "replica collapse events on writes");
        g.addScalar("capacity_skips", &capacity_skips_,
                    "replications skipped for lack of capacity");
    }

  private:
    const NumaConfig &cfg_;
    PageTable &table_;
    stats::Scalar replications_;
    stats::Scalar collapses_;
    stats::Scalar capacity_skips_;
};

} // namespace carve

#endif // CARVE_NUMA_REPLICATION_HH
