/**
 * @file
 * Global page table of the transparent multi-GPU runtime: per-page
 * home node, replica set, sharing history and per-node access counts
 * that the placement / migration / replication policies consume.
 */

#ifndef CARVE_NUMA_PAGE_TABLE_HH
#define CARVE_NUMA_PAGE_TABLE_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace carve {

/** Maximum node count supported by the bitmask fields. */
inline constexpr unsigned max_nodes = 16;

/** Runtime state of one 2 MB virtual page. */
struct PageEntry
{
    NodeId home = invalid_node;     ///< owning memory (or cpu_node)
    std::uint16_t replica_mask = 0; ///< GPUs holding a local replica
    std::uint16_t touch_mask = 0;   ///< GPUs that ever accessed it
    bool written = false;           ///< any store observed
    bool collapsed = false;         ///< replicas dropped; never again
    std::uint32_t migrations = 0;   ///< times this page moved
    /** Until this tick, accesses are serviced at @ref prev_home (a
     * migration's TLB-shootdown/remap stall is in progress). */
    Cycle ready_at = 0;
    /** Home before the in-progress move (valid while ready_at is in
     * the future). */
    NodeId prev_home = invalid_node;
    /** Post-LLC accesses per node since the last policy action. */
    std::array<std::uint32_t, max_nodes> access_counts{};
    /** Accesses while resident in CPU memory (Unified Memory). */
    std::uint32_t cpu_accesses = 0;

    /** True when @p node holds the home or a replica. */
    bool
    localAt(NodeId node) const
    {
        return home == node ||
            (replica_mask & static_cast<std::uint16_t>(1u << node));
    }
};

/**
 * Lazily-populated table over the virtual address space, plus
 * per-node physical capacity accounting (pages homed + replicas).
 */
class PageTable
{
  public:
    /** @param cfg geometry (page size, node count, capacities) */
    explicit PageTable(const SystemConfig &cfg);

    /** Page base address containing @p addr. */
    Addr
    pageOf(Addr addr) const
    {
        return addr & ~(page_size_ - 1);
    }

    /** Entry for the page containing @p addr, creating it unmapped. */
    PageEntry &entry(Addr addr);

    /** Entry if present, nullptr otherwise. */
    const PageEntry *find(Addr addr) const;

    /** Record that @p node now homes one more page. */
    void addHomedPage(NodeId node);
    /** Record that @p node dropped one homed page (migration). */
    void removeHomedPage(NodeId node);
    /** Record a replica added at @p node. */
    void addReplica(NodeId node);
    /** Record a replica dropped at @p node. */
    void removeReplica(NodeId node);

    /** Pages homed at @p node. */
    std::uint64_t homedPages(NodeId node) const;
    /** Replicas resident at @p node. */
    std::uint64_t replicaPages(NodeId node) const;

    /** Page frames that fit in @p node's OS-visible memory. */
    std::uint64_t capacityPages(NodeId node) const;

    /** True when @p node can hold one more page (home or replica). */
    bool
    hasFreeFrame(NodeId node) const
    {
        return homedPages(node) + replicaPages(node) <
            capacityPages(node);
    }

    /**
     * Memory expansion factor across all GPUs:
     * (homed + replicated) / homed. The paper reports 2.4x average
     * under unbounded replication.
     */
    double capacityPressure() const;

    std::uint64_t pageSize() const { return page_size_; }
    std::size_t mappedPages() const { return pages_.size(); }

  private:
    std::uint64_t page_size_;
    std::uint64_t capacity_pages_;
    std::unordered_map<Addr, PageEntry> pages_;
    std::vector<std::uint64_t> homed_;
    std::vector<std::uint64_t> replicas_;
};

} // namespace carve

#endif // CARVE_NUMA_PAGE_TABLE_HH
