/**
 * @file
 * Sharing profiler: classifies memory traffic as private, read-only
 * shared, or read-write shared at both OS-page (2 MB) and cacheline
 * (128 B) granularity — the analysis behind Figures 4 and 5 of the
 * paper, which show that most page-level read-write sharing is *false*
 * sharing that disappears at line granularity.
 */

#ifndef CARVE_NUMA_SHARING_PROFILER_HH
#define CARVE_NUMA_SHARING_PROFILER_HH

#include <cstdint>
#include <unordered_map>

#include "common/stats.hh"
#include "common/types.hh"

namespace carve {

/** Sharing class of a page or line. */
enum class SharingClass : std::uint8_t {
    Private,
    ReadOnlyShared,
    ReadWriteShared,
};

/** Access counts bucketed by the final sharing class of the target. */
struct SharingBreakdown
{
    std::uint64_t private_accesses = 0;
    std::uint64_t read_only_shared = 0;
    std::uint64_t read_write_shared = 0;

    std::uint64_t
    total() const
    {
        return private_accesses + read_only_shared + read_write_shared;
    }

    /** Fraction helpers (0 when no accesses). */
    double fracPrivate() const;
    double fracReadOnlyShared() const;
    double fracReadWriteShared() const;
};

/**
 * Passive observer of every (post-coalescing) memory access.
 *
 * Classification is retrospective: a page/line's class is determined
 * by all nodes that ever touched it, and every access it received is
 * attributed to that final class — matching how the paper's trace
 * analysis buckets accesses.
 */
class SharingProfiler
{
  public:
    /**
     * @param page_size page granularity in bytes
     * @param line_size line granularity in bytes
     * @param track_pages enable page-granularity tracking
     * @param track_lines enable line-granularity tracking (costs
     *        memory proportional to touched lines)
     */
    SharingProfiler(std::uint64_t page_size, std::uint64_t line_size,
                    bool track_pages = true, bool track_lines = true);

    /** Record one access by @p node. */
    void record(Addr addr, NodeId node, AccessType type);

    /** Fold @p other's entries into this profiler and clear @p other.
     * Entry updates commute (counts sum, masks OR), so per-domain
     * shard profilers merged in any fixed order reproduce the counts
     * a single shared profiler would have accumulated. */
    void absorb(SharingProfiler &other);

    /** Access distribution at page granularity. */
    SharingBreakdown pageBreakdown() const;
    /** Access distribution at line granularity. */
    SharingBreakdown lineBreakdown() const;

    /** Bytes of pages touched by more than one node (Figure 5). */
    std::uint64_t sharedPageFootprint() const;
    /** Bytes of lines touched by more than one node. */
    std::uint64_t sharedLineFootprint() const;
    /** Total bytes of pages touched at all. */
    std::uint64_t totalPageFootprint() const;

    /** Final class of the page containing @p addr. */
    SharingClass pageClass(Addr addr) const;
    /** Final class of the line containing @p addr. */
    SharingClass lineClass(Addr addr) const;

    std::size_t trackedPages() const { return pages_.size(); }
    std::size_t trackedLines() const { return lines_.size(); }

    /** Register this profiler's (all derived) stats into @p g. The
     * breakdowns are retrospective map walks, so they are exposed as
     * on-demand derived values rather than live counters. */
    void registerStats(stats::StatGroup &g);

  private:
    struct Entry
    {
        std::uint64_t accesses = 0;
        std::uint16_t readers = 0;  ///< bitmask of reading nodes
        std::uint16_t writers = 0;  ///< bitmask of writing nodes
    };

    static SharingClass classify(const Entry &e);
    static SharingBreakdown breakdown(
        const std::unordered_map<Addr, Entry> &map);
    static std::uint64_t sharedBytes(
        const std::unordered_map<Addr, Entry> &map,
        std::uint64_t granule);

    std::uint64_t page_size_;
    std::uint64_t line_size_;
    bool track_pages_;
    bool track_lines_;
    std::unordered_map<Addr, Entry> pages_;
    std::unordered_map<Addr, Entry> lines_;
};

} // namespace carve

#endif // CARVE_NUMA_SHARING_PROFILER_HH
