#include "numa/page_table.hh"

#include "common/logging.hh"

namespace carve {

PageTable::PageTable(const SystemConfig &cfg)
    : page_size_(cfg.page_size),
      homed_(cfg.num_gpus, 0), replicas_(cfg.num_gpus, 0)
{
    if (cfg.num_gpus > max_nodes)
        fatal("PageTable: more GPUs (%u) than bitmask width (%u)",
              cfg.num_gpus, max_nodes);
    const std::uint64_t visible = cfg.dram.capacity -
        (cfg.rdc.enabled ? cfg.rdc.size : 0);
    capacity_pages_ = visible / cfg.page_size;
}

PageEntry &
PageTable::entry(Addr addr)
{
    return pages_[pageOf(addr)];
}

const PageEntry *
PageTable::find(Addr addr) const
{
    const auto it = pages_.find(pageOf(addr));
    return it == pages_.end() ? nullptr : &it->second;
}

void
PageTable::addHomedPage(NodeId node)
{
    carve_assert(node < homed_.size());
    ++homed_[node];
}

void
PageTable::removeHomedPage(NodeId node)
{
    carve_assert(node < homed_.size() && homed_[node] > 0);
    --homed_[node];
}

void
PageTable::addReplica(NodeId node)
{
    carve_assert(node < replicas_.size());
    ++replicas_[node];
}

void
PageTable::removeReplica(NodeId node)
{
    carve_assert(node < replicas_.size() && replicas_[node] > 0);
    --replicas_[node];
}

std::uint64_t
PageTable::homedPages(NodeId node) const
{
    carve_assert(node < homed_.size());
    return homed_[node];
}

std::uint64_t
PageTable::replicaPages(NodeId node) const
{
    carve_assert(node < replicas_.size());
    return replicas_[node];
}

std::uint64_t
PageTable::capacityPages(NodeId) const
{
    return capacity_pages_;
}

double
PageTable::capacityPressure() const
{
    std::uint64_t homed = 0, repl = 0;
    for (std::size_t g = 0; g < homed_.size(); ++g) {
        homed += homed_[g];
        repl += replicas_[g];
    }
    return homed == 0
        ? 1.0
        : static_cast<double>(homed + repl) /
              static_cast<double>(homed);
}

} // namespace carve
