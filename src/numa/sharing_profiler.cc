#include "numa/sharing_profiler.hh"

#include <bit>

#include "common/logging.hh"
#include "common/units.hh"

namespace carve {

double
SharingBreakdown::fracPrivate() const
{
    const std::uint64_t t = total();
    return t == 0 ? 0.0
                  : static_cast<double>(private_accesses) /
                        static_cast<double>(t);
}

double
SharingBreakdown::fracReadOnlyShared() const
{
    const std::uint64_t t = total();
    return t == 0 ? 0.0
                  : static_cast<double>(read_only_shared) /
                        static_cast<double>(t);
}

double
SharingBreakdown::fracReadWriteShared() const
{
    const std::uint64_t t = total();
    return t == 0 ? 0.0
                  : static_cast<double>(read_write_shared) /
                        static_cast<double>(t);
}

SharingProfiler::SharingProfiler(std::uint64_t page_size,
                                 std::uint64_t line_size,
                                 bool track_pages, bool track_lines)
    : page_size_(page_size), line_size_(line_size),
      track_pages_(track_pages), track_lines_(track_lines)
{
    if (!isPowerOf2(page_size) || !isPowerOf2(line_size))
        fatal("SharingProfiler: granularities must be powers of two");
}

void
SharingProfiler::record(Addr addr, NodeId node, AccessType type)
{
    carve_assert(node < 16);
    const auto bit = static_cast<std::uint16_t>(1u << node);
    if (track_pages_) {
        Entry &e = pages_[alignDown(addr, page_size_)];
        ++e.accesses;
        if (isWrite(type))
            e.writers |= bit;
        else
            e.readers |= bit;
    }
    if (track_lines_) {
        Entry &e = lines_[alignDown(addr, line_size_)];
        ++e.accesses;
        if (isWrite(type))
            e.writers |= bit;
        else
            e.readers |= bit;
    }
}

void
SharingProfiler::absorb(SharingProfiler &other)
{
    const auto merge = [](std::unordered_map<Addr, Entry> &into,
                          std::unordered_map<Addr, Entry> &from) {
        for (const auto &[addr, e] : from) {
            Entry &dst = into[addr];
            dst.accesses += e.accesses;
            dst.readers |= e.readers;
            dst.writers |= e.writers;
        }
        from.clear();
    };
    merge(pages_, other.pages_);
    merge(lines_, other.lines_);
}

SharingClass
SharingProfiler::classify(const Entry &e)
{
    const std::uint16_t touchers = e.readers | e.writers;
    if (std::popcount(touchers) <= 1)
        return SharingClass::Private;
    return e.writers == 0 ? SharingClass::ReadOnlyShared
                          : SharingClass::ReadWriteShared;
}

SharingBreakdown
SharingProfiler::breakdown(const std::unordered_map<Addr, Entry> &map)
{
    SharingBreakdown b;
    for (const auto &[addr, e] : map) {
        switch (classify(e)) {
          case SharingClass::Private:
            b.private_accesses += e.accesses;
            break;
          case SharingClass::ReadOnlyShared:
            b.read_only_shared += e.accesses;
            break;
          case SharingClass::ReadWriteShared:
            b.read_write_shared += e.accesses;
            break;
        }
    }
    return b;
}

std::uint64_t
SharingProfiler::sharedBytes(const std::unordered_map<Addr, Entry> &map,
                             std::uint64_t granule)
{
    std::uint64_t n = 0;
    for (const auto &[addr, e] : map) {
        if (std::popcount(
                static_cast<std::uint16_t>(e.readers | e.writers)) > 1)
            ++n;
    }
    return n * granule;
}

SharingBreakdown
SharingProfiler::pageBreakdown() const
{
    return breakdown(pages_);
}

SharingBreakdown
SharingProfiler::lineBreakdown() const
{
    return breakdown(lines_);
}

std::uint64_t
SharingProfiler::sharedPageFootprint() const
{
    return sharedBytes(pages_, page_size_);
}

std::uint64_t
SharingProfiler::sharedLineFootprint() const
{
    return sharedBytes(lines_, line_size_);
}

std::uint64_t
SharingProfiler::totalPageFootprint() const
{
    return pages_.size() * page_size_;
}

SharingClass
SharingProfiler::pageClass(Addr addr) const
{
    const auto it = pages_.find(alignDown(addr, page_size_));
    return it == pages_.end() ? SharingClass::Private
                              : classify(it->second);
}

SharingClass
SharingProfiler::lineClass(Addr addr) const
{
    const auto it = lines_.find(alignDown(addr, line_size_));
    return it == lines_.end() ? SharingClass::Private
                              : classify(it->second);
}

void
SharingProfiler::registerStats(stats::StatGroup &g)
{
    g.addDerivedInt("page_private",
                    [this] { return pageBreakdown().private_accesses; },
                    "accesses to single-node pages");
    g.addDerivedInt("page_read_only",
                    [this] { return pageBreakdown().read_only_shared; },
                    "accesses to read-only shared pages");
    g.addDerivedInt("page_read_write",
                    [this] { return pageBreakdown().read_write_shared; },
                    "accesses to read-write shared pages");
    g.addDerivedInt("line_private",
                    [this] { return lineBreakdown().private_accesses; },
                    "accesses to single-node lines");
    g.addDerivedInt("line_read_only",
                    [this] { return lineBreakdown().read_only_shared; },
                    "accesses to read-only shared lines");
    g.addDerivedInt("line_read_write",
                    [this] { return lineBreakdown().read_write_shared; },
                    "accesses to read-write shared lines");
    g.addDerivedInt("shared_page_bytes",
                    [this] { return sharedPageFootprint(); },
                    "bytes of pages touched by more than one node");
    g.addDerivedInt("shared_line_bytes",
                    [this] { return sharedLineFootprint(); },
                    "bytes of lines touched by more than one node");
    g.addDerivedInt("total_page_bytes",
                    [this] { return totalPageFootprint(); },
                    "bytes of pages touched at all");
}

} // namespace carve
