#include "numa/replication.hh"

#include <bit>

#include "common/logging.hh"

namespace carve {

ReplicationManager::ReplicationManager(const NumaConfig &cfg,
                                       PageTable &table)
    : cfg_(cfg), table_(table)
{
}

bool
ReplicationManager::maybeReplicate(PageEntry &page, NodeId node)
{
    carve_assert(node < max_nodes);
    if (page.home == node || page.home == cpu_node ||
        page.localAt(node)) {
        return false;
    }

    switch (cfg_.replication) {
      case ReplicationPolicy::None:
        return false;

      case ReplicationPolicy::All:
        // Ideal: free replication of everything, even written pages.
        page.replica_mask |= static_cast<std::uint16_t>(1u << node);
        table_.addReplica(node);
        ++replications_;
        return true;

      case ReplicationPolicy::ReadOnly:
        if (page.written || page.collapsed)
            return false;
        if (!table_.hasFreeFrame(node)) {
            ++capacity_skips_;
            return false;
        }
        page.replica_mask |= static_cast<std::uint16_t>(1u << node);
        table_.addReplica(node);
        ++replications_;
        return true;
    }
    return false;
}

bool
ReplicationManager::onWrite(PageEntry &page, NodeId node)
{
    (void)node;
    if (cfg_.replication != ReplicationPolicy::ReadOnly)
        return false;
    if (page.replica_mask == 0)
        return false;

    // Collapse: drop every replica; the page is demoted to a single
    // home copy and never replicated again (software cost of doing
    // this repeatedly is prohibitive -- Section II-C).
    for (unsigned g = 0; g < max_nodes; ++g) {
        if (page.replica_mask & (1u << g))
            table_.removeReplica(g);
    }
    page.replica_mask = 0;
    page.collapsed = true;
    ++collapses_;
    return true;
}

} // namespace carve
