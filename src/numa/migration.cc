#include "numa/migration.hh"

#include "common/logging.hh"

namespace carve {

MigrationEngine::MigrationEngine(const NumaConfig &cfg, PageTable &table)
    : cfg_(cfg), table_(table)
{
}

bool
MigrationEngine::maybeMigrate(PageEntry &page, NodeId node)
{
    carve_assert(node < max_nodes);
    if (!cfg_.migration || page.home == node ||
        page.home == cpu_node || page.home == invalid_node) {
        return false;
    }

    const std::uint32_t mine = page.access_counts[node];
    if (mine < cfg_.migration_threshold)
        return false;

    std::uint32_t others = 0;
    for (unsigned n = 0; n < max_nodes; ++n) {
        if (n != node)
            others += page.access_counts[n];
    }
    if (mine < 4 * others)
        return false;  // genuinely shared: migration would ping-pong

    table_.removeHomedPage(page.home);
    table_.addHomedPage(node);
    page.home = node;
    ++page.migrations;
    page.access_counts.fill(0);
    ++migrations_;
    return true;
}

} // namespace carve
