#include "numa/page_manager.hh"

#include <algorithm>

#include "common/domain_engine.hh"
#include "common/logging.hh"

namespace carve {

PageManager::PageManager(const SystemConfig &cfg, bool track_pages,
                         bool track_lines)
    : cfg_(cfg), table_(cfg),
      placement_(cfg.numa, cfg.num_gpus, cfg.seed),
      profiler_(cfg.page_size, cfg.line_size, track_pages, track_lines),
      migration_(cfg.numa, table_),
      replication_(cfg.numa, table_),
      um_(cfg.numa, table_),
      shards_(cfg.num_gpus + 2)
{
    for (DomainShard &s : shards_) {
        s.profiler = std::make_unique<SharingProfiler>(
            cfg.page_size, cfg.line_size, track_pages, track_lines);
    }
}

PageManager::DomainShard &
PageManager::shard()
{
    const auto last = static_cast<unsigned>(shards_.size() - 1);
    return shards_[std::min(engine_ctx::currentShard(), last)];
}

const PageManager::PendingPage *
PageManager::pendingOf(const DomainShard &s, Addr vpage) const
{
    const auto it = s.pending.find(vpage);
    return it == s.pending.end() ? nullptr : &it->second;
}

void
PageManager::recordAccess(Addr addr, NodeId node, AccessType type,
                          Cycle tick)
{
    DomainShard &s = shard();
    const Addr vpage = table_.pageOf(addr);
    const auto [it, inserted] = s.pending.try_emplace(vpage);
    PendingPage &p = it->second;
    if (inserted && table_.find(addr) == nullptr) {
        // Uncommitted page: this domain's first-touch candidate.
        // Events within a domain execute in time order, so the first
        // record carries the domain's earliest tick.
        p.first_tick = tick;
        p.first_node = node;
        p.tentative_home = placement_.tentativeHome(vpage, node);
    }
    p.touch_mask |= static_cast<std::uint16_t>(1u << node);
    if (isWrite(type))
        p.written = true;
    s.profiler->record(addr, node, type);
}

NodeId
PageManager::route(Addr addr, NodeId node, AccessType type, Cycle now)
{
    DomainShard &s = shard();
    const Addr vpage = table_.pageOf(addr);
    s.route_log.push_back(RouteOp{vpage, node, isWrite(type)});

    const PageEntry *e = table_.find(addr);
    NodeId home;
    std::uint16_t replicas = 0;
    if (e != nullptr) {
        // Committed page; honor an in-flight migration's stall window
        // by servicing at the previous home until the move lands.
        home = e->ready_at > now ? e->prev_home : e->home;
        replicas = e->replica_mask;
    } else {
        // First seen this window: route to the tentative first-touch
        // home until the barrier commits the real placement.
        const PendingPage *p = pendingOf(s, vpage);
        carve_assert(p != nullptr && p->first_node != invalid_node);
        home = p->tentative_home;
    }
    carve_assert(home != invalid_node);

    if (home == cpu_node)
        return cpu_node;
    if (cfg_.numa.replication == ReplicationPolicy::All)
        return node;  // ideal replicate-all: always local
    if (home == node ||
        (replicas & static_cast<std::uint16_t>(1u << node))) {
        return node;
    }
    return home;
}

void
PageManager::commitWindow(Cycle now, const BulkChargeFn &charge)
{
    // (1) Commit first touches in deterministic global order. Two
    // domains can race to first-touch the same page inside one
    // window; (tick, domain, page) order picks the winner the serial
    // engine would pick.
    struct Candidate
    {
        Cycle tick;
        unsigned slot;
        Addr vpage;
        NodeId node;
    };
    std::vector<Candidate> candidates;
    for (unsigned slot = 0; slot < shards_.size(); ++slot) {
        for (const auto &[vpage, p] : shards_[slot].pending) {
            if (p.first_node != invalid_node)
                candidates.push_back({p.first_tick, slot, vpage,
                                      p.first_node});
        }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.tick != b.tick)
                      return a.tick < b.tick;
                  if (a.slot != b.slot)
                      return a.slot < b.slot;
                  return a.vpage < b.vpage;
              });
    for (const Candidate &c : candidates) {
        PageEntry &page = table_.entry(c.vpage);
        if (page.home != invalid_node)
            continue;  // lost the race to an earlier toucher
        page.home = placement_.firstTouch(c.vpage, c.node);
        if (page.home != cpu_node)
            table_.addHomedPage(page.home);
        ++first_touches_;
    }

    // (2) Merge the window's touch masks (commutative ORs).
    for (DomainShard &s : shards_) {
        for (const auto &[vpage, p] : s.pending) {
            PageEntry &page = table_.entry(vpage);
            page.touch_mask |= p.touch_mask;
            if (p.written)
                page.written = true;
        }
        s.pending.clear();
    }

    // (3) Replay the route logs domain-major through the policy
    // engines. Each domain's log is in that domain's event order, so
    // the replay sequence is identical for serial and parallel runs.
    for (DomainShard &s : shards_) {
        for (const RouteOp &op : s.route_log) {
            PageEntry &page = table_.entry(op.vpage);
            carve_assert(page.home != invalid_node);
            if (op.node < max_nodes)
                ++page.access_counts[op.node];

            // Writes first: a store to a replicated read-only page
            // collapses its replicas before anything else happens.
            if (op.write &&
                cfg_.numa.replication == ReplicationPolicy::ReadOnly &&
                replication_.onWrite(page, op.node)) {
                page.ready_at = now + cfg_.numa.migration_stall;
                page.prev_home = page.home;
            }

            // CPU-resident (spilled) page: Unified Memory services it
            // over the CPU link until it proves hot enough to pull in.
            if (page.home == cpu_node) {
                if (um_.onAccess(page, op.node) && charge)
                    charge(cpu_node, op.node);
                continue;
            }

            // Ideal replicate-all: mirror everywhere, zero cost.
            if (cfg_.numa.replication == ReplicationPolicy::All) {
                if (!page.localAt(op.node))
                    replication_.maybeReplicate(page, op.node);
                continue;
            }

            if (page.localAt(op.node))
                continue;

            const NodeId old_home = page.home;
            if (!op.write &&
                replication_.maybeReplicate(page, op.node)) {
                if (charge)
                    charge(old_home, op.node);
                continue;
            }

            if (migration_.maybeMigrate(page, op.node)) {
                page.ready_at = now + cfg_.numa.migration_stall;
                page.prev_home = old_home;
                if (charge)
                    charge(old_home, op.node);
            }
        }
        s.route_log.clear();
    }
}

void
PageManager::finalizeProfile()
{
    for (DomainShard &s : shards_)
        profiler_.absorb(*s.profiler);
}

bool
PageManager::isLocal(Addr addr, NodeId node) const
{
    const PageEntry *page = table_.find(addr);
    return page != nullptr && page->localAt(node);
}

NodeId
PageManager::homeOf(Addr addr) const
{
    const PageEntry *page = table_.find(addr);
    return page == nullptr ? invalid_node : page->home;
}

void
PageManager::registerStats(stats::StatGroup &g)
{
    g.addScalar("first_touches", &first_touches_,
                "first-touch placements performed");
    migration_.registerStats(g);
    replication_.registerStats(g);
    um_.registerStats(g);
    g.addDerived("capacity_pressure",
                 [this] { return table_.capacityPressure(); },
                 "peak fraction of GPU memory capacity in use");
    sharing_group_ = std::make_unique<stats::StatGroup>("sharing", &g);
    profiler_.registerStats(*sharing_group_);
}

} // namespace carve
