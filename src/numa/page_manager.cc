#include "numa/page_manager.hh"

#include "common/logging.hh"

namespace carve {

PageManager::PageManager(const SystemConfig &cfg, bool track_pages,
                         bool track_lines)
    : cfg_(cfg), table_(cfg),
      placement_(cfg.numa, cfg.num_gpus, cfg.seed),
      profiler_(cfg.page_size, cfg.line_size, track_pages, track_lines),
      migration_(cfg.numa, table_),
      replication_(cfg.numa, table_),
      um_(cfg.numa, table_)
{
}

void
PageManager::recordAccess(Addr addr, NodeId node, AccessType type)
{
    PageEntry &page = table_.entry(addr);
    if (page.home == invalid_node) {
        page.home = placement_.firstTouch(table_.pageOf(addr), node);
        if (page.home != cpu_node)
            table_.addHomedPage(page.home);
        ++first_touches_;
    }
    page.touch_mask |= static_cast<std::uint16_t>(1u << node);
    if (isWrite(type))
        page.written = true;
    profiler_.record(addr, node, type);
}

Route
PageManager::route(Addr addr, NodeId node, AccessType type)
{
    PageEntry &page = table_.entry(addr);
    carve_assert(page.home != invalid_node);
    if (node < max_nodes)
        ++page.access_counts[node];

    Route r;

    // Writes first: a store to a replicated read-only page collapses
    // its replicas before anything else happens.
    if (isWrite(type) &&
        cfg_.numa.replication == ReplicationPolicy::ReadOnly &&
        replication_.onWrite(page, node)) {
        r.stall += cfg_.numa.migration_stall;
    }

    // CPU-resident (spilled) page: Unified Memory services it over
    // the CPU link until it proves hot enough to migrate in.
    if (page.home == cpu_node) {
        if (um_.onAccess(page, node)) {
            r.service = node;
            r.bulk_transfer = true;
            r.transfer_src = cpu_node;
        } else {
            r.service = cpu_node;
        }
        return r;
    }

    // Ideal replicate-all: every access is local at zero cost.
    if (cfg_.numa.replication == ReplicationPolicy::All) {
        if (!page.localAt(node))
            replication_.maybeReplicate(page, node);
        r.service = node;
        return r;
    }

    if (page.localAt(node)) {
        r.service = node;
        return r;
    }

    // Remote access: the software toolbox gets a chance first.
    const NodeId old_home = page.home;
    if (!isWrite(type) && replication_.maybeReplicate(page, node)) {
        // Replica created: this access still fetches remotely (it IS
        // the copy traffic); subsequent accesses hit the replica.
        r.bulk_transfer = true;
        r.transfer_src = old_home;
        r.service = old_home;
        return r;
    }

    if (migration_.maybeMigrate(page, node)) {
        r.service = node;  // page now lives here
        r.stall += cfg_.numa.migration_stall;
        r.bulk_transfer = true;
        r.transfer_src = old_home;
        return r;
    }

    r.service = page.home;
    return r;
}

bool
PageManager::isLocal(Addr addr, NodeId node) const
{
    const PageEntry *page = table_.find(addr);
    return page != nullptr && page->localAt(node);
}

NodeId
PageManager::homeOf(Addr addr) const
{
    const PageEntry *page = table_.find(addr);
    return page == nullptr ? invalid_node : page->home;
}

void
PageManager::registerStats(stats::StatGroup &g)
{
    g.addScalar("first_touches", &first_touches_,
                "first-touch placements performed");
    migration_.registerStats(g);
    replication_.registerStats(g);
    um_.registerStats(g);
    g.addDerived("capacity_pressure",
                 [this] { return table_.capacityPressure(); },
                 "peak fraction of GPU memory capacity in use");
    sharing_group_ = std::make_unique<stats::StatGroup>("sharing", &g);
    profiler_.registerStats(*sharing_group_);
}

} // namespace carve
