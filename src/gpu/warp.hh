/**
 * @file
 * Warp execution context: one hardware warp slot of an SM.
 */

#ifndef CARVE_GPU_WARP_HH
#define CARVE_GPU_WARP_HH

#include <cstdint>

#include "common/types.hh"
#include "workloads/workload.hh"

namespace carve {

/**
 * State of one warp slot. A warp alternates between issuing one
 * memory instruction (possibly spanning several cache lines) and a
 * compute gap; reads block the warp until every line returns, writes
 * are posted.
 */
struct WarpContext
{
    bool active = false;
    KernelId kernel = 0;
    CtaId cta = 0;
    WarpId warp_in_cta = 0;
    std::uint64_t next_inst = 0;     ///< next instruction index
    std::uint64_t insts_total = 0;   ///< instructions in this kernel
    unsigned pending_lines = 0;      ///< outstanding read lines
    Cycle read_started = 0;          ///< read issue cycle (tracer only)
    WarpInstruction cur;             ///< instruction in flight
};

} // namespace carve

#endif // CARVE_GPU_WARP_HH
