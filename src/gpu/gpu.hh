/**
 * @file
 * One GPU node of the multi-GPU system: SMs + L1s, the shared L2/LLC
 * with MSHRs, the TLB hierarchy, the local memory controller, the
 * optional CARVE Remote Data Cache, and the post-LLC routing that
 * consults the NUMA runtime and classifies traffic as local / remote /
 * CPU — the counters behind Figure 8.
 */

#ifndef CARVE_GPU_GPU_HH
#define CARVE_GPU_GPU_HH

#include <memory>
#include <optional>
#include <vector>

#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "common/arena.hh"
#include "common/audit.hh"
#include "common/completion.hh"
#include "common/config.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "dramcache/rdc_controller.hh"
#include "gpu/cta_scheduler.hh"
#include "gpu/fabric.hh"
#include "gpu/sm.hh"
#include "mem/memory_controller.hh"
#include "numa/page_manager.hh"
#include "tlb/tlb.hh"

namespace carve {

/** Per-GPU post-LLC traffic counters (Figure 8's raw data). */
struct GpuTraffic
{
    stats::Scalar local_reads;
    stats::Scalar remote_reads;   ///< left this GPU (RDC misses too)
    stats::Scalar rdc_hit_reads;  ///< serviced by the carve-out
    stats::Scalar cpu_reads;
    stats::Scalar local_writes;
    stats::Scalar remote_writes;
    stats::Scalar rdc_hit_writes; ///< absorbed by a write-back RDC
    stats::Scalar cpu_writes;

    std::uint64_t
    total() const
    {
        return local_reads + remote_reads + rdc_hit_reads + cpu_reads +
            local_writes + remote_writes + rdc_hit_writes + cpu_writes;
    }

    /** Fraction of post-LLC accesses that crossed a NUMA link. */
    double fracRemote() const;

    /** Register the seven classifier counters into @p g. */
    void
    registerStats(stats::StatGroup &g)
    {
        g.addScalar("local_reads", &local_reads,
                    "post-LLC reads serviced by local memory");
        g.addScalar("remote_reads", &remote_reads,
                    "post-LLC reads that left this GPU");
        g.addScalar("rdc_hit_reads", &rdc_hit_reads,
                    "post-LLC reads serviced by the carve-out");
        g.addScalar("cpu_reads", &cpu_reads,
                    "post-LLC reads serviced by system memory");
        g.addScalar("local_writes", &local_writes,
                    "post-LLC writes to local memory");
        g.addScalar("remote_writes", &remote_writes,
                    "post-LLC writes that left this GPU");
        g.addScalar("rdc_hit_writes", &rdc_hit_writes,
                    "post-LLC writes absorbed by a write-back RDC");
        g.addScalar("cpu_writes", &cpu_writes,
                    "post-LLC writes to system memory");
    }
};

/**
 * GPU node. Construction wires every SM's hooks; the system wires the
 * fabric and drives kernels through startKernel()/kernelBoundary().
 */
class GpuNode
{
  public:
    /** POD completion delegate (no allocation per hand-off). */
    using Callback = Completion;

    /**
     * @param eq shared event queue
     * @param cfg system configuration
     * @param id this node's id
     * @param pages shared NUMA runtime
     * @param fabric off-chip services (remote memories, coherence)
     * @param arena backing store for this node's request pools; when
     *        null the pools fall back to the global heap
     */
    GpuNode(EventQueue &eq, const SystemConfig &cfg, NodeId id,
            PageManager &pages, SystemFabric &fabric,
            Arena *arena = nullptr);

    GpuNode(const GpuNode &) = delete;
    GpuNode &operator=(const GpuNode &) = delete;

    /** Select the trace source for subsequent kernels. */
    void setWorkload(const Workload *wl);

    /** Invoked when this GPU retires its last CTA of the kernel. */
    void
    setKernelDoneCallback(std::function<void(NodeId)> cb)
    {
        kernel_done_cb_ = std::move(cb);
    }

    /**
     * Begin executing this GPU's batch of kernel @p k's CTAs, pulled
     * from @p sched. A GPU with an empty batch reports completion on
     * the next event.
     */
    void startKernel(KernelId k, CtaScheduler &sched);

    /**
     * Apply kernel-boundary software coherence: invalidate L1s,
     * drop LLC remote lines (unless hardware coherence maintains
     * them), and epoch-invalidate the RDC under CARVE-SWC.
     * @return stall cycles the next launch must absorb
     */
    Cycle kernelBoundary();

    /** Inbound read of @p line from this node's memory (home side). */
    void serviceRemoteRead(Addr line, Callback done);
    /** Inbound posted write of @p line to this node's memory. */
    void serviceRemoteWrite(Addr line);
    /** Inbound hardware write-invalidate. */
    void invalidateLine(Addr line);

    MemoryController &mem() { return mem_; }
    RdcController *rdc() { return rdc_.get(); }
    const RdcController *rdc() const { return rdc_.get(); }
    Cache &l2() { return l2_; }
    const Cache &l2() const { return l2_; }
    MshrFile &l2Mshrs() { return l2_mshrs_; }
    const MshrFile &l2Mshrs() const { return l2_mshrs_; }
    TlbHierarchy &tlb() { return tlb_; }
    Sm &sm(unsigned i) { return *sms_[i]; }
    const Sm &sm(unsigned i) const { return *sms_[i]; }
    unsigned numSms() const
    {
        return static_cast<unsigned>(sms_.size());
    }

    const GpuTraffic &traffic() const { return traffic_; }
    NodeId id() const { return id_; }

    /** True while warps are resident or CTAs remain unclaimed. */
    bool busy() const;

    /** Total warp instructions issued across this GPU's SMs. */
    std::uint64_t instsIssued() const;

    /** Attach the in-flight token tracker (audit mode only);
     * forwarded to the memory controller and RDC. */
    void setAudit(audit::InflightTracker *tracker);

    /** Register this node's whole subtree (traffic, l2 + mshrs, tlb,
     * mem, rdc when present, one group per SM) into @p g, the
     * system-owned "gpu<i>" group. */
    void registerStats(stats::StatGroup &g);

    /** Enable MSHR latency histograms on this node (L1 park
     * durations pooled across SMs, L2 park/lifetime, RDC when
     * present); call before registerStats(). */
    void enableTelemetry();

    /** Attach the tracer under process @p pid: per-SM rows, the L2
     * MSHR / RDC / coherence rows, the DRAM channel rows, and this
     * GPU's counter tracks (MSHR + DRAM queue occupancy, RDC hit
     * rate). */
    void setTrace(trace::Session *session, std::uint32_t pid);

  private:
    /** A read in flight to the L2, or parked on the full L2 MSHR
     * file's wake-list awaiting a freed register. */
    struct ParkedMiss
    {
        Addr line;
        Completion done;
    };

    void accessFromSm(Addr line, AccessType type, Callback done);
    /** L2 arrival of a read, scheduled as a pre-bound event. */
    void arriveAtL2(Addr line, Callback done);
    /** Unparks an (addr, completion) record staged by accessFromSm. */
    void arriveAtL2Parked(std::uint32_t parked);
    void handleL2ReadMiss(Addr line, Callback done);
    /** Wake-list retry of a parked read; re-parks while the file is
     * still full, preserving its FIFO position. */
    void wakeL2Miss(std::uint32_t parked);
    void startFill(Addr line);
    /** Issue the fill at the routed @p service node. */
    void launchFill(Addr line, NodeId service);
    void finishFill(Addr line, bool remote);
    void handleWrite(Addr line);
    /** Deliver a post-LLC write at the routed @p service node. */
    void deliverWrite(Addr line, NodeId service);
    void onCtaRetired(SmId sm, CtaId cta);
    void maybeFinishKernel();

    EventQueue &eq_;
    const SystemConfig &cfg_;
    NodeId id_;
    PageManager &pages_;
    SystemFabric &fabric_;

    std::vector<std::unique_ptr<Sm>> sms_;
    Cache l2_;
    MshrFile l2_mshrs_;
    Pool<ParkedMiss> parked_misses_;
    TlbHierarchy tlb_;
    MemoryController mem_;
    std::unique_ptr<RdcController> rdc_;

    const Workload *wl_ = nullptr;
    CtaScheduler *sched_ = nullptr;
    KernelId cur_kernel_ = 0;
    std::uint64_t live_ctas_ = 0;
    std::function<void(NodeId)> kernel_done_cb_;

    audit::InflightTracker *audit_ = nullptr;
    trace::Session *trace_ = nullptr;
    std::uint32_t coherence_track_ = 0;

    bool telem_ = false;
    telemetry::Histogram l1_park_dur_;   ///< all SMs' L1 MSHR parks
    telemetry::Histogram l2_park_dur_;   ///< L2 MSHR park->wake
    telemetry::Histogram l2_miss_life_;  ///< L2 MSHR allocate->fill

    GpuTraffic traffic_;
    stats::Scalar l2_mshr_stalls_;
    stats::Scalar hw_invalidations_in_;
    stats::Scalar serviced_remote_reads_;
    stats::Scalar serviced_remote_writes_;
    std::vector<std::unique_ptr<stats::StatGroup>> stat_groups_;
};

} // namespace carve

#endif // CARVE_GPU_GPU_HH
