/**
 * @file
 * Memory coalescer: collapses the 32 per-lane addresses of a warp
 * access into the distinct cache lines actually requested, exactly as
 * a GPU load/store unit does. Workload generators use it to turn
 * lane-level access patterns into WarpInstruction line lists.
 */

#ifndef CARVE_GPU_COALESCER_HH
#define CARVE_GPU_COALESCER_HH

#include <cstdint>
#include <span>

#include "common/types.hh"
#include "workloads/workload.hh"

namespace carve {

/**
 * Coalesce @p lane_addrs (any count) into distinct line addresses.
 *
 * @param lane_addrs per-lane byte addresses
 * @param line_size line size in bytes (power of two)
 * @param out receives up to max_lines_per_inst distinct lines; when
 *        a warp diverges across more lines than fit, the extra lines
 *        are dropped and counted in the return value's second member
 * @return {lines written to out, lines dropped}
 */
struct CoalesceResult
{
    std::uint8_t num_lines;
    std::uint8_t dropped;
};

CoalesceResult coalesce(std::span<const Addr> lane_addrs,
                        std::uint64_t line_size, WarpInstruction &out);

} // namespace carve

#endif // CARVE_GPU_COALESCER_HH
