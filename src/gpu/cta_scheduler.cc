#include "gpu/cta_scheduler.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace carve {

CtaScheduler::CtaScheduler(unsigned num_gpus)
    : num_gpus_(num_gpus), retired_(num_gpus), next_(num_gpus, 0),
      end_(num_gpus, 0), start_(num_gpus, 0)
{
    if (num_gpus == 0)
        fatal("CtaScheduler: need at least one GPU");
}

void
CtaScheduler::launchKernel(std::uint64_t num_ctas)
{
    total_ = num_ctas;
    for (RetireSlot &slot : retired_)
        slot.count = 0;
    // Contiguous batches; the first (num_ctas % num_gpus) GPUs take
    // one extra CTA so every CTA is assigned.
    const std::uint64_t base = num_ctas / num_gpus_;
    const std::uint64_t extra = num_ctas % num_gpus_;
    CtaId cursor = 0;
    for (unsigned g = 0; g < num_gpus_; ++g) {
        const std::uint64_t batch = base + (g < extra ? 1 : 0);
        start_[g] = cursor;
        next_[g] = cursor;
        cursor += batch;
        end_[g] = cursor;
    }
    carve_assert(cursor == num_ctas);
}

std::optional<CtaId>
CtaScheduler::nextCta(NodeId gpu)
{
    carve_assert(gpu < num_gpus_);
    if (next_[gpu] >= end_[gpu])
        return std::nullopt;
    return next_[gpu]++;
}

void
CtaScheduler::retireCta(NodeId gpu)
{
    carve_assert(gpu < num_gpus_);
    ++retired_[gpu].count;
}

std::uint64_t
CtaScheduler::retiredCtas() const
{
    std::uint64_t total = 0;
    for (const RetireSlot &slot : retired_)
        total += slot.count;
    return total;
}

std::uint64_t
CtaScheduler::remaining(NodeId gpu) const
{
    carve_assert(gpu < num_gpus_);
    return end_[gpu] - next_[gpu];
}

CtaId
CtaScheduler::batchStart(NodeId gpu) const
{
    carve_assert(gpu < num_gpus_);
    return start_[gpu];
}

CtaId
CtaScheduler::batchEnd(NodeId gpu) const
{
    carve_assert(gpu < num_gpus_);
    return end_[gpu];
}

} // namespace carve
