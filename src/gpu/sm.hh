/**
 * @file
 * Streaming Multiprocessor model: 64 warp slots, an LSU that issues
 * one warp memory instruction per cycle, a private write-through L1
 * with MSHRs, and per-warp latency hiding — the Pascal-like core of
 * Table III.
 */

#ifndef CARVE_GPU_SM_HH
#define CARVE_GPU_SM_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "common/arena.hh"
#include "common/completion.hh"
#include "common/config.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "gpu/warp.hh"
#include "workloads/workload.hh"

namespace carve {

/**
 * One SM. All interaction with the rest of the GPU flows through the
 * callback bundle, keeping the SM unit-testable in isolation.
 */
class Sm
{
  public:
    /** POD completion delegate: passing one across the hook boundary
     * never allocates (unlike a captured std::function). */
    using Callback = Completion;

    /** Hooks into the owning GPU node. */
    struct Hooks
    {
        /** Forward an L1 miss / write-through to the L2 path.
         * @p done fires when read data returns (empty for writes). */
        std::function<void(Addr line, AccessType type, Callback done)>
            access_l2;
        /** Pre-L1 profiling + first-touch (page manager). */
        std::function<void(Addr line, AccessType type)> record_access;
        /** Translate @p addr for this SM; returns added latency. */
        std::function<Cycle(SmId sm, Addr addr)> translate;
        /** A CTA fully retired on this SM. */
        std::function<void(SmId sm, CtaId cta)> cta_retired;
    };

    /**
     * @param eq shared event queue
     * @param cfg system configuration
     * @param id SM index within the GPU
     * @param hooks GPU-node plumbing
     * @param jitter_seed deterministic first-issue skew seed
     * @param arena backing store for the MSHR waiter pool (optional)
     */
    Sm(EventQueue &eq, const SystemConfig &cfg, SmId id, Hooks hooks,
       std::uint64_t jitter_seed = 0, Arena *arena = nullptr);

    Sm(const Sm &) = delete;
    Sm &operator=(const Sm &) = delete;

    /** Select the trace source (must precede tryStartCta). */
    void setWorkload(const Workload *wl) { wl_ = wl; }

    /**
     * Try to occupy warp slots with CTA @p cta of kernel @p k.
     * @return false when fewer than warpsPerCta() slots are free
     */
    bool tryStartCta(KernelId k, CtaId cta);

    /** Warp slots currently free. */
    unsigned
    freeWarpSlots() const
    {
        return static_cast<unsigned>(warps_.size()) - active_warps_;
    }

    /** True when no warp is resident. */
    bool idle() const { return active_warps_ == 0; }

    /** Drop every L1 line (kernel-boundary software coherence). */
    void invalidateL1() { l1_.invalidateAll(); }

    /** Drop one L1 line (hardware coherence). */
    bool invalidateL1Line(Addr line) { return l1_.invalidateLine(line); }

    Cache &l1() { return l1_; }
    const Cache &l1() const { return l1_; }
    const MshrFile &l1Mshrs() const { return l1_mshrs_; }

    std::uint64_t instsIssued() const { return insts_issued_.value(); }
    std::uint64_t readInsts() const { return read_insts_.value(); }
    std::uint64_t writeInsts() const { return write_insts_.value(); }
    std::uint64_t linesAccessed() const { return lines_.value(); }
    std::uint64_t mshrStalls() const { return mshr_stalls_.value(); }

    SmId id() const { return id_; }

    /** Register SM counters plus an owned "l1" child group (with a
     * nested "mshrs" group) into @p g. */
    void registerStats(stats::StatGroup &g);

    /** Route this SM's L1 MSHR park durations into @p park_duration
     * (the owning GPU shares one histogram across its SMs — all run
     * in the same event domain, so the writes are single-threaded). */
    void
    enableTelemetry(telemetry::Histogram *park_duration)
    {
        l1_mshrs_.attachTelemetry(&eq_, park_duration, nullptr);
    }

    /** Attach the tracer: warp read-latency spans and MSHR-stall
     * instants land on this SM's timeline row @p track. */
    void
    setTrace(trace::Session *session, std::uint32_t track)
    {
        trace_ = session;
        trace_track_ = track;
    }

  private:
    // The issue loop is driven by pre-bound member-function events
    // (bindEvent) rather than per-call lambdas, so scheduling a hop
    // copies only (this, slot) into the event's inline storage.
    void issueWarp(unsigned slot);
    void execute(unsigned slot);
    void issueStores(unsigned slot);
    void issueLoads(unsigned slot);
    void startRead(unsigned slot, Addr line);
    void allocateMiss(unsigned slot, Addr line);
    /** Wake-list retry of a Full L1 MSHR allocation; re-parks while
     * the file stays full, ends the stall episode on success. */
    void wakeL1Miss(std::uint32_t parked);
    /** @return false when the MSHR file is full. */
    bool tryAllocateMiss(unsigned slot, Addr line);
    void finishL1Fill(Addr line);
    void lineDone(unsigned slot);
    void finishWarp(unsigned slot);

    /** One L1 MSHR stall episode: a read parked on the wake-list. */
    struct ParkedRead
    {
        Addr line;
        Cycle since;        ///< episode start (trace duration)
        std::uint32_t slot;
    };

    EventQueue &eq_;
    const SystemConfig &cfg_;
    SmId id_;
    Hooks hooks_;
    std::uint64_t jitter_seed_;
    const Workload *wl_ = nullptr;

    Cache l1_;
    MshrFile l1_mshrs_;
    Pool<ParkedRead> parked_reads_;
    std::vector<WarpContext> warps_;
    unsigned active_warps_ = 0;
    Cycle lsu_free_at_ = 0;
    /** Live warps per resident CTA. */
    std::unordered_map<CtaId, unsigned> cta_live_warps_;
    trace::Session *trace_ = nullptr;
    std::uint32_t trace_track_ = 0;

    stats::Scalar insts_issued_;
    stats::Scalar read_insts_;
    stats::Scalar write_insts_;
    stats::Scalar lines_;
    stats::Scalar mshr_stalls_;
    std::vector<std::unique_ptr<stats::StatGroup>> stat_groups_;
};

} // namespace carve

#endif // CARVE_GPU_SM_HH
