#include "gpu/sm.hh"

#include <utility>

#include "common/logging.hh"

namespace carve {

Sm::Sm(EventQueue &eq, const SystemConfig &cfg, SmId id, Hooks hooks,
       std::uint64_t jitter_seed, Arena *arena)
    : eq_(eq), cfg_(cfg), id_(id), hooks_(std::move(hooks)),
      jitter_seed_(jitter_seed),
      l1_("l1", cfg.l1, cfg.line_size),
      l1_mshrs_(cfg.l1.mshrs, arena, &eq),
      parked_reads_(arena),
      warps_(cfg.core.max_warps_per_sm)
{
    carve_assert(hooks_.access_l2 && hooks_.record_access &&
                 hooks_.translate && hooks_.cta_retired);
}

bool
Sm::tryStartCta(KernelId k, CtaId cta)
{
    carve_assert(wl_ != nullptr);
    const unsigned wpc = wl_->warpsPerCta();
    carve_assert(wpc > 0 && wpc <= warps_.size());
    if (freeWarpSlots() < wpc)
        return false;

    const std::uint64_t insts = wl_->instsPerWarp(k);
    cta_live_warps_[cta] = wpc;
    unsigned placed = 0;
    for (unsigned slot = 0; slot < warps_.size() && placed < wpc;
         ++slot) {
        WarpContext &w = warps_[slot];
        if (w.active)
            continue;
        w.active = true;
        w.kernel = k;
        w.cta = cta;
        w.warp_in_cta = placed;
        w.next_inst = 0;
        w.insts_total = insts;
        w.pending_lines = 0;
        ++active_warps_;
        ++placed;
        // Defer the first issue with a small deterministic skew.
        // Besides preventing a zero-length warp's retirement from
        // re-entering CTA assignment mid-loop, the skew breaks the
        // event-order tie on simultaneous first-touch races: real
        // hardware distributes those wins uniformly across GPUs,
        // whereas a deterministic event queue would hand every race
        // to the lowest-numbered node.
        std::uint64_t h = jitter_seed_ ^ (cta * 0x9e3779b97f4a7c15ull)
            ^ (static_cast<std::uint64_t>(slot) << 32);
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 29;
        eq_.schedule(eq_.now() + (h & 63),
                     bindEvent<&Sm::issueWarp>(this, slot));
    }
    carve_assert(placed == wpc);
    return true;
}

void
Sm::issueWarp(unsigned slot)
{
    WarpContext &w = warps_[slot];
    if (w.next_inst >= w.insts_total) {
        finishWarp(slot);
        return;
    }

    // LSU arbitration: one warp memory instruction per cycle.
    const Cycle at = std::max(eq_.now(), lsu_free_at_);
    lsu_free_at_ = at + 1;
    eq_.schedule(at, bindEvent<&Sm::execute>(this, slot));
}

void
Sm::execute(unsigned slot)
{
    WarpContext &w = warps_[slot];
    wl_->instruction(w.kernel, w.cta, w.warp_in_cta, w.next_inst,
                     w.cur);
    ++w.next_inst;
    ++insts_issued_;
    carve_assert(w.cur.num_lines > 0 &&
                 w.cur.num_lines <= max_lines_per_inst);
    lines_ += w.cur.num_lines;

    for (unsigned i = 0; i < w.cur.num_lines; ++i)
        hooks_.record_access(w.cur.lines[i], w.cur.type);

    const Cycle tlb_lat = hooks_.translate(id_, w.cur.lines[0]);

    if (isWrite(w.cur.type)) {
        ++write_insts_;
        // Write-through, no-allocate L1; stores are posted and do not
        // block the warp.
        eq_.scheduleAfter(tlb_lat,
                          bindEvent<&Sm::issueStores>(this, slot));
        eq_.scheduleAfter(tlb_lat + 1 + w.cur.compute_cycles,
                          bindEvent<&Sm::issueWarp>(this, slot));
        return;
    }

    ++read_insts_;
    w.pending_lines = w.cur.num_lines;
    if (trace::active(trace_, trace::Category::Sm))
        w.read_started = eq_.now();
    eq_.scheduleAfter(tlb_lat, bindEvent<&Sm::issueLoads>(this, slot));
}

void
Sm::issueStores(unsigned slot)
{
    WarpContext &w = warps_[slot];
    for (unsigned i = 0; i < w.cur.num_lines; ++i) {
        l1_.writeProbe(w.cur.lines[i], false);
        hooks_.access_l2(w.cur.lines[i], AccessType::Write,
                         Callback());
    }
}

void
Sm::issueLoads(unsigned slot)
{
    WarpContext &w = warps_[slot];
    // lineDone() may fire synchronously through an MSHR merge
    // completing later, never within this loop, but cur is stable for
    // the instruction's lifetime anyway.
    for (unsigned i = 0; i < w.cur.num_lines; ++i)
        startRead(slot, w.cur.lines[i]);
}

void
Sm::startRead(unsigned slot, Addr line)
{
    if (l1_.readProbe(line)) {
        eq_.scheduleAfter(l1_.hitLatency(),
                          bindEvent<&Sm::lineDone>(this, slot));
        return;
    }
    allocateMiss(slot, line);
}

void
Sm::allocateMiss(unsigned slot, Addr line)
{
    if (tryAllocateMiss(slot, line))
        return;
    // One stall episode begins: park once on the MSHR wake-list and
    // wait to be drained through the event queue when a fill frees a
    // register — no retry polling.
    ++mshr_stalls_;
    const std::uint32_t parked = parked_reads_.alloc(
        ParkedRead{line, eq_.now(), slot});
    l1_mshrs_.park(Completion::bind<&Sm::wakeL1Miss>(this, parked));
}

void
Sm::wakeL1Miss(std::uint32_t parked)
{
    const ParkedRead r = parked_reads_[parked];
    if (!tryAllocateMiss(r.slot, r.line)) {
        // Earlier waiters took every freed register: same episode
        // continues, keep the record and our wake-list position.
        l1_mshrs_.park(Completion::bind<&Sm::wakeL1Miss>(this,
                                                         parked));
        return;
    }
    if (trace::active(trace_, trace::Category::Sm)) {
        // One instant per stall episode, with the park duration as
        // payload (the per-poll variant flooded the ring buffer).
        trace_->instant(trace::Category::Sm, trace_track_,
                        "mshr_stall", eq_.now(), eq_.now() - r.since);
    }
    parked_reads_.free(parked);
}

bool
Sm::tryAllocateMiss(unsigned slot, Addr line)
{
    const MshrOutcome out = l1_mshrs_.allocate(
        line, Completion::bind<&Sm::lineDone>(this, slot));
    switch (out) {
      case MshrOutcome::NewEntry:
        hooks_.access_l2(line, AccessType::Read,
                         Completion::bind<&Sm::finishL1Fill>(this, line));
        return true;
      case MshrOutcome::Merged:
        return true;
      case MshrOutcome::Full:
        return false;
    }
    return false;
}

void
Sm::finishL1Fill(Addr line)
{
    l1_.fill(line, false);
    l1_mshrs_.complete(line);
}

void
Sm::lineDone(unsigned slot)
{
    WarpContext &w = warps_[slot];
    carve_assert(w.pending_lines > 0);
    if (--w.pending_lines == 0) {
        if (trace::active(trace_, trace::Category::Sm)) {
            trace_->span(trace::Category::Sm, trace_track_, "read mem",
                         w.read_started, eq_.now(), w.cur.num_lines);
        }
        eq_.scheduleAfter(1 + w.cur.compute_cycles,
                          bindEvent<&Sm::issueWarp>(this, slot));
    }
}

void
Sm::finishWarp(unsigned slot)
{
    WarpContext &w = warps_[slot];
    carve_assert(w.active);
    w.active = false;
    carve_assert(active_warps_ > 0);
    --active_warps_;

    auto it = cta_live_warps_.find(w.cta);
    carve_assert(it != cta_live_warps_.end() && it->second > 0);
    if (--it->second == 0) {
        const CtaId cta = w.cta;
        cta_live_warps_.erase(it);
        hooks_.cta_retired(id_, cta);
    }
}

void
Sm::registerStats(stats::StatGroup &g)
{
    g.addScalar("insts_issued", &insts_issued_,
                "warp memory instructions issued");
    g.addScalar("read_insts", &read_insts_, "read instructions");
    g.addScalar("write_insts", &write_insts_, "write instructions");
    g.addScalar("lines_accessed", &lines_,
                "post-coalescing line accesses");
    g.addScalar("mshr_stalls", &mshr_stalls_,
                "stall episodes on a full L1 MSHR file");

    stat_groups_.push_back(
        std::make_unique<stats::StatGroup>("l1", &g));
    stats::StatGroup &l1g = *stat_groups_.back();
    l1_.registerStats(l1g);
    stat_groups_.push_back(
        std::make_unique<stats::StatGroup>("mshrs", &l1g));
    l1_mshrs_.registerStats(*stat_groups_.back());
}

} // namespace carve
