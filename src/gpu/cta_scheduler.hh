/**
 * @file
 * Distributed CTA scheduler: NUMA-GPU assigns each GPU a large
 * *contiguous* batch of CTAs (adjacent CTAs exhibit strong spatial
 * locality, Section II-B), which combined with first-touch placement
 * keeps most of a GPU's working set in local memory.
 */

#ifndef CARVE_GPU_CTA_SCHEDULER_HH
#define CARVE_GPU_CTA_SCHEDULER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace carve {

/** Hands out a kernel's CTAs in contiguous per-GPU batches. */
class CtaScheduler
{
  public:
    /** @param num_gpus GPU node count */
    explicit CtaScheduler(unsigned num_gpus);

    /** Start distributing @p num_ctas CTAs of a new kernel. */
    void launchKernel(std::uint64_t num_ctas);

    /**
     * Claim the next CTA for @p gpu.
     * @return nullopt when the GPU's batch is exhausted
     */
    std::optional<CtaId> nextCta(NodeId gpu);

    /** Report one CTA of @p gpu fully retired. Counted in a per-GPU
     * slot so concurrent event domains never contend; readers
     * (kernelDone(), retiredCtas()) sum the slots and must only run
     * at a window barrier or in a single-domain context. */
    void retireCta(NodeId gpu);

    /** True once every CTA of the current kernel has retired. */
    bool
    kernelDone() const
    {
        return retiredCtas() == total_;
    }

    /** CTAs remaining unclaimed for @p gpu. */
    std::uint64_t remaining(NodeId gpu) const;

    /** First CTA id of @p gpu's contiguous batch (tests). */
    CtaId batchStart(NodeId gpu) const;
    /** One past the last CTA id of @p gpu's batch (tests). */
    CtaId batchEnd(NodeId gpu) const;

    std::uint64_t totalCtas() const { return total_; }
    std::uint64_t retiredCtas() const;

  private:
    /** Per-GPU retire counter, padded so adjacent GPUs' increments
     * never share a cache line across worker threads. */
    struct alignas(64) RetireSlot
    {
        std::uint64_t count = 0;
    };

    unsigned num_gpus_;
    std::uint64_t total_ = 0;
    std::vector<RetireSlot> retired_;  ///< per-GPU retired CTAs
    std::vector<CtaId> next_;   ///< per-GPU next unclaimed CTA
    std::vector<CtaId> end_;    ///< per-GPU batch end (exclusive)
    std::vector<CtaId> start_;  ///< per-GPU batch start
};

} // namespace carve

#endif // CARVE_GPU_CTA_SCHEDULER_HH
