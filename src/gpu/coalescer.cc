#include "gpu/coalescer.hh"

#include "common/units.hh"

namespace carve {

CoalesceResult
coalesce(std::span<const Addr> lane_addrs, std::uint64_t line_size,
         WarpInstruction &out)
{
    CoalesceResult res{0, 0};
    for (const Addr a : lane_addrs) {
        const Addr line = alignDown(a, line_size);
        bool seen = false;
        for (unsigned i = 0; i < res.num_lines; ++i) {
            if (out.lines[i] == line) {
                seen = true;
                break;
            }
        }
        if (seen)
            continue;
        if (res.num_lines >= max_lines_per_inst) {
            ++res.dropped;
            continue;
        }
        out.lines[res.num_lines++] = line;
    }
    out.num_lines = res.num_lines;
    return res;
}

} // namespace carve
