#include "gpu/gpu.hh"

#include <utility>

#include "common/logging.hh"

namespace carve {

double
GpuTraffic::fracRemote() const
{
    const std::uint64_t t = total();
    if (t == 0)
        return 0.0;
    // CPU traffic also leaves the package but the paper's Figure 8
    // counts GPU<->GPU NUMA traffic; CPU accesses are reported apart.
    return static_cast<double>(remote_reads + remote_writes) /
        static_cast<double>(t);
}

GpuNode::GpuNode(EventQueue &eq, const SystemConfig &cfg, NodeId id,
                 PageManager &pages, SystemFabric &fabric,
                 Arena *arena)
    : eq_(eq), cfg_(cfg), id_(id), pages_(pages), fabric_(fabric),
      l2_("l2", cfg.l2, cfg.line_size),
      l2_mshrs_(cfg.l2.mshrs, arena, &eq),
      parked_misses_(arena),
      tlb_(cfg.tlb, cfg.core.sms_per_gpu, cfg.page_size),
      mem_(eq, cfg, arena)
{
    if (cfg.rdc.enabled) {
        RdcRemoteOps ops;
        ops.fetch_remote = [this](NodeId home, Addr line,
                                  Completion done) {
            fabric_.remoteRead(id_, home, line, done);
        };
        ops.write_remote = [this](NodeId home, Addr line) {
            fabric_.remoteWrite(id_, home, line);
        };
        ops.flush_remote = [this](NodeId home, std::uint64_t bytes) {
            fabric_.rdcFlush(id_, home, bytes);
        };
        rdc_ = std::make_unique<RdcController>(eq, cfg, id, mem_,
                                               std::move(ops), arena);
    }

    Sm::Hooks hooks;
    hooks.access_l2 = [this](Addr line, AccessType type,
                             Callback done) {
        accessFromSm(line, type, done);
    };
    hooks.record_access = [this](Addr line, AccessType type) {
        pages_.recordAccess(line, id_, type, eq_.now());
    };
    hooks.translate = [this](SmId sm, Addr addr) {
        return tlb_.translate(sm, addr).latency;
    };
    hooks.cta_retired = [this](SmId sm, CtaId cta) {
        onCtaRetired(sm, cta);
    };

    sms_.reserve(cfg.core.sms_per_gpu);
    for (unsigned s = 0; s < cfg.core.sms_per_gpu; ++s) {
        const std::uint64_t jitter =
            (static_cast<std::uint64_t>(id) << 32) | s;
        sms_.push_back(std::make_unique<Sm>(eq, cfg, s, hooks,
                                            jitter, arena));
    }
}

void
GpuNode::setWorkload(const Workload *wl)
{
    wl_ = wl;
    for (auto &sm : sms_)
        sm->setWorkload(wl);
}

void
GpuNode::startKernel(KernelId k, CtaScheduler &sched)
{
    carve_assert(wl_ != nullptr);
    cur_kernel_ = k;
    sched_ = &sched;

    // Greedily fill every SM's CTA slots from this GPU's batch.
    bool any = false;
    for (auto &sm : sms_) {
        while (sm->freeWarpSlots() >= wl_->warpsPerCta()) {
            const auto cta = sched.nextCta(id_);
            if (!cta)
                break;
            const bool started = sm->tryStartCta(k, *cta);
            carve_assert(started);
            ++live_ctas_;
            any = true;
        }
        if (sched.remaining(id_) == 0)
            break;
    }

    if (!any && live_ctas_ == 0) {
        // Empty batch: report completion asynchronously.
        eq_.schedule(eq_.now(),
                     bindEvent<&GpuNode::maybeFinishKernel>(this));
    }
}

void
GpuNode::onCtaRetired(SmId sm, CtaId)
{
    carve_assert(sched_ != nullptr && live_ctas_ > 0);
    --live_ctas_;
    sched_->retireCta(id_);

    // Backfill the SM that freed capacity.
    while (sms_[sm]->freeWarpSlots() >= wl_->warpsPerCta()) {
        const auto cta = sched_->nextCta(id_);
        if (!cta)
            break;
        const bool started = sms_[sm]->tryStartCta(cur_kernel_, *cta);
        carve_assert(started);
        ++live_ctas_;
    }
    maybeFinishKernel();
}

void
GpuNode::maybeFinishKernel()
{
    if (live_ctas_ == 0 && sched_ != nullptr &&
        sched_->remaining(id_) == 0 && kernel_done_cb_) {
        kernel_done_cb_(id_);
    }
}

bool
GpuNode::busy() const
{
    if (live_ctas_ > 0)
        return true;
    return sched_ != nullptr && sched_->remaining(id_) > 0;
}

std::uint64_t
GpuNode::instsIssued() const
{
    std::uint64_t total = 0;
    for (const auto &sm : sms_)
        total += sm->instsIssued();
    return total;
}

Cycle
GpuNode::kernelBoundary()
{
    for (auto &sm : sms_)
        sm->invalidateL1();

    if (trace::active(trace_, trace::Category::Coherence)) {
        trace_->instant(trace::Category::Coherence, coherence_track_,
                        "boundary_invalidate", eq_.now());
    }

    Cycle stall = 0;
    const bool hw_coherent = rdc_ &&
        (cfg_.rdc.coherence == RdcCoherence::HardwareVI ||
         cfg_.rdc.coherence == RdcCoherence::None);
    if (!hw_coherent) {
        // Software coherence: the LLC's remote lines are stale.
        l2_.invalidateRemote();
    }
    if (rdc_ && cfg_.rdc.coherence == RdcCoherence::Software)
        stall += rdc_->kernelBoundarySwc();
    return stall;
}

void
GpuNode::serviceRemoteRead(Addr line, Callback done)
{
    ++serviced_remote_reads_;
    mem_.access(line, AccessType::Read, done);
}

void
GpuNode::serviceRemoteWrite(Addr line)
{
    ++serviced_remote_writes_;
    mem_.access(line, AccessType::Write, Callback());
}

void
GpuNode::setAudit(audit::InflightTracker *tracker)
{
    audit_ = tracker;
    mem_.setAudit(tracker);
    if (rdc_)
        rdc_->setAudit(tracker);
}

void
GpuNode::invalidateLine(Addr line)
{
    ++hw_invalidations_in_;
    if (trace::active(trace_, trace::Category::Coherence)) {
        trace_->instant(trace::Category::Coherence, coherence_track_,
                        "hw_invalidate", eq_.now(), line);
    }
    l2_.invalidateLine(line);
    if (rdc_)
        rdc_->invalidateLine(line);
    for (auto &sm : sms_)
        sm->invalidateL1Line(line);
}

void
GpuNode::accessFromSm(Addr line, AccessType type, Callback done)
{
    if (audit_)
        audit_->issue(audit::Boundary::SmL2);
    // Resolve the read/write split here instead of inside the event:
    // both continuations then fit EventFn's inline storage, keeping
    // the hottest scheduling path in the machine allocation-free.
    if (isWrite(type)) {
        eq_.scheduleAfter(cfg_.core.l1_to_l2_latency,
                          bindEvent<&GpuNode::handleWrite>(this, line));
        return;
    }
    // (line, done) is a 40-byte payload — park it and bind the pool
    // handle so the event stays within EventFn's inline storage.
    const std::uint32_t parked = parked_misses_.alloc(
        ParkedMiss{line, done});
    eq_.scheduleAfter(cfg_.core.l1_to_l2_latency,
                      bindEvent<&GpuNode::arriveAtL2Parked>(this,
                                                           parked));
}

void
GpuNode::arriveAtL2Parked(std::uint32_t parked)
{
    const ParkedMiss miss = parked_misses_[parked];
    parked_misses_.free(parked);
    arriveAtL2(miss.line, miss.done);
}

void
GpuNode::arriveAtL2(Addr line, Callback done)
{
    if (audit_)
        audit_->retire(audit::Boundary::SmL2);
    if (l2_.readProbe(line)) {
        eq_.scheduleAfter(l2_.hitLatency(), done);
        return;
    }
    handleL2ReadMiss(line, done);
}

void
GpuNode::handleL2ReadMiss(Addr line, Callback done)
{
    // A full MSHR file cannot merge a new line: one stall episode
    // begins. Park the request in the pool and join the wake-list;
    // a completing fill drains us back in FIFO order — no polling.
    if (l2_mshrs_.full() && !l2_mshrs_.outstanding(line)) {
        ++l2_mshr_stalls_;
        const std::uint32_t parked =
            parked_misses_.alloc(ParkedMiss{line, done});
        l2_mshrs_.park(
            Completion::bind<&GpuNode::wakeL2Miss>(this, parked));
        return;
    }

    const MshrOutcome out = l2_mshrs_.allocate(line, done);
    carve_assert(out != MshrOutcome::Full);
    if (out == MshrOutcome::NewEntry) {
        if (audit_)
            audit_->issue(audit::Boundary::L2Fill);
        // Tag check latency before the fill heads off-chip/to DRAM.
        eq_.scheduleAfter(l2_.hitLatency(),
                          bindEvent<&GpuNode::startFill>(this, line));
    }
}

void
GpuNode::wakeL2Miss(std::uint32_t parked)
{
    const ParkedMiss miss = parked_misses_[parked];
    if (l2_mshrs_.full() && !l2_mshrs_.outstanding(miss.line)) {
        // Earlier waiters took every freed register: same episode,
        // keep the record and our wake-list position.
        l2_mshrs_.park(
            Completion::bind<&GpuNode::wakeL2Miss>(this, parked));
        return;
    }
    parked_misses_.free(parked);
    handleL2ReadMiss(miss.line, miss.done);
}

void
GpuNode::startFill(Addr line)
{
    // Routing is a pure read of the committed NUMA state; policy
    // actions (migrations, replicas, their bulk copies and stalls)
    // apply at the next window barrier.
    launchFill(line, pages_.route(line, id_, AccessType::Read,
                                  eq_.now()));
}

void
GpuNode::launchFill(Addr line, NodeId service)
{
    if (service == id_) {
        ++traffic_.local_reads;
        fabric_.coherenceLocalAccess(id_, line, AccessType::Read);
        mem_.access(line, AccessType::Read,
                    Completion::bind<&GpuNode::finishFill>(this, line,
                                                           false));
    } else if (service == cpu_node) {
        ++traffic_.cpu_reads;
        fabric_.cpuRead(id_, line,
                        Completion::bind<&GpuNode::finishFill>(
                            this, line, true));
    } else if (rdc_) {
        // CARVE: the RDC fields the remote read. Classify by what
        // actually happened (hit => local bandwidth).
        const bool was_resident = rdc_->contains(line);
        if (was_resident)
            ++traffic_.rdc_hit_reads;
        else
            ++traffic_.remote_reads;
        rdc_->read(service, line,
                   Completion::bind<&GpuNode::finishFill>(this, line,
                                                          true));
    } else {
        ++traffic_.remote_reads;
        fabric_.remoteRead(id_, service, line,
                           Completion::bind<&GpuNode::finishFill>(
                               this, line, true));
    }
}

void
GpuNode::finishFill(Addr line, bool remote)
{
    if (audit_)
        audit_->retire(audit::Boundary::L2Fill);
    if (!remote || cfg_.numa.llc_caches_remote)
        l2_.fill(line, remote);
    l2_mshrs_.complete(line);
}

void
GpuNode::handleWrite(Addr line)
{
    if (audit_)
        audit_->retire(audit::Boundary::SmL2);
    // Write-through LLC: update a resident copy, then propagate to
    // the service memory. Stores never block warps.
    l2_.writeProbe(line, false);
    deliverWrite(line, pages_.route(line, id_, AccessType::Write,
                                    eq_.now()));
}

void
GpuNode::deliverWrite(Addr line, NodeId service)
{
    if (service == id_) {
        ++traffic_.local_writes;
        mem_.access(line, AccessType::Write, Callback());
        fabric_.coherenceLocalAccess(id_, line, AccessType::Write);
    } else if (service == cpu_node) {
        ++traffic_.cpu_writes;
        fabric_.cpuWrite(id_, line);
    } else if (rdc_) {
        // Classify by where the data actually goes: a write-back
        // RDC absorbs the store locally until the boundary flush,
        // so counting it as NUMA write traffic double-charges.
        if (rdc_->absorbsWrites())
            ++traffic_.rdc_hit_writes;
        else
            ++traffic_.remote_writes;
        rdc_->write(service, line);
    } else {
        ++traffic_.remote_writes;
        fabric_.remoteWrite(id_, service, line);
    }
}

void
GpuNode::setTrace(trace::Session *session, std::uint32_t pid)
{
    trace_ = session;
    coherence_track_ = trace::makeTrack(pid, 120);

    session->defineProcess(pid, "gpu" + std::to_string(id_));
    for (std::size_t s = 0; s < sms_.size(); ++s) {
        const auto tid = static_cast<std::uint32_t>(1 + s);
        session->defineThread(pid, tid, "sm" + std::to_string(s));
        sms_[s]->setTrace(session, trace::makeTrack(pid, tid));
    }
    session->defineThread(pid, 100, "l2.mshr");
    l2_mshrs_.attachTrace(session, &eq_, trace::Category::Cache,
                          trace::makeTrack(pid, 100), "l2 miss");
    if (rdc_) {
        session->defineThread(pid, 110, "rdc");
        rdc_->setTrace(session, trace::makeTrack(pid, 110));
    }
    session->defineThread(pid, 120, "coherence");
    mem_.setTrace(session, pid);

    session->addCounter(pid, "l2_mshr_occupancy", [this] {
        return static_cast<double>(l2_mshrs_.size());
    });
    session->addCounter(pid, "dram_queue_occupancy", [this] {
        std::size_t total = 0;
        for (unsigned c = 0; c < mem_.numChannels(); ++c) {
            total += mem_.channel(c).readQueueSize() +
                mem_.channel(c).writeQueueSize();
        }
        return static_cast<double>(total);
    });
    if (rdc_) {
        session->addCounter(pid, "rdc_hit_rate", [this] {
            const double hits =
                static_cast<double>(rdc_->readHits());
            const double total =
                hits + static_cast<double>(rdc_->readMisses());
            return total == 0.0 ? 0.0 : hits / total;
        });
    }
}

void
GpuNode::enableTelemetry()
{
    telem_ = true;
    l2_mshrs_.attachTelemetry(&eq_, &l2_park_dur_, &l2_miss_life_);
    for (auto &sm : sms_)
        sm->enableTelemetry(&l1_park_dur_);
    if (rdc_)
        rdc_->enableTelemetry();
}

void
GpuNode::registerStats(stats::StatGroup &g)
{
    g.addScalar("hw_invalidations_in", &hw_invalidations_in_,
                "inbound hardware write-invalidates");
    g.addScalar("remote_serviced_reads", &serviced_remote_reads_,
                "inbound remote reads serviced by this home");
    g.addScalar("remote_serviced_writes", &serviced_remote_writes_,
                "inbound remote writes serviced by this home");
    g.addDerivedInt("insts_issued", [this] { return instsIssued(); },
                    "warp instructions issued across this GPU's SMs");

    const auto child = [&](const std::string &name,
                           stats::StatGroup *parent) {
        stat_groups_.push_back(
            std::make_unique<stats::StatGroup>(name, parent));
        return stat_groups_.back().get();
    };

    traffic_.registerStats(*child("traffic", &g));

    stats::StatGroup *l2g = child("l2", &g);
    l2_.registerStats(*l2g);
    l2g->addScalar("mshr_stalls", &l2_mshr_stalls_,
                   "stall episodes on a full L2 MSHR file");
    stats::StatGroup *l2mg = child("mshrs", l2g);
    l2_mshrs_.registerStats(*l2mg);
    if (telem_) {
        l2mg->addHistogram("park_duration", &l2_park_dur_,
                           "cycles reads waited parked on the full "
                           "L2 MSHR file");
        l2mg->addHistogram("miss_lifetime", &l2_miss_life_,
                           "cycles from L2 MSHR allocate to fill");
        child("l1_mshrs", &g)->addHistogram(
            "park_duration", &l1_park_dur_,
            "cycles reads waited parked on a full L1 MSHR file "
            "(pooled across this GPU's SMs)");
    }

    tlb_.registerStats(*child("tlb", &g));
    mem_.registerStats(*child("mem", &g));
    if (rdc_)
        rdc_->registerStats(*child("rdc", &g));
    for (std::size_t i = 0; i < sms_.size(); ++i)
        sms_[i]->registerStats(*child("sm" + std::to_string(i), &g));
}

} // namespace carve
