/**
 * @file
 * SystemFabric: everything a GPU node needs from the outside world
 * (remote memories, the CPU, coherence). Implemented by
 * MultiGpuSystem; mocked in unit tests.
 */

#ifndef CARVE_GPU_FABRIC_HH
#define CARVE_GPU_FABRIC_HH

#include <cstdint>

#include "common/completion.hh"
#include "common/types.hh"

namespace carve {

/**
 * Off-chip service interface of one GPU node.
 *
 * All read calls deliver data to the requester via the callback; all
 * write calls are posted. Coherence notifications happen inside the
 * fabric at the access's home node, so protocol logic lives in one
 * place regardless of which GPU initiated the access. Callbacks are
 * POD Completion delegates, so crossing the fabric never allocates.
 */
class SystemFabric
{
  public:
    using Callback = Completion;

    virtual ~SystemFabric() = default;

    /**
     * Read @p line from GPU @p home's memory on behalf of @p src.
     * Charges request + data link traffic and the home DRAM access;
     * fires IMST read tracking at the home.
     */
    virtual void remoteRead(NodeId src, NodeId home, Addr line,
                            Callback done) = 0;

    /**
     * Posted write-through of @p line to GPU @p home's memory.
     * Fires coherence write handling (possible invalidate broadcast)
     * when the write reaches the home.
     */
    virtual void remoteWrite(NodeId src, NodeId home, Addr line) = 0;

    /** Read @p line from CPU system memory (Unified Memory path). */
    virtual void cpuRead(NodeId src, Addr line, Callback done) = 0;

    /** Posted write of @p line to CPU system memory. */
    virtual void cpuWrite(NodeId src, Addr line) = 0;

    /**
     * Posted page-sized bulk transfer (migration / replication / UM
     * page move). @p src may be cpu_node.
     */
    virtual void bulkTransfer(NodeId src, NodeId dst,
                              std::uint64_t bytes) = 0;

    /**
     * Posted kernel-boundary flush of @p bytes of dirty RDC data from
     * GPU @p src to GPU @p home's memory (write-back RDC drain).
     */
    virtual void rdcFlush(NodeId src, NodeId home,
                          std::uint64_t bytes) = 0;

    /**
     * An access by @p home to its own memory reached the memory
     * controller: run coherence tracking (a local write may need to
     * invalidate remote copies of the line; a local read updates the
     * sharing tracker).
     */
    virtual void coherenceLocalAccess(NodeId home, Addr line,
                                      AccessType type) = 0;
};

} // namespace carve

#endif // CARVE_GPU_FABRIC_HH
