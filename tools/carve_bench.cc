/**
 * @file
 * carve-bench: simulator throughput measurement. Two layers:
 *
 *  1. Event-queue microbenchmark — a population of self-rescheduling
 *     actors drives millions of events through each engine (calendar
 *     and heap) and reports events/sec. This isolates the engine from
 *     the simulator, so the calendar-vs-heap ratio is the headline
 *     number of the event-engine rewrite.
 *  2. End-to-end preset x workload cells — full simulations timed on
 *     the host, reporting host-seconds, events/sec and warp-insts/sec
 *     per cell. Engine-scaling cells re-run the 4-GPU CARVE-HWC
 *     simulation under the parallel engine at 1/2/4 sim-threads
 *     (clamped to this host's cores); each produces the same result
 *     bytes as the serial cell, so the warp-insts/sec ratio is a pure
 *     intra-run speedup measurement.
 *
 * Results are written as a "carve-bench/v1" JSON file (default
 * BENCH_<date>.json). With --baseline the report is compared against
 * a committed bench file and the exit status gates only on a >
 * --fail-factor slowdown (default 2x) — loose on purpose, because
 * absolute host speed varies by machine; CI uses this as an
 * informational tripwire, not a tight perf lock.
 *
 * Examples:
 *   carve-bench --smoke --out bench.json
 *   carve-bench --baseline tests/data/bench_baseline.json --smoke
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <sys/resource.h>

#include "common/event_queue.hh"
#include "common/logging.hh"
#include "core/simulator.hh"
#include "harness/bench_io.hh"
#include "harness/results_io.hh"
#include "workloads/suite.hh"

// ---- allocation accounting (bench binary only) ---------------------
//
// Replacing the throwing global allocators in this TU rebinds every
// new/delete in the whole carve-bench binary (the nothrow and aligned
// non-throwing forms forward to these), so each cell can report how
// many heap allocations the simulation performed. The simulator
// libraries themselves carry no hook — only this tool pays for (and
// sees) the counter. delete stays count-free: the interesting figure
// is allocation traffic, and free-side accounting would double the
// atomic cost.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
} // namespace

// noinline keeps the replacements opaque at call sites; otherwise GCC
// inlines the free() into callers and raises a false-positive
// -Wmismatched-new-delete against the (not inlined) operator new.
#if defined(__GNUC__)
#define CARVE_ALLOC_FN __attribute__((noinline))
#else
#define CARVE_ALLOC_FN
#endif

CARVE_ALLOC_FN void *
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

CARVE_ALLOC_FN void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

CARVE_ALLOC_FN void *
operator new(std::size_t size, std::align_val_t al)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    std::size_t a = static_cast<std::size_t>(al);
    if (a < sizeof(void *))
        a = sizeof(void *);
    if (posix_memalign(&p, a, size ? size : a) != 0)
        throw std::bad_alloc();
    return p;
}

CARVE_ALLOC_FN void *
operator new[](std::size_t size, std::align_val_t al)
{
    return ::operator new(size, al);
}

CARVE_ALLOC_FN void
operator delete(void *p) noexcept
{
    std::free(p);
}
CARVE_ALLOC_FN void
operator delete[](void *p) noexcept
{
    std::free(p);
}
CARVE_ALLOC_FN void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
CARVE_ALLOC_FN void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
CARVE_ALLOC_FN void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
CARVE_ALLOC_FN void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
CARVE_ALLOC_FN void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
CARVE_ALLOC_FN void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace {

using namespace carve;
using harness::BenchReport;
using harness::CellResult;
using harness::MicroResult;

struct CliOptions
{
    bool smoke = false;
    bool micro_only = false;
    std::uint64_t micro_events = 5'000'000;
    std::string out_path;  ///< empty == BENCH_<date>.json
    std::string baseline_path;
    double fail_factor = 2.0;
};

void
usage()
{
    std::puts(
        "usage: carve-bench [options]\n"
        "\n"
        "  --smoke            small grid + short micro (CI-sized)\n"
        "  --micro-only       skip the end-to-end cells\n"
        "  --micro-events N   events per engine in the micro\n"
        "                     (default 5e6; --smoke uses 1e6)\n"
        "  --out FILE         output path (default BENCH_<date>.json)\n"
        "  --baseline FILE    compare against a bench file; exit 1\n"
        "                     only on a > fail-factor slowdown\n"
        "  --fail-factor X    slowdown gate (default 2.0)\n"
        "  --help             this text\n");
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions cli;
    const auto need = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            fatal("%s requires an argument", flag);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else if (a == "--smoke") {
            cli.smoke = true;
        } else if (a == "--micro-only") {
            cli.micro_only = true;
        } else if (a == "--micro-events") {
            cli.micro_events =
                std::stoull(need(i, "--micro-events"));
        } else if (a == "--out") {
            cli.out_path = need(i, "--out");
        } else if (a == "--baseline") {
            cli.baseline_path = need(i, "--baseline");
        } else if (a == "--fail-factor") {
            cli.fail_factor = std::stod(need(i, "--fail-factor"));
        } else {
            fatal("unknown flag '%s' (see --help)", a.c_str());
        }
    }
    return cli;
}

std::string
todayUtc()
{
    const std::time_t t = std::time(nullptr);
    char buf[16];
    std::strftime(buf, sizeof buf, "%Y-%m-%d", std::gmtime(&t));
    return buf;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * One self-rescheduling micro actor. Delays are a deterministic
 * LCG stream: mostly short (inside the calendar's near-horizon
 * ring), with one in 64 pushed past the horizon to exercise the
 * far-heap migration path. The callback is a pre-bound member
 * event, so steady state allocates nothing on either engine.
 */
struct Actor
{
    EventQueue *eq = nullptr;
    std::uint64_t state = 0;
    std::uint64_t fired = 0;

    void
    tick()
    {
        ++fired;
        state = state * 6364136223846793005ULL +
            1442695040888963407ULL;
        const std::uint64_t r = state >> 33;
        Cycle delta = 1 + (r % 197);
        if ((r & 63) == 0)
            delta += 4096;  // past the near-horizon ring
        eq->scheduleAfter(delta, bindEvent<&Actor::tick>(this));
    }
};

MicroResult
runMicro(EventEngine engine, const char *name,
         std::uint64_t target_events)
{
    constexpr std::size_t actors = 8192;

    EventQueue eq(engine);
    std::vector<Actor> pop(actors);
    for (std::size_t i = 0; i < actors; ++i) {
        pop[i].eq = &eq;
        pop[i].state = 0x9e3779b97f4a7c15ULL * (i + 1);
        eq.schedule(i % 128, bindEvent<&Actor::tick>(&pop[i]));
    }

    const auto start = std::chrono::steady_clock::now();
    eq.runWhile([&] { return eq.executed() < target_events; });
    const double secs = secondsSince(start);

    MicroResult m;
    m.name = name;
    m.events = eq.executed();
    m.seconds = secs;
    m.events_per_sec =
        secs > 0.0 ? static_cast<double>(m.events) / secs : 0.0;
    std::printf("micro %-18s %10llu events  %7.3fs  %11.0f ev/s\n",
                name, static_cast<unsigned long long>(m.events),
                m.seconds, m.events_per_sec);
    return m;
}

/** Peak resident set size of this process, in bytes. */
std::uint64_t
peakRssBytes()
{
    struct rusage ru = {};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // Linux reports ru_maxrss in kilobytes.
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

CellResult
runCell(const SimJob &job)
{
    const std::uint64_t allocs_before =
        g_allocations.load(std::memory_order_relaxed);
    const auto start = std::chrono::steady_clock::now();
    const SimResult r = run(job);
    const double secs = secondsSince(start);

    CellResult c;
    c.preset = r.preset;
    c.workload = r.workload;
    c.cycles = r.cycles;
    c.events = r.events;
    c.warp_insts = r.warp_insts;
    c.allocations = g_allocations.load(std::memory_order_relaxed) -
        allocs_before;
    c.peak_rss_bytes = peakRssBytes();
    c.host_seconds = secs;
    c.events_per_sec =
        secs > 0.0 ? static_cast<double>(r.events) / secs : 0.0;
    c.warp_insts_per_sec =
        secs > 0.0 ? static_cast<double>(r.warp_insts) / secs : 0.0;
    std::printf("cell  %-18s %-10s %7.3fs  %11.0f ev/s  "
                "%10.0f winst/s  %9llu allocs  %5.0f MiB rss\n",
                c.preset.c_str(), c.workload.c_str(),
                c.host_seconds, c.events_per_sec,
                c.warp_insts_per_sec,
                static_cast<unsigned long long>(c.allocations),
                static_cast<double>(c.peak_rss_bytes) /
                    (1024.0 * 1024.0));
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions cli = parseArgs(argc, argv);

    BenchReport rep;
    rep.date = todayUtc();
    rep.git_version = harness::gitDescribe();
    const char *env = std::getenv("CARVE_EVENTQ");
    rep.engine = env && *env ? env : "calendar";

    // ---- engine microbenchmark ------------------------------------
    const std::uint64_t micro_events =
        cli.smoke ? std::min<std::uint64_t>(cli.micro_events,
                                            1'000'000)
                  : cli.micro_events;
    const MicroResult cal = runMicro(EventEngine::Calendar,
                                     "eventq/calendar",
                                     micro_events);
    const MicroResult heap =
        runMicro(EventEngine::Heap, "eventq/heap", micro_events);
    rep.micro = {cal, heap};
    if (heap.events_per_sec > 0.0) {
        std::printf("micro eventq speedup: calendar is %.2fx heap\n",
                    cal.events_per_sec / heap.events_per_sec);
    }

    // ---- end-to-end cells -----------------------------------------
    if (!cli.micro_only) {
        SuiteOptions suite;
        suite.memory_scale = 8;
        suite.duration = cli.smoke ? 0.05 : 0.2;
        rep.memory_scale = suite.memory_scale;
        rep.duration = suite.duration;

        const std::vector<Preset> presets =
            cli.smoke
                ? std::vector<Preset>{Preset::NumaGpu,
                                      Preset::CarveHwc}
                : std::vector<Preset>{Preset::SingleGpu,
                                      Preset::NumaGpu,
                                      Preset::CarveHwc,
                                      Preset::Ideal};
        const std::vector<std::string> workloads =
            cli.smoke
                ? std::vector<std::string>{"Lulesh", "XSBench"}
                : std::vector<std::string>{"Lulesh", "XSBench",
                                           "HPGMG", "MiniAMR"};

        const SystemConfig base =
            SystemConfig{}.scaled(suite.memory_scale);
        RunOptions opts;
        opts.profile_lines = false;
        opts.max_cycles = 1'000'000'000;

        // Cells run serially: each host-seconds figure must not be
        // polluted by sibling runs competing for cores.
        for (const std::string &wl : workloads) {
            const WorkloadParams params = suiteWorkload(wl, suite);
            for (const Preset p : presets)
                rep.cells.push_back(runCell(
                    makePresetJob(p, base, params, opts)));
        }

        // Tracing-overhead cells. "trace-off" attaches a session but
        // masks every category and disables sampling, so it prices
        // the per-event enabled checks alone; the baseline compare
        // against the plain NUMA-GPU cell gates that cost. "trace-on"
        // records everything (no file written) as the worst case.
        const WorkloadParams lulesh = suiteWorkload("Lulesh", suite);
        SimJob off =
            makePresetJob(Preset::NumaGpu, base, lulesh, opts);
        off.preset_label = "NUMA-GPU+trace-off";
        off.options.trace.enabled = true;
        off.options.trace.categories = 0;
        off.options.trace.sample_interval = 0;
        rep.cells.push_back(runCell(off));

        SimJob on =
            makePresetJob(Preset::NumaGpu, base, lulesh, opts);
        on.preset_label = "NUMA-GPU+trace-on";
        on.options.trace.enabled = true;
        on.options.trace.categories = trace::all_categories;
        on.options.trace.buffer_capacity = std::size_t{1} << 20;
        on.options.trace.sample_interval = 1000;
        rep.cells.push_back(runCell(on));

        // Telemetry-overhead cell: every latency histogram armed
        // (MSHR park/miss lifetimes, link queue delay, remote-read
        // latency, engine self-profiling), no host timing. The plain
        // NUMA-GPU cell above is the denominator; the acceptance
        // budget for always-on telemetry is a few percent of
        // warp-insts/sec.
        SimJob telem =
            makePresetJob(Preset::NumaGpu, base, lulesh, opts);
        telem.preset_label = "NUMA-GPU+telem-on";
        telem.options.telemetry.enabled = true;
        rep.cells.push_back(runCell(telem));

        // MSHR-saturated cell: tiny L1/L2 files keep the wake-lists
        // hot for the whole run. Its events column prices the
        // park/drain discipline — a regression back toward retry
        // polling shows up as an order-of-magnitude events jump
        // against the baseline.
        SimJob sat =
            makePresetJob(Preset::NumaGpu, base, lulesh, opts);
        sat.preset_label = "NUMA-GPU+mshr-sat";
        sat.config.l1.mshrs = 4;
        sat.config.l2.mshrs = 8;
        rep.cells.push_back(runCell(sat));

        // Engine-scaling cells: the 4-GPU CARVE-HWC cell re-run with
        // the per-GPU event domains on 1/2/4 worker threads. The
        // serial cell above is the denominator; thread counts this
        // host cannot supply are skipped (run() refuses
        // oversubscription), so baselines only gate cells both
        // machines produced.
        const unsigned hw = std::thread::hardware_concurrency();
        for (const unsigned n : {1u, 2u, 4u}) {
            if (hw != 0 && n > hw)
                continue;
            SimJob par =
                makePresetJob(Preset::CarveHwc, base, lulesh, opts);
            par.preset_label =
                "CARVE-HWC+par" + std::to_string(n);
            par.options.engine = SimEngine::Parallel;
            par.options.sim_threads = n;
            rep.cells.push_back(runCell(par));

            // The same cell with full telemetry plus host-clock
            // barrier-wait timing: the difference against the plain
            // par<N> cell prices the engine's self-profiling, and a
            // --telemetry-host-timing run of this shape is how
            // ROADMAP's barrier-overhead question gets its numbers
            // (engine.barrier_wait_ns in the stat tree).
            SimJob part =
                makePresetJob(Preset::CarveHwc, base, lulesh, opts);
            part.preset_label =
                "CARVE-HWC+par" + std::to_string(n) + "+telem";
            part.options.engine = SimEngine::Parallel;
            part.options.sim_threads = n;
            part.options.telemetry.enabled = true;
            part.options.telemetry.host_timing = true;
            rep.cells.push_back(runCell(part));
        }
    }

    // ---- write + gate ---------------------------------------------
    const std::string out = cli.out_path.empty()
        ? "BENCH_" + rep.date + ".json"
        : cli.out_path;
    harness::writeResultsFile(out, benchToJson(rep));
    std::printf("carve-bench: wrote %s\n", out.c_str());

    if (!cli.baseline_path.empty()) {
        const BenchReport baseline =
            harness::readBenchFile(cli.baseline_path);
        const auto deltas =
            harness::compareBench(baseline, rep, cli.fail_factor);
        std::fputs(
            harness::formatBenchCompare(deltas, cli.fail_factor)
                .c_str(),
            stdout);
        if (harness::benchHasRegression(deltas))
            return 1;
    }
    return 0;
}
