/**
 * @file
 * carve-top: terminal dashboard for a running carve-served daemon.
 *
 * Speaks the NDJSON protocol's "metrics" op, which answers with a
 * Prometheus text-exposition dump of every live counter (see
 * Server::metricsPrometheus()), and renders it as a compact status
 * panel: queue and in-flight gauges, job and cache counters, and the
 * job-latency distribution. One-shot by default; --watch redraws in
 * place until interrupted; --raw prints the Prometheus text verbatim
 * (for piping into a scrape validator or file).
 *
 * Examples:
 *   carve-top --socket /tmp/carve.sock
 *   carve-top --socket /tmp/carve.sock --watch --interval 1
 *   carve-top --socket /tmp/carve.sock --raw > metrics.prom
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "service/client.hh"

namespace {

using namespace carve;

struct CliOptions
{
    std::string socket_path = "carve-served.sock";
    bool watch = false;
    double interval = 2.0;
    bool raw = false;
};

void
usage()
{
    std::puts(
        "usage: carve-top [options]\n"
        "\n"
        "  --socket PATH   carve-served socket to scrape (default\n"
        "                  carve-served.sock)\n"
        "  --watch         redraw every --interval seconds until\n"
        "                  interrupted\n"
        "  --interval S    refresh period for --watch (default 2)\n"
        "  --raw           print the Prometheus text dump verbatim\n"
        "                  instead of the panel\n"
        "  --help          this text\n");
}

/**
 * Parsed form of one Prometheus dump: plain samples by family name,
 * histogram buckets by family name as (le, cumulative count) pairs.
 * Comment lines ("# HELP", "# TYPE") are skipped; this only needs to
 * read back what Server::metricsPrometheus() writes.
 */
struct Metrics
{
    std::unordered_map<std::string, double> values;
    std::unordered_map<std::string,
                       std::vector<std::pair<double, double>>>
        buckets;

    double
    value(const std::string &family) const
    {
        const auto it = values.find(family);
        return it == values.end() ? 0.0 : it->second;
    }
};

Metrics
parseMetrics(const std::string &text)
{
    Metrics m;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t sp = line.rfind(' ');
        if (sp == std::string::npos)
            continue;
        const std::string name = line.substr(0, sp);
        const double val = std::strtod(line.c_str() + sp + 1,
                                       nullptr);
        const std::size_t brace = name.find('{');
        if (brace == std::string::npos) {
            m.values[name] = val;
            continue;
        }
        // Only one label is ever emitted: le="..." on buckets.
        // Strip the "_bucket" suffix so buckets file under the
        // family name the panel looks up.
        std::string family = name.substr(0, brace);
        constexpr const char *suffix = "_bucket";
        const std::size_t slen = 7;
        if (family.size() > slen &&
            family.compare(family.size() - slen, slen, suffix) == 0)
            family.resize(family.size() - slen);
        const std::size_t q1 = name.find('"', brace);
        const std::size_t q2 =
            q1 == std::string::npos ? std::string::npos
                                    : name.find('"', q1 + 1);
        if (q2 == std::string::npos)
            continue;
        const std::string le = name.substr(q1 + 1, q2 - q1 - 1);
        const double bound =
            le == "+Inf" ? std::numeric_limits<double>::infinity()
                         : std::strtod(le.c_str(), nullptr);
        m.buckets[family].emplace_back(bound, val);
    }
    return m;
}

/** Smallest bucket bound whose cumulative count covers @p pct
 * percent of the samples; 0 when the histogram is empty. */
double
bucketPercentile(
    const std::vector<std::pair<double, double>> &buckets,
    double pct)
{
    if (buckets.empty())
        return 0.0;
    const double total = buckets.back().second;
    if (total <= 0.0)
        return 0.0;
    const double target = total * pct / 100.0;
    for (const auto &[le, cum] : buckets) {
        if (cum >= target)
            return le;
    }
    return buckets.back().first;
}

std::string
formatSeconds(double s)
{
    char buf[64];
    if (s >= 3600.0) {
        std::snprintf(buf, sizeof(buf), "%.1fh", s / 3600.0);
    } else if (s >= 60.0) {
        std::snprintf(buf, sizeof(buf), "%.1fm", s / 60.0);
    } else if (s >= 1.0) {
        std::snprintf(buf, sizeof(buf), "%.1fs", s);
    } else {
        std::snprintf(buf, sizeof(buf), "%.0fms", s * 1000.0);
    }
    return buf;
}

void
renderPanel(const std::string &socket, const Metrics &m)
{
    const double completed = m.value("carve_jobs_completed_total");
    std::printf("carve-served @ %s — up %s, %u worker thread(s)%s\n",
                socket.c_str(),
                formatSeconds(m.value("carve_uptime_seconds"))
                    .c_str(),
                static_cast<unsigned>(
                    m.value("carve_worker_threads")),
                m.value("carve_draining") != 0.0 ? ", DRAINING"
                                                 : "");
    std::printf(
        "jobs     queued %-6.0f in-flight %-6.0f submitted %-8.0f"
        "completed %-8.0ffailed %-6.0f cancelled %.0f\n",
        m.value("carve_jobs_queued"),
        m.value("carve_jobs_in_flight"),
        m.value("carve_jobs_submitted_total"), completed,
        m.value("carve_jobs_failed_total"),
        m.value("carve_jobs_cancelled_total"));
    std::printf(
        "cache    %-7s hits %-9.0f misses %-7.0f stores %-7.0f "
        "evicted %-6.0f %.1f MiB in %.0f entries\n",
        m.value("carve_cache_enabled") != 0.0 ? "on" : "off",
        m.value("carve_cache_hits_total"),
        m.value("carve_cache_misses_total"),
        m.value("carve_cache_stores_total"),
        m.value("carve_cache_evictions_total"),
        m.value("carve_cache_bytes") / (1024.0 * 1024.0),
        m.value("carve_cache_entries"));
    std::printf(
        "clients  connections %-6.0f memo hits %-6.0f queue limit "
        "%.0f\n",
        m.value("carve_connections_total"),
        m.value("carve_memo_hits_total"),
        m.value("carve_queue_depth_limit"));

    const auto it = m.buckets.find("carve_job_latency_seconds");
    if (it != m.buckets.end() && completed > 0.0) {
        const double mean =
            m.value("carve_job_latency_seconds_sum") / completed;
        std::printf(
            "latency  mean %-8s p50 <= %-8s p95 <= %-8s "
            "p99 <= %s\n",
            formatSeconds(mean).c_str(),
            formatSeconds(bucketPercentile(it->second, 50.0))
                .c_str(),
            formatSeconds(bucketPercentile(it->second, 95.0))
                .c_str(),
            formatSeconds(bucketPercentile(it->second, 99.0))
                .c_str());
    } else {
        std::printf("latency  no completed runs yet\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    const auto need = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            fatal("%s requires an argument", flag);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--socket") {
            cli.socket_path = need(i, "--socket");
        } else if (a == "--watch") {
            cli.watch = true;
        } else if (a == "--interval") {
            cli.interval =
                std::strtod(need(i, "--interval").c_str(), nullptr);
            if (cli.interval <= 0.0)
                fatal("--interval: expected a positive number of "
                      "seconds");
        } else if (a == "--raw") {
            cli.raw = true;
        } else {
            fatal("unknown flag '%s' (see --help)", a.c_str());
        }
    }

    auto client = service::Client::connect(cli.socket_path);
    if (!client)
        fatal("no carve-served daemon answering on '%s'",
              cli.socket_path.c_str());

    while (true) {
        const std::string text = client->metrics();
        if (text.empty())
            fatal("carve-top: daemon at '%s' stopped answering",
                  cli.socket_path.c_str());
        if (cli.raw) {
            std::fputs(text.c_str(), stdout);
        } else {
            if (cli.watch)
                std::fputs("\033[H\033[2J", stdout);  // home+clear
            renderPanel(cli.socket_path, parseMetrics(text));
        }
        std::fflush(stdout);
        if (!cli.watch)
            break;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(cli.interval));
    }
    return 0;
}
