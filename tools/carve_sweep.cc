/**
 * @file
 * carve-sweep: expand a preset x workload x seed grid, execute it on
 * the parallel experiment harness, write structured JSON results, and
 * optionally gate against a baseline results file.
 *
 * Examples:
 *   carve-sweep --fig13 --threads 4 --out fig13.json
 *   carve-sweep --presets NUMA-GPU,CARVE-HWC --workloads Lulesh,HPGMG
 *   carve-sweep --baseline old.json --compare new.json --tolerance 0.03
 *
 * Exit status: 0 on success; 1 when any run failed/tripped its
 * watchdog or the baseline comparison found a regression; fatal
 * errors (bad flags, unreadable files) also exit 1.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "core/report.hh"
#include "trace/trace.hh"
#include "harness/fuzz.hh"
#include "harness/results_io.hh"
#include "harness/sweep.hh"
#include "harness/thread_pool.hh"
#include "service/client.hh"
#include "workloads/suite.hh"

namespace {

using namespace carve;
using namespace carve::harness;

struct CliOptions
{
    std::vector<std::string> presets;
    std::vector<std::string> workloads;
    std::vector<std::uint64_t> seeds{1};
    unsigned scale = 8;
    double duration = 0.2;
    bool duration_set = false;
    unsigned threads = 0;  ///< 0 == all hardware threads
    Cycle max_cycles = 1'000'000'000;
    double max_wall_seconds = 0.0;
    std::string server_path;  ///< carve-served socket; empty == local
    bool profile_lines = false;
    bool audit = false;
    unsigned fuzz = 0;  ///< 0 == grid mode
    std::uint64_t fuzz_seed = 1;
    std::vector<std::string> overrides;
    std::string out_path;
    std::string baseline_path;
    std::string compare_path;
    double tolerance = 0.05;
    bool trace = false;
    bool telemetry = false;
    bool telemetry_host_timing = false;
    std::string trace_categories = "all";
    std::string trace_out = "traces";
    std::uint64_t trace_capacity = 0;         ///< 0 == library default
    std::uint64_t trace_sample_interval = 0;  ///< 0 == library default
    bool trace_sample_interval_set = false;
    bool host_stats = true;
    bool quiet = false;
    bool list_presets = false;
    bool list_workloads = false;
    bool list_overrides = false;
};

void
usage()
{
    std::puts(
        "usage: carve-sweep [options]\n"
        "\n"
        "grid selection:\n"
        "  --presets a,b,... | all   presets to run (default: the\n"
        "                            Figure 13 set)\n"
        "  --fig13                   alias for the Figure 13 preset\n"
        "                            grid (1-GPU, NUMA-GPU, +Repl-RO,\n"
        "                            CARVE-HWC, Ideal)\n"
        "  --workloads a,b,... | all workloads (default: all 20)\n"
        "  --seeds n,m,...           trace seeds (default: 1)\n"
        "\n"
        "configuration:\n"
        "  --scale N                 capacity divisor (default 8)\n"
        "  --duration X              trace-length multiplier\n"
        "                            (default 0.2)\n"
        "  --set key=value           config override (repeatable)\n"
        "  --profile-lines           line-granularity sharing stats\n"
        "\n"
        "auditing:\n"
        "  --audit                   run every grid point with the\n"
        "                            carve-audit conservation checker\n"
        "                            (a violation fails the run)\n"
        "  --fuzz N                  instead of a grid, draw N random\n"
        "                            valid configs x workloads from\n"
        "                            the override registry and run\n"
        "                            them short and audited\n"
        "  --fuzz-seed S             fuzz campaign seed (default 1)\n"
        "\n"
        "execution:\n"
        "  --threads N               sweep worker threads, i.e. how\n"
        "                            many runs execute concurrently\n"
        "                            (0 = all cores; default 0)\n"
        "  --engine serial|parallel  intra-run engine: per-GPU event\n"
        "                            domains executed serially or on\n"
        "                            a thread pool (default serial;\n"
        "                            sugar for --set engine=...)\n"
        "  --sim-threads N           worker threads per run when\n"
        "                            --engine parallel (sugar for\n"
        "                            --set sim_threads=N); results\n"
        "                            are byte-identical at any value\n"
        "  --max-cycles N            per-run cycle watchdog\n"
        "                            (default 1e9; 0 = unlimited)\n"
        "  --max-wall-seconds S      per-run wall watchdog\n"
        "                            (default off)\n"
        "  --server SOCKET           submit runs to a carve-served\n"
        "                            daemon instead of simulating\n"
        "                            in-process (falls back to local\n"
        "                            execution if unreachable);\n"
        "                            repeated identical runs come\n"
        "                            back from the daemon's result\n"
        "                            cache without re-simulating\n"
        "\n"
        "telemetry:\n"
        "  --telemetry               record latency histograms (MSHR\n"
        "                            park/miss lifetimes, link queue\n"
        "                            delay, remote-read latency) and\n"
        "                            engine self-profiling counters\n"
        "                            into the stat tree; deterministic\n"
        "                            across --sim-threads values\n"
        "  --telemetry-host-timing   also time parallel-engine barrier\n"
        "                            waits with the host clock\n"
        "                            (implies --telemetry; makes the\n"
        "                            engine.barrier_wait_ns stats\n"
        "                            host-dependent)\n"
        "\n"
        "tracing:\n"
        "  --trace                   write one Chrome trace-event\n"
        "                            JSON timeline per run (open in\n"
        "                            Perfetto / chrome://tracing)\n"
        "  --trace-categories a,b    category mask: sm, cache, rdc,\n"
        "                            dram, link, coherence, kernel,\n"
        "                            audit, all (default all)\n"
        "  --trace-out DIR           trace directory (default\n"
        "                            'traces', created if missing)\n"
        "  --trace-capacity N        ring capacity in events\n"
        "                            (default 1M; overflow drops\n"
        "                            oldest-first)\n"
        "  --trace-sample-interval N cycles between counter samples\n"
        "                            (default 1000; 0 disables)\n"
        "\n"
        "results:\n"
        "  --out FILE                write JSON results\n"
        "  --no-host-stats           omit sim.wall_seconds and\n"
        "                            sim.peak_rss_bytes so results\n"
        "                            are byte-reproducible\n"
        "  --baseline FILE           gate against FILE; candidate is\n"
        "                            this sweep, or --compare FILE\n"
        "  --compare FILE            diff --baseline vs FILE without\n"
        "                            running anything\n"
        "  --tolerance T             relative gate (default 0.05)\n"
        "\n"
        "misc:\n"
        "  --list                    list presets and workloads\n"
        "  --list-presets            list preset names only\n"
        "  --list-workloads          list workload names only\n"
        "  --list-overrides          list every --set key with its\n"
        "                            default value\n"
        "  --quiet                   suppress per-run progress\n"
        "  --help                    this text\n");
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t comma = s.find(',', start);
        const std::string tok = s.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        if (!tok.empty())
            out.push_back(tok);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

std::uint64_t
parseU64(const std::string &flag, const std::string &v)
{
    try {
        std::size_t used = 0;
        const std::uint64_t out = std::stoull(v, &used);
        if (used == v.size())
            return out;
    } catch (...) {
    }
    fatal("%s: expected an unsigned integer, got '%s'",
          flag.c_str(), v.c_str());
}

double
parseDouble(const std::string &flag, const std::string &v)
{
    try {
        std::size_t used = 0;
        const double out = std::stod(v, &used);
        if (used == v.size())
            return out;
    } catch (...) {
    }
    fatal("%s: expected a number, got '%s'", flag.c_str(),
          v.c_str());
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions cli;
    const auto need = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            fatal("%s requires an argument", flag);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else if (a == "--presets") {
            cli.presets = splitList(need(i, "--presets"));
        } else if (a == "--fig13") {
            cli.presets = {"1-GPU", "NUMA-GPU", "NUMA-GPU+Repl-RO",
                           "CARVE-HWC", "Ideal-NUMA-GPU"};
        } else if (a == "--workloads") {
            cli.workloads = splitList(need(i, "--workloads"));
        } else if (a == "--seeds") {
            cli.seeds.clear();
            for (const auto &s : splitList(need(i, "--seeds")))
                cli.seeds.push_back(parseU64("--seeds", s));
            if (cli.seeds.empty())
                fatal("--seeds: empty list");
        } else if (a == "--scale") {
            cli.scale = static_cast<unsigned>(
                parseU64("--scale", need(i, "--scale")));
        } else if (a == "--duration") {
            cli.duration =
                parseDouble("--duration", need(i, "--duration"));
            cli.duration_set = true;
        } else if (a == "--audit") {
            cli.audit = true;
        } else if (a == "--fuzz") {
            cli.fuzz = static_cast<unsigned>(
                parseU64("--fuzz", need(i, "--fuzz")));
            if (cli.fuzz == 0)
                fatal("--fuzz: expected a positive count");
        } else if (a == "--fuzz-seed") {
            cli.fuzz_seed =
                parseU64("--fuzz-seed", need(i, "--fuzz-seed"));
        } else if (a == "--threads") {
            cli.threads = static_cast<unsigned>(
                parseU64("--threads", need(i, "--threads")));
        } else if (a == "--engine") {
            // Sugar for the registered config override, so the
            // choice lands in results metadata and served job keys
            // exactly like any other --set.
            cli.overrides.push_back("engine=" +
                                    need(i, "--engine"));
        } else if (a == "--sim-threads") {
            cli.overrides.push_back(
                "sim_threads=" +
                std::to_string(parseU64("--sim-threads",
                                        need(i, "--sim-threads"))));
        } else if (a == "--max-cycles") {
            cli.max_cycles =
                parseU64("--max-cycles", need(i, "--max-cycles"));
        } else if (a == "--max-wall-seconds") {
            cli.max_wall_seconds = parseDouble(
                "--max-wall-seconds", need(i, "--max-wall-seconds"));
        } else if (a == "--server") {
            cli.server_path = need(i, "--server");
        } else if (a == "--set") {
            cli.overrides.push_back(need(i, "--set"));
        } else if (a == "--profile-lines") {
            cli.profile_lines = true;
        } else if (a == "--telemetry") {
            cli.telemetry = true;
        } else if (a == "--telemetry-host-timing") {
            cli.telemetry = true;
            cli.telemetry_host_timing = true;
        } else if (a == "--trace") {
            cli.trace = true;
        } else if (a == "--trace-categories") {
            cli.trace_categories = need(i, "--trace-categories");
        } else if (a == "--trace-out") {
            cli.trace_out = need(i, "--trace-out");
        } else if (a == "--trace-capacity") {
            cli.trace_capacity = parseU64("--trace-capacity",
                                          need(i, "--trace-capacity"));
            if (cli.trace_capacity == 0)
                fatal("--trace-capacity: expected a positive count");
        } else if (a == "--trace-sample-interval") {
            cli.trace_sample_interval =
                parseU64("--trace-sample-interval",
                         need(i, "--trace-sample-interval"));
            cli.trace_sample_interval_set = true;
        } else if (a == "--no-host-stats") {
            cli.host_stats = false;
        } else if (a == "--out") {
            cli.out_path = need(i, "--out");
        } else if (a == "--baseline") {
            cli.baseline_path = need(i, "--baseline");
        } else if (a == "--compare") {
            cli.compare_path = need(i, "--compare");
        } else if (a == "--tolerance") {
            cli.tolerance =
                parseDouble("--tolerance", need(i, "--tolerance"));
        } else if (a == "--list") {
            cli.list_presets = true;
            cli.list_workloads = true;
        } else if (a == "--list-presets") {
            cli.list_presets = true;
        } else if (a == "--list-workloads") {
            cli.list_workloads = true;
        } else if (a == "--list-overrides") {
            cli.list_overrides = true;
        } else if (a == "--quiet") {
            cli.quiet = true;
        } else {
            fatal("unknown flag '%s' (see --help)", a.c_str());
        }
    }
    return cli;
}

/** Per-run progress printer: status line plus elapsed wall time and a
 * running ETA extrapolated from the mean time per finished run. */
std::function<void(std::size_t, std::size_t, const RunResult &)>
makeProgress()
{
    const auto start = std::chrono::steady_clock::now();
    return [start](std::size_t done, std::size_t total,
                   const RunResult &r) {
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        const double eta = done == 0
            ? 0.0
            : elapsed / static_cast<double>(done) *
                static_cast<double>(total - done);
        std::fprintf(stderr,
                     "[%zu/%zu] %-8s %s (%.2fs) "
                     "[elapsed %.1fs, eta %.1fs]\n",
                     done, total, runStatusName(r.status),
                     r.key().c_str(), r.wall_seconds, elapsed, eta);
    };
}

/**
 * Execute @p specs on a carve-served daemon: submit ahead as far as
 * the server's queue allows, then collect records in spec order so
 * the assembled results (and any --out file) are byte-identical to
 * in-process execution. nullopt when the daemon is unreachable.
 */
std::optional<std::vector<RunResult>>
runViaServer(const std::vector<RunSpec> &specs, const CliOptions &cli)
{
    auto client = service::Client::connect(cli.server_path);
    if (!client)
        return std::nullopt;

    std::fprintf(stderr,
                 "carve-sweep: %zu runs via carve-served at %s "
                 "(%u server thread(s))\n",
                 specs.size(), cli.server_path.c_str(),
                 client->serverThreads());

    const auto progress = cli.quiet
        ? std::function<void(std::size_t, std::size_t,
                             const RunResult &)>{}
        : makeProgress();

    std::vector<std::string> ids(specs.size());
    std::vector<RunResult> results(specs.size());
    std::size_t next_submit = 0;  ///< first spec not yet submitted
    std::size_t next_fetch = 0;   ///< first spec not yet collected

    while (next_fetch < specs.size()) {
        // Submit ahead until the grid is in or the queue pushes back.
        while (next_submit < specs.size()) {
            const service::SubmitReply reply = client->submit(
                service::jobFromRunSpec(specs[next_submit]));
            if (reply.ok) {
                ids[next_submit] = reply.id;
                ++next_submit;
                continue;
            }
            if (!reply.retriable) {
                fatal("carve-sweep: server rejected %s: %s",
                      specs[next_submit].key().c_str(),
                      reply.error.c_str());
            }
            if (next_fetch < next_submit)
                break;  // queue full: drain one of ours first
            // Queue full with nothing of ours outstanding: another
            // client owns the queue; wait for it to drain a little.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }

        service::ResultReply res = client->result(ids[next_fetch]);
        if (!res.ok) {
            fatal("carve-sweep: server lost %s: %s",
                  specs[next_fetch].key().c_str(),
                  res.error.c_str());
        }
        results[next_fetch] = std::move(res.run);
        // Server-side execution time; 0 for cache hits. Display
        // only -- wall time is never serialised into results files.
        results[next_fetch].wall_seconds = res.wall_seconds;
        ++next_fetch;
        if (progress)
            progress(next_fetch, specs.size(),
                     results[next_fetch - 1]);
    }
    return results;
}

/** Run @p specs via --server when set (with in-process fallback),
 * locally otherwise. @p telemetry (may be null) is filled only for
 * local execution — served runs burn their wall time daemon-side. */
std::vector<RunResult>
executeSpecs(const std::vector<RunSpec> &specs, const CliOptions &cli,
             SweepTelemetry *telemetry)
{
    if (!cli.server_path.empty()) {
        auto served = runViaServer(specs, cli);
        if (served)
            return std::move(*served);
        warn("carve-sweep: no carve-served daemon at '%s'; "
             "running in-process",
             cli.server_path.c_str());
    }
    SweepOptions sweep;
    sweep.threads = cli.threads;
    sweep.telemetry = telemetry;
    if (!cli.quiet)
        sweep.on_progress = makeProgress();
    return runSweep(specs, sweep);
}

/** Render harness telemetry as the flat "harness" results member
 * (dotted keys, mirroring the flattened stat-tree spelling). */
json::Value
harnessJson(const SweepTelemetry &t)
{
    json::Members m;
    for (std::size_t w = 0; w < t.workers.size(); ++w) {
        const std::string prefix =
            "worker." + std::to_string(w) + ".";
        m.emplace_back(prefix + "jobs_run",
                       json::Value{t.workers[w].jobs_run});
        m.emplace_back(prefix + "numa_node",
                       json::Value{t.workers[w].numa_node});
    }
    const telemetry::Histogram &h = t.job_wall_us;
    m.emplace_back("job_wall_us.count", json::Value{h.count()});
    m.emplace_back("job_wall_us.max", json::Value{h.max()});
    m.emplace_back("job_wall_us.p50", json::Value{h.percentile(50)});
    m.emplace_back("job_wall_us.p95", json::Value{h.percentile(95)});
    m.emplace_back("job_wall_us.p99", json::Value{h.percentile(99)});
    m.emplace_back("job_wall_us.sum", json::Value{h.sum()});
    return json::Value{std::move(m)};
}

int
compareMode(const CliOptions &cli)
{
    const auto baseline =
        resultsFromJson(readResultsFile(cli.baseline_path));
    const auto candidate =
        resultsFromJson(readResultsFile(cli.compare_path));
    const CompareReport rep =
        compareResults(baseline, candidate, cli.tolerance);
    std::fputs(formatCompareReport(rep, cli.tolerance).c_str(),
               stdout);
    if (rep.compared_runs == 0) {
        std::fprintf(stderr,
                     "carve-sweep: error: '%s' and '%s' have no runs "
                     "in common; nothing was compared\n",
                     cli.baseline_path.c_str(),
                     cli.compare_path.c_str());
        return 1;
    }
    return rep.hasRegression() ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions cli = parseArgs(argc, argv);

    if (cli.list_overrides) {
        // Each line is a ready-made --set argument carrying the
        // Table III default for that key.
        for (const auto &ov : SystemConfig{}.toOverrides())
            std::printf("%s=%s\n", ov.key.c_str(),
                        ov.value.c_str());
        return 0;
    }

    if (cli.list_presets || cli.list_workloads) {
        // With a single --list-* flag, print bare names (one per
        // line, shell-friendly); --list keeps the headed format.
        const bool both = cli.list_presets && cli.list_workloads;
        if (cli.list_presets) {
            if (both)
                std::puts("presets:");
            for (const Preset p : allPresets())
                std::printf(both ? "  %s\n" : "%s\n", presetName(p));
        }
        if (cli.list_workloads) {
            if (both)
                std::puts("workloads:");
            for (const auto &n : suiteNames())
                std::printf(both ? "  %s\n" : "%s\n", n.c_str());
        }
        return 0;
    }

    if (!cli.compare_path.empty()) {
        if (cli.baseline_path.empty())
            fatal("--compare requires --baseline");
        return compareMode(cli);
    }

    if (cli.trace && !cli.server_path.empty())
        fatal("--trace cannot be combined with --server: trace files "
              "would be written on the daemon side");

    if (cli.telemetry && !cli.server_path.empty())
        fatal("--telemetry cannot be combined with --server: served "
              "job specs do not carry telemetry options (scrape the "
              "daemon's own metrics with carve-top instead)");

    // Read the baseline up-front: a missing or unparsable file must
    // fail the invocation immediately, not after the whole sweep has
    // been simulated.
    std::vector<RunResult> baseline;
    if (!cli.baseline_path.empty()) {
        baseline =
            resultsFromJson(readResultsFile(cli.baseline_path));
        if (baseline.empty())
            fatal("--baseline: '%s' contains no runs to gate "
                  "against", cli.baseline_path.c_str());
    }

    // ---- fuzz mode -------------------------------------------------
    if (cli.fuzz > 0) {
        FuzzOptions fopt;
        fopt.count = cli.fuzz;
        fopt.seed = cli.fuzz_seed;
        fopt.memory_scale = cli.scale;
        if (cli.duration_set)
            fopt.duration = cli.duration;
        fopt.max_cycles = cli.max_cycles;
        if (cli.max_wall_seconds > 0.0)
            fopt.max_wall_seconds = cli.max_wall_seconds;

        const std::vector<FuzzSpec> fuzzes = makeFuzzSpecs(fopt);
        std::fprintf(stderr,
                     "carve-sweep: fuzz campaign, %u audited runs "
                     "(seed %llu); reproduce any line with --presets/"
                     "--workloads/--seeds/--set --audit:\n",
                     cli.fuzz,
                     static_cast<unsigned long long>(cli.fuzz_seed));
        std::vector<RunSpec> specs;
        specs.reserve(fuzzes.size());
        for (const FuzzSpec &f : fuzzes) {
            std::fprintf(stderr, "  %s\n", f.describe().c_str());
            specs.push_back(f.spec);
            specs.back().host_stats = cli.host_stats;
        }

        SweepTelemetry fuzz_telemetry;
        const std::vector<RunResult> results = executeSpecs(
            specs, cli,
            cli.host_stats ? &fuzz_telemetry : nullptr);

        unsigned bad = 0;
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (!results[i].ok()) {
                ++bad;
                std::fprintf(stderr,
                             "carve-sweep: fuzz failure: %s: %s (%s)\n",
                             fuzzes[i].describe().c_str(),
                             runStatusName(results[i].status),
                             results[i].error.c_str());
            }
        }

        if (!cli.out_path.empty()) {
            SweepMeta meta;
            meta.memory_scale = cli.scale;
            meta.duration = fopt.duration;
            for (const FuzzSpec &f : fuzzes)
                for (const std::string &o : f.overrides)
                    meta.overrides.push_back(o);
            if (cli.host_stats && !fuzz_telemetry.workers.empty())
                meta.harness = harnessJson(fuzz_telemetry);
            writeResultsFile(cli.out_path,
                             sweepToJson(meta, results));
            std::fprintf(stderr,
                         "carve-sweep: wrote %s (%zu runs)\n",
                         cli.out_path.c_str(), results.size());
        }
        return bad ? 1 : 0;
    }

    // ---- build the grid -------------------------------------------
    SuiteOptions suite;
    suite.memory_scale = cli.scale;
    suite.duration = cli.duration;

    std::vector<Preset> presets;
    if (cli.presets.empty() ||
        (cli.presets.size() == 1 && cli.presets[0] == "all")) {
        if (cli.presets.empty()) {
            // Default: the Figure 13 headline grid.
            presets = {Preset::SingleGpu, Preset::NumaGpu,
                       Preset::NumaGpuReplRO, Preset::CarveHwc,
                       Preset::Ideal};
        } else {
            presets = allPresets();
        }
    } else {
        for (const auto &name : cli.presets)
            presets.push_back(parsePresetName(name));
    }

    std::vector<WorkloadParams> workloads;
    if (cli.workloads.empty() ||
        (cli.workloads.size() == 1 && cli.workloads[0] == "all")) {
        workloads = standardSuite(suite);
    } else {
        for (const auto &name : cli.workloads)
            workloads.push_back(suiteWorkload(name, suite));
    }

    SystemConfig base = SystemConfig{}.scaled(cli.scale);
    for (const auto &ov : cli.overrides) {
        const std::size_t eq = ov.find('=');
        if (eq == std::string::npos)
            fatal("--set: expected key=value, got '%s'", ov.c_str());
        base.applyOverride(ov.substr(0, eq), ov.substr(eq + 1));
    }

    RunOptions opts;
    opts.max_cycles = cli.max_cycles;
    opts.max_wall_seconds = cli.max_wall_seconds;
    opts.profile_lines = cli.profile_lines;
    opts.audit = cli.audit;
    opts.telemetry.enabled = cli.telemetry;
    opts.telemetry.host_timing = cli.telemetry_host_timing;

    if (cli.trace) {
        opts.trace.enabled = true;
        opts.trace.categories =
            trace::parseCategoryList(cli.trace_categories);
        opts.trace.out_dir = cli.trace_out;
        if (cli.trace_capacity != 0)
            opts.trace.buffer_capacity = cli.trace_capacity;
        if (cli.trace_sample_interval_set)
            opts.trace.sample_interval = cli.trace_sample_interval;
        std::error_code ec;
        std::filesystem::create_directories(cli.trace_out, ec);
        if (ec) {
            fatal("--trace-out: cannot create '%s': %s",
                  cli.trace_out.c_str(), ec.message().c_str());
        }
    }

    std::vector<RunSpec> specs =
        expandGrid(presets, workloads, cli.seeds, base, opts);
    for (RunSpec &s : specs)
        s.host_stats = cli.host_stats;

    // ---- execute ---------------------------------------------------
    std::fprintf(stderr,
                 "carve-sweep: %zu runs (%zu presets x %zu workloads "
                 "x %zu seeds), %u thread(s)\n",
                 specs.size(), presets.size(), workloads.size(),
                 cli.seeds.size(),
                 cli.threads == 0 ? ThreadPool::hardwareThreads()
                                  : cli.threads);

    SweepTelemetry sweep_telemetry;
    const std::vector<RunResult> results = executeSpecs(
        specs, cli, cli.host_stats ? &sweep_telemetry : nullptr);

    unsigned bad = 0;
    for (const auto &r : results) {
        if (!r.ok()) {
            ++bad;
            std::fprintf(stderr, "carve-sweep: %s: %s (%s)\n",
                         r.key().c_str(), runStatusName(r.status),
                         r.error.c_str());
        }
    }

    // ---- report ----------------------------------------------------
    SweepMeta meta;
    meta.memory_scale = cli.scale;
    meta.duration = cli.duration;
    meta.overrides = cli.overrides;
    // Worker-load facts are host-dependent, so they ride the same
    // opt-out as sim.wall_seconds: --no-host-stats keeps results
    // byte-reproducible. Served sweeps leave the record empty.
    if (cli.host_stats && !sweep_telemetry.workers.empty())
        meta.harness = harnessJson(sweep_telemetry);
    const json::Value doc = sweepToJson(meta, results);

    if (!cli.out_path.empty()) {
        writeResultsFile(cli.out_path, doc);
        std::fprintf(stderr, "carve-sweep: wrote %s (%zu runs)\n",
                     cli.out_path.c_str(), results.size());
    } else {
        // No file requested: emit the document on stdout (progress
        // goes to stderr, so piping stays clean).
        std::fputs(doc.dump().c_str(), stdout);
    }

    int status = bad ? 1 : 0;
    if (!cli.baseline_path.empty()) {
        const CompareReport rep =
            compareResults(baseline, results, cli.tolerance);
        std::fputs(formatCompareReport(rep, cli.tolerance).c_str(),
                   stdout);
        if (rep.compared_runs == 0) {
            std::fprintf(stderr,
                         "carve-sweep: error: no run in '%s' matches "
                         "this sweep; the gate compared nothing\n",
                         cli.baseline_path.c_str());
            status = 1;
        } else if (rep.hasRegression()) {
            status = 1;
        }
    }
    return status;
}
