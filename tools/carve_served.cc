/**
 * @file
 * carve-served: persistent simulation daemon for the experiment
 * harness. Accepts SimJob submissions over a unix-domain socket
 * (NDJSON protocol, see src/service/protocol.hh), executes them on
 * the harness thread pool with the same per-run isolation as
 * carve-sweep, and memoizes completed runs in a content-addressed
 * on-disk cache so identical resubmissions return byte-identical
 * results without re-simulating.
 *
 * Examples:
 *   carve-served --socket /tmp/carve.sock --cache-dir /tmp/carve-cache
 *   carve-sweep --server /tmp/carve.sock --fig13 --out fig13.json
 *   carve-served --socket /tmp/carve.sock --stats
 *
 * SIGTERM/SIGINT request a graceful drain: stop accepting work, let
 * every queued and running job finish, answer all waiting clients,
 * remove the socket, exit 0.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "service/client.hh"
#include "service/server.hh"

namespace {

using namespace carve;
using namespace carve::service;

void
usage()
{
    std::puts(
        "usage: carve-served [options]\n"
        "\n"
        "  --socket PATH         unix socket to listen on (default\n"
        "                        carve-served.sock); removed on exit\n"
        "  --threads N           simulation worker threads\n"
        "                        (0 = all cores; default 0)\n"
        "  --cache-dir DIR       on-disk result cache directory\n"
        "                        (default carve-cache; '' disables)\n"
        "  --cache-budget-mb N   cache byte budget in MiB, LRU\n"
        "                        eviction (default 512; 0 = unlimited)\n"
        "  --queue-depth N       max queued jobs before submits are\n"
        "                        bounced as retriable (default 1024)\n"
        "  --stats               query a running daemon's stats on\n"
        "                        --socket, print them, and exit\n"
        "  --quiet               suppress per-job status lines\n"
        "  --help                this text\n");
}

std::uint64_t
parseU64(const char *flag, const std::string &v)
{
    try {
        std::size_t used = 0;
        const std::uint64_t out = std::stoull(v, &used);
        if (used == v.size())
            return out;
    } catch (...) {
    }
    fatal("%s: expected an unsigned integer, got '%s'", flag,
          v.c_str());
}

Server *g_server = nullptr;

void
onSignal(int)
{
    if (g_server != nullptr)
        g_server->requestDrain();
}

} // namespace

int
main(int argc, char **argv)
{
    Server::Options opt;
    bool stats_mode = false;

    const auto need = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            fatal("%s requires an argument", flag);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--socket") {
            opt.socket_path = need(i, "--socket");
        } else if (a == "--threads") {
            opt.threads = static_cast<unsigned>(
                parseU64("--threads", need(i, "--threads")));
        } else if (a == "--cache-dir") {
            opt.cache_dir = need(i, "--cache-dir");
        } else if (a == "--cache-budget-mb") {
            opt.cache_budget =
                parseU64("--cache-budget-mb",
                         need(i, "--cache-budget-mb")) *
                1024 * 1024;
        } else if (a == "--queue-depth") {
            opt.queue_depth = static_cast<std::size_t>(
                parseU64("--queue-depth", need(i, "--queue-depth")));
            if (opt.queue_depth == 0)
                fatal("--queue-depth: expected a positive count");
        } else if (a == "--stats") {
            stats_mode = true;
        } else if (a == "--quiet") {
            opt.quiet = true;
        } else {
            fatal("unknown flag '%s' (see --help)", a.c_str());
        }
    }

    if (stats_mode) {
        auto client = Client::connect(opt.socket_path);
        if (!client)
            fatal("no carve-served daemon answering on '%s'",
                  opt.socket_path.c_str());
        const json::Value stats = client->stats();
        std::puts(stats.dump().c_str());
        return 0;
    }

    Server server(opt);
    g_server = &server;

    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    // Writes to a connection that a client abandoned must surface as
    // EPIPE errors, not process death.
    std::signal(SIGPIPE, SIG_IGN);

    server.serve();
    g_server = nullptr;
    return 0;
}
