/**
 * @file
 * carve-trace: offline analysis of the Chrome trace-event JSON files
 * written by carve-sweep --trace (trace/chrome_export.cc). Three
 * reports, all derived from the span timeline:
 *
 *   - the top-N longest miss lifetimes (L2 and RDC MSHR spans), the
 *     first place to look when a preset's memory latency regresses;
 *   - per-kernel link-busy fractions: how much of each kernel's
 *     lifetime each NUMA link spent occupied — the timeline view of
 *     the paper's bandwidth arguments;
 *   - a per-row gap/overlap report: busy coverage, idle gaps and
 *     overlapping spans per timeline row, which doubles as a sanity
 *     check on the instrumentation itself.
 *
 * Usage: carve-trace FILE [--top N]
 * Exit status: 0 on success, 1 on unreadable/malformed input.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "harness/json.hh"

namespace {

using namespace carve;

/** One ph="X" row pulled out of traceEvents. */
struct Span
{
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    std::uint64_t ts = 0;
    std::uint64_t dur = 0;
    std::uint64_t arg = 0;
    std::string name;
    std::string cat;
};

struct TraceDoc
{
    std::map<std::uint32_t, std::string> process_names;
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::string>
        thread_names;
    std::vector<Span> spans;
    std::string workload;
    std::string preset;
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
};

std::string
rowName(const TraceDoc &doc, std::uint32_t pid, std::uint32_t tid)
{
    const auto p = doc.process_names.find(pid);
    std::string out = p == doc.process_names.end()
        ? "pid" + std::to_string(pid) : p->second;
    const auto t = doc.thread_names.find({pid, tid});
    out += "/";
    out += t == doc.thread_names.end()
        ? "tid" + std::to_string(tid) : t->second;
    return out;
}

TraceDoc
loadTrace(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("carve-trace: cannot open '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();

    const json::Value doc = json::parse(buf.str(), path);
    if (!doc.at("traceEvents").isArray())
        fatal("carve-trace: '%s' has no traceEvents array",
              path.c_str());

    TraceDoc out;
    const json::Value &other = doc.at("otherData");
    if (other.isObject()) {
        if (other.has("workload"))
            out.workload = other.at("workload").asString();
        if (other.has("preset"))
            out.preset = other.at("preset").asString();
        if (other.has("recorded_events")) {
            out.recorded = static_cast<std::uint64_t>(
                other.at("recorded_events").asInt());
        }
        if (other.has("dropped_events")) {
            out.dropped = static_cast<std::uint64_t>(
                other.at("dropped_events").asInt());
        }
    }

    for (const json::Value &ev : doc.at("traceEvents").asArray()) {
        const std::string &ph = ev.at("ph").asString();
        const auto pid =
            static_cast<std::uint32_t>(ev.at("pid").asInt());
        const auto tid = ev.has("tid")
            ? static_cast<std::uint32_t>(ev.at("tid").asInt()) : 0u;
        if (ph == "M") {
            const std::string &kind = ev.at("name").asString();
            const json::Value &name = ev.at("args").at("name");
            if (!name.isString())
                continue;
            if (kind == "process_name")
                out.process_names[pid] = name.asString();
            else if (kind == "thread_name")
                out.thread_names[{pid, tid}] = name.asString();
        } else if (ph == "X") {
            Span s;
            s.pid = pid;
            s.tid = tid;
            s.ts = static_cast<std::uint64_t>(ev.at("ts").asInt());
            s.dur = static_cast<std::uint64_t>(ev.at("dur").asInt());
            s.name = ev.at("name").asString();
            if (ev.at("cat").isString())
                s.cat = ev.at("cat").asString();
            if (ev.at("args").has("v")) {
                s.arg = static_cast<std::uint64_t>(
                    ev.at("args").at("v").asInt());
            }
            out.spans.push_back(std::move(s));
        }
    }
    return out;
}

void
reportMissLifetimes(const TraceDoc &doc, std::size_t top_n)
{
    std::vector<const Span *> misses;
    for (const Span &s : doc.spans) {
        if (s.cat == "cache" || s.cat == "rdc")
            misses.push_back(&s);
    }
    std::printf("miss lifetimes (%zu L2/RDC spans):\n",
                misses.size());
    if (misses.empty())
        return;
    std::sort(misses.begin(), misses.end(),
              [](const Span *a, const Span *b) {
                  if (a->dur != b->dur)
                      return a->dur > b->dur;
                  return a->ts < b->ts;
              });
    const std::size_t n = std::min(top_n, misses.size());
    for (std::size_t i = 0; i < n; ++i) {
        const Span &s = *misses[i];
        std::printf("  %2zu. %8llu cycles  %-9s %-18s "
                    "at %llu (line 0x%llx)\n",
                    i + 1,
                    static_cast<unsigned long long>(s.dur),
                    s.name.c_str(),
                    rowName(doc, s.pid, s.tid).c_str(),
                    static_cast<unsigned long long>(s.ts),
                    static_cast<unsigned long long>(s.arg));
    }
}

/** Cycles of [ts, ts+dur) falling inside [lo, hi). */
std::uint64_t
overlapWith(const Span &s, std::uint64_t lo, std::uint64_t hi)
{
    const std::uint64_t a = std::max(s.ts, lo);
    const std::uint64_t b = std::min(s.ts + s.dur, hi);
    return b > a ? b - a : 0;
}

void
reportLinkBusy(const TraceDoc &doc)
{
    std::vector<const Span *> kernels;
    for (const Span &s : doc.spans) {
        if (s.cat == "kernel" && s.pid == 0)
            kernels.push_back(&s);
    }
    std::sort(kernels.begin(), kernels.end(),
              [](const Span *a, const Span *b) {
                  return a->ts < b->ts;
              });

    std::printf("\nper-kernel link-busy fractions:\n");
    if (kernels.empty()) {
        std::printf("  (no kernel spans; enable the 'kernel' "
                    "category)\n");
        return;
    }

    for (const Span *k : kernels) {
        const std::uint64_t lo = k->ts, hi = k->ts + k->dur;
        // Busy cycles per link row over this kernel's lifetime.
        std::map<std::pair<std::uint32_t, std::uint32_t>,
                 std::uint64_t> busy;
        for (const Span &s : doc.spans) {
            if (s.cat != "link")
                continue;
            busy[{s.pid, s.tid}] += overlapWith(s, lo, hi);
        }
        std::printf("  %s [%llu, %llu) dur %llu:\n", k->name.c_str(),
                    static_cast<unsigned long long>(lo),
                    static_cast<unsigned long long>(hi),
                    static_cast<unsigned long long>(k->dur));
        if (busy.empty()) {
            std::printf("    (no link spans; enable the 'link' "
                        "category)\n");
            continue;
        }
        for (const auto &[row, cycles] : busy) {
            const double frac = k->dur == 0
                ? 0.0
                : static_cast<double>(cycles) /
                    static_cast<double>(k->dur);
            std::printf("    %-28s %10llu busy  %6.2f%%\n",
                        rowName(doc, row.first, row.second).c_str(),
                        static_cast<unsigned long long>(cycles),
                        100.0 * frac);
        }
    }
}

void
reportGapsOverlaps(const TraceDoc &doc)
{
    std::map<std::pair<std::uint32_t, std::uint32_t>,
             std::vector<const Span *>> rows;
    for (const Span &s : doc.spans)
        rows[{s.pid, s.tid}].push_back(&s);

    std::printf("\nper-row gap/overlap report (span rows only):\n");
    if (rows.empty()) {
        std::printf("  (no spans recorded)\n");
        return;
    }
    std::printf("  %-28s %7s %12s %12s %12s %9s\n", "row", "spans",
                "busy", "gap", "overlap", "coverage");
    for (auto &[row, spans] : rows) {
        std::sort(spans.begin(), spans.end(),
                  [](const Span *a, const Span *b) {
                      if (a->ts != b->ts)
                          return a->ts < b->ts;
                      return a->dur > b->dur;
                  });
        std::uint64_t busy = 0, gap = 0, overlap = 0;
        std::uint64_t cursor = spans.front()->ts;
        for (const Span *s : spans) {
            busy += s->dur;
            if (s->ts > cursor)
                gap += s->ts - cursor;
            else
                overlap += std::min(cursor - s->ts, s->dur);
            cursor = std::max(cursor, s->ts + s->dur);
        }
        const std::uint64_t extent = cursor - spans.front()->ts;
        const double coverage = extent == 0
            ? 0.0
            : static_cast<double>(busy) /
                static_cast<double>(extent);
        std::printf("  %-28s %7zu %12llu %12llu %12llu %8.2f%%\n",
                    rowName(doc, row.first, row.second).c_str(),
                    spans.size(),
                    static_cast<unsigned long long>(busy),
                    static_cast<unsigned long long>(gap),
                    static_cast<unsigned long long>(overlap),
                    100.0 * coverage);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    std::size_t top_n = 10;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            std::puts("usage: carve-trace FILE [--top N]\n"
                      "\n"
                      "Analyse a Chrome trace-event JSON file written "
                      "by carve-sweep --trace:\n"
                      "top-N longest L2/RDC miss lifetimes, "
                      "per-kernel link-busy fractions,\n"
                      "and a per-row gap/overlap report.\n"
                      "\n"
                      "  --top N   miss lifetimes to list "
                      "(default 10)");
            return 0;
        } else if (a == "--top") {
            if (i + 1 >= argc)
                fatal("--top requires an argument");
            top_n = static_cast<std::size_t>(
                std::stoull(argv[++i]));
        } else if (!a.empty() && a[0] == '-') {
            fatal("unknown flag '%s' (see --help)", a.c_str());
        } else if (path.empty()) {
            path = a;
        } else {
            fatal("more than one input file given");
        }
    }
    if (path.empty())
        fatal("usage: carve-trace FILE [--top N]");

    const TraceDoc doc = loadTrace(path);
    std::printf("%s: workload %s, preset %s, %llu events recorded",
                path.c_str(),
                doc.workload.empty() ? "?" : doc.workload.c_str(),
                doc.preset.empty() ? "?" : doc.preset.c_str(),
                static_cast<unsigned long long>(doc.recorded));
    if (doc.dropped > 0) {
        std::printf(", %llu DROPPED (oldest-first; raise "
                    "--trace-capacity)",
                    static_cast<unsigned long long>(doc.dropped));
    }
    std::printf("\n\n");

    reportMissLifetimes(doc, top_n);
    reportLinkBusy(doc);
    reportGapsOverlaps(doc);
    return 0;
}
