/** @file Unit tests for the NUMA runtime: page table, placement,
 * migration, replication, unified memory and the PageManager facade. */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "numa/page_manager.hh"

namespace carve {
namespace {

SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.num_gpus = 4;
    cfg.dram.capacity = 64 * MiB;  // 32 pages per GPU
    cfg.rdc.enabled = false;
    return cfg;
}

// ---- page table -----------------------------------------------------

TEST(PageTable, EntriesLazilyCreatedUnmapped)
{
    const SystemConfig cfg = smallConfig();
    PageTable t(cfg);
    EXPECT_EQ(t.find(0x1000), nullptr);
    PageEntry &e = t.entry(0x1000);
    EXPECT_EQ(e.home, invalid_node);
    EXPECT_NE(t.find(0x1000), nullptr);
    EXPECT_EQ(t.mappedPages(), 1u);
}

TEST(PageTable, PageOfMasksOffset)
{
    const SystemConfig cfg = smallConfig();
    PageTable t(cfg);
    EXPECT_EQ(t.pageOf(2 * MiB + 12345), 2 * MiB);
    // Same page => same entry.
    t.entry(2 * MiB + 1).home = 3;
    EXPECT_EQ(t.entry(2 * MiB + 2 * MiB - 1).home, 3u);
}

TEST(PageTable, CapacityAccountsRdcCarveOut)
{
    SystemConfig cfg = smallConfig();
    PageTable without(cfg);
    cfg.rdc.enabled = true;
    cfg.rdc.size = 32 * MiB;
    PageTable with(cfg);
    EXPECT_EQ(without.capacityPages(0), 32u);
    EXPECT_EQ(with.capacityPages(0), 16u);
}

TEST(PageTable, CapacityPressureCountsReplicas)
{
    const SystemConfig cfg = smallConfig();
    PageTable t(cfg);
    t.addHomedPage(0);
    t.addHomedPage(1);
    EXPECT_DOUBLE_EQ(t.capacityPressure(), 1.0);
    t.addReplica(2);
    t.addReplica(3);
    EXPECT_DOUBLE_EQ(t.capacityPressure(), 2.0);
    t.removeReplica(2);
    EXPECT_DOUBLE_EQ(t.capacityPressure(), 1.5);
}

TEST(PageTable, LocalAtChecksHomeAndReplicas)
{
    PageEntry e;
    e.home = 1;
    EXPECT_TRUE(e.localAt(1));
    EXPECT_FALSE(e.localAt(2));
    e.replica_mask = 1u << 2;
    EXPECT_TRUE(e.localAt(2));
}

// ---- placement ------------------------------------------------------

TEST(Placement, FirstTouchReturnsToucher)
{
    NumaConfig cfg;
    cfg.placement = PlacementPolicy::FirstTouch;
    Placement p(cfg, 4, 1);
    EXPECT_EQ(p.firstTouch(0, 2), 2u);
    EXPECT_EQ(p.firstTouch(2 * MiB, 0), 0u);
}

TEST(Placement, RoundRobinCycles)
{
    NumaConfig cfg;
    cfg.placement = PlacementPolicy::RoundRobin;
    Placement p(cfg, 4, 1);
    EXPECT_EQ(p.firstTouch(0, 3), 0u);
    EXPECT_EQ(p.firstTouch(0, 3), 1u);
    EXPECT_EQ(p.firstTouch(0, 3), 2u);
    EXPECT_EQ(p.firstTouch(0, 3), 3u);
    EXPECT_EQ(p.firstTouch(0, 3), 0u);
}

TEST(Placement, SpillFractionRoughlyHonored)
{
    NumaConfig cfg;
    cfg.spill_fraction = 0.25;
    Placement p(cfg, 4, 7);
    unsigned spilled = 0;
    const unsigned n = 4000;
    for (unsigned i = 0; i < n; ++i) {
        if (p.firstTouch(static_cast<Addr>(i) * 2 * MiB, 0) ==
                cpu_node)
            ++spilled;
    }
    EXPECT_NEAR(static_cast<double>(spilled) / n, 0.25, 0.03);
}

TEST(Placement, SpillIsDeterministicPerPage)
{
    NumaConfig cfg;
    cfg.spill_fraction = 0.5;
    Placement a(cfg, 4, 7), b(cfg, 4, 7);
    for (unsigned i = 0; i < 100; ++i) {
        const Addr page = static_cast<Addr>(i) * 2 * MiB;
        EXPECT_EQ(a.firstTouch(page, 0) == cpu_node,
                  b.firstTouch(page, 1) == cpu_node);
    }
}

// ---- migration ------------------------------------------------------

struct MigrationFixture : public ::testing::Test
{
    MigrationFixture() : cfg(smallConfig()), table(cfg)
    {
        cfg.numa.migration = true;
        cfg.numa.migration_threshold = 8;
    }

    PageEntry &
    mappedPage(NodeId home)
    {
        PageEntry &e = table.entry(0);
        e.home = home;
        table.addHomedPage(home);
        return e;
    }

    SystemConfig cfg;
    PageTable table;
};

TEST_F(MigrationFixture, DominantRemoteAccessorTriggersMigration)
{
    MigrationEngine m(cfg.numa, table);
    PageEntry &e = mappedPage(0);
    bool migrated = false;
    for (int i = 0; i < 16 && !migrated; ++i) {
        ++e.access_counts[1];
        migrated = m.maybeMigrate(e, 1);
    }
    EXPECT_TRUE(migrated);
    EXPECT_EQ(e.home, 1u);
    EXPECT_EQ(m.migrations(), 1u);
    EXPECT_EQ(table.homedPages(1), 1u);
    EXPECT_EQ(table.homedPages(0), 0u);
    // Counters reset after the move.
    EXPECT_EQ(e.access_counts[1], 0u);
}

TEST_F(MigrationFixture, SharedPageNeverMigrates)
{
    MigrationEngine m(cfg.numa, table);
    PageEntry &e = mappedPage(0);
    // Node 1 and node 2 both hammer the page: neither dominates 4:1.
    for (int i = 0; i < 64; ++i) {
        ++e.access_counts[1];
        ++e.access_counts[2];
        EXPECT_FALSE(m.maybeMigrate(e, 1));
        EXPECT_FALSE(m.maybeMigrate(e, 2));
    }
    EXPECT_EQ(e.home, 0u);
}

TEST_F(MigrationFixture, DisabledPolicyNeverMigrates)
{
    cfg.numa.migration = false;
    MigrationEngine m(cfg.numa, table);
    PageEntry &e = mappedPage(0);
    e.access_counts[1] = 1000;
    EXPECT_FALSE(m.maybeMigrate(e, 1));
}

TEST_F(MigrationFixture, CpuResidentPagesAreUmsProblem)
{
    MigrationEngine m(cfg.numa, table);
    PageEntry &e = table.entry(0);
    e.home = cpu_node;
    e.access_counts[1] = 1000;
    EXPECT_FALSE(m.maybeMigrate(e, 1));
}

// ---- replication ----------------------------------------------------

struct ReplicationFixture : public ::testing::Test
{
    ReplicationFixture() : cfg(smallConfig()), table(cfg)
    {
        cfg.numa.replication = ReplicationPolicy::ReadOnly;
    }

    PageEntry &
    mappedPage(NodeId home)
    {
        PageEntry &e = table.entry(0);
        e.home = home;
        table.addHomedPage(home);
        return e;
    }

    SystemConfig cfg;
    PageTable table;
};

TEST_F(ReplicationFixture, ReadOnlyPageReplicates)
{
    ReplicationManager r(cfg.numa, table);
    PageEntry &e = mappedPage(0);
    EXPECT_TRUE(r.maybeReplicate(e, 2));
    EXPECT_TRUE(e.localAt(2));
    EXPECT_EQ(table.replicaPages(2), 1u);
    // Idempotent for an existing replica holder.
    EXPECT_FALSE(r.maybeReplicate(e, 2));
    EXPECT_EQ(r.replications(), 1u);
}

TEST_F(ReplicationFixture, WrittenPageNeverReplicates)
{
    ReplicationManager r(cfg.numa, table);
    PageEntry &e = mappedPage(0);
    e.written = true;
    EXPECT_FALSE(r.maybeReplicate(e, 2));
}

TEST_F(ReplicationFixture, WriteCollapsesAllReplicasForever)
{
    ReplicationManager r(cfg.numa, table);
    PageEntry &e = mappedPage(0);
    r.maybeReplicate(e, 1);
    r.maybeReplicate(e, 2);
    EXPECT_TRUE(r.onWrite(e, 3));
    EXPECT_EQ(e.replica_mask, 0u);
    EXPECT_TRUE(e.collapsed);
    EXPECT_EQ(table.replicaPages(1), 0u);
    EXPECT_EQ(r.collapses(), 1u);
    // Never replicated again.
    EXPECT_FALSE(r.maybeReplicate(e, 1));
}

TEST_F(ReplicationFixture, CapacityExhaustionSkipsReplication)
{
    ReplicationManager r(cfg.numa, table);
    PageEntry &e = mappedPage(0);
    // Fill node 2's memory.
    for (std::uint64_t i = 0; i < table.capacityPages(2); ++i)
        table.addHomedPage(2);
    EXPECT_FALSE(r.maybeReplicate(e, 2));
    EXPECT_EQ(r.capacitySkips(), 1u);
}

TEST_F(ReplicationFixture, AllPolicyReplicatesWrittenPagesToo)
{
    cfg.numa.replication = ReplicationPolicy::All;
    ReplicationManager r(cfg.numa, table);
    PageEntry &e = mappedPage(0);
    e.written = true;
    EXPECT_TRUE(r.maybeReplicate(e, 3));
    EXPECT_FALSE(r.onWrite(e, 1));  // ideal never collapses
    EXPECT_TRUE(e.localAt(3));
}

TEST_F(ReplicationFixture, NonePolicyDoesNothing)
{
    cfg.numa.replication = ReplicationPolicy::None;
    ReplicationManager r(cfg.numa, table);
    PageEntry &e = mappedPage(0);
    EXPECT_FALSE(r.maybeReplicate(e, 1));
}

// ---- unified memory -------------------------------------------------

TEST(UnifiedMemory, HotSpilledPageMigratesIn)
{
    SystemConfig cfg = smallConfig();
    cfg.numa.um_migration_threshold = 4;
    PageTable table(cfg);
    UnifiedMemory um(cfg.numa, table);
    PageEntry &e = table.entry(0);
    e.home = cpu_node;
    EXPECT_FALSE(um.onAccess(e, 1));
    EXPECT_FALSE(um.onAccess(e, 1));
    EXPECT_FALSE(um.onAccess(e, 1));
    EXPECT_TRUE(um.onAccess(e, 1));
    EXPECT_EQ(e.home, 1u);
    EXPECT_EQ(um.migrationsIn(), 1u);
    EXPECT_EQ(table.homedPages(1), 1u);
}

TEST(UnifiedMemory, FullGpuMemoryKeepsPageSpilled)
{
    SystemConfig cfg = smallConfig();
    cfg.numa.um_migration_threshold = 1;
    PageTable table(cfg);
    UnifiedMemory um(cfg.numa, table);
    for (std::uint64_t i = 0; i < table.capacityPages(1); ++i)
        table.addHomedPage(1);
    PageEntry &e = table.entry(0);
    e.home = cpu_node;
    EXPECT_FALSE(um.onAccess(e, 1));
    EXPECT_EQ(e.home, cpu_node);
}

// ---- page manager facade --------------------------------------------
//
// The facade is windowed: recordAccess()/route() run mid-window and
// are pure w.r.t. shared state; policy actions (first touch,
// migration, replication, UM pull-in) land at commitWindow().

TEST(PageManager, FirstTouchCommitsAtTheBarrier)
{
    SystemConfig cfg = smallConfig();
    PageManager pm(cfg);
    pm.recordAccess(0x1000, 2, AccessType::Read, 0);
    // Routable immediately via the tentative home...
    EXPECT_EQ(pm.route(0x1000, 2, AccessType::Read, 0), 2u);
    // ...but committed (visible to homeOf/isLocal) only at the barrier.
    EXPECT_EQ(pm.homeOf(0x1000), invalid_node);
    pm.commitWindow(1);
    EXPECT_EQ(pm.homeOf(0x1000), 2u);
    EXPECT_TRUE(pm.isLocal(0x1000, 2));
    EXPECT_EQ(pm.firstTouches(), 1u);
}

TEST(PageManager, RemoteAccessRoutesToHome)
{
    SystemConfig cfg = smallConfig();
    PageManager pm(cfg);
    pm.recordAccess(0x1000, 0, AccessType::Read, 0);
    pm.commitWindow(1);
    pm.recordAccess(0x1000, 3, AccessType::Read, 1);
    EXPECT_EQ(pm.route(0x1000, 3, AccessType::Read, 1), 0u);
}

TEST(PageManager, IdealPolicyMakesEverythingLocal)
{
    SystemConfig cfg = smallConfig();
    cfg.numa.replication = ReplicationPolicy::All;
    PageManager pm(cfg);
    pm.recordAccess(0x1000, 0, AccessType::Write, 0);
    pm.recordAccess(0x1000, 3, AccessType::Write, 0);
    EXPECT_EQ(pm.route(0x1000, 3, AccessType::Write, 0), 3u);
    pm.commitWindow(1);
    EXPECT_EQ(pm.route(0x1000, 3, AccessType::Write, 1), 3u);
}

TEST(PageManager, ReadOnlyReplicationChargesCopyThenGoesLocal)
{
    SystemConfig cfg = smallConfig();
    cfg.numa.replication = ReplicationPolicy::ReadOnly;
    PageManager pm(cfg);
    pm.recordAccess(0x1000, 0, AccessType::Read, 0);
    pm.commitWindow(1);

    // Remote read: serviced at the home this window; the barrier
    // replays it, replicates the page and charges the copy.
    pm.recordAccess(0x1000, 1, AccessType::Read, 1);
    EXPECT_EQ(pm.route(0x1000, 1, AccessType::Read, 1), 0u);
    unsigned charges = 0;
    NodeId copy_src = invalid_node, copy_dst = invalid_node;
    pm.commitWindow(2, [&](NodeId src, NodeId dst) {
        ++charges;
        copy_src = src;
        copy_dst = dst;
    });
    EXPECT_EQ(charges, 1u);
    EXPECT_EQ(copy_src, 0u);
    EXPECT_EQ(copy_dst, 1u);
    // Replica hit from the next window on.
    EXPECT_EQ(pm.route(0x1000, 1, AccessType::Read, 2), 1u);
}

TEST(PageManager, WriteCollapsesReplicasAndOpensAStallWindow)
{
    SystemConfig cfg = smallConfig();
    cfg.numa.replication = ReplicationPolicy::ReadOnly;
    PageManager pm(cfg);
    pm.recordAccess(0x1000, 0, AccessType::Read, 0);
    pm.commitWindow(1);
    pm.recordAccess(0x1000, 1, AccessType::Read, 1);
    pm.route(0x1000, 1, AccessType::Read, 1);
    pm.commitWindow(2);  // replicate to node 1

    pm.recordAccess(0x1000, 0, AccessType::Write, 2);
    pm.route(0x1000, 0, AccessType::Write, 2);
    pm.commitWindow(3);
    EXPECT_EQ(pm.replication().collapses(), 1u);
    // The shootdown stall is modelled as a ready_at fence.
    const PageEntry *e = pm.table().find(0x1000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->ready_at, 3u + cfg.numa.migration_stall);
    // The collapsed replica holder is remote again.
    EXPECT_EQ(pm.route(0x1000, 1, AccessType::Read, 4), 0u);
}

TEST(PageManager, SpilledPageRoutesToCpuThenMigrates)
{
    SystemConfig cfg = smallConfig();
    cfg.numa.spill_fraction = 0.999;  // force the spill path
    cfg.numa.um_migration_threshold = 3;
    PageManager pm(cfg);
    pm.recordAccess(0x1000, 1, AccessType::Read, 0);
    EXPECT_EQ(pm.route(0x1000, 1, AccessType::Read, 0), cpu_node);
    pm.commitWindow(1);
    ASSERT_EQ(pm.homeOf(0x1000), cpu_node);

    // Two more accesses reach the UM threshold at the next barrier:
    // the page is pulled in and the copy charged to the CPU link.
    pm.route(0x1000, 1, AccessType::Read, 1);
    pm.route(0x1000, 1, AccessType::Read, 1);
    unsigned charges = 0;
    NodeId copy_src = invalid_node;
    pm.commitWindow(2, [&](NodeId src, NodeId) {
        ++charges;
        copy_src = src;
    });
    EXPECT_EQ(charges, 1u);
    EXPECT_EQ(copy_src, cpu_node);
    EXPECT_EQ(pm.homeOf(0x1000), 1u);
    EXPECT_EQ(pm.route(0x1000, 1, AccessType::Read, 2), 1u);
}

TEST(PageManager, MigrationMovesHotPrivatePage)
{
    SystemConfig cfg = smallConfig();
    cfg.numa.migration = true;
    cfg.numa.migration_threshold = 4;
    PageManager pm(cfg);
    pm.recordAccess(0x1000, 0, AccessType::Read, 0);
    pm.commitWindow(1);
    for (int i = 0; i < 10; ++i)
        pm.route(0x1000, 2, AccessType::Read, 1);
    unsigned charges = 0;
    pm.commitWindow(2, [&](NodeId, NodeId) { ++charges; });
    EXPECT_EQ(pm.homeOf(0x1000), 2u);
    EXPECT_EQ(pm.migration().migrations(), 1u);
    EXPECT_EQ(charges, 1u);

    // Until the stall fence passes, accesses are serviced at the old
    // home; afterwards at the new one.
    EXPECT_EQ(pm.route(0x1000, 0, AccessType::Read, 10), 0u);
    EXPECT_EQ(pm.route(0x1000, 0, AccessType::Read,
                       2 + cfg.numa.migration_stall),
              2u);
}

} // namespace
} // namespace carve
