/** @file Unit and system tests for the carve-audit subsystem:
 * in-flight token accounting, cross-stat invariant checks over
 * doctored stat trees reproducing each reverted write-back bugfix,
 * and an end-to-end run proving a leaked MSHR entry is reported. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/audit.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "core/multi_gpu_system.hh"
#include "core/system_preset.hh"
#include "sim_test_util.hh"

namespace carve {
namespace {

using audit::Boundary;

bool
anyContains(const std::vector<std::string> &fails,
            const std::string &needle)
{
    for (const std::string &f : fails)
        if (f.find(needle) != std::string::npos)
            return true;
    return false;
}

// ---- in-flight tokens -----------------------------------------------

TEST(InflightTracker, BalancedTokensPass)
{
    audit::InflightTracker t;
    t.issue(Boundary::DramAccess);
    t.issue(Boundary::DramAccess);
    t.retire(Boundary::DramAccess);
    t.retire(Boundary::DramAccess);
    EXPECT_EQ(t.inflight(Boundary::DramAccess), 0u);
    std::vector<std::string> fails;
    t.check(fails);
    EXPECT_TRUE(fails.empty());
}

TEST(InflightTracker, ImbalanceNamesTheBoundary)
{
    audit::InflightTracker t;
    t.issue(Boundary::RdcFetch);
    t.issue(Boundary::RdcFetch);
    t.retire(Boundary::RdcFetch);
    EXPECT_EQ(t.inflight(Boundary::RdcFetch), 1u);
    std::vector<std::string> fails;
    t.check(fails);
    ASSERT_EQ(fails.size(), 1u);
    EXPECT_TRUE(anyContains(fails, "rdc_fetch_issued"));
    EXPECT_TRUE(anyContains(fails, "(2)"));
    EXPECT_TRUE(anyContains(fails, "(1)"));
}

TEST(InflightTracker, StatsRegisterUnderBoundaryNames)
{
    audit::InflightTracker t;
    stats::StatGroup root("");
    t.registerStats(root);
    t.issue(Boundary::LinkDelivery);
    EXPECT_NE(root.findScalar("link_delivery_issued"), nullptr);
    EXPECT_EQ(root.findScalar("link_delivery_issued")->value(), 1u);
    EXPECT_EQ(root.findScalar("link_delivery_retired")->value(), 0u);
}

// ---- probe conservation ---------------------------------------------

struct CacheStats
{
    stats::Scalar probes, hits, misses, stale;
};

TEST(CheckCacheProbes, ConsistentTreePasses)
{
    stats::StatGroup root("");
    stats::StatGroup l2("l2", &root);
    CacheStats c;
    l2.addScalar("probes", &c.probes);
    l2.addScalar("hits", &c.hits);
    l2.addScalar("misses", &c.misses);
    c.hits = 5;
    c.misses = 3;
    c.probes = 8;
    std::vector<std::string> fails;
    audit::checkCacheProbes(root, fails);
    EXPECT_TRUE(fails.empty());
}

TEST(CheckCacheProbes, LeakedProbeIsFlagged)
{
    stats::StatGroup root("");
    stats::StatGroup gpu("gpu0", &root);
    stats::StatGroup l2("l2", &gpu);
    CacheStats c;
    l2.addScalar("probes", &c.probes);
    l2.addScalar("hits", &c.hits);
    l2.addScalar("misses", &c.misses);
    c.hits = 5;
    c.misses = 3;
    c.probes = 9;  // one probe unaccounted for
    std::vector<std::string> fails;
    audit::checkCacheProbes(root, fails);
    ASSERT_EQ(fails.size(), 1u);
    EXPECT_TRUE(anyContains(fails, "gpu0.l2.probes"));
    EXPECT_TRUE(anyContains(fails, "(9)"));
}

TEST(CheckCacheProbes, StaleHitsCountWhenRegistered)
{
    stats::StatGroup root("");
    stats::StatGroup alloy("alloy", &root);
    CacheStats c;
    alloy.addScalar("probes", &c.probes);
    alloy.addScalar("hits", &c.hits);
    alloy.addScalar("misses", &c.misses);
    alloy.addScalar("stale_hits", &c.stale);
    c.hits = 2;
    c.misses = 1;
    c.stale = 1;
    c.probes = 4;
    std::vector<std::string> fails;
    audit::checkCacheProbes(root, fails);
    EXPECT_TRUE(fails.empty());
}

// ---- conservation: each reverted bugfix has a signature -------------

/** Doctored per-GPU subtree with just the stats the write-back
 * conservation equations consume. */
struct DoctoredGpu
{
    explicit DoctoredGpu(stats::StatGroup &root)
        : gpu("gpu0", &root), traffic("traffic", &gpu),
          rdc("rdc", &gpu), alloy("alloy", &rdc)
    {
        traffic.addScalar("remote_reads", &remote_reads);
        traffic.addScalar("rdc_hit_reads", &rdc_hit_reads);
        rdc.addScalar("read_misses", &read_misses);
        rdc.addScalar("read_hits", &read_hits);
        rdc.addScalar("writeback_victims", &writeback_victims);
        rdc.addScalar("flush_bytes", &flush_bytes);
        alloy.addScalar("dirty_evictions", &dirty_evictions);
    }

    stats::StatGroup gpu, traffic, rdc, alloy;
    stats::Scalar remote_reads, rdc_hit_reads;
    stats::Scalar read_misses, read_hits;
    stats::Scalar writeback_victims, flush_bytes, dirty_evictions;
};

TEST(CheckConservation, ConsistentPartialTreePasses)
{
    stats::StatGroup root("");
    DoctoredGpu g(root);
    g.remote_reads = 4;
    g.read_misses = 4;
    g.rdc_hit_reads = 7;
    g.read_hits = 7;
    g.dirty_evictions = 2;
    g.writeback_victims = 2;
    std::vector<std::string> fails;
    audit::checkConservation(root, {}, fails);
    EXPECT_TRUE(fails.empty());
}

TEST(CheckConservation, DroppedDirtyVictimIsFlagged)
{
    // Signature of reverting the handleVictim fix: the alloy counts
    // dirty displacements but no write-back ever happens.
    stats::StatGroup root("");
    DoctoredGpu g(root);
    g.dirty_evictions = 3;
    g.writeback_victims = 0;
    std::vector<std::string> fails;
    audit::checkConservation(root, {}, fails);
    ASSERT_EQ(fails.size(), 1u);
    EXPECT_TRUE(anyContains(fails, "gpu0.rdc.alloy.dirty_evictions"));
    EXPECT_TRUE(anyContains(fails, "gpu0.rdc.writeback_victims"));
}

TEST(CheckConservation, MisclassifiedReadIsFlagged)
{
    stats::StatGroup root("");
    DoctoredGpu g(root);
    g.remote_reads = 4;
    g.read_misses = 3;  // one read classified remote without a miss
    std::vector<std::string> fails;
    audit::checkConservation(root, {}, fails);
    ASSERT_EQ(fails.size(), 1u);
    EXPECT_TRUE(anyContains(fails, "gpu0.traffic.remote_reads"));
}

TEST(CheckConservation, PhantomFlushIsFlagged)
{
    // Signature of reverting the boundary-flush fix: the controller
    // charges flush bytes that never cross the fabric.
    stats::StatGroup root("");
    DoctoredGpu g(root);
    g.flush_bytes = 4096;
    stats::StatGroup fabric("fabric", &root);
    stats::Scalar fabric_flush;
    fabric.addScalar("flush_bytes", &fabric_flush);  // stays 0
    std::vector<std::string> fails;
    audit::checkConservation(root, {}, fails);
    ASSERT_EQ(fails.size(), 1u);
    EXPECT_TRUE(anyContains(fails, "fabric.flush_bytes"));
    EXPECT_TRUE(anyContains(fails, "(4096)"));
}

TEST(CheckConservation, OverchargedWriteMessageIsFlagged)
{
    // Signature of reverting the write-classification fix: writes
    // absorbed by a write-back RDC still counted as remote_writes,
    // so the classified writes exceed the fabric's posted messages.
    stats::StatGroup root("");
    DoctoredGpu g(root);
    stats::StatGroup fabric("fabric", &root);
    stats::Scalar read_msgs, write_msgs, cpu_reads, cpu_writes;
    stats::Scalar fflush, coh, bulk_gpu, bulk_cpu;
    fabric.addScalar("remote_read_msgs", &read_msgs);
    fabric.addScalar("remote_write_msgs", &write_msgs);
    fabric.addScalar("cpu_read_msgs", &cpu_reads);
    fabric.addScalar("cpu_write_msgs", &cpu_writes);
    fabric.addScalar("flush_bytes", &fflush);
    fabric.addScalar("coh_ctrl_bytes", &coh);
    fabric.addScalar("bulk_gpu_bytes", &bulk_gpu);
    fabric.addScalar("bulk_cpu_bytes", &bulk_cpu);
    stats::Scalar remote_writes;
    g.traffic.addScalar("remote_writes", &remote_writes);
    remote_writes = 5;  // but fabric.remote_write_msgs stays 0
    std::vector<std::string> fails;
    audit::checkConservation(root, {}, fails);
    ASSERT_EQ(fails.size(), 1u);
    EXPECT_TRUE(anyContains(fails, "fabric.remote_write_msgs"));
    EXPECT_TRUE(anyContains(fails, "(5)"));
}

// ---- end to end -----------------------------------------------------

TEST(AuditSystem, CleanAuditedRunPasses)
{
    const SystemConfig cfg =
        makePreset(Preset::CarveHwc, test::miniConfig());
    const WorkloadParams p =
        test::miniWorkload(RegionKind::InterleavedStream, 0.2);
    SyntheticWorkload wl(p, cfg.line_size, 1);
    MultiGpuSystem sys(cfg, wl, /* profile */ false, /* audit */ true);
    EXPECT_TRUE(sys.auditEnabled());
    ScopedErrorCapture capture;
    EXPECT_NO_THROW(sys.run());
    EXPECT_TRUE(sys.finished());
    // Token counters are exposed in the tree and balanced.
    const stats::Scalar *issued =
        sys.stats().findScalar("audit.inflight.dram_access_issued");
    const stats::Scalar *retired =
        sys.stats().findScalar("audit.inflight.dram_access_retired");
    ASSERT_NE(issued, nullptr);
    ASSERT_NE(retired, nullptr);
    EXPECT_GT(issued->value(), 0u);
    EXPECT_EQ(issued->value(), retired->value());
}

TEST(AuditSystem, WritebackSwcAuditedRunPasses)
{
    SystemConfig cfg = makePreset(Preset::CarveSwc, test::miniConfig());
    cfg.rdc.write_policy = RdcWritePolicy::WriteBack;
    const WorkloadParams p =
        test::miniWorkload(RegionKind::InterleavedStream, 0.3);
    SyntheticWorkload wl(p, cfg.line_size, 1);
    MultiGpuSystem sys(cfg, wl, false, true);
    ScopedErrorCapture capture;
    EXPECT_NO_THROW(sys.run());
    EXPECT_TRUE(sys.finished());
}

TEST(AuditSystem, NonAuditRunRegistersNoAuditStats)
{
    const SystemConfig cfg =
        makePreset(Preset::CarveHwc, test::miniConfig());
    const WorkloadParams p =
        test::miniWorkload(RegionKind::InterleavedStream, 0.2);
    SyntheticWorkload wl(p, cfg.line_size, 1);
    MultiGpuSystem sys(cfg, wl, false);
    EXPECT_FALSE(sys.auditEnabled());
    EXPECT_EQ(
        sys.stats().findScalar("audit.inflight.dram_access_issued"),
        nullptr);
    // The fabric ledger is cheap and always present.
    EXPECT_NE(sys.stats().findScalar("fabric.remote_read_msgs"),
              nullptr);
}

TEST(AuditSystem, LeakedMshrEntryIsReported)
{
    const SystemConfig cfg =
        makePreset(Preset::CarveHwc, test::miniConfig());
    const WorkloadParams p =
        test::miniWorkload(RegionKind::InterleavedStream, 0.2);
    SyntheticWorkload wl(p, cfg.line_size, 1);
    MultiGpuSystem sys(cfg, wl, false, true);
    // Deliberately strand an L2 MSHR entry on a line far outside the
    // workload footprint: no fill will ever complete it.
    sys.gpu(0).l2Mshrs().allocate(Addr{1} << 40, {});
    ScopedErrorCapture capture;
    try {
        sys.run();
        FAIL() << "audit did not trip on the leaked MSHR entry";
    } catch (const SimAbortError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("carve-audit"), std::string::npos) << msg;
        EXPECT_NE(msg.find("L2 MSHR"), std::string::npos) << msg;
        EXPECT_NE(msg.find("gpu0"), std::string::npos) << msg;
    }
}

} // namespace
} // namespace carve
