/** @file Cycle-level tracer tests.
 *
 * Unit coverage for the ring-buffer sink (wraparound drops oldest
 * first and is accounted), the category machinery (parse + runtime
 * masking), the log-observer bridge, and the Chrome trace-event
 * exporter (output parses and carries the registered rows). Plus one
 * end-to-end run through the SimJob API proving a traced simulation
 * emits SM/DRAM/link spans, kernel markers and at least three counter
 * tracks for every GPU.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/simulator.hh"
#include "harness/json.hh"
#include "trace/chrome_export.hh"
#include "trace/trace.hh"
#include "workloads/suite.hh"

namespace carve {
namespace {

trace::Options
smallOpts(std::size_t capacity)
{
    trace::Options opt;
    opt.enabled = true;
    opt.buffer_capacity = capacity;
    return opt;
}

// ---- ring buffer ---------------------------------------------------

TEST(TraceRing, WraparoundDropsOldestFirst)
{
    trace::Session s(smallOpts(4));
    for (int i = 0; i < 6; ++i) {
        s.instant(trace::Category::Sm, trace::makeTrack(1, 1),
                  s.intern("e" + std::to_string(i)),
                  static_cast<Cycle>(10 * i));
    }

    EXPECT_EQ(s.recordedEvents(), 6u);
    EXPECT_EQ(s.droppedEvents(), 2u);
    EXPECT_EQ(s.size(), 4u);

    // e0 and e1 were overwritten; the survivors come back in order.
    std::vector<std::string> names;
    s.forEach([&](const trace::Event &e) {
        names.emplace_back(e.name);
    });
    EXPECT_EQ(names,
              (std::vector<std::string>{"e2", "e3", "e4", "e5"}));
}

TEST(TraceRing, NoDropsBelowCapacity)
{
    trace::Session s(smallOpts(8));
    for (int i = 0; i < 8; ++i)
        s.instant(trace::Category::Sm, 0, "e", i);
    EXPECT_EQ(s.droppedEvents(), 0u);
    EXPECT_EQ(s.size(), 8u);
}

TEST(TraceRing, SpanClampsReversedEndpoints)
{
    trace::Session s(smallOpts(4));
    s.span(trace::Category::Sm, 0, "x", 100, 40);
    s.forEach([](const trace::Event &e) { EXPECT_EQ(e.dur, 0u); });
}

// ---- categories ----------------------------------------------------

TEST(TraceCategories, ParseListBuildsMask)
{
    EXPECT_EQ(trace::parseCategoryList("all"),
              trace::all_categories);
    EXPECT_EQ(trace::parseCategoryList("sm"),
              static_cast<std::uint32_t>(trace::Category::Sm));
    EXPECT_EQ(
        trace::parseCategoryList("sm,dram,link"),
        static_cast<std::uint32_t>(trace::Category::Sm) |
            static_cast<std::uint32_t>(trace::Category::Dram) |
            static_cast<std::uint32_t>(trace::Category::Link));
}

TEST(TraceCategories, ParseListRejectsUnknownNames)
{
    ScopedErrorCapture capture;
    EXPECT_THROW(trace::parseCategoryList("sm,bogus"),
                 SimAbortError);
}

TEST(TraceCategories, ActiveHonoursMaskAndNullSession)
{
    trace::Options opt = smallOpts(4);
    opt.categories =
        static_cast<std::uint32_t>(trace::Category::Dram);
    trace::Session s(opt);

    // When compiled out, active() is constant-false regardless.
    EXPECT_EQ(trace::active(&s, trace::Category::Dram),
              trace::compiled_in);
    EXPECT_FALSE(trace::active(&s, trace::Category::Sm));
    EXPECT_FALSE(trace::active(nullptr, trace::Category::Dram));
}

// ---- counters and the log bridge -----------------------------------

TEST(TraceCounters, SampleEmitsOneEventPerProbe)
{
    trace::Session s(smallOpts(16));
    double v = 1.5;
    s.defineProcess(2, "gpu1");
    s.addCounter(2, "util", [&v] { return v; });
    s.addCounter(2, "occ", [] { return 7.0; });

    s.sampleCounters(100);
    v = 2.5;
    s.sampleCounters(200);

    std::vector<double> values;
    s.forEach([&](const trace::Event &e) {
        EXPECT_EQ(e.kind, trace::EventKind::Counter);
        values.push_back(e.value);
    });
    EXPECT_EQ(values, (std::vector<double>{1.5, 7.0, 2.5, 7.0}));
}

TEST(TraceLogBridge, ObserverTextMatchesCaptureText)
{
    trace::Session s(smallOpts(8));
    std::string observed;
    std::string captured;
    {
        ScopedLogObserver obs(
            [&](LogLevel, const std::string &msg) { observed = msg; });
        try {
            ScopedErrorCapture capture;
            fatal("boom %d", 42);
        } catch (const SimAbortError &e) {
            captured = e.what();
        }
    }
    EXPECT_EQ(observed, "boom 42");
    EXPECT_EQ(observed, captured);
}

// ---- exporter ------------------------------------------------------

TEST(TraceExport, ChromeJsonParsesAndCarriesRows)
{
    trace::Session s(smallOpts(64));
    s.defineProcess(0, "system");
    s.defineThread(0, 0, "kernels");
    s.defineProcess(1, "gpu0");
    s.defineThread(1, 1, "sm0");
    s.addCounter(1, "util", [] { return 0.5; });

    s.span(trace::Category::Kernel, trace::makeTrack(0, 0),
           "kernel 0", 0, 1000, 0);
    s.span(trace::Category::Sm, trace::makeTrack(1, 1), "read mem",
           10, 60, 4);
    s.instant(trace::Category::Sm, trace::makeTrack(1, 1),
              "mshr_stall", 42, 0xdeadbeef);
    s.sampleCounters(500);

    const std::string text =
        trace::chromeTraceJson(s, {"Lulesh", "CARVE-HWC"});
    const json::Value doc = json::parse(text, "trace");

    EXPECT_EQ(doc.at("otherData").at("workload").asString(),
              "Lulesh");
    EXPECT_EQ(doc.at("otherData").at("recorded_events").asInt(), 4);

    int complete = 0, instants = 0, counters = 0, meta = 0;
    for (const json::Value &ev : doc.at("traceEvents").asArray()) {
        const std::string &ph = ev.at("ph").asString();
        if (ph == "X")
            ++complete;
        else if (ph == "i")
            ++instants;
        else if (ph == "C")
            ++counters;
        else if (ph == "M")
            ++meta;
    }
    EXPECT_EQ(complete, 2);
    EXPECT_EQ(instants, 1);
    EXPECT_EQ(counters, 1);
    // 2 process rows + 2 thread rows + the trailing terminator.
    EXPECT_EQ(meta, 5);
}

TEST(TraceExport, EscapesControlCharactersInLabels)
{
    trace::Session s(smallOpts(4));
    s.instantText(trace::Category::Audit, 0,
                  "line1\nline2\t\"quoted\"", 5);
    const std::string text = trace::chromeTraceJson(s);
    const json::Value doc = json::parse(text, "trace");
    bool found = false;
    for (const json::Value &ev : doc.at("traceEvents").asArray()) {
        if (ev.at("ph").asString() == "i") {
            EXPECT_EQ(ev.at("name").asString(),
                      "line1\nline2\t\"quoted\"");
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

// ---- end to end ----------------------------------------------------

SimJob
tracedJob(const std::string &out_path)
{
    SuiteOptions suite;
    suite.memory_scale = 32;
    suite.duration = 0.02;
    const SystemConfig base =
        SystemConfig{}.scaled(suite.memory_scale);
    SimJob job = makePresetJob(Preset::CarveHwc, base,
                               suiteWorkload("Lulesh", suite));
    job.options.max_cycles = 200'000'000;
    job.options.trace.enabled = true;
    job.options.trace.buffer_capacity = 1u << 20;
    job.options.trace.sample_interval = 1000;
    job.options.trace.out_path = out_path;
    return job;
}

TEST(TraceEndToEnd, TracedRunExportsFullTimeline)
{
    if (!trace::compiled_in)
        GTEST_SKIP() << "built with CARVE_TRACE=OFF";
    const std::string path =
        testing::TempDir() + "carve_e2e.trace.json";
    const SimResult res = run(tracedJob(path));
    EXPECT_GT(res.cycles, 0u);

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[65536];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    std::remove(path.c_str());

    const json::Value doc = json::parse(text, "trace");
    EXPECT_EQ(doc.at("otherData").at("preset").asString(),
              "CARVE-HWC");

    std::set<std::string> processes;
    std::set<std::string> span_cats;
    std::set<std::string> counter_names;
    bool kernel_span = false;
    for (const json::Value &ev : doc.at("traceEvents").asArray()) {
        const std::string &ph = ev.at("ph").asString();
        if (ph == "M" &&
            ev.at("name").asString() == "process_name") {
            processes.insert(ev.at("args").at("name").asString());
        } else if (ph == "X") {
            span_cats.insert(ev.at("cat").asString());
            if (ev.at("cat").asString() == "kernel")
                kernel_span = true;
        } else if (ph == "C") {
            counter_names.insert(ev.at("name").asString());
        }
    }

    // One row per GPU plus the system and interconnect processes.
    EXPECT_TRUE(processes.count("system"));
    EXPECT_TRUE(processes.count("gpu0"));
    EXPECT_TRUE(processes.count("gpu3"));
    EXPECT_TRUE(processes.count("interconnect"));

    EXPECT_TRUE(span_cats.count("sm"));
    EXPECT_TRUE(span_cats.count("dram"));
    EXPECT_TRUE(span_cats.count("link"));
    EXPECT_TRUE(span_cats.count("cache"));
    EXPECT_TRUE(kernel_span);

    // At least the three headline counter tracks.
    EXPECT_TRUE(counter_names.count("l2_mshr_occupancy"));
    EXPECT_TRUE(counter_names.count("dram_queue_occupancy"));
    EXPECT_TRUE(counter_names.count("rdc_hit_rate"));
    EXPECT_GE(counter_names.size(), 3u);
}

TEST(TraceEndToEnd, CategoryMaskFiltersComponents)
{
    if (!trace::compiled_in)
        GTEST_SKIP() << "built with CARVE_TRACE=OFF";
    SimJob job = tracedJob("");
    job.options.trace.out_path.clear();
    job.options.trace.categories =
        trace::parseCategoryList("kernel");
    job.options.trace.sample_interval = 0;

    // Export by hand through a second traced run of the same job to
    // keep this test self-contained: with only the kernel category
    // enabled, no sm/dram/link spans may appear.
    const std::string path =
        testing::TempDir() + "carve_mask.trace.json";
    job.options.trace.out_path = path;
    (void)run(job);

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[65536];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    std::remove(path.c_str());

    const json::Value doc = json::parse(text, "trace");
    bool saw_kernel = false;
    for (const json::Value &ev : doc.at("traceEvents").asArray()) {
        if (ev.at("ph").asString() != "X")
            continue;
        const std::string &cat = ev.at("cat").asString();
        EXPECT_EQ(cat, "kernel");
        saw_kernel = true;
    }
    EXPECT_TRUE(saw_kernel);
}

} // namespace
} // namespace carve
