/** @file Engine A/B determinism and the SimJob entry point.
 *
 * The calendar-queue engine must be a pure performance change: a full
 * simulation replayed under the legacy heap engine (CARVE_EVENTQ=heap)
 * has to produce a byte-identical stat tree. These tests pin that
 * contract, plus the SimJob request-struct API every driver now
 * builds on.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/simulator.hh"
#include "harness/stats_json.hh"
#include "workloads/suite.hh"

namespace carve {
namespace {

RunOptions
fastOpts()
{
    RunOptions opt;
    opt.profile_lines = true;
    opt.max_cycles = 200'000'000;
    return opt;
}

/** A small but real Figure 8 cell: the remote-traffic breakdown of
 * one suite workload under a preset. */
SimJob
fig08Job(Preset preset)
{
    SuiteOptions suite;
    suite.memory_scale = 32;
    suite.duration = 0.05;
    const SystemConfig base =
        SystemConfig{}.scaled(suite.memory_scale);
    return makePresetJob(preset, base,
                         suiteWorkload("Lulesh", suite), fastOpts());
}

/** Run @p job under the named engine and serialize the stat tree. */
std::string
statBytesUnder(const char *engine, const SimJob &job)
{
    setenv("CARVE_EVENTQ", engine, 1);
    const SimResult r = run(job);
    unsetenv("CARVE_EVENTQ");
    return harness::statTreeToJson(r.stat_tree).dump();
}

TEST(EngineDeterminism, Fig08CellReplaysByteIdenticalAcrossEngines)
{
    const SimJob job = fig08Job(Preset::NumaGpu);
    const std::string calendar = statBytesUnder("calendar", job);
    const std::string heap = statBytesUnder("heap", job);
    EXPECT_GT(calendar.size(), 100u);  // a real tree, not "{}"
    EXPECT_EQ(calendar, heap);
}

TEST(EngineDeterminism, CarvePresetReplaysByteIdenticalAcrossEngines)
{
    // The CARVE preset exercises the RDC controller and hardware
    // coherence paths that were converted to pre-bound events.
    const SimJob job = fig08Job(Preset::CarveHwc);
    EXPECT_EQ(statBytesUnder("calendar", job),
              statBytesUnder("heap", job));
}

TEST(EngineDeterminism, RepeatRunsAreByteIdentical)
{
    const SimJob job = fig08Job(Preset::NumaGpu);
    EXPECT_EQ(statBytesUnder("calendar", job),
              statBytesUnder("calendar", job));
}

TEST(EngineDeterminism, TracingOnVsOffIsByteIdentical)
{
    // Tracing must be a pure observer: a traced run (all categories,
    // counters sampled, no file written) and an untraced run of the
    // same job serialize to byte-identical stat trees.
    const SimJob plain = fig08Job(Preset::CarveHwc);

    SimJob traced = plain;
    traced.options.trace.enabled = true;
    traced.options.trace.categories = trace::all_categories;
    traced.options.trace.buffer_capacity = std::size_t{1} << 21;
    traced.options.trace.sample_interval = 1000;

    EXPECT_EQ(statBytesUnder("calendar", plain),
              statBytesUnder("calendar", traced));
}

// ---- SimJob API ---------------------------------------------------

TEST(SimJob, MakePresetJobFillsEveryField)
{
    SuiteOptions suite;
    suite.memory_scale = 32;
    suite.duration = 0.05;
    const SystemConfig base =
        SystemConfig{}.scaled(suite.memory_scale);
    const WorkloadParams wl = suiteWorkload("Lulesh", suite);

    const SimJob job =
        makePresetJob(Preset::CarveHwc, base, wl, fastOpts());
    EXPECT_EQ(job.preset_label, presetName(Preset::CarveHwc));
    EXPECT_EQ(job.workload.name, wl.name);
    EXPECT_TRUE(job.config.rdc.enabled);  // CARVE preset applied
    EXPECT_EQ(job.options.max_cycles, fastOpts().max_cycles);
}

TEST(SimJob, EngineOverridesResolveIntoTheRun)
{
    // The options override wins over the config field; serial and
    // parallel agree (the deep grid lives in test_engine.cc).
    SimJob job = fig08Job(Preset::NumaGpu);
    job.config.engine = SimEngine::Parallel;
    job.config.sim_threads = 1;
    job.options.engine = SimEngine::Serial;
    const SimResult serial = run(job);

    job.options.engine = SimEngine::Parallel;
    job.options.sim_threads = 1;
    const SimResult parallel = run(job);
    EXPECT_EQ(serial.cycles, parallel.cycles);
    EXPECT_EQ(serial.warp_insts, parallel.warp_insts);
}

TEST(SimJob, EditedJobChangesTheMachine)
{
    SimJob job = fig08Job(Preset::NumaGpu);
    job.preset_label = "numa-slow-link";
    job.config.link.gpu_gpu_bw = 8.0;
    const SimResult slow = run(job);
    const SimResult base = run(fig08Job(Preset::NumaGpu));
    EXPECT_EQ(slow.preset, "numa-slow-link");
    EXPECT_GT(slow.cycles, base.cycles);
}

TEST(SimJob, ResultCarriesEventCount)
{
    const SimResult r = run(fig08Job(Preset::NumaGpu));
    // Every warp instruction takes at least one event, so the engine
    // event counter must dominate the instruction counter.
    EXPECT_GT(r.events, r.warp_insts);
}

} // namespace
} // namespace carve
