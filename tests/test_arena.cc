/**
 * @file
 * Unit tests for the chunked Arena / Pool<T> allocator family
 * (src/common/arena.hh): alignment guarantees, chunk growth,
 * handle/pointer stability across growth, reset()/reuse semantics,
 * and the hostnuma fallback contract. The use-after-free poisoning
 * path is exercised under the ASan/UBSan CI job, where a recycled
 * handle dereference traps in the sanitizer.
 */

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.hh"
#include "common/hostnuma.hh"

namespace carve {
namespace {

bool
alignedTo(const void *p, std::size_t align)
{
    return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

TEST(Arena, RespectsRequestedAlignment)
{
    Arena arena(4096);
    // Deliberately misalign the bump pointer between requests.
    for (std::size_t align : {1ul, 2ul, 4ul, 8ul, 16ul, 64ul, 256ul}) {
        arena.allocate(1, 1);
        void *p = arena.allocate(align * 2, align);
        EXPECT_TRUE(alignedTo(p, align)) << "align " << align;
    }
}

TEST(Arena, TypedAllocateIsAlignedForTheType)
{
    struct alignas(64) Padded
    {
        unsigned char bytes[64];
    };
    Arena arena(4096);
    arena.allocate(1, 1);
    Padded *p = arena.allocate<Padded>(3);
    EXPECT_TRUE(alignedTo(p, alignof(Padded)));
}

TEST(Arena, GrowsByChunksAndTracksUsage)
{
    constexpr std::size_t chunk = 1024;
    Arena arena(chunk);
    EXPECT_EQ(arena.usedBytes(), 0u);

    // Fill more than one chunk with small allocations.
    for (int i = 0; i < 100; ++i)
        arena.allocate(64, 8);
    EXPECT_EQ(arena.usedBytes(), 6400u);
    EXPECT_GE(arena.reservedBytes(), arena.usedBytes());
    EXPECT_GE(arena.reservedBytes(), 4 * chunk);
}

TEST(Arena, OversizedRequestGetsDedicatedChunk)
{
    constexpr std::size_t chunk = 512;
    Arena arena(chunk);
    void *big = arena.allocate(8 * chunk, 16);
    ASSERT_NE(big, nullptr);
    // The slab must actually hold the request: write every byte.
    std::memset(big, 0xab, 8 * chunk);
    EXPECT_GE(arena.reservedBytes(), 8 * chunk);

    // Small allocations keep working after the oversized one.
    void *small = arena.allocate(32, 8);
    ASSERT_NE(small, nullptr);
    std::memset(small, 0xcd, 32);
}

TEST(Arena, AllocationsDoNotOverlap)
{
    Arena arena(256);  // tiny chunks force frequent growth
    std::vector<std::pair<std::uintptr_t, std::size_t>> spans;
    for (int i = 0; i < 64; ++i) {
        const std::size_t n = 16 + (i % 7) * 24;
        auto *p = static_cast<unsigned char *>(arena.allocate(n, 8));
        std::memset(p, i, n);
        spans.emplace_back(reinterpret_cast<std::uintptr_t>(p), n);
    }
    for (std::size_t i = 0; i < spans.size(); ++i) {
        for (std::size_t j = i + 1; j < spans.size(); ++j) {
            const bool disjoint =
                spans[i].first + spans[i].second <= spans[j].first ||
                spans[j].first + spans[j].second <= spans[i].first;
            EXPECT_TRUE(disjoint) << "spans " << i << "/" << j;
        }
    }
}

TEST(Arena, ResetRewindsWithoutReleasingSlabs)
{
    Arena arena(1024);
    for (int i = 0; i < 50; ++i)
        arena.allocate(64, 8);
    const std::size_t reserved = arena.reservedBytes();
    ASSERT_GT(reserved, 0u);

    arena.reset();
    EXPECT_EQ(arena.usedBytes(), 0u);
    EXPECT_EQ(arena.reservedBytes(), reserved);

    // Reuse after reset must not grow the reservation until the old
    // high-water mark is passed again.
    for (int i = 0; i < 50; ++i)
        arena.allocate(64, 8);
    EXPECT_EQ(arena.reservedBytes(), reserved);
}

TEST(Arena, MoveTransfersOwnership)
{
    Arena a(1024);
    auto *p = static_cast<unsigned char *>(a.allocate(16, 8));
    std::memset(p, 0x5a, 16);
    const std::size_t used = a.usedBytes();

    Arena b(std::move(a));
    EXPECT_EQ(b.usedBytes(), used);
    // The allocation survives the move (chunks are not copied).
    EXPECT_EQ(p[0], 0x5a);
    EXPECT_EQ(p[15], 0x5a);
}

TEST(Arena, UnknownNumaNodeFallsBackToHeap)
{
    // Node requests must degrade to plain heap slabs when libnuma (or
    // the node) is unavailable — behaviour identical either way.
    Arena arena(1024, /*numa_node=*/0);
    void *p = arena.allocate(128, 16);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xee, 128);
    if (!hostnuma::available()) {
        EXPECT_EQ(arena.numaNode(), 0);  // recorded, even if inert
    }
}

struct Record
{
    std::uint64_t a = 0;
    std::uint32_t b = 0;
};

TEST(Pool, HandlesAreStableAcrossGrowth)
{
    Pool<Record> pool(nullptr, /*chunk_elems=*/4);
    std::vector<Pool<Record>::Handle> handles;
    std::vector<Record *> ptrs;
    for (std::uint32_t i = 0; i < 64; ++i) {
        const auto h = pool.alloc({i * 3ull, i});
        handles.push_back(h);
        ptrs.push_back(&pool[h]);
    }
    EXPECT_EQ(pool.live(), 64u);
    EXPECT_EQ(pool.capacity(), 64u);
    for (std::uint32_t i = 0; i < 64; ++i) {
        // Neither the handle mapping nor the element address may have
        // changed as chunks were added.
        EXPECT_EQ(&pool[handles[i]], ptrs[i]);
        EXPECT_EQ(pool[handles[i]].a, i * 3ull);
        EXPECT_EQ(pool[handles[i]].b, i);
    }
}

TEST(Pool, FreeRecyclesLifoWithoutGrowingCapacity)
{
    Pool<Record> pool(nullptr, 4);
    const auto h0 = pool.alloc({1, 1});
    const auto h1 = pool.alloc({2, 2});
    const auto h2 = pool.alloc({3, 3});
    EXPECT_EQ(pool.capacity(), 3u);

    pool.free(h1);
    pool.free(h2);
    EXPECT_EQ(pool.live(), 1u);

    // LIFO: the most recently freed slot comes back first.
    EXPECT_EQ(pool.alloc({4, 4}), h2);
    EXPECT_EQ(pool.alloc({5, 5}), h1);
    EXPECT_EQ(pool.capacity(), 3u);
    EXPECT_EQ(pool[h0].a, 1ull);
    EXPECT_EQ(pool[h2].a, 4ull);
    EXPECT_EQ(pool[h1].a, 5ull);
}

TEST(Pool, ArenaBackedPoolSharesTheArena)
{
    Arena arena(4096);
    Pool<Record> pool(&arena, 8);
    const std::size_t before = arena.usedBytes();
    std::vector<Pool<Record>::Handle> handles;
    for (std::uint32_t i = 0; i < 32; ++i)
        handles.push_back(pool.alloc({i, i}));
    EXPECT_GT(arena.usedBytes(), before);
    for (std::uint32_t i = 0; i < 32; ++i)
        EXPECT_EQ(pool[handles[i]].b, i);
}

TEST(Pool, ChurnNeverConfusesLiveSlots)
{
    // Alternating alloc/free storm: live handles must keep their
    // payloads while freed slots are recycled underneath them.
    Pool<Record> pool(nullptr, 4);
    std::vector<Pool<Record>::Handle> live;
    std::uint64_t next = 0;
    for (int round = 0; round < 200; ++round) {
        const auto h = pool.alloc({next, static_cast<uint32_t>(next)});
        ++next;
        live.push_back(h);
        if (round % 3 == 2) {
            // Free the middle element to mix the free list.
            const auto victim = live[live.size() / 2];
            pool.free(victim);
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(live.size() / 2));
        }
    }
    std::set<Pool<Record>::Handle> uniq(live.begin(), live.end());
    EXPECT_EQ(uniq.size(), live.size());
    EXPECT_EQ(pool.live(), live.size());
}

#if CARVE_ASAN
TEST(PoolDeathTest, UseAfterFreeTrapsUnderAsan)
{
    // Freed slots are poisoned; touching one through a stale handle
    // must abort inside ASan (the CI sanitizer leg runs this).
    EXPECT_DEATH(
        {
            Pool<Record> pool(nullptr, 4);
            const auto h = pool.alloc({7, 7});
            pool.free(h);
            // volatile: the use-after-free load must survive -O2.
            volatile std::uint64_t sink = pool[h].a;
            (void)sink;
        },
        "");
}
#endif

} // namespace
} // namespace carve
