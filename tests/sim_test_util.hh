/** @file Shared helpers for system-level tests: a miniature (fast)
 * 4-GPU configuration and small workload builders. */

#ifndef CARVE_TESTS_SIM_TEST_UTIL_HH
#define CARVE_TESTS_SIM_TEST_UTIL_HH

#include "common/config.hh"
#include "common/units.hh"
#include "workloads/synthetic.hh"

namespace carve {
namespace test {

/** A tiny 4-GPU system that runs full simulations in milliseconds. */
inline SystemConfig
miniConfig()
{
    SystemConfig cfg;
    cfg.num_gpus = 4;
    cfg.core.sms_per_gpu = 4;
    cfg.core.max_warps_per_sm = 16;
    cfg.core.kernel_launch_latency = 100;
    cfg.l1 = CacheConfig{8 * KiB, 4, 10, 16};
    cfg.l2 = CacheConfig{64 * KiB, 8, 40, 64};
    cfg.tlb.l1_entries = 8;
    cfg.tlb.l2_entries = 32;
    cfg.dram.capacity = 256 * MiB;
    cfg.dram.channels = 4;
    cfg.dram.channel_bw = 64.0;
    cfg.rdc.size = 16 * MiB;
    return cfg;
}

/** Small workload over one configurable region. */
inline WorkloadParams
miniWorkload(RegionKind kind, double write_frac = 0.0,
             unsigned kernels = 2, std::uint64_t region_bytes = 8 * MiB)
{
    WorkloadParams p;
    p.name = "mini";
    p.kernels = kernels;
    p.ctas = 32;
    p.warps_per_cta = 4;
    p.insts_per_warp = 24;
    p.compute_min = 2;
    p.compute_max = 8;
    p.iterative = true;
    p.regions = {{kind, region_bytes, 1.0, write_frac, 0.4, 1, 0.25}};
    return p;
}

} // namespace test
} // namespace carve

#endif // CARVE_TESTS_SIM_TEST_UTIL_HH
