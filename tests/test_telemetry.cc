/** @file Tests for the telemetry subsystem: log2 histogram bucket
 * layout, deterministic percentiles, merge-order independence, the
 * domain-sharded histogram's fold discipline, registry integration
 * (flatten naming, lookup), and the Prometheus text renderer. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "telemetry/telemetry.hh"

namespace carve {
namespace {

using telemetry::Histogram;

// ---- bucket layout -------------------------------------------------

TEST(TelemetryHistogram, BucketIndexFollowsBitWidth)
{
    // Bucket 0 holds exactly 0; bucket b >= 1 covers
    // [2^(b-1), 2^b - 1].
    EXPECT_EQ(Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(1), 1u);
    EXPECT_EQ(Histogram::bucketIndex(2), 2u);
    EXPECT_EQ(Histogram::bucketIndex(3), 2u);
    EXPECT_EQ(Histogram::bucketIndex(4), 3u);
    EXPECT_EQ(Histogram::bucketIndex(1023), 10u);
    EXPECT_EQ(Histogram::bucketIndex(1024), 11u);
    // Everything above 2^62 collapses into the last bucket.
    EXPECT_EQ(Histogram::bucketIndex(std::uint64_t{1} << 62),
              Histogram::num_buckets - 1);
    EXPECT_EQ(Histogram::bucketIndex(~std::uint64_t{0}),
              Histogram::num_buckets - 1);
}

TEST(TelemetryHistogram, BucketBoundsAreInclusivePowersOfTwo)
{
    EXPECT_EQ(Histogram::bucketUpperBound(0), 0u);
    EXPECT_EQ(Histogram::bucketUpperBound(1), 1u);
    EXPECT_EQ(Histogram::bucketUpperBound(2), 3u);
    EXPECT_EQ(Histogram::bucketUpperBound(10), 1023u);
    // The last bound is clamped below 2^63 so every rendered value
    // fits a JSON (and int64) integer.
    EXPECT_EQ(Histogram::bucketUpperBound(Histogram::num_buckets - 1),
              (std::uint64_t{1} << 63) - 1);
    // Every sample's value is <= the bound of its own bucket.
    for (const std::uint64_t v :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{7},
          std::uint64_t{4096}, (std::uint64_t{1} << 62) - 1}) {
        EXPECT_LE(v, Histogram::bucketUpperBound(
                         Histogram::bucketIndex(v)))
            << v;
    }
}

TEST(TelemetryHistogram, SampleTracksCountSumMax)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50), 0u);

    h.sample(0);
    h.sample(5);
    h.sample(100);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 105u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_EQ(h.buckets()[0], 1u);                       // the 0
    EXPECT_EQ(h.buckets()[Histogram::bucketIndex(5)], 1u);
    EXPECT_EQ(h.buckets()[Histogram::bucketIndex(100)], 1u);

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

// ---- percentiles ---------------------------------------------------

TEST(TelemetryHistogram, PercentileIsBucketUpperBoundOfTargetRank)
{
    // 100 samples of 1 and one sample of 1000: p50 must sit in the
    // value-1 bucket, p99+ must reach the outlier's bucket bound.
    Histogram h;
    for (int i = 0; i < 100; ++i)
        h.sample(1);
    h.sample(1000);
    EXPECT_EQ(h.percentile(50), 1u);
    EXPECT_EQ(h.percentile(95), 1u);
    EXPECT_EQ(h.percentile(100),
              Histogram::bucketUpperBound(
                  Histogram::bucketIndex(1000)));
}

TEST(TelemetryHistogram, PercentileUsesCeilOfRank)
{
    // Two samples: p50 targets ceil(2*50/100) == 1, the first
    // sample's bucket; p51 targets ceil(2*51/100) == 2, the second's.
    Histogram h;
    h.sample(1);
    h.sample(64);
    EXPECT_EQ(h.percentile(50), 1u);
    EXPECT_EQ(h.percentile(51),
              Histogram::bucketUpperBound(Histogram::bucketIndex(64)));
    // p0 clamps its target to rank 1 (the smallest bucket), not 0.
    EXPECT_EQ(h.percentile(0), 1u);
}

// ---- merge ---------------------------------------------------------

TEST(TelemetryHistogram, MergeIsOrderIndependent)
{
    // Three shards with disjoint-ish sample streams, merged in every
    // permutation: identical buckets, count, sum, max, percentiles.
    std::mt19937_64 rng(42);
    std::vector<Histogram> shards(3);
    for (Histogram &s : shards) {
        for (int i = 0; i < 1000; ++i)
            s.sample(rng() % 100000);
    }

    std::vector<unsigned> order = {0, 1, 2};
    Histogram first;
    bool have_first = false;
    do {
        Histogram merged;
        for (const unsigned i : order)
            merged.merge(shards[i]);
        if (!have_first) {
            first = merged;
            have_first = true;
            continue;
        }
        EXPECT_EQ(merged.buckets(), first.buckets());
        EXPECT_EQ(merged.count(), first.count());
        EXPECT_EQ(merged.sum(), first.sum());
        EXPECT_EQ(merged.max(), first.max());
        for (const unsigned pct : {50u, 95u, 99u})
            EXPECT_EQ(merged.percentile(pct), first.percentile(pct));
    } while (std::next_permutation(order.begin(), order.end()));
}

TEST(TelemetryHistogram, MergeEqualsDirectSampling)
{
    // Splitting one stream across shards and merging must be
    // indistinguishable from sampling it all into one histogram.
    Histogram direct, a, b;
    for (std::uint64_t v = 0; v < 500; ++v) {
        direct.sample(v * 37 % 1000);
        ((v & 1) ? a : b).sample(v * 37 % 1000);
    }
    a.merge(b);
    EXPECT_EQ(a.buckets(), direct.buckets());
    EXPECT_EQ(a.sum(), direct.sum());
    EXPECT_EQ(a.max(), direct.max());
}

// ---- sharded histogram ---------------------------------------------

TEST(TelemetrySharded, FoldMergesShardsAndResetsThem)
{
    telemetry::ShardedHistogram sh;

    // Samples from the barrier shard context go straight to the
    // total (single-threaded paths never touch a shard).
    ASSERT_EQ(engine_ctx::current_shard, engine_ctx::barrier_shard);
    sh.sample(7);
    EXPECT_EQ(sh.histogram().count(), 1u);

    // Samples from domain contexts sit in shards until fold().
    engine_ctx::current_shard = 0;
    sh.sample(100);
    engine_ctx::current_shard = 3;
    sh.sample(200);
    engine_ctx::current_shard = engine_ctx::barrier_shard;
    EXPECT_EQ(sh.histogram().count(), 1u);

    sh.fold();
    EXPECT_EQ(sh.histogram().count(), 3u);
    EXPECT_EQ(sh.histogram().sum(), 307u);

    // Folding again must not double-count (shards were reset).
    sh.fold();
    EXPECT_EQ(sh.histogram().count(), 3u);
}

// ---- registry integration ------------------------------------------

TEST(TelemetryStats, HistogramFlattensToSixIntegralEntries)
{
    Histogram h;
    for (int i = 0; i < 10; ++i)
        h.sample(16);

    stats::StatGroup root("");
    stats::StatGroup g("gpu0", &root);
    g.addHistogram("park_duration", &h, "MSHR park cycles");

    const auto flat = stats::flattenStats(root);
    std::vector<std::string> names;
    for (const auto &st : flat) {
        names.push_back(st.name);
        EXPECT_TRUE(st.integral) << st.name;
    }
    const std::vector<std::string> expect = {
        "gpu0.park_duration.count", "gpu0.park_duration.max",
        "gpu0.park_duration.p50",   "gpu0.park_duration.p95",
        "gpu0.park_duration.p99",   "gpu0.park_duration.sum",
    };
    EXPECT_EQ(names, expect);

    // Values carry the histogram's deterministic rendering.
    EXPECT_EQ(flat[0].u64, 10u);   // count
    EXPECT_EQ(flat[1].u64, 16u);   // max
    EXPECT_EQ(flat[2].u64, 31u);   // p50: bound of bucket for 16
    EXPECT_EQ(flat[5].u64, 160u);  // sum
}

TEST(TelemetryStats, FindHistogramAndNameClashGuard)
{
    Histogram h;
    stats::StatGroup root("");
    root.addHistogram("lat", &h);
    EXPECT_EQ(root.findHistogram("lat"), &h);
    EXPECT_EQ(root.findHistogram("nope"), nullptr);
}

TEST(TelemetryStats, ScalarSnapshotIgnoresHistograms)
{
    // Epoch deltas walk scalars only; a histogram must not perturb
    // the snapshot size or ordering.
    stats::Scalar c;
    Histogram h;
    stats::StatGroup root("");
    root.addScalar("count", &c);
    root.addHistogram("lat", &h);
    c += 4;
    h.sample(9);
    const auto snap = stats::snapshotScalars(root);
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].first, "count");
    EXPECT_EQ(snap[0].second, 4u);
}

// ---- Prometheus rendering ------------------------------------------

TEST(TelemetryPrometheus, ValueFamilyCarriesHelpTypeSample)
{
    std::string out;
    telemetry::appendPrometheusValue(out, "carve_jobs_queued",
                                     "Jobs waiting.", "gauge", 3.0);
    EXPECT_NE(out.find("# HELP carve_jobs_queued Jobs waiting.\n"),
              std::string::npos);
    EXPECT_NE(out.find("# TYPE carve_jobs_queued gauge\n"),
              std::string::npos);
    EXPECT_NE(out.find("carve_jobs_queued 3\n"), std::string::npos);
}

TEST(TelemetryPrometheus, HistogramFamilyIsCumulativeWithInf)
{
    Histogram h;
    h.sample(1);
    h.sample(1);
    h.sample(1000000);

    std::string out;
    telemetry::appendPrometheusHistogram(
        out, "carve_job_latency_seconds", "Run wall time.", h, 1e-6);
    EXPECT_NE(out.find("# TYPE carve_job_latency_seconds histogram"),
              std::string::npos);
    // The +Inf bucket always equals the total count.
    EXPECT_NE(out.find(
                  "carve_job_latency_seconds_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(out.find("carve_job_latency_seconds_count 3"),
              std::string::npos);
    // Bucket counts are cumulative and nondecreasing in le order.
    std::vector<double> counts;
    std::size_t pos = 0;
    while ((pos = out.find("_bucket{le=", pos)) !=
           std::string::npos) {
        const std::size_t sp = out.find("} ", pos);
        counts.push_back(
            std::strtod(out.c_str() + sp + 2, nullptr));
        pos = sp;
    }
    ASSERT_GE(counts.size(), 2u);
    EXPECT_TRUE(std::is_sorted(counts.begin(), counts.end()));
}

} // namespace
} // namespace carve
