/** @file Unit tests for GpuNode with a scripted SystemFabric mock:
 * post-LLC routing, traffic classification, home-side servicing,
 * hardware invalidation fan-in and kernel-boundary coherence. */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/completion.hh"
#include "core/system_preset.hh"
#include "gpu/gpu.hh"
#include "sim_test_util.hh"

namespace carve {
namespace {

/** Records every off-chip request; services reads after a fixed
 * latency. */
class MockFabric : public SystemFabric
{
  public:
    explicit MockFabric(EventQueue &eq) : eq_(eq) {}

    void
    remoteRead(NodeId src, NodeId home, Addr line,
               Callback done) override
    {
        remote_reads.push_back({src, home, line});
        eq_.scheduleAfter(400, std::move(done));
    }

    void
    remoteWrite(NodeId src, NodeId home, Addr line) override
    {
        remote_writes.push_back({src, home, line});
    }

    void
    cpuRead(NodeId src, Addr line, Callback done) override
    {
        cpu_reads.push_back({src, cpu_node, line});
        eq_.scheduleAfter(700, std::move(done));
    }

    void
    cpuWrite(NodeId src, Addr line) override
    {
        cpu_writes.push_back({src, cpu_node, line});
    }

    void
    bulkTransfer(NodeId, NodeId, std::uint64_t bytes) override
    {
        bulk_bytes += bytes;
    }

    void
    rdcFlush(NodeId, NodeId home, std::uint64_t bytes) override
    {
        ++rdc_flushes;
        last_flush_home = home;
        flush_bytes += bytes;
    }

    void
    coherenceLocalAccess(NodeId, Addr, AccessType type) override
    {
        if (isWrite(type))
            ++local_write_coherence;
    }

    struct Req
    {
        NodeId src;
        NodeId home;
        Addr line;
    };

    EventQueue &eq_;
    std::vector<Req> remote_reads, remote_writes, cpu_reads,
        cpu_writes;
    std::uint64_t bulk_bytes = 0;
    unsigned rdc_flushes = 0;
    NodeId last_flush_home = invalid_node;
    std::uint64_t flush_bytes = 0;
    unsigned local_write_coherence = 0;
};

/** Trivial workload: one read or write per instruction at scripted
 * addresses. */
class OneLineWorkload : public Workload
{
  public:
    std::string nm = "oneline";
    std::vector<Addr> addrs{0x1000};
    AccessType type = AccessType::Read;

    const std::string &name() const override { return nm; }
    unsigned numKernels() const override { return 1; }
    std::uint64_t numCtas(KernelId) const override { return 1; }
    unsigned warpsPerCta() const override { return 1; }
    std::uint64_t
    instsPerWarp(KernelId) const override
    {
        return addrs.size();
    }

    void
    instruction(KernelId, CtaId, WarpId, std::uint64_t idx,
                WarpInstruction &out) const override
    {
        out.type = type;
        out.compute_cycles = 1;
        out.num_lines = 1;
        out.lines[0] = addrs[idx % addrs.size()];
    }
};

struct GpuNodeFixture : public ::testing::Test
{
    GpuNodeFixture()
        : cfg(makePreset(Preset::CarveHwc, test::miniConfig()))
    {
    }

    /** Map @p addr's page at @p home and commit it, so the kernel
     * under test sees a committed (not tentative) remote home. */
    void
    premap(Addr addr, NodeId home)
    {
        pages->recordAccess(addr, home, AccessType::Read, 0);
        pages->commitWindow(0);
    }

    void
    build()
    {
        pages = std::make_unique<PageManager>(cfg);
        fabric = std::make_unique<MockFabric>(eq);
        node = std::make_unique<GpuNode>(eq, cfg, 0, *pages,
                                         *fabric);
        node->setWorkload(&wl);
        node->setKernelDoneCallback([this](NodeId) { done = true; });
        sched = std::make_unique<CtaScheduler>(1);
    }

    void
    runKernel()
    {
        sched->launchKernel(wl.numCtas(0));
        node->startKernel(0, *sched);
        eq.run();
        EXPECT_TRUE(done);
    }

    EventQueue eq;
    SystemConfig cfg;
    OneLineWorkload wl;
    std::unique_ptr<PageManager> pages;
    std::unique_ptr<MockFabric> fabric;
    std::unique_ptr<GpuNode> node;
    std::unique_ptr<CtaScheduler> sched;
    bool done = false;
};

TEST_F(GpuNodeFixture, LocalReadNeverLeavesTheNode)
{
    build();
    runKernel();  // first touch by node 0 => local
    EXPECT_TRUE(fabric->remote_reads.empty());
    EXPECT_EQ(node->traffic().local_reads, 1u);
    EXPECT_EQ(node->traffic().remote_reads, 0u);
}

TEST_F(GpuNodeFixture, RemoteReadGoesThroughRdcThenHits)
{
    build();
    // Pre-map the page at node 1 so node 0's access is remote.
    premap(0x1000, 1);
    wl.addrs = {0x1000, 0x1000, 0x1000};
    runKernel();
    // Exactly one RDC-miss fetch; the repeats hit the carve-out or
    // merge behind the fetch.
    EXPECT_EQ(fabric->remote_reads.size(), 1u);
    EXPECT_EQ(fabric->remote_reads[0].home, 1u);
    ASSERT_NE(node->rdc(), nullptr);
    EXPECT_TRUE(node->rdc()->contains(
        alignDown(Addr{0x1000}, cfg.line_size)));
}

TEST_F(GpuNodeFixture, RemoteWriteIsWrittenThrough)
{
    build();
    premap(0x1000, 1);
    wl.type = AccessType::Write;
    runKernel();
    EXPECT_EQ(fabric->remote_writes.size(), 1u);
    EXPECT_EQ(node->traffic().remote_writes, 1u);
}

TEST_F(GpuNodeFixture, WritebackRdcAbsorbsRemoteWrites)
{
    cfg.rdc.write_policy = RdcWritePolicy::WriteBack;
    build();
    premap(0x1000, 1);
    wl.type = AccessType::Write;
    runKernel();
    // The write allocates into the carve-out; nothing crosses the
    // fabric and the traffic classification says so.
    EXPECT_TRUE(fabric->remote_writes.empty());
    EXPECT_EQ(node->traffic().remote_writes, 0u);
    EXPECT_EQ(node->traffic().rdc_hit_writes, 1u);
}

TEST_F(GpuNodeFixture, SwcBoundaryFlushesDirtyBytesOverFabric)
{
    cfg.rdc.coherence = RdcCoherence::Software;
    cfg.rdc.write_policy = RdcWritePolicy::WriteBack;
    build();
    premap(0x1000, 1);
    wl.type = AccessType::Write;
    runKernel();
    EXPECT_EQ(node->traffic().rdc_hit_writes, 1u);
    const Cycle stall = node->kernelBoundary();
    EXPECT_GT(stall, 0u);
    EXPECT_EQ(fabric->rdc_flushes, 1u);
    EXPECT_EQ(fabric->last_flush_home, 1u);
    EXPECT_EQ(fabric->flush_bytes,
              node->rdc()->dirtyMap().regionSize());
}

TEST_F(GpuNodeFixture, LocalWriteTriggersCoherenceHook)
{
    build();
    wl.type = AccessType::Write;
    runKernel();
    EXPECT_EQ(fabric->local_write_coherence, 1u);
    EXPECT_EQ(node->traffic().local_writes, 1u);
}

TEST_F(GpuNodeFixture, HomeSideServicingTouchesLocalDram)
{
    build();
    const std::uint64_t reads_before = node->mem().reads();
    // Bindable flag: serviceRemoteRead takes a POD Completion.
    struct Served
    {
        bool hit = false;
        void mark() { hit = true; }
    } served;
    node->serviceRemoteRead(0x2000,
                            Completion::bind<&Served::mark>(&served));
    node->serviceRemoteWrite(0x3000);
    eq.run();
    EXPECT_TRUE(served.hit);
    EXPECT_EQ(node->mem().reads(), reads_before + 1);
    EXPECT_EQ(node->mem().writes(), 1u);
}

TEST_F(GpuNodeFixture, InvalidateLineSweepsAllStructures)
{
    build();
    premap(0x1000, 1);
    runKernel();  // line now in L1, L2 and RDC
    const Addr line = alignDown(Addr{0x1000}, cfg.line_size);
    EXPECT_TRUE(node->l2().contains(line));
    EXPECT_TRUE(node->rdc()->contains(line));
    node->invalidateLine(line);
    EXPECT_FALSE(node->l2().contains(line));
    EXPECT_FALSE(node->rdc()->contains(line));
    EXPECT_FALSE(node->sm(0).l1().contains(line));
}

TEST_F(GpuNodeFixture, BoundaryKeepsRemoteLinesUnderHwCoherence)
{
    build();
    premap(0x1000, 1);
    runKernel();
    const Addr line = alignDown(Addr{0x1000}, cfg.line_size);
    EXPECT_EQ(node->kernelBoundary(), 0u);
    EXPECT_TRUE(node->l2().contains(line));   // HWC retains the LLC
    EXPECT_TRUE(node->rdc()->contains(line)); // and the carve-out
    EXPECT_FALSE(node->sm(0).l1().contains(line));  // L1 always drops
}

TEST_F(GpuNodeFixture, BoundaryDropsEverythingUnderSwCoherence)
{
    cfg.rdc.coherence = RdcCoherence::Software;
    build();
    premap(0x1000, 1);
    runKernel();
    const Addr line = alignDown(Addr{0x1000}, cfg.line_size);
    node->kernelBoundary();
    EXPECT_FALSE(node->l2().contains(line));
    EXPECT_FALSE(node->rdc()->contains(line));  // stale epoch
}

TEST_F(GpuNodeFixture, CpuResidentPageUsesCpuPath)
{
    cfg.numa.spill_fraction = 0.999;
    cfg.numa.um_migration_threshold = 1u << 30;
    build();
    wl.addrs = {0x1000, 0x5000000};
    runKernel();
    EXPECT_EQ(fabric->cpu_reads.size(), 2u);
    EXPECT_EQ(node->traffic().cpu_reads, 2u);
    EXPECT_TRUE(fabric->remote_reads.empty());
}

TEST_F(GpuNodeFixture, NoRdcFallsBackToDirectRemoteReads)
{
    cfg = makePreset(Preset::NumaGpu, test::miniConfig());
    build();
    premap(0x1000, 1);
    runKernel();
    EXPECT_EQ(node->rdc(), nullptr);
    EXPECT_EQ(fabric->remote_reads.size(), 1u);
    // Remote line cached in the LLC (NUMA-GPU baseline behaviour).
    EXPECT_TRUE(node->l2().contains(
        alignDown(Addr{0x1000}, cfg.line_size)));
}

TEST_F(GpuNodeFixture, LlcRemoteCachingCanBeDisabled)
{
    cfg = makePreset(Preset::NumaGpu, test::miniConfig());
    cfg.numa.llc_caches_remote = false;
    build();
    premap(0x1000, 1);
    wl.addrs = {0x1000, 0x1000};
    runKernel();
    // Both accesses fetched remotely: no LLC allocation for remote
    // lines (L1 still captures the second in some interleavings, so
    // assert on the LLC only).
    EXPECT_FALSE(node->l2().contains(
        alignDown(Addr{0x1000}, cfg.line_size)));
}

TEST_F(GpuNodeFixture, InstsIssuedAggregatesAcrossSms)
{
    build();
    wl.addrs = {0x1000, 0x2000, 0x3000};
    runKernel();
    EXPECT_EQ(node->instsIssued(), 3u);
    EXPECT_FALSE(node->busy());
}

} // namespace
} // namespace carve
