/** @file Tests for the carve-served sweep service: content-addressed
 * job keys (stable across override orderings), JobSpec protocol round
 * trips, the LRU on-disk result cache, and an end-to-end daemon over
 * a real unix socket — memoization, byte-identical cached results,
 * disk-cache survival across restarts, cancellation, backpressure,
 * and graceful drain. */

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>

#include "common/logging.hh"
#include "harness/results_io.hh"
#include "harness/sweep.hh"
#include "service/client.hh"
#include "service/job_key.hh"
#include "service/result_cache.hh"
#include "service/server.hh"
#include "sim_test_util.hh"

namespace carve {
namespace service {
namespace {

using test::miniConfig;
using test::miniWorkload;

class ServiceTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogQuiet(true); }
    void TearDown() override { setLogQuiet(false); }
};

harness::RunSpec
miniSpec(std::uint64_t seed = 1)
{
    harness::RunSpec s;
    s.preset = Preset::CarveHwc;
    s.workload = miniWorkload(RegionKind::SharedStream, 0.1);
    s.workload.name = "svc";
    s.base = miniConfig();
    s.opts.seed = seed;
    s.opts.max_cycles = 50'000'000;
    // Byte-compare assertions below need results that are a pure
    // function of the spec; host wall/RSS stats would differ per run.
    s.host_stats = false;
    return s;
}

JobSpec
miniJob(std::uint64_t seed = 1)
{
    return jobFromRunSpec(miniSpec(seed));
}

/** Fresh scratch directory under the gtest temp dir. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** Connect with retries: the server thread binds asynchronously. */
std::optional<Client>
connectRetry(const std::string &sock)
{
    for (int i = 0; i < 250; ++i) {
        if (std::filesystem::exists(sock)) {
            auto c = Client::connect(sock);
            if (c)
                return c;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return std::nullopt;
}

// ---- job identity --------------------------------------------------

TEST_F(ServiceTest, JobKeyIgnoresOverrideApplicationOrder)
{
    JobSpec a = miniJob();
    JobSpec b = miniJob();
    a.config.applyOverride("rdc.size", "1048576");
    a.config.applyOverride("numa.replication", "readonly");
    a.config.applyOverride("link.gpu_gpu_bw", "32");
    b.config.applyOverride("link.gpu_gpu_bw", "32");
    b.config.applyOverride("numa.replication", "readonly");
    b.config.applyOverride("rdc.size", "1048576");
    EXPECT_EQ(jobKey(a), jobKey(b))
        << "override application order must not change job identity";
    EXPECT_TRUE(isJobKey(jobKey(a)));
    EXPECT_EQ(jobSpecToJson(a).dump(0), jobSpecToJson(b).dump(0));
}

TEST_F(ServiceTest, JobKeySeparatesSemanticDifferences)
{
    const JobSpec base = miniJob();

    JobSpec seed = base;
    seed.seed = 2;
    EXPECT_NE(jobKey(seed), jobKey(base));

    JobSpec hs = base;
    hs.host_stats = true;  // changes result bytes, so changes the key
    EXPECT_NE(jobKey(hs), jobKey(base));

    JobSpec cfg = base;
    cfg.config.applyOverride("rdc.size", "1048576");
    EXPECT_NE(jobKey(cfg), jobKey(base));

    JobSpec wl = base;
    wl.workload.insts_per_warp += 1;
    EXPECT_NE(jobKey(wl), jobKey(base));
}

TEST_F(ServiceTest, CanonicalOverridesAreSortedAndComplete)
{
    const SystemConfig cfg = miniConfig();
    const auto canon = cfg.canonicalOverrides();
    ASSERT_EQ(canon.size(), cfg.toOverrides().size());
    for (std::size_t i = 1; i < canon.size(); ++i)
        EXPECT_LT(canon[i - 1].key, canon[i].key);

    // Applying the canonical sequence reproduces the config.
    SystemConfig back;
    for (const auto &ov : canon)
        back.applyOverride(ov.key, ov.value);
    EXPECT_EQ(back.toOverrides().size(), cfg.toOverrides().size());
    const auto a = cfg.canonicalOverrides();
    const auto b = back.canonicalOverrides();
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].key, b[i].key);
        EXPECT_EQ(a[i].value, b[i].value) << a[i].key;
    }
}

TEST_F(ServiceTest, JobSpecSurvivesJsonRoundTrip)
{
    JobSpec spec = miniJob(7);
    spec.max_cycles = 123456;
    spec.audit = true;
    const JobSpec back = jobSpecFromJson(jobSpecToJson(spec));
    EXPECT_EQ(back.preset, spec.preset);
    EXPECT_EQ(back.workload.name, spec.workload.name);
    ASSERT_EQ(back.workload.regions.size(),
              spec.workload.regions.size());
    EXPECT_EQ(back.seed, 7u);
    EXPECT_EQ(back.max_cycles, 123456u);
    EXPECT_TRUE(back.audit);
    EXPECT_FALSE(back.host_stats);
    EXPECT_EQ(jobKey(back), jobKey(spec))
        << "round trip must preserve content identity";
}

TEST_F(ServiceTest, JobSpecFromJsonRejectsGarbage)
{
    ScopedErrorCapture capture;
    EXPECT_THROW(jobSpecFromJson(json::parse("{}", "t")),
                 SimAbortError);
    EXPECT_THROW(jobSpecFromJson(json::parse("42", "t")),
                 SimAbortError);
    // Wrong job schema version (edit the canonical dump textually:
    // json::Value::set appends, it does not replace).
    const std::string dump = jobSpecToJson(miniJob()).dump(0);
    std::string wrong_schema = dump;
    wrong_schema.replace(wrong_schema.find(kJobSchema),
                         std::strlen(kJobSchema), "carve-job/999");
    EXPECT_THROW(jobSpecFromJson(json::parse(wrong_schema, "t")),
                 SimAbortError);
    // Unknown config key.
    std::string bad_key = dump;
    bad_key.replace(bad_key.find("\"num_gpus\""),
                    std::strlen("\"num_gpus\""), "\"no_such_key\"");
    EXPECT_THROW(jobSpecFromJson(json::parse(bad_key, "t")),
                 SimAbortError);
}

// ---- result cache --------------------------------------------------

TEST_F(ServiceTest, ResultCacheRoundTripsAndSurvivesReopen)
{
    const std::string dir = scratchDir("svc-cache-rt");
    const std::string key = "00112233445566aa";
    {
        ResultCache c(dir, 0);
        EXPECT_TRUE(c.enabled());
        EXPECT_FALSE(c.get(key).has_value());
        c.put(key, "{\"x\":1}");
        const auto got = c.get(key);
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, "{\"x\":1}");
        EXPECT_EQ(c.stats().stores, 1u);
        EXPECT_EQ(c.stats().misses, 1u);
        EXPECT_EQ(c.stats().hits, 1u);
    }
    // A new instance adopts the directory: entries persist.
    ResultCache c2(dir, 0);
    const auto got = c2.get(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "{\"x\":1}");
}

TEST_F(ServiceTest, ResultCacheEvictsLeastRecentlyUsed)
{
    const std::string dir = scratchDir("svc-cache-lru");
    ResultCache c(dir, 100);
    const std::string k1 = "1111111111111111";
    const std::string k2 = "2222222222222222";
    const std::string k3 = "3333333333333333";
    c.put(k1, std::string(40, 'a'));
    c.put(k2, std::string(40, 'b'));
    ASSERT_TRUE(c.get(k1).has_value());  // k1 now more recent than k2
    c.put(k3, std::string(40, 'c'));     // 120 > 100: k2 must go
    EXPECT_TRUE(c.get(k1).has_value());
    EXPECT_FALSE(c.get(k2).has_value());
    EXPECT_TRUE(c.get(k3).has_value());
    EXPECT_EQ(c.stats().evictions, 1u);
    EXPECT_LE(c.stats().bytes, 100u);
    EXPECT_FALSE(
        std::filesystem::exists(dir + "/" + k2 + ".json"));
}

TEST_F(ServiceTest, DisabledResultCacheIsInert)
{
    ResultCache c("", 0);
    EXPECT_FALSE(c.enabled());
    c.put("aaaaaaaaaaaaaaaa", "{}");
    EXPECT_FALSE(c.get("aaaaaaaaaaaaaaaa").has_value());
    EXPECT_EQ(c.stats().stores, 0u);
}

// ---- end-to-end daemon ---------------------------------------------

TEST_F(ServiceTest, ServerMemoizesAndServesByteIdenticalRecords)
{
    const std::string dir = scratchDir("svc-e2e");
    Server::Options opt;
    opt.socket_path = dir + "/s.sock";
    opt.threads = 2;
    opt.cache_dir = dir + "/cache";
    opt.quiet = true;

    std::string first_record;
    const JobSpec job = miniJob();

    {
        Server server(opt);
        std::jthread serving([&] { server.serve(); });
        auto client = connectRetry(opt.socket_path);
        ASSERT_TRUE(client.has_value());

        const SubmitReply s1 = client->submit(job);
        ASSERT_TRUE(s1.ok) << s1.error;
        EXPECT_TRUE(isJobKey(s1.id));
        EXPECT_EQ(s1.id, jobKey(job));

        bool saw_event = false;
        const ResultReply r1 = client->result(
            s1.id, [&](const std::string &ev, const std::string &,
                       const std::string &) {
                saw_event |= ev == "state";
            });
        ASSERT_TRUE(r1.ok) << r1.error;
        EXPECT_EQ(r1.state, "done");
        EXPECT_FALSE(r1.cached);
        EXPECT_TRUE(saw_event);
        EXPECT_EQ(r1.run.status, harness::RunStatus::Ok);
        EXPECT_GT(r1.run.sim.cycles, 0u);
        first_record = r1.record_json;

        // The served record is byte-identical to in-process
        // execution of the same spec.
        const harness::RunResult local =
            harness::executeRun(miniSpec());
        EXPECT_EQ(harness::resultToJson(local).dump(0),
                  first_record);

        // Identical resubmission: answered from the registry
        // without re-simulating, byte-identical.
        const SubmitReply s2 = client->submit(job);
        ASSERT_TRUE(s2.ok) << s2.error;
        EXPECT_EQ(s2.id, s1.id);
        EXPECT_TRUE(s2.cached);
        const ResultReply r2 = client->result(s1.id);
        ASSERT_TRUE(r2.ok) << r2.error;
        EXPECT_EQ(r2.record_json, first_record);

        const json::Value st = client->stats();
        EXPECT_GE(st.at("memo_hits").asInt(), 1);
        EXPECT_EQ(st.at("completed").asInt(), 1);
        EXPECT_GE(st.at("cache").at("stores").asInt(), 1);

        server.requestDrain();
        serving.join();
        EXPECT_FALSE(
            std::filesystem::exists(opt.socket_path))
            << "drain must remove the socket file";
    }

    // Restarted daemon, same cache dir: the disk cache answers the
    // resubmission without re-simulating, byte-identically.
    {
        Server server(opt);
        std::jthread serving([&] { server.serve(); });
        auto client = connectRetry(opt.socket_path);
        ASSERT_TRUE(client.has_value());

        const SubmitReply s = client->submit(job);
        ASSERT_TRUE(s.ok) << s.error;
        EXPECT_TRUE(s.cached) << "disk cache must answer the restart";
        const ResultReply r = client->result(s.id);
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_TRUE(r.cached);
        EXPECT_EQ(r.record_json, first_record);

        const json::Value st = client->stats();
        EXPECT_EQ(st.at("completed").asInt(), 0)
            << "nothing may have been simulated after the restart";
        EXPECT_GE(st.at("cache").at("hits").asInt(), 1);

        server.requestDrain();
        serving.join();
    }
}

TEST_F(ServiceTest, ServerHandlesFailedRunsAndBadRequests)
{
    const std::string dir = scratchDir("svc-fail");
    Server::Options opt;
    opt.socket_path = dir + "/s.sock";
    opt.threads = 1;
    opt.cache_dir = dir + "/cache";
    opt.quiet = true;

    Server server(opt);
    std::jthread serving([&] { server.serve(); });
    auto client = connectRetry(opt.socket_path);
    ASSERT_TRUE(client.has_value());

    // A spec whose config fails validation deep inside system
    // construction: the run must come back Failed, not kill the
    // daemon.
    harness::RunSpec bad = miniSpec();
    bad.base.line_size = 100;  // not a power of two
    const SubmitReply s = client->submit(jobFromRunSpec(bad));
    ASSERT_TRUE(s.ok) << s.error;
    const ResultReply r = client->result(s.id);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.run.status, harness::RunStatus::Failed);
    EXPECT_FALSE(r.run.error.empty());

    // Failed runs are memoized in the registry but never persisted.
    const SubmitReply again = client->submit(jobFromRunSpec(bad));
    ASSERT_TRUE(again.ok);
    EXPECT_TRUE(again.cached);
    const json::Value st = client->stats();
    EXPECT_EQ(st.at("failed_runs").asInt(), 1);
    EXPECT_EQ(st.at("cache").at("stores").asInt(), 0);

    // Malformed submissions and unknown ids error without dropping
    // the connection.
    json::Value req{json::Members{}};
    req.set("op", "submit");
    req.set("job", json::Value{json::Members{}});
    const json::Value resp = client->request(req);
    ASSERT_TRUE(resp.isObject());
    EXPECT_FALSE(resp.at("ok").asBool());

    json::Value status{json::Members{}};
    status.set("op", "status");
    status.set("id", "ffffffffffffffff");
    const json::Value sresp = client->request(status);
    ASSERT_TRUE(sresp.isObject());
    EXPECT_FALSE(sresp.at("ok").asBool());

    EXPECT_FALSE(client->cancel("ffffffffffffffff"));

    // The connection survived all of the above.
    const json::Value st2 = client->stats();
    EXPECT_TRUE(st2.at("ok").asBool());

    server.requestDrain();
    serving.join();
}

TEST_F(ServiceTest, ServerAppliesBackpressureAndCancellation)
{
    const std::string dir = scratchDir("svc-queue");
    Server::Options opt;
    opt.socket_path = dir + "/s.sock";
    opt.threads = 1;
    opt.cache_dir = "";  // cache off so every job needs a worker
    opt.queue_depth = 1;
    opt.quiet = true;

    Server server(opt);
    std::jthread serving([&] { server.serve(); });
    auto client = connectRetry(opt.socket_path);
    ASSERT_TRUE(client.has_value());

    // Occupy the single worker with a longer run.
    harness::RunSpec slow = miniSpec(11);
    slow.workload.insts_per_warp *= 16;
    const SubmitReply s1 = client->submit(jobFromRunSpec(slow));
    ASSERT_TRUE(s1.ok) << s1.error;

    // Wait until it is actually running so the queue is empty.
    json::Value status{json::Members{}};
    status.set("op", "status");
    status.set("id", s1.id);
    for (int i = 0; i < 250; ++i) {
        const json::Value sr = client->request(status);
        if (sr.at("state").isString() &&
            sr.at("state").asString() != "queued")
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    // Fill the one queue slot, then overflow it.
    const SubmitReply s2 = client->submit(jobFromRunSpec(miniSpec(12)));
    ASSERT_TRUE(s2.ok) << s2.error;
    const SubmitReply s3 = client->submit(jobFromRunSpec(miniSpec(13)));
    EXPECT_FALSE(s3.ok);
    EXPECT_TRUE(s3.retriable)
        << "queue-full rejection must be marked retriable";

    // Cancel the queued job; its waiters get a cancelled error.
    EXPECT_TRUE(client->cancel(s2.id));
    const ResultReply r2 = client->result(s2.id);
    EXPECT_FALSE(r2.ok);
    EXPECT_EQ(r2.state, "cancelled");

    // Cancelling a running (or done) job is a no-op.
    EXPECT_FALSE(client->cancel(s1.id));

    // Resubmitting after cancellation runs the job for real.
    const SubmitReply s2b = client->submit(jobFromRunSpec(miniSpec(12)));
    ASSERT_TRUE(s2b.ok) << s2b.error;
    EXPECT_FALSE(s2b.cached);
    const ResultReply r2b = client->result(s2b.id);
    ASSERT_TRUE(r2b.ok) << r2b.error;
    EXPECT_EQ(r2b.run.status, harness::RunStatus::Ok);

    const ResultReply r1 = client->result(s1.id);
    ASSERT_TRUE(r1.ok) << r1.error;

    server.requestDrain();
    serving.join();
}

TEST_F(ServiceTest, MetricsOpAnswersPrometheusTextExposition)
{
    const std::string dir = scratchDir("svc-metrics");
    Server::Options opt;
    opt.socket_path = dir + "/s.sock";
    opt.threads = 1;
    opt.cache_dir = dir + "/cache";
    opt.quiet = true;

    Server server(opt);
    std::jthread serving([&] { server.serve(); });
    auto client = connectRetry(opt.socket_path);
    ASSERT_TRUE(client.has_value());

    // Before any job: every family present, all counters zero.
    std::string text = client->metrics();
    ASSERT_FALSE(text.empty());
    for (const char *family :
         {"carve_uptime_seconds", "carve_worker_threads",
          "carve_jobs_queued", "carve_jobs_in_flight",
          "carve_jobs_submitted_total",
          "carve_jobs_completed_total", "carve_jobs_failed_total",
          "carve_memo_hits_total", "carve_cache_hits_total",
          "carve_cache_misses_total", "carve_cache_bytes",
          "carve_draining", "carve_job_latency_seconds"}) {
        EXPECT_NE(text.find(std::string("# TYPE ") + family),
                  std::string::npos)
            << "missing family " << family;
    }
    EXPECT_NE(text.find("carve_jobs_completed_total 0\n"),
              std::string::npos);

    // One real run plus a memoized resubmit: counters and the
    // latency histogram move, and the JSON stats endpoint reports
    // the same figures (both read one snapshot path).
    const JobSpec job = miniJob();
    const SubmitReply s = client->submit(job);
    ASSERT_TRUE(s.ok) << s.error;
    const ResultReply r = client->result(s.id);
    ASSERT_TRUE(r.ok) << r.error;
    const SubmitReply again = client->submit(job);
    ASSERT_TRUE(again.ok);
    EXPECT_TRUE(again.cached);

    // The disk store trails the Done transition by a beat (the
    // worker persists after waking waiters); poll it in.
    for (int i = 0; i < 250; ++i) {
        text = client->metrics();
        if (text.find("carve_cache_stores_total 1\n") !=
            std::string::npos)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_NE(text.find("carve_jobs_completed_total 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("carve_memo_hits_total 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("carve_cache_stores_total 1\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("carve_job_latency_seconds_bucket{le=\"+Inf\"} 1"),
        std::string::npos);
    EXPECT_NE(text.find("carve_job_latency_seconds_count 1"),
              std::string::npos);

    const json::Value st = client->stats();
    EXPECT_EQ(st.at("completed").asInt(), 1);
    EXPECT_TRUE(st.at("job_latency").isObject());
    EXPECT_EQ(st.at("job_latency").at("count").asInt(), 1);
    EXPECT_GT(st.at("uptime_seconds").asDouble(), 0.0);
    EXPECT_FALSE(st.at("draining").asBool());

    server.requestDrain();
    serving.join();
}

} // namespace
} // namespace service
} // namespace carve
