/** @file Unit tests for the CARVE RDC controller: hit/miss timing
 * paths, write policies, MSHR merging, software-coherence boundaries
 * and hardware invalidation, using a scripted remote-fetch fake. */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/completion.hh"
#include "common/config.hh"
#include "common/event_queue.hh"
#include "dramcache/rdc_controller.hh"
#include "mem/memory_controller.hh"

namespace carve {
namespace {

/** Test helper: bindable Completion targets for read callbacks. */
struct Probe
{
    EventQueue *eq = nullptr;
    Cycle when = 0;
    int count = 0;
    std::vector<Cycle> laps;

    void bump() { ++count; }
    void stamp()
    {
        when = eq->now();
        ++count;
    }
    void lap(std::uint64_t start)
    {
        laps.push_back(eq->now() - start);
    }
};

struct RdcFixture : public ::testing::Test
{
    RdcFixture()
    {
        cfg.num_gpus = 4;
        cfg.dram.channels = 2;
        cfg.dram.capacity = 64 * MiB;
        cfg.rdc.enabled = true;
        cfg.rdc.size = 4 * MiB;
        cfg.rdc.coherence = RdcCoherence::HardwareVI;
        mem = std::make_unique<MemoryController>(eq, cfg);
        rebuild();
    }

    RdcRemoteOps
    makeOps()
    {
        RdcRemoteOps ops;
        ops.fetch_remote = [this](NodeId home, Addr line,
                                  Completion done) {
            ++fetches;
            last_fetch_home = home;
            last_fetch_line = line;
            // Model a fixed remote round trip.
            eq.scheduleAfter(remote_latency, done);
        };
        ops.write_remote = [this](NodeId home, Addr line) {
            ++remote_writes;
            last_write_home = home;
            last_write_line = line;
        };
        ops.flush_remote = [this](NodeId home, std::uint64_t bytes) {
            ++flushes;
            last_flush_home = home;
            flushed_bytes += bytes;
        };
        return ops;
    }

    /** (Re)create the controller; derived fixtures that change
     * construction-time config (MSHR sizing) call this again. */
    void
    rebuild()
    {
        rdc = std::make_unique<RdcController>(eq, cfg, 0, *mem,
                                              makeOps());
    }

    EventQueue eq;
    SystemConfig cfg;
    std::unique_ptr<MemoryController> mem;
    std::unique_ptr<RdcController> rdc;

    unsigned fetches = 0;
    unsigned remote_writes = 0;
    unsigned flushes = 0;
    std::uint64_t flushed_bytes = 0;
    NodeId last_fetch_home = invalid_node;
    Addr last_fetch_line = invalid_addr;
    NodeId last_write_home = invalid_node;
    Addr last_write_line = invalid_addr;
    NodeId last_flush_home = invalid_node;
    static constexpr Cycle remote_latency = 500;
};

TEST_F(RdcFixture, ColdReadFetchesRemotelyAndInstalls)
{
    Probe p;
    rdc->read(1, 0x1000, Completion::bind<&Probe::bump>(&p));
    eq.run();
    EXPECT_EQ(p.count, 1);
    EXPECT_EQ(fetches, 1u);
    EXPECT_EQ(last_fetch_home, 1u);
    EXPECT_EQ(last_fetch_line, 0x1000u);
    EXPECT_TRUE(rdc->contains(0x1000));
    EXPECT_EQ(rdc->readMisses(), 1u);
}

TEST_F(RdcFixture, SecondReadHitsLocally)
{
    rdc->read(1, 0x1000, {});
    eq.run();
    Probe p;
    rdc->read(1, 0x1000, Completion::bind<&Probe::bump>(&p));
    eq.run();
    EXPECT_EQ(p.count, 1);
    EXPECT_EQ(fetches, 1u);  // no second remote trip
    EXPECT_EQ(rdc->readHits(), 1u);
}

TEST_F(RdcFixture, HitIsFasterThanMiss)
{
    Probe miss;
    Probe hit;
    miss.eq = hit.eq = &eq;
    rdc->read(1, 0x1000, Completion::bind<&Probe::stamp>(&miss));
    eq.run();
    const Cycle hit_start = eq.now();
    rdc->read(1, 0x1000, Completion::bind<&Probe::stamp>(&hit));
    eq.run();
    EXPECT_GE(miss.when, remote_latency);
    EXPECT_LT(hit.when - hit_start, miss.when);
}

TEST_F(RdcFixture, ConcurrentMissesToSameLineMerge)
{
    Probe p;
    rdc->read(1, 0x2000, Completion::bind<&Probe::bump>(&p));
    rdc->read(1, 0x2000, Completion::bind<&Probe::bump>(&p));
    rdc->read(1, 0x2000, Completion::bind<&Probe::bump>(&p));
    eq.run();
    EXPECT_EQ(p.count, 3);
    EXPECT_EQ(fetches, 1u);  // one remote fetch services all three
}

TEST_F(RdcFixture, WriteThroughForwardsEveryWrite)
{
    rdc->write(2, 0x3000);
    eq.run();
    EXPECT_EQ(remote_writes, 1u);
    EXPECT_EQ(last_write_home, 2u);
    // Write-through never allocates on a write miss.
    EXPECT_FALSE(rdc->contains(0x3000));
}

TEST_F(RdcFixture, WriteThroughUpdatesResidentCopy)
{
    rdc->read(1, 0x1000, {});
    eq.run();
    rdc->write(1, 0x1000);
    eq.run();
    EXPECT_EQ(remote_writes, 1u);
    EXPECT_TRUE(rdc->contains(0x1000));  // still resident & current
}

TEST_F(RdcFixture, SwcBoundaryInstantlyInvalidatesViaEpoch)
{
    rdc->read(1, 0x1000, {});
    eq.run();
    ASSERT_TRUE(rdc->contains(0x1000));
    const Cycle stall = rdc->kernelBoundarySwc();
    EXPECT_EQ(stall, 0u);  // write-through: nothing to flush
    EXPECT_FALSE(rdc->contains(0x1000));  // stale epoch
    EXPECT_EQ(rdc->epoch().current(), 1u);
}

TEST_F(RdcFixture, HardwareInvalidateDropsLine)
{
    rdc->read(1, 0x1000, {});
    eq.run();
    EXPECT_TRUE(rdc->invalidateLine(0x1000));
    EXPECT_FALSE(rdc->contains(0x1000));
    EXPECT_FALSE(rdc->invalidateLine(0x1000));
}

struct RdcWritebackFixture : public RdcFixture
{
    RdcWritebackFixture()
    {
        cfg.rdc.write_policy = RdcWritePolicy::WriteBack;
    }
};

TEST_F(RdcWritebackFixture, WritesAllocateAndDeferPropagation)
{
    rdc->write(1, 0x5000);
    eq.run();
    EXPECT_EQ(remote_writes, 0u);  // deferred
    EXPECT_TRUE(rdc->contains(0x5000));
    EXPECT_GT(rdc->dirtyMap().dirtyRegions(), 0u);
}

TEST_F(RdcWritebackFixture, BoundaryFlushCostsLinkTime)
{
    for (Addr a = 0; a < 64; ++a)
        rdc->write(1, 0x100000 + a * 4096 * 16);
    eq.run();
    const std::uint64_t dirty = rdc->dirtyMap().dirtyBytes();
    ASSERT_GT(dirty, 0u);
    const Cycle stall = rdc->kernelBoundarySwc();
    EXPECT_EQ(stall, static_cast<Cycle>(
        static_cast<double>(dirty) / cfg.link.gpu_gpu_bw));
    EXPECT_EQ(rdc->dirtyMap().dirtyRegions(), 0u);
    // The stall is not just accounting: the dirty bytes really leave
    // for their home over the flush path.
    EXPECT_GT(flushes, 0u);
    EXPECT_EQ(flushed_bytes, dirty);
    EXPECT_EQ(last_flush_home, 1u);
    // A second boundary has nothing left to flush.
    EXPECT_EQ(rdc->kernelBoundarySwc(), 0u);
    EXPECT_EQ(flushed_bytes, dirty);
}

TEST_F(RdcWritebackFixture, DisplacedDirtyVictimIsWrittenHome)
{
    rdc->write(1, 0x5000);
    eq.run();
    ASSERT_EQ(remote_writes, 0u);  // absorbed, not forwarded
    // 4 MiB direct-mapped carve-out: +4 MiB maps to the same set, so
    // the fill displaces the dirty line.
    rdc->read(2, 0x5000 + 4 * MiB, {});
    eq.run();
    EXPECT_EQ(remote_writes, 1u);
    EXPECT_EQ(last_write_home, 1u);
    EXPECT_EQ(last_write_line, 0x5000u);
    EXPECT_FALSE(rdc->contains(0x5000));
    EXPECT_TRUE(rdc->contains(0x5000 + 4 * MiB));
    // The displaced set no longer reads as dirty...
    EXPECT_EQ(rdc->dirtyMap().dirtyLines(), 0u);
    // ...so the next boundary flushes nothing.
    EXPECT_EQ(rdc->kernelBoundarySwc(), 0u);
    EXPECT_EQ(flushes, 0u);
}

TEST_F(RdcWritebackFixture, WriteConflictWritesVictimBackFirst)
{
    rdc->write(1, 0x5000);
    rdc->write(2, 0x5000 + 4 * MiB);  // same set, different home
    eq.run();
    EXPECT_EQ(remote_writes, 1u);
    EXPECT_EQ(last_write_home, 1u);
    EXPECT_EQ(last_write_line, 0x5000u);
    // The set's dirty-map entry now belongs to the new line.
    ASSERT_EQ(rdc->dirtyMap().dirtyLines(), 1u);
    EXPECT_EQ(rdc->dirtyMap().dirtySets().begin()->second, 2u);
    EXPECT_TRUE(rdc->contains(0x5000 + 4 * MiB));
}

TEST_F(RdcWritebackFixture, InvalidateDropsDirtyTracking)
{
    rdc->write(1, 0x5000);
    eq.run();
    EXPECT_EQ(rdc->dirtyMap().dirtyLines(), 1u);
    // A hardware invalidate means the writer holds newer data; the
    // local dirty copy is discarded, never written back.
    EXPECT_TRUE(rdc->invalidateLine(0x5000));
    EXPECT_EQ(rdc->dirtyMap().dirtyLines(), 0u);
    EXPECT_EQ(rdc->kernelBoundarySwc(), 0u);
    EXPECT_EQ(flushes, 0u);
    EXPECT_EQ(remote_writes, 0u);
}

TEST_F(RdcWritebackFixture, DirtyStateAuditIsCleanThroughout)
{
    std::vector<std::string> fails;
    rdc->write(1, 0x5000);
    rdc->write(2, 0x5000 + 4 * MiB);  // displacement
    eq.run();
    rdc->auditDirtyState("rdc", fails);
    EXPECT_TRUE(fails.empty());
    rdc->kernelBoundarySwc();          // flush + cleanAll
    rdc->auditDirtyState("rdc", fails);
    EXPECT_TRUE(fails.empty());
}

struct RdcPredictorFixture : public RdcFixture
{
    RdcPredictorFixture() { cfg.rdc.hit_predictor = true; }
};

TEST_F(RdcPredictorFixture, PredictedMissOverlapsProbeWithFetch)
{
    // Train the predictor with a miss streak in one region.
    Probe p;
    p.eq = &eq;
    rdc->read(1, 0x10000, Completion::bind<&Probe::stamp>(&p));
    eq.run();

    // Far region shares the predictor entry only probabilistically;
    // force training on the same region with distinct lines.
    for (int i = 1; i <= 8; ++i) {
        const Cycle start = eq.now();
        rdc->read(1, 0x10000 + static_cast<Addr>(i) * 128,
                  Completion::bind<&Probe::lap>(&p, start));
        eq.run();
    }
    // Once the predictor flips to miss, latency drops to roughly the
    // bare remote trip (no serialized probe).
    EXPECT_GT(rdc->predictedBypasses(), 0u);
    EXPECT_LE(p.laps.back(), remote_latency + 10);
}

struct RdcTinyMshrFixture : public RdcFixture
{
    RdcTinyMshrFixture()
    {
        // The MSHR file is sized at construction: shrink and rebuild.
        cfg.rdc.mshr_entries = 1;
        rebuild();
    }
};

TEST_F(RdcTinyMshrFixture, OverflowParksInsteadOfPanicking)
{
    // Five distinct lines against a single MSHR register: the old
    // controller panicked ("MSHR overflow") under this legal config.
    // Now the excess parks on the wake-list and drains in FIFO order
    // as each fetch completes.
    Probe p;
    for (Addr i = 0; i < 5; ++i) {
        rdc->read(1, 0x1000 + i * 128,
                  Completion::bind<&Probe::bump>(&p));
    }
    eq.run();
    EXPECT_EQ(p.count, 5);
    EXPECT_EQ(fetches, 5u);
    EXPECT_GT(rdc->mshrs().parks(), 0u);
    for (Addr i = 0; i < 5; ++i)
        EXPECT_TRUE(rdc->contains(0x1000 + i * 128));
}

TEST_F(RdcTinyMshrFixture, ParkedMissToOutstandingLineMerges)
{
    // A second miss to the line already being fetched must merge even
    // while the file is full, never park or double-fetch.
    Probe p;
    rdc->read(1, 0x1000, Completion::bind<&Probe::bump>(&p));
    rdc->read(1, 0x1000, Completion::bind<&Probe::bump>(&p));
    eq.run();
    EXPECT_EQ(p.count, 2);
    EXPECT_EQ(fetches, 1u);
}

TEST_F(RdcFixture, DistinctSetsDoNotInterfere)
{
    // Fill many distinct lines; all must be resident afterwards
    // (4 MiB RDC == 32768 sets, these 100 lines cannot conflict).
    for (Addr i = 0; i < 100; ++i)
        rdc->read(1, 0x100000 + i * 128, {});
    eq.run();
    for (Addr i = 0; i < 100; ++i)
        EXPECT_TRUE(rdc->contains(0x100000 + i * 128));
}

} // namespace
} // namespace carve
