/** @file Unit tests for SystemConfig: Table III defaults, scaling,
 * overrides and validation. */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/units.hh"

namespace carve {
namespace {

TEST(Config, TableIIIDefaults)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.num_gpus, 4u);
    EXPECT_EQ(cfg.core.sms_per_gpu, 64u);          // 256 total
    EXPECT_EQ(cfg.core.max_warps_per_sm, 64u);
    EXPECT_EQ(cfg.page_size, 2 * MiB);
    EXPECT_EQ(cfg.line_size, 128u);
    EXPECT_EQ(cfg.l1.size, 128 * KiB);
    EXPECT_EQ(cfg.l1.ways, 4u);
    EXPECT_EQ(cfg.l2.size, 8 * MiB);               // 32 MB total
    EXPECT_EQ(cfg.l2.ways, 16u);
    EXPECT_EQ(cfg.dram.capacity, 32 * GiB);        // 128 GB total
    EXPECT_DOUBLE_EQ(cfg.localDramBw(), 1024.0);   // 1 TB/s
    EXPECT_DOUBLE_EQ(cfg.link.gpu_gpu_bw, 64.0);   // 64 GB/s
    EXPECT_DOUBLE_EQ(cfg.link.cpu_gpu_bw, 32.0);   // 32 GB/s
    EXPECT_EQ(cfg.rdc.size, 2 * GiB);
    EXPECT_FALSE(cfg.rdc.enabled);
}

TEST(Config, DefaultsValidate)
{
    SystemConfig cfg;
    cfg.validate();  // must not exit
}

TEST(Config, ScaledDividesCapacitiesOnly)
{
    SystemConfig cfg;
    SystemConfig s = cfg.scaled(8);
    EXPECT_EQ(s.l1.size, cfg.l1.size / 8);
    EXPECT_EQ(s.l2.size, cfg.l2.size / 8);
    EXPECT_EQ(s.rdc.size, cfg.rdc.size / 8);
    EXPECT_EQ(s.dram.capacity, cfg.dram.capacity / 8);
    // Bandwidths, counts and latencies untouched.
    EXPECT_DOUBLE_EQ(s.link.gpu_gpu_bw, cfg.link.gpu_gpu_bw);
    EXPECT_EQ(s.core.sms_per_gpu, cfg.core.sms_per_gpu);
    EXPECT_EQ(s.page_size, cfg.page_size);
    EXPECT_EQ(s.line_size, cfg.line_size);
    s.validate();
}

TEST(Config, LinesPerPage)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.linesPerPage(), 2 * MiB / 128);
}

TEST(Config, ApplyOverrideNumeric)
{
    SystemConfig cfg;
    cfg.applyOverride("num_gpus", "8");
    cfg.applyOverride("rdc.size", "1073741824");
    cfg.applyOverride("link.gpu_gpu_bw", "32.0");
    EXPECT_EQ(cfg.num_gpus, 8u);
    EXPECT_EQ(cfg.rdc.size, 1 * GiB);
    EXPECT_DOUBLE_EQ(cfg.link.gpu_gpu_bw, 32.0);
}

TEST(Config, ApplyOverrideEnumsAndBools)
{
    SystemConfig cfg;
    cfg.applyOverride("rdc.enabled", "true");
    cfg.applyOverride("rdc.coherence", "software");
    cfg.applyOverride("numa.replication", "readonly");
    cfg.applyOverride("numa.placement", "roundrobin");
    cfg.applyOverride("numa.migration", "on");
    EXPECT_TRUE(cfg.rdc.enabled);
    EXPECT_EQ(cfg.rdc.coherence, RdcCoherence::Software);
    EXPECT_EQ(cfg.numa.replication, ReplicationPolicy::ReadOnly);
    EXPECT_EQ(cfg.numa.placement, PlacementPolicy::RoundRobin);
    EXPECT_TRUE(cfg.numa.migration);
}

TEST(ConfigDeathTest, UnknownOverrideKeyIsFatal)
{
    SystemConfig cfg;
    EXPECT_EXIT(cfg.applyOverride("bogus.key", "1"),
                ::testing::ExitedWithCode(1), "unknown override");
}

TEST(ConfigDeathTest, GarbageValueIsFatal)
{
    SystemConfig cfg;
    EXPECT_EXIT(cfg.applyOverride("num_gpus", "four"),
                ::testing::ExitedWithCode(1), "cannot parse");
}

TEST(ConfigDeathTest, ValidationCatchesBadGeometry)
{
    SystemConfig cfg;
    cfg.line_size = 100;  // not a power of two
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "line_size");
}

TEST(ConfigDeathTest, ValidationCatchesOversizedRdc)
{
    SystemConfig cfg;
    cfg.rdc.enabled = true;
    cfg.rdc.size = cfg.dram.capacity;  // no room for OS memory
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "carve-out");
}

TEST(ConfigDeathTest, ValidationCatchesBadSpill)
{
    SystemConfig cfg;
    cfg.numa.spill_fraction = 1.5;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "spill_fraction");
}

TEST(ConfigDeathTest, ScaledRequiresPowerOfTwo)
{
    SystemConfig cfg;
    EXPECT_EXIT((void)cfg.scaled(3), ::testing::ExitedWithCode(1),
                "power of two");
}

class PolicyParseTest
    : public ::testing::TestWithParam<
          std::pair<const char *, ReplicationPolicy>>
{
};

TEST_P(PolicyParseTest, ParsesAliases)
{
    EXPECT_EQ(parseReplicationPolicy(GetParam().first),
              GetParam().second);
}

INSTANTIATE_TEST_SUITE_P(
    Aliases, PolicyParseTest,
    ::testing::Values(
        std::make_pair("none", ReplicationPolicy::None),
        std::make_pair("readonly", ReplicationPolicy::ReadOnly),
        std::make_pair("read-only", ReplicationPolicy::ReadOnly),
        std::make_pair("RO", ReplicationPolicy::ReadOnly),
        std::make_pair("all", ReplicationPolicy::All),
        std::make_pair("IDEAL", ReplicationPolicy::All)));

TEST(Config, ParsePlacementAliases)
{
    EXPECT_EQ(parsePlacementPolicy("ft"), PlacementPolicy::FirstTouch);
    EXPECT_EQ(parsePlacementPolicy("first-touch"),
              PlacementPolicy::FirstTouch);
    EXPECT_EQ(parsePlacementPolicy("rr"), PlacementPolicy::RoundRobin);
    EXPECT_EQ(parsePlacementPolicy("local"),
              PlacementPolicy::LocalOnly);
}

TEST(Config, ParseCoherenceAliases)
{
    EXPECT_EQ(parseRdcCoherence("none"), RdcCoherence::None);
    EXPECT_EQ(parseRdcCoherence("swc"), RdcCoherence::Software);
    EXPECT_EQ(parseRdcCoherence("hwvi"), RdcCoherence::HardwareVI);
    EXPECT_EQ(parseRdcCoherence("hardware"), RdcCoherence::HardwareVI);
}

} // namespace
} // namespace carve
