/** @file Unit tests for SystemConfig: Table III defaults, scaling,
 * overrides and validation. */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/units.hh"

namespace carve {
namespace {

TEST(Config, TableIIIDefaults)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.num_gpus, 4u);
    EXPECT_EQ(cfg.core.sms_per_gpu, 64u);          // 256 total
    EXPECT_EQ(cfg.core.max_warps_per_sm, 64u);
    EXPECT_EQ(cfg.page_size, 2 * MiB);
    EXPECT_EQ(cfg.line_size, 128u);
    EXPECT_EQ(cfg.l1.size, 128 * KiB);
    EXPECT_EQ(cfg.l1.ways, 4u);
    EXPECT_EQ(cfg.l2.size, 8 * MiB);               // 32 MB total
    EXPECT_EQ(cfg.l2.ways, 16u);
    EXPECT_EQ(cfg.dram.capacity, 32 * GiB);        // 128 GB total
    EXPECT_DOUBLE_EQ(cfg.localDramBw(), 1024.0);   // 1 TB/s
    EXPECT_DOUBLE_EQ(cfg.link.gpu_gpu_bw, 64.0);   // 64 GB/s
    EXPECT_DOUBLE_EQ(cfg.link.cpu_gpu_bw, 32.0);   // 32 GB/s
    EXPECT_EQ(cfg.rdc.size, 2 * GiB);
    EXPECT_FALSE(cfg.rdc.enabled);
}

TEST(Config, DefaultsValidate)
{
    SystemConfig cfg;
    cfg.validate();  // must not exit
}

TEST(Config, ScaledDividesCapacitiesOnly)
{
    SystemConfig cfg;
    SystemConfig s = cfg.scaled(8);
    EXPECT_EQ(s.l1.size, cfg.l1.size / 8);
    EXPECT_EQ(s.l2.size, cfg.l2.size / 8);
    EXPECT_EQ(s.rdc.size, cfg.rdc.size / 8);
    EXPECT_EQ(s.dram.capacity, cfg.dram.capacity / 8);
    // Bandwidths, counts and latencies untouched.
    EXPECT_DOUBLE_EQ(s.link.gpu_gpu_bw, cfg.link.gpu_gpu_bw);
    EXPECT_EQ(s.core.sms_per_gpu, cfg.core.sms_per_gpu);
    EXPECT_EQ(s.page_size, cfg.page_size);
    EXPECT_EQ(s.line_size, cfg.line_size);
    s.validate();
}

TEST(Config, LinesPerPage)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.linesPerPage(), 2 * MiB / 128);
}

TEST(Config, ApplyOverrideNumeric)
{
    SystemConfig cfg;
    cfg.applyOverride("num_gpus", "8");
    cfg.applyOverride("rdc.size", "1073741824");
    cfg.applyOverride("link.gpu_gpu_bw", "32.0");
    EXPECT_EQ(cfg.num_gpus, 8u);
    EXPECT_EQ(cfg.rdc.size, 1 * GiB);
    EXPECT_DOUBLE_EQ(cfg.link.gpu_gpu_bw, 32.0);
}

TEST(Config, ApplyOverrideEnumsAndBools)
{
    SystemConfig cfg;
    cfg.applyOverride("rdc.enabled", "true");
    cfg.applyOverride("rdc.coherence", "software");
    cfg.applyOverride("numa.replication", "readonly");
    cfg.applyOverride("numa.placement", "roundrobin");
    cfg.applyOverride("numa.migration", "on");
    EXPECT_TRUE(cfg.rdc.enabled);
    EXPECT_EQ(cfg.rdc.coherence, RdcCoherence::Software);
    EXPECT_EQ(cfg.numa.replication, ReplicationPolicy::ReadOnly);
    EXPECT_EQ(cfg.numa.placement, PlacementPolicy::RoundRobin);
    EXPECT_TRUE(cfg.numa.migration);
}

TEST(ConfigDeathTest, UnknownOverrideKeyIsFatal)
{
    SystemConfig cfg;
    EXPECT_EXIT(cfg.applyOverride("bogus.key", "1"),
                ::testing::ExitedWithCode(1), "unknown override");
}

TEST(Config, EveryListedOverrideKeyIsAccepted)
{
    // The registry contract: the enumerated key set IS the accepted
    // key set. Feed each key its own serialized value back;
    // applyOverride on an unknown key would exit fatally.
    SystemConfig cfg;
    const std::vector<std::string> keys =
        SystemConfig::listOverrideKeys();
    const std::vector<ConfigOverride> ovs = cfg.toOverrides();
    ASSERT_EQ(keys.size(), ovs.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        EXPECT_EQ(keys[i], ovs[i].key);
        cfg.applyOverride(ovs[i].key, ovs[i].value);
    }
    // A serialize-apply loop of defaults must change nothing.
    EXPECT_EQ(cfg.num_gpus, SystemConfig{}.num_gpus);
    EXPECT_DOUBLE_EQ(cfg.dram.channel_bw,
                     SystemConfig{}.dram.channel_bw);
}

TEST(Config, ListedKeysCoverEveryLegacyKey)
{
    // Keys the pre-registry applyOverride() accepted must survive
    // the table migration.
    const std::vector<std::string> keys =
        SystemConfig::listOverrideKeys();
    const auto has = [&](const char *k) {
        return std::find(keys.begin(), keys.end(), k) != keys.end();
    };
    for (const char *k :
         {"num_gpus", "seed", "page_size", "line_size",
          "core.sms_per_gpu", "core.max_warps_per_sm", "l1.size",
          "l2.size", "l2.ways", "dram.capacity", "dram.channels",
          "dram.channel_bw", "link.gpu_gpu_bw", "link.cpu_gpu_bw",
          "link.latency", "rdc.enabled", "rdc.size",
          "rdc.coherence", "rdc.write_policy", "rdc.hit_predictor",
          "numa.placement", "numa.replication", "numa.migration",
          "numa.migration_threshold", "numa.spill_fraction",
          "numa.llc_caches_remote", "numa.charge_bulk_transfers"}) {
        EXPECT_TRUE(has(k)) << k;
    }
}

TEST(Config, OverridesRoundTripExactly)
{
    // Mutate one field of every kind (integer, double, bool, all
    // four enums), serialize, apply onto a default config, and
    // compare the re-serialization: byte-identical or the registry
    // getters/setters disagree.
    SystemConfig a;
    a.num_gpus = 8;
    a.dram.channel_bw = 47.62515;  // not exactly representable
    a.numa.spill_fraction = 0.1;
    a.rdc.enabled = true;
    a.rdc.size = 96 * MiB;
    a.rdc.write_policy = RdcWritePolicy::WriteBack;
    a.rdc.coherence = RdcCoherence::Software;
    a.numa.placement = PlacementPolicy::RoundRobin;
    a.numa.replication = ReplicationPolicy::ReadOnly;
    a.numa.charge_bulk_transfers = true;

    SystemConfig b;
    for (const ConfigOverride &ov : a.toOverrides())
        b.applyOverride(ov.key, ov.value);

    const auto sa = a.toOverrides();
    const auto sb = b.toOverrides();
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i].key, sb[i].key);
        EXPECT_EQ(sa[i].value, sb[i].value) << sa[i].key;
    }
    EXPECT_EQ(b.num_gpus, 8u);
    EXPECT_DOUBLE_EQ(b.dram.channel_bw, 47.62515);
    EXPECT_EQ(b.rdc.write_policy, RdcWritePolicy::WriteBack);
}

TEST(Config, EnumNamesParseBack)
{
    for (const auto p :
         {PlacementPolicy::FirstTouch, PlacementPolicy::RoundRobin,
          PlacementPolicy::LocalOnly})
        EXPECT_EQ(parsePlacementPolicy(placementPolicyName(p)), p);
    for (const auto p :
         {ReplicationPolicy::None, ReplicationPolicy::ReadOnly,
          ReplicationPolicy::All})
        EXPECT_EQ(parseReplicationPolicy(replicationPolicyName(p)),
                  p);
    for (const auto c :
         {RdcCoherence::None, RdcCoherence::Software,
          RdcCoherence::HardwareVI})
        EXPECT_EQ(parseRdcCoherence(rdcCoherenceName(c)), c);
    for (const auto p :
         {RdcWritePolicy::WriteThrough, RdcWritePolicy::WriteBack})
        EXPECT_EQ(parseRdcWritePolicy(rdcWritePolicyName(p)), p);
}

TEST(ConfigDeathTest, GarbageValueIsFatal)
{
    SystemConfig cfg;
    EXPECT_EXIT(cfg.applyOverride("num_gpus", "four"),
                ::testing::ExitedWithCode(1), "cannot parse");
}

TEST(ConfigDeathTest, ValidationCatchesBadGeometry)
{
    SystemConfig cfg;
    cfg.line_size = 100;  // not a power of two
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "line_size");
}

TEST(ConfigDeathTest, ValidationCatchesOversizedRdc)
{
    SystemConfig cfg;
    cfg.rdc.enabled = true;
    cfg.rdc.size = cfg.dram.capacity;  // no room for OS memory
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "carve-out");
}

TEST(ConfigDeathTest, ValidationCatchesZeroRdcMshrEntries)
{
    SystemConfig cfg;
    cfg.rdc.enabled = true;
    cfg.applyOverride("rdc.mshr_entries", "0");
    // The error must name the override key the user has to fix.
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "rdc.mshr_entries");
}

TEST(ConfigDeathTest, ValidationCatchesZeroCacheMshrs)
{
    SystemConfig cfg;
    cfg.applyOverride("l1.mshrs", "0");
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "l1.mshrs");
}

TEST(ConfigDeathTest, ValidationCatchesBadSpill)
{
    SystemConfig cfg;
    cfg.numa.spill_fraction = 1.5;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "spill_fraction");
}

TEST(ConfigDeathTest, ScaledRequiresPowerOfTwo)
{
    SystemConfig cfg;
    EXPECT_EXIT((void)cfg.scaled(3), ::testing::ExitedWithCode(1),
                "power of two");
}

class PolicyParseTest
    : public ::testing::TestWithParam<
          std::pair<const char *, ReplicationPolicy>>
{
};

TEST_P(PolicyParseTest, ParsesAliases)
{
    EXPECT_EQ(parseReplicationPolicy(GetParam().first),
              GetParam().second);
}

INSTANTIATE_TEST_SUITE_P(
    Aliases, PolicyParseTest,
    ::testing::Values(
        std::make_pair("none", ReplicationPolicy::None),
        std::make_pair("readonly", ReplicationPolicy::ReadOnly),
        std::make_pair("read-only", ReplicationPolicy::ReadOnly),
        std::make_pair("RO", ReplicationPolicy::ReadOnly),
        std::make_pair("all", ReplicationPolicy::All),
        std::make_pair("IDEAL", ReplicationPolicy::All)));

TEST(Config, ParsePlacementAliases)
{
    EXPECT_EQ(parsePlacementPolicy("ft"), PlacementPolicy::FirstTouch);
    EXPECT_EQ(parsePlacementPolicy("first-touch"),
              PlacementPolicy::FirstTouch);
    EXPECT_EQ(parsePlacementPolicy("rr"), PlacementPolicy::RoundRobin);
    EXPECT_EQ(parsePlacementPolicy("local"),
              PlacementPolicy::LocalOnly);
}

TEST(Config, ParseCoherenceAliases)
{
    EXPECT_EQ(parseRdcCoherence("none"), RdcCoherence::None);
    EXPECT_EQ(parseRdcCoherence("swc"), RdcCoherence::Software);
    EXPECT_EQ(parseRdcCoherence("hwvi"), RdcCoherence::HardwareVI);
    EXPECT_EQ(parseRdcCoherence("hardware"), RdcCoherence::HardwareVI);
}

} // namespace
} // namespace carve
