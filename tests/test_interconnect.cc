/** @file Unit tests for links and the multi-GPU network fabric.
 *
 * Links are driven through a DomainEngine: sends issued from the test
 * body run in barrier context (direct delivery scheduling), and
 * engine.run() drains every domain to quiescence.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/domain_engine.hh"
#include "interconnect/link.hh"
#include "interconnect/network.hh"

namespace carve {
namespace {

/** Serial engine over @p num_gpus GPU domains plus the system
 * domain, with a window wide enough for @p latency. */
DomainEngine
makeEngine(unsigned num_gpus, Cycle latency)
{
    return DomainEngine(num_gpus, latency + 1, SimEngine::Serial, 1);
}

void
drain(DomainEngine &eng)
{
    eng.run(DomainEngine::Hooks{});
}

TEST(Link, DeliveryAfterSerializationPlusLatency)
{
    DomainEngine eng = makeEngine(1, 100);
    Link link(eng, 0, "l", 64.0, 100);
    Cycle done = 0;
    link.send(128, [&] { done = eng.now(); });
    drain(eng);
    // 128B at 64 B/cyc = 2 cycles on the wire + 100 latency.
    EXPECT_EQ(done, 102u);
    EXPECT_EQ(link.bytesSent(), 128u);
    EXPECT_EQ(link.packets(), 1u);
    EXPECT_EQ(link.busyCycles(), 2u);
}

TEST(Link, PacketsSerializeOnTheWire)
{
    DomainEngine eng = makeEngine(1, 0);
    Link link(eng, 0, "l", 64.0, 0);
    std::vector<Cycle> done;
    for (int i = 0; i < 4; ++i)
        link.send(128, [&] { done.push_back(eng.now()); });
    drain(eng);
    ASSERT_EQ(done.size(), 4u);
    EXPECT_EQ(done[0], 2u);
    EXPECT_EQ(done[1], 4u);
    EXPECT_EQ(done[2], 6u);
    EXPECT_EQ(done[3], 8u);
    EXPECT_DOUBLE_EQ(link.utilization(8), 1.0);
}

TEST(Link, QueueDelayObserved)
{
    DomainEngine eng = makeEngine(1, 0);
    Link link(eng, 0, "l", 1.0, 0);  // 1 B/cyc: slow
    link.send(100, {});
    link.send(100, {});
    drain(eng);
    EXPECT_DOUBLE_EQ(link.meanQueueDelay(), 50.0);  // (0 + 100) / 2
}

TEST(Link, SmallControlPacketsRoundUpToOneCycle)
{
    DomainEngine eng = makeEngine(1, 0);
    Link link(eng, 0, "l", 64.0, 0);
    link.send(16, {});
    drain(eng);
    EXPECT_EQ(link.busyCycles(), 1u);
}

TEST(LinkDeathTest, NonPositiveBandwidthIsFatal)
{
    DomainEngine eng = makeEngine(1, 1);
    EXPECT_EXIT(Link(eng, 0, "bad", 0.0, 1),
                ::testing::ExitedWithCode(1), "bandwidth");
}

TEST(Network, DistinctDirectionalLinksPerPair)
{
    LinkConfig cfg;
    DomainEngine eng = makeEngine(4, cfg.latency);
    Network net(eng, cfg, 4);
    net.send(0, 1, 128, {});
    net.send(1, 0, 256, {});
    EXPECT_EQ(net.link(0, 1).bytesSent(), 128u);
    EXPECT_EQ(net.link(1, 0).bytesSent(), 256u);
    EXPECT_EQ(net.link(2, 3).bytesSent(), 0u);
    EXPECT_EQ(net.totalGpuGpuBytes(), 384u);
}

TEST(Network, DeliveryCallbackFires)
{
    LinkConfig cfg;
    cfg.latency = 50;
    DomainEngine eng = makeEngine(2, cfg.latency);
    Network net(eng, cfg, 2);
    Cycle at = 0;
    net.send(0, 1, 128, [&] { at = eng.now(); });
    drain(eng);
    EXPECT_EQ(at, 2u + 50u);
}

TEST(Network, CpuLinksAreSeparate)
{
    LinkConfig cfg;
    DomainEngine eng = makeEngine(2, cfg.latency);
    Network net(eng, cfg, 2);
    bool up = false, down = false;
    net.sendToCpu(0, 128, [&] { up = true; });
    net.sendFromCpu(1, 128, [&] { down = true; });
    drain(eng);
    EXPECT_TRUE(up);
    EXPECT_TRUE(down);
    EXPECT_EQ(net.totalCpuGpuBytes(), 256u);
    EXPECT_EQ(net.totalGpuGpuBytes(), 0u);
}

TEST(Network, CpuLinkIsSlowerThanGpuLink)
{
    LinkConfig cfg;  // 64 vs 32 B/cyc
    cfg.latency = 0;
    DomainEngine eng = makeEngine(2, 1);
    Network net(eng, cfg, 2);
    Cycle gpu_done = 0, cpu_done = 0;
    net.send(0, 1, 1024, [&] { gpu_done = eng.now(); });
    net.sendToCpu(0, 1024, [&] { cpu_done = eng.now(); });
    drain(eng);
    EXPECT_EQ(gpu_done, 16u);
    EXPECT_EQ(cpu_done, 32u);
}

TEST(NetworkDeathTest, SelfSendIsABug)
{
    LinkConfig cfg;
    DomainEngine eng = makeEngine(2, cfg.latency);
    Network net(eng, cfg, 2);
    EXPECT_DEATH(net.send(1, 1, 128, {}), "assert");
}

} // namespace
} // namespace carve
