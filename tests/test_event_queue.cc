/** @file Unit tests for the discrete-event engine. */

#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.hh"

namespace carve {
namespace {

TEST(EventQueue, StartsAtTimeZeroEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, EqualTickEventsFireInSchedulingOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterIsRelativeToNow)
{
    EventQueue eq;
    Cycle seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleAfter(50, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10)
            eq.scheduleAfter(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(eq.now(), 9u);
}

TEST(EventQueue, RunWithLimitStopsEarly)
{
    EventQueue eq;
    for (Cycle t = 0; t < 10; ++t)
        eq.schedule(t, [] {});
    EXPECT_EQ(eq.run(4), 4u);
    EXPECT_EQ(eq.pending(), 6u);
}

TEST(EventQueue, RunWhilePredicateStopsExecution)
{
    EventQueue eq;
    int fired = 0;
    for (Cycle t = 0; t < 10; ++t)
        eq.schedule(t, [&] { ++fired; });
    eq.runWhile([&] { return fired < 3; });
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ExecutedCountsLifetimeEvents)
{
    EventQueue eq;
    for (Cycle t = 0; t < 5; ++t)
        eq.schedule(t, [] {});
    eq.run();
    for (Cycle t = 0; t < 3; ++t)
        eq.schedule(eq.now() + t, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 8u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

TEST(EventQueue, SchedulingAtNowIsAllowed)
{
    EventQueue eq;
    bool fired = false;
    eq.schedule(10, [&] {
        eq.schedule(eq.now(), [&] { fired = true; });
    });
    eq.run();
    EXPECT_TRUE(fired);
}

} // namespace
} // namespace carve
