/** @file Unit tests for the discrete-event engine. */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <utility>
#include <vector>

#include "common/event_queue.hh"

namespace carve {
namespace {

TEST(EventQueue, StartsAtTimeZeroEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, EqualTickEventsFireInSchedulingOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterIsRelativeToNow)
{
    EventQueue eq;
    Cycle seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleAfter(50, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10)
            eq.scheduleAfter(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(eq.now(), 9u);
}

TEST(EventQueue, RunWithLimitStopsEarly)
{
    EventQueue eq;
    for (Cycle t = 0; t < 10; ++t)
        eq.schedule(t, [] {});
    EXPECT_EQ(eq.run(4), 4u);
    EXPECT_EQ(eq.pending(), 6u);
}

TEST(EventQueue, RunWhilePredicateStopsExecution)
{
    EventQueue eq;
    int fired = 0;
    for (Cycle t = 0; t < 10; ++t)
        eq.schedule(t, [&] { ++fired; });
    eq.runWhile([&] { return fired < 3; });
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ExecutedCountsLifetimeEvents)
{
    EventQueue eq;
    for (Cycle t = 0; t < 5; ++t)
        eq.schedule(t, [] {});
    eq.run();
    for (Cycle t = 0; t < 3; ++t)
        eq.schedule(eq.now() + t, [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 8u);
}

TEST(EventQueueDeathTest, SchedulingInThePastIsFatal)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    // The diagnostic must name the offending tick and current time.
    EXPECT_DEATH(eq.schedule(50, [] {}), "when=50 now=100");
}

TEST(EventQueueDeathTest, PastScheduleFatalOnHeapEngineToo)
{
    EventQueue eq(EventEngine::Heap);
    eq.schedule(7, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(3, [] {}), "when=3 now=7");
}

TEST(EventQueue, SchedulingAtNowIsAllowed)
{
    EventQueue eq;
    bool fired = false;
    eq.schedule(10, [&] {
        eq.schedule(eq.now(), [&] { fired = true; });
    });
    eq.run();
    EXPECT_TRUE(fired);
}

// ---- calendar-specific behaviour ----------------------------------

TEST(EventQueue, FarHorizonEventsExecuteInOrder)
{
    // Events far beyond the near-horizon ring live in the overflow
    // heap and must migrate into the ring, preserving (tick, seq)
    // order against ring-resident events.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(1'000'000, [&] { order.push_back(4); });
    eq.schedule(50'000, [&] { order.push_back(3); });
    eq.schedule(5'000, [&] { order.push_back(2); });
    eq.schedule(3, [&] { order.push_back(1); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(eq.now(), 1'000'000u);
}

TEST(EventQueue, FarAndNearEventsAtSameTickKeepSeqOrder)
{
    // First event lands in the far heap (beyond the horizon at
    // schedule time); events scheduled later for the same tick from
    // inside the window must still fire *after* it.
    EventQueue eq;
    std::vector<int> order;
    const Cycle t = 5'000;
    eq.schedule(t, [&] { order.push_back(1) ; });
    eq.schedule(t - 10, [&] {
        eq.schedule(t, [&] { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, EnginesProduceIdenticalExecutionOrder)
{
    // Drive an identical pseudo-random schedule through both engines
    // and require the exact same (tick, id) execution sequence —
    // the determinism contract behind the CARVE_EVENTQ switch.
    using Trace = std::vector<std::pair<Cycle, int>>;
    const auto drive = [](EventEngine engine) {
        EventQueue eq(engine);
        Trace trace;
        std::uint64_t rng = 12345;
        int id = 0;
        const std::function<void()> spawn = [&] {
            trace.emplace_back(eq.now(), id++);
            for (int k = 0; k < 2 && trace.size() < 500; ++k) {
                rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
                eq.scheduleAfter(1 + ((rng >> 33) % 2048), spawn);
            }
        };
        eq.schedule(0, spawn);
        eq.runWhile([&] { return trace.size() < 500; });
        return trace;
    };
    EXPECT_EQ(drive(EventEngine::Calendar),
              drive(EventEngine::Heap));
}

TEST(EventQueue, EngineSelectableByConstructorAndEnv)
{
    EXPECT_EQ(EventQueue(EventEngine::Heap).engine(),
              EventEngine::Heap);
    EXPECT_EQ(EventQueue(EventEngine::Calendar).engine(),
              EventEngine::Calendar);

    setenv("CARVE_EVENTQ", "heap", 1);
    EXPECT_EQ(EventQueue().engine(), EventEngine::Heap);
    setenv("CARVE_EVENTQ", "calendar", 1);
    EXPECT_EQ(EventQueue().engine(), EventEngine::Calendar);
    unsetenv("CARVE_EVENTQ");
    EXPECT_EQ(EventQueue().engine(), EventEngine::Calendar);
}

TEST(EventQueueDeathTest, BadEngineEnvValueIsFatal)
{
    setenv("CARVE_EVENTQ", "bogus", 1);
    EXPECT_DEATH((void)EventQueue(), "CARVE_EVENTQ");
    unsetenv("CARVE_EVENTQ");
}

// ---- EventFn / bindEvent ------------------------------------------

TEST(EventFn, InvokesInlineCallable)
{
    int hits = 0;
    EventFn fn([&hits] { ++hits; });
    ASSERT_TRUE(fn);
    fn();
    EXPECT_EQ(hits, 1);
}

TEST(EventFn, MoveTransfersOwnership)
{
    int hits = 0;
    EventFn a([&hits] { ++hits; });
    EventFn b(std::move(a));
    EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move)
    ASSERT_TRUE(b);
    b();
    EXPECT_EQ(hits, 1);
}

TEST(EventFn, OversizedCallableTakesBoxedPath)
{
    // Captures beyond the inline buffer must still work (the miss
    // path continuation in the RDC controller relies on this).
    struct Big
    {
        std::uint64_t pad[16];
    };
    Big big{};
    big.pad[15] = 42;
    std::uint64_t seen = 0;
    EventFn fn([big, &seen] { seen = big.pad[15]; });
    fn();
    EXPECT_EQ(seen, 42u);
}

namespace bind_test {

struct Counter
{
    int calls = 0;
    int last = 0;

    void
    bump(int amount)
    {
        ++calls;
        last = amount;
    }

    void
    wide(std::uint64_t a, std::uint64_t b, std::uint64_t c)
    {
        ++calls;
        last = static_cast<int>(a + b + c);
    }
};

/** Fixed-cadence self-re-arming event (the repeatAfter() idiom). */
struct Repeater
{
    EventQueue *eq;
    int fires = 0;
    Cycle last_fire = 0;

    void
    tick()
    {
        ++fires;
        last_fire = eq->now();
        if (fires < 3)
            eq->repeatAfter(10);
    }
};

} // namespace bind_test

TEST(EventFn, BindEventPassesBoundArguments)
{
    bind_test::Counter c;
    EventQueue eq;
    eq.schedule(5, bindEvent<&bind_test::Counter::bump>(&c, 17));
    eq.schedule(9, bindEvent<&bind_test::Counter::bump>(&c, 23));
    eq.run();
    EXPECT_EQ(c.calls, 2);
    EXPECT_EQ(c.last, 23);
}

TEST(EventFn, BindEventFitsThisPlusThreeWords)
{
    // The widest hot-path shape: a this-pointer plus 24 bytes of
    // bound arguments exactly fills EventFn's inline storage.
    static_assert(sizeof(detail::BoundEvent<
                      &bind_test::Counter::wide, bind_test::Counter,
                      std::uint64_t, std::uint64_t, std::uint64_t>) ==
                  EventFn::inline_size);
    bind_test::Counter c;
    EventQueue eq;
    eq.schedule(1, bindEvent<&bind_test::Counter::wide>(
                       &c, std::uint64_t{1}, std::uint64_t{2},
                       std::uint64_t{4}));
    eq.run();
    EXPECT_EQ(c.calls, 1);
    EXPECT_EQ(c.last, 7);
}

TEST(EventQueue, RepeatAfterReArmsTheFiringEvent)
{
    EventQueue eq;
    bind_test::Repeater r{&eq};
    eq.schedule(5, bindEvent<&bind_test::Repeater::tick>(&r));
    eq.run();
    EXPECT_EQ(r.fires, 3);
    EXPECT_EQ(r.last_fire, 25u);  // 5, 15, 25
    EXPECT_EQ(eq.executed(), 3u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RepeatAfterKeepsSchedulingOrderAtEqualTicks)
{
    // A re-armed event claims its sequence number at the repeatAfter()
    // call, so an event scheduled later for the same tick fires after
    // it — byte-identical to a fresh scheduleAfter().
    EventQueue eq;
    std::vector<int> order;
    bind_test::Repeater r{&eq};
    eq.schedule(5, bindEvent<&bind_test::Repeater::tick>(&r));
    eq.schedule(5, [&] {
        order.push_back(0);
        eq.schedule(15, [&] { order.push_back(1); });
    });
    eq.run();
    // Tick 15: the re-armed repeater (seq claimed at t=5) precedes the
    // callback scheduled at t=5 after it.
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(r.fires, 3);
}

TEST(EventQueueDeathTest, RepeatAfterOutsideCallbackIsFatal)
{
    EventQueue eq;
    EXPECT_DEATH(eq.repeatAfter(1), "repeatAfter outside a callback");
}

} // namespace
} // namespace carve
