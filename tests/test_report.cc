/** @file Unit tests for reporting helpers, traffic math and logging
 * controls. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "core/report.hh"

namespace carve {
namespace {

TEST(Traffic, FracRemoteCountsGpuLinksOnly)
{
    GpuTraffic t;
    t.local_reads = 30;
    t.rdc_hit_reads = 30;
    t.remote_reads = 20;
    t.remote_writes = 10;
    t.local_writes = 10;
    EXPECT_EQ(t.total(), 100u);
    EXPECT_DOUBLE_EQ(t.fracRemote(), 0.3);
}

TEST(Traffic, EmptyTrafficIsZeroRemote)
{
    GpuTraffic t;
    EXPECT_EQ(t.total(), 0u);
    EXPECT_DOUBLE_EQ(t.fracRemote(), 0.0);
}

TEST(Traffic, RdcHitsCountAsLocal)
{
    // The Figure 8 accounting: a carve-out hit never crosses a link.
    GpuTraffic with_rdc;
    with_rdc.rdc_hit_reads = 90;
    with_rdc.remote_reads = 10;
    EXPECT_DOUBLE_EQ(with_rdc.fracRemote(), 0.1);
}

TEST(Report, IpcComputation)
{
    SimResult r;
    r.warp_insts = 1000;
    r.cycles = 500;
    EXPECT_DOUBLE_EQ(r.ipc(), 2.0);
    r.cycles = 0;
    EXPECT_DOUBLE_EQ(r.ipc(), 0.0);
}

TEST(Report, PrintSummaryContainsKeyFields)
{
    SimResult r;
    r.workload = "Lulesh";
    r.preset = "CARVE-HWC";
    r.cycles = 12345;
    r.warp_insts = 1000;
    r.frac_remote = 0.25;
    r.rdc_hits = 75;
    r.rdc_misses = 25;
    std::ostringstream os;
    printSummary(os, r);
    const std::string line = os.str();
    EXPECT_NE(line.find("Lulesh"), std::string::npos);
    EXPECT_NE(line.find("CARVE-HWC"), std::string::npos);
    EXPECT_NE(line.find("12345"), std::string::npos);
    EXPECT_NE(line.find("25.0%"), std::string::npos);
    EXPECT_NE(line.find("rdchit=75"), std::string::npos);
}

TEST(ReportDeathTest, GeomeanRejectsNonPositive)
{
    EXPECT_EXIT(geomean({1.0, 0.0}), ::testing::ExitedWithCode(1),
                "non-positive");
}

TEST(ReportDeathTest, SpeedupRejectsZeroCycles)
{
    SimResult a, b;
    a.cycles = 10;
    b.cycles = 0;
    EXPECT_EXIT(speedupOver(a, b), ::testing::ExitedWithCode(1),
                "zero-cycle");
}

TEST(Logging, QuietModeSuppressesInform)
{
    setLogQuiet(true);
    EXPECT_TRUE(logQuiet());
    inform("this should not appear");
    warn("neither should this");
    setLogQuiet(false);
    EXPECT_FALSE(logQuiet());
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeathTest, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "bad config x");
}

} // namespace
} // namespace carve
