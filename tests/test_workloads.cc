/** @file Unit and property tests for the synthetic workload
 * generators and the 20-workload Table II suite. */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/units.hh"
#include "workloads/suite.hh"
#include "workloads/synthetic.hh"

namespace carve {
namespace {

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.name = "tiny";
    p.kernels = 2;
    p.ctas = 16;
    p.warps_per_cta = 4;
    p.insts_per_warp = 32;
    p.regions = {
        {RegionKind::PrivateStream, 4 * MiB, 0.5, 0.3, 0.0, 1, 0.25},
        {RegionKind::Lookup, 8 * MiB, 0.5, 0.0, 0.7, 2, 0.25},
    };
    return p;
}

TEST(Synthetic, PureFunctionOfIds)
{
    SyntheticWorkload a(tinyParams(), 128, 9);
    SyntheticWorkload b(tinyParams(), 128, 9);
    WarpInstruction x, y;
    for (std::uint64_t i = 0; i < 200; ++i) {
        a.instruction(1, i % 16, i % 4, i, x);
        b.instruction(1, i % 16, i % 4, i, y);
        EXPECT_EQ(x.type, y.type);
        EXPECT_EQ(x.num_lines, y.num_lines);
        EXPECT_EQ(x.compute_cycles, y.compute_cycles);
        for (unsigned l = 0; l < x.num_lines; ++l)
            EXPECT_EQ(x.lines[l], y.lines[l]);
    }
}

TEST(Synthetic, CallOrderIndependence)
{
    SyntheticWorkload wl(tinyParams(), 128, 9);
    WarpInstruction fwd, rev;
    wl.instruction(0, 3, 2, 17, fwd);
    // Interleave other queries, then repeat.
    for (std::uint64_t i = 0; i < 50; ++i) {
        WarpInstruction scratch;
        wl.instruction(0, i % 16, i % 4, i, scratch);
    }
    wl.instruction(0, 3, 2, 17, rev);
    EXPECT_EQ(fwd.lines[0], rev.lines[0]);
    EXPECT_EQ(fwd.type, rev.type);
}

TEST(Synthetic, SeedsChangeTheTrace)
{
    SyntheticWorkload a(tinyParams(), 128, 1);
    SyntheticWorkload b(tinyParams(), 128, 2);
    unsigned diff = 0;
    WarpInstruction x, y;
    for (std::uint64_t i = 0; i < 100; ++i) {
        a.instruction(0, 0, 0, i, x);
        b.instruction(0, 0, 0, i, y);
        if (x.lines[0] != y.lines[0])
            ++diff;
    }
    EXPECT_GT(diff, 50u);
}

TEST(Synthetic, AddressesStayInsideDeclaredRegions)
{
    const WorkloadParams p = tinyParams();
    SyntheticWorkload wl(p, 128, 5);
    WarpInstruction inst;
    for (std::uint64_t i = 0; i < 2000; ++i) {
        wl.instruction(0, i % 16, i % 4, i / 16, inst);
        for (unsigned l = 0; l < inst.num_lines; ++l) {
            const Addr a = inst.lines[l];
            const Addr slot = a >> 36;
            ASSERT_GE(slot, 1u);
            ASSERT_LE(slot, p.regions.size());
            const Addr base = slot << 36;
            EXPECT_LT(a - base, p.regions[slot - 1].bytes);
            EXPECT_EQ(a % 128, 0u);  // line-aligned
        }
    }
}

TEST(Synthetic, AccessFractionsApproximatelyHonored)
{
    const WorkloadParams p = tinyParams();
    SyntheticWorkload wl(p, 128, 5);
    WarpInstruction inst;
    unsigned region0 = 0;
    const unsigned n = 10000;
    for (unsigned i = 0; i < n; ++i) {
        wl.instruction(0, i % 16, i % 4, i, inst);
        if ((inst.lines[0] >> 36) == 1)
            ++region0;
    }
    EXPECT_NEAR(static_cast<double>(region0) / n, 0.5, 0.03);
}

TEST(Synthetic, WriteFractionApproximatelyHonored)
{
    WorkloadParams p = tinyParams();
    p.regions = {{RegionKind::PrivateStream, 4 * MiB, 1.0, 0.25, 0.0,
                  1, 0.25}};
    SyntheticWorkload wl(p, 128, 5);
    WarpInstruction inst;
    unsigned writes = 0;
    const unsigned n = 10000;
    for (unsigned i = 0; i < n; ++i) {
        wl.instruction(0, i % 16, i % 4, i, inst);
        writes += isWrite(inst.type) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(writes) / n, 0.25, 0.03);
}

TEST(Synthetic, ComputeGapWithinConfiguredBounds)
{
    WorkloadParams p = tinyParams();
    p.compute_min = 10;
    p.compute_max = 20;
    SyntheticWorkload wl(p, 128, 5);
    WarpInstruction inst;
    for (unsigned i = 0; i < 1000; ++i) {
        wl.instruction(0, i % 16, i % 4, i, inst);
        EXPECT_GE(inst.compute_cycles, 10u);
        EXPECT_LE(inst.compute_cycles, 20u);
    }
}

TEST(Synthetic, PrivateStreamIsDisjointAcrossCtas)
{
    WorkloadParams p = tinyParams();
    p.regions = {{RegionKind::PrivateStream, 4 * MiB, 1.0, 0.0, 0.0,
                  1, 0.25}};
    SyntheticWorkload wl(p, 128, 5);
    std::unordered_map<Addr, CtaId> owner;
    WarpInstruction inst;
    for (CtaId cta = 0; cta < 16; ++cta) {
        for (WarpId w = 0; w < 4; ++w) {
            for (std::uint64_t idx = 0; idx < 32; ++idx) {
                wl.instruction(0, cta, w, idx, inst);
                auto [it, fresh] = owner.emplace(inst.lines[0], cta);
                if (!fresh) {
                    EXPECT_EQ(it->second, cta);
                }
            }
        }
    }
}

TEST(Synthetic, InterleavedStreamIsDisjointAcrossCtasButDense)
{
    WorkloadParams p = tinyParams();
    p.regions = {{RegionKind::InterleavedStream, 4 * MiB, 1.0, 0.0,
                  0.0, 1, 0.25}};
    SyntheticWorkload wl(p, 128, 5);
    std::unordered_map<Addr, CtaId> owner;
    WarpInstruction inst;
    for (CtaId cta = 0; cta < 16; ++cta) {
        for (WarpId w = 0; w < 4; ++w) {
            for (std::uint64_t idx = 0; idx < 8; ++idx) {
                wl.instruction(0, cta, w, idx, inst);
                auto [it, fresh] = owner.emplace(inst.lines[0], cta);
                if (!fresh) {
                    EXPECT_EQ(it->second, cta);
                }
            }
        }
    }
    // Consecutive CTAs touch adjacent lines at the same position:
    // the false-sharing property.
    WarpInstruction a, b;
    wl.instruction(0, 2, 0, 0, a);
    wl.instruction(0, 3, 0, 0, b);
    EXPECT_EQ(b.lines[0] - a.lines[0], 128u);
}

TEST(Synthetic, SharedStreamIsIdenticalAcrossCtas)
{
    WorkloadParams p = tinyParams();
    p.regions = {{RegionKind::SharedStream, 4 * MiB, 1.0, 0.0, 0.0, 1,
                  0.25}};
    SyntheticWorkload wl(p, 128, 5);
    WarpInstruction a, b;
    wl.instruction(0, 0, 1, 5, a);
    wl.instruction(0, 9, 1, 5, b);
    EXPECT_EQ(a.lines[0], b.lines[0]);
}

TEST(Synthetic, IterativeWorkloadRepeatsAcrossKernels)
{
    WorkloadParams p = tinyParams();
    p.iterative = true;
    SyntheticWorkload wl(p, 128, 5);
    WarpInstruction k0, k1;
    wl.instruction(0, 3, 1, 7, k0);
    wl.instruction(1, 3, 1, 7, k1);
    EXPECT_EQ(k0.lines[0], k1.lines[0]);

    p.iterative = false;
    SyntheticWorkload wl2(p, 128, 5);
    unsigned diff = 0;
    for (std::uint64_t i = 0; i < 64; ++i) {
        wl2.instruction(0, 3, 1, i, k0);
        wl2.instruction(1, 3, 1, i, k1);
        diff += k0.lines[0] != k1.lines[0] ? 1 : 0;
    }
    EXPECT_GT(diff, 0u);
}

TEST(Synthetic, LookupLanesAreDistinct)
{
    WorkloadParams p = tinyParams();
    p.regions = {{RegionKind::Lookup, 8 * MiB, 1.0, 0.0, 0.6, 4,
                  0.25}};
    SyntheticWorkload wl(p, 128, 5);
    WarpInstruction inst;
    for (unsigned i = 0; i < 500; ++i) {
        wl.instruction(0, i % 16, i % 4, i, inst);
        std::set<Addr> uniq(inst.lines.begin(),
                            inst.lines.begin() + inst.num_lines);
        EXPECT_EQ(uniq.size(), inst.num_lines);
    }
}

TEST(Synthetic, TotalInstructionsAccounting)
{
    const WorkloadParams p = tinyParams();
    SyntheticWorkload wl(p, 128, 5);
    EXPECT_EQ(wl.totalInstructions(), 2ull * 16 * 4 * 32);
}

TEST(Synthetic, DurationScaleAdjustsTraceLength)
{
    const WorkloadParams p = tinyParams();
    EXPECT_EQ(p.withDurationScale(0.5).insts_per_warp, 16u);
    EXPECT_EQ(p.withDurationScale(4.0).insts_per_warp, 128u);
    EXPECT_EQ(p.withDurationScale(0.0).insts_per_warp, 2u);  // floor
}

TEST(SyntheticDeathTest, RejectsEmptyRegions)
{
    WorkloadParams p = tinyParams();
    p.regions.clear();
    EXPECT_EXIT(SyntheticWorkload(p, 128, 1),
                ::testing::ExitedWithCode(1), "regions");
}

// ---- suite ----------------------------------------------------------

TEST(Suite, HasAllTwentyTableIIWorkloads)
{
    const auto names = suiteNames();
    EXPECT_EQ(names.size(), 20u);
    const std::set<std::string> set(names.begin(), names.end());
    for (const char *expected :
         {"AMG", "HPGMG", "HPGMG-amry", "Lulesh", "Lulesh-s190",
          "CoMD", "MCB", "MiniAMR", "Nekbone", "XSBench", "Euler",
          "SSSP", "bfs-road", "AlexNet", "GoogLeNet", "OverFeat",
          "Bitcoin", "Raytracing", "stream-triad", "RandAccess"}) {
        EXPECT_TRUE(set.contains(expected)) << expected;
    }
}

TEST(Suite, PaperScaleFootprintsMatchTableII)
{
    SuiteOptions opt;
    opt.memory_scale = 1;
    // Spot-check representative Table II memory footprints (within
    // a factor accounting for region rounding).
    const auto near = [&](const char *name, double gib) {
        const auto wl = suiteWorkload(name, opt);
        const double f =
            static_cast<double>(wl.footprint()) / (1024.0 * MiB);
        EXPECT_GT(f, gib * 0.7) << name;
        EXPECT_LT(f, gib * 1.4) << name;
    };
    near("AMG", 3.2);
    near("XSBench", 4.3);
    near("RandAccess", 15.0);
    near("Lulesh", 0.024);
    near("stream-triad", 2.9);
}

TEST(Suite, ScalingShrinksLargeAndPreservesSmall)
{
    SuiteOptions paper{1, 1.0};
    SuiteOptions scaled{8, 1.0};
    const auto big_paper = suiteWorkload("XSBench", paper);
    const auto big_scaled = suiteWorkload("XSBench", scaled);
    EXPECT_LT(big_scaled.footprint(), big_paper.footprint());

    const auto small_paper = suiteWorkload("Lulesh", paper);
    const auto small_scaled = suiteWorkload("Lulesh", scaled);
    EXPECT_EQ(small_scaled.footprint(), small_paper.footprint());
}

TEST(Suite, DurationOptionScalesEveryWorkload)
{
    SuiteOptions half{8, 0.5};
    SuiteOptions full{8, 1.0};
    for (const auto &name : suiteNames()) {
        EXPECT_LE(suiteWorkload(name, half).insts_per_warp,
                  suiteWorkload(name, full).insts_per_warp)
            << name;
    }
}

TEST(Suite, AllWorkloadsConstructAndGenerate)
{
    for (const auto &params : standardSuite()) {
        SyntheticWorkload wl(params, 128, 3);
        WarpInstruction inst;
        for (unsigned i = 0; i < 64; ++i) {
            wl.instruction(i % params.kernels, i % params.ctas,
                           i % params.warps_per_cta, i, inst);
            ASSERT_GE(inst.num_lines, 1u) << params.name;
        }
    }
}

TEST(SuiteDeathTest, UnknownWorkloadIsFatal)
{
    EXPECT_EXIT(suiteWorkload("NoSuchBench"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

} // namespace
} // namespace carve
