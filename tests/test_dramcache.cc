/** @file Unit tests for the CARVE building blocks: epoch counter,
 * Alloy RDC structure, dirty map and hit predictor. */

#include <gtest/gtest.h>

#include "dramcache/alloy_cache.hh"
#include "dramcache/dirty_map.hh"
#include "dramcache/epoch.hh"
#include "dramcache/hit_predictor.hh"

namespace carve {
namespace {

// ---- epoch ----------------------------------------------------------

TEST(Epoch, IncrementAdvances)
{
    EpochCounter e(20);
    EXPECT_EQ(e.current(), 0u);
    EXPECT_FALSE(e.increment());
    EXPECT_EQ(e.current(), 1u);
    EXPECT_EQ(e.increments(), 1u);
}

TEST(Epoch, RolloverWrapsAndReports)
{
    EpochCounter e(2);  // max value 3
    EXPECT_FALSE(e.increment());
    EXPECT_FALSE(e.increment());
    EXPECT_FALSE(e.increment());
    EXPECT_TRUE(e.increment());  // 3 -> 0
    EXPECT_EQ(e.current(), 0u);
    EXPECT_EQ(e.rollovers(), 1u);
}

TEST(EpochDeathTest, RejectsBadWidths)
{
    EXPECT_EXIT(EpochCounter(0), ::testing::ExitedWithCode(1),
                "width");
    EXPECT_EXIT(EpochCounter(32), ::testing::ExitedWithCode(1),
                "width");
}

// ---- alloy cache ----------------------------------------------------

TEST(Alloy, GeometryAndSetMapping)
{
    AlloyCache a(1024 * 128, 128);
    EXPECT_EQ(a.numSets(), 1024u);
    EXPECT_EQ(a.capacity(), 1024u * 128);
    // Direct-mapped: line N and line N + sets collide.
    EXPECT_EQ(a.setIndex(0), a.setIndex(1024ull * 128));
    EXPECT_NE(a.setIndex(0), a.setIndex(128));
}

TEST(Alloy, MissInsertHit)
{
    AlloyCache a(1024 * 128, 128);
    EXPECT_EQ(a.lookup(0x80, 0), RdcLookup::Miss);
    a.insert(0x80, 0);
    EXPECT_EQ(a.lookup(0x80, 0), RdcLookup::Hit);
    EXPECT_EQ(a.hits(), 1u);
    EXPECT_EQ(a.misses(), 1u);
}

TEST(Alloy, EpochMismatchIsStale)
{
    AlloyCache a(1024 * 128, 128);
    a.insert(0x80, 5);
    EXPECT_EQ(a.lookup(0x80, 6), RdcLookup::StaleEpoch);
    EXPECT_EQ(a.staleHits(), 1u);
    // hitRate counts stale probes as misses.
    EXPECT_DOUBLE_EQ(a.hitRate(), 0.0);
}

TEST(Alloy, DirectMappedConflictDisplaces)
{
    AlloyCache a(16 * 128, 128);
    const Addr low = 0;
    const Addr high = 16ull * 128;  // same set
    a.insert(low, 0);
    EXPECT_TRUE(a.insert(high, 0));  // displaced
    EXPECT_EQ(a.lookup(low, 0), RdcLookup::Miss);
    EXPECT_EQ(a.lookup(high, 0), RdcLookup::Hit);
    EXPECT_EQ(a.conflictEvictions(), 1u);
}

TEST(Alloy, ReinsertSameLineIsNotAConflict)
{
    AlloyCache a(16 * 128, 128);
    a.insert(0, 0);
    EXPECT_FALSE(a.insert(0, 1));
    EXPECT_EQ(a.conflictEvictions(), 0u);
    EXPECT_EQ(a.lookup(0, 1), RdcLookup::Hit);
}

TEST(Alloy, InvalidateLine)
{
    AlloyCache a(16 * 128, 128);
    a.insert(0x100, 0);
    EXPECT_TRUE(a.invalidateLine(0x100));
    EXPECT_FALSE(a.invalidateLine(0x100));
    EXPECT_EQ(a.lookup(0x100, 0), RdcLookup::Miss);
}

TEST(Alloy, InvalidateWrongLineInSetIsNoop)
{
    AlloyCache a(16 * 128, 128);
    a.insert(0, 0);
    EXPECT_FALSE(a.invalidateLine(16ull * 128));  // same set, diff tag
    EXPECT_EQ(a.lookup(0, 0), RdcLookup::Hit);
}

TEST(Alloy, MarkDirtyOnlyOnEpochCurrentLines)
{
    AlloyCache a(16 * 128, 128);
    a.insert(0x100, 3);
    EXPECT_TRUE(a.markDirty(0x100, 3));
    EXPECT_FALSE(a.markDirty(0x100, 4));
    EXPECT_FALSE(a.markDirty(0x200, 3));
}

TEST(Alloy, ResetAllClearsEverything)
{
    AlloyCache a(1024 * 128, 128);
    for (Addr i = 0; i < 100; ++i)
        a.insert(i * 128, 0);
    EXPECT_EQ(a.touchedSets(), 100u);
    a.resetAll();
    EXPECT_EQ(a.touchedSets(), 0u);
    EXPECT_EQ(a.lookup(0, 0), RdcLookup::Miss);
}

TEST(Alloy, PeekIsStatFree)
{
    AlloyCache a(16 * 128, 128);
    a.insert(0, 7);
    EXPECT_TRUE(a.peek(0, 7));
    EXPECT_FALSE(a.peek(0, 8));
    EXPECT_FALSE(a.peek(128, 7));
    EXPECT_EQ(a.hits(), 0u);
    EXPECT_EQ(a.misses(), 0u);
}

TEST(Alloy, DisplacedDirtyVictimIsReturned)
{
    AlloyCache a(16 * 128, 128);
    a.insert(0, 0, /* dirty */ true, /* home */ 3);
    const auto victim = a.insert(16ull * 128, 0);
    ASSERT_TRUE(victim.has_value());
    EXPECT_TRUE(victim->dirty);
    EXPECT_EQ(victim->home, 3u);
    EXPECT_EQ(victim->tag, 0u);
    EXPECT_EQ(a.dirtyEvictions(), 1u);
    EXPECT_EQ(a.conflictEvictions(), 1u);
}

TEST(Alloy, CleanVictimOwesNoWriteback)
{
    AlloyCache a(16 * 128, 128);
    a.insert(0, 0, /* dirty */ false, /* home */ 3);
    const auto victim = a.insert(16ull * 128, 0);
    ASSERT_TRUE(victim.has_value());
    EXPECT_FALSE(victim->dirty);
    EXPECT_EQ(a.dirtyEvictions(), 0u);
}

TEST(Alloy, CleanAllClearsDirtyBitsButKeepsLines)
{
    AlloyCache a(16 * 128, 128);
    a.insert(0x100, 0, /* dirty */ true, 1);
    EXPECT_TRUE(a.lineDirty(0x100));
    a.cleanAll();
    EXPECT_FALSE(a.lineDirty(0x100));
    EXPECT_EQ(a.lookup(0x100, 0), RdcLookup::Hit);
}

TEST(Alloy, ProbesConserveAcrossOutcomes)
{
    AlloyCache a(16 * 128, 128);
    a.lookup(0, 0);          // miss
    a.insert(0, 0);
    a.lookup(0, 0);          // hit
    a.lookup(0, 1);          // stale epoch
    EXPECT_EQ(a.probes(), 3u);
    EXPECT_EQ(a.hits() + a.misses() + a.staleHits(), a.probes());
}

TEST(Alloy, SetStorageOffsetWithinCapacity)
{
    AlloyCache a(1024 * 128, 128);
    for (Addr i = 0; i < 5000; ++i)
        EXPECT_LT(a.setStorageOffset(i * 128 + 64), a.capacity());
}

TEST(AlloyDeathTest, RejectsUnalignedSize)
{
    EXPECT_EXIT(AlloyCache(1000, 128), ::testing::ExitedWithCode(1),
                "multiple");
}

// ---- dirty map ------------------------------------------------------

TEST(DirtyMap, TracksRegions)
{
    DirtyMap d(4096);
    EXPECT_FALSE(d.isDirty(0));
    d.markDirty(100, 1);
    d.markDirty(4000, 1);   // same 4KB region
    d.markDirty(5000, 2);   // next region
    EXPECT_TRUE(d.isDirty(0));
    EXPECT_TRUE(d.isDirty(4096));
    EXPECT_EQ(d.dirtyLines(), 3u);
    EXPECT_EQ(d.dirtyRegions(), 2u);
    EXPECT_EQ(d.dirtyBytes(), 8192u);
    EXPECT_EQ(d.markings(), 3u);
}

TEST(DirtyMap, ClearAfterFlush)
{
    DirtyMap d(4096);
    d.markDirty(0, 1);
    d.clear();
    EXPECT_EQ(d.dirtyRegions(), 0u);
    EXPECT_FALSE(d.isDirty(0));
}

TEST(DirtyMap, ClearDirtyForgetsOnlyThatSet)
{
    DirtyMap d(4096);
    d.markDirty(100, 1);
    d.markDirty(4000, 1);   // same region, different set
    d.clearDirty(100);
    EXPECT_FALSE(d.isDirtyLine(100));
    EXPECT_TRUE(d.isDirtyLine(4000));
    // The region stays dirty through the surviving set.
    EXPECT_TRUE(d.isDirty(0));
    EXPECT_EQ(d.dirtyRegions(), 1u);
    d.clearDirty(4000);
    EXPECT_FALSE(d.isDirty(0));
    EXPECT_EQ(d.dirtyRegions(), 0u);
}

TEST(DirtyMap, FlushTargetsAttributeRegionsToHomes)
{
    DirtyMap d(4096);
    d.markDirty(0, 2);
    d.markDirty(128, 2);    // same region, same home
    d.markDirty(8192, 3);   // separate region, another home
    const auto targets = d.flushTargets();
    ASSERT_EQ(targets.size(), 2u);
    EXPECT_EQ(targets[0].first, 2u);
    EXPECT_EQ(targets[0].second, 4096u);
    EXPECT_EQ(targets[1].first, 3u);
    EXPECT_EQ(targets[1].second, 4096u);
    EXPECT_EQ(targets[0].second + targets[1].second, d.dirtyBytes());
}

TEST(DirtyMapDeathTest, RegionMustBePowerOfTwo)
{
    EXPECT_EXIT(DirtyMap(3000), ::testing::ExitedWithCode(1),
                "power of two");
}

// ---- hit predictor --------------------------------------------------

TEST(HitPredictor, StartsPredictingHit)
{
    HitPredictor p(256, 12);
    EXPECT_TRUE(p.predictHit(0x1000));
}

TEST(HitPredictor, LearnsMissStreak)
{
    HitPredictor p(256, 12);
    for (int i = 0; i < 8; ++i)
        p.update(0x1000, false);
    EXPECT_FALSE(p.predictHit(0x1000));
    // And re-learns hits.
    for (int i = 0; i < 8; ++i)
        p.update(0x1000, true);
    EXPECT_TRUE(p.predictHit(0x1000));
}

TEST(HitPredictor, RegionsLearnIndependently)
{
    HitPredictor p(1024, 12);
    for (int i = 0; i < 8; ++i)
        p.update(0x0, false);
    EXPECT_FALSE(p.predictHit(0x0));
    EXPECT_TRUE(p.predictHit(0x4000000));  // far-away region
}

TEST(HitPredictor, AccuracyTracking)
{
    HitPredictor p(256, 12);
    for (int i = 0; i < 100; ++i)
        p.update(0x2000, true);  // always-hit stream: all correct
    EXPECT_GT(p.accuracy(), 0.99);
    EXPECT_EQ(p.predictions(), 100u);
}

} // namespace
} // namespace carve
