/** @file Tests for the unified metrics registry: dotted-name lookup,
 * deterministic walk/dump ordering, flat rendering, sample guards,
 * wildcard matching, and per-kernel epoch snapshots on a live
 * system. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/stats.hh"
#include "core/multi_gpu_system.hh"
#include "core/report.hh"
#include "core/system_preset.hh"
#include "sim_test_util.hh"
#include "workloads/synthetic.hh"

namespace carve {
namespace {

using test::miniConfig;
using test::miniWorkload;

// ---- lookup --------------------------------------------------------

TEST(StatsRegistry, DottedNameLookupFindsNestedStats)
{
    stats::Scalar hits, misses;
    stats::Average delay;

    stats::StatGroup root("");
    stats::StatGroup gpu0("gpu0", &root);
    stats::StatGroup l2("l2", &gpu0);
    l2.addScalar("hits", &hits);
    l2.addScalar("misses", &misses);
    l2.addAverage("delay", &delay);

    hits += 7;
    misses += 3;

    ASSERT_NE(root.findScalar("gpu0.l2.hits"), nullptr);
    EXPECT_EQ(root.findScalar("gpu0.l2.hits")->value(), 7u);
    EXPECT_EQ(root.findScalar("gpu0.l2.misses")->value(), 3u);
    EXPECT_NE(root.findAverage("gpu0.l2.delay"), nullptr);
    EXPECT_NE(root.findGroup("gpu0.l2"), nullptr);
    EXPECT_EQ(root.findGroup("gpu0.l2")->fullName(), "gpu0.l2");

    // Lookup is relative to the receiving group.
    EXPECT_EQ(gpu0.findScalar("l2.hits")->value(), 7u);

    EXPECT_EQ(root.findScalar("gpu0.l2.nothing"), nullptr);
    EXPECT_EQ(root.findScalar("gpu1.l2.hits"), nullptr);
    EXPECT_EQ(root.findGroup("gpu0.l3"), nullptr);
}

TEST(StatsRegistry, FindValueCoversScalarsAndDerived)
{
    stats::Scalar n;
    stats::StatGroup root("");
    root.addScalar("n", &n);
    root.addDerived("ratio", [&] { return 0.25; });
    root.addDerivedInt("twice", [&] { return n.value() * 2; });

    n += 10;
    ASSERT_TRUE(root.findValue("n").has_value());
    EXPECT_DOUBLE_EQ(*root.findValue("n"), 10.0);
    EXPECT_DOUBLE_EQ(*root.findValue("ratio"), 0.25);
    EXPECT_DOUBLE_EQ(*root.findValue("twice"), 20.0);
    EXPECT_FALSE(root.findValue("absent").has_value());
}

// ---- deterministic ordering ----------------------------------------

TEST(StatsRegistry, DumpIsIndependentOfRegistrationOrder)
{
    stats::Scalar a, b, c;

    // Same names, opposite registration orders.
    stats::StatGroup r1("");
    stats::StatGroup g1z("zeta", &r1);
    stats::StatGroup g1a("alpha", &r1);
    g1z.addScalar("beta", &b);
    g1z.addScalar("alpha", &a);
    g1a.addScalar("gamma", &c);

    stats::StatGroup r2("");
    stats::StatGroup g2a("alpha", &r2);
    stats::StatGroup g2z("zeta", &r2);
    g2a.addScalar("gamma", &c);
    g2z.addScalar("alpha", &a);
    g2z.addScalar("beta", &b);

    std::ostringstream o1, o2;
    r1.dump(o1);
    r2.dump(o2);
    EXPECT_EQ(o1.str(), o2.str());

    // Sorted: alpha.gamma before zeta.alpha before zeta.beta.
    const std::string text = o1.str();
    EXPECT_LT(text.find("alpha.gamma"), text.find("zeta.alpha"));
    EXPECT_LT(text.find("zeta.alpha"), text.find("zeta.beta"));
}

TEST(StatsRegistry, FlattenExpandsAveragesAndDistributions)
{
    stats::Scalar s;
    stats::Average avg;
    stats::Distribution dist(4, 8);

    stats::StatGroup root("");
    stats::StatGroup g("g", &root);
    g.addScalar("events", &s);
    g.addAverage("delay", &avg);
    g.addDistribution("sizes", &dist);

    s += 5;
    avg.sample(2.0);
    avg.sample(4.0);
    dist.sample(std::uint64_t{30});

    const auto flat = stats::flattenStats(root);
    ASSERT_FALSE(flat.empty());
    for (std::size_t i = 1; i < flat.size(); ++i)
        EXPECT_LT(flat[i - 1].name, flat[i].name) << "sorted by name";

    const auto find = [&](const std::string &n) -> const stats::FlatStat * {
        for (const auto &f : flat)
            if (f.name == n)
                return &f;
        return nullptr;
    };
    ASSERT_NE(find("g.events"), nullptr);
    EXPECT_TRUE(find("g.events")->integral);
    EXPECT_EQ(find("g.events")->u64, 5u);
    ASSERT_NE(find("g.delay.count"), nullptr);
    EXPECT_EQ(find("g.delay.count")->u64, 2u);
    ASSERT_NE(find("g.delay.sum"), nullptr);
    EXPECT_DOUBLE_EQ(find("g.delay.sum")->asDouble(), 6.0);
    ASSERT_NE(find("g.sizes.count"), nullptr);
    EXPECT_EQ(find("g.sizes.count")->u64, 1u);
    ASSERT_NE(find("g.sizes.max"), nullptr);
    EXPECT_EQ(find("g.sizes.max")->u64, 30u);
    ASSERT_NE(find("g.sizes.sum"), nullptr);
    EXPECT_EQ(find("g.sizes.sum")->u64, 30u);
}

// ---- sample guards -------------------------------------------------

TEST(StatsRegistry, AverageDropsNanAndNegativeSamples)
{
    stats::Average a;
    a.sample(3.0);
    a.sample(std::nan(""));
    a.sample(-1.0);
    a.sample(std::numeric_limits<double>::infinity());
    a.sample(5.0);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.sum(), 8.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
}

TEST(StatsRegistry, DistributionDropsNanAndNegativeSamples)
{
    stats::Distribution d(4, 10);
    d.sample(15.0);
    d.sample(std::nan(""));
    d.sample(-3.5);
    d.sample(-std::numeric_limits<double>::infinity());
    EXPECT_EQ(d.count(), 1u);
    EXPECT_EQ(d.sum(), 15u);
    // Integer samples still take the exact path.
    d.sample(std::uint64_t{7});
    EXPECT_EQ(d.count(), 2u);
}

TEST(StatsRegistry, ScalarActsLikeCounter)
{
    stats::Scalar s;
    ++s;
    s += 9;
    EXPECT_EQ(s.value(), 10u);
    const std::uint64_t doubled = s + s;  // implicit conversion
    EXPECT_EQ(doubled, 20u);
    s = 3;
    EXPECT_EQ(s.value(), 3u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

// ---- wildcard matching ---------------------------------------------

TEST(StatsRegistry, NameMatchingSegmentsAndPrefixes)
{
    using stats::nameMatches;
    EXPECT_TRUE(nameMatches("gpu0.l2.hits", "gpu0.l2.hits"));
    EXPECT_TRUE(nameMatches("*.l2.hits", "gpu0.l2.hits"));
    EXPECT_TRUE(nameMatches("gpu*.l2.hits", "gpu0.l2.hits"));
    EXPECT_TRUE(nameMatches("gpu*.l2.hits", "gpu12.l2.hits"));
    EXPECT_TRUE(nameMatches("link.*.*.bytes", "link.0.3.bytes"));
    EXPECT_TRUE(nameMatches("link.*.*.bytes", "link.cpu.2.bytes"));

    // '*' never spans dots, and segment counts must agree.
    EXPECT_FALSE(nameMatches("gpu*.l2.hits", "gpu0.l2.mshrs.hits"));
    EXPECT_FALSE(nameMatches("*.hits", "gpu0.l2.hits"));
    EXPECT_FALSE(nameMatches("gpu*.l2.hits", "cpu0.l2.hits"));
    EXPECT_FALSE(nameMatches("gpu0.l2", "gpu0.l2.hits"));
    EXPECT_FALSE(nameMatches("gpu0.l2.hits", "gpu0.l2"));
}

// ---- snapshots -----------------------------------------------------

TEST(StatsRegistry, SnapshotDeltaReportsIncrease)
{
    stats::Scalar a, b;
    stats::StatGroup root("");
    root.addScalar("a", &a);
    root.addScalar("b", &b);

    a += 10;
    const stats::ScalarSnapshot before = stats::snapshotScalars(root);
    a += 5;
    b += 2;
    const stats::ScalarSnapshot after = stats::snapshotScalars(root);

    const stats::ScalarSnapshot delta =
        stats::snapshotDelta(before, after);
    ASSERT_EQ(delta.size(), 2u);
    EXPECT_EQ(delta[0].first, "a");
    EXPECT_EQ(delta[0].second, 5u);
    EXPECT_EQ(delta[1].first, "b");
    EXPECT_EQ(delta[1].second, 2u);
}

// ---- live system ---------------------------------------------------

TEST(StatsRegistry, SystemRegistryMatchesSummaryFields)
{
    const WorkloadParams p =
        miniWorkload(RegionKind::InterleavedStream, 0.2);
    SyntheticWorkload wl(p, 128, 1);
    const SystemConfig cfg =
        makePreset(Preset::CarveHwc, miniConfig());
    MultiGpuSystem sys(cfg, wl);
    sys.run();
    ASSERT_TRUE(sys.finished());

    const SimResult r = collectResult(sys, "mini", "CARVE-HWC");
    const stats::StatGroup &root = sys.stats();

    // The summary fields are derived from the registry; spot-check
    // that direct lookups agree (the registry really is the single
    // source of truth, not a parallel bookkeeping path).
    EXPECT_DOUBLE_EQ(*root.findValue("sim.cycles"),
                     static_cast<double>(r.cycles));
    std::uint64_t remote_reads = 0, migrations = 0;
    for (const auto &f : r.stat_tree) {
        if (stats::nameMatches("gpu*.traffic.remote_reads", f.name))
            remote_reads += f.u64;
        if (f.name == "numa.migrations")
            migrations = f.u64;
    }
    EXPECT_EQ(remote_reads, r.traffic.remote_reads.value());
    EXPECT_EQ(migrations, r.migrations);
    EXPECT_GT(r.stat_tree.size(), 100u)
        << "every component must contribute stats";
}

TEST(StatsRegistry, KernelPhasesPartitionTheRun)
{
    const WorkloadParams p =
        miniWorkload(RegionKind::InterleavedStream, 0.2, 3);
    SyntheticWorkload wl(p, 128, 1);
    const SystemConfig cfg =
        makePreset(Preset::NumaGpu, miniConfig());
    MultiGpuSystem sys(cfg, wl);
    sys.run();
    ASSERT_TRUE(sys.finished());

    const auto &phases = sys.kernelPhases();
    ASSERT_EQ(phases.size(), 3u) << "one phase per kernel";

    // Phases tile the run: contiguous, increasing cycle ranges.
    for (std::size_t i = 0; i < phases.size(); ++i) {
        EXPECT_EQ(phases[i].index, i);
        EXPECT_LT(phases[i].start_cycle, phases[i].end_cycle);
        if (i > 0) {
            EXPECT_EQ(phases[i].start_cycle,
                      phases[i - 1].end_cycle);
        }
    }

    // Epoch deltas must sum to the final counter values: snapshots
    // are pure differences, never resets of live counters.
    const stats::ScalarSnapshot final_snap =
        stats::snapshotScalars(sys.stats());
    std::uint64_t insts_total = 0;
    for (const auto &ph : phases) {
        for (const auto &[name, value] : ph.deltas) {
            if (name == "gpu0.sm0.insts_issued")
                insts_total += value;
        }
    }
    std::uint64_t insts_final = 0;
    for (const auto &[name, value] : final_snap) {
        if (name == "gpu0.sm0.insts_issued")
            insts_final = value;
    }
    EXPECT_GT(insts_final, 0u);
    EXPECT_EQ(insts_total, insts_final);
}

} // namespace
} // namespace carve
