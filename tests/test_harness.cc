/** @file Tests for the experiment harness: JSON model, parallel
 * sweep determinism, per-run failure isolation, watchdog surfacing,
 * and the baseline regression gate. */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>

#include "common/logging.hh"
#include "harness/json.hh"
#include "harness/results_io.hh"
#include "harness/sweep.hh"
#include "harness/thread_pool.hh"
#include "sim_test_util.hh"

namespace carve {
namespace harness {
namespace {

using test::miniConfig;
using test::miniWorkload;

class HarnessTest : public ::testing::Test
{
  protected:
    void SetUp() override { setLogQuiet(true); }
    void TearDown() override { setLogQuiet(false); }
};

RunSpec
miniSpec(Preset preset, const std::string &name,
         std::uint64_t seed = 1)
{
    RunSpec s;
    s.preset = preset;
    s.workload = miniWorkload(RegionKind::SharedStream, 0.1);
    s.workload.name = name;
    s.base = miniConfig();
    s.opts.seed = seed;
    s.opts.max_cycles = 50'000'000;
    // Byte-compare tests below need results that are a pure function
    // of the specs; host wall/RSS stats would differ per execution.
    s.host_stats = false;
    return s;
}

std::vector<RunSpec>
miniGrid()
{
    std::vector<RunSpec> specs;
    for (const Preset p :
         {Preset::SingleGpu, Preset::NumaGpu, Preset::CarveHwc}) {
        for (const std::uint64_t seed : {1ull, 7ull})
            specs.push_back(miniSpec(p, "wl", seed));
    }
    return specs;
}

// ---- json ----------------------------------------------------------

TEST_F(HarnessTest, JsonRoundTrip)
{
    json::Value o{json::Members{}};
    o.set("str", "a \"quoted\"\nline");
    o.set("int", std::int64_t{-42});
    o.set("big", std::uint64_t{1} << 53);
    o.set("dbl", 0.1);
    o.set("flag", true);
    o.set("nothing", nullptr);
    json::Value arr{json::Array{}};
    arr.push(1);
    arr.push(2.5);
    o.set("arr", std::move(arr));

    const std::string text = o.dump();
    const json::Value back = json::parse(text, "test");
    EXPECT_EQ(back.at("str").asString(), "a \"quoted\"\nline");
    EXPECT_EQ(back.at("int").asInt(), -42);
    EXPECT_EQ(back.at("big").asInt(), std::int64_t{1} << 53);
    EXPECT_DOUBLE_EQ(back.at("dbl").asDouble(), 0.1);
    EXPECT_TRUE(back.at("flag").asBool());
    EXPECT_TRUE(back.at("nothing").isNull());
    EXPECT_EQ(back.at("arr").asArray().size(), 2u);
    // Deterministic serialisation: dump(parse(dump(x))) == dump(x).
    EXPECT_EQ(back.dump(), text);
}

TEST_F(HarnessTest, JsonParseErrorsAreCatchable)
{
    ScopedErrorCapture capture;
    EXPECT_THROW(json::parse("{\"a\": }", "bad"), SimAbortError);
    EXPECT_THROW(json::parse("[1, 2", "bad"), SimAbortError);
    EXPECT_THROW(json::parse("true false", "bad"), SimAbortError);
}

TEST_F(HarnessTest, PresetNameParsing)
{
    EXPECT_EQ(parsePresetName("CARVE-HWC"), Preset::CarveHwc);
    EXPECT_EQ(parsePresetName("carvehwc"), Preset::CarveHwc);
    EXPECT_EQ(parsePresetName("carve"), Preset::CarveHwc);
    EXPECT_EQ(parsePresetName("1-GPU"), Preset::SingleGpu);
    EXPECT_EQ(parsePresetName("Ideal-NUMA-GPU"), Preset::Ideal);
    ScopedErrorCapture capture;
    EXPECT_THROW(parsePresetName("nonsense"), SimAbortError);
}

// ---- thread pool ---------------------------------------------------

TEST_F(HarnessTest, ParallelForCoversEveryIndexExactlyOnce)
{
    std::vector<std::atomic<int>> hits(257);
    parallelFor(hits.size(), 4,
                [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

// ---- sweep determinism (satellite a) -------------------------------

TEST_F(HarnessTest, SerialAndParallelSweepsProduceIdenticalJson)
{
    const std::vector<RunSpec> specs = miniGrid();

    SweepOptions serial;
    serial.threads = 1;
    SweepOptions parallel;
    parallel.threads = 4;

    const auto r1 = runSweep(specs, serial);
    const auto r4 = runSweep(specs, parallel);
    ASSERT_EQ(r1.size(), specs.size());
    ASSERT_EQ(r4.size(), specs.size());

    SweepMeta meta;
    meta.git_version = "test";  // pin so the docs are comparable
    const std::string j1 = sweepToJson(meta, r1).dump();
    const std::string j4 = sweepToJson(meta, r4).dump();
    EXPECT_EQ(j1, j4) << "parallel sweep must serialise "
                         "byte-identically to serial";

    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(r1[i].key(), specs[i].key())
            << "results must keep spec order";
        EXPECT_EQ(r1[i].status, RunStatus::Ok);
        EXPECT_GT(r1[i].sim.cycles, 0u);
    }
}

// ---- failure isolation (satellite b) -------------------------------

TEST_F(HarnessTest, PanickingRunIsIsolatedAndSiblingsComplete)
{
    std::vector<RunSpec> specs = miniGrid();
    // Inject a run whose configuration fails validation deep inside
    // MultiGpuSystem construction: fatal() must become a Failed
    // result, not process death.
    RunSpec bad = miniSpec(Preset::CarveHwc, "bad");
    bad.base.line_size = 100;  // not a power of two -> validate() fatals
    specs.insert(specs.begin() + 2, bad);

    SweepOptions opt;
    opt.threads = 4;
    const auto results = runSweep(specs, opt);
    ASSERT_EQ(results.size(), specs.size());

    EXPECT_EQ(results[2].status, RunStatus::Failed);
    EXPECT_FALSE(results[2].error.empty());
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i == 2)
            continue;
        EXPECT_EQ(results[i].status, RunStatus::Ok)
            << "sibling run " << i << " must be unaffected";
        EXPECT_GT(results[i].sim.cycles, 0u);
    }
}

TEST_F(HarnessTest, WatchdogTripIsSurfacedNotFatal)
{
    RunSpec spec = miniSpec(Preset::NumaGpu, "slow");
    spec.opts.max_cycles = 200;  // far too few to finish
    const RunResult r = executeRun(spec);
    EXPECT_EQ(r.status, RunStatus::Watchdog);
    EXPECT_TRUE(r.sim.watchdog_tripped);
    EXPECT_FALSE(r.error.empty());
}

// ---- baseline compare (satellite c) --------------------------------

std::vector<RunResult>
syntheticResults()
{
    std::vector<RunResult> out;
    for (int i = 0; i < 3; ++i) {
        RunResult r;
        r.preset = "CARVE-HWC";
        r.workload = "wl" + std::to_string(i);
        r.seed = 1;
        r.status = RunStatus::Ok;
        r.sim.cycles = 100'000 + 10'000 * i;
        r.sim.warp_insts = 1'000'000;
        out.push_back(std::move(r));
    }
    return out;
}

TEST_F(HarnessTest, BaselineCompareFlagsRegressionBeyondTolerance)
{
    const auto base = syntheticResults();
    auto cand = base;
    // 10% slowdown on one run: must gate at 5% tolerance.
    cand[1].sim.cycles =
        static_cast<Cycle>(cand[1].sim.cycles * 1.10);

    const CompareReport rep = compareResults(base, cand, 0.05);
    EXPECT_TRUE(rep.hasRegression());
    ASSERT_FALSE(rep.deltas.empty());
    EXPECT_TRUE(rep.deltas.front().regression);
    EXPECT_EQ(rep.deltas.front().key, "CARVE-HWC/wl1/s1");
    EXPECT_EQ(rep.compared_runs, 3u);
}

TEST_F(HarnessTest, BaselineComparePassesWithinTolerance)
{
    const auto base = syntheticResults();
    auto cand = base;
    // 3% movement stays under a 5% gate.
    cand[0].sim.cycles =
        static_cast<Cycle>(cand[0].sim.cycles * 1.03);

    const CompareReport rep = compareResults(base, cand, 0.05);
    EXPECT_FALSE(rep.hasRegression());
    EXPECT_EQ(rep.compared_runs, 3u);
}

TEST_F(HarnessTest, BaselineCompareFlagsImprovementWithoutGating)
{
    const auto base = syntheticResults();
    auto cand = base;
    cand[0].sim.cycles =
        static_cast<Cycle>(cand[0].sim.cycles * 0.80);

    const CompareReport rep = compareResults(base, cand, 0.05);
    EXPECT_FALSE(rep.hasRegression());
    bool saw_improvement = false;
    for (const auto &d : rep.deltas)
        saw_improvement |= !d.regression;
    EXPECT_TRUE(saw_improvement);
}

TEST_F(HarnessTest, BaselineCompareNamesRegressedStats)
{
    auto base = syntheticResults();
    // Give every run a small stat tree so the comparison has
    // something to diff.
    for (auto &r : base) {
        r.sim.stat_tree = {
            {"gpu0.l2.hits", true, 1000, 0.0},
            {"gpu0.l2.misses", true, 100, 0.0},
            {"numa.migrations", true, 50, 0.0},
        };
    }
    auto cand = base;
    // Slow one run down 10% and double its L2 misses: the report
    // must gate on cycles AND name the miss counter with baseline vs
    // observed values.
    cand[1].sim.cycles =
        static_cast<Cycle>(cand[1].sim.cycles * 1.10);
    cand[1].sim.stat_tree[1].u64 = 200;

    const CompareReport rep = compareResults(base, cand, 0.05);
    EXPECT_TRUE(rep.hasRegression());

    const MetricDelta *stat = nullptr;
    for (const auto &d : rep.deltas)
        if (d.metric == "stat:gpu0.l2.misses")
            stat = &d;
    ASSERT_NE(stat, nullptr)
        << "compare must name the regressed stat";
    EXPECT_TRUE(stat->informational);
    EXPECT_FALSE(stat->regression) << "stat deltas never gate";
    EXPECT_DOUBLE_EQ(stat->baseline, 100.0);
    EXPECT_DOUBLE_EQ(stat->candidate, 200.0);

    // Unchanged stats stay silent.
    for (const auto &d : rep.deltas)
        EXPECT_NE(d.metric, "stat:numa.migrations");

    // The text report shows the stat with both values.
    const std::string text = formatCompareReport(rep, 0.05);
    EXPECT_NE(text.find("gpu0.l2.misses"), std::string::npos);
    EXPECT_NE(text.find("100"), std::string::npos);
    EXPECT_NE(text.find("200"), std::string::npos);
}

TEST_F(HarnessTest, BaselineCompareCapsStatSpam)
{
    auto base = syntheticResults();
    base.resize(1);
    for (int i = 0; i < 20; ++i) {
        base[0].sim.stat_tree.push_back(
            {"s" + std::to_string(i / 10) +
                 ".c" + std::to_string(i % 10),
             true, 100, 0.0});
    }
    std::sort(base[0].sim.stat_tree.begin(),
              base[0].sim.stat_tree.end(),
              [](const stats::FlatStat &a, const stats::FlatStat &b) {
                  return a.name < b.name;
              });
    auto cand = base;
    for (auto &f : cand[0].sim.stat_tree)
        f.u64 = 300;  // every stat triples

    const CompareReport rep = compareResults(base, cand, 0.05);
    unsigned stat_lines = 0;
    for (const auto &d : rep.deltas)
        stat_lines += d.informational;
    EXPECT_LE(stat_lines, 8u) << "per-run stat deltas are capped";
    EXPECT_EQ(stat_lines + rep.suppressed_stats, 20u);
    const std::string text = formatCompareReport(rep, 0.05);
    EXPECT_NE(text.find("not shown"), std::string::npos);
}

TEST_F(HarnessTest, BaselineCompareFlagsMissingAndFailedRuns)
{
    const auto base = syntheticResults();

    auto missing = base;
    missing.pop_back();
    EXPECT_TRUE(compareResults(base, missing, 0.05).hasRegression());

    auto failed = base;
    failed[0].status = RunStatus::Failed;
    EXPECT_TRUE(compareResults(base, failed, 0.05).hasRegression());
}

// ---- results file round trip ---------------------------------------

TEST_F(HarnessTest, ResultsSurviveJsonRoundTrip)
{
    RunSpec spec = miniSpec(Preset::CarveHwc, "round");
    const RunResult r = executeRun(spec);
    ASSERT_EQ(r.status, RunStatus::Ok);

    SweepMeta meta;
    meta.memory_scale = 4;
    meta.duration = 0.5;
    meta.git_version = "test";
    const json::Value doc = sweepToJson(meta, {r});
    const auto back =
        resultsFromJson(json::parse(doc.dump(), "roundtrip"));
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].key(), r.key());
    EXPECT_EQ(back[0].sim.cycles, r.sim.cycles);
    EXPECT_EQ(back[0].sim.rdc_hits, r.sim.rdc_hits);
    EXPECT_DOUBLE_EQ(back[0].sim.frac_remote, r.sim.frac_remote);
    EXPECT_EQ(back[0].sim.traffic.remote_reads,
              r.sim.traffic.remote_reads);

    // Round-tripped results must compare clean against themselves.
    const CompareReport rep =
        compareResults({r}, back, 0.0);
    EXPECT_FALSE(rep.hasRegression());
}

TEST_F(HarnessTest, SchemaV2StatTreeSurvivesRoundTrip)
{
    RunSpec spec = miniSpec(Preset::CarveHwc, "v2");
    const RunResult r = executeRun(spec);
    ASSERT_EQ(r.status, RunStatus::Ok);
    ASSERT_FALSE(r.sim.stat_tree.empty());

    SweepMeta meta;
    meta.git_version = "test";
    const json::Value doc = sweepToJson(meta, {r});
    EXPECT_EQ(doc.at("schema").asString(), kResultsSchema);

    const auto back =
        resultsFromJson(json::parse(doc.dump(), "v2"));
    ASSERT_EQ(back.size(), 1u);
    const auto &bt = back[0].sim.stat_tree;
    ASSERT_EQ(bt.size(), r.sim.stat_tree.size());
    for (std::size_t i = 0; i < bt.size(); ++i) {
        const auto &orig = r.sim.stat_tree[i];
        EXPECT_EQ(bt[i].name, orig.name);
        EXPECT_EQ(bt[i].integral, orig.integral);
        if (orig.integral)
            EXPECT_EQ(bt[i].u64, orig.u64) << orig.name;
        else
            EXPECT_DOUBLE_EQ(bt[i].dbl, orig.dbl) << orig.name;
    }
}

TEST_F(HarnessTest, MalformedResultsDocumentsFailGracefully)
{
    ScopedErrorCapture capture;
    // Truncated document: the parser must throw, not crash.
    EXPECT_THROW(resultsFromJson(
                     json::parse("{\"runs\": [{\"preset\"", "t")),
                 SimAbortError);
    // No runs member at all.
    EXPECT_THROW(resultsFromJson(json::parse("{}", "t")),
                 SimAbortError);
    // runs is not an array.
    EXPECT_THROW(resultsFromJson(json::parse("{\"runs\": 3}", "t")),
                 SimAbortError);
    // A run record that is not an object.
    EXPECT_THROW(resultsFromJson(
                     json::parse("{\"runs\": [42]}", "t")),
                 SimAbortError);
    // A run record missing every identity member.
    EXPECT_THROW(resultsFromJson(
                     json::parse("{\"runs\": [{}]}", "t")),
                 SimAbortError);
    // Ill-typed stat members.
    EXPECT_THROW(
        resultsFromJson(json::parse(
            "{\"runs\": [{\"preset\":\"CARVE-HWC\","
            "\"workload\":\"w\",\"seed\":1,\"status\":\"ok\","
            "\"stats\":{\"cycles\":\"nope\"}}]}",
            "t")),
        SimAbortError);
    // stats present but not an object.
    EXPECT_THROW(
        resultsFromJson(json::parse(
            "{\"runs\": [{\"preset\":\"CARVE-HWC\","
            "\"workload\":\"w\",\"seed\":1,\"status\":\"ok\","
            "\"stats\":[]}]}",
            "t")),
        SimAbortError);
}

TEST_F(HarnessTest, MissingAndTruncatedResultsFilesFailGracefully)
{
    ScopedErrorCapture capture;
    EXPECT_THROW(
        readResultsFile(::testing::TempDir() +
                        "no-such-results-file.json"),
        SimAbortError);

    // A results file cut off mid-write must error, not crash or
    // silently gate nothing.
    SweepMeta meta;
    meta.git_version = "test";
    const std::string text =
        sweepToJson(meta, syntheticResults()).dump();
    const std::string path =
        ::testing::TempDir() + "truncated-results.json";
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << text.substr(0, text.size() * 2 / 3);
    }
    EXPECT_THROW(resultsFromJson(readResultsFile(path)),
                 SimAbortError);
}

TEST_F(HarnessTest, V1FilesWithoutStatTreesStillParse)
{
    RunSpec spec = miniSpec(Preset::NumaGpu, "v1");
    RunResult r = executeRun(spec);
    ASSERT_EQ(r.status, RunStatus::Ok);
    r.sim.stat_tree.clear();  // what a v1 writer would have produced

    SweepMeta meta;
    meta.git_version = "test";
    std::string text = sweepToJson(meta, {r}).dump();
    const std::size_t at = text.find(kResultsSchema);
    ASSERT_NE(at, std::string::npos);
    text.replace(at, std::string(kResultsSchema).size(),
                 kResultsSchemaV1);

    const std::string path = ::testing::TempDir() + "v1-results.json";
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << text;
    }
    const auto back = resultsFromJson(readResultsFile(path));
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].sim.cycles, r.sim.cycles);
    EXPECT_TRUE(back[0].sim.stat_tree.empty());
}

} // namespace
} // namespace harness
} // namespace carve
